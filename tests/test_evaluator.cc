/**
 * @file
 * Scheme-generic ct x ct multiply tests: gadget digit decomposition
 * edges (recomposition identity across digit bases, partial last
 * digits, replicated towers), BFV mulCt correctness pinned against
 * the naive negacyclic product and the independent wide-integer
 * reference decrypt, bit-identity across every backend and both
 * host-SIMD modes, noise growth across a 4-deep multiply chain, the
 * CKKS mulCt / rescale interplay (including a key-switch at a
 * dropped level reading the key through its tower prefix), and the
 * key-switch transform ledger: per relinearisation, exactly one
 * batched inverse pass plus digits * towers forward re-entry NTTs,
 * all annotated as keySwitchTransforms so workload elision ratios
 * stay meaningful.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "modmath/simd.hh"
#include "rlwe/bfv.hh"
#include "rlwe/ckks.hh"
#include "rlwe_test_util.hh"
#include "rpu/device.hh"
#include "wide/biguint.hh"

namespace rpu {
namespace {

using Cplx = std::complex<double>;
using testutil::naiveNegacyclicModT;

/** Restores the host-SIMD mode on scope exit (tests must not leak). */
class ModeGuard
{
  public:
    explicit ModeGuard(simd::HostSimdMode mode)
        : saved_(simd::hostSimdMode())
    {
        simd::setHostSimdMode(mode);
    }
    ~ModeGuard() { simd::setHostSimdMode(saved_); }

  private:
    simd::HostSimdMode saved_;
};

RlweParams
smallParams()
{
    RlweParams p;
    p.n = 1024;
    p.towers = 2;
    p.towerBits = 50;
    p.plaintextModulus = 65537;
    p.noiseBound = 4;
    return p;
}

std::vector<uint64_t>
randomMessage(const RlweParams &p, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> m(p.n);
    for (auto &v : m)
        v = rng.below64(p.plaintextModulus);
    return m;
}

std::vector<Cplx>
randomSlots(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Cplx> v(count);
    for (auto &s : v) {
        s = {double(rng.below64(2000)) / 1000.0 - 1.0,
             double(rng.below64(2000)) / 1000.0 - 1.0};
    }
    return v;
}

void
expectWithinRelative(const std::vector<Cplx> &got,
                     const std::vector<Cplx> &want, double rel)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_LE(std::abs(got[i] - want[i]),
                  rel * std::max(1.0, std::abs(want[i])))
            << "slot " << i;
    }
}

void
expectBitIdentical(const Ciphertext &got, const Ciphertext &want,
                   const char *label)
{
    ASSERT_EQ(got.towers(), want.towers()) << label;
    EXPECT_EQ(got.domain(), want.domain()) << label;
    for (size_t t = 0; t < got.towers(); ++t) {
        EXPECT_EQ(got.c0.towers[t], want.c0.towers[t])
            << label << " c0 tower " << t;
        EXPECT_EQ(got.c1.towers[t], want.c1.towers[t])
            << label << " c1 tower " << t;
    }
}

// ----------------------------------------------------------------------
// Gadget decomposition edges
// ----------------------------------------------------------------------

TEST(GadgetDecompose, RecompositionIdentityAcrossDigitBases)
{
    // 50-bit towers make every base's last digit partial: 5 digits
    // of 2^10, 4 of 2^16 (2-bit last digit), 3 of 2^20 (10-bit last
    // digit). Recomposition sum_j d_j * B^j must reproduce every
    // tower residue exactly, and every digit polynomial's towers
    // must be identical replicas (digit values sit below every
    // chain prime).
    BfvContext ctx(smallParams());
    const ResidueOps &ops = ctx.evaluator().ops();
    const size_t L = ctx.params().towers;
    const uint64_t n = ctx.params().n;

    Rng rng(71);
    ResiduePoly p;
    p.domain = ResidueDomain::Coeff;
    p.towers.resize(L);
    for (size_t t = 0; t < L; ++t) {
        p.towers[t].resize(n);
        for (auto &v : p.towers[t])
            v = rng.below128(ctx.basis().prime(t));
    }

    for (unsigned digitBits : {10u, 16u, 20u}) {
        const auto digits = ops.digitDecompose(p, digitBits, L);

        size_t idx = 0;
        for (size_t t = 0; t < L; ++t) {
            const size_t dcount = ops.digitCount(t, digitBits);
            // 50-bit primes: the split never divides evenly for
            // these bases, so the last digit is partial.
            ASSERT_EQ(dcount, (50 + digitBits - 1) / digitBits);
            for (size_t j = 0; j < dcount; ++j, ++idx) {
                const ResiduePoly &d = digits[idx];
                EXPECT_FALSE(d.inEval());
                ASSERT_EQ(d.towerCount(), L);
                for (size_t u = 1; u < L; ++u)
                    EXPECT_EQ(d.towers[u], d.towers[0])
                        << "digit towers must be replicas";
            }
            for (size_t i = 0; i < n; ++i) {
                // Exact integer recomposition, no modular wrap: the
                // digits are the base-B expansion of the residue.
                u128 acc = 0;
                for (size_t j = 0; j < dcount; ++j) {
                    acc += digits[idx - dcount + j].towers[t][i]
                           << (j * digitBits);
                }
                ASSERT_EQ(acc, p.towers[t][i])
                    << "base 2^" << digitBits << " tower " << t
                    << " coeff " << i;
            }
        }
        EXPECT_EQ(idx, digits.size());
    }
}

TEST(GadgetDecompose, DigitValuesStayBelowTheBase)
{
    BfvContext ctx(smallParams());
    const ResidueOps &ops = ctx.evaluator().ops();
    const size_t L = ctx.params().towers;

    Rng rng(72);
    ResiduePoly p;
    p.domain = ResidueDomain::Coeff;
    p.towers.resize(L);
    for (size_t t = 0; t < L; ++t) {
        p.towers[t].resize(ctx.params().n);
        for (auto &v : p.towers[t])
            v = rng.below128(ctx.basis().prime(t));
    }
    for (unsigned digitBits : {10u, 16u, 20u}) {
        const u128 base = u128(1) << digitBits;
        for (const ResiduePoly &d :
             ops.digitDecompose(p, digitBits, L)) {
            for (const auto &tower : d.towers) {
                for (u128 v : tower)
                    ASSERT_LT(v, base);
            }
        }
    }
}

// ----------------------------------------------------------------------
// BFV ct x ct
// ----------------------------------------------------------------------

TEST(BfvMulCt, DecryptsToNegacyclicProduct)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);
    const auto a = randomMessage(ctx.params(), 81);
    const auto b = randomMessage(ctx.params(), 82);

    const Ciphertext ct =
        ctx.mulCt(ctx.encrypt(sk, a), ctx.encrypt(sk, b), rk);
    // Stays degree 1, Eval-resident, on the ciphertext chain.
    EXPECT_EQ(ct.towers(), ctx.params().towers);
    EXPECT_EQ(ct.domain(), ResidueDomain::Eval);

    const auto got = ctx.decrypt(sk, ct);
    EXPECT_EQ(got, naiveNegacyclicModT(
                       a, b, ctx.params().plaintextModulus));
    // The independent wide-integer reference decrypt must agree bit
    // for bit — it shares nothing with the RNS tower path.
    EXPECT_EQ(ctx.decryptWideReference(sk, ct), got);
}

TEST(BfvMulCt, CoeffResidentOperandsMultiplyIdentically)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);
    const auto a = randomMessage(ctx.params(), 83);
    const auto b = randomMessage(ctx.params(), 84);

    const Ciphertext ct_a = ctx.encrypt(sk, a);
    const Ciphertext ct_b = ctx.encrypt(sk, b);
    const Ciphertext want = ctx.mulCt(ct_a, ct_b, rk);

    Ciphertext ca = ct_a, cb = ct_b;
    ctx.toCoeff(ca);
    ctx.toCoeff(cb);
    expectBitIdentical(ctx.mulCt(ca, cb, rk), want, "coeff operands");
}

TEST(BfvMulCt, BitIdenticalAcrossBackendsAndSimdModes)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);
    const auto a = randomMessage(ctx.params(), 85);
    const auto b = randomMessage(ctx.params(), 86);
    const auto expected =
        naiveNegacyclicModT(a, b, ctx.params().plaintextModulus);

    const Ciphertext ct_a = ctx.encrypt(sk, a);
    const Ciphertext ct_b = ctx.encrypt(sk, b);
    const Ciphertext host_ct = ctx.mulCt(ct_a, ct_b, rk);
    ASSERT_EQ(ctx.decrypt(sk, host_ct), expected);

    for (simd::HostSimdMode mode :
         {simd::HostSimdMode::Scalar, simd::HostSimdMode::Native}) {
        ModeGuard guard(mode);
        const char *mode_name = simd::hostSimdModeName();

        // Host path under this mode.
        expectBitIdentical(ctx.mulCt(ct_a, ct_b, rk), host_ct,
                           mode_name);

        const auto run_device = [&](std::shared_ptr<RpuDevice> device,
                                    unsigned workers,
                                    const char *label) {
            device->setParallelism(workers);
            ctx.attachDevice(device);
            const Ciphertext ct = ctx.mulCt(ct_a, ct_b, rk);
            expectBitIdentical(ct, host_ct, label);
            EXPECT_EQ(ctx.decrypt(sk, ct), expected) << label;
            EXPECT_EQ(ctx.decryptWideReference(sk, ct), expected)
                << label;
        };
        run_device(std::make_shared<RpuDevice>(), 1, "serial");
        run_device(std::make_shared<RpuDevice>(), 4, "pooled");
        run_device(std::make_shared<RpuDevice>(
                       std::make_unique<CpuReferenceBackend>()),
                   1, "cpu-reference");
    }
}

TEST(BfvMulCt, NoiseBoundedAcrossFourDeepMultiplyChain)
{
    // Four chained ct x ct multiplies on a q ~ 2^180 chain: the
    // budget must shrink every level but stay positive through
    // depth 4, and every intermediate must decrypt exactly.
    RlweParams params;
    params.n = 1024;
    params.towers = 4;
    params.towerBits = 45;
    params.plaintextModulus = 65537;
    params.noiseBound = 4;

    BfvContext ctx(params);
    const SecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);

    std::vector<uint64_t> expected = randomMessage(params, 90);
    Ciphertext ct = ctx.encrypt(sk, expected);
    double budget = ctx.noiseBudgetBits(sk, ct, expected);
    EXPECT_GT(budget, 100.0);

    for (int depth = 1; depth <= 4; ++depth) {
        const auto m = randomMessage(params, 90 + uint64_t(depth));
        ct = ctx.mulCt(ct, ctx.encrypt(sk, m), rk);
        expected = naiveNegacyclicModT(expected, m,
                                       params.plaintextModulus);

        ASSERT_EQ(ctx.decrypt(sk, ct), expected)
            << "depth " << depth;
        const double remaining =
            ctx.noiseBudgetBits(sk, ct, expected);
        EXPECT_LT(remaining, budget) << "depth " << depth;
        EXPECT_GT(remaining, 0.0) << "depth " << depth;
        budget = remaining;
    }
}

// ----------------------------------------------------------------------
// CKKS ct x ct and the rescale interplay
// ----------------------------------------------------------------------

CkksParams
ckksParams()
{
    CkksParams p;
    p.n = 1024;
    p.towers = 3;
    p.towerBits = 45;
    p.scale = 1099511627776.0; // 2^40
    p.noiseBound = 4;
    return p;
}

TEST(CkksMulCt, RescaleInterplayApproximatesSlotProducts)
{
    CkksContext ctx(ckksParams());
    const CkksSecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);
    const auto x = randomSlots(ctx.slots(), 31);
    const auto y = randomSlots(ctx.slots(), 32);

    const CkksCiphertext prod =
        ctx.mulCt(ctx.encrypt(sk, x), ctx.encrypt(sk, y), rk);
    EXPECT_EQ(prod.towers(), ctx.params().towers);
    EXPECT_DOUBLE_EQ(prod.scale,
                     ctx.params().scale * ctx.params().scale);

    std::vector<Cplx> want(ctx.slots());
    for (size_t i = 0; i < want.size(); ++i)
        want[i] = x[i] * y[i];
    const double rel = std::ldexp(1.0, -20);
    expectWithinRelative(ctx.decrypt(sk, prod), want, rel);

    // Rescale divides the scale back down and drops a tower, like
    // after mulPlain; the slots must survive the pair of ops.
    const CkksCiphertext dropped = ctx.rescale(prod);
    EXPECT_EQ(dropped.towers(), prod.towers() - 1);
    expectWithinRelative(ctx.decrypt(sk, dropped), want, rel);

    // A second multiply at the dropped level key-switches through
    // the full-chain key's tower prefix.
    const CkksCiphertext sq = ctx.mulCt(dropped, dropped, rk);
    EXPECT_EQ(sq.towers(), dropped.towers());
    std::vector<Cplx> want_sq(ctx.slots());
    for (size_t i = 0; i < want_sq.size(); ++i)
        want_sq[i] = want[i] * want[i];
    expectWithinRelative(ctx.decrypt(sk, sq), want_sq,
                         std::ldexp(1.0, -16));
}

TEST(CkksMulCt, KeySwitchLedgerMatchesPrediction)
{
    // The relinearisation ledger, predicted from first principles:
    // the tensor product is 4 pointwise tower products per tower
    // with all 4 operand conversions elided; the key-switch is one
    // batched inverse pass over the towers (c2's digit split), one
    // forward re-entry per (digit, tower), and 2 * digits pointwise
    // inner-product pairs — every one of those transforms annotated
    // as key-switch plumbing, leaving the workload transform count
    // at zero.
    CkksContext ctx(ckksParams());
    const CkksSecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);
    const auto x = randomSlots(ctx.slots(), 33);
    const auto y = randomSlots(ctx.slots(), 34);
    const CkksCiphertext ct_x = ctx.encrypt(sk, x);
    const CkksCiphertext ct_y = ctx.encrypt(sk, y);

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);

    const size_t L = ctx.params().towers;
    const uint64_t digits = rk.totalDigits(L);
    device->resetCounters();
    const CkksCiphertext prod = ctx.mulCt(ct_x, ct_y, rk);
    (void)prod;
    const DeviceStats s = device->stats();

    EXPECT_EQ(s.inverseTransforms, L);
    EXPECT_EQ(s.forwardTransforms, digits * L);
    EXPECT_EQ(s.keySwitchTransforms, (digits + 1) * L);
    EXPECT_EQ(s.workloadTransforms(), 0u);
    EXPECT_EQ(s.pointwiseMuls, 4 * L + 2 * digits * L);
    EXPECT_EQ(s.transformsElided, 4 * L);
}

TEST(BfvMulCt, SmallerDigitBaseCostsMoreTransforms)
{
    // The digit-base knob, visible in the ledger: halving the digit
    // width roughly doubles the re-entry forward NTTs and the
    // inner-product launches of a multiply.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto a = randomMessage(ctx.params(), 95);
    const auto b = randomMessage(ctx.params(), 96);
    const Ciphertext ct_a = ctx.encrypt(sk, a);
    const Ciphertext ct_b = ctx.encrypt(sk, b);

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);

    uint64_t previous = 0;
    for (unsigned digitBits : {20u, 10u}) {
        const RelinKey rk = ctx.makeRelinKey(sk, digitBits);
        device->resetCounters();
        const Ciphertext ct = ctx.mulCt(ct_a, ct_b, rk);
        const DeviceStats s = device->stats();
        EXPECT_EQ(ctx.decrypt(sk, ct),
                  naiveNegacyclicModT(
                      a, b, ctx.params().plaintextModulus))
            << "base 2^" << digitBits;
        // Key-switch plumbing = the digit re-entry forwards plus
        // c2's split inverse (elided here: the scale-and-round hook
        // returns c2 already in Coeff).
        const uint64_t L = ctx.params().towers;
        EXPECT_EQ(s.keySwitchTransforms,
                  rk.totalDigits(L) * L);
        if (previous != 0)
            EXPECT_GT(s.keySwitchTransforms, previous);
        previous = s.keySwitchTransforms;
    }
}

} // namespace
} // namespace rpu
