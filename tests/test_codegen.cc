/**
 * @file
 * Code generator tests: every generated kernel must reproduce the
 * reference NTT bit-exactly on the functional simulator, respect the
 * 64-register VRF, fit its scratchpad budgets, and match the
 * instruction-count identities the algorithm implies.
 */

#include <gtest/gtest.h>

#include "codegen/ntt_codegen.hh"
#include "common/bitops.hh"
#include "rpu/runner.hh"

namespace rpu {
namespace {

struct CodegenCase
{
    uint64_t n;
    bool inverse;
    bool optimized;
};

std::string
caseName(const testing::TestParamInfo<CodegenCase> &info)
{
    const auto &c = info.param;
    return std::string(c.inverse ? "intt" : "ntt") + std::to_string(c.n) +
           (c.optimized ? "_opt" : "_naive");
}

class CodegenRoundTrip : public testing::TestWithParam<CodegenCase>
{
};

TEST_P(CodegenRoundTrip, MatchesReference)
{
    const auto &c = GetParam();
    NttRunner runner(c.n, 124);
    NttCodegenOptions opts;
    opts.inverse = c.inverse;
    opts.optimized = c.optimized;
    const NttKernel kernel = runner.makeKernel(opts);
    EXPECT_TRUE(runner.verify(kernel));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CodegenRoundTrip,
    testing::Values(CodegenCase{1024, false, true},
                    CodegenCase{1024, false, false},
                    CodegenCase{1024, true, true},
                    CodegenCase{2048, false, true},
                    CodegenCase{2048, true, false},
                    CodegenCase{4096, false, true},
                    CodegenCase{4096, true, true},
                    CodegenCase{8192, false, true},
                    CodegenCase{8192, false, false},
                    CodegenCase{16384, false, true},
                    CodegenCase{16384, true, true},
                    CodegenCase{32768, false, true},
                    CodegenCase{65536, false, true},
                    CodegenCase{65536, false, false},
                    CodegenCase{65536, true, true}),
    caseName);

TEST(Codegen, ButterflyCountIdentity)
{
    // Forward CIs are all butterflies: (n/1024) * log2(n) of them —
    // the paper quotes exactly 1024 for the 64K NTT.
    for (uint64_t n : {1024ull, 4096ull, 65536ull}) {
        NttRunner runner(n, 124);
        const NttKernel k = runner.makeKernel();
        const InstructionMix mix = k.program.mix();
        EXPECT_EQ(mix.butterflies, (n / 1024) * log2Floor(n))
            << "n=" << n;
    }
}

TEST(Codegen, SixtyFourKMixMatchesPaperScale)
{
    NttRunner runner(65536, 124);
    const NttKernel k = runner.makeKernel();
    const InstructionMix mix = k.program.mix();
    EXPECT_EQ(mix.butterflies, 1024u); // paper: 1024 CIs
    // Paper reports 1920 SIs; same order of magnitude is required.
    EXPECT_GT(mix.shuffles, 1000u);
    EXPECT_LT(mix.shuffles, 4000u);
}

TEST(Codegen, RoundTripForwardInverse)
{
    NttRunner runner(4096, 124);
    const NttKernel fwd = runner.makeKernel({.inverse = false});
    const NttKernel inv = runner.makeKernel({.inverse = true});

    Rng rng(7);
    const std::vector<u128> input =
        randomPoly(runner.modulus(), runner.n(), rng);
    const std::vector<u128> transformed = runner.execute(fwd, input);
    const std::vector<u128> recovered = runner.execute(inv, transformed);
    EXPECT_EQ(recovered, input);
}

TEST(Codegen, VdmBudget64k)
{
    // The flagship 64K kernel must fit the paper's 4 MiB VDM.
    NttRunner runner(65536, 124);
    const NttKernel k = runner.makeKernel();
    EXPECT_LE(k.vdmBytesRequired, arch::kVdmDefaultBytes);
}

TEST(Codegen, SdmBudget)
{
    for (uint64_t n : {1024ull, 65536ull}) {
        NttRunner runner(n, 124);
        for (bool inverse : {false, true}) {
            const NttKernel k =
                runner.makeKernel({.inverse = inverse});
            EXPECT_LE(k.sdmImage.size(), arch::kSdmWords) << "n=" << n;
        }
    }
}

TEST(Codegen, DeterministicGeneration)
{
    NttRunner runner(2048, 124);
    const NttKernel a = runner.makeKernel();
    const NttKernel b = runner.makeKernel();
    ASSERT_EQ(a.program.size(), b.program.size());
    for (size_t i = 0; i < a.program.size(); ++i)
        EXPECT_EQ(a.program[i], b.program[i]) << "at " << i;
}

TEST(Codegen, RejectsTinyRings)
{
    // n = 512 is a single vector register; the generator requires two.
    EXPECT_DEATH(
        {
            NttRunner runner(512, 60);
            runner.makeKernel();
        },
        "");
}

} // namespace
} // namespace rpu
