/**
 * @file
 * The RpuDevice backend layer: kernel-cache semantics, shared numeric
 * context caches, backend equivalence (functional simulator vs CPU
 * reference baseline), batched tower launches, and the BFV RNS-tower
 * multiply path that makes the simulated RPU the execution engine of
 * the HE pipeline.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "modmath/primegen.hh"
#include "rlwe/bfv.hh"
#include "rlwe_test_util.hh"
#include "rpu/device.hh"
#include "rpu/runner.hh"

namespace rpu {
namespace {

TEST(KernelCache, HitMissSemantics)
{
    RpuDevice dev;
    const uint64_t n = 1024;
    const u128 q = nttPrime(60, n);

    const KernelImage &fwd = dev.kernel(KernelKind::ForwardNtt, n, {q});
    EXPECT_EQ(dev.counters().kernelMisses, 1u);
    EXPECT_EQ(dev.counters().kernelHits, 0u);

    // Same spec: a hit, and the very same image.
    const KernelImage &again =
        dev.kernel(KernelKind::ForwardNtt, n, {q});
    EXPECT_EQ(&fwd, &again);
    EXPECT_EQ(dev.counters().kernelMisses, 1u);
    EXPECT_EQ(dev.counters().kernelHits, 1u);

    // Different kind, codegen flavour, or modulus: all misses.
    dev.kernel(KernelKind::InverseNtt, n, {q});
    dev.kernel(KernelKind::ForwardNtt, n, {q}, {.optimized = false});
    dev.kernel(KernelKind::ForwardNtt, n, {nttPrime(59, n)});
    EXPECT_EQ(dev.counters().kernelMisses, 4u);
    EXPECT_EQ(dev.cachedKernels(), 4u);

    // A different design point reschedules, so it is a distinct kernel.
    NttCodegenOptions opts;
    opts.scheduleConfig.numHples = 32;
    dev.kernel(KernelKind::ForwardNtt, n, {q}, opts);
    EXPECT_EQ(dev.counters().kernelMisses, 5u);

    // ... but unoptimized generation never consults the design point,
    // so sweeping it must keep hitting the one unoptimized kernel.
    NttCodegenOptions unopt;
    unopt.optimized = false;
    unopt.scheduleConfig.numHples = 32;
    dev.kernel(KernelKind::ForwardNtt, n, {q}, unopt);
    EXPECT_EQ(dev.counters().kernelMisses, 5u);
    EXPECT_EQ(dev.counters().kernelHits, 2u);
}

TEST(KernelCache, LaunchesShareKernelsAndModulusContexts)
{
    RpuDevice dev;
    const uint64_t n = 1024;
    const u128 q = nttPrime(60, n);
    Rng rng(7);
    const auto x = randomPoly(Modulus(q), n, rng);

    dev.ntt(n, q, x);
    const size_t contexts_after_first = dev.modulusCache().size();
    EXPECT_GT(contexts_after_first, 0u);

    dev.ntt(n, q, x);
    // Second launch: kernel cache hit, and no Montgomery context is
    // rebuilt (the per-launch rebuild this layer was added to fix).
    EXPECT_EQ(dev.counters().launches, 2u);
    EXPECT_EQ(dev.counters().kernelMisses, 1u);
    EXPECT_EQ(dev.counters().kernelHits, 1u);
    EXPECT_EQ(dev.modulusCache().size(), contexts_after_first);
}

class BackendEquivalence : public testing::TestWithParam<uint64_t>
{
};

TEST_P(BackendEquivalence, FunctionalSimMatchesCpuReference)
{
    const uint64_t n = GetParam();
    const u128 q = nttPrime(100, n);
    RpuDevice sim; // default: functional simulator
    RpuDevice ref(std::make_unique<CpuReferenceBackend>());

    Rng rng(n);
    const auto a = randomPoly(Modulus(q), n, rng);
    const auto b = randomPoly(Modulus(q), n, rng);

    // Forward, inverse, and the fused negacyclic product must be
    // bit-identical across backends.
    const auto fwd_sim = sim.ntt(n, q, a);
    EXPECT_EQ(fwd_sim, ref.ntt(n, q, a));
    EXPECT_EQ(sim.ntt(n, q, fwd_sim, true),
              ref.ntt(n, q, fwd_sim, true));
    EXPECT_EQ(sim.negacyclicMul(n, q, a, b),
              ref.negacyclicMul(n, q, a, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BackendEquivalence,
                         testing::Values(1024ull, 2048ull, 4096ull));

TEST(BatchedPolyMul, MatchesPerTowerReference)
{
    const uint64_t n = 1024;
    const size_t towers = 3;
    const auto primes = nttPrimes(60, n, towers);

    RpuDevice dev;
    Rng rng(21);
    std::vector<std::vector<u128>> a, b;
    for (u128 q : primes) {
        const Modulus mod(q);
        a.push_back(randomPoly(mod, n, rng));
        b.push_back(randomPoly(mod, n, rng));
    }

    const auto products = dev.mulTowers(n, primes, a, b);
    ASSERT_EQ(products.size(), towers);
    EXPECT_EQ(dev.counters().launches, 1u);
    EXPECT_EQ(dev.counters().towerLaunches, towers);

    for (size_t t = 0; t < towers; ++t) {
        const Modulus mod(primes[t]);
        const TwiddleTable tw(mod, n);
        const NttContext ntt(tw);
        EXPECT_EQ(products[t], negacyclicMulNtt(ntt, a[t], b[t]))
            << "tower " << t;
    }
}

TEST(BatchedPolyMul, EquivalentAcrossBackends)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(58, n, 2);
    RpuDevice sim;
    RpuDevice ref(std::make_unique<CpuReferenceBackend>());

    Rng rng(5);
    std::vector<std::vector<u128>> a, b;
    for (u128 q : primes) {
        const Modulus mod(q);
        a.push_back(randomPoly(mod, n, rng));
        b.push_back(randomPoly(mod, n, rng));
    }
    EXPECT_EQ(sim.mulTowers(n, primes, a, b),
              ref.mulTowers(n, primes, a, b));
}

TEST(KernelCache, EveryScheduleFieldIsKeyed)
{
    // Regression for a key that omitted an RpuConfig field: two
    // design points differing in any single field must never alias
    // to one cached kernel.
    RpuDevice dev;
    const uint64_t n = 1024;
    const u128 q = nttPrime(60, n);

    NttCodegenOptions base;
    dev.kernel(KernelKind::ForwardNtt, n, {q}, base);

    const std::vector<std::function<void(RpuConfig &)>> mutations = {
        [](RpuConfig &c) { c.numHples = 64; },
        [](RpuConfig &c) { c.numBanks = 64; },
        [](RpuConfig &c) { c.vdmBytes = 8ull << 20; },
        [](RpuConfig &c) { c.mulLatency = 7; },
        [](RpuConfig &c) { c.mulII = 2; },
        [](RpuConfig &c) { c.addLatency = 3; },
        [](RpuConfig &c) { c.shuffleLatency = 5; },
        [](RpuConfig &c) { c.lsLatency = 5; },
        [](RpuConfig &c) { c.sdmLatency = 3; },
        [](RpuConfig &c) { c.queueDepth = 4; },
        [](RpuConfig &c) { c.dispatchWidth = 2; },
        [](RpuConfig &c) { c.exclusiveReaders = true; },
    };
    uint64_t expected_misses = 1;
    for (const auto &mutate : mutations) {
        NttCodegenOptions opts = base;
        mutate(opts.scheduleConfig);
        dev.kernel(KernelKind::ForwardNtt, n, {q}, opts);
        ++expected_misses;
        EXPECT_EQ(dev.counters().kernelMisses, expected_misses)
            << "a scheduleConfig field is missing from the kernel key";
        // Requesting the same mutated config again must hit.
        dev.kernel(KernelKind::ForwardNtt, n, {q}, opts);
    }
    EXPECT_EQ(dev.counters().kernelHits, mutations.size());
}

TEST(LaunchAll, MatchesIndividualLaunches)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(60, n, 2);
    RpuDevice dev;

    Rng rng(9);
    std::vector<LaunchRequest> batch;
    for (u128 q : primes) {
        const KernelImage &k =
            dev.kernel(KernelKind::PolyMul, n, {q});
        const Modulus mod(q);
        batch.push_back(
            {&k, {randomPoly(mod, n, rng), randomPoly(mod, n, rng)}});
    }

    const auto results = dev.launchAll(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(results[i],
                  dev.launch(*batch[i].image, batch[i].inputs));
    }
}

// ----------------------------------------------------------------------
// Parallel launches
// ----------------------------------------------------------------------

/** A batch of per-tower fused products over distinct moduli. */
std::vector<LaunchRequest>
towerBatch(RpuDevice &dev, uint64_t n, const std::vector<u128> &primes,
           uint64_t seed)
{
    Rng rng(seed);
    std::vector<LaunchRequest> batch;
    for (u128 q : primes) {
        const KernelImage &k = dev.kernel(KernelKind::PolyMul, n, {q});
        const Modulus mod(q);
        batch.push_back(
            {&k, {randomPoly(mod, n, rng), randomPoly(mod, n, rng)}});
    }
    return batch;
}

TEST(ParallelLaunch, BitIdenticalToSerial)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(60, n, 6);
    RpuDevice dev;
    const auto batch = towerBatch(dev, n, primes, 17);

    EXPECT_EQ(dev.parallelism(), 1u);
    const auto serial = dev.launchAll(batch);

    dev.setParallelism(4);
    EXPECT_EQ(dev.parallelism(), 4u);
    const auto parallel = dev.launchAll(batch);

    // Same batch, worker pool on: request-ordered and bit-identical.
    EXPECT_EQ(parallel, serial);

    // Determinism across repeated parallel runs.
    EXPECT_EQ(dev.launchAll(batch), serial);

    dev.setParallelism(1);
    EXPECT_EQ(dev.parallelism(), 1u);
    EXPECT_EQ(dev.launchAll(batch), serial);
}

TEST(ParallelLaunch, MulTowersMatchesSerial)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(58, n, 4);

    Rng rng(23);
    std::vector<std::vector<u128>> a, b;
    for (u128 q : primes) {
        const Modulus mod(q);
        a.push_back(randomPoly(mod, n, rng));
        b.push_back(randomPoly(mod, n, rng));
    }

    RpuDevice serial_dev;
    const auto serial = serial_dev.mulTowers(n, primes, a, b);

    RpuDevice parallel_dev;
    parallel_dev.setParallelism(4);
    const auto parallel = parallel_dev.mulTowers(n, primes, a, b);
    EXPECT_EQ(parallel, serial);

    // The parallel path fans one launch per tower.
    EXPECT_EQ(parallel_dev.counters().launches, primes.size());
    EXPECT_EQ(parallel_dev.counters().towerLaunches, primes.size());
}

TEST(ParallelLaunch, LaunchAsyncMatchesSync)
{
    const uint64_t n = 1024;
    const u128 q = nttPrime(60, n);
    RpuDevice dev;
    const KernelImage &k = dev.kernel(KernelKind::PolyMul, n, {q});

    Rng rng(29);
    const Modulus mod(q);
    const auto a = randomPoly(mod, n, rng);
    const auto b = randomPoly(mod, n, rng);
    const auto expected = dev.launch(k, {a, b});

    // Serial device: the future is already resolved.
    auto fut = dev.launchAsync(k, {a, b});
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get(), expected);

    // Pooled device: same result through a worker.
    dev.setParallelism(2);
    auto pooled = dev.launchAsync(k, {a, b});
    EXPECT_EQ(pooled.get(), expected);
}

TEST(ParallelLaunch, ConcurrentCallersStress)
{
    // >= 4 host threads hammer one 4-worker device concurrently —
    // kernel cache, context caches, counters, and the worker pool all
    // see contention; every result must still be exact.
    const uint64_t n = 1024;
    const size_t callers = 4;
    const size_t rounds = 3;
    const auto primes = nttPrimes(59, n, callers);

    RpuDevice dev;
    dev.setParallelism(4);

    std::vector<std::thread> threads;
    std::vector<int> failures(callers, 0);
    for (size_t c = 0; c < callers; ++c) {
        threads.emplace_back([&, c] {
            // Each caller works a different modulus, so kernel
            // generation, twiddle tables, and Montgomery contexts are
            // first touched under contention.
            const u128 q = primes[c];
            const Modulus mod(q);
            const TwiddleTable tw(mod, n);
            const NttContext ntt(tw);
            Rng rng(100 + c);
            for (size_t r = 0; r < rounds; ++r) {
                const auto a = randomPoly(mod, n, rng);
                const auto b = randomPoly(mod, n, rng);
                const auto got = dev.negacyclicMul(n, q, a, b);
                if (got != negacyclicMulNtt(ntt, a, b))
                    ++failures[c];
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (size_t c = 0; c < callers; ++c)
        EXPECT_EQ(failures[c], 0) << "caller " << c;

    // Every launch was counted exactly once despite the contention.
    EXPECT_EQ(dev.counters().launches, callers * rounds);
    EXPECT_EQ(dev.counters().kernelMisses, callers);
}

TEST(WhenAll, JoinsAsyncLaunchesInRequestOrder)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(60, n, 3);
    RpuDevice dev;
    dev.setParallelism(2);

    Rng rng(61);
    std::vector<LaunchFuture> futures;
    std::vector<std::vector<std::vector<u128>>> expected;
    for (u128 q : primes) {
        const KernelImage &k = dev.kernel(KernelKind::PolyMul, n, {q});
        const Modulus mod(q);
        const auto a = randomPoly(mod, n, rng);
        const auto b = randomPoly(mod, n, rng);
        expected.push_back(dev.launch(k, {a, b}));
        futures.push_back(dev.launchAsync(k, {a, b}));
    }
    EXPECT_EQ(RpuDevice::whenAll(std::move(futures)), expected);
}

TEST(WhenAll, MulTowersBatchAsyncMatchesSyncBatch)
{
    // The async dispatch must resolve, pair by pair in any join
    // order, to exactly what the synchronous batch returns — on both
    // a serial device and a pooled one.
    const uint64_t n = 1024;
    const auto primes = nttPrimes(58, n, 3);

    const auto make_pairs = [&](uint64_t seed) {
        std::vector<std::vector<std::vector<u128>>> pairs(2);
        Rng rng(seed);
        for (auto &towers : pairs) {
            for (u128 q : primes)
                towers.push_back(randomPoly(Modulus(q), n, rng));
        }
        return pairs;
    };
    const auto as = make_pairs(67);
    const auto bs = make_pairs(71);

    RpuDevice sync_dev;
    const auto sync = sync_dev.mulTowersBatch(n, primes, as, bs);

    for (unsigned workers : {1u, 4u}) {
        RpuDevice dev;
        dev.setParallelism(workers);
        auto pending = dev.mulTowersBatchAsync(n, primes, as, bs);
        ASSERT_EQ(pending.size(), 2u);
        // Join the later pair first: order must not matter.
        const auto second =
            RpuDevice::collectTowers(std::move(pending[1]));
        const auto first =
            RpuDevice::collectTowers(std::move(pending[0]));
        EXPECT_EQ(first, sync[0]) << workers << " workers";
        EXPECT_EQ(second, sync[1]) << workers << " workers";
    }
}

TEST(KernelCache, SameKeyRaceGeneratesOnce)
{
    // Many threads racing for one kernel: the generation-in-progress
    // set must hand every waiter the single generated image — one
    // miss, every other request a hit.
    const uint64_t n = 1024;
    const u128 q = nttPrime(60, n);
    const size_t callers = 4;
    RpuDevice dev;

    std::vector<std::thread> threads;
    std::vector<const KernelImage *> images(callers, nullptr);
    for (size_t c = 0; c < callers; ++c) {
        threads.emplace_back([&, c] {
            images[c] = &dev.kernel(KernelKind::ForwardNtt, n, {q});
        });
    }
    for (auto &t : threads)
        t.join();

    for (size_t c = 1; c < callers; ++c)
        EXPECT_EQ(images[c], images[0]) << "caller " << c;
    EXPECT_EQ(dev.counters().kernelMisses, 1u);
    EXPECT_EQ(dev.counters().kernelHits, callers - 1);
    EXPECT_EQ(dev.cachedKernels(), 1u);
}

TEST(KernelCache, DistinctKeysGenerateConcurrently)
{
    // Distinct kernels generated from concurrent threads: every
    // generation is a miss (no spurious waiting or duplication), and
    // each thread's kernel computes the right transform.
    const uint64_t n = 1024;
    const size_t callers = 3;
    const auto primes = nttPrimes(57, n, callers);
    RpuDevice dev;

    std::vector<std::thread> threads;
    std::vector<int> failures(callers, 0);
    for (size_t c = 0; c < callers; ++c) {
        threads.emplace_back([&, c] {
            const u128 q = primes[c];
            const KernelImage &k =
                dev.kernel(KernelKind::ForwardNtt, n, {q});
            Rng rng(73 + c);
            std::vector<u128> x = randomPoly(Modulus(q), n, rng);
            const auto got = dev.launch(k, {x})[0];
            const Modulus mod(q);
            const TwiddleTable tw(mod, n);
            const NttContext ntt(tw);
            ntt.forward(x);
            if (got != x)
                ++failures[c];
        });
    }
    for (auto &t : threads)
        t.join();
    for (size_t c = 0; c < callers; ++c)
        EXPECT_EQ(failures[c], 0) << "caller " << c;
    EXPECT_EQ(dev.counters().kernelMisses, callers);
    EXPECT_EQ(dev.cachedKernels(), callers);
}

// ----------------------------------------------------------------------
// BFV on the device
// ----------------------------------------------------------------------

RlweParams
smallParams()
{
    RlweParams p;
    p.n = 1024;
    p.towers = 2;
    p.towerBits = 50;
    p.plaintextModulus = 65537;
    p.noiseBound = 4;
    return p;
}

TEST(BfvOnDevice, PlaintextMultiplyExecutesOnTheRpu)
{
    // The acceptance check: an HE multiply must actually run on the
    // simulated RPU through the device (non-zero launch and cache
    // counters) and produce ciphertexts identical to the host
    // pointwise path, tower for tower.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();

    Rng rng(33);
    std::vector<uint64_t> msg(ctx.params().n);
    for (auto &v : msg)
        v = rng.below64(ctx.params().plaintextModulus);
    std::vector<uint64_t> plain(ctx.params().n, 0);
    plain[0] = 2;
    plain[5] = 40000;
    const Ciphertext ct = ctx.encrypt(sk, msg);

    // Host reference path first (no device attached yet).
    const Ciphertext via_host = ctx.mulPlain(ct, plain);

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);
    const Ciphertext via_rpu = ctx.mulPlain(ct, plain);

    // Identical ciphertexts, bit for bit, still Eval-resident.
    EXPECT_EQ(via_rpu.c0, via_host.c0);
    EXPECT_EQ(via_rpu.c1, via_host.c1);
    EXPECT_EQ(via_rpu.domain(), ResidueDomain::Eval);

    // The device did the work, and only the minimal work: one
    // batched forward transform for the plaintext encode, then one
    // batched pointwise launch per ciphertext component — the
    // Eval-resident ciphertext itself was never transformed (the
    // elision ledger shows both components skipped).
    const size_t towers = ctx.basis().towers();
    {
        const DeviceStats s = device->stats();
        EXPECT_EQ(s.launches, 3u);
        EXPECT_EQ(s.kernelMisses, 2u);
        EXPECT_EQ(s.towerLaunches, 3 * towers);
        EXPECT_EQ(s.forwardTransforms, towers);
        EXPECT_EQ(s.inverseTransforms, 0u);
        EXPECT_EQ(s.pointwiseMuls, 2 * towers);
        EXPECT_EQ(s.transformsElided, 2 * towers);
    }

    // A second multiply reuses both cached kernels.
    const Ciphertext again = ctx.mulPlain(ct, plain);
    EXPECT_EQ(again.c0, via_host.c0);
    const DeviceCounters &c = device->counters();
    EXPECT_EQ(c.launches, 6u);
    EXPECT_EQ(c.kernelMisses, 2u);
    EXPECT_EQ(c.kernelHits, 2u);

    // And the result still decrypts correctly.
    EXPECT_EQ(ctx.decrypt(sk, via_rpu),
              testutil::naiveNegacyclicModT(
                  msg, plain, ctx.params().plaintextModulus));
}

TEST(BfvOnDevice, ParallelDeviceBitIdenticalToSerial)
{
    // The whole Eval-resident pipeline — per-tower pointwise
    // products fanned across the worker pool — must be bit-identical
    // to both the serial device and the host path.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();

    Rng rng(51);
    std::vector<uint64_t> msg(ctx.params().n), plain(ctx.params().n);
    for (auto &v : msg)
        v = rng.below64(ctx.params().plaintextModulus);
    for (auto &v : plain)
        v = rng.below64(ctx.params().plaintextModulus);
    const Ciphertext ct = ctx.encrypt(sk, msg);
    const Ciphertext via_host = ctx.mulPlain(ct, plain); // no device

    const auto device = std::make_shared<RpuDevice>();
    device->setParallelism(4);
    ctx.attachDevice(device);
    const Ciphertext via_pool = ctx.mulPlain(ct, plain);
    EXPECT_EQ(via_pool.c0, via_host.c0);
    EXPECT_EQ(via_pool.c1, via_host.c1);

    // One single-tower launch per (polynomial, tower): the encode's
    // forward fan-out plus both components' pointwise products.
    EXPECT_EQ(device->counters().launches,
              3 * ctx.basis().towers());

    device->setParallelism(1);
    const Ciphertext via_serial = ctx.mulPlain(ct, plain);
    EXPECT_EQ(via_serial.c0, via_pool.c0);
    EXPECT_EQ(via_serial.c1, via_pool.c1);
}

TEST(BfvOnDevice, EvalResidentPathMatchesAcrossBackends)
{
    // Backend-equivalence for the full encode + pointwise-multiply
    // path: the functional simulator and the CPU reference baseline
    // must both reproduce the host-path ciphertexts bit for bit.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();

    Rng rng(53);
    std::vector<uint64_t> msg(ctx.params().n), plain(ctx.params().n);
    for (auto &v : msg)
        v = rng.below64(ctx.params().plaintextModulus);
    for (auto &v : plain)
        v = rng.below64(ctx.params().plaintextModulus);
    const Ciphertext ct = ctx.encrypt(sk, msg);
    const Ciphertext reference = ctx.mulPlain(ct, plain); // no device

    ctx.attachDevice(
        std::make_shared<RpuDevice>(
            std::make_unique<CpuReferenceBackend>()));
    const Ciphertext via_cpu_ref = ctx.mulPlain(ct, plain);
    EXPECT_EQ(via_cpu_ref.c0, reference.c0);
    EXPECT_EQ(via_cpu_ref.c1, reference.c1);

    ctx.attachDevice(std::make_shared<RpuDevice>());
    const Ciphertext via_sim = ctx.mulPlain(ct, plain);
    EXPECT_EQ(via_sim.c0, reference.c0);
    EXPECT_EQ(via_sim.c1, reference.c1);
}

// ----------------------------------------------------------------------
// Pointwise kernels and the domain-boundary dispatch paths
// ----------------------------------------------------------------------

TEST(CpuReference, EveryKernelKindHasAHandler)
{
    // The reference backend's kind -> handler table must cover every
    // KernelKind: a new kind merged without a reference handler fails
    // here, in ctest, instead of fataling at the first launch of a
    // production run.
    for (int k = 0; k < int(KernelKind::kCount); ++k) {
        EXPECT_TRUE(CpuReferenceBackend::handles(KernelKind(k)))
            << "KernelKind " << k
            << " has no CpuReferenceBackend handler";
    }
}

TEST(PointwiseKernel, MatchesHostPointwiseAcrossBackends)
{
    const uint64_t n = 1024;
    const u128 q = nttPrime(60, n);
    RpuDevice sim;
    RpuDevice ref(std::make_unique<CpuReferenceBackend>());

    Rng rng(83);
    const Modulus mod(q);
    const auto a = randomPoly(mod, n, rng);
    const auto b = randomPoly(mod, n, rng);

    const auto expected = polyPointwise(mod, a, b);
    EXPECT_EQ(sim.pointwiseMul(n, q, a, b), expected);
    EXPECT_EQ(ref.pointwiseMul(n, q, a, b), expected);

    // The generated program really has no butterfly stages: it is a
    // small fraction of the fused polymul's size.
    const KernelImage &pw = sim.kernel(KernelKind::PointwiseMul, n, {q});
    const KernelImage &mul = sim.kernel(KernelKind::PolyMul, n, {q});
    EXPECT_LT(10 * pw.program.size(), mul.program.size());
}

TEST(PointwiseKernel, BatchedMatchesPerTowerAcrossBackends)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(58, n, 3);
    RpuDevice sim;
    RpuDevice ref(std::make_unique<CpuReferenceBackend>());

    Rng rng(89);
    std::vector<std::vector<std::vector<u128>>> a(1), b(1);
    for (u128 q : primes) {
        const Modulus mod(q);
        a[0].push_back(randomPoly(mod, n, rng));
        b[0].push_back(randomPoly(mod, n, rng));
    }

    for (RpuDevice *dev : {&sim, &ref}) {
        auto pending =
            dev->pointwiseTowersBatchAsync(n, primes, a, b);
        ASSERT_EQ(pending.size(), 1u);
        const auto towers =
            RpuDevice::collectTowers(std::move(pending[0]));
        ASSERT_EQ(towers.size(), primes.size());
        for (size_t t = 0; t < primes.size(); ++t) {
            EXPECT_EQ(towers[t],
                      polyPointwise(Modulus(primes[t]), a[0][t],
                                    b[0][t]))
                << dev->backend().name() << " tower " << t;
        }
    }
}

TEST(TransformTowers, BatchedInverseUndoesBatchedForward)
{
    // Eval <-> Coeff round trip, bit-identical on every tower, across
    // the serial device, a pooled device, and the CPU reference
    // backend — the transition ResidueOps issues at domain
    // boundaries.
    const uint64_t n = 1024;
    const auto primes = nttPrimes(59, n, 3);

    Rng rng(97);
    std::vector<std::vector<u128>> original;
    for (u128 q : primes)
        original.push_back(randomPoly(Modulus(q), n, rng));

    const auto round_trip = [&](RpuDevice &dev) {
        std::vector<std::vector<std::vector<u128>>> xs(1);
        xs[0] = original;
        auto fwd = dev.transformTowersBatchAsync(n, primes,
                                                 std::move(xs), false);
        std::vector<std::vector<std::vector<u128>>> ys(1);
        ys[0] = RpuDevice::collectTowers(std::move(fwd[0]));
        // The evaluation form is not the coefficient form.
        EXPECT_NE(ys[0], original) << dev.backend().name();
        auto inv = dev.transformTowersBatchAsync(n, primes,
                                                 std::move(ys), true);
        return RpuDevice::collectTowers(std::move(inv[0]));
    };

    RpuDevice serial;
    EXPECT_EQ(round_trip(serial), original);

    RpuDevice pooled;
    pooled.setParallelism(4);
    EXPECT_EQ(round_trip(pooled), original);

    RpuDevice ref(std::make_unique<CpuReferenceBackend>());
    EXPECT_EQ(round_trip(ref), original);
}

TEST(DeviceStats, AggregatesLaunchesTransformsAndWorkers)
{
    const uint64_t n = 1024;
    const auto primes = nttPrimes(60, n, 2);
    RpuDevice dev;

    Rng rng(101);
    std::vector<std::vector<u128>> a, b;
    for (u128 q : primes) {
        const Modulus mod(q);
        a.push_back(randomPoly(mod, n, rng));
        b.push_back(randomPoly(mod, n, rng));
    }

    // Serial: one batched polymul launch (2 fwd + 1 inv + 1 pointwise
    // per tower) plus one explicitly elided conversion.
    dev.mulTowers(n, primes, a, b);
    dev.noteElidedTransforms(primes.size());
    {
        const DeviceStats s = dev.stats();
        EXPECT_EQ(s.launches, 1u);
        EXPECT_EQ(s.towerLaunches, primes.size());
        EXPECT_EQ(s.forwardTransforms, 2 * primes.size());
        EXPECT_EQ(s.inverseTransforms, primes.size());
        EXPECT_EQ(s.pointwiseMuls, primes.size());
        EXPECT_EQ(s.transformsElided, primes.size());
        EXPECT_EQ(s.transformsIssued(), 3 * primes.size());
        // Serial launches attribute to slot 0 (the calling thread).
        ASSERT_EQ(s.perWorkerLaunches.size(), 1u);
        EXPECT_EQ(s.perWorkerLaunches[0], 1u);
        // The cycle ledger folds the kernel's modelled cost into the
        // same slot: one lane did everything, so the makespan IS the
        // total.
        ASSERT_EQ(s.perWorkerCycles.size(), 1u);
        EXPECT_GT(s.perWorkerCycles[0], 0u);
        EXPECT_EQ(s.cycleTotal(), s.perWorkerCycles[0]);
        EXPECT_EQ(s.makespanCycles(), s.cycleTotal());
        EXPECT_FALSE(s.summary().empty());
    }

    // Pooled: per-tower launches spread across workers; the
    // per-worker ledger must account for every launch exactly once.
    dev.resetCounters();
    dev.setParallelism(2);
    dev.mulTowers(n, primes, a, b);
    {
        const DeviceStats s = dev.stats();
        EXPECT_EQ(s.launches, primes.size());
        ASSERT_EQ(s.perWorkerLaunches.size(), 3u); // inline + 2 workers
        uint64_t attributed = 0;
        for (uint64_t w : s.perWorkerLaunches)
            attributed += w;
        EXPECT_EQ(attributed, s.launches);
        // Worker launches never attribute to the inline slot.
        EXPECT_EQ(s.perWorkerLaunches[0], 0u);
        // Per-worker cycles follow the launches: nothing on the
        // inline slot, every launch's modelled cost on some worker,
        // and the makespan (busiest lane) bounded by the total.
        ASSERT_EQ(s.perWorkerCycles.size(), 3u);
        EXPECT_EQ(s.perWorkerCycles[0], 0u);
        EXPECT_GT(s.cycleTotal(), 0u);
        EXPECT_GT(s.makespanCycles(), 0u);
        EXPECT_LE(s.makespanCycles(), s.cycleTotal());
    }

    // The per-kernel cost the ledger folds in is stamped on the
    // cached image at generation and stable across launches.
    const KernelImage &k = dev.kernel(KernelKind::PolyMul, n,
                                      {primes[0]});
    EXPECT_GT(k.modelCycles, 0u);

    // resetCounters clears the whole snapshot.
    dev.resetCounters();
    const DeviceStats cleared = dev.stats();
    EXPECT_EQ(cleared.launches, 0u);
    EXPECT_EQ(cleared.transformsIssued(), 0u);
    EXPECT_EQ(cleared.transformsElided, 0u);
    EXPECT_EQ(cleared.cycleTotal(), 0u);
    for (uint64_t w : cleared.perWorkerLaunches)
        EXPECT_EQ(w, 0u);
}

TEST(BfvOnDevice, SharedDeviceAccumulatesAcrossContexts)
{
    // One device can serve several scheme contexts (and NttRunner
    // workbenches); its caches are shared.
    const auto device = std::make_shared<RpuDevice>();
    BfvContext ctx(smallParams());
    ctx.attachDevice(device);
    NttRunner runner = NttRunner::withModulus(
        ctx.params().n, ctx.basis().prime(0), device);

    // encode (1 batched forward launch) + mulPlain (2 pointwise).
    const SecretKey sk = ctx.keygen();
    std::vector<uint64_t> msg(ctx.params().n, 1), plain(ctx.params().n,
                                                        2);
    ctx.mulPlain(ctx.encrypt(sk, msg), plain);

    const NttKernel fwd = runner.makeKernel();
    Rng rng(41);
    runner.execute(fwd, randomPoly(Modulus(ctx.basis().prime(0)),
                                   ctx.params().n, rng));
    EXPECT_EQ(device->counters().launches, 4u);
    EXPECT_GT(device->modulusCache().size(), 0u);
}

} // namespace
} // namespace rpu
