/**
 * @file
 * The CKKS subsystem: canonical-embedding encoder round-trips, the
 * RNS-native scheme (encrypt/decrypt, add, mulPlain, rescale), exact
 * RNS rescaling against a wide-integer reference, and device-vs-host
 * bit-identity for every homomorphic op that dispatches to the RPU.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "rlwe/ckks.hh"
#include "rlwe/ckks_encoder.hh"
#include "rpu/device.hh"
#include "wide/biguint.hh"

namespace rpu {
namespace {

using Cplx = std::complex<double>;

/** Deterministic slot values in the unit disc. */
std::vector<Cplx>
randomSlots(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Cplx> v(count);
    for (auto &z : v)
        z = {2.0 * rng.nextDouble() - 1.0, 2.0 * rng.nextDouble() - 1.0};
    return v;
}

double
maxSlotError(const std::vector<Cplx> &got, const std::vector<Cplx> &want)
{
    EXPECT_EQ(got.size(), want.size());
    double worst = 0.0;
    for (size_t i = 0; i < want.size(); ++i)
        worst = std::max(worst, std::abs(got[i] - want[i]));
    return worst;
}

// ----------------------------------------------------------------------
// Encoder
// ----------------------------------------------------------------------

class EncoderRoundTrip
    : public testing::TestWithParam<std::tuple<uint64_t, double>>
{
};

TEST_P(EncoderRoundTrip, ErrorWithinRoundingBound)
{
    const uint64_t n = std::get<0>(GetParam());
    const double scale = std::get<1>(GetParam());
    CkksEncoder enc(n);
    ASSERT_EQ(enc.slots(), n / 2);

    const auto values = randomSlots(enc.slots(), n + uint64_t(scale));
    const auto coeffs = enc.encode(values, scale);
    const auto decoded = enc.decode(coeffs, scale);

    // Each coefficient rounds by at most 1/2; decoding sums n of them
    // against unit-modulus roots, so n/(2*scale) bounds the error
    // deterministically (the typical error is ~sqrt(n)/(2*scale)).
    const double bound = double(n) / (2.0 * scale) + 1e-9;
    EXPECT_LT(maxSlotError(decoded, values), bound);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndScales, EncoderRoundTrip,
    testing::Combine(testing::Values(1024ull, 2048ull, 4096ull),
                     testing::Values(1073741824.0,      // 2^30
                                     1099511627776.0,   // 2^40
                                     1125899906842624.0 // 2^50
                                     )));

TEST(CkksEncoder, MatchesNaiveEmbeddingEvaluation)
{
    // The twisted-FFT decode must agree with evaluating the
    // polynomial directly at the primitive roots zeta^(5^j).
    const uint64_t n = 16;
    const double scale = 1048576.0; // 2^20
    CkksEncoder enc(n);
    const auto values = randomSlots(enc.slots(), 99);
    const auto coeffs = enc.encode(values, scale);

    const double pi = 3.141592653589793238462643383279502884;
    uint64_t power = 1;
    for (size_t j = 0; j < enc.slots(); ++j) {
        Cplx acc{0.0, 0.0};
        for (uint64_t k = 0; k < n; ++k) {
            const double angle =
                pi * double((power * k) % (2 * n)) / double(n);
            acc += double(coeffs[k]) *
                   Cplx{std::cos(angle), std::sin(angle)};
        }
        const Cplx direct = acc / scale;
        const Cplx via_fft = enc.decode(coeffs, scale)[j];
        EXPECT_LT(std::abs(direct - via_fft), 1e-9)
            << "slot " << j;
        power = (power * 5) % (2 * n);
    }
}

TEST(CkksEncoder, PartialSlotVectorsPadWithZero)
{
    CkksEncoder enc(1024);
    const std::vector<Cplx> two = {{1.5, -0.25}, {0.0, 2.0}};
    const auto decoded =
        enc.decode(enc.encode(two, 1099511627776.0), 1099511627776.0);
    EXPECT_LT(std::abs(decoded[0] - two[0]), 1e-6);
    EXPECT_LT(std::abs(decoded[1] - two[1]), 1e-6);
    for (size_t j = 2; j < enc.slots(); ++j)
        EXPECT_LT(std::abs(decoded[j]), 1e-6) << "slot " << j;
}

// ----------------------------------------------------------------------
// Scheme: host path
// ----------------------------------------------------------------------

CkksParams
smallParams()
{
    CkksParams p;
    p.n = 1024;
    p.towers = 3;
    p.towerBits = 45;
    p.scale = 1099511627776.0; // 2^40
    p.noiseBound = 4;
    return p;
}

/** |got - want| <= 2^-20 * max(1, |want|) on every slot. */
void
expectWithinRelative(const std::vector<Cplx> &got,
                     const std::vector<Cplx> &want)
{
    const double rel = std::ldexp(1.0, -20);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_LE(std::abs(got[i] - want[i]),
                  rel * std::max(1.0, std::abs(want[i])))
            << "slot " << i;
    }
}

TEST(Ckks, EncryptDecryptRoundTrip)
{
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto values = randomSlots(ctx.slots(), 7);

    const CkksCiphertext ct = ctx.encrypt(sk, values);
    EXPECT_EQ(ct.towers(), ctx.params().towers);
    EXPECT_EQ(ct.scale, ctx.params().scale);
    expectWithinRelative(ctx.decrypt(sk, ct), values);
}

TEST(Ckks, HomomorphicAdd)
{
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto za = randomSlots(ctx.slots(), 11);
    const auto zb = randomSlots(ctx.slots(), 13);

    const CkksCiphertext sum =
        ctx.add(ctx.encrypt(sk, za), ctx.encrypt(sk, zb));
    std::vector<Cplx> want(ctx.slots());
    for (size_t i = 0; i < want.size(); ++i)
        want[i] = za[i] + zb[i];
    expectWithinRelative(ctx.decrypt(sk, sum), want);
}

TEST(Ckks, MulPlainAndRescaleApproximateSlotProducts)
{
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto z = randomSlots(ctx.slots(), 17);
    const auto w = randomSlots(ctx.slots(), 19);

    const CkksCiphertext ct = ctx.encrypt(sk, z);
    const CkksCiphertext prod = ctx.mulPlain(ct, w);
    EXPECT_DOUBLE_EQ(prod.scale,
                     ctx.params().scale * ctx.params().scale);

    std::vector<Cplx> want(ctx.slots());
    for (size_t i = 0; i < want.size(); ++i)
        want[i] = z[i] * w[i];
    expectWithinRelative(ctx.decrypt(sk, prod), want);

    // Rescale drops one tower and divides the scale back down; the
    // slots must survive both.
    const CkksCiphertext dropped = ctx.rescale(prod);
    EXPECT_EQ(dropped.towers(), prod.towers() - 1);
    EXPECT_LT(dropped.scale, prod.scale);
    expectWithinRelative(ctx.decrypt(sk, dropped), want);
}

TEST(Ckks, RescaleMatchesWideIntegerReference)
{
    // The RNS rescale must be the exact per-tower image of the
    // wide-integer map V -> (V - centred(V mod q_l)) / q_l.
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    CkksCiphertext ct =
        ctx.mulPlain(ctx.encrypt(sk, randomSlots(ctx.slots(), 23)),
                     randomSlots(ctx.slots(), 29));
    CkksCiphertext scaled = ctx.rescale(ct);

    // The chain runs evaluation-resident; the wide-integer reference
    // speaks coefficients, so compare both in coefficient form.
    ctx.toCoeff(ct);
    ctx.toCoeff(scaled);

    const size_t L = ct.towers();
    const CrtContext &crt = ctx.crt(L);
    const BigUInt &big_q = ctx.prefixBasis(L).q();
    const BigUInt q_l = BigUInt::fromU128(ctx.basis().prime(L - 1));
    const BigUInt half_l = q_l >> 1;

    const std::vector<std::vector<u128>> *comps[2] = {&ct.c0.towers,
                                                      &ct.c1.towers};
    const std::vector<std::vector<u128>> *outs[2] = {&scaled.c0.towers,
                                                     &scaled.c1.towers};
    for (size_t c = 0; c < 2; ++c) {
        for (size_t i = 0; i < ctx.params().n; ++i) {
            std::vector<u128> residues(L);
            for (size_t t = 0; t < L; ++t)
                residues[t] = (*comps[c])[t][i];
            const BigUInt v = crt.reconstruct(residues);

            // Centred remainder mod q_l, then exact division.
            const BigUInt rem = v % q_l;
            BigUInt shifted = v;
            if (rem > half_l)
                shifted = shifted + (q_l - rem);
            else
                shifted = (shifted + big_q) - rem; // stay non-negative
            const auto [quot, exact_rem] = shifted.divmod(q_l);
            ASSERT_TRUE(exact_rem.isZero())
                << "component " << c << " coefficient " << i;

            for (size_t t = 0; t + 1 < L; ++t) {
                const BigUInt qt =
                    BigUInt::fromU128(ctx.basis().prime(t));
                EXPECT_EQ((quot % qt).low128(), (*outs[c])[t][i])
                    << "component " << c << " tower " << t
                    << " coefficient " << i;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Scheme: device path
// ----------------------------------------------------------------------

TEST(CkksOnDevice, MulPlainBitIdenticalToHostOnEveryTower)
{
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto z = randomSlots(ctx.slots(), 31);
    const auto w = randomSlots(ctx.slots(), 37);
    const CkksCiphertext ct = ctx.encrypt(sk, z);
    EXPECT_EQ(ct.domain(), ResidueDomain::Eval);

    const CkksCiphertext via_host = ctx.mulPlain(ct, w); // no device

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);
    const CkksCiphertext via_rpu = ctx.mulPlain(ct, w);

    ASSERT_EQ(via_rpu.towers(), via_host.towers());
    EXPECT_EQ(via_rpu.domain(), ResidueDomain::Eval);
    for (size_t t = 0; t < via_host.towers(); ++t) {
        EXPECT_EQ(via_rpu.c0.towers[t], via_host.c0.towers[t])
            << "tower " << t;
        EXPECT_EQ(via_rpu.c1.towers[t], via_host.c1.towers[t])
            << "tower " << t;
    }
    EXPECT_DOUBLE_EQ(via_rpu.scale, via_host.scale);

    // The device really did the work, and only the minimal work: one
    // batched forward transform for the plaintext encode, then one
    // batched pointwise launch per ciphertext component — the
    // Eval-resident ciphertext itself was never transformed (the
    // elision ledger shows both components skipped).
    const size_t L = ctx.params().towers;
    const DeviceStats s = device->stats();
    EXPECT_EQ(s.launches, 3u);
    EXPECT_EQ(s.towerLaunches, 3 * L);
    EXPECT_EQ(s.kernelMisses, 2u);
    EXPECT_EQ(s.forwardTransforms, L);
    EXPECT_EQ(s.inverseTransforms, 0u);
    EXPECT_EQ(s.pointwiseMuls, 2 * L);
    EXPECT_EQ(s.transformsElided, 2 * L);

    // And the result decrypts to the slot products.
    std::vector<Cplx> want(ctx.slots());
    for (size_t i = 0; i < want.size(); ++i)
        want[i] = z[i] * w[i];
    expectWithinRelative(ctx.decrypt(sk, via_rpu), want);
}

TEST(CkksOnDevice, RescaleBitIdenticalToHostOnEveryTower)
{
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const CkksCiphertext prod =
        ctx.mulPlain(ctx.encrypt(sk, randomSlots(ctx.slots(), 41)),
                     randomSlots(ctx.slots(), 43));

    const CkksCiphertext via_host = ctx.rescale(prod); // no device

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);
    const CkksCiphertext via_rpu = ctx.rescale(prod);

    ASSERT_EQ(via_rpu.towers(), via_host.towers());
    for (size_t t = 0; t < via_host.towers(); ++t) {
        EXPECT_EQ(via_rpu.c0.towers[t], via_host.c0.towers[t])
            << "tower " << t;
        EXPECT_EQ(via_rpu.c1.towers[t], via_host.c1.towers[t])
            << "tower " << t;
    }
    EXPECT_DOUBLE_EQ(via_rpu.scale, via_host.scale);

    // An Eval-resident rescale's only device work is the forced
    // return to coefficients of the *dropped* tower: one inverse-NTT
    // launch per component, zero forward transforms.
    const DeviceStats s = device->stats();
    EXPECT_EQ(s.launches, 2u);
    EXPECT_EQ(s.kernelMisses, 1u);
    EXPECT_EQ(s.inverseTransforms, 2u);
    EXPECT_EQ(s.forwardTransforms, 0u);
}

TEST(CkksOnDevice, RescaleCommutesWithDomainTransitions)
{
    // toCoeff(rescale(Eval ct)) must equal rescale(toCoeff(ct)) bit
    // for bit: the evaluation-domain rescale is the same exact RNS
    // map, just computed without leaving residency.
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const CkksCiphertext prod =
        ctx.mulPlain(ctx.encrypt(sk, randomSlots(ctx.slots(), 63)),
                     randomSlots(ctx.slots(), 65));
    ASSERT_EQ(prod.domain(), ResidueDomain::Eval);

    CkksCiphertext via_eval = ctx.rescale(prod);
    EXPECT_EQ(via_eval.domain(), ResidueDomain::Eval);
    ctx.toCoeff(via_eval);

    CkksCiphertext coeff_prod = prod;
    ctx.toCoeff(coeff_prod);
    const CkksCiphertext via_coeff = ctx.rescale(coeff_prod);
    EXPECT_EQ(via_coeff.domain(), ResidueDomain::Coeff);

    ASSERT_EQ(via_eval.towers(), via_coeff.towers());
    for (size_t t = 0; t < via_eval.towers(); ++t) {
        EXPECT_EQ(via_eval.c0.towers[t], via_coeff.c0.towers[t])
            << "tower " << t;
        EXPECT_EQ(via_eval.c1.towers[t], via_coeff.c1.towers[t])
            << "tower " << t;
    }
    EXPECT_DOUBLE_EQ(via_eval.scale, via_coeff.scale);
}

TEST(CkksOnDevice, ChainedMulPlainRescaleIssuesMinimalTransforms)
{
    // The acceptance check for evaluation-domain residency: across a
    // chained mulPlain -> rescale -> mulPlain with a pre-encoded
    // plaintext, the device issues *zero* forward-NTT launches —
    // only the rescale's two dropped-tower inverse transforms and
    // the pointwise products — while the elision ledger records the
    // conversions a coefficient-resident system would have paid.
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto z = randomSlots(ctx.slots(), 67);
    const auto w = randomSlots(ctx.slots(), 69);

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);

    // Setup: encode once (the plaintext's only transform, reused at
    // every level through its tower prefix) and encrypt.
    const CkksPlaintext pt = ctx.encodePlain(w);
    const CkksCiphertext ct = ctx.encrypt(sk, z);

    device->resetCounters();
    const CkksCiphertext p1 = ctx.mulPlain(ct, pt);
    const CkksCiphertext r1 = ctx.rescale(p1);
    const CkksCiphertext p2 = ctx.mulPlain(r1, pt);

    const size_t L = ctx.params().towers;
    const size_t l = L - 1;
    const DeviceStats s = device->stats();
    EXPECT_EQ(s.forwardTransforms, 0u)
        << "a forward NTT ran inside the chained hot path";
    EXPECT_EQ(s.inverseTransforms, 2u); // rescale's dropped tower x2
    EXPECT_EQ(s.pointwiseMuls, 2 * L + 2 * l);
    EXPECT_EQ(s.launches, 6u); // 2 pointwise + 2 intt + 2 pointwise
    EXPECT_EQ(s.transformsElided, 2 * L + 2 * l);

    // The chain still computes z * w * w at the right scale.
    std::vector<Cplx> want(ctx.slots());
    for (size_t i = 0; i < want.size(); ++i)
        want[i] = z[i] * w[i] * w[i];
    expectWithinRelative(ctx.decrypt(sk, p2), want);
}

TEST(CkksOnDevice, ParallelDeviceBitIdenticalToSerial)
{
    // The full pipeline — encrypt, device mulPlain, device rescale,
    // decrypt — across worker pools must match the serial device and
    // the host path bit for bit.
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto z = randomSlots(ctx.slots(), 47);
    const auto w = randomSlots(ctx.slots(), 53);
    const CkksCiphertext ct = ctx.encrypt(sk, z);

    const CkksCiphertext host_prod = ctx.mulPlain(ct, w);
    const CkksCiphertext host_scaled = ctx.rescale(host_prod);

    const auto device = std::make_shared<RpuDevice>();
    device->setParallelism(4);
    ctx.attachDevice(device);
    const CkksCiphertext pool_prod = ctx.mulPlain(ct, w);
    const CkksCiphertext pool_scaled = ctx.rescale(pool_prod);

    for (size_t t = 0; t < host_prod.towers(); ++t) {
        EXPECT_EQ(pool_prod.c0.towers[t], host_prod.c0.towers[t])
            << "tower " << t;
        EXPECT_EQ(pool_prod.c1.towers[t], host_prod.c1.towers[t])
            << "tower " << t;
    }
    for (size_t t = 0; t < host_scaled.towers(); ++t) {
        EXPECT_EQ(pool_scaled.c0.towers[t], host_scaled.c0.towers[t])
            << "tower " << t;
        EXPECT_EQ(pool_scaled.c1.towers[t], host_scaled.c1.towers[t])
            << "tower " << t;
    }

    // Parallel mulPlain fans one launch per (component, tower).
    device->setParallelism(1);
    const CkksCiphertext serial_prod = ctx.mulPlain(ct, w);
    for (size_t t = 0; t < serial_prod.towers(); ++t) {
        EXPECT_EQ(serial_prod.c0.towers[t], host_prod.c0.towers[t]);
        EXPECT_EQ(serial_prod.c1.towers[t], host_prod.c1.towers[t]);
    }
}

TEST(CkksOnDevice, CpuReferenceBackendMatchesFunctionalSim)
{
    CkksContext ctx(smallParams());
    const CkksSecretKey sk = ctx.keygen();
    const auto z = randomSlots(ctx.slots(), 59);
    const auto w = randomSlots(ctx.slots(), 61);
    const CkksCiphertext ct = ctx.encrypt(sk, z);

    ctx.attachDevice(std::make_shared<RpuDevice>());
    const CkksCiphertext via_sim = ctx.rescale(ctx.mulPlain(ct, w));

    ctx.attachDevice(std::make_shared<RpuDevice>(
        std::make_unique<CpuReferenceBackend>()));
    const CkksCiphertext via_ref = ctx.rescale(ctx.mulPlain(ct, w));

    for (size_t t = 0; t < via_sim.towers(); ++t) {
        EXPECT_EQ(via_sim.c0.towers[t], via_ref.c0.towers[t])
            << "tower " << t;
        EXPECT_EQ(via_sim.c1.towers[t], via_ref.c1.towers[t])
            << "tower " << t;
    }
}

} // namespace
} // namespace rpu
