/**
 * @file
 * RpuTopology and the multi-RPU serving path: shared kernel caches
 * across devices ("generate once, launch anywhere"), the
 * HBM-contention refinement of the per-worker cycle ledger, the
 * topology stats roll-up (padding-correct summing, makespan as a max
 * over devices), bit-identity of the sharded coalesced hooks against
 * the single-device path, the makespan scheduler's placement rules
 * (paused devices never selected, load-correcting bookings), and the
 * load-bearing degeneracy: a 1-device-topology server is
 * bit-identical — outputs and launch ledger — to the single-device
 * server.
 */

#include <gtest/gtest.h>

#include <complex>
#include <future>
#include <memory>
#include <vector>

#include "model/contention.hh"
#include "rlwe/ckks.hh"
#include "rpu/device.hh"
#include "rpu/topology.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"

namespace rpu {
namespace {

using serve::HeServer;
using serve::MakespanScheduler;
using serve::RequestOp;
using serve::ServeConfig;
using serve::ServeResponse;
using serve::SubmitStatus;

using Cplx = std::complex<double>;

CkksParams
topoParams()
{
    CkksParams p;
    p.n = 1024;
    p.towers = 3;
    p.towerBits = 45;
    p.scale = 1099511627776.0; // 2^40
    p.noiseBound = 4;
    return p;
}

std::vector<Cplx>
slotValues(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Cplx> v(count);
    for (auto &z : v)
        z = {2.0 * rng.nextDouble() - 1.0, 2.0 * rng.nextDouble() - 1.0};
    return v;
}

/** @p items coalesced-transform inputs over the standard 3-tower
 *  basis: items x towers regions of ring randomness. */
std::vector<std::vector<std::vector<u128>>>
coalescedInputs(size_t items, const std::vector<u128> &primes,
                uint64_t n, uint64_t seed)
{
    std::vector<std::vector<std::vector<u128>>> xs(items);
    for (size_t i = 0; i < items; ++i) {
        for (size_t t = 0; t < primes.size(); ++t) {
            std::vector<u128> region(n);
            Rng rng(seed + 1000 * i + t);
            for (auto &x : region)
                x = rng.below64(uint64_t(primes[t]));
            xs[i].push_back(std::move(region));
        }
    }
    return xs;
}

// ----------------------------------------------------------------------
// HbmContentionModel
// ----------------------------------------------------------------------

TEST(HbmContentionModel, SingleLaneReproducesTheCycleLedgerExactly)
{
    HbmContentionModel m;
    // Fully overlapped staging at one occupant: busy == compute, no
    // matter how much data moved.
    EXPECT_EQ(m.busyCycles(1234, 1u << 20, 1), 1234u);
    EXPECT_EQ(m.busyCycles(1234, 1u << 20, 0), 1234u);
    EXPECT_EQ(m.stagingCycles(0), 0u);
    EXPECT_GE(m.stagingCycles(1), 1u);
}

TEST(HbmContentionModel, EachExtraLaneReexposesStagingOnce)
{
    HbmContentionModel m;
    const uint64_t words = 4096;
    const uint64_t staging = m.stagingCycles(words);
    ASSERT_GT(staging, 0u);
    EXPECT_EQ(m.busyCycles(1000, words, 2), 1000 + staging);
    EXPECT_EQ(m.busyCycles(1000, words, 4), 1000 + 3 * staging);
}

// ----------------------------------------------------------------------
// Shared caches across the topology
// ----------------------------------------------------------------------

TEST(RpuTopology, KernelGeneratedOnDeviceZeroIsACacheHitOnDeviceOne)
{
    RpuTopology topo(2);
    const CkksContext ctx(topoParams(), 5);
    const std::vector<u128> primes = ctx.basis().primes();

    (void)topo.device(0)->kernel(KernelKind::BatchedForwardNtt, 1024,
                                 primes);
    const DeviceStats d0 = topo.device(0)->stats();
    EXPECT_EQ(d0.kernelMisses, 1u);

    // Same key from the other device: a hit on the shared bundle —
    // no regeneration, no second cycle simulation.
    (void)topo.device(1)->kernel(KernelKind::BatchedForwardNtt, 1024,
                                 primes);
    const DeviceStats d1 = topo.device(1)->stats();
    EXPECT_EQ(d1.kernelMisses, 0u);
    EXPECT_EQ(d1.kernelHits, 1u);
    EXPECT_EQ(topo.device(0)->cachedKernels(),
              topo.device(1)->cachedKernels());
}

// ----------------------------------------------------------------------
// DeviceStats aggregation across a device set
// ----------------------------------------------------------------------

TEST(RpuTopology, StatsSumPadsPerWorkerVectorsAcrossDevices)
{
    DeviceStats narrow;
    narrow.launches = 2;
    narrow.perWorkerLaunches = {2};
    narrow.perWorkerCycles = {100};
    narrow.perWorkerStagingCycles = {10};
    narrow.perWorkerBusyCycles = {100};
    narrow.maxOccupiedLanes = 1;

    DeviceStats wide;
    wide.launches = 3;
    wide.perWorkerLaunches = {0, 1, 2};
    wide.perWorkerCycles = {0, 40, 80};
    wide.perWorkerStagingCycles = {0, 4, 8};
    wide.perWorkerBusyCycles = {0, 44, 88};
    wide.maxOccupiedLanes = 2;

    const DeviceStats sum = narrow + wide;
    EXPECT_EQ(sum.launches, 5u);
    ASSERT_EQ(sum.perWorkerLaunches.size(), 3u);
    EXPECT_EQ(sum.perWorkerLaunches[0], 2u);
    EXPECT_EQ(sum.perWorkerLaunches[1], 1u);
    EXPECT_EQ(sum.perWorkerCycles[0], 100u);
    EXPECT_EQ(sum.perWorkerCycles[2], 80u);
    EXPECT_EQ(sum.cycleTotal(), 220u);
    EXPECT_EQ(sum.stagingCycleTotal(), 22u);
    EXPECT_EQ(sum.busyCycleTotal(), 232u);
    // High-water marks don't add.
    EXPECT_EQ(sum.maxOccupiedLanes, 2u);
}

TEST(RpuTopology, WindowedStatsSumAndMakespanIsTheDeviceMax)
{
    RpuTopology topo(2);
    const CkksContext ctx(topoParams(), 5);
    const std::vector<u128> primes = ctx.basis().primes();
    const uint64_t n = 1024;

    const RpuTopology::Snapshot before = topo.snapshot();
    auto xs = coalescedInputs(2, primes, n, 17);
    (void)topo.device(0)->transformCoalesced(
        n, {primes, primes}, std::move(xs), false);
    auto ys = coalescedInputs(1, primes, n, 18);
    (void)topo.device(1)->transformCoalesced(n, {primes},
                                             std::move(ys), false);

    const RpuTopology::Snapshot window = topo.since(before);
    ASSERT_EQ(window.size(), 2u);
    EXPECT_GT(window[0].launches, 0u);
    EXPECT_GT(window[1].launches, 0u);

    const DeviceStats sum = RpuTopology::aggregate(window);
    EXPECT_EQ(sum.launches,
              window[0].launches + window[1].launches);
    EXPECT_EQ(sum.cycleTotal(),
              window[0].cycleTotal() + window[1].cycleTotal());

    // The topology makespan is a max over devices, not a sum: with
    // both serial devices busy the window's wall clock is the slower
    // device, and it is strictly less than the serialised total.
    const uint64_t makespan = RpuTopology::makespanCycles(window);
    EXPECT_EQ(makespan, std::max(window[0].busyMakespanCycles(),
                                 window[1].busyMakespanCycles()));
    EXPECT_LT(makespan, sum.busyCycleTotal());
}

// ----------------------------------------------------------------------
// Contention ledger: strict only under concurrent lanes
// ----------------------------------------------------------------------

TEST(RpuTopology, ContentionLedgerIsStrictExactlyWhenLanesOverlap)
{
    const CkksContext ctx(topoParams(), 5);
    const std::vector<u128> primes = ctx.basis().primes();
    const uint64_t n = 1024;

    const auto run = [&](unsigned workers) {
        auto device = std::make_shared<RpuDevice>();
        if (workers > 1)
            device->setParallelism(workers);
        auto pending = device->transformTowersBatchAsync(
            n, primes, coalescedInputs(6, primes, n, 23), false);
        for (auto &p : pending)
            (void)RpuDevice::collectTowers(std::move(p));
        return device->stats();
    };

    const DeviceStats serial = run(1);
    EXPECT_EQ(serial.busyMakespanCycles(), serial.makespanCycles());
    EXPECT_EQ(serial.contendedLaunches, 0u);
    EXPECT_EQ(serial.maxOccupiedLanes, 1u);

    const DeviceStats pooled = run(4);
    EXPECT_GT(pooled.contendedLaunches, 0u);
    EXPECT_GT(pooled.busyMakespanCycles(), pooled.makespanCycles());
    EXPECT_GE(pooled.maxOccupiedLanes, 2u);
}

// ----------------------------------------------------------------------
// Sharded coalesced hooks
// ----------------------------------------------------------------------

TEST(RpuTopology, TransformShardedMatchesSingleDeviceCoalesced)
{
    const CkksContext ctx(topoParams(), 5);
    const std::vector<u128> primes = ctx.basis().primes();
    const uint64_t n = 1024;
    // 8 items x 3 towers = 24 towers -> 2 tile groups: a real split.
    const size_t items = 8;
    const std::vector<std::vector<u128>> moduli(items, primes);
    ASSERT_EQ(RpuTopology::tileGroups(items * primes.size()), 2u);

    RpuTopology single(1);
    const auto want = single.device(0)->transformCoalesced(
        n, moduli, coalescedInputs(items, primes, n, 31), false);

    RpuTopology topo(2);
    const RpuTopology::Snapshot before = topo.snapshot();
    const auto got = topo.transformSharded(
        {0, 1}, n, moduli, coalescedInputs(items, primes, n, 31),
        false);
    EXPECT_EQ(got, want);

    // Each device really executed its group.
    const RpuTopology::Snapshot window = topo.since(before);
    EXPECT_GT(window[0].launches, 0u);
    EXPECT_GT(window[1].launches, 0u);
}

TEST(RpuTopology, PointwiseShardedMatchesSingleDeviceCoalesced)
{
    const CkksContext ctx(topoParams(), 5);
    const std::vector<u128> primes = ctx.basis().primes();
    const uint64_t n = 1024;
    const size_t items = 8;
    const std::vector<std::vector<u128>> moduli(items, primes);

    RpuTopology single(1);
    const auto want = single.device(0)->pointwiseCoalesced(
        n, moduli, coalescedInputs(items, primes, n, 41),
        coalescedInputs(items, primes, n, 42));

    RpuTopology topo(2);
    const auto got = topo.pointwiseSharded(
        {1, 0}, n, moduli, coalescedInputs(items, primes, n, 41),
        coalescedInputs(items, primes, n, 42));
    EXPECT_EQ(got, want);
}

TEST(RpuTopology, UniformPlanIsTheDeviceOwnCoalescedPath)
{
    const CkksContext ctx(topoParams(), 5);
    const std::vector<u128> primes = ctx.basis().primes();
    const uint64_t n = 1024;
    const std::vector<std::vector<u128>> moduli(2, primes);

    RpuTopology topo(2);
    const RpuTopology::Snapshot before = topo.snapshot();
    (void)topo.transformSharded({0}, n, moduli,
                                coalescedInputs(2, primes, n, 51),
                                false);
    const RpuTopology::Snapshot window = topo.since(before);
    EXPECT_GT(window[0].launches, 0u);
    EXPECT_EQ(window[1].launches, 0u);
}

// ----------------------------------------------------------------------
// MakespanScheduler
// ----------------------------------------------------------------------

TEST(MakespanScheduler, OneDeviceTopologyAlwaysPlacesOnDeviceZero)
{
    auto topo = std::make_shared<RpuTopology>(1);
    MakespanScheduler sched(topo);
    for (int i = 0; i < 4; ++i) {
        const auto p = sched.place(RequestOp::MulPlainRescale, "c", 8);
        EXPECT_EQ(p.device, 0u);
        EXPECT_EQ(sched.stagePlan(p, 3),
                  (std::vector<size_t>{0, 0, 0}));
        sched.complete(p, RequestOp::MulPlainRescale, "c", 8, 1000,
                       100);
    }
}

TEST(MakespanScheduler, PlacementsBalanceAndBookingsAreCorrected)
{
    auto topo = std::make_shared<RpuTopology>(2);
    MakespanScheduler sched(topo);
    const auto op = RequestOp::MulPlainRescale;

    // Bootstrap: no estimate yet, ties break to device 0; the
    // completion seeds the estimate and leaves real load behind.
    const auto p0 = sched.place(op, "c", 8);
    EXPECT_EQ(p0.device, 0u);
    sched.complete(p0, op, "c", 8, 8000, 800);
    EXPECT_EQ(sched.load(0), 8000u);

    // Next chunk of the same class: device 1 is now cheaper.
    const auto p1 = sched.place(op, "c", 8);
    EXPECT_EQ(p1.device, 1u);
    EXPECT_GT(p1.booked, 0u);
    sched.complete(p1, op, "c", 8, 8000, 800);

    // Balanced again; makespan projection is the max.
    EXPECT_EQ(sched.load(0), sched.load(1));
    EXPECT_EQ(sched.modelledMakespan(), sched.load(0));
}

TEST(MakespanScheduler, PausedDeviceIsNeverSelected)
{
    auto topo = std::make_shared<RpuTopology>(3);
    MakespanScheduler sched(topo);
    const auto op = RequestOp::MulPlainRescale;
    sched.pause(0);
    EXPECT_TRUE(sched.paused(0));

    for (int i = 0; i < 6; ++i) {
        const auto p = sched.place(op, "c", 4);
        EXPECT_NE(p.device, 0u);
        // Stage plans skip it too, no matter how many groups.
        for (size_t d : sched.stagePlan(p, 5))
            EXPECT_NE(d, 0u);
        sched.complete(p, op, "c", 4, 4000, 400);
    }

    sched.resume(0);
    EXPECT_FALSE(sched.paused(0));
    // With devices 1 and 2 loaded, the resumed idle device wins.
    EXPECT_EQ(sched.place(op, "c", 4).device, 0u);
}

TEST(MakespanScheduler, EwmaSeedsExactlyAndConvergesAfterWrongFirstSample)
{
    auto topo = std::make_shared<RpuTopology>(2);
    MakespanScheduler sched(topo);
    const auto op = RequestOp::MulPlainRescale;

    // Cold start: no estimate yet books only the nominal cycle (so a
    // batch still spreads), and the first completion seeds the
    // estimate exactly rather than EWMA-blending it with zero.
    const auto p0 = sched.place(op, "c", 8);
    EXPECT_EQ(p0.booked, 1u);
    sched.complete(p0, op, "c", 8, 80000, 800); // 10x the true cost
    EXPECT_EQ(sched.place(op, "c", 8).booked, 80000u);

    // Feed the true cost (1000/request); the deliberately wrong first
    // sample must wash out of the booking within a few dozen chunks.
    for (int i = 0; i < 21; ++i) {
        const auto p = sched.place(op, "c", 8);
        sched.complete(p, op, "c", 8, 8000, 800);
    }
    const auto converged = sched.place(op, "c", 8);
    EXPECT_GE(converged.booked, 8000u);
    EXPECT_LE(converged.booked, 8800u); // within 10% of the true cost
}

TEST(MakespanScheduler, FailedChunkReleasesBookingButSkipsEwma)
{
    auto topo = std::make_shared<RpuTopology>(2);
    MakespanScheduler sched(topo);
    const auto op = RequestOp::MulPlainRescale;

    const auto p0 = sched.place(op, "c", 8);
    sched.complete(p0, op, "c", 8, 8000, 800);
    const uint64_t seeded = sched.place(op, "c", 8).booked;
    EXPECT_EQ(seeded, 8000u);

    // A chunk that dies partway measures a nonsense window. The
    // booking must still be released (the load ledger reflects the
    // cycles the attempt paid), but the estimate must not move — a
    // partial window is not a cost sample.
    const auto p1 = sched.place(op, "c", 8);
    std::vector<uint64_t> busy(2, 0);
    busy[p1.device] = 999999;
    sched.complete(p1, op, "c", 8, busy, 0, /*failed=*/true);
    EXPECT_GE(sched.load(p1.device), 999999u);
    EXPECT_EQ(sched.place(op, "c", 8).booked, seeded);
}

TEST(MakespanScheduler, PlaceBatchBooksLongestChunksFirst)
{
    // Two classes with 10x different learned costs, two devices with
    // unequal loads. Lookahead must book the expensive chunk onto the
    // emptier device before the cheap one can squat there; greedy in
    // pop order stacks both on it.
    const auto op = RequestOp::MulPlainRescale;
    const auto seed = [&](MakespanScheduler &sched) {
        const auto pb = sched.place(op, "big", 1);
        sched.complete(pb, op, "big", 1, 1000, 0); // device 0: load 1000
        const auto ps = sched.place(op, "small", 1);
        sched.complete(ps, op, "small", 1, 100, 0); // device 1: load 100
    };
    const std::vector<MakespanScheduler::ChunkDesc> batch = {
        {op, "small", 1}, {op, "big", 1}};

    auto topo = std::make_shared<RpuTopology>(2);
    MakespanScheduler lpt(topo, serve::SchedulerPolicy::all());
    seed(lpt);
    const auto spread = lpt.placeBatch(batch);
    EXPECT_EQ(spread[1].device, 1u); // big books first, takes the idle
    EXPECT_EQ(spread[0].device, 0u); // small lands beside the old load

    MakespanScheduler greedy(topo, serve::SchedulerPolicy::greedy());
    seed(greedy);
    const auto stacked = greedy.placeBatch(batch);
    EXPECT_EQ(stacked[0].device, 1u); // pop order: small takes the idle
    EXPECT_EQ(stacked[1].device, 1u); // ...and big piles on behind it
}

TEST(MakespanScheduler, SplitPlansConserveBookingsAndSkipPaused)
{
    auto topo = std::make_shared<RpuTopology>(4);
    MakespanScheduler sched(topo);
    const auto op = RequestOp::MulPlainRescale;
    sched.pause(3);

    const auto p0 = sched.place(op, "c", 8);
    sched.complete(p0, op, "c", 8, 8000, 800); // seed the estimate
    auto p = sched.place(op, "c", 8);
    EXPECT_EQ(p.booked, 8000u);

    // The coalesced chunk's three stages as the server weighs them:
    // 24 entry towers, 48 pointwise towers, 16 dropped towers.
    const auto plans = sched.splitPlans(
        p, op, "c", 8,
        {RpuTopology::groupWeights(
             24, MakespanScheduler::kForwardTowerWeight),
         RpuTopology::groupWeights(
             48, MakespanScheduler::kPointwiseTowerWeight),
         RpuTopology::groupWeights(
             16, MakespanScheduler::kInverseTowerWeight)});
    ASSERT_EQ(plans.size(), 3u);
    EXPECT_EQ(plans[0].size(), 2u);
    EXPECT_EQ(plans[1].size(), 3u);
    EXPECT_EQ(plans[2].size(), 1u);

    // The whole-chunk booking became per-group bookings summing back
    // to the chunk's estimated cost (up to per-group rounding), and
    // the paused device took none of them.
    EXPECT_EQ(p.booked, 0u);
    ASSERT_EQ(p.stageBooked.size(), 4u);
    uint64_t rebooked = 0;
    for (uint64_t b : p.stageBooked)
        rebooked += b;
    EXPECT_GE(rebooked, 8000u - 6);
    EXPECT_LE(rebooked, 8000u + 6);
    EXPECT_EQ(p.stageBooked[3], 0u);
    size_t distinct = 0;
    for (uint64_t b : p.stageBooked)
        distinct += b > 0 ? 1 : 0;
    EXPECT_GE(distinct, 2u);
    for (const auto &plan : plans)
        for (size_t d : plan)
            EXPECT_NE(d, 3u);

    // Completion releases every per-device booking and replaces it
    // with the measured per-device cost.
    sched.complete(p, op, "c", 8, std::vector<uint64_t>{100, 200, 300, 0},
                   60, false);
    EXPECT_EQ(sched.load(0) + sched.load(1) + sched.load(2) +
                  sched.load(3),
              8000u + 600u);
}

TEST(MakespanScheduler, RehomeMovesBookingAtomicallyAndAvoidsPaused)
{
    auto topo = std::make_shared<RpuTopology>(3);
    MakespanScheduler sched(topo);
    const auto op = RequestOp::MulPlainRescale;

    const auto p0 = sched.place(op, "c", 8);
    sched.complete(p0, op, "c", 8, 8000, 800); // device 0: load 8000
    auto p = sched.place(op, "c", 8);
    EXPECT_EQ(p.device, 1u);
    EXPECT_EQ(sched.load(1), 8000u);

    // The chunk's home drains for maintenance while it waits. Stealing
    // it must move the booking in one step — total load conserved —
    // and never onto a paused device.
    sched.pause(0);
    sched.pause(1);
    EXPECT_TRUE(sched.rehome(p, op, "c", 8));
    EXPECT_EQ(p.device, 2u);
    EXPECT_EQ(sched.load(1), 0u);
    EXPECT_EQ(sched.load(2), 8000u);
    EXPECT_EQ(sched.load(0), 8000u); // untouched bystander
    sched.complete(p, op, "c", 8, 8000, 800);
}

// ----------------------------------------------------------------------
// Device-set serving
// ----------------------------------------------------------------------

struct Issued
{
    uint64_t tenant = 0;
    uint64_t seq = 0;
    RequestOp op = RequestOp::MulPlainRescale;
    std::vector<Cplx> a, b;
    std::future<ServeResponse> response;
};

ServeConfig
topoServeConfig()
{
    ServeConfig cfg;
    cfg.queueCapacity = 64;
    cfg.maxBatch = 16;
    cfg.maxPerTenant = 4;
    cfg.maxCoalesce = 8;
    cfg.startPaused = true; // deterministic drain via shutdown()
    return cfg;
}

std::vector<Issued>
issueMixedSet(HeServer &server, size_t perTenant)
{
    std::vector<Issued> out;
    for (size_t r = 0; r < perTenant; ++r) {
        for (uint64_t t = 1; t <= 4; ++t) {
            Issued p;
            p.tenant = t;
            p.seq = r;
            p.op = (r % 3 == 2) ? RequestOp::MulCtRescale
                                : RequestOp::MulPlainRescale;
            p.a = slotValues(16, 100 * t + r);
            p.b = slotValues(16, 900 * t + r);
            auto sub = server.submit(t, p.op, p.a, p.b);
            EXPECT_EQ(sub.status, SubmitStatus::Accepted);
            p.response = std::move(sub.response);
            out.push_back(std::move(p));
        }
    }
    return out;
}

TEST(HeServerTopology, OneDeviceTopologyMatchesSingleDeviceServer)
{
    // The degeneracy that keeps PR 8's guarantees intact: the same
    // request set through (a) the single-device constructor and
    // (b) an explicit 1-device topology must produce identical
    // responses AND an identical device launch ledger — same chunks,
    // same coalesced launches, same per-worker attribution.
    std::vector<std::vector<Cplx>> values[2];
    DeviceStats ledger[2];
    for (int pass = 0; pass < 2; ++pass) {
        auto topo = std::make_shared<RpuTopology>(1);
        auto server =
            pass == 0
                ? std::make_unique<HeServer>(topoServeConfig(),
                                             topo->device(0))
                : std::make_unique<HeServer>(topoServeConfig(), topo);
        for (uint64_t id = 1; id <= 4; ++id)
            server->addTenant({id, topoParams(), 30});
        auto issued = issueMixedSet(*server, 6);
        const DeviceStats before = topo->device(0)->stats();
        server->shutdown();
        ledger[pass] = topo->device(0)->stats() - before;
        for (auto &p : issued)
            values[pass].push_back(p.response.get().values);
    }
    EXPECT_EQ(values[0], values[1]);
    EXPECT_EQ(ledger[0].launches, ledger[1].launches);
    EXPECT_EQ(ledger[0].cycleTotal(), ledger[1].cycleTotal());
    EXPECT_EQ(ledger[0].busyCycleTotal(), ledger[1].busyCycleTotal());
    EXPECT_EQ(ledger[0].perWorkerLaunches, ledger[1].perWorkerLaunches);
    EXPECT_EQ(ledger[0].pointwiseMuls, ledger[1].pointwiseMuls);
    EXPECT_EQ(ledger[0].forwardTransforms,
              ledger[1].forwardTransforms);
    EXPECT_EQ(ledger[0].inverseTransforms,
              ledger[1].inverseTransforms);
}

TEST(HeServerTopology, TwoDeviceServingIsBitIdenticalToSerial)
{
    auto topo = std::make_shared<RpuTopology>(2);
    HeServer server(topoServeConfig(), topo);
    for (uint64_t id = 1; id <= 4; ++id)
        server.addTenant({id, topoParams(), 30});

    const RpuTopology::Snapshot before = topo->snapshot();
    auto issued = issueMixedSet(server, 6);
    server.shutdown();

    for (auto &p : issued) {
        const ServeResponse resp = p.response.get();
        EXPECT_EQ(resp.values, server.tenant(p.tenant)->runSerial(
                                   p.op, p.a, p.b, p.seq));
    }
    // Both devices carried real work, so the identity above is a
    // statement about cross-device execution, not a vacuous pass.
    const RpuTopology::Snapshot window = topo->since(before);
    EXPECT_GT(window[0].launches, 0u);
    EXPECT_GT(window[1].launches, 0u);
}

TEST(HeServerTopology, PausedDeviceExecutesNothing)
{
    auto topo = std::make_shared<RpuTopology>(2);
    HeServer server(topoServeConfig(), topo);
    for (uint64_t id = 1; id <= 4; ++id)
        server.addTenant({id, topoParams(), 30});
    ASSERT_NE(server.scheduler(), nullptr);
    server.scheduler()->pause(1);

    const RpuTopology::Snapshot before = topo->snapshot();
    auto issued = issueMixedSet(server, 3);
    server.shutdown();
    for (auto &p : issued) {
        const ServeResponse resp = p.response.get();
        EXPECT_EQ(resp.values, server.tenant(p.tenant)->runSerial(
                                   p.op, p.a, p.b, p.seq));
    }

    // The drained device saw no placements and no sharded stages.
    const RpuTopology::Snapshot window = topo->since(before);
    EXPECT_GT(window[0].launches, 0u);
    EXPECT_EQ(window[1].launches, 0u);
    EXPECT_EQ(window[1].cycleTotal(), 0u);
}

TEST(HeServerTopology, SplitChunkIsBitIdenticalToUnsplitAndSpreads)
{
    // One coalesced chunk (2 tenants x 4 requests, all compatible)
    // through a 4-device topology, with and without the split policy.
    // Splitting changes only *where* stage groups execute — the
    // responses must match the unsplit server and the serial
    // reference bit for bit, while the split ledger shows the chunk's
    // stages actually spread.
    std::vector<std::vector<Cplx>> values[2];
    for (int pass = 0; pass < 2; ++pass) {
        auto topo = std::make_shared<RpuTopology>(4);
        ServeConfig cfg = topoServeConfig();
        cfg.policy = pass == 0 ? serve::SchedulerPolicy::all()
                               : serve::SchedulerPolicy{true, false, false};
        HeServer server(cfg, topo);
        for (uint64_t id = 1; id <= 2; ++id)
            server.addTenant({id, topoParams(), 30});

        std::vector<Issued> issued;
        for (uint64_t t = 1; t <= 2; ++t) {
            for (uint64_t r = 0; r < 4; ++r) {
                Issued p;
                p.tenant = t;
                p.seq = r;
                p.a = slotValues(16, 100 * t + r);
                p.b = slotValues(16, 900 * t + r);
                auto sub = server.submit(t, p.op, p.a, p.b);
                ASSERT_EQ(sub.status, SubmitStatus::Accepted);
                p.response = std::move(sub.response);
                issued.push_back(std::move(p));
            }
        }
        const RpuTopology::Snapshot before = topo->snapshot();
        server.shutdown();

        for (auto &p : issued) {
            const ServeResponse resp = p.response.get();
            EXPECT_EQ(resp.values, server.tenant(p.tenant)->runSerial(
                                       p.op, p.a, p.b, p.seq));
            values[pass].push_back(resp.values);
        }
        const auto stats = server.stats();
        EXPECT_EQ(stats.failed, 0u);
        if (pass == 0) {
            EXPECT_GE(stats.splitChunks, 1u);
            const RpuTopology::Snapshot window = topo->since(before);
            size_t active = 0;
            for (const auto &d : window)
                active += d.launches > 0 ? 1 : 0;
            EXPECT_GE(active, 2u);
        } else {
            EXPECT_EQ(stats.splitChunks, 0u);
        }
    }
    EXPECT_EQ(values[0], values[1]);
}

TEST(HeServerTopology, TwoDispatchersWithStealingDrainCorrectly)
{
    // Two dispatcher threads over a 4-device topology with every
    // policy on: placed chunks sit on per-device pending lists and an
    // idle dispatcher may re-claim them, so chunk execution order and
    // steal counts are racy — but every accepted request must still
    // complete bit-identically to the serial reference.
    auto topo = std::make_shared<RpuTopology>(4);
    ServeConfig cfg = topoServeConfig();
    cfg.dispatchers = 2;
    HeServer server(cfg, topo);
    for (uint64_t id = 1; id <= 4; ++id)
        server.addTenant({id, topoParams(), 30});

    auto issued = issueMixedSet(server, 6);
    server.shutdown();

    for (auto &p : issued) {
        const ServeResponse resp = p.response.get();
        EXPECT_EQ(resp.values, server.tenant(p.tenant)->runSerial(
                                   p.op, p.a, p.b, p.seq));
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.accepted, issued.size());
    EXPECT_EQ(stats.completed, issued.size());
}

} // namespace
} // namespace rpu
