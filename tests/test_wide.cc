/**
 * @file
 * Wide-arithmetic tests: U256 primitives against native-precision
 * oracles, BigUInt against U256 and against algebraic properties.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "wide/biguint.hh"
#include "wide/u256.hh"

namespace rpu {
namespace {

TEST(U256, MulWideSmall)
{
    const U256 r = mulWide(u128(3), u128(5));
    EXPECT_EQ(r.lo, u128(15));
    EXPECT_EQ(r.hi, u128(0));
}

TEST(U256, MulWideCarriesAcrossHalves)
{
    // (2^64)^2 = 2^128 -> exactly into the high word.
    const U256 r = mulWide(u128(1) << 64, u128(1) << 64);
    EXPECT_EQ(r.lo, u128(0));
    EXPECT_EQ(r.hi, u128(1));
}

TEST(U256, MulWideMaxOperands)
{
    // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
    const u128 maxv = ~u128(0);
    const U256 r = mulWide(maxv, maxv);
    EXPECT_EQ(r.lo, u128(1));
    EXPECT_EQ(r.hi, maxv - 1);
}

TEST(U256, MulWideMatchesNativeOn64BitInputs)
{
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const uint64_t a = rng.next64();
        const uint64_t b = rng.next64();
        const U256 r = mulWide(a, b);
        EXPECT_EQ(r.lo, u128(a) * b);
        EXPECT_EQ(r.hi, u128(0));
    }
}

TEST(U256, MulWideMatchesBigUInt)
{
    Rng rng(12);
    for (int i = 0; i < 200; ++i) {
        const u128 a = rng.next128();
        const u128 b = rng.next128();
        const U256 r = mulWide(a, b);
        const BigUInt expected =
            BigUInt::fromU128(a) * BigUInt::fromU128(b);
        const BigUInt got =
            (BigUInt::fromU128(r.hi) << 128) + BigUInt::fromU128(r.lo);
        EXPECT_EQ(got, expected);
    }
}

TEST(U256, AddWithCarry)
{
    U256 acc{0, ~u128(0)};
    const unsigned carry = addWithCarry(acc, U256::fromU128(1));
    EXPECT_EQ(carry, 0u);
    EXPECT_EQ(acc.lo, u128(0));
    EXPECT_EQ(acc.hi, u128(1));

    U256 full{~u128(0), ~u128(0)};
    const unsigned carry2 = addWithCarry(full, U256::fromU128(1));
    EXPECT_EQ(carry2, 1u);
    EXPECT_EQ(full.lo, u128(0));
    EXPECT_EQ(full.hi, u128(0));
}

TEST(U256, SubWithBorrow)
{
    U256 acc{1, 0};
    const unsigned borrow = subWithBorrow(acc, U256::fromU128(1));
    EXPECT_EQ(borrow, 0u);
    EXPECT_EQ(acc.hi, u128(0));
    EXPECT_EQ(acc.lo, ~u128(0));

    U256 zero{0, 0};
    EXPECT_EQ(subWithBorrow(zero, U256::fromU128(1)), 1u);
}

TEST(U256, AddSubRoundTrip)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const U256 a{rng.next128(), rng.next128()};
        const U256 b{rng.next128(), rng.next128()};
        U256 acc = a;
        addWithCarry(acc, b);
        subWithBorrow(acc, b);
        EXPECT_EQ(acc, a);
    }
}

TEST(U256, Shifts)
{
    const U256 one = U256::fromU128(1);
    EXPECT_EQ(shiftLeft(one, 128).hi, u128(1));
    EXPECT_EQ(shiftLeft(one, 128).lo, u128(0));
    EXPECT_EQ(shiftRight(shiftLeft(one, 200), 200), one);
    const U256 x{0x123456789abcdef0, 0xfedcba9876543210};
    EXPECT_EQ(shiftLeft(shiftRight(x, 0), 0), x);
}

TEST(U256, DivModAgainstMultiplyBack)
{
    Rng rng(14);
    for (int i = 0; i < 100; ++i) {
        const U256 x{rng.next128(), rng.next128()};
        const u128 q = rng.next128() | 1;
        u128 rem;
        const U256 quot = divmod256by128(x, q, rem);
        EXPECT_LT(rem, q);
        // Reconstruct x = quot*q + rem in BigUInt space.
        const BigUInt big_x =
            (BigUInt::fromU128(x.hi) << 128) + BigUInt::fromU128(x.lo);
        const BigUInt big_q =
            ((BigUInt::fromU128(quot.hi) << 128) +
             BigUInt::fromU128(quot.lo)) *
            BigUInt::fromU128(q);
        EXPECT_EQ(big_q + BigUInt::fromU128(rem), big_x);
    }
}

TEST(U256, Mod256MatchesNativeFor128BitInputs)
{
    Rng rng(15);
    for (int i = 0; i < 200; ++i) {
        const u128 x = rng.next128();
        const u128 q = (rng.next128() | 1);
        EXPECT_EQ(mod256by128(U256::fromU128(x), q), x % q);
    }
}

// ----------------------------------------------------------------------

TEST(BigUInt, DecimalRoundTrip)
{
    const char *cases[] = {
        "0", "1", "42", "18446744073709551615", "18446744073709551616",
        "340282366920938463463374607431768211456",
        "123456789012345678901234567890123456789012345678901234567890",
    };
    for (const char *s : cases)
        EXPECT_EQ(BigUInt::fromDecimal(s).toDecimal(), s);
}

TEST(BigUInt, AddSubProperties)
{
    Rng rng(16);
    for (int i = 0; i < 100; ++i) {
        BigUInt a = BigUInt::fromU128(rng.next128()) *
                    BigUInt::fromU128(rng.next128());
        BigUInt b = BigUInt::fromU128(rng.next128());
        EXPECT_EQ((a + b) - b, a);
        EXPECT_EQ(a + b, b + a);
    }
}

TEST(BigUInt, MulDistributes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        const BigUInt a = BigUInt::fromU128(rng.next128());
        const BigUInt b = BigUInt::fromU128(rng.next128());
        const BigUInt c = BigUInt::fromU128(rng.next128());
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TEST(BigUInt, DivModIdentity)
{
    Rng rng(18);
    for (int i = 0; i < 100; ++i) {
        // Dividend up to ~512 bits, divisor up to ~256 bits.
        BigUInt a = BigUInt::fromU128(rng.next128());
        for (int k = 0; k < 3; ++k)
            a = a * BigUInt::fromU128(rng.next128() | 1);
        const BigUInt d = BigUInt::fromU128(rng.next128()) *
                              BigUInt::fromU128(rng.next64() | 1) +
                          BigUInt(1);
        const auto [q, r] = a.divmod(d);
        EXPECT_LT(r, d);
        EXPECT_EQ(q * d + r, a);
    }
}

TEST(BigUInt, DivByLargerGivesZero)
{
    const BigUInt small(5);
    const BigUInt big = BigUInt::fromDecimal("123456789123456789123456789");
    EXPECT_EQ(small / big, BigUInt());
    EXPECT_EQ(small % big, small);
}

TEST(BigUInt, SingleLimbFastPathMatchesGeneral)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        BigUInt a = BigUInt::fromU128(rng.next128()) *
                    BigUInt::fromU128(rng.next128());
        const uint64_t d64 = rng.next64() | 1;
        const auto [q, r] = a.divmod(BigUInt(d64));
        EXPECT_EQ(q * BigUInt(d64) + r, a);
        EXPECT_LT(r, BigUInt(d64));
    }
}

TEST(BigUInt, Shifts)
{
    const BigUInt one(1);
    EXPECT_EQ((one << 200) >> 200, one);
    EXPECT_EQ((one << 64).limbs().size(), 2u);
    EXPECT_EQ(((one << 130) >> 2).bitLength(), 129u);
}

TEST(BigUInt, BitLength)
{
    EXPECT_EQ(BigUInt().bitLength(), 0u);
    EXPECT_EQ(BigUInt(1).bitLength(), 1u);
    EXPECT_EQ(BigUInt(255).bitLength(), 8u);
    EXPECT_EQ(BigUInt(256).bitLength(), 9u);
    EXPECT_EQ((BigUInt(1) << 1000).bitLength(), 1001u);
}

TEST(BigUInt, Low128)
{
    const u128 v = (u128(0xdead) << 64) | 0xbeef;
    EXPECT_EQ(BigUInt::fromU128(v).low128(), v);
    EXPECT_EQ(((BigUInt::fromU128(v) << 128) +
               BigUInt::fromU128(v)).low128(),
              v);
}

} // namespace
} // namespace rpu
