/**
 * @file
 * RNS-resident BFV scheme tests: encrypt/decrypt round trips,
 * homomorphic addition/subtraction, plaintext multiplication,
 * noise-budget behaviour, bit-identity of the Eval-resident tower
 * path against the retained wide-modulus reference decrypt on every
 * backend, and the chained-op transform ledger (zero device forward
 * NTTs after encryption).
 */

#include <gtest/gtest.h>

#include "rlwe/bfv.hh"
#include "rlwe_test_util.hh"
#include "rpu/device.hh"
#include "wide/biguint.hh"

namespace rpu {
namespace {

using testutil::naiveNegacyclicModT;

RlweParams
smallParams()
{
    RlweParams p;
    p.n = 1024;
    p.towers = 2;
    p.towerBits = 50; // q ~ 2^100, the pre-RNS default width
    p.plaintextModulus = 65537;
    p.noiseBound = 4;
    return p;
}

std::vector<uint64_t>
randomMessage(const RlweParams &p, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> m(p.n);
    for (auto &v : m)
        v = rng.below64(p.plaintextModulus);
    return m;
}

TEST(Bfv, EncryptDecryptRoundTrip)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto msg = randomMessage(ctx.params(), seed);
        const Ciphertext ct = ctx.encrypt(sk, msg);
        // Born evaluation-resident, over the full chain.
        EXPECT_EQ(ct.domain(), ResidueDomain::Eval);
        EXPECT_EQ(ct.towers(), ctx.params().towers);
        EXPECT_EQ(ctx.decrypt(sk, ct), msg);
    }
}

TEST(Bfv, CoeffResidentCiphertextDecryptsIdentically)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 21);
    Ciphertext ct = ctx.encrypt(sk, msg);
    Ciphertext coeff = ct;
    ctx.toCoeff(coeff);
    EXPECT_EQ(coeff.domain(), ResidueDomain::Coeff);
    EXPECT_EQ(ctx.decrypt(sk, coeff), msg);
    // And the round trip restores the towers bit for bit.
    ctx.toEval(coeff);
    EXPECT_EQ(coeff.c0, ct.c0);
    EXPECT_EQ(coeff.c1, ct.c1);
}

TEST(Bfv, CiphertextIsNotPlaintext)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 4);
    Ciphertext ct = ctx.encrypt(sk, msg);
    ctx.toCoeff(ct);

    // c0 alone must not decode to the message (it is masked by a*s):
    // reconstruct it wide and peel the message estimate off Delta.
    const std::vector<BigUInt> c0w =
        ctx.crt().reconstructPoly(ct.c0.towers);
    const uint64_t t = ctx.params().plaintextModulus;
    size_t matches = 0;
    for (size_t i = 0; i < msg.size(); ++i) {
        const uint64_t est =
            ((c0w[i] / ctx.delta()) % BigUInt(t)).low64();
        if (est == msg[i])
            ++matches;
    }
    EXPECT_LT(matches, msg.size() / 4);
}

TEST(Bfv, WrongKeyFails)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const SecretKey other = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 5);
    const Ciphertext ct = ctx.encrypt(sk, msg);
    EXPECT_NE(ctx.decrypt(other, ct), msg);
}

TEST(Bfv, HomomorphicAddition)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto a = randomMessage(ctx.params(), 6);
    const auto b = randomMessage(ctx.params(), 7);
    const Ciphertext sum = ctx.add(ctx.encrypt(sk, a), ctx.encrypt(sk, b));

    std::vector<uint64_t> expected(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        expected[i] = (a[i] + b[i]) % ctx.params().plaintextModulus;
    EXPECT_EQ(ctx.decrypt(sk, sum), expected);
}

TEST(Bfv, HomomorphicSubtraction)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto a = randomMessage(ctx.params(), 8);
    const auto b = randomMessage(ctx.params(), 9);
    const Ciphertext diff =
        ctx.sub(ctx.encrypt(sk, a), ctx.encrypt(sk, b));

    const uint64_t t = ctx.params().plaintextModulus;
    std::vector<uint64_t> expected(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        expected[i] = (a[i] + t - b[i]) % t;
    EXPECT_EQ(ctx.decrypt(sk, diff), expected);
}

TEST(Bfv, ManyAdditionsStayDecryptable)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto base = randomMessage(ctx.params(), 10);
    Ciphertext acc = ctx.encrypt(sk, base);
    std::vector<uint64_t> expected = base;
    for (int round = 0; round < 16; ++round) {
        const auto m = randomMessage(ctx.params(), 100 + round);
        acc = ctx.add(acc, ctx.encrypt(sk, m));
        for (size_t i = 0; i < expected.size(); ++i)
            expected[i] =
                (expected[i] + m[i]) % ctx.params().plaintextModulus;
    }
    EXPECT_EQ(ctx.decrypt(sk, acc), expected);
}

TEST(Bfv, PlaintextMultiplyByMonomial)
{
    // Multiplying by x rotates coefficients with a negacyclic sign
    // flip; with messages reduced mod t the wrap becomes t - m.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 11);

    std::vector<uint64_t> monomial(ctx.params().n, 0);
    monomial[1] = 1; // x
    const Ciphertext prod =
        ctx.mulPlain(ctx.encrypt(sk, msg), monomial);
    const auto got = ctx.decrypt(sk, prod);

    const uint64_t t = ctx.params().plaintextModulus;
    for (size_t i = 1; i < msg.size(); ++i)
        EXPECT_EQ(got[i], msg[i - 1]) << i;
    EXPECT_EQ(got[0], (t - msg.back()) % t);
}

TEST(Bfv, PlaintextMultiplyByConstant)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 12);

    std::vector<uint64_t> three(ctx.params().n, 0);
    three[0] = 3;
    const auto got = ctx.decrypt(sk, ctx.mulPlain(ctx.encrypt(sk, msg),
                                                  three));
    for (size_t i = 0; i < msg.size(); ++i)
        EXPECT_EQ(got[i], (3 * msg[i]) % ctx.params().plaintextModulus);
}

TEST(Bfv, NoiseBudgetDecreasesWithWork)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 13);
    const Ciphertext fresh = ctx.encrypt(sk, msg);
    const double fresh_budget = ctx.noiseBudgetBits(sk, fresh, msg);
    EXPECT_GT(fresh_budget, 20.0);

    // Plaintext multiplication grows noise by ~log2(n * t) bits; use
    // a sparse plaintext so the naive expected product stays cheap.
    std::vector<uint64_t> plain(ctx.params().n, 0);
    plain[0] = 12345;
    plain[7] = 321;
    plain[500] = 65000;
    const Ciphertext worked = ctx.mulPlain(fresh, plain);
    const auto expected = naiveNegacyclicModT(
        msg, plain, ctx.params().plaintextModulus);

    const double worked_budget =
        ctx.noiseBudgetBits(sk, worked, expected);
    EXPECT_LT(worked_budget, fresh_budget);
    EXPECT_GT(worked_budget, 0.0); // still decryptable
    EXPECT_EQ(ctx.decrypt(sk, worked), expected);
}

TEST(RlweParams, Validation)
{
    RlweParams p = smallParams();
    p.n = 1000; // not a power of two
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "power of two");
    p = smallParams();
    p.towers = 0;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "tower");
    p = smallParams();
    p.towerBits = 20;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "towerBits");
}

// ----------------------------------------------------------------------
// RNS residency: the Eval-resident tower path vs the wide reference
// ----------------------------------------------------------------------

/**
 * The chained workload the RNS-resident representation exists for:
 * encrypt -> add -> mulPlain -> add against a once-encoded plaintext.
 */
Ciphertext
chainedOps(const BfvContext &ctx, const Ciphertext &ct_a,
           const Ciphertext &ct_b, const BfvPlaintext &pt)
{
    return ctx.add(ctx.mulPlain(ctx.add(ct_a, ct_b), pt), ct_b);
}

std::vector<uint64_t>
chainedExpected(const BfvContext &ctx, const std::vector<uint64_t> &a,
                const std::vector<uint64_t> &b,
                const std::vector<uint64_t> &p)
{
    const uint64_t t = ctx.params().plaintextModulus;
    std::vector<uint64_t> sum(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        sum[i] = (a[i] + b[i]) % t;
    std::vector<uint64_t> out = naiveNegacyclicModT(sum, p, t);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = (out[i] + b[i]) % t;
    return out;
}

TEST(BfvResidency, WideReferenceDecryptMatchesRnsDecryptOnEveryBackend)
{
    // Bit-identity of the Eval-resident tower path against the
    // retained wide-modulus reference decrypt (which reconstructs
    // both components first and never touches the per-tower NTT
    // path), across the host path, the serial functional simulator,
    // a pooled device, and the CPU reference backend — and tower
    // bit-identity of the chained ciphertexts across all four.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto a = randomMessage(ctx.params(), 31);
    const auto b = randomMessage(ctx.params(), 32);
    std::vector<uint64_t> p(ctx.params().n, 0);
    p[0] = 3;
    p[1] = 65535;
    p[900] = 17;

    const Ciphertext ct_a = ctx.encrypt(sk, a);
    const Ciphertext ct_b = ctx.encrypt(sk, b);
    const auto expected = chainedExpected(ctx, a, b, p);

    // Host path (no device).
    const Ciphertext host_ct =
        chainedOps(ctx, ct_a, ct_b, ctx.encodePlain(p));
    const auto host_plain = ctx.decrypt(sk, host_ct);
    EXPECT_EQ(host_plain, expected);
    EXPECT_EQ(ctx.decryptWideReference(sk, host_ct), host_plain);

    const auto run_device = [&](std::shared_ptr<RpuDevice> device,
                                unsigned workers, const char *label) {
        device->setParallelism(workers);
        ctx.attachDevice(device);
        const Ciphertext ct =
            chainedOps(ctx, ct_a, ct_b, ctx.encodePlain(p));
        ASSERT_EQ(ct.towers(), host_ct.towers()) << label;
        for (size_t t = 0; t < ct.towers(); ++t) {
            EXPECT_EQ(ct.c0.towers[t], host_ct.c0.towers[t])
                << label << " tower " << t;
            EXPECT_EQ(ct.c1.towers[t], host_ct.c1.towers[t])
                << label << " tower " << t;
        }
        const auto got = ctx.decrypt(sk, ct);
        EXPECT_EQ(got, expected) << label;
        EXPECT_EQ(ctx.decryptWideReference(sk, ct), got) << label;
    };
    run_device(std::make_shared<RpuDevice>(), 1, "serial");
    run_device(std::make_shared<RpuDevice>(), 4, "pooled");
    run_device(std::make_shared<RpuDevice>(
                   std::make_unique<CpuReferenceBackend>()),
               1, "cpu-reference");
}

TEST(BfvResidency, ChainedBfvAddMulPlainIssuesMinimalTransforms)
{
    // The acceptance check for BFV RNS residency: across a chained
    // encrypt -> add -> mulPlain -> add against a pre-encoded
    // plaintext, the device issues *zero* forward (and inverse) NTT
    // launches — the adds are host tower arithmetic, the multiply is
    // two pointwise launches — while the elision ledger records the
    // conversions the old wide-modulus representation used to pay on
    // every single product.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto a = randomMessage(ctx.params(), 41);
    const auto b = randomMessage(ctx.params(), 42);
    std::vector<uint64_t> p(ctx.params().n, 0);
    p[0] = 2;
    p[3] = 1;

    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);

    // Setup: encode once (the plaintext's only transform) + encrypt
    // (host-side; the device issues no launch at all).
    const BfvPlaintext pt = ctx.encodePlain(p);
    const Ciphertext ct_a = ctx.encrypt(sk, a);
    const Ciphertext ct_b = ctx.encrypt(sk, b);

    device->resetCounters();
    const Ciphertext out = chainedOps(ctx, ct_a, ct_b, pt);

    const size_t L = ctx.params().towers;
    const DeviceStats s = device->stats();
    EXPECT_EQ(s.forwardTransforms, 0u)
        << "a forward NTT ran inside the chained hot path";
    EXPECT_EQ(s.inverseTransforms, 0u)
        << "an inverse NTT ran inside the chained hot path";
    EXPECT_EQ(s.pointwiseMuls, 2 * L);
    EXPECT_EQ(s.launches, 2u); // one pointwise launch per component
    EXPECT_EQ(s.transformsElided, 2 * L);

    // And the chain still computes (a+b)*p + b mod t.
    EXPECT_EQ(ctx.decrypt(sk, out), chainedExpected(ctx, a, b, p));
}

TEST(BfvResidency, EncodePlainPaysExactlyOneBatchedForwardTransform)
{
    BfvContext ctx(smallParams());
    const auto device = std::make_shared<RpuDevice>();
    ctx.attachDevice(device);

    std::vector<uint64_t> p(ctx.params().n, 7);
    device->resetCounters();
    const BfvPlaintext pt = ctx.encodePlain(p);
    EXPECT_TRUE(pt.rp.inEval());

    const size_t L = ctx.params().towers;
    const DeviceStats s = device->stats();
    EXPECT_EQ(s.launches, 1u);
    EXPECT_EQ(s.forwardTransforms, L);
    EXPECT_EQ(s.inverseTransforms, 0u);
}

} // namespace
} // namespace rpu
