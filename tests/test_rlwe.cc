/**
 * @file
 * Toy BFV scheme tests: encrypt/decrypt round trips, homomorphic
 * addition, plaintext multiplication, and noise-budget behaviour.
 */

#include <gtest/gtest.h>

#include "rlwe/bfv.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

RlweParams
smallParams()
{
    RlweParams p;
    p.n = 1024;
    p.qBits = 100;
    p.plaintextModulus = 65537;
    p.noiseBound = 4;
    return p;
}

std::vector<uint64_t>
randomMessage(const RlweParams &p, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> m(p.n);
    for (auto &v : m)
        v = rng.below64(p.plaintextModulus);
    return m;
}

TEST(Bfv, EncryptDecryptRoundTrip)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto msg = randomMessage(ctx.params(), seed);
        const Ciphertext ct = ctx.encrypt(sk, msg);
        EXPECT_EQ(ctx.decrypt(sk, ct), msg);
    }
}

TEST(Bfv, CiphertextIsNotPlaintext)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 4);
    const Ciphertext ct = ctx.encrypt(sk, msg);
    // c0 alone must not decode to the message (it is masked by a*s).
    size_t matches = 0;
    const u128 delta = ctx.delta();
    for (size_t i = 0; i < msg.size(); ++i) {
        if (ct.c0[i] / delta == u128(msg[i]))
            ++matches;
    }
    EXPECT_LT(matches, msg.size() / 4);
}

TEST(Bfv, WrongKeyFails)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const SecretKey other = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 5);
    const Ciphertext ct = ctx.encrypt(sk, msg);
    EXPECT_NE(ctx.decrypt(other, ct), msg);
}

TEST(Bfv, HomomorphicAddition)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto a = randomMessage(ctx.params(), 6);
    const auto b = randomMessage(ctx.params(), 7);
    const Ciphertext sum = ctx.add(ctx.encrypt(sk, a), ctx.encrypt(sk, b));

    std::vector<uint64_t> expected(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        expected[i] = (a[i] + b[i]) % ctx.params().plaintextModulus;
    EXPECT_EQ(ctx.decrypt(sk, sum), expected);
}

TEST(Bfv, ManyAdditionsStayDecryptable)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto base = randomMessage(ctx.params(), 8);
    Ciphertext acc = ctx.encrypt(sk, base);
    std::vector<uint64_t> expected = base;
    for (int round = 0; round < 16; ++round) {
        const auto m = randomMessage(ctx.params(), 100 + round);
        acc = ctx.add(acc, ctx.encrypt(sk, m));
        for (size_t i = 0; i < expected.size(); ++i)
            expected[i] =
                (expected[i] + m[i]) % ctx.params().plaintextModulus;
    }
    EXPECT_EQ(ctx.decrypt(sk, acc), expected);
}

TEST(Bfv, PlaintextMultiplyByMonomial)
{
    // Multiplying by x rotates coefficients with a negacyclic sign
    // flip; with messages reduced mod t the wrap becomes t - m.
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 9);

    std::vector<uint64_t> monomial(ctx.params().n, 0);
    monomial[1] = 1; // x
    const Ciphertext prod =
        ctx.mulPlain(ctx.encrypt(sk, msg), monomial);
    const auto got = ctx.decrypt(sk, prod);

    const uint64_t t = ctx.params().plaintextModulus;
    for (size_t i = 1; i < msg.size(); ++i)
        EXPECT_EQ(got[i], msg[i - 1]) << i;
    EXPECT_EQ(got[0], (t - msg.back()) % t);
}

TEST(Bfv, PlaintextMultiplyByConstant)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 10);

    std::vector<uint64_t> three(ctx.params().n, 0);
    three[0] = 3;
    const auto got = ctx.decrypt(sk, ctx.mulPlain(ctx.encrypt(sk, msg),
                                                  three));
    for (size_t i = 0; i < msg.size(); ++i)
        EXPECT_EQ(got[i], (3 * msg[i]) % ctx.params().plaintextModulus);
}

TEST(Bfv, NoiseBudgetDecreasesWithWork)
{
    BfvContext ctx(smallParams());
    const SecretKey sk = ctx.keygen();
    const auto msg = randomMessage(ctx.params(), 11);
    const Ciphertext fresh = ctx.encrypt(sk, msg);
    const double fresh_budget = ctx.noiseBudgetBits(sk, fresh, msg);
    EXPECT_GT(fresh_budget, 20.0);

    // Plaintext multiplication grows noise by ~log2(n * t) bits.
    const auto plain = randomMessage(ctx.params(), 12);
    const Ciphertext worked = ctx.mulPlain(fresh, plain);
    std::vector<u128> m_lift = ctx.liftPlain(msg);
    std::vector<u128> p_lift = ctx.liftPlain(plain);
    auto prod = negacyclicMulNtt(ctx.ntt(), m_lift, p_lift);
    // The integer product has negative coefficients represented as
    // q - |c|; reduce mod t through the centred representative.
    const u128 q = ctx.q();
    const uint64_t t = ctx.params().plaintextModulus;
    std::vector<uint64_t> expected(prod.size());
    for (size_t i = 0; i < prod.size(); ++i) {
        if (prod[i] > q / 2)
            expected[i] = uint64_t((u128(t) - (q - prod[i]) % t) % t);
        else
            expected[i] = uint64_t(prod[i] % t);
    }

    const double worked_budget =
        ctx.noiseBudgetBits(sk, worked, expected);
    EXPECT_LT(worked_budget, fresh_budget);
    EXPECT_GT(worked_budget, 0.0); // still decryptable
    EXPECT_EQ(ctx.decrypt(sk, worked), expected);
}

TEST(RlweParams, Validation)
{
    RlweParams p = smallParams();
    p.n = 1000; // not a power of two
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "power of two");
    p = smallParams();
    p.qBits = 130;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "qBits");
}

TEST(RnsReduce, CentredRepresentativeBoundary)
{
    // Pin the sign convention at the centre of the RNS basis product
    // Q (odd): a reconstructed value w is positive for w <= (Q-1)/2
    // — so w == Q>>1 is exactly the largest positive representative —
    // and negative (w - Q) above it.
    BfvContext ctx(smallParams());
    ctx.attachDevice(std::make_shared<RpuDevice>());

    const RnsBasis &basis = ctx.rnsBasis();
    const CrtContext crt(basis);
    const BigUInt big_q = basis.q();
    const BigUInt half_q = big_q >> 1; // (Q-1)/2 for odd Q
    const BigUInt scheme_q = BigUInt::fromU128(ctx.q());

    std::vector<BigUInt> wide(ctx.params().n); // zero-filled
    wide[0] = half_q;                     // largest positive value
    wide[1] = half_q + BigUInt(1);        // smallest negative value
    wide[2] = big_q - BigUInt(1);         // -1
    wide[3] = BigUInt(1);                 // +1

    const std::vector<u128> out =
        ctx.rnsReduceCentred(crt.decomposePoly(wide));

    const u128 half_mod_q = (half_q % scheme_q).low128();
    EXPECT_EQ(out[0], half_mod_q);
    // half_q + 1 represents -(Q - half_q - 1) = -half_q: the exact
    // negation of the boundary value.
    EXPECT_EQ(out[1], ctx.modulus().neg(half_mod_q));
    EXPECT_EQ(out[2], ctx.q() - 1);
    EXPECT_EQ(out[3], u128(1));
    for (size_t i = 4; i < out.size(); ++i)
        EXPECT_EQ(out[i], u128(0)) << "coefficient " << i;
}

} // namespace
} // namespace rpu
