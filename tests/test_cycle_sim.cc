/**
 * @file
 * Cycle simulator tests: hand-computed timings for micro-programs,
 * exact bank-conflict beat counts, initiation-interval and latency
 * behaviour, queue backpressure, and analytical bounds. These checks
 * substitute for the paper's RTL/Palladium validation (DESIGN.md
 * section 7).
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/cycle/pipelines.hh"
#include "sim/cycle/simulator.hh"

namespace rpu {
namespace {

Program
fromAsm(const std::string &text)
{
    return assemble(text, "micro");
}

/**
 * Timing model recap for hand computation: an instruction dispatched
 * at cycle D issues at max(D+1, pipeline-free) and completes
 * beats + latency cycles later; dependants dispatch at the producer's
 * completion cycle. The first instruction dispatches at cycle 1.
 */
TEST(CycleSim, SingleVectorLoad)
{
    const RpuConfig cfg; // (128,128): 4 beats, lsLatency 4
    const auto s = simulateCycles(fromAsm("vload v1, a0, 0, contig"), cfg);
    EXPECT_EQ(s.cycles, 2u + 4u + 4u);
    EXPECT_EQ(s.ls.busyBeats, 4u);
    EXPECT_EQ(s.imFetches, 1u);
}

TEST(CycleSim, SingleScalarLoad)
{
    const RpuConfig cfg; // 1 beat, sdmLatency 2
    const auto s = simulateCycles(fromAsm("sload s1, 0"), cfg);
    EXPECT_EQ(s.cycles, 2u + 1u + 2u);
}

TEST(CycleSim, IndependentLoadsPipelineAtBeatRate)
{
    const RpuConfig cfg;
    const auto s = simulateCycles(fromAsm("vload v1, a0, 0, contig\n"
                                          "vload v2, a0, 512, contig\n"
                                          "vload v3, a0, 1024, contig"),
                                  cfg);
    // Issues at cycles 2, 6, 10; last completes at 10 + 4 + 4.
    EXPECT_EQ(s.cycles, 18u);
    EXPECT_EQ(s.busyboardStallCycles, 0u);
}

TEST(CycleSim, DependentChainWaitsForCompletion)
{
    const RpuConfig cfg; // CI add: 4 beats + 2 latency
    const auto s = simulateCycles(fromAsm("vaddmod v2, v1, v1, m0\n"
                                          "vaddmod v3, v2, v2, m0\n"
                                          "vaddmod v4, v3, v3, m0"),
                                  cfg);
    // First completes at 2+4+2 = 8; each dependant adds 1+4+2 = 7.
    EXPECT_EQ(s.cycles, 8u + 7u + 7u);
    EXPECT_GT(s.busyboardStallCycles, 0u);
}

TEST(CycleSim, DecoupledPipelinesOverlap)
{
    const RpuConfig cfg;
    // A load, a compute and a shuffle with no mutual dependences
    // execute concurrently in their own pipelines.
    const auto s = simulateCycles(fromAsm("vload v1, a0, 0, contig\n"
                                          "vaddmod v4, v2, v3, m0\n"
                                          "unpklo v7, v5, v6"),
                                  cfg);
    // Dispatches at 1,2,3; issues at 2,3,4; completions: load 10,
    // add 3+4+2=9, shuffle 4+4+4=12.
    EXPECT_EQ(s.cycles, 12u);
    EXPECT_EQ(s.ls.instrs, 1u);
    EXPECT_EQ(s.compute.instrs, 1u);
    EXPECT_EQ(s.shuffle.instrs, 1u);
}

TEST(CycleSim, ButterflyLatencyIsMulPlusAdd)
{
    RpuConfig cfg;
    cfg.mulLatency = 6;
    cfg.addLatency = 3;
    const auto s =
        simulateCycles(fromAsm("vbfly v4, v5, v1, v2, v3, m0"), cfg);
    EXPECT_EQ(s.cycles, 2u + 4u + 6u + 3u);
}

TEST(CycleSim, InitiationIntervalScalesMultiplyOccupancy)
{
    RpuConfig cfg;
    cfg.mulII = 3;
    const auto s = simulateCycles(fromAsm("vmulmod v3, v1, v2, m0"), cfg);
    // beats = ceil(512/128) * 3 = 12.
    EXPECT_EQ(s.cycles, 2u + 12u + cfg.mulLatency);
    // Adds are unaffected by the multiplier II.
    const auto s2 =
        simulateCycles(fromAsm("vaddmod v3, v1, v2, m0"), cfg);
    EXPECT_EQ(s2.cycles, 2u + 4u + cfg.addLatency);
}

TEST(CycleSim, LatencyHiddenByIndependentWork)
{
    // 32 independent multiplies: total time is occupancy-bound, so
    // doubling the multiplier latency moves the result by at most the
    // latency delta (the drain of the last instruction).
    std::string text;
    for (int i = 0; i < 32; ++i) {
        text += "vmulmod v" + std::to_string(i % 8) + ", v" +
                std::to_string(8 + i % 8) + ", v" +
                std::to_string(16 + i % 8) + ", m0\n";
    }
    // Avoid WAW on the same destination: use distinct vd per instr.
    text.clear();
    for (int i = 0; i < 32; ++i) {
        text += "vmulmod v" + std::to_string(i) + ", v40, v41, m0\n";
    }
    RpuConfig lo, hi;
    lo.mulLatency = 2;
    hi.mulLatency = 8;
    const auto a = simulateCycles(fromAsm(text), lo);
    const auto b = simulateCycles(fromAsm(text), hi);
    EXPECT_EQ(b.cycles - a.cycles, hi.mulLatency - lo.mulLatency);
}

TEST(CycleSim, QueueBackpressure)
{
    RpuConfig cfg;
    cfg.queueDepth = 1;
    std::string text;
    for (int i = 1; i <= 16; ++i)
        text += "vload v" + std::to_string(i) + ", a0, 0, contig\n";
    const auto s = simulateCycles(fromAsm(text), cfg);
    EXPECT_GT(s.queueFullStallCycles, 0u);
    // Throughput is still one load per 4 beats once primed.
    const auto deep = [&] {
        RpuConfig d;
        d.queueDepth = 16;
        return simulateCycles(fromAsm(text), d);
    }();
    EXPECT_GE(s.cycles, deep.cycles);
}

TEST(CycleSim, FewerHplesMoreComputeBeats)
{
    RpuConfig small;
    small.numHples = 16; // beats = 32
    const auto s =
        simulateCycles(fromAsm("vaddmod v3, v1, v2, m0"), small);
    EXPECT_EQ(s.cycles, 2u + 32u + small.addLatency);
}

TEST(CycleSim, AccessCounting)
{
    const RpuConfig cfg;
    const auto s = simulateCycles(fromAsm("vload v1, a0, 0, contig\n"
                                          "vbfly v4, v5, v1, v2, v3, m0\n"
                                          "pklo v6, v4, v5\n"
                                          "vstore v6, a0, 1024, contig"),
                                  cfg);
    EXPECT_EQ(s.vdmWordsRead, 512u);
    EXPECT_EQ(s.vdmWordsWritten, 512u);
    EXPECT_EQ(s.vbarWords, 1024u);
    EXPECT_EQ(s.sbarWords, 512u);
    EXPECT_EQ(s.mulLaneOps, 512u);
    EXPECT_EQ(s.addLaneOps, 1024u);
    // VRF: load 512w + bfly (3r+2w)*512 + shuffle (2r+1w)*512 +
    // store 512r.
    EXPECT_EQ(s.vrfWordReads, 512u * 6);
    EXPECT_EQ(s.vrfWordWrites, 512u * 4);
}

TEST(CycleSim, CycleAttributionReconciles)
{
    // Every simulated cycle must land in exactly one front-end
    // bucket; the drain tail (frontend done, pipelines finishing) was
    // previously attributed to none of them.
    const RpuConfig cfg;
    const std::vector<std::string> programs = {
        "vload v1, a0, 0, contig",
        "vaddmod v2, v1, v1, m0\n"
        "vaddmod v3, v2, v2, m0\n"
        "vaddmod v4, v3, v3, m0",
        "vload v1, a0, 0, contig\n"
        "vbfly v4, v5, v1, v2, v3, m0\n"
        "pklo v6, v4, v5\n"
        "vstore v6, a0, 1024, contig",
    };
    for (const auto &text : programs) {
        const auto s = simulateCycles(fromAsm(text), cfg);
        EXPECT_EQ(s.cycles, s.dispatchCycles + s.busyboardStallCycles +
                                s.queueFullStallCycles + s.drainCycles)
            << text;
        // Any non-empty program has a drain tail: the last
        // instruction's beats + latency outlive its dispatch cycle.
        EXPECT_GT(s.drainCycles, 0u) << text;
        EXPECT_GT(s.dispatchCycles, 0u) << text;
    }

    // Backpressure run: queue-full stalls join the ledger.
    RpuConfig narrow;
    narrow.queueDepth = 1;
    std::string text;
    for (int i = 1; i <= 16; ++i)
        text += "vload v" + std::to_string(i) + ", a0, 0, contig\n";
    const auto s = simulateCycles(fromAsm(text), narrow);
    EXPECT_GT(s.queueFullStallCycles, 0u);
    EXPECT_EQ(s.cycles, s.dispatchCycles + s.busyboardStallCycles +
                            s.queueFullStallCycles + s.drainCycles);
}

TEST(CycleSim, Deterministic)
{
    const RpuConfig cfg;
    const Program p = fromAsm("vload v1, a0, 0, contig\n"
                              "vbfly v4, v5, v1, v2, v3, m0\n"
                              "vstore v4, a0, 1024, contig");
    const auto a = simulateCycles(p, cfg);
    const auto b = simulateCycles(p, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.busyboardStallCycles, b.busyboardStallCycles);
}

TEST(CycleSim, EmptyProgram)
{
    const auto s = simulateCycles(Program("empty"), RpuConfig{});
    EXPECT_EQ(s.cycles, 0u);
}

TEST(CycleSim, LowerBoundHolds)
{
    const RpuConfig cfg;
    std::string text;
    for (int i = 0; i < 20; ++i) {
        text += "vload v" + std::to_string(i % 32) +
                ", a0, 0, contig\n";
        text += "vaddmod v" + std::to_string(32 + i % 16) + ", v40, " +
                "v41, m0\n";
    }
    const Program p = fromAsm(text);
    const auto s = simulateCycles(p, cfg);
    EXPECT_GE(s.cycles, cycleLowerBound(p, cfg));
}

// -- Bank conflict model -------------------------------------------------

struct BankCase
{
    AddrMode mode;
    unsigned value;
    unsigned banks;
    uint64_t expected;
};

class BankBeats : public testing::TestWithParam<BankCase>
{
};

TEST_P(BankBeats, MatchesHandCount)
{
    const auto &c = GetParam();
    EXPECT_EQ(bankBeats(c.mode, c.value, c.banks), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, BankBeats,
    testing::Values(
        // Contiguous: perfect interleave, 512/B words per bank.
        BankCase{AddrMode::CONTIGUOUS, 0, 128, 4},
        BankCase{AddrMode::CONTIGUOUS, 0, 32, 16},
        BankCase{AddrMode::CONTIGUOUS, 0, 256, 2},
        // Stride 2^v folds accesses onto B/2^v banks.
        BankCase{AddrMode::STRIDED, 1, 128, 8},
        BankCase{AddrMode::STRIDED, 2, 128, 16},
        BankCase{AddrMode::STRIDED, 7, 128, 512}, // stride == banks
        BankCase{AddrMode::STRIDED, 1, 256, 4},
        // Strided-skip with runs of 2^v: half the banks are hit.
        BankCase{AddrMode::STRIDED_SKIP, 2, 128, 8},
        BankCase{AddrMode::STRIDED_SKIP, 6, 128, 8},
        // Runs of 128 == banks: every bank covered evenly, four
        // 128-word runs land on each bank once apiece.
        BankCase{AddrMode::STRIDED_SKIP, 7, 128, 4},
        // Repeated: only distinct words are fetched.
        BankCase{AddrMode::REPEATED, 3, 128, 1},
        BankCase{AddrMode::REPEATED, 0, 128, 4},
        BankCase{AddrMode::REPEATED, 9, 128, 1}));

} // namespace
} // namespace rpu
