/**
 * @file
 * RNS/CRT tests: decompose/reconstruct round trips and ring
 * homomorphism across towers (paper section II-B).
 */

#include <gtest/gtest.h>

#include "rns/crt.hh"

namespace rpu {
namespace {

TEST(RnsBasis, CompositeModulus)
{
    const RnsBasis basis({u128(7), u128(11), u128(13)});
    EXPECT_EQ(basis.towers(), 3u);
    EXPECT_EQ(basis.q().toDecimal(), "1001");
}

TEST(RnsBasis, RejectsNonCoprime)
{
    EXPECT_EXIT(RnsBasis({u128(6), u128(9)}),
                testing::ExitedWithCode(1), "co-prime");
}

TEST(RnsBasis, NttBasisWidth)
{
    // The paper's example: wide moduli out of many 128-bit towers.
    const RnsBasis basis = RnsBasis::nttBasis(124, 1024, 4);
    EXPECT_EQ(basis.towers(), 4u);
    EXPECT_GE(basis.qBits(), 4 * 123u);
}

TEST(Crt, SmallHandComputed)
{
    const RnsBasis basis({u128(3), u128(5), u128(7)});
    const CrtContext crt(basis);
    // x = 23: residues (2, 3, 2).
    const auto res = crt.decompose(BigUInt(23));
    EXPECT_EQ(res[0], u128(2));
    EXPECT_EQ(res[1], u128(3));
    EXPECT_EQ(res[2], u128(2));
    EXPECT_EQ(crt.reconstruct(res).toDecimal(), "23");
}

TEST(Crt, RoundTripWideValues)
{
    const RnsBasis basis = RnsBasis::nttBasis(124, 1024, 5);
    const CrtContext crt(basis);
    Rng rng(20);
    for (int i = 0; i < 50; ++i) {
        BigUInt x = BigUInt::fromU128(rng.next128());
        for (int k = 0; k < 4; ++k)
            x = x * BigUInt::fromU128(rng.next128());
        x = x % basis.q();
        EXPECT_EQ(crt.reconstruct(crt.decompose(x)), x);
    }
}

TEST(Crt, AdditionHomomorphism)
{
    const RnsBasis basis = RnsBasis::nttBasis(124, 1024, 3);
    const CrtContext crt(basis);
    Rng rng(21);
    for (int i = 0; i < 30; ++i) {
        const BigUInt a =
            (BigUInt::fromU128(rng.next128()) * BigUInt::fromU128(
                 rng.next128())) % basis.q();
        const BigUInt b =
            (BigUInt::fromU128(rng.next128()) * BigUInt::fromU128(
                 rng.next128())) % basis.q();
        auto ra = crt.decompose(a);
        const auto rb = crt.decompose(b);
        for (size_t t = 0; t < basis.towers(); ++t)
            ra[t] = basis.modulus(t).add(ra[t], rb[t]);
        EXPECT_EQ(crt.reconstruct(ra), (a + b) % basis.q());
    }
}

TEST(Crt, MultiplicationHomomorphism)
{
    const RnsBasis basis = RnsBasis::nttBasis(124, 1024, 3);
    const CrtContext crt(basis);
    Rng rng(22);
    for (int i = 0; i < 30; ++i) {
        const BigUInt a =
            BigUInt::fromU128(rng.next128()) % basis.q();
        const BigUInt b =
            BigUInt::fromU128(rng.next128()) % basis.q();
        auto ra = crt.decompose(a);
        const auto rb = crt.decompose(b);
        for (size_t t = 0; t < basis.towers(); ++t)
            ra[t] = basis.modulus(t).mul(ra[t], rb[t]);
        EXPECT_EQ(crt.reconstruct(ra), (a * b) % basis.q());
    }
}

TEST(Crt, PolyDecomposeReconstruct)
{
    const RnsBasis basis = RnsBasis::nttBasis(124, 1024, 3);
    const CrtContext crt(basis);
    Rng rng(23);
    std::vector<BigUInt> coeffs(64);
    for (auto &c : coeffs) {
        c = (BigUInt::fromU128(rng.next128()) *
             BigUInt::fromU128(rng.next128())) % basis.q();
    }
    const auto towers = crt.decomposePoly(coeffs);
    EXPECT_EQ(towers.size(), 3u);
    EXPECT_EQ(towers[0].size(), 64u);
    EXPECT_EQ(crt.reconstructPoly(towers), coeffs);
}

TEST(Crt, TowerIndependence)
{
    // The paper's point: each tower operates independently. Perturb
    // one tower's residue and only that residue class changes.
    const RnsBasis basis = RnsBasis::nttBasis(60, 1024, 3);
    const CrtContext crt(basis);
    auto res = crt.decompose(BigUInt(12345));
    res[1] = basis.modulus(1).add(res[1], 1);
    const BigUInt x = crt.reconstruct(res);
    EXPECT_EQ((x % BigUInt::fromU128(basis.prime(0))).low128(),
              u128(12345 % basis.prime(0)));
    EXPECT_EQ((x % BigUInt::fromU128(basis.prime(1))).low128(),
              basis.modulus(1).add(u128(12345 % basis.prime(1)), 1));
    EXPECT_EQ((x % BigUInt::fromU128(basis.prime(2))).low128(),
              u128(12345 % basis.prime(2)));
}

} // namespace
} // namespace rpu
