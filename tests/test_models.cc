/**
 * @file
 * Analytical-model tests: every qualitative and quantitative claim the
 * paper publishes about area, frequency, energy and off-chip traffic
 * is locked here (see DESIGN.md section 5 for the calibration list).
 */

#include <gtest/gtest.h>

#include "model/area.hh"
#include "model/comparisons.hh"
#include "model/energy.hh"
#include "model/frequency.hh"
#include "model/hbm.hh"
#include "rpu/runner.hh"

namespace rpu {
namespace {

RpuConfig
design(unsigned h, unsigned b)
{
    RpuConfig cfg;
    cfg.numHples = h;
    cfg.numBanks = b;
    return cfg;
}

TEST(AreaModel, FlagshipTotalMatchesPaper)
{
    // Paper headline: (128,128) uses 20.5 mm^2 in GF 12nm.
    const double total = rpuArea(design(128, 128)).total();
    EXPECT_NEAR(total, 20.5, 0.5);
}

TEST(AreaModel, HpleVrfMatchesF1Comparison)
{
    // Section VII compares HPLE + VRF = 12.61 mm^2 at 128 HPLEs.
    const AreaBreakdown a = rpuArea(design(128, 128));
    EXPECT_NEAR(a.lawEngine + a.vrf, f1Comparison().rpuPaperAreaMm2, 0.4);
}

TEST(AreaModel, SramMacroCalibrationPoints)
{
    // The paper quotes 512 B = 2010 um^2 and 256 B = 1818 um^2 for
    // the small macros the VRF slices map onto. At 128 HPLEs each
    // slice macro is 256 B; at 64 HPLEs it is 512 B.
    const AreaModelConfig m;
    const double at256 =
        m.smallMacroBaseUm2 + m.smallMacroPerByteUm2 * 256.0;
    const double at512 =
        m.smallMacroBaseUm2 + m.smallMacroPerByteUm2 * 512.0;
    EXPECT_NEAR(at256, 1818.0, 1.0);
    EXPECT_NEAR(at512, 2010.0, 1.0);
}

TEST(AreaModel, VrfGrowsBetween1_5And2PerDoubling)
{
    // Paper section VI-C: "the area of the VRF jumps by 1.5x-2x" per
    // HPLE doubling. The claim is about the macro-periphery-dominated
    // regime (many small slices); at few HPLEs the slices are large
    // macros and growth is milder, so assert the band from 32 HPLEs up
    // and plain monotonic growth below.
    for (unsigned h = 4; h < 256; h *= 2) {
        const double before = rpuArea(design(h, 128)).vrf;
        const double after = rpuArea(design(2 * h, 128)).vrf;
        EXPECT_GT(after / before, 1.0) << "H=" << h;
        if (h >= 32) {
            EXPECT_GE(after / before, 1.4) << "H=" << h;
            EXPECT_LE(after / before, 2.05) << "H=" << h;
        }
    }
}

TEST(AreaModel, LawEngineScalesLinearly)
{
    const double at64 = rpuArea(design(64, 128)).lawEngine;
    const double at128 = rpuArea(design(128, 128)).lawEngine;
    EXPECT_NEAR(at128 / at64, 2.0, 1e-9);
}

TEST(AreaModel, SbarTriplesPerDoublingAndQuintuplesAt256)
{
    // Paper: "as the number of HPLEs doubles, the SBAR area triples
    // ... for 256 HPLEs, the SBAR area is 5x larger compared to 128".
    for (unsigned h = 4; h < 128; h *= 2) {
        const double ratio = rpuArea(design(2 * h, 128)).sbar /
                             rpuArea(design(h, 128)).sbar;
        EXPECT_NEAR(ratio, 3.0, 0.01) << "H=" << h;
    }
    const double final_ratio = rpuArea(design(256, 128)).sbar /
                               rpuArea(design(128, 128)).sbar;
    EXPECT_NEAR(final_ratio, 5.0, 0.01);
}

TEST(AreaModel, VbarDoublesWithBanksBeyond64)
{
    // Paper: at 128 HPLEs the VBAR area doubles when doubling banks
    // past 64.
    const double at128 = rpuArea(design(128, 128)).vbar;
    const double at256 = rpuArea(design(128, 256)).vbar;
    EXPECT_NEAR(at256 / at128, 2.0, 0.25);
}

TEST(AreaModel, BankDoublingIsModerate)
{
    // Paper: "as the VDM banks double, RPU area increases by 10%-24%"
    // (at 128 HPLEs, including the crossbar growth).
    for (unsigned b = 64; b < 256; b *= 2) {
        const double before = rpuArea(design(128, b)).total();
        const double after = rpuArea(design(128, 2 * b)).total();
        const double pct = 100.0 * (after - before) / before;
        EXPECT_GE(pct, 3.0) << "B=" << b;
        EXPECT_LE(pct, 24.0) << "B=" << b;
    }
}

TEST(AreaModel, Area256x256Roughly1_2xOf256x32)
{
    const double hi = rpuArea(design(256, 256)).total();
    const double lo = rpuArea(design(256, 32)).total();
    EXPECT_NEAR(hi / lo, 1.2, 0.12);
}

TEST(AreaModel, MonotonicInResources)
{
    double prev = 0;
    for (unsigned h = 4; h <= 256; h *= 2) {
        const double t = rpuArea(design(h, 128)).total();
        EXPECT_GT(t, prev);
        prev = t;
    }
    prev = 0;
    for (unsigned b = 32; b <= 256; b *= 2) {
        const double t = rpuArea(design(128, b)).total();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(FrequencyModel, PaperTable)
{
    // Paper section VI-B: 1.29 / 1.53 / 1.68 / 1.68 GHz.
    EXPECT_DOUBLE_EQ(rpuFrequencyGhz(32), 1.29);
    EXPECT_DOUBLE_EQ(rpuFrequencyGhz(64), 1.53);
    EXPECT_DOUBLE_EQ(rpuFrequencyGhz(128), 1.68);
    EXPECT_DOUBLE_EQ(rpuFrequencyGhz(256), 1.68);
}

TEST(EnergyModel, MultiplierMatchesPaperPower)
{
    // 104 mW per 128b multiplier at 1.68 GHz is ~62 pJ/op; the
    // calibrated per-op energy must sit near that.
    const EnergyModelConfig m;
    EXPECT_NEAR(m.mulPj, 104.0 / 1.68, 5.0);
}

TEST(EnergyModel, SixtyFourKSharesMatchFig5c)
{
    NttRunner runner(65536, 124);
    const RpuConfig cfg = design(128, 128);
    NttCodegenOptions opts;
    opts.scheduleConfig = cfg;
    const KernelMetrics m =
        runner.evaluate(runner.makeKernel(opts), cfg);
    const EnergyBreakdown &e = m.energy;

    // Paper Fig. 5c: LAW 66.7%, VRF 19.3%, VDM 10.5%, VBAR 2.3%,
    // SBAR 1.0%; total 49.18 uJ at 7.44 W. Component ordering and
    // rough shares must reproduce.
    EXPECT_GT(e.share(e.lawUj), 60.0);
    EXPECT_LT(e.share(e.lawUj), 78.0);
    EXPECT_GT(e.share(e.vrfUj), 12.0);
    EXPECT_LT(e.share(e.vrfUj), 25.0);
    EXPECT_GT(e.share(e.vdmUj), 5.0);
    EXPECT_LT(e.share(e.vdmUj), 16.0);
    EXPECT_GT(e.share(e.lawUj), e.share(e.vrfUj));
    EXPECT_GT(e.share(e.vrfUj), e.share(e.vdmUj));
    EXPECT_GT(e.share(e.vdmUj), e.share(e.vbarUj));
    EXPECT_GT(e.share(e.vbarUj), e.share(e.imUj));

    EXPECT_NEAR(e.totalUj(), paperReference().ntt64kEnergyUj, 10.0);
    EXPECT_GT(m.powerW, 3.5);
    EXPECT_LT(m.powerW, 9.5);
}

TEST(HbmModel, TransferTimes)
{
    // 64K x 16 B at 512 GB/s = 2.048 us.
    EXPECT_NEAR(hbmTransferUs(65536), 2.048, 1e-6);
    EXPECT_NEAR(hbmTransferUs(1024), 0.032, 1e-6);
    // Halving n halves the transfer time exactly.
    EXPECT_NEAR(hbmTransferUs(32768) * 2, hbmTransferUs(65536), 1e-9);
}

TEST(HbmModel, TheoreticalLatency)
{
    // n log2 n / (H * f): for 64K on (128,128): 1048576 ops over
    // 128 * 1.68e9 = 4.876 us (the paper's Fig. 9 ideal bar).
    EXPECT_NEAR(theoreticalNttUs(65536, 128, 1.68), 4.876, 0.01);
    EXPECT_NEAR(theoreticalNttUs(1024, 128, 1.68), 0.0476, 0.001);
}

TEST(HbmModel, BandwidthSufficientAcrossSizes)
{
    // Paper section VI-G: a 512 GB/s HBM2 satisfies the off-chip
    // bandwidth requirement for all polynomial degrees — transfers
    // always finish before the NTT does.
    NttRunner *runners[] = {nullptr};
    (void)runners;
    for (uint64_t n : {1024ull, 4096ull, 16384ull, 65536ull}) {
        NttRunner runner(n, 124);
        const RpuConfig cfg = design(128, 128);
        NttCodegenOptions opts;
        opts.scheduleConfig = cfg;
        const KernelMetrics m =
            runner.evaluate(runner.makeKernel(opts), cfg);
        EXPECT_LT(hbmTransferUs(n), m.runtimeUs) << "n=" << n;
    }
}

TEST(Comparisons, PaperConstants)
{
    const PaperReference ref = paperReference();
    EXPECT_DOUBLE_EQ(ref.ntt64kRuntimeUs, 6.7);
    EXPECT_DOUBLE_EQ(ref.areaMm2, 20.5);
    const F1Comparison f1 = f1Comparison();
    EXPECT_DOUBLE_EQ(f1.f1Ntt16kNs, 2864.0);
    EXPECT_EQ(f1.maxF1PolyDegree, 16384u);
    EXPECT_GT(paperCpuSpeedup128b(65536), 1400.0);
}

} // namespace
} // namespace rpu
