/**
 * @file
 * Integration of the RNS and NTT layers: the paper's Fig. 1 pipeline
 * decomposes wide-modulus polynomials into towers, multiplies each
 * tower independently with NTTs, and reconstructs via CRT. This must
 * equal the wide-integer negacyclic product computed directly with
 * BigUInt arithmetic — a cross-layer oracle exercising wide/, rns/,
 * poly/ and (in the RPU variant) codegen/ + sim/ together.
 */

#include <gtest/gtest.h>

#include "rns/crt.hh"
#include "rpu/runner.hh"

namespace rpu {
namespace {

/** Naive negacyclic product over Z_Q with BigUInt coefficients. */
std::vector<BigUInt>
negacyclicMulBig(const BigUInt &q, const std::vector<BigUInt> &a,
                 const std::vector<BigUInt> &b)
{
    const size_t n = a.size();
    std::vector<BigUInt> r(n);
    for (size_t i = 0; i < n; ++i) {
        if (a[i].isZero())
            continue;
        for (size_t j = 0; j < n; ++j) {
            const BigUInt p = (a[i] * b[j]) % q;
            const size_t k = i + j;
            if (k < n) {
                r[k] = (r[k] + p) % q;
            } else {
                // x^n == -1: subtract, i.e. add q - p.
                r[k - n] = (r[k - n] + (q - p)) % q;
            }
        }
    }
    return r;
}

class RnsNttIntegration : public testing::TestWithParam<size_t>
{
};

TEST_P(RnsNttIntegration, TowerProductsReconstructToWideProduct)
{
    const size_t towers = GetParam();
    const uint64_t n = 64; // keep the O(n^2) BigUInt oracle fast
    const RnsBasis basis = RnsBasis::nttBasis(60, n, towers);
    const CrtContext crt(basis);

    // Random wide-coefficient polynomials mod Q.
    Rng rng(towers * 7);
    std::vector<BigUInt> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = (BigUInt::fromU128(rng.next128()) *
                BigUInt::fromU128(rng.next128())) % basis.q();
        b[i] = (BigUInt::fromU128(rng.next128()) *
                BigUInt::fromU128(rng.next128())) % basis.q();
    }

    // Tower-wise NTT products.
    const auto ta = crt.decomposePoly(a);
    const auto tb = crt.decomposePoly(b);
    CrtContext::TowerPoly tr(towers);
    for (size_t t = 0; t < towers; ++t) {
        const Modulus &mod = basis.modulus(t);
        const TwiddleTable tw(mod, n);
        const NttContext ntt(tw);
        tr[t] = negacyclicMulNtt(ntt, ta[t], tb[t]);
    }

    EXPECT_EQ(crt.reconstructPoly(tr),
              negacyclicMulBig(basis.q(), a, b));
}

INSTANTIATE_TEST_SUITE_P(TowerCounts, RnsNttIntegration,
                         testing::Values(1u, 2u, 3u, 5u));

TEST(RnsNttIntegration, WideProductOnTheRpu)
{
    // Same property with the tower products executed by generated
    // B512 kernels on the functional simulator: the full Fig. 1
    // compute path on the RPU.
    const uint64_t n = 1024;
    const size_t towers = 2;
    const RnsBasis basis = RnsBasis::nttBasis(60, n, towers);
    const CrtContext crt(basis);

    Rng rng(11);
    std::vector<BigUInt> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = BigUInt::fromU128(rng.next128()) % basis.q();
        b[i] = BigUInt::fromU128(rng.next128()) % basis.q();
    }
    const auto ta = crt.decomposePoly(a);
    const auto tb = crt.decomposePoly(b);

    CrtContext::TowerPoly tr(towers);
    for (size_t t = 0; t < towers; ++t) {
        NttRunner runner =
            NttRunner::withModulus(n, basis.prime(t));
        const PolyMulKernel kernel = runner.makePolyMulKernel();
        tr[t] = runner.executePolyMul(kernel, ta[t], tb[t]);
    }
    const auto via_rpu = crt.reconstructPoly(tr);

    // Reference: tower products with the host reference NTT.
    CrtContext::TowerPoly ref(towers);
    for (size_t t = 0; t < towers; ++t) {
        const TwiddleTable tw(basis.modulus(t), n);
        const NttContext ntt(tw);
        ref[t] = negacyclicMulNtt(ntt, ta[t], tb[t]);
    }
    EXPECT_EQ(via_rpu, crt.reconstructPoly(ref));
}

TEST(RnsNttIntegration, ThirteenTowerExample)
{
    // The paper's section II-B example: a very wide modulus split
    // into many towers of (up to) 128-bit elements. 13 towers of
    // 120-bit primes give a ~1560-bit composite modulus.
    const RnsBasis basis = RnsBasis::nttBasis(120, 1024, 13);
    EXPECT_EQ(basis.towers(), 13u);
    EXPECT_GE(basis.qBits(), 13 * 119u);
    const CrtContext crt(basis);
    Rng rng(13);
    BigUInt x;
    for (int i = 0; i < 13; ++i)
        x = (x << 100) + BigUInt::fromU128(rng.next128());
    x = x % basis.q();
    EXPECT_EQ(crt.reconstruct(crt.decompose(x)), x);
}

} // namespace
} // namespace rpu
