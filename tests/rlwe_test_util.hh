/**
 * @file
 * Shared reference oracles for the RLWE scheme tests. Kept naive on
 * purpose: the schemes compute these quantities through NTTs and RNS
 * towers, so the test oracle must not.
 */

#ifndef RPU_TESTS_RLWE_TEST_UTIL_HH
#define RPU_TESTS_RLWE_TEST_UTIL_HH

#include <cstdint>
#include <vector>

namespace rpu {
namespace testutil {

/** Naive negacyclic product of two mod-t vectors (x^n = -1). */
inline std::vector<uint64_t>
naiveNegacyclicModT(const std::vector<uint64_t> &a,
                    const std::vector<uint64_t> &b, uint64_t t)
{
    const size_t n = a.size();
    std::vector<int64_t> acc(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (b[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            const size_t k = (i + j) % n;
            const int64_t sign = (i + j) < n ? 1 : -1;
            acc[k] += sign * int64_t((a[j] * b[i]) % t);
            acc[k] %= int64_t(t);
        }
    }
    std::vector<uint64_t> out(n);
    for (size_t k = 0; k < n; ++k)
        out[k] = uint64_t((acc[k] + int64_t(t)) % int64_t(t));
    return out;
}

} // namespace testutil
} // namespace rpu

#endif // RPU_TESTS_RLWE_TEST_UTIL_HH
