/**
 * @file
 * Bit-identity and bounds tests for the vectorised host math layer.
 *
 * The narrow (u64) kernel set must be element-for-element identical
 * to the u128 Montgomery reference for canonical inputs — that is the
 * contract that lets RPU_HOST_SIMD switch freely between modes. This
 * file fuzzes every batch kernel against the `Modulus` oracle across
 * ~20 NTT primes of widths spanning the narrow domain, drives the
 * lazy butterfly kernels at their reduction boundaries, checks the
 * transforms stage-for-stage across ring dimensions that cross the
 * cache-blocking tile, and runs full BFV and CKKS pipelines under
 * both modes on every execution backend, demanding bit-identical
 * ciphertexts, decrypts, and device ledgers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "modmath/primegen.hh"
#include "modmath/simd.hh"
#include "poly/ntt.hh"
#include "poly/polynomial.hh"
#include "rlwe/bfv.hh"
#include "rlwe/ckks.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

/** Restores the host-SIMD mode on scope exit (tests must not leak). */
class ModeGuard
{
  public:
    explicit ModeGuard(simd::HostSimdMode mode)
        : saved_(simd::hostSimdMode())
    {
        simd::setHostSimdMode(mode);
    }
    ~ModeGuard() { simd::setHostSimdMode(saved_); }

  private:
    simd::HostSimdMode saved_;
};

/**
 * ~20 NTT primes spanning the narrow domain, biased toward the upper
 * boundary (61 bits) where lazy sums are tightest. All satisfy
 * q == 1 (mod 2n) for n = 64 so the same set serves the butterfly
 * kernels with real twiddle factors.
 */
std::vector<uint64_t>
fuzzPrimes()
{
    std::vector<uint64_t> qs;
    for (unsigned bits : {30u, 35u, 40u, 45u, 50u, 55u, 59u, 61u}) {
        for (const u128 q : nttPrimes(bits, 64, bits >= 55 ? 3 : 2))
            qs.push_back(uint64_t(q));
    }
    return qs;
}

/** Span lengths exercising tails: below, at, and across lane widths. */
const std::vector<size_t> kLens = {1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 100};

/**
 * Canonical fuzz inputs with the boundary classes planted up front:
 * 0, 1, q-1, and the half-modulus pair (the `wide == Q>>1` class).
 */
std::vector<uint64_t>
boundaryVector(size_t len, uint64_t q, Rng &rng)
{
    std::vector<uint64_t> v(len);
    const uint64_t specials[] = {0, 1, q - 1, q >> 1, (q >> 1) + 1};
    for (size_t i = 0; i < len; ++i)
        v[i] = i < 5 ? specials[i] % q : uint64_t(rng.below128(q));
    return v;
}

TEST(NarrowModulus, ConstantsMatchOracle)
{
    for (const uint64_t q : fuzzPrimes()) {
        const simd::NarrowModulus nm(q);
        const Modulus mod(q);
        EXPECT_EQ(q * nm.qInvNeg, uint64_t(0) - 1) << "q=" << q;
        EXPECT_EQ(u128(nm.r2), mod.pow(2, 128)) << "q=" << q;

        Rng rng(q);
        const uint64_t vals[] = {0, 1, q - 1, q >> 1,
                                 uint64_t(rng.below128(q)),
                                 uint64_t(rng.below128(q))};
        for (const uint64_t a : vals) {
            for (const uint64_t b : vals) {
                EXPECT_EQ(u128(simd::mulMontMod64(a, b, nm)),
                          mod.mul(a, b))
                    << "q=" << q << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(NarrowKernels, SpansMatchU128Reference)
{
    for (const uint64_t q : fuzzPrimes()) {
        const simd::NarrowModulus nm(q);
        const Modulus mod(q);
        Rng rng(q ^ 0x5eed);
        for (const size_t len : kLens) {
            const auto a = boundaryVector(len, q, rng);
            const auto b = boundaryVector(len, q, rng);
            const uint64_t w = uint64_t(rng.below128(q));
            const uint64_t ws = simd::shoupPrecompute64(w, q);

            std::vector<uint64_t> out(len), sum(len), diff(len);
            simd::mulModSpan(a.data(), b.data(), out.data(), len, nm);
            for (size_t i = 0; i < len; ++i)
                EXPECT_EQ(u128(out[i]), mod.mul(a[i], b[i]))
                    << "q=" << q << " len=" << len << " i=" << i;

            simd::addModSpan(a.data(), b.data(), out.data(), len, q);
            for (size_t i = 0; i < len; ++i)
                EXPECT_EQ(u128(out[i]), mod.add(a[i], b[i]));

            simd::subModSpan(a.data(), b.data(), out.data(), len, q);
            for (size_t i = 0; i < len; ++i)
                EXPECT_EQ(u128(out[i]), mod.sub(a[i], b[i]));

            simd::mulShoupSpan(a.data(), out.data(), len, w, ws, q);
            for (size_t i = 0; i < len; ++i)
                EXPECT_EQ(u128(out[i]), mod.mul(w, a[i]));

            simd::butterflyMulModSpan(a.data(), b.data(), a.data(),
                                      sum.data(), diff.data(), len, nm);
            for (size_t i = 0; i < len; ++i) {
                const u128 t = mod.mul(a[i], b[i]);
                EXPECT_EQ(u128(sum[i]), mod.add(a[i], t));
                EXPECT_EQ(u128(diff[i]), mod.sub(a[i], t));
            }
        }
    }
}

TEST(NarrowKernels, LazyButterflyBoundsAtDomainEdges)
{
    // The lazy kernels accept the *unreduced* inter-stage domains:
    // [0, 4q) into a forward pass, [0, 2q) into an inverse pass. Feed
    // the extreme representatives directly and check both the output
    // bounds and the values mod q.
    for (const uint64_t q : fuzzPrimes()) {
        if (q >= (uint64_t(1) << 61))
            continue; // 4q-1 must fit the test's value list in u64
        const Modulus mod(q);
        Rng rng(q ^ 0xb0b);
        const uint64_t w = uint64_t(rng.below128(q));
        const uint64_t ws = simd::shoupPrecompute64(w, q);

        const size_t len = 9; // vector body plus tail on every ISA
        std::vector<uint64_t> lo(len), hi(len);
        const uint64_t edges[] = {0,         1,         q - 1,
                                  q,         2 * q - 1, 2 * q,
                                  4 * q - 1, q >> 1,    3 * q};
        for (size_t i = 0; i < len; ++i) {
            lo[i] = edges[i];
            hi[i] = edges[len - 1 - i];
        }

        auto flo = lo, fhi = hi;
        simd::forwardButterflyLazySpan(flo.data(), fhi.data(), len, w,
                                       ws, q);
        for (size_t i = 0; i < len; ++i) {
            ASSERT_LT(flo[i], 4 * q);
            ASSERT_LT(fhi[i], 4 * q);
            const u128 t = mod.mul(w, mod.reduce(hi[i]));
            EXPECT_EQ(mod.reduce(flo[i]),
                      mod.add(mod.reduce(lo[i]), t));
            EXPECT_EQ(mod.reduce(fhi[i]),
                      mod.sub(mod.reduce(lo[i]), t));
        }
        simd::canonicalizeSpan(flo.data(), len, q);
        for (size_t i = 0; i < len; ++i)
            EXPECT_LT(flo[i], q);

        std::vector<uint64_t> ilo(len), ihi(len);
        for (size_t i = 0; i < len; ++i) {
            ilo[i] = edges[i] % (2 * q); // inverse domain is [0, 2q)
            ihi[i] = edges[len - 1 - i] % (2 * q);
        }
        auto glo = ilo, ghi = ihi;
        simd::inverseButterflyLazySpan(glo.data(), ghi.data(), len, w,
                                       ws, q);
        for (size_t i = 0; i < len; ++i) {
            ASSERT_LT(glo[i], 2 * q);
            ASSERT_LT(ghi[i], 2 * q);
            const u128 a = mod.reduce(ilo[i]);
            const u128 b = mod.reduce(ihi[i]);
            EXPECT_EQ(mod.reduce(glo[i]), mod.add(a, b));
            EXPECT_EQ(mod.reduce(ghi[i]), mod.mul(w, mod.sub(a, b)));
        }
    }
}

TEST(NttModes, TransformsBitIdenticalAcrossTileBoundary)
{
    // n = 8192 crosses the kNttTileElems cache-blocking boundary;
    // the small sizes exercise the single-block degenerate case.
    for (const uint64_t n : {4ull, 8ull, 1024ull, 4096ull, 8192ull}) {
        const Modulus mod(nttPrime(45, n));
        const TwiddleTable tw(mod, n);
        const NttContext ctx(tw);
        Rng rng(n);
        const auto x = randomPoly(mod, n, rng);

        std::vector<u128> fwd_s = x, fwd_v = x;
        {
            ModeGuard g(simd::HostSimdMode::Scalar);
            EXPECT_FALSE(ctx.narrowPathActive());
            ctx.forward(fwd_s);
        }
        {
            ModeGuard g(simd::HostSimdMode::Native);
            EXPECT_TRUE(ctx.narrowPathActive());
            ctx.forward(fwd_v);
        }
        EXPECT_EQ(fwd_s, fwd_v) << "n=" << n;

        std::vector<u128> inv_s = fwd_s, inv_v = fwd_s;
        {
            ModeGuard g(simd::HostSimdMode::Scalar);
            ctx.inverse(inv_s);
        }
        {
            ModeGuard g(simd::HostSimdMode::Native);
            ctx.inverse(inv_v);
        }
        EXPECT_EQ(inv_s, inv_v) << "n=" << n;
        EXPECT_EQ(inv_v, x) << "round trip must be the identity";

        // And the always-scalar plain variant agrees with both.
        std::vector<u128> plain = x;
        ctx.forwardPlain(plain);
        EXPECT_EQ(plain, fwd_v);
    }
}

TEST(NttModes, WideModulusStaysOnScalarPathInNativeMode)
{
    // A 100-bit prime is outside the narrow domain: native mode must
    // keep the u128 reference path (and still be correct).
    const uint64_t n = 64;
    const Modulus mod(nttPrime(100, n));
    ASSERT_EQ(mod.narrow(), nullptr);
    const TwiddleTable tw(mod, n);
    const NttContext ctx(tw);
    ModeGuard g(simd::HostSimdMode::Native);
    EXPECT_FALSE(ctx.narrowPathActive());

    Rng rng(99);
    const auto a = randomPoly(mod, n, rng);
    const auto b = randomPoly(mod, n, rng);
    EXPECT_EQ(negacyclicMulNtt(ctx, a, b),
              negacyclicMulNaive(mod, a, b));
}

TEST(PolyOps, PointwiseAndScaleBitIdenticalAcrossModes)
{
    for (const uint64_t n : {8ull, 1000ull, 1024ull, 1025ull, 4096ull}) {
        const Modulus mod(nttPrime(45, 4096));
        Rng rng(n ^ 0xf00d);
        const auto a = randomPoly(mod, n, rng);
        const auto b = randomPoly(mod, n, rng);
        const u128 s = rng.below128(mod.value());

        std::vector<u128> pw_s, pw_v, sc_s, sc_v;
        {
            ModeGuard g(simd::HostSimdMode::Scalar);
            pw_s = polyPointwise(mod, a, b);
            sc_s = polyScale(mod, s, a);
        }
        {
            ModeGuard g(simd::HostSimdMode::Native);
            pw_v = polyPointwise(mod, a, b);
            sc_v = polyScale(mod, s, a);
        }
        EXPECT_EQ(pw_s, pw_v) << "n=" << n;
        EXPECT_EQ(sc_s, sc_v) << "n=" << n;
    }
}

/** Every counter of two device ledgers must agree. */
void
expectStatsEqual(const DeviceStats &a, const DeviceStats &b)
{
    EXPECT_EQ(a.launches, b.launches);
    EXPECT_EQ(a.forwardTransforms, b.forwardTransforms);
    EXPECT_EQ(a.inverseTransforms, b.inverseTransforms);
    EXPECT_EQ(a.pointwiseMuls, b.pointwiseMuls);
    EXPECT_EQ(a.transformsElided, b.transformsElided);
}

/**
 * The full BFV hot path under one mode: fresh contexts (same seeds),
 * encrypt -> add -> mulPlain -> decrypt on the given device. Returns
 * the chain ciphertext (in coefficient form) and the decrypt.
 */
struct BfvRun
{
    Ciphertext chain;
    std::vector<uint64_t> decrypted;
    DeviceStats stats;
};

BfvRun
runBfvChain(simd::HostSimdMode mode, size_t towers,
            const std::shared_ptr<RpuDevice> &device)
{
    ModeGuard g(mode);
    RlweParams params;
    params.n = 1024;
    params.towers = towers;
    params.towerBits = 45;
    params.plaintextModulus = 65537;
    params.noiseBound = 4;

    BfvContext ctx(params, /*seed=*/7);
    if (device) {
        device->resetCounters();
        ctx.attachDevice(device);
    }
    const SecretKey sk = ctx.keygen();

    Rng rng(1234);
    std::vector<uint64_t> a(params.n), b(params.n), p(params.n);
    for (size_t i = 0; i < params.n; ++i) {
        a[i] = rng.below64(params.plaintextModulus);
        b[i] = rng.below64(params.plaintextModulus);
        p[i] = rng.below64(params.plaintextModulus);
    }

    BfvRun run;
    run.chain = ctx.add(
        ctx.mulPlain(ctx.add(ctx.encrypt(sk, a), ctx.encrypt(sk, b)),
                     ctx.encodePlain(p)),
        ctx.encrypt(sk, b));
    run.decrypted = ctx.decrypt(sk, run.chain);
    ctx.toCoeff(run.chain);
    if (device)
        run.stats = device->stats();
    return run;
}

void
expectBfvRunsIdentical(const BfvRun &s, const BfvRun &v)
{
    EXPECT_EQ(s.decrypted, v.decrypted);
    ASSERT_EQ(s.chain.towers(), v.chain.towers());
    EXPECT_EQ(s.chain.c0.towers, v.chain.c0.towers);
    EXPECT_EQ(s.chain.c1.towers, v.chain.c1.towers);
}

TEST(Pipelines, BfvChainBitIdenticalAcrossModesAndBackends)
{
    for (const size_t towers : {size_t(1), size_t(3)}) {
        // Host-only (no device attached).
        const BfvRun host_s =
            runBfvChain(simd::HostSimdMode::Scalar, towers, nullptr);
        const BfvRun host_v =
            runBfvChain(simd::HostSimdMode::Native, towers, nullptr);
        expectBfvRunsIdentical(host_s, host_v);

        // Functional-sim backend, serial and pooled.
        const auto serial = std::make_shared<RpuDevice>();
        const BfvRun ser_s =
            runBfvChain(simd::HostSimdMode::Scalar, towers, serial);
        const BfvRun ser_v =
            runBfvChain(simd::HostSimdMode::Native, towers, serial);
        expectBfvRunsIdentical(ser_s, ser_v);
        expectStatsEqual(ser_s.stats, ser_v.stats);
        expectBfvRunsIdentical(host_s, ser_v);

        const auto pooled = std::make_shared<RpuDevice>();
        pooled->setParallelism(4);
        const BfvRun pool_v =
            runBfvChain(simd::HostSimdMode::Native, towers, pooled);
        expectBfvRunsIdentical(ser_s, pool_v);

        // CPU-reference backend (the non-simulator executor).
        const auto cpuref = std::make_shared<RpuDevice>(
            std::make_unique<CpuReferenceBackend>());
        const BfvRun ref_s =
            runBfvChain(simd::HostSimdMode::Scalar, towers, cpuref);
        const BfvRun ref_v =
            runBfvChain(simd::HostSimdMode::Native, towers, cpuref);
        expectBfvRunsIdentical(ref_s, ref_v);
        expectStatsEqual(ref_s.stats, ref_v.stats);
        expectBfvRunsIdentical(host_s, ref_v);
    }
}

/** CKKS encrypt -> mulPlain -> rescale under one mode. */
CkksCiphertext
runCkksChain(simd::HostSimdMode mode,
             const std::shared_ptr<RpuDevice> &device)
{
    ModeGuard g(mode);
    CkksParams params;
    params.n = 1024;
    params.towers = 3;
    params.towerBits = 45;
    params.scale = 1099511627776.0; // 2^40
    params.noiseBound = 4;

    CkksContext ctx(params, /*seed=*/11);
    if (device)
        ctx.attachDevice(device);
    const CkksSecretKey sk = ctx.keygen();

    std::vector<std::complex<double>> z(ctx.slots()), w(ctx.slots());
    for (size_t i = 0; i < z.size(); ++i) {
        z[i] = std::complex<double>(double(i % 17) / 4.0, double(i % 5) - 2.0);
        w[i] = std::complex<double>(1.5, double(i % 3) / 2.0);
    }
    CkksCiphertext out =
        ctx.rescale(ctx.mulPlain(ctx.encrypt(sk, z), w));
    ctx.toCoeff(out);
    return out;
}

TEST(Pipelines, CkksMulRescaleBitIdenticalAcrossModes)
{
    const CkksCiphertext host_s =
        runCkksChain(simd::HostSimdMode::Scalar, nullptr);
    const CkksCiphertext host_v =
        runCkksChain(simd::HostSimdMode::Native, nullptr);
    ASSERT_EQ(host_s.towers(), host_v.towers());
    EXPECT_EQ(host_s.c0.towers, host_v.c0.towers);
    EXPECT_EQ(host_s.c1.towers, host_v.c1.towers);
    EXPECT_DOUBLE_EQ(host_s.scale, host_v.scale);

    const auto device = std::make_shared<RpuDevice>();
    const CkksCiphertext dev_s =
        runCkksChain(simd::HostSimdMode::Scalar, device);
    const CkksCiphertext dev_v =
        runCkksChain(simd::HostSimdMode::Native, device);
    EXPECT_EQ(dev_s.c0.towers, dev_v.c0.towers);
    EXPECT_EQ(dev_s.c1.towers, dev_v.c1.towers);
    EXPECT_EQ(host_s.c0.towers, dev_v.c0.towers);
    EXPECT_EQ(host_s.c1.towers, dev_v.c1.towers);
}

} // namespace
} // namespace rpu
