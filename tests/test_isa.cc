/**
 * @file
 * B512 ISA tests: Table-I field encoding, encode/decode round trips
 * over randomised fields, assembler/disassembler round trips, and
 * error handling for malformed programs.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"

namespace rpu {
namespace {

const Opcode kAllOpcodes[] = {
    Opcode::VLOAD,    Opcode::VSTORE,   Opcode::SLOAD,   Opcode::VBCAST,
    Opcode::VADDMOD,  Opcode::VSUBMOD,  Opcode::VMULMOD, Opcode::VSADDMOD,
    Opcode::VSSUBMOD, Opcode::VSMULMOD, Opcode::UNPKLO,  Opcode::UNPKHI,
    Opcode::PKLO,     Opcode::PKHI,     Opcode::MLOAD,   Opcode::ALOAD,
};

/** Build a random-but-valid instruction for a given opcode. */
Instruction
randomInstr(Opcode op, bool bfly, Rng &rng)
{
    const auto reg = [&] { return uint8_t(rng.below64(64)); };
    const auto addr = [&] { return uint32_t(rng.below64(1 << 20)); };
    switch (op) {
      case Opcode::VLOAD:
        return Instruction::vload(reg(), reg(), addr(),
                                  AddrMode(rng.below64(4)),
                                  uint8_t(rng.below64(10)));
      case Opcode::VSTORE:
        return Instruction::vstore(reg(), reg(), addr(),
                                   AddrMode(rng.below64(3)),
                                   uint8_t(rng.below64(10)));
      case Opcode::SLOAD:
        return Instruction::sload(reg(), addr());
      case Opcode::VBCAST:
        return Instruction::vbcast(reg(), reg(), addr());
      case Opcode::MLOAD:
        return Instruction::mload(reg(), addr());
      case Opcode::ALOAD:
        return Instruction::aload(reg(), addr());
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
        return Instruction::vv(op, reg(), reg(), reg(), reg());
      case Opcode::VMULMOD:
        return bfly ? Instruction::butterfly(reg(), reg(), reg(), reg(),
                                             reg(), reg())
                    : Instruction::vv(op, reg(), reg(), reg(), reg());
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD:
        return Instruction::vs_(op, reg(), reg(), reg(), reg());
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        return Instruction::shuffle(op, reg(), reg(), reg());
    }
    return {};
}

class EncodingRoundTrip : public testing::TestWithParam<Opcode>
{
};

TEST_P(EncodingRoundTrip, RandomFieldsSurviveEncodeDecode)
{
    Rng rng(unsigned(GetParam()) + 1);
    for (int i = 0; i < 200; ++i) {
        const Instruction instr = randomInstr(GetParam(), false, rng);
        EXPECT_EQ(decode(encode(instr)), instr) << instr.toString();
    }
}

TEST_P(EncodingRoundTrip, AssemblyRoundTrip)
{
    Rng rng(unsigned(GetParam()) + 100);
    for (int i = 0; i < 100; ++i) {
        const Instruction instr = randomInstr(GetParam(), false, rng);
        EXPECT_EQ(assembleLine(instr.toString()), instr)
            << instr.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip,
                         testing::ValuesIn(kAllOpcodes),
                         [](const auto &info) {
                             return mnemonic(info.param);
                         });

TEST(Encoding, ButterflyRoundTrip)
{
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const Instruction instr =
            randomInstr(Opcode::VMULMOD, true, rng);
        ASSERT_TRUE(instr.isButterfly());
        EXPECT_EQ(decode(encode(instr)), instr);
        EXPECT_EQ(assembleLine(instr.toString()), instr);
    }
}

TEST(Encoding, FieldPlacementMatchesTableI)
{
    // vbfly v4, v5, v1, v2, v3, m7: check exact bit positions.
    const Instruction i =
        Instruction::butterfly(4, 5, 1, 2, 3, 7);
    const uint64_t w = encode(i);
    EXPECT_EQ((w >> 55) & 0x3f, 5u);  // VD1
    EXPECT_EQ((w >> 49) & 0x3f, 3u);  // VT1
    EXPECT_EQ((w >> 48) & 1, 1u);     // BFLY
    EXPECT_EQ((w >> 44) & 0xf, uint64_t(Opcode::VMULMOD));
    EXPECT_EQ((w >> 18) & 0x3f, 4u);  // VD
    EXPECT_EQ((w >> 12) & 0x3f, 1u);  // VS
    EXPECT_EQ((w >> 6) & 0x3f, 2u);   // VT
    EXPECT_EQ(w & 0x3f, 7u);          // RM
}

TEST(Encoding, LoadFieldPlacement)
{
    const Instruction i = Instruction::vload(
        9, 2, 0xabcde, AddrMode::STRIDED_SKIP, 3);
    const uint64_t w = encode(i);
    EXPECT_EQ((w >> 44) & 0xf, uint64_t(Opcode::VLOAD));
    EXPECT_EQ((w >> 24) & 0xfffff, 0xabcdeu); // ADDRESS
    EXPECT_EQ((w >> 18) & 0x3f, 9u);          // VD
    EXPECT_EQ((w >> 12) & 0x3f,
              uint64_t(AddrMode::STRIDED_SKIP)); // MODE
    EXPECT_EQ((w >> 6) & 0x3f, 3u);           // VALUE
    EXPECT_EQ(w & 0x3f, 2u);                  // RM
}

TEST(Encoding, SeventeenInstructions)
{
    // 16 opcodes + the BFLY modifier = the paper's 17 instructions.
    EXPECT_EQ(std::size(kAllOpcodes), 16u);
    std::set<std::string> names;
    for (Opcode op : kAllOpcodes)
        names.insert(mnemonic(op));
    names.insert(mnemonic(Opcode::VMULMOD, true));
    EXPECT_EQ(names.size(), 17u);
}

TEST(Encoding, RejectsOversizedFields)
{
    Instruction i = Instruction::sload(3, 0);
    i.address = 1 << 20; // 21 bits
    EXPECT_EXIT(encode(i), testing::ExitedWithCode(1), "20 bits");

    Instruction j = Instruction::vv(Opcode::VADDMOD, 1, 2, 3, 4);
    j.vd = 64;
    EXPECT_EXIT(encode(j), testing::ExitedWithCode(1), "out of range");
}

TEST(Encoding, ProgramRoundTrip)
{
    Rng rng(7);
    std::vector<Instruction> prog;
    for (int i = 0; i < 64; ++i) {
        prog.push_back(randomInstr(
            kAllOpcodes[rng.below64(std::size(kAllOpcodes))], false,
            rng));
    }
    EXPECT_EQ(decodeProgram(encodeProgram(prog)), prog);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble("; full line comment\n"
                               "\n"
                               "vaddmod v1, v2, v3, m0 ; trailing\n"
                               "   # hash comment\n"
                               "unpklo v4, v1, v1\n",
                               "demo");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0].op, Opcode::VADDMOD);
    EXPECT_EQ(p[1].op, Opcode::UNPKLO);
    EXPECT_EQ(p.name(), "demo");
}

TEST(Assembler, ProgramDisassemblyRoundTrip)
{
    Rng rng(8);
    Program p("roundtrip");
    for (int i = 0; i < 128; ++i) {
        p.append(randomInstr(
            kAllOpcodes[rng.below64(std::size(kAllOpcodes))],
            rng.below64(2) == 0, rng));
    }
    const Program q = assemble(p.disassemble(), "roundtrip");
    ASSERT_EQ(q.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(q[i], p[i]);
}

TEST(Assembler, Errors)
{
    EXPECT_EXIT(assembleLine("bogus v1, v2"), testing::ExitedWithCode(1),
                "unknown mnemonic");
    EXPECT_EXIT(assembleLine("vaddmod v1, v2, v3"),
                testing::ExitedWithCode(1), "operands");
    EXPECT_EXIT(assembleLine("vaddmod v1, v2, v3, s4"),
                testing::ExitedWithCode(1), "register");
    EXPECT_EXIT(assembleLine("vload v64, a0, 0, contig"),
                testing::ExitedWithCode(1), "out of range");
}

TEST(Program, MixCounting)
{
    Program p;
    p.append(Instruction::vload(1, 0, 0));
    p.append(Instruction::vload(2, 0, 512));
    p.append(Instruction::butterfly(3, 4, 1, 2, 5, 0));
    p.append(Instruction::vv(Opcode::VADDMOD, 6, 3, 4, 0));
    p.append(Instruction::shuffle(Opcode::PKHI, 7, 3, 4));
    p.append(Instruction::vstore(7, 0, 1024));
    p.append(Instruction::vbcast(8, 3, 4));
    p.append(Instruction::mload(1, 0));
    const InstructionMix mix = p.mix();
    EXPECT_EQ(mix.loads, 2u);
    EXPECT_EQ(mix.stores, 1u);
    EXPECT_EQ(mix.compute, 2u);
    EXPECT_EQ(mix.butterflies, 1u);
    EXPECT_EQ(mix.shuffles, 1u);
    EXPECT_EQ(mix.broadcasts, 1u);
    EXPECT_EQ(mix.scalarLs, 1u);
    EXPECT_EQ(mix.total(), 8u);
    EXPECT_EQ(p.encodedBytes(), 64u);
}

} // namespace
} // namespace rpu
