/**
 * @file
 * Bit-utility tests.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/random.hh"

namespace rpu {
namespace {

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(uint64_t(1) << 63));
    EXPECT_FALSE(isPow2((uint64_t(1) << 63) + 1));
}

TEST(Bitops, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1025), 10u);
    EXPECT_EQ(log2Floor(UINT64_MAX), 63u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(Bitops, BitReverseSmall)
{
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b011, 3), 0b110u);
    EXPECT_EQ(bitReverse(0b101, 3), 0b101u);
    EXPECT_EQ(bitReverse(1, 16), uint64_t(1) << 15);
}

TEST(Bitops, BitReverseIsInvolution)
{
    Rng rng(1);
    for (unsigned bits = 1; bits <= 20; ++bits) {
        for (int trial = 0; trial < 20; ++trial) {
            const uint64_t x = rng.next64() & ((uint64_t(1) << bits) - 1);
            EXPECT_EQ(bitReverse(bitReverse(x, bits), bits), x);
        }
    }
}

TEST(Bitops, BitReversePermutes)
{
    // Over a full power-of-two range, bit reversal is a bijection.
    constexpr unsigned bits = 8;
    std::vector<bool> seen(1 << bits, false);
    for (uint64_t x = 0; x < (1u << bits); ++x) {
        const uint64_t r = bitReverse(x, bits);
        ASSERT_LT(r, seen.size());
        EXPECT_FALSE(seen[r]);
        seen[r] = true;
    }
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(10, 5), 2u);
    EXPECT_EQ(divCeil(11, 5), 3u);
    EXPECT_EQ(divCeil(1, 512), 1u);
    EXPECT_EQ(divCeil(512, 128), 4u);
    EXPECT_EQ(divCeil(513, 128), 5u);
}

TEST(Bitops, RoundUp)
{
    EXPECT_EQ(roundUp(10, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(roundUp(1, 4096), 4096u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, Below64InRange)
{
    Rng rng(5);
    for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 50; ++i)
            EXPECT_LT(rng.below64(bound), bound);
    }
}

TEST(Rng, Below128InRange)
{
    Rng rng(6);
    const u128 bound = (u128(1) << 100) + 12345;
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(rng.below128(bound), bound);
}

} // namespace
} // namespace rpu
