/**
 * @file
 * List-scheduler tests: semantics preservation (register and memory
 * dependences), instruction conservation, and that scheduling never
 * hurts the in-order machine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "codegen/scheduler.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "modmath/primegen.hh"
#include "rpu/runner.hh"
#include "sim/cycle/simulator.hh"
#include "sim/functional/executor.hh"

namespace rpu {
namespace {

TEST(Scheduler, PreservesInstructionMultiset)
{
    NttRunner runner(4096, 124);
    const NttKernel naive = runner.makeKernel({.optimized = false});
    const Program scheduled = scheduleProgram(naive.program, RpuConfig{});
    ASSERT_EQ(scheduled.size(), naive.program.size());

    std::map<uint64_t, int> counts;
    for (const auto &i : naive.program.instructions())
        ++counts[encode(i)];
    for (const auto &i : scheduled.instructions())
        --counts[encode(i)];
    for (const auto &[word, count] : counts)
        EXPECT_EQ(count, 0);
}

TEST(Scheduler, PreservesFunctionalSemantics)
{
    // Schedule the unoptimized kernel ourselves and check the result
    // still computes the exact reference NTT.
    NttRunner runner(4096, 124);
    NttKernel kernel = runner.makeKernel({.optimized = false});
    kernel.program = scheduleProgram(kernel.program, RpuConfig{});
    EXPECT_TRUE(runner.verify(kernel));
}

TEST(Scheduler, PreservesSemanticsAcrossDesignPoints)
{
    NttRunner runner(2048, 124);
    for (unsigned h : {4u, 32u, 256u}) {
        RpuConfig cfg;
        cfg.numHples = h;
        NttKernel kernel = runner.makeKernel({.optimized = false});
        kernel.program = scheduleProgram(kernel.program, cfg);
        EXPECT_TRUE(runner.verify(kernel)) << "H=" << h;
    }
}

TEST(Scheduler, KeepsStoreLoadOrder)
{
    // v1 <- mem[0..511]; mem[600] <- v1; v2 <- mem[600..]; the load
    // of 600 must stay after the store to 600.
    const Program p = assemble("vload v1, a0, 0, contig\n"
                               "vstore v1, a0, 600, contig\n"
                               "vload v2, a0, 600, contig\n"
                               "vstore v2, a0, 1200, contig\n");
    const Program s = scheduleProgram(p, RpuConfig{});
    size_t store600 = SIZE_MAX, load600 = SIZE_MAX, store1200 = SIZE_MAX;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i].op == Opcode::VSTORE && s[i].address == 600)
            store600 = i;
        if (s[i].op == Opcode::VLOAD && s[i].address == 600)
            load600 = i;
        if (s[i].op == Opcode::VSTORE && s[i].address == 1200)
            store1200 = i;
    }
    ASSERT_NE(store600, SIZE_MAX);
    ASSERT_NE(load600, SIZE_MAX);
    EXPECT_LT(store600, load600);
    EXPECT_LT(load600, store1200);
}

TEST(Scheduler, KeepsRegisterDependences)
{
    // RAW chain must stay ordered even though it is the whole program.
    const Program p = assemble("vload v1, a0, 0, contig\n"
                               "vaddmod v2, v1, v1, m0\n"
                               "vmulmod v3, v2, v2, m0\n"
                               "vstore v3, a0, 512, contig\n");
    const Program s = scheduleProgram(p, RpuConfig{});
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0].op, Opcode::VLOAD);
    EXPECT_EQ(s[1].op, Opcode::VADDMOD);
    EXPECT_EQ(s[2].op, Opcode::VMULMOD);
    EXPECT_EQ(s[3].op, Opcode::VSTORE);
}

TEST(Scheduler, InterleavesIndependentChains)
{
    // Two independent dependence chains: scheduling must interleave
    // them so the second chain does not wait for the first.
    const Program p = assemble("vload v1, a0, 0, contig\n"
                               "vaddmod v2, v1, v1, m0\n"
                               "vstore v2, a0, 1024, contig\n"
                               "vload v3, a0, 512, contig\n"
                               "vaddmod v4, v3, v3, m0\n"
                               "vstore v4, a0, 2048, contig\n");
    const RpuConfig cfg;
    const Program s = scheduleProgram(p, cfg);
    const auto serial = simulateCycles(p, cfg);
    const auto inter = simulateCycles(s, cfg);
    EXPECT_LT(inter.cycles, serial.cycles);
}

TEST(Scheduler, SchedulingHelpsTheNttKernel)
{
    NttRunner runner(8192, 124);
    const RpuConfig cfg;
    const NttKernel naive = runner.makeKernel({.optimized = false});
    const Program scheduled = scheduleProgram(naive.program, cfg);
    const auto before = simulateCycles(naive.program, cfg);
    const auto after = simulateCycles(scheduled, cfg);
    EXPECT_LT(after.cycles, before.cycles);
}

TEST(Scheduler, EmptyAndSingleton)
{
    EXPECT_EQ(scheduleProgram(Program("e"), RpuConfig{}).size(), 0u);
    const Program one = assemble("vload v1, a0, 0, contig");
    const Program s = scheduleProgram(one, RpuConfig{});
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0], one[0]);
}

// -- Property test: random programs survive scheduling ------------------

/** Generate a random but well-defined program (bounded addresses). */
Program
randomProgram(Rng &rng, size_t length)
{
    Program p("fuzz");
    const auto vreg = [&] { return uint8_t(rng.below64(16)); };
    for (size_t i = 0; i < length; ++i) {
        switch (rng.below64(6)) {
          case 0:
            p.append(Instruction::vload(
                vreg(), 0, uint32_t(rng.below64(8)) * 512));
            break;
          case 1:
            p.append(Instruction::vstore(
                vreg(), 0, uint32_t(rng.below64(8)) * 512));
            break;
          case 2:
            p.append(Instruction::vv(
                rng.below64(2) ? Opcode::VADDMOD : Opcode::VMULMOD,
                vreg(), vreg(), vreg(), 1));
            break;
          case 3:
            p.append(Instruction::butterfly(vreg(), vreg(), vreg(),
                                            vreg(), vreg(), 1));
            break;
          case 4:
            p.append(Instruction::shuffle(
                rng.below64(2) ? Opcode::UNPKLO : Opcode::PKHI, vreg(),
                vreg(), vreg()));
            break;
          default:
            p.append(Instruction::vbcast(vreg(), 3,
                                         uint32_t(rng.below64(16))));
            break;
        }
    }
    return p;
}

/** Run a program on a deterministic initial state; return the VDM. */
std::vector<u128>
runOnFreshState(const Program &p, u128 q)
{
    ArchState state;
    state.setMreg(1, q);
    state.setAreg(0, 0);
    state.setAreg(3, 0);
    for (unsigned i = 0; i < 16; ++i)
        state.writeSdm(i, u128(1000 + i));
    for (unsigned i = 0; i < 8 * 512; ++i)
        state.writeVdm(i, u128(i) % q);
    FunctionalSimulator sim(state);
    sim.run(p);
    std::vector<u128> out = state.dumpVdm(0, 8 * 512);
    // Registers are architecturally visible too.
    for (unsigned r = 0; r < 16; ++r) {
        for (unsigned lane = 0; lane < 4; ++lane)
            out.push_back(state.vreg(r)[lane]);
    }
    return out;
}

class SchedulerFuzz : public testing::TestWithParam<uint64_t>
{
};

TEST_P(SchedulerFuzz, RandomProgramsKeepSemantics)
{
    const u128 q = nttPrime(60, 1024);
    Rng rng(GetParam());
    for (int trial = 0; trial < 10; ++trial) {
        const Program p = randomProgram(rng, 60);
        const Program s = scheduleProgram(p, RpuConfig{});
        ASSERT_EQ(s.size(), p.size());
        EXPECT_EQ(runOnFreshState(s, q), runOnFreshState(p, q))
            << "seed " << GetParam() << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                         6ull, 7ull, 8ull));

} // namespace
} // namespace rpu
