/**
 * @file
 * The multi-tenant serving front-end: admission backpressure and
 * graceful-drain semantics of the bounded queue, the round-robin
 * fairness bound under a hog tenant, deterministic session seeding,
 * DeviceStats windowed deltas, the coalesced device hooks, and —
 * the load-bearing property — bit-identity of cross-tenant coalesced
 * execution against per-tenant serial execution, with the
 * ledger-verified launch-count reduction that motivates it.
 */

#include <gtest/gtest.h>

#include <complex>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "rpu/device.hh"
#include "serve/server.hh"

namespace rpu {
namespace {

using serve::BoundedRequestQueue;
using serve::HeServer;
using serve::RequestOp;
using serve::ServeConfig;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::Session;
using serve::SubmitStatus;
using serve::TenantConfig;

using Cplx = std::complex<double>;

CkksParams
serveParams()
{
    CkksParams p;
    p.n = 1024;
    p.towers = 3;
    p.towerBits = 45;
    p.scale = 1099511627776.0; // 2^40
    p.noiseBound = 4;
    return p;
}

std::vector<Cplx>
slotValues(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Cplx> v(count);
    for (auto &z : v)
        z = {2.0 * rng.nextDouble() - 1.0, 2.0 * rng.nextDouble() - 1.0};
    return v;
}

ServeRequest
makeRequest(uint64_t tenant, uint64_t seq)
{
    ServeRequest req;
    req.tenant = tenant;
    req.seq = seq;
    req.op = RequestOp::MulPlainRescale;
    req.submitted = std::chrono::steady_clock::now();
    return req;
}

// ----------------------------------------------------------------------
// BoundedRequestQueue
// ----------------------------------------------------------------------

TEST(BoundedRequestQueue, RejectsWhenFullWithoutConsumingRequest)
{
    BoundedRequestQueue q(2);
    ServeRequest r0 = makeRequest(1, 0);
    ServeRequest r1 = makeRequest(2, 0);
    EXPECT_EQ(q.push(r0), SubmitStatus::Accepted);
    EXPECT_EQ(q.push(r1), SubmitStatus::Accepted);
    EXPECT_EQ(q.depth(), 2u);

    ServeRequest r2 = makeRequest(1, 1);
    EXPECT_EQ(q.push(r2), SubmitStatus::RejectedFull);
    EXPECT_EQ(q.depth(), 2u);
    // A rejected request keeps its promise: the caller can still
    // fulfil or drop it, and the future stays usable.
    auto fut = r2.done.get_future();
    r2.done.set_value(ServeResponse{});
    EXPECT_NO_THROW(fut.get());
}

TEST(BoundedRequestQueue, RejectsAfterCloseAndDrainsRemainder)
{
    BoundedRequestQueue q(8);
    ServeRequest r0 = makeRequest(1, 0);
    ServeRequest r1 = makeRequest(1, 1);
    ASSERT_EQ(q.push(r0), SubmitStatus::Accepted);
    ASSERT_EQ(q.push(r1), SubmitStatus::Accepted);

    q.close();
    ServeRequest late = makeRequest(2, 0);
    EXPECT_EQ(q.push(late), SubmitStatus::RejectedShutdown);

    // Closed but not empty: consumers still drain everything...
    auto batch = q.popBatch(16, 16);
    EXPECT_EQ(batch.size(), 2u);
    // ...and only then does popBatch report exhaustion.
    EXPECT_TRUE(q.popBatch(16, 16).empty());
}

TEST(BoundedRequestQueue, RoundRobinSweepBoundsPerTenantTake)
{
    BoundedRequestQueue q(64);
    for (uint64_t s = 0; s < 8; ++s) {
        ServeRequest hog = makeRequest(7, s);
        ASSERT_EQ(q.push(hog), SubmitStatus::Accepted);
    }
    ServeRequest victim = makeRequest(9, 0);
    ASSERT_EQ(q.push(victim), SubmitStatus::Accepted);

    // The hog's lane was created first, yet the victim's head-of-line
    // request rides in the very first batch: the sweep caps the hog
    // at maxPerTenant and moves on.
    auto batch = q.popBatch(4, 2);
    ASSERT_EQ(batch.size(), 3u);
    size_t hog_taken = 0, victim_taken = 0;
    for (const auto &r : batch) {
        if (r.tenant == 7)
            ++hog_taken;
        else if (r.tenant == 9)
            ++victim_taken;
    }
    EXPECT_EQ(hog_taken, 2u);
    EXPECT_EQ(victim_taken, 1u);
}

// ----------------------------------------------------------------------
// DeviceStats deltas (satellite: operator- / statsSince)
// ----------------------------------------------------------------------

TEST(DeviceStatsDelta, StatsSinceIsolatesOneWindow)
{
    RpuDevice dev;
    const uint64_t n = 1024;
    const u128 q = 0x3001;
    const auto x = std::vector<u128>(n, 5);

    (void)dev.ntt(n, q, x); // pre-window activity
    const DeviceStats before = dev.stats();

    (void)dev.ntt(n, q, x);
    (void)dev.pointwiseMul(n, q, x, x);

    const DeviceStats delta = dev.statsSince(before);
    EXPECT_EQ(delta.launches, 2u);
    EXPECT_EQ(delta.forwardTransforms, 1u);
    EXPECT_EQ(delta.pointwiseMuls, 1u);
    // The window's kernels were already cached by the warmup call.
    EXPECT_EQ(delta.kernelMisses, 1u); // pointwise kernel was new
    EXPECT_GT(delta.cycleTotal(), 0u);

    // Subtracting a snapshot from itself is the zero window.
    const DeviceStats now = dev.stats();
    const DeviceStats zero = now - now;
    EXPECT_EQ(zero.launches, 0u);
    EXPECT_EQ(zero.cycleTotal(), 0u);
}

TEST(DeviceStatsDelta, PerWorkerVectorsPadWhenPoolWidens)
{
    RpuDevice dev;
    const uint64_t n = 1024;
    const u128 q = 0x3001;
    const auto x = std::vector<u128>(n, 3);

    const DeviceStats before = dev.stats(); // narrow snapshot
    dev.setParallelism(4);                  // pool widens the vectors
    (void)dev.ntt(n, q, x);

    const DeviceStats delta = dev.statsSince(before);
    EXPECT_EQ(delta.launches, 1u);
    uint64_t launches_across_lanes = 0;
    for (uint64_t l : delta.perWorkerLaunches)
        launches_across_lanes += l;
    EXPECT_EQ(launches_across_lanes, 1u);
}

// ----------------------------------------------------------------------
// Coalesced device hooks
// ----------------------------------------------------------------------

TEST(CoalescedLaunches, BitIdenticalToPerItemLaunchesInOneLaunch)
{
    RpuDevice dev;
    const uint64_t n = 1024;
    // Ragged tower counts across items are the serving case: tenants
    // at different chain depths share one dispatch.
    const std::vector<std::vector<u128>> moduli = {
        {0x3001, 0xa001}, {0x3001, 0xa001, 0x10001}, {0x3001}};

    std::vector<std::vector<std::vector<u128>>> xs, a, b;
    uint64_t fill = 1;
    for (const auto &chain : moduli) {
        std::vector<std::vector<u128>> item, ia, ib;
        for (u128 q : chain) {
            std::vector<u128> t(n), ta(n), tb(n);
            for (uint64_t i = 0; i < n; ++i) {
                t[i] = (fill * 37 + i * 11) % uint64_t(q);
                ta[i] = (fill * 53 + i * 7) % uint64_t(q);
                tb[i] = (fill * 71 + i * 13) % uint64_t(q);
            }
            ++fill;
            item.push_back(std::move(t));
            ia.push_back(std::move(ta));
            ib.push_back(std::move(tb));
        }
        xs.push_back(std::move(item));
        a.push_back(std::move(ia));
        b.push_back(std::move(ib));
    }

    // Per-item reference via the single-ring convenience ops.
    auto expect_fwd = xs;
    auto expect_pw = a;
    for (size_t i = 0; i < moduli.size(); ++i) {
        for (size_t t = 0; t < moduli[i].size(); ++t) {
            expect_fwd[i][t] = dev.ntt(n, moduli[i][t], xs[i][t]);
            expect_pw[i][t] =
                dev.pointwiseMul(n, moduli[i][t], a[i][t], b[i][t]);
        }
    }

    DeviceStats before = dev.stats();
    const auto fwd = dev.transformCoalesced(n, moduli, xs, false);
    DeviceStats delta = dev.statsSince(before);
    EXPECT_EQ(delta.launches, 1u);
    EXPECT_EQ(delta.forwardTransforms, 6u); // 2 + 3 + 1 towers
    EXPECT_EQ(fwd, expect_fwd);

    // Round-trip through the coalesced inverse as well.
    before = dev.stats();
    const auto back = dev.transformCoalesced(n, moduli, fwd, true);
    delta = dev.statsSince(before);
    EXPECT_EQ(delta.launches, 1u);
    EXPECT_EQ(delta.inverseTransforms, 6u);
    EXPECT_EQ(back, xs);

    before = dev.stats();
    const auto pw = dev.pointwiseCoalesced(n, moduli, a, b);
    delta = dev.statsSince(before);
    EXPECT_EQ(delta.launches, 1u);
    EXPECT_EQ(delta.pointwiseMuls, 6u);
    EXPECT_EQ(pw, expect_pw);
}

// ----------------------------------------------------------------------
// Session determinism (satellite: derived seeding)
// ----------------------------------------------------------------------

TEST(ServeSession, SeedingIsDerivedAndReproducible)
{
    // Adjacent tenant ids map to unrelated master seeds.
    EXPECT_NE(Session::deriveSeed(1), Session::deriveSeed(2));
    EXPECT_EQ(Session::deriveSeed(7), Session::deriveSeed(7));

    TenantConfig cfg;
    cfg.id = 42;
    cfg.params = serveParams();
    Session s1(cfg, nullptr);
    Session s2(cfg, nullptr);

    // Two sessions with the same id are bit-identical worlds: same
    // request streams, same keys, hence same decrypted outputs.
    EXPECT_EQ(s1.requestRng(0).next64(), s2.requestRng(0).next64());
    EXPECT_NE(s1.requestRng(0).next64(), s1.requestRng(1).next64());
    EXPECT_EQ(s1.kernelClass(), s2.kernelClass());

    const auto a = slotValues(8, 101);
    const auto b = slotValues(8, 202);
    EXPECT_EQ(s1.runSerial(RequestOp::MulPlainRescale, a, b, 3),
              s2.runSerial(RequestOp::MulPlainRescale, a, b, 3));
    EXPECT_EQ(s1.runSerial(RequestOp::MulCtRescale, a, b, 4),
              s2.runSerial(RequestOp::MulCtRescale, a, b, 4));
}

// ----------------------------------------------------------------------
// HeServer
// ----------------------------------------------------------------------

struct Expected
{
    uint64_t tenant = 0;
    uint64_t seq = 0;
    RequestOp op = RequestOp::MulPlainRescale;
    std::vector<Cplx> a, b;
    std::future<ServeResponse> response;
};

/** Submit a fixed mixed-op request set across @p tenants tenants. */
std::vector<Expected>
submitMixedSet(HeServer &server, size_t tenants, size_t perTenant)
{
    std::vector<Expected> out;
    for (size_t r = 0; r < perTenant; ++r) {
        for (size_t t = 0; t < tenants; ++t) {
            Expected e;
            e.tenant = t + 1;
            e.op = (r % 3 == 2) ? RequestOp::MulCtRescale
                                : RequestOp::MulPlainRescale;
            e.a = slotValues(8, 1000 + 10 * t + r);
            e.b = slotValues(8, 2000 + 10 * t + r);
            auto sub = server.submit(e.tenant, e.op, e.a, e.b);
            EXPECT_EQ(sub.status, SubmitStatus::Accepted);
            e.seq = r; // per-tenant seqs are assigned in submit order
            e.response = std::move(sub.response);
            out.push_back(std::move(e));
        }
    }
    return out;
}

TEST(HeServer, CrossTenantCoalescingIsBitIdenticalToSerial)
{
    ServeConfig cfg;
    cfg.startPaused = true; // deterministic batch composition
    cfg.maxBatch = 8;
    cfg.maxPerTenant = 2;
    cfg.maxCoalesce = 8;
    HeServer server(cfg, std::make_shared<RpuDevice>());
    for (uint64_t id = 1; id <= 4; ++id)
        server.addTenant({id, serveParams(), 30});

    auto expected = submitMixedSet(server, 4, 3);
    server.start();
    server.shutdown();

    uint64_t coalesced_seen = 0;
    for (auto &e : expected) {
        ServeResponse resp = e.response.get();
        EXPECT_EQ(resp.tenant, e.tenant);
        EXPECT_EQ(resp.seq, e.seq);
        if (resp.chunkRequests > 1)
            ++coalesced_seen;
        // Exact equality: the coalesced path must reproduce the
        // serial per-tenant pipeline bit for bit.
        const Session *sess = server.tenant(e.tenant);
        ASSERT_NE(sess, nullptr);
        EXPECT_EQ(resp.values, sess->runSerial(e.op, e.a, e.b, e.seq))
            << "tenant " << e.tenant << " seq " << e.seq;
    }
    // The mul-plain majority of the set actually exercised the
    // coalesced branch (the mul-ct third runs per-request).
    EXPECT_GT(coalesced_seen, 0u);
    EXPECT_GT(server.stats().coalescedRequests, 0u);
    EXPECT_EQ(server.stats().completed, expected.size());
    EXPECT_EQ(server.stats().failed, 0u);
}

TEST(HeServer, CoalescingDoesNotDependOnDeviceParallelism)
{
    // Same request set against a pooled device: per-request RNG
    // derivation means service order and worker fan-out change
    // nothing observable.
    ServeConfig cfg;
    cfg.startPaused = true;
    auto device = std::make_shared<RpuDevice>();
    device->setParallelism(4);
    HeServer server(cfg, device);
    for (uint64_t id = 1; id <= 4; ++id)
        server.addTenant({id, serveParams(), 30});

    auto expected = submitMixedSet(server, 4, 2);
    server.shutdown(); // drains the paused server

    for (auto &e : expected) {
        ServeResponse resp = e.response.get();
        const Session *sess = server.tenant(e.tenant);
        ASSERT_NE(sess, nullptr);
        EXPECT_EQ(resp.values, sess->runSerial(e.op, e.a, e.b, e.seq));
    }
}

TEST(HeServer, CoalescingReducesLaunchesOnTheLedger)
{
    const size_t tenants = 4, per_tenant = 4;
    uint64_t launches_off = 0, launches_on = 0;
    std::vector<std::vector<Cplx>> values_off, values_on;

    for (bool coalesce : {false, true}) {
        ServeConfig cfg;
        cfg.startPaused = true;
        cfg.coalesce = coalesce;
        cfg.maxBatch = 16;
        cfg.maxPerTenant = 4;
        cfg.maxCoalesce = 8;
        auto device = std::make_shared<RpuDevice>();
        HeServer server(cfg, device);
        for (uint64_t id = 1; id <= tenants; ++id)
            server.addTenant({id, serveParams(), 30});

        std::vector<std::future<ServeResponse>> futures;
        for (size_t r = 0; r < per_tenant; ++r) {
            for (size_t t = 0; t < tenants; ++t) {
                auto sub = server.submit(
                    t + 1, RequestOp::MulPlainRescale,
                    slotValues(8, 10 * t + r), slotValues(8, 90 + r));
                ASSERT_EQ(sub.status, SubmitStatus::Accepted);
                futures.push_back(std::move(sub.response));
            }
        }
        const DeviceStats before = device->stats();
        server.shutdown();
        const DeviceStats delta = device->statsSince(before);

        auto &values = coalesce ? values_on : values_off;
        for (auto &f : futures)
            values.push_back(f.get().values);
        (coalesce ? launches_on : launches_off) = delta.launches;

        // Same semantic work either way (both ciphertext components
        // multiply across every tower); the ledger proves it.
        EXPECT_EQ(delta.pointwiseMuls,
                  tenants * per_tenant * 2 * serveParams().towers);
    }

    // The point of the subsystem: strictly fewer device launches for
    // identical results. 16 serial mul-plain requests cost 5 launches
    // each; the set coalesces into two chunks of 8, each three
    // dispatches split at the 16-tower batched-kernel budget —
    // ceil(24/16) + ceil(48/16) + ceil(16/16) = 6 launches a chunk.
    EXPECT_EQ(values_on, values_off);
    EXPECT_EQ(launches_off, 5u * tenants * per_tenant);
    EXPECT_EQ(launches_on, 12u);
}

TEST(HeServer, FairnessBoundHoldsUnderHogTenant)
{
    ServeConfig cfg;
    cfg.startPaused = true;
    cfg.maxBatch = 4;
    cfg.maxPerTenant = 2;
    cfg.maxCoalesce = 4;
    cfg.queueCapacity = 64;
    HeServer server(cfg, std::make_shared<RpuDevice>());
    server.addTenant({1, serveParams(), 30}); // hog
    server.addTenant({2, serveParams(), 30}); // victim

    const auto a = slotValues(8, 5);
    const auto b = slotValues(8, 6);
    std::vector<std::future<ServeResponse>> hog, victim;
    for (int i = 0; i < 24; ++i) {
        auto sub = server.submit(1, RequestOp::MulPlainRescale, a, b);
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        hog.push_back(std::move(sub.response));
    }
    for (int i = 0; i < 4; ++i) {
        auto sub = server.submit(2, RequestOp::MulPlainRescale, a, b);
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        victim.push_back(std::move(sub.response));
    }
    server.shutdown();

    // Despite arriving behind 24 hog requests, the victim is served
    // within the first two dispatches: each sweep takes at most
    // maxPerTenant from the hog before visiting the victim's lane.
    uint64_t victim_last = 0, hog_last = 0;
    for (auto &f : victim)
        victim_last = std::max(victim_last, f.get().dispatchIndex);
    for (auto &f : hog)
        hog_last = std::max(hog_last, f.get().dispatchIndex);
    EXPECT_LE(victim_last, 1u);
    EXPECT_GE(hog_last, 5u);
}

TEST(HeServer, BackpressureRejectsWithStatusAndServesTheRest)
{
    ServeConfig cfg;
    cfg.startPaused = true;
    cfg.queueCapacity = 4;
    HeServer server(cfg, std::make_shared<RpuDevice>());
    server.addTenant({1, serveParams(), 30});

    const auto a = slotValues(8, 1);
    const auto b = slotValues(8, 2);
    std::vector<std::future<ServeResponse>> accepted;
    size_t rejected = 0;
    for (int i = 0; i < 6; ++i) {
        auto sub = server.submit(1, RequestOp::MulPlainRescale, a, b);
        if (sub.status == SubmitStatus::Accepted)
            accepted.push_back(std::move(sub.response));
        else if (sub.status == SubmitStatus::RejectedFull)
            ++rejected;
    }
    EXPECT_EQ(accepted.size(), 4u);
    EXPECT_EQ(rejected, 2u);
    EXPECT_EQ(server.stats().rejectedFull, 2u);
    EXPECT_EQ(server.tenant(1)->accounting().rejectedFull, 2u);

    server.shutdown();
    for (auto &f : accepted)
        EXPECT_FALSE(f.get().values.empty());
    EXPECT_EQ(server.stats().completed, 4u);

    // After shutdown, submits report RejectedShutdown.
    auto late = server.submit(1, RequestOp::MulPlainRescale, a, b);
    EXPECT_EQ(late.status, SubmitStatus::RejectedShutdown);
}

TEST(HeServer, ShutdownDrainsEveryAcceptedFuture)
{
    ServeConfig cfg;
    cfg.startPaused = true;
    HeServer server(cfg, std::make_shared<RpuDevice>());
    for (uint64_t id = 1; id <= 3; ++id)
        server.addTenant({id, serveParams(), 30});

    const auto a = slotValues(8, 3);
    const auto b = slotValues(8, 4);
    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 9; ++i) {
        auto sub =
            server.submit(1 + i % 3, RequestOp::MulPlainRescale, a, b);
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futures.push_back(std::move(sub.response));
    }

    // Shutdown on a paused server still drains: every accepted
    // future resolves with a value, none is broken.
    server.shutdown();
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_FALSE(f.get().values.empty());
    }
    EXPECT_EQ(server.stats().completed, 9u);
    EXPECT_EQ(server.stats().failed, 0u);
}

TEST(HeServer, AccountingSplitsDeviceDeltasAcrossTenants)
{
    ServeConfig cfg;
    cfg.startPaused = true;
    cfg.coalesce = false; // serial chunks: shares divide exactly
    auto device = std::make_shared<RpuDevice>();
    HeServer server(cfg, device);
    server.addTenant({1, serveParams(), 30});
    server.addTenant({2, serveParams(), 30});

    const auto a = slotValues(8, 7);
    const auto b = slotValues(8, 8);
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(
            server.submit(1, RequestOp::MulPlainRescale, a, b).status,
            SubmitStatus::Accepted);
    }
    ASSERT_EQ(server.submit(2, RequestOp::MulPlainRescale, a, b).status,
              SubmitStatus::Accepted);
    const DeviceStats before = device->stats();
    server.shutdown();
    const DeviceStats total = device->statsSince(before);

    const auto acct1 = server.tenant(1)->accounting();
    const auto acct2 = server.tenant(2)->accounting();
    EXPECT_EQ(acct1.completed, 4u);
    EXPECT_EQ(acct2.completed, 1u);

    // Tower-granular semantic counters are exact per request (a
    // mul-plain multiplies both components across every tower)...
    const uint64_t towers = serveParams().towers;
    EXPECT_EQ(acct1.pointwiseMuls, 4u * 2 * towers);
    EXPECT_EQ(acct2.pointwiseMuls, 1u * 2 * towers);
    EXPECT_EQ(acct1.pointwiseMuls + acct2.pointwiseMuls,
              total.pointwiseMuls);
    // ...and the shares add up to the device's window — here exactly
    // 5 serial launches per request.
    EXPECT_NEAR(acct1.launchShare + acct2.launchShare,
                double(total.launches), 1e-9);
    EXPECT_NEAR(acct1.cycleShare + acct2.cycleShare,
                double(total.cycleTotal()), 1e-6);
    EXPECT_NEAR(acct1.launchShare, 20.0, 1e-9);
    EXPECT_NEAR(acct2.launchShare, 5.0, 1e-9);
}

} // namespace
} // namespace rpu
