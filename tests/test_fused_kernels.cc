/**
 * @file
 * Tests for the fused polynomial-multiplication kernel and the
 * multi-tower batched NTT (the MRF / instruction-granularity modulus
 * switching feature of paper section IV-B5).
 */

#include <gtest/gtest.h>

#include "modmath/primegen.hh"
#include "rpu/runner.hh"
#include "sim/cycle/simulator.hh"
#include "sim/functional/executor.hh"

namespace rpu {
namespace {

class PolyMulSizes : public testing::TestWithParam<uint64_t>
{
};

TEST_P(PolyMulSizes, MatchesNttProduct)
{
    NttRunner runner(GetParam(), 124);
    const PolyMulKernel kernel = runner.makePolyMulKernel();
    EXPECT_TRUE(runner.verifyPolyMul(kernel));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PolyMulSizes,
                         testing::Values(1024ull, 2048ull, 4096ull,
                                         16384ull));

TEST(PolyMul, MatchesNaiveOracle)
{
    NttRunner runner(1024, 124);
    const PolyMulKernel kernel = runner.makePolyMulKernel();
    Rng rng(3);
    const auto a = randomPoly(runner.modulus(), 1024, rng);
    const auto b = randomPoly(runner.modulus(), 1024, rng);
    EXPECT_EQ(runner.executePolyMul(kernel, a, b),
              negacyclicMulNaive(runner.modulus(), a, b));
}

TEST(PolyMul, UnoptimizedFlavourAlsoCorrect)
{
    NttRunner runner(2048, 124);
    const PolyMulKernel kernel =
        runner.makePolyMulKernel({.optimized = false});
    EXPECT_TRUE(runner.verifyPolyMul(kernel));
}

TEST(PolyMul, MultiplicationByOne)
{
    NttRunner runner(1024, 124);
    const PolyMulKernel kernel = runner.makePolyMulKernel();
    Rng rng(4);
    const auto a = randomPoly(runner.modulus(), 1024, rng);
    std::vector<u128> one(1024, 0);
    one[0] = 1;
    EXPECT_EQ(runner.executePolyMul(kernel, a, one), a);
}

TEST(PolyMul, FusedCheaperThanThreeLaunches)
{
    // The fused kernel shares twiddle state and overlaps the two
    // forward transforms; it must beat three separate kernel launches
    // (2x forward + 1x inverse) on the cycle simulator.
    NttRunner runner(4096, 124);
    const RpuConfig cfg;
    NttCodegenOptions opts;
    opts.scheduleConfig = cfg;

    const PolyMulKernel fused = runner.makePolyMulKernel(opts);
    const KernelMetrics fused_m = runner.evaluateProgram(
        fused.program, fused.vdmBytesRequired, cfg);

    const NttKernel fwd = runner.makeKernel(opts);
    NttCodegenOptions inv_opts = opts;
    inv_opts.inverse = true;
    const NttKernel inv = runner.makeKernel(inv_opts);
    const uint64_t three_launch =
        2 * runner.evaluate(fwd, cfg).cycle.cycles +
        runner.evaluate(inv, cfg).cycle.cycles;

    EXPECT_LT(fused_m.cycle.cycles, three_launch);
}

TEST(PolyMul, InstructionAccounting)
{
    // Fused mix = 2 forward NTTs + n/512 pointwise multiplies +
    // 1 inverse NTT (3 CIs per butterfly) + n/512 scalings.
    NttRunner runner(2048, 124);
    const PolyMulKernel kernel = runner.makePolyMulKernel();
    const InstructionMix mix = kernel.program.mix();
    const uint64_t fwd_bflies = (2048 / 1024) * 11; // (n/1024) log2 n
    EXPECT_EQ(mix.butterflies, 2 * fwd_bflies);
    // Dyadic products: n/512 vmulmods beyond the butterflies.
    const uint64_t dyadic = 2048 / 512;
    EXPECT_GE(mix.compute,
              2 * fwd_bflies + dyadic + 3 * fwd_bflies + dyadic);
}

TEST(PolyMul, RejectsInverseOption)
{
    NttRunner runner(1024, 60);
    EXPECT_EXIT(runner.makePolyMulKernel({.inverse = true}),
                testing::ExitedWithCode(1), "no inverse");
}

// ----------------------------------------------------------------------

std::vector<std::vector<u128>>
executeBatched(const BatchedNttKernel &kernel,
               const std::vector<std::vector<u128>> &inputs)
{
    ArchState state(kernel.vdmBytesRequired);
    for (size_t i = 0; i < kernel.sdmImage.size(); ++i)
        state.writeSdm(i, kernel.sdmImage[i]);
    state.loadVdm(kernel.twPlanBase, kernel.twPlanImage);
    for (size_t t = 0; t < inputs.size(); ++t)
        state.loadVdm(kernel.dataBases[t], inputs[t]);
    FunctionalSimulator sim(state);
    sim.run(kernel.program);
    std::vector<std::vector<u128>> outs;
    for (size_t t = 0; t < inputs.size(); ++t)
        outs.push_back(state.dumpVdm(kernel.dataBases[t], kernel.n));
    return outs;
}

class BatchedTowers : public testing::TestWithParam<size_t>
{
};

TEST_P(BatchedTowers, EachTowerMatchesItsReference)
{
    const size_t towers = GetParam();
    const uint64_t n = 2048;
    const auto primes = nttPrimes(100, n, towers);

    std::vector<std::unique_ptr<Modulus>> mods;
    std::vector<std::unique_ptr<TwiddleTable>> tables;
    std::vector<const TwiddleTable *> ptrs;
    for (u128 q : primes) {
        mods.push_back(std::make_unique<Modulus>(q));
        tables.push_back(std::make_unique<TwiddleTable>(*mods.back(), n));
        ptrs.push_back(tables.back().get());
    }

    const BatchedNttKernel kernel = generateBatchedForwardNtt(ptrs);
    ASSERT_EQ(kernel.moduli.size(), towers);

    Rng rng(towers);
    std::vector<std::vector<u128>> inputs;
    for (size_t t = 0; t < towers; ++t)
        inputs.push_back(randomPoly(*mods[t], n, rng));

    const auto outputs = executeBatched(kernel, inputs);
    for (size_t t = 0; t < towers; ++t) {
        std::vector<u128> expected = inputs[t];
        NttContext(*tables[t]).forward(expected);
        EXPECT_EQ(outputs[t], expected) << "tower " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, BatchedTowers,
                         testing::Values(1u, 2u, 3u, 4u));

TEST(Batched, TowersInterleaveOnTheRpu)
{
    // Two independent towers in one program should finish in well
    // under 2x a single tower's cycles: the paper's motivation for
    // the MRF.
    const uint64_t n = 4096;
    const auto primes = nttPrimes(100, n, 2);
    Modulus m0(primes[0]), m1(primes[1]);
    TwiddleTable t0(m0, n), t1(m1, n);

    RpuConfig cfg;
    NttCodegenOptions opts;
    opts.scheduleConfig = cfg;

    const BatchedNttKernel two =
        generateBatchedForwardNtt({&t0, &t1}, opts);
    const BatchedNttKernel one = generateBatchedForwardNtt({&t0}, opts);

    RpuConfig run = cfg;
    run.vdmBytes = std::max(run.vdmBytes, two.vdmBytesRequired);
    const uint64_t c2 = simulateCycles(two.program, run).cycles;
    const uint64_t c1 = simulateCycles(one.program, run).cycles;
    EXPECT_LT(double(c2), 1.85 * double(c1));
    EXPECT_GT(double(c2), 1.05 * double(c1));
}

TEST(Batched, RejectsMismatchedDimensions)
{
    const u128 qa = nttPrime(80, 1024);
    const u128 qb = nttPrime(80, 2048);
    Modulus ma(qa), mb(qb);
    TwiddleTable ta(ma, 1024), tb(mb, 2048);
    EXPECT_EXIT(generateBatchedForwardNtt({&ta, &tb}),
                testing::ExitedWithCode(1), "dimension");
}

} // namespace
} // namespace rpu
