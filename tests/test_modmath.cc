/**
 * @file
 * Modular-arithmetic tests: the Montgomery fast path against the
 * binary-long-division oracle, primality testing against known
 * primes/composites, and NTT-friendly prime generation invariants.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "modmath/mod64.hh"
#include "modmath/modulus.hh"
#include "modmath/primality.hh"
#include "modmath/primegen.hh"
#include "wide/u256.hh"

namespace rpu {
namespace {

/** Independent multiply oracle: full product then long division. */
u128
mulOracle(u128 a, u128 b, u128 q)
{
    return mod256by128(mulWide(a % q, b % q), q);
}

class ModulusWidths : public testing::TestWithParam<unsigned>
{
};

TEST_P(ModulusWidths, MulMatchesOracle)
{
    const unsigned bits = GetParam();
    Rng rng(bits);
    for (int trial = 0; trial < 20; ++trial) {
        u128 q = rng.next128() | 1;
        if (bits < 128)
            q = (q % ((u128(1) << bits) - 3)) + 3;
        q |= 1;
        const Modulus mod(q);
        for (int i = 0; i < 50; ++i) {
            const u128 a = rng.below128(q);
            const u128 b = rng.below128(q);
            EXPECT_EQ(mod.mul(a, b), mulOracle(a, b, q));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, ModulusWidths,
                         testing::Values(8u, 16u, 31u, 62u, 64u, 100u,
                                         127u, 128u));

TEST(Modulus, AddSub)
{
    Rng rng(3);
    for (int t = 0; t < 50; ++t) {
        const u128 q = rng.next128() | 1;
        const Modulus mod(q);
        const u128 a = rng.below128(q);
        const u128 b = rng.below128(q);
        const u128 s = mod.add(a, b);
        EXPECT_LT(s, q);
        EXPECT_EQ(mod.sub(s, b), a);
        EXPECT_EQ(mod.sub(a, a), u128(0));
        EXPECT_EQ(mod.add(a, mod.neg(a)), u128(0));
    }
}

TEST(Modulus, AddHandles128BitOverflow)
{
    // q close to 2^128: a + b wraps the native type.
    const u128 q = ~u128(0) - 158; // odd
    const Modulus mod(q);
    const u128 a = q - 1;
    const u128 b = q - 2;
    EXPECT_EQ(mod.add(a, b), mulOracle(1, (q - 3) % q, q));
}

TEST(Modulus, EvenModulusGenericPath)
{
    Rng rng(4);
    for (int t = 0; t < 10; ++t) {
        const u128 q = (rng.next128() | 2) & ~u128(1);
        const Modulus mod(q);
        for (int i = 0; i < 20; ++i) {
            const u128 a = rng.below128(q);
            const u128 b = rng.below128(q);
            EXPECT_EQ(mod.mul(a, b), mulOracle(a, b, q));
        }
    }
}

TEST(Modulus, PowMatchesRepeatedMul)
{
    const Modulus mod((u128(1) << 61) - 1); // Mersenne prime
    Rng rng(5);
    const u128 a = rng.below128(mod.value());
    u128 acc = 1;
    for (unsigned e = 0; e < 30; ++e) {
        EXPECT_EQ(mod.pow(a, e), acc);
        acc = mod.mul(acc, a);
    }
}

TEST(Modulus, FermatInverse)
{
    const u128 q = nttPrime(80, 1024);
    const Modulus mod(q);
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        const u128 a = 1 + rng.below128(q - 1);
        EXPECT_EQ(mod.mul(a, mod.inv(a)), u128(1));
    }
}

TEST(Modulus, MontgomeryFormRoundTrip)
{
    const u128 q = nttPrime(120, 2048);
    const Modulus mod(q);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const u128 a = rng.below128(q);
        const u128 b = rng.below128(q);
        // mulMontNormal(toMont(a), b) == a*b mod q
        EXPECT_EQ(mod.mulMontNormal(mod.toMont(a), b), mod.mul(a, b));
    }
}

// ----------------------------------------------------------------------

TEST(Modulus64, MulShoupMatchesPlain)
{
    const Modulus64 mod((uint64_t(1) << 61) - 1);
    Rng rng(8);
    for (int i = 0; i < 200; ++i) {
        const uint64_t w = rng.below64(mod.value());
        const uint64_t a = rng.below64(mod.value());
        const uint64_t ws = mod.shoupPrecompute(w);
        EXPECT_EQ(mod.mulShoup(w, ws, a), mod.mul(w, a));
    }
}

TEST(Modulus64, PowAndInverse)
{
    const Modulus64 mod(0x1fffffffffe00001ull); // 61-bit NTT prime
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        const uint64_t a = 1 + rng.below64(mod.value() - 1);
        EXPECT_EQ(mod.mul(a, mod.inv(a)), 1ull);
    }
}

// ----------------------------------------------------------------------

TEST(Primality, KnownSmallPrimes)
{
    for (uint64_t p : {2ull, 3ull, 5ull, 97ull, 101ull, 65537ull})
        EXPECT_TRUE(isPrime(p)) << p;
    for (uint64_t c : {1ull, 4ull, 91ull, 561ull, 41041ull, 825265ull})
        EXPECT_FALSE(isPrime(c)) << c; // includes Carmichael numbers
}

TEST(Primality, KnownLargePrimes)
{
    EXPECT_TRUE(isPrime((u128(1) << 61) - 1));  // Mersenne 61
    EXPECT_TRUE(isPrime((u128(1) << 89) - 1));  // Mersenne 89
    EXPECT_TRUE(isPrime((u128(1) << 107) - 1)); // Mersenne 107
    EXPECT_TRUE(isPrime((u128(1) << 127) - 1)); // Mersenne 127
    EXPECT_FALSE(isPrime((u128(1) << 67) - 1)); // 2^67-1 is composite
    EXPECT_FALSE(isPrime((u128(1) << 83) - 1));
}

TEST(Primality, ProductsOfLargePrimes)
{
    const u128 p1 = (u128(1) << 61) - 1;
    const u128 p2 = (u128(1) << 59) - 55; // random-ish odd composite base
    EXPECT_FALSE(isPrime(p1 * p1));
    EXPECT_FALSE(isPrime(p1 * 3));
    (void)p2;
}

// ----------------------------------------------------------------------

class PrimegenSizes
    : public testing::TestWithParam<std::pair<unsigned, uint64_t>>
{
};

TEST_P(PrimegenSizes, PrimeHasNttForm)
{
    const auto [bits, n] = GetParam();
    const u128 q = nttPrime(bits, n);
    EXPECT_TRUE(isPrime(q));
    EXPECT_EQ((q - 1) % (u128(2) * n), u128(0));
    EXPECT_LT(q, bits == 128 ? ~u128(0) : u128(1) << bits);
    EXPECT_GE(q, u128(1) << (bits - 1)); // full requested width
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PrimegenSizes,
    testing::Values(std::pair{20u, 1024ull}, std::pair{60u, 1024ull},
                    std::pair{60u, 65536ull}, std::pair{124u, 4096ull},
                    std::pair{124u, 65536ull}, std::pair{128u, 65536ull}));

TEST(Primegen, DistinctPrimes)
{
    const auto primes = nttPrimes(62, 4096, 5);
    ASSERT_EQ(primes.size(), 5u);
    for (size_t i = 0; i < primes.size(); ++i) {
        EXPECT_TRUE(isPrime(primes[i]));
        for (size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
    }
}

TEST(Primegen, PrimitiveRootOrder)
{
    for (uint64_t n : {1024ull, 4096ull}) {
        const u128 q = nttPrime(90, n);
        const Modulus mod(q);
        const u128 psi = primitiveRoot2n(q, n);
        // psi^n == -1 and psi^2n == 1: exact order 2n.
        EXPECT_EQ(mod.pow(psi, n), q - 1);
        EXPECT_EQ(mod.pow(psi, u128(2) * n), u128(1));
        EXPECT_NE(mod.pow(psi, n / 2), q - 1);
    }
}

} // namespace
} // namespace rpu
