/**
 * @file
 * CPU-baseline tests: the 64-bit Harvey/Shoup NTT against its naive
 * oracle, the 128-bit baseline against the reference transform, and
 * thread-count independence of results.
 */

#include <gtest/gtest.h>

#include "baseline/cpu_ntt128.hh"
#include "baseline/cpu_ntt64.hh"
#include "modmath/primegen.hh"
#include "poly/polynomial.hh"

namespace rpu {
namespace {

TEST(CpuNtt64, RoundTrip)
{
    const uint64_t q = uint64_t(nttPrime(60, 4096));
    const CpuNtt64 ntt(q, 4096);
    Rng rng(1);
    std::vector<uint64_t> original(4096);
    for (auto &v : original)
        v = rng.below64(q);
    std::vector<uint64_t> x = original;
    ntt.forward(x);
    EXPECT_NE(x, original);
    ntt.inverse(x);
    EXPECT_EQ(x, original);
}

TEST(CpuNtt64, ConvolutionAgainstNaive)
{
    const uint64_t q = uint64_t(nttPrime(58, 256));
    const CpuNtt64 ntt(q, 256);
    const Modulus64 mod(q);
    Rng rng(2);
    std::vector<uint64_t> a(256), b(256);
    for (auto &v : a)
        v = rng.below64(q);
    for (auto &v : b)
        v = rng.below64(q);

    std::vector<uint64_t> fa = a, fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    std::vector<uint64_t> prod(256);
    for (size_t i = 0; i < prod.size(); ++i)
        prod[i] = mod.mul(fa[i], fb[i]);
    ntt.inverse(prod);

    EXPECT_EQ(prod, ntt.mulNaive(a, b));
}

TEST(CpuNtt64, ThreadCountDoesNotChangeResults)
{
    const uint64_t q = uint64_t(nttPrime(60, 8192));
    const CpuNtt64 ntt(q, 8192);
    Rng rng(3);
    std::vector<uint64_t> x(8192);
    for (auto &v : x)
        v = rng.below64(q);
    std::vector<uint64_t> a = x, b = x, c = x;
    ntt.forward(a, 1);
    ntt.forward(b, 2);
    ntt.forward(c, 4);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    ntt.inverse(b, 4);
    EXPECT_EQ(b, x);
}

TEST(CpuNtt128, MatchesReferenceTransform)
{
    const Modulus mod(nttPrime(124, 4096));
    const TwiddleTable tw(mod, 4096);
    const NttContext ref(tw);
    const CpuNtt128 cpu(tw);

    Rng rng(4);
    std::vector<u128> a = randomPoly(mod, 4096, rng);
    std::vector<u128> b = a;
    ref.forward(a);
    cpu.forward(b, 2);
    EXPECT_EQ(a, b);
    ref.inverse(a);
    cpu.inverse(b, 2);
    EXPECT_EQ(a, b);
}

TEST(CpuNtt128, RoundTripLarge)
{
    const Modulus mod(nttPrime(124, 32768));
    const TwiddleTable tw(mod, 32768);
    const CpuNtt128 cpu(tw);
    Rng rng(5);
    const std::vector<u128> original = randomPoly(mod, 32768, rng);
    std::vector<u128> x = original;
    cpu.forward(x, 2);
    cpu.inverse(x, 2);
    EXPECT_EQ(x, original);
}

TEST(Baseline, SixtyFourBitIsFasterThan128Bit)
{
    // The premise of Fig. 10's two CPU series: native 64-bit NTTs are
    // substantially faster than 128-bit ones on a 64-bit CPU.
    const uint64_t n = 16384;
    const uint64_t q64 = uint64_t(nttPrime(60, n));
    const CpuNtt64 ntt64(q64, n);
    const Modulus mod(nttPrime(124, n));
    const TwiddleTable tw(mod, n);
    const CpuNtt128 ntt128(tw);

    Rng rng(6);
    std::vector<uint64_t> x64(n);
    for (auto &v : x64)
        v = rng.below64(q64);
    std::vector<u128> x128 = randomPoly(mod, n, rng);

    const double t64 = medianRuntimeUs(5, [&] { ntt64.forward(x64); });
    const double t128 =
        medianRuntimeUs(5, [&] { ntt128.forward(x128); });
    EXPECT_LT(t64, t128);
}

TEST(MedianRuntime, ReturnsPlausibleValues)
{
    volatile uint64_t sink = 0;
    const double t = medianRuntimeUs(3, [&] {
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
    });
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1e5);
}

} // namespace
} // namespace rpu
