/**
 * @file
 * Reference NTT tests: round trips, the convolution theorem against a
 * naive negacyclic product, linearity, and agreement between the
 * Montgomery fast path and the plain-arithmetic variant.
 */

#include <gtest/gtest.h>

#include "modmath/primegen.hh"
#include "poly/polynomial.hh"

namespace rpu {
namespace {

struct Ring
{
    std::unique_ptr<Modulus> mod;
    std::unique_ptr<TwiddleTable> tw;
    std::unique_ptr<NttContext> ntt;

    Ring(uint64_t n, unsigned bits)
    {
        mod = std::make_unique<Modulus>(nttPrime(bits, n));
        tw = std::make_unique<TwiddleTable>(*mod, n);
        ntt = std::make_unique<NttContext>(*tw);
    }
};

class NttSizes : public testing::TestWithParam<std::pair<uint64_t, unsigned>>
{
};

TEST_P(NttSizes, ForwardInverseRoundTrip)
{
    const auto [n, bits] = GetParam();
    Ring ring(n, bits);
    Rng rng(n);
    const std::vector<u128> original = randomPoly(*ring.mod, n, rng);
    std::vector<u128> x = original;
    ring.ntt->forward(x);
    EXPECT_NE(x, original); // transform must do something
    ring.ntt->inverse(x);
    EXPECT_EQ(x, original);
}

TEST_P(NttSizes, ConvolutionTheorem)
{
    const auto [n, bits] = GetParam();
    if (n > 2048)
        GTEST_SKIP() << "naive O(n^2) oracle too slow above 2048";
    Ring ring(n, bits);
    Rng rng(n + 1);
    const auto a = randomPoly(*ring.mod, n, rng);
    const auto b = randomPoly(*ring.mod, n, rng);
    EXPECT_EQ(negacyclicMulNtt(*ring.ntt, a, b),
              negacyclicMulNaive(*ring.mod, a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NttSizes,
    testing::Values(std::pair{4ull, 60u}, std::pair{16ull, 60u},
                    std::pair{64ull, 124u}, std::pair{256ull, 124u},
                    std::pair{1024ull, 124u}, std::pair{2048ull, 124u},
                    std::pair{4096ull, 124u}, std::pair{65536ull, 124u}));

TEST(Ntt, PlainAndMontgomeryPathsAgree)
{
    Ring ring(1024, 124);
    Rng rng(2);
    std::vector<u128> a = randomPoly(*ring.mod, 1024, rng);
    std::vector<u128> b = a;
    ring.ntt->forward(a);
    ring.ntt->forwardPlain(b);
    EXPECT_EQ(a, b);
    ring.ntt->inverse(a);
    ring.ntt->inversePlain(b);
    EXPECT_EQ(a, b);
}

TEST(Ntt, Linearity)
{
    Ring ring(1024, 124);
    Rng rng(3);
    const auto a = randomPoly(*ring.mod, 1024, rng);
    const auto b = randomPoly(*ring.mod, 1024, rng);
    const u128 c = rng.below128(ring.mod->value());

    // NTT(c*a + b) == c*NTT(a) + NTT(b)
    std::vector<u128> lhs =
        polyAdd(*ring.mod, polyScale(*ring.mod, c, a), b);
    ring.ntt->forward(lhs);

    std::vector<u128> fa = a, fb = b;
    ring.ntt->forward(fa);
    ring.ntt->forward(fb);
    const std::vector<u128> rhs =
        polyAdd(*ring.mod, polyScale(*ring.mod, c, fa), fb);
    EXPECT_EQ(lhs, rhs);
}

TEST(Ntt, DeltaTransformsToRootPowers)
{
    // NTT(delta at x^0) = all ones: x^0 evaluates to 1 everywhere.
    Ring ring(1024, 124);
    std::vector<u128> delta(1024, 0);
    delta[0] = 1;
    ring.ntt->forward(delta);
    for (u128 v : delta)
        EXPECT_EQ(v, u128(1));
}

TEST(Ntt, ConstantPolynomial)
{
    // Inverse of the all-ones vector is the delta.
    Ring ring(1024, 124);
    std::vector<u128> ones(1024, 1);
    ring.ntt->inverse(ones);
    EXPECT_EQ(ones[0], u128(1));
    for (size_t i = 1; i < ones.size(); ++i)
        EXPECT_EQ(ones[i], u128(0));
}

TEST(Ntt, NegacyclicWraparound)
{
    // x^(n-1) * x = x^n = -1: the naive and NTT products must agree on
    // the sign flip.
    Ring ring(1024, 124);
    std::vector<u128> a(1024, 0), b(1024, 0);
    a[1023] = 1;
    b[1] = 1;
    const auto prod = negacyclicMulNtt(*ring.ntt, a, b);
    EXPECT_EQ(prod[0], ring.mod->value() - 1); // -1
    for (size_t i = 1; i < prod.size(); ++i)
        EXPECT_EQ(prod[i], u128(0));
}

TEST(Twiddle, TableInvariants)
{
    Ring ring(1024, 124);
    const TwiddleTable &tw = *ring.tw;
    const Modulus &mod = *ring.mod;

    // rootPower(1) = psi^bitrev(1) = psi^(n/2); its square is
    // psi^n = -1 by the negacyclic defining property.
    EXPECT_EQ(mod.mul(tw.rootPower(1), tw.rootPower(1)),
              mod.value() - 1);
    // psi itself sits at the bit-reversed slot of n/2.
    EXPECT_EQ(tw.rootPower(512), tw.psi());
    for (size_t j = 1; j < 32; ++j) {
        EXPECT_EQ(mod.mul(tw.rootPower(j), tw.invRootPower(j)), u128(1));
        EXPECT_EQ(mod.mulMontNormal(tw.rootPowerMont(j), u128(1)),
                  tw.rootPower(j));
    }
    EXPECT_EQ(mod.mul(tw.nInv(), u128(1024) % mod.value()), u128(1));
}

TEST(Poly, AddSubPointwise)
{
    Ring ring(1024, 124);
    Rng rng(4);
    const auto a = randomPoly(*ring.mod, 1024, rng);
    const auto b = randomPoly(*ring.mod, 1024, rng);
    EXPECT_EQ(polySub(*ring.mod, polyAdd(*ring.mod, a, b), b), a);
    const auto p = polyPointwise(*ring.mod, a, b);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(p[i], ring.mod->mul(a[i], b[i]));
}

} // namespace
} // namespace rpu
