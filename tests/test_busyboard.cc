/**
 * @file
 * Busyboard tests: register-use extraction per instruction format and
 * hazard semantics (RAW/WAR/WAW blocking, concurrent readers).
 */

#include <gtest/gtest.h>

#include "sim/cycle/busyboard.hh"

namespace rpu {
namespace {

bool
hasRead(const RegUse &u, RegClass c, uint8_t idx)
{
    for (unsigned i = 0; i < u.numReads; ++i) {
        if (u.reads[i].cls == c && u.reads[i].idx == idx)
            return true;
    }
    return false;
}

bool
hasWrite(const RegUse &u, RegClass c, uint8_t idx)
{
    for (unsigned i = 0; i < u.numWrites; ++i) {
        if (u.writes[i].cls == c && u.writes[i].idx == idx)
            return true;
    }
    return false;
}

TEST(RegUse, VectorLoad)
{
    const RegUse u = regUses(Instruction::vload(5, 2, 100));
    EXPECT_TRUE(hasRead(u, RegClass::Address, 2));
    EXPECT_TRUE(hasWrite(u, RegClass::Vector, 5));
    EXPECT_EQ(u.numReads, 1u);
    EXPECT_EQ(u.numWrites, 1u);
}

TEST(RegUse, VectorStore)
{
    const RegUse u = regUses(Instruction::vstore(5, 2, 100));
    EXPECT_TRUE(hasRead(u, RegClass::Address, 2));
    EXPECT_TRUE(hasRead(u, RegClass::Vector, 5));
    EXPECT_EQ(u.numWrites, 0u);
}

TEST(RegUse, Butterfly)
{
    const RegUse u = regUses(Instruction::butterfly(1, 2, 3, 4, 5, 6));
    EXPECT_TRUE(hasWrite(u, RegClass::Vector, 1));
    EXPECT_TRUE(hasWrite(u, RegClass::Vector, 2));
    EXPECT_TRUE(hasRead(u, RegClass::Vector, 3));
    EXPECT_TRUE(hasRead(u, RegClass::Vector, 4));
    EXPECT_TRUE(hasRead(u, RegClass::Vector, 5));
    EXPECT_TRUE(hasRead(u, RegClass::Modulus, 6));
}

TEST(RegUse, VectorScalarCompute)
{
    const RegUse u =
        regUses(Instruction::vs_(Opcode::VSMULMOD, 1, 2, 3, 4));
    EXPECT_TRUE(hasWrite(u, RegClass::Vector, 1));
    EXPECT_TRUE(hasRead(u, RegClass::Vector, 2));
    EXPECT_TRUE(hasRead(u, RegClass::Scalar, 3));
    EXPECT_TRUE(hasRead(u, RegClass::Modulus, 4));
}

TEST(RegUse, ScalarUnitLoads)
{
    EXPECT_TRUE(hasWrite(regUses(Instruction::sload(7, 0)),
                         RegClass::Scalar, 7));
    EXPECT_TRUE(hasWrite(regUses(Instruction::mload(8, 0)),
                         RegClass::Modulus, 8));
    EXPECT_TRUE(hasWrite(regUses(Instruction::aload(9, 0)),
                         RegClass::Address, 9));
}

// ----------------------------------------------------------------------

TEST(Busyboard, RawHazardBlocks)
{
    Busyboard bb;
    const auto writer = regUses(Instruction::vload(3, 0, 0));
    const auto reader =
        regUses(Instruction::vv(Opcode::VADDMOD, 4, 3, 5, 0));
    EXPECT_TRUE(bb.canIssue(writer));
    bb.acquire(writer);
    EXPECT_FALSE(bb.canIssue(reader)); // v3 is being written
    bb.release(writer);
    EXPECT_TRUE(bb.canIssue(reader));
}

TEST(Busyboard, WawHazardBlocks)
{
    Busyboard bb;
    const auto w1 = regUses(Instruction::vload(3, 0, 0));
    const auto w2 = regUses(Instruction::vload(3, 1, 0));
    bb.acquire(w1);
    EXPECT_FALSE(bb.canIssue(w2));
}

TEST(Busyboard, WarHazardBlocks)
{
    Busyboard bb;
    const auto reader =
        regUses(Instruction::vv(Opcode::VADDMOD, 4, 3, 5, 0));
    const auto writer = regUses(Instruction::vload(3, 0, 0));
    bb.acquire(reader);
    EXPECT_FALSE(bb.canIssue(writer)); // v3 has an in-flight reader
    bb.release(reader);
    EXPECT_TRUE(bb.canIssue(writer));
}

TEST(Busyboard, ConcurrentReadersAllowed)
{
    Busyboard bb;
    // Two butterflies sharing a twiddle register (v5) must co-issue:
    // this is what twiddle-register reuse depends on.
    const auto b1 = regUses(Instruction::butterfly(1, 2, 3, 4, 5, 0));
    const auto b2 = regUses(Instruction::butterfly(6, 7, 8, 9, 5, 0));
    bb.acquire(b1);
    EXPECT_TRUE(bb.canIssue(b2));
    bb.acquire(b2);
    // A writer to v5 stays blocked until both readers release.
    const auto w = regUses(Instruction::vload(5, 0, 0));
    EXPECT_FALSE(bb.canIssue(w));
    bb.release(b1);
    EXPECT_FALSE(bb.canIssue(w));
    bb.release(b2);
    EXPECT_TRUE(bb.canIssue(w));
}

TEST(Busyboard, ExclusiveReadersOptionBlocksSharing)
{
    Busyboard bb(true);
    const auto b1 = regUses(Instruction::butterfly(1, 2, 3, 4, 5, 0));
    const auto b2 = regUses(Instruction::butterfly(6, 7, 8, 9, 5, 0));
    bb.acquire(b1);
    EXPECT_FALSE(bb.canIssue(b2));
}

TEST(Busyboard, IndependentInstructionsCoexist)
{
    Busyboard bb;
    const auto a = regUses(Instruction::vload(1, 0, 0));
    const auto b = regUses(Instruction::vload(2, 0, 0)); // shares ARF a0
    bb.acquire(a);
    EXPECT_TRUE(bb.canIssue(b)); // concurrent ARF readers are fine
    bb.acquire(b);
    const auto c = regUses(Instruction::shuffle(Opcode::PKLO, 3, 4, 5));
    EXPECT_TRUE(bb.canIssue(c));
}

TEST(Busyboard, RegisterClassesAreSeparate)
{
    Busyboard bb;
    // Writing v3 must not block writing m3 / a3 / s3.
    bb.acquire(regUses(Instruction::vload(3, 0, 0)));
    EXPECT_TRUE(bb.canIssue(regUses(Instruction::mload(3, 0))));
    EXPECT_TRUE(bb.canIssue(regUses(Instruction::aload(3, 0))));
    EXPECT_TRUE(bb.canIssue(regUses(Instruction::sload(3, 0))));
}

TEST(Busyboard, IdleAfterAllReleases)
{
    Busyboard bb;
    EXPECT_TRUE(bb.idle());
    const auto a = regUses(Instruction::butterfly(1, 2, 3, 4, 5, 0));
    bb.acquire(a);
    EXPECT_FALSE(bb.idle());
    bb.release(a);
    EXPECT_TRUE(bb.idle());
}

TEST(Busyboard, ReleaseUnderflowPanics)
{
    Busyboard bb;
    const auto a = regUses(Instruction::vload(1, 0, 0));
    EXPECT_DEATH(bb.release(a), "underflow");
}

} // namespace
} // namespace rpu
