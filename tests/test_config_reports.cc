/**
 * @file
 * Configuration validation and report-formatting tests: RpuConfig
 * guard rails, instruction-memory capacity limits, and the
 * human-readable summaries every bench prints.
 */

#include <gtest/gtest.h>

#include "rpu/runner.hh"
#include "sim/cycle/simulator.hh"
#include "sim/functional/executor.hh"

namespace rpu {
namespace {

TEST(RpuConfig, DefaultIsFlagship)
{
    const RpuConfig cfg;
    EXPECT_EQ(cfg.numHples, 128u);
    EXPECT_EQ(cfg.numBanks, 128u);
    EXPECT_EQ(cfg.name(), "(128, 128)");
    cfg.validate(); // must not exit
}

TEST(RpuConfig, RejectsNonPowerOfTwoHples)
{
    RpuConfig cfg;
    cfg.numHples = 100;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "numHples");
}

TEST(RpuConfig, RejectsOversizedHples)
{
    RpuConfig cfg;
    cfg.numHples = 1024; // more than one per lane
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "numHples");
}

TEST(RpuConfig, RejectsBadBanks)
{
    RpuConfig cfg;
    cfg.numBanks = 48;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "numBanks");
}

TEST(RpuConfig, RejectsOversizedVdm)
{
    RpuConfig cfg;
    cfg.vdmBytes = arch::kVdmMaxBytes + arch::kWordBytes;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "vdmBytes");
}

TEST(RpuConfig, RejectsZeroLatencyMultiplier)
{
    RpuConfig cfg;
    cfg.mulII = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "II");
}

TEST(InstructionMemory, CycleSimRejectsOversizedPrograms)
{
    Program big("huge");
    const Instruction nop = Instruction::sload(1, 0);
    for (size_t i = 0; i < arch::kImMaxInstrs + 1; ++i)
        big.append(nop);
    EXPECT_EXIT(simulateCycles(big, RpuConfig{}),
                testing::ExitedWithCode(1), "instruction memory");
}

TEST(InstructionMemory, FunctionalSimRejectsOversizedPrograms)
{
    Program big("huge");
    const Instruction nop = Instruction::sload(1, 0);
    for (size_t i = 0; i < arch::kImMaxInstrs + 1; ++i)
        big.append(nop);
    ArchState state;
    FunctionalSimulator sim(state);
    EXPECT_EXIT(sim.run(big), testing::ExitedWithCode(1),
                "instruction memory");
}

TEST(Reports, KernelMetricsMentionsEverything)
{
    NttRunner runner(1024, 60);
    const RpuConfig cfg;
    const KernelMetrics m = runner.evaluate(runner.makeKernel(), cfg);
    const std::string r = m.report();
    EXPECT_NE(r.find("cycles"), std::string::npos);
    EXPECT_NE(r.find("GHz"), std::string::npos);
    EXPECT_NE(r.find("mm^2"), std::string::npos);
    EXPECT_NE(r.find("uJ"), std::string::npos);
    EXPECT_NE(r.find("P/A"), std::string::npos);
}

TEST(Reports, CycleStatsReport)
{
    NttRunner runner(1024, 60);
    const NttKernel k = runner.makeKernel();
    const CycleStats s = simulateCycles(k.program, RpuConfig{});
    const std::string r = s.report();
    EXPECT_NE(r.find("busyboard"), std::string::npos);
    EXPECT_NE(r.find("ls pipeline"), std::string::npos);
    EXPECT_NE(r.find("butterflies"), std::string::npos);
}

TEST(Reports, AreaAndEnergyBreakdowns)
{
    const AreaBreakdown a = rpuArea(RpuConfig{});
    EXPECT_NE(a.report().find("VDM"), std::string::npos);
    EXPECT_NE(a.report().find("total"), std::string::npos);
    EXPECT_NEAR(a.total(), a.im + a.vdm + a.vrf + a.lawEngine + a.vbar +
                               a.sbar + a.scalarUnit,
                1e-12);

    CycleStats s;
    s.mulLaneOps = 1000;
    s.vrfWordReads = 500;
    const EnergyBreakdown e = kernelEnergy(s);
    EXPECT_GT(e.lawUj, 0.0);
    EXPECT_GT(e.vrfUj, 0.0);
    EXPECT_EQ(e.vdmUj, 0.0);
    EXPECT_NEAR(e.share(e.lawUj) + e.share(e.vrfUj), 100.0, 1e-9);
    EXPECT_NE(e.report().find("LAW"), std::string::npos);
}

TEST(Reports, UtilisationBounds)
{
    NttRunner runner(2048, 60);
    const NttKernel k = runner.makeKernel();
    const CycleStats s = simulateCycles(k.program, RpuConfig{});
    for (const PipeStats *p : {&s.ls, &s.compute, &s.shuffle}) {
        EXPECT_GE(p->utilisation(s.cycles), 0.0);
        EXPECT_LE(p->utilisation(s.cycles), 1.0);
    }
    // Dispatch accounting: every instruction was fetched exactly once.
    EXPECT_EQ(s.imFetches, k.program.size());
    EXPECT_EQ(s.ls.instrs + s.compute.instrs + s.shuffle.instrs,
              k.program.size());
}

TEST(Reports, FunctionalAndCycleCountsAgree)
{
    // The two simulators count the same physical events.
    NttRunner runner(2048, 60);
    const NttKernel k = runner.makeKernel();

    ArchState state(k.vdmBytesRequired);
    for (size_t i = 0; i < k.sdmImage.size(); ++i)
        state.writeSdm(i, k.sdmImage[i]);
    state.loadVdm(k.twPlanBase, k.twPlanImage);
    FunctionalSimulator fsim(state);
    fsim.run(k.program);

    const CycleStats cs = simulateCycles(k.program, RpuConfig{});
    EXPECT_EQ(fsim.counts().instructions, cs.instructions);
    EXPECT_EQ(fsim.counts().vdmWordsRead, cs.vdmWordsRead);
    EXPECT_EQ(fsim.counts().vdmWordsWritten, cs.vdmWordsWritten);
    EXPECT_EQ(fsim.counts().laneMuls, cs.mulLaneOps);
    EXPECT_EQ(fsim.counts().laneAdds, cs.addLaneOps);
    EXPECT_EQ(fsim.counts().shuffleWords, cs.sbarWords);
}

} // namespace
} // namespace rpu
