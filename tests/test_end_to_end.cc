/**
 * @file
 * End-to-end reproduction checks: the paper's headline behaviours must
 * emerge from the full stack (codegen -> functional verification ->
 * cycle simulation -> models). Absolute numbers are tolerance-banded;
 * orderings and trends are asserted strictly.
 */

#include <gtest/gtest.h>

#include "model/hbm.hh"
#include "rpu/runner.hh"
#include "sim/cycle/simulator.hh"

namespace rpu {
namespace {

RpuConfig
design(unsigned h, unsigned b)
{
    RpuConfig cfg;
    cfg.numHples = h;
    cfg.numBanks = b;
    return cfg;
}

KernelMetrics
evaluateAt(const NttRunner &runner, unsigned h, unsigned b,
           bool optimized = true)
{
    const RpuConfig cfg = design(h, b);
    NttCodegenOptions opts;
    opts.optimized = optimized;
    opts.scheduleConfig = cfg;
    return runner.evaluate(runner.makeKernel(opts), cfg);
}

class EndToEnd64k : public testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        runner = new NttRunner(65536, 124);
    }

    static void
    TearDownTestSuite()
    {
        delete runner;
        runner = nullptr;
    }

    static NttRunner *runner;
};

NttRunner *EndToEnd64k::runner = nullptr;

TEST_F(EndToEnd64k, HeadlineResult)
{
    // Paper headline: 128-bit 64K NTT in 6.7 us on 20.5 mm^2.
    const NttKernel kernel = runner->makeKernel(
        {.scheduleConfig = design(128, 128)});
    ASSERT_TRUE(runner->verify(kernel));
    const KernelMetrics m = runner->evaluate(kernel, design(128, 128));
    EXPECT_GT(m.runtimeUs, 3.0);
    EXPECT_LT(m.runtimeUs, 13.0);
    EXPECT_NEAR(m.area.total(), 20.5, 0.5);
}

TEST_F(EndToEnd64k, CyclesRespectAnalyticalBounds)
{
    const NttKernel kernel = runner->makeKernel(
        {.scheduleConfig = design(128, 128)});
    const RpuConfig cfg = design(128, 128);
    const CycleStats stats = simulateCycles(kernel.program, cfg);
    const uint64_t lower = cycleLowerBound(kernel.program, cfg);
    EXPECT_GE(stats.cycles, lower);
    EXPECT_LE(stats.cycles, 3 * lower);
}

TEST_F(EndToEnd64k, OptimizedBeatsUnoptimized)
{
    // Fig. 6: hardware-aware code is ~1.8x faster on average.
    const KernelMetrics opt = evaluateAt(*runner, 128, 128, true);
    const KernelMetrics naive = evaluateAt(*runner, 128, 128, false);
    const double ratio = naive.runtimeUs / opt.runtimeUs;
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 4.0);
}

TEST_F(EndToEnd64k, PerfPerAreaPeaksAt128x128)
{
    // Fig. 4: (128,128) is the most efficient configuration with
    // (64,64) close behind (the paper's second best; here it is
    // within a whisker of (64,128)).
    const double best = evaluateAt(*runner, 128, 128).perfPerArea();
    const double second = evaluateAt(*runner, 64, 64).perfPerArea();
    EXPECT_GT(best, second);
    for (auto [h, b] :
         {std::pair{128u, 256u}, {256u, 128u}, {256u, 256u},
          {32u, 32u}, {64u, 128u}}) {
        EXPECT_LT(evaluateAt(*runner, h, b).perfPerArea(), best)
            << "(" << h << ", " << b << ")";
    }
    for (auto [h, b] :
         {std::pair{128u, 256u}, {256u, 128u}, {256u, 256u},
          {32u, 32u}}) {
        EXPECT_LT(evaluateAt(*runner, h, b).perfPerArea(), second)
            << "(" << h << ", " << b << ")";
    }
}

TEST_F(EndToEnd64k, RuntimeImprovesWithHples)
{
    // Fig. 3 / Fig. 6 x-axis: more HPLEs at fixed banks is faster.
    double prev = 1e18;
    for (unsigned h : {4u, 16u, 64u, 128u, 256u}) {
        const double t = evaluateAt(*runner, h, 128).runtimeUs;
        EXPECT_LT(t, prev) << "H=" << h;
        prev = t;
    }
}

TEST_F(EndToEnd64k, BanksBarelyHelpWhenComputeBound)
{
    // Paper: (4,256) needs much more area for only ~0.75x the runtime
    // of (4,32) because 4 HPLEs cannot consume the bandwidth.
    const KernelMetrics small = evaluateAt(*runner, 4, 32);
    const KernelMetrics wide = evaluateAt(*runner, 4, 256);
    EXPECT_GT(wide.area.total(), 1.4 * small.area.total());
    EXPECT_GT(wide.runtimeUs / small.runtimeUs, 0.6);
    EXPECT_LE(wide.runtimeUs / small.runtimeUs, 1.0);
}

TEST_F(EndToEnd64k, BanksMatterWhenBandwidthBound)
{
    // Paper: (256,256) is ~3.5x faster than (256,32) for ~1.2x area.
    const KernelMetrics narrow = evaluateAt(*runner, 256, 32);
    const KernelMetrics wide = evaluateAt(*runner, 256, 256);
    EXPECT_GT(narrow.runtimeUs / wide.runtimeUs, 1.5);
    EXPECT_LT(wide.area.total() / narrow.area.total(), 1.35);
}

TEST_F(EndToEnd64k, Beyond128HplesDiminishes)
{
    // Paper: (256,128) gains only ~16% over (128,128) while HPLE
    // area doubles.
    const KernelMetrics at128 = evaluateAt(*runner, 128, 128);
    const KernelMetrics at256 = evaluateAt(*runner, 256, 128);
    const double gain = at128.runtimeUs / at256.runtimeUs;
    EXPECT_GT(gain, 1.0);
    EXPECT_LT(gain, 1.45);
}

TEST(EndToEndScaling, RuntimeApproachesTheoreticalWithSize)
{
    // Fig. 9: the ratio of measured runtime to the ideal bound
    // shrinks as the polynomial degree grows (3.86x at 1K down to
    // 1.38x at 64K in the paper).
    double prev_ratio = 1e18;
    for (uint64_t n : {1024ull, 8192ull, 65536ull}) {
        NttRunner runner(n, 124);
        const KernelMetrics m = evaluateAt(runner, 128, 128);
        const double ratio =
            m.runtimeUs / theoreticalNttUs(n, 128, m.freqGhz);
        EXPECT_GT(ratio, 1.0) << "n=" << n;
        EXPECT_LT(ratio, prev_ratio) << "n=" << n;
        prev_ratio = ratio;
    }
}

TEST(EndToEndScaling, RuntimeGrowsWithRingSize)
{
    double prev = 0;
    for (uint64_t n : {1024ull, 4096ull, 16384ull, 65536ull}) {
        NttRunner runner(n, 124);
        const double t = evaluateAt(runner, 128, 128).runtimeUs;
        EXPECT_GT(t, prev) << "n=" << n;
        prev = t;
    }
}

TEST(EndToEndRoundTrip, ForwardInverseThroughRpu)
{
    NttRunner runner(8192, 124);
    const NttKernel fwd = runner.makeKernel();
    const NttKernel inv = runner.makeKernel({.inverse = true});
    Rng rng(9);
    const std::vector<u128> input =
        randomPoly(runner.modulus(), runner.n(), rng);
    EXPECT_EQ(runner.execute(inv, runner.execute(fwd, input)), input);
}

TEST(EndToEndRoundTrip, RpuPolynomialMultiplication)
{
    // Full negacyclic product on the RPU: forward both operands,
    // pointwise multiply on the host, inverse back — against the
    // naive oracle.
    NttRunner runner(1024, 124);
    const NttKernel fwd = runner.makeKernel();
    const NttKernel inv = runner.makeKernel({.inverse = true});
    Rng rng(10);
    const auto a = randomPoly(runner.modulus(), 1024, rng);
    const auto b = randomPoly(runner.modulus(), 1024, rng);
    const auto fa = runner.execute(fwd, a);
    const auto fb = runner.execute(fwd, b);
    const auto prod = runner.execute(
        inv, polyPointwise(runner.modulus(), fa, fb));
    EXPECT_EQ(prod, negacyclicMulNaive(runner.modulus(), a, b));
}

} // namespace
} // namespace rpu
