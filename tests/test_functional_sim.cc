/**
 * @file
 * Functional simulator tests: exact semantics of every B512
 * instruction, all four addressing modes, destination aliasing, and
 * bounds faulting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "modmath/primegen.hh"
#include "sim/functional/executor.hh"

namespace rpu {
namespace {

constexpr unsigned VL = arch::kVectorLength;

class FunctionalSim : public testing::Test
{
  protected:
    FunctionalSim() : state(arch::kVdmDefaultBytes), sim(state)
    {
        // A small NTT prime keeps arithmetic checkable by hand.
        q = nttPrime(60, 1024);
        state.setMreg(1, q);
        state.setAreg(0, 0);
        for (unsigned i = 0; i < 4096; ++i)
            state.writeVdm(i, u128(i) % q);
    }

    ArchState state;
    FunctionalSimulator sim;
    u128 q;
};

TEST_F(FunctionalSim, VloadContiguous)
{
    sim.step(Instruction::vload(2, 0, 100));
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.vreg(2)[i], u128(100 + i));
}

TEST_F(FunctionalSim, VloadStrided)
{
    sim.step(Instruction::vload(2, 0, 0, AddrMode::STRIDED, 2));
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.vreg(2)[i], u128(4 * i));
}

TEST_F(FunctionalSim, VloadStridedSkip)
{
    // Runs of 4, skipping 4: lanes 0..3 -> words 0..3, lanes 4..7 ->
    // words 8..11, ...
    sim.step(Instruction::vload(2, 0, 0, AddrMode::STRIDED_SKIP, 2));
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.vreg(2)[i], u128((i / 4) * 8 + i % 4));
}

TEST_F(FunctionalSim, VloadRepeated)
{
    // Each word replicated 8 times.
    sim.step(Instruction::vload(2, 0, 0, AddrMode::REPEATED, 3));
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.vreg(2)[i], u128(i / 8));
}

TEST_F(FunctionalSim, VloadUsesArfBase)
{
    state.setAreg(5, 1000);
    sim.step(Instruction::vload(2, 5, 24));
    EXPECT_EQ(state.vreg(2)[0], u128(1024));
}

TEST_F(FunctionalSim, VstoreContiguousAndStrided)
{
    sim.step(Instruction::vload(2, 0, 0));
    sim.step(Instruction::vstore(2, 0, 2048));
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.readVdm(2048 + i), u128(i));

    sim.step(Instruction::vstore(2, 0, 3000, AddrMode::STRIDED, 1));
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.readVdm(3000 + 2 * i), u128(i));
}

TEST_F(FunctionalSim, RepeatedStoreFaults)
{
    sim.step(Instruction::vload(2, 0, 0));
    EXPECT_EXIT(sim.step(Instruction::vstore(2, 0, 0,
                                             AddrMode::REPEATED, 1)),
                testing::ExitedWithCode(1), "REPEATED");
}

TEST_F(FunctionalSim, VdmOutOfBoundsFaults)
{
    state.setAreg(7, state.vdmWords());
    EXPECT_EXIT(sim.step(Instruction::vload(2, 7, 0)),
                testing::ExitedWithCode(1), "out of bounds");
}

TEST_F(FunctionalSim, ScalarLoads)
{
    state.writeSdm(10, 777);
    state.writeSdm(11, 888);
    state.writeSdm(12, 999);
    sim.step(Instruction::sload(3, 10));
    sim.step(Instruction::mload(4, 11));
    sim.step(Instruction::aload(5, 12));
    EXPECT_EQ(state.sreg(3), u128(777));
    EXPECT_EQ(state.mreg(4), u128(888));
    EXPECT_EQ(state.areg(5), 999u);
}

TEST_F(FunctionalSim, Broadcast)
{
    state.writeSdm(20, 4242);
    state.setAreg(3, 16);
    sim.step(Instruction::vbcast(6, 3, 4)); // SDM[16 + 4]
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.vreg(6)[i], u128(4242));
}

TEST_F(FunctionalSim, VectorVectorArithmetic)
{
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vload(2, 0, 512));
    sim.step(Instruction::vv(Opcode::VADDMOD, 3, 1, 2, 1));
    sim.step(Instruction::vv(Opcode::VSUBMOD, 4, 2, 1, 1));
    sim.step(Instruction::vv(Opcode::VMULMOD, 5, 1, 2, 1));
    const Modulus mod(q);
    for (unsigned i = 0; i < VL; ++i) {
        EXPECT_EQ(state.vreg(3)[i], mod.add(i, 512 + i));
        EXPECT_EQ(state.vreg(4)[i], u128(512));
        EXPECT_EQ(state.vreg(5)[i], mod.mul(i, 512 + i));
    }
}

TEST_F(FunctionalSim, VectorScalarArithmetic)
{
    state.setSreg(9, 7);
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vs_(Opcode::VSADDMOD, 2, 1, 9, 1));
    sim.step(Instruction::vs_(Opcode::VSSUBMOD, 3, 1, 9, 1));
    sim.step(Instruction::vs_(Opcode::VSMULMOD, 4, 1, 9, 1));
    const Modulus mod(q);
    for (unsigned i = 0; i < VL; ++i) {
        EXPECT_EQ(state.vreg(2)[i], mod.add(i, 7));
        EXPECT_EQ(state.vreg(3)[i], mod.sub(i, 7));
        EXPECT_EQ(state.vreg(4)[i], mod.mul(i, 7));
    }
}

TEST_F(FunctionalSim, ButterflySemantics)
{
    sim.step(Instruction::vload(1, 0, 0));    // a
    sim.step(Instruction::vload(2, 0, 512));  // b
    sim.step(Instruction::vload(3, 0, 1024)); // w
    sim.step(Instruction::butterfly(4, 5, 1, 2, 3, 1));
    const Modulus mod(q);
    for (unsigned i = 0; i < VL; ++i) {
        const u128 t = mod.mul(u128(1024 + i), u128(512 + i));
        EXPECT_EQ(state.vreg(4)[i], mod.add(i, t));
        EXPECT_EQ(state.vreg(5)[i], mod.sub(i, t));
    }
}

TEST_F(FunctionalSim, ButterflyInPlaceAliasing)
{
    // vd == vs and vd1 == vt: hardware reads before writing.
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vload(2, 0, 512));
    sim.step(Instruction::vload(3, 0, 1024));
    sim.step(Instruction::butterfly(1, 2, 1, 2, 3, 1));
    const Modulus mod(q);
    for (unsigned i = 0; i < VL; ++i) {
        const u128 t = mod.mul(u128(1024 + i), u128(512 + i));
        EXPECT_EQ(state.vreg(1)[i], mod.add(i, t));
        EXPECT_EQ(state.vreg(2)[i], mod.sub(i, t));
    }
}

TEST_F(FunctionalSim, ShuffleSemantics)
{
    sim.step(Instruction::vload(1, 0, 0));   // 0..511
    sim.step(Instruction::vload(2, 0, 512)); // 512..1023
    sim.step(Instruction::shuffle(Opcode::UNPKLO, 3, 1, 2));
    sim.step(Instruction::shuffle(Opcode::UNPKHI, 4, 1, 2));
    sim.step(Instruction::shuffle(Opcode::PKLO, 5, 1, 2));
    sim.step(Instruction::shuffle(Opcode::PKHI, 6, 1, 2));
    for (unsigned i = 0; i < VL / 2; ++i) {
        EXPECT_EQ(state.vreg(3)[2 * i], u128(i));
        EXPECT_EQ(state.vreg(3)[2 * i + 1], u128(512 + i));
        EXPECT_EQ(state.vreg(4)[2 * i], u128(256 + i));
        EXPECT_EQ(state.vreg(4)[2 * i + 1], u128(768 + i));
        EXPECT_EQ(state.vreg(5)[i], u128(2 * i));
        EXPECT_EQ(state.vreg(5)[VL / 2 + i], u128(512 + 2 * i));
        EXPECT_EQ(state.vreg(6)[i], u128(2 * i + 1));
        EXPECT_EQ(state.vreg(6)[VL / 2 + i], u128(512 + 2 * i + 1));
    }
}

TEST_F(FunctionalSim, PackUndoesUnpack)
{
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vload(2, 0, 512));
    sim.step(Instruction::shuffle(Opcode::UNPKLO, 3, 1, 2));
    sim.step(Instruction::shuffle(Opcode::UNPKHI, 4, 1, 2));
    sim.step(Instruction::shuffle(Opcode::PKLO, 5, 3, 4));
    sim.step(Instruction::shuffle(Opcode::PKHI, 6, 3, 4));
    EXPECT_EQ(state.vreg(5), state.vreg(1));
    EXPECT_EQ(state.vreg(6), state.vreg(2));
}

TEST_F(FunctionalSim, ShuffleSelfAliasing)
{
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vload(2, 0, 512));
    sim.step(Instruction::shuffle(Opcode::UNPKLO, 1, 1, 2)); // vd == vs
    for (unsigned i = 0; i < VL / 2; ++i) {
        EXPECT_EQ(state.vreg(1)[2 * i], u128(i));
        EXPECT_EQ(state.vreg(1)[2 * i + 1], u128(512 + i));
    }
}

TEST_F(FunctionalSim, CountsAreTracked)
{
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vload(2, 0, 512));
    sim.step(Instruction::butterfly(3, 4, 1, 2, 2, 1));
    sim.step(Instruction::shuffle(Opcode::PKLO, 5, 3, 4));
    sim.step(Instruction::vstore(5, 0, 2048));
    const FunctionalCounts &c = sim.counts();
    EXPECT_EQ(c.instructions, 5u);
    EXPECT_EQ(c.vdmWordsRead, 2u * VL);
    EXPECT_EQ(c.vdmWordsWritten, VL);
    EXPECT_EQ(c.laneMuls, VL);
    EXPECT_EQ(c.laneAdds, 2u * VL);
    EXPECT_EQ(c.shuffleWords, VL);
}

// -- Parameterised load/store round trips over the mode grid -----------

struct ModeCase
{
    AddrMode mode;
    unsigned value;
};

class LoadStoreModes : public testing::TestWithParam<ModeCase>
{
  protected:
    LoadStoreModes() : state(arch::kVdmDefaultBytes), sim(state)
    {
        state.setAreg(0, 0);
        for (unsigned i = 0; i < 65536; ++i)
            state.writeVdm(i, u128(i) * 3 + 1);
    }

    ArchState state;
    FunctionalSimulator sim;
};

TEST_P(LoadStoreModes, LoadMatchesLaneOffsets)
{
    const auto &c = GetParam();
    sim.step(Instruction::vload(1, 0, 64, c.mode, uint8_t(c.value)));
    for (unsigned i = 0; i < VL; ++i) {
        const uint64_t addr =
            64 + FunctionalSimulator::laneOffset(c.mode, c.value, i);
        EXPECT_EQ(state.vreg(1)[i], u128(addr) * 3 + 1) << "lane " << i;
    }
}

TEST_P(LoadStoreModes, StoreThenLoadRoundTrips)
{
    const auto &c = GetParam();
    if (c.mode == AddrMode::REPEATED)
        GTEST_SKIP() << "stores do not support REPEATED";
    sim.step(Instruction::vload(1, 0, 0));
    sim.step(Instruction::vstore(1, 0, 32768, c.mode, uint8_t(c.value)));
    sim.step(Instruction::vload(2, 0, 32768, c.mode, uint8_t(c.value)));
    EXPECT_EQ(state.vreg(2), state.vreg(1));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LoadStoreModes,
    testing::Values(ModeCase{AddrMode::CONTIGUOUS, 0},
                    ModeCase{AddrMode::STRIDED, 1},
                    ModeCase{AddrMode::STRIDED, 3},
                    ModeCase{AddrMode::STRIDED, 6},
                    ModeCase{AddrMode::STRIDED_SKIP, 1},
                    ModeCase{AddrMode::STRIDED_SKIP, 4},
                    ModeCase{AddrMode::STRIDED_SKIP, 8},
                    ModeCase{AddrMode::REPEATED, 1},
                    ModeCase{AddrMode::REPEATED, 5},
                    ModeCase{AddrMode::REPEATED, 9}),
    [](const auto &info) {
        return addrModeName(info.param.mode) + "_v" +
               std::to_string(info.param.value);
    });

TEST_F(FunctionalSim, ModulusSwitchingMidProgram)
{
    // The MRF allows per-instruction modulus selection: the same
    // (reduced) operands multiplied under two different moduli in
    // consecutive instructions. Operands must be reduced with respect
    // to the modulus used — the architectural contract.
    const u128 q2 = 257;
    state.setMreg(2, q2);
    for (unsigned i = 0; i < VL; ++i) {
        state.writeVdm(8000 + i, (i * 7 + 3) % 200);
        state.writeVdm(9000 + i, (i * 11 + 5) % 200);
    }
    sim.step(Instruction::vload(1, 0, 8000));
    sim.step(Instruction::vload(2, 0, 9000));
    sim.step(Instruction::vv(Opcode::VMULMOD, 3, 1, 2, 1));
    sim.step(Instruction::vv(Opcode::VMULMOD, 4, 1, 2, 2));
    const Modulus m1(q), m2(q2);
    for (unsigned i = 0; i < VL; ++i) {
        const u128 a = state.vreg(1)[i];
        const u128 b = state.vreg(2)[i];
        EXPECT_EQ(state.vreg(3)[i], m1.mul(a, b));
        EXPECT_EQ(state.vreg(4)[i], m2.mul(a, b));
    }
}

TEST_F(FunctionalSim, AssembledProgramRuns)
{
    const Program p = assemble("vload v1, a0, 0, contig\n"
                               "vload v2, a0, 512, contig\n"
                               "vaddmod v3, v1, v2, m1\n"
                               "vstore v3, a0, 2048, contig\n");
    sim.run(p);
    const Modulus mod(q);
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(state.readVdm(2048 + i), mod.add(i, 512 + i));
}

} // namespace
} // namespace rpu
