/**
 * @file
 * KernelBuilder unit tests: register pool policies, scratchpad
 * allocation and deduplication, broadcast caching, and the twiddle
 * materialisation strategies (broadcast / compose / plan load).
 */

#include <gtest/gtest.h>

#include "codegen/builder.hh"
#include "modmath/primegen.hh"

namespace rpu {
namespace {

constexpr unsigned VL = arch::kVectorLength;

struct BuilderFixture : testing::Test
{
    BuilderFixture()
        : mod(nttPrime(60, 1024)), tw(mod, 1024)
    {
    }

    Modulus mod;
    TwiddleTable tw;
};

TEST_F(BuilderFixture, FifoPoolMaximisesReuseDistance)
{
    KernelBuilder b(tw, /*optimized=*/true);
    const unsigned r1 = b.allocReg();
    const unsigned r2 = b.allocReg();
    b.freeReg(r1);
    // FIFO: the next allocations drain the untouched pool before
    // recycling r1.
    for (int i = 0; i < 50; ++i)
        EXPECT_NE(b.allocReg(), r1);
    (void)r2;
}

TEST_F(BuilderFixture, LifoPoolRecyclesImmediately)
{
    KernelBuilder b(tw, /*optimized=*/false);
    const unsigned r1 = b.allocReg();
    b.freeReg(r1);
    EXPECT_EQ(b.allocReg(), r1);
}

TEST_F(BuilderFixture, DoubleFreePanics)
{
    KernelBuilder b(tw, true);
    const unsigned r = b.allocReg();
    b.freeReg(r);
    EXPECT_DEATH(b.freeReg(r), "double free");
}

TEST_F(BuilderFixture, PoolExhaustionPanics)
{
    KernelBuilder b(tw, true);
    for (int i = 0; i < 63; ++i)
        b.allocReg();
    EXPECT_DEATH(b.allocReg(), "exhausted");
}

TEST_F(BuilderFixture, SdmScalarDeduplicates)
{
    KernelBuilder b(tw, true);
    const uint64_t a1 = b.sdmScalar(42);
    const uint64_t a2 = b.sdmScalar(43);
    EXPECT_NE(a1, a2);
    EXPECT_EQ(b.sdmScalar(42), a1);
    EXPECT_EQ(b.sdmImage()[a1], u128(42));
}

TEST_F(BuilderFixture, TwPlanDeduplicates)
{
    KernelBuilder b(tw, true);
    std::vector<u128> p1(VL, 7), p2(VL, 8);
    const uint64_t o1 = b.twPlanVector(p1);
    const uint64_t o2 = b.twPlanVector(p2);
    EXPECT_NE(o1, o2);
    EXPECT_EQ(b.twPlanVector(p1), o1);
    EXPECT_EQ(b.twPlanImage().size(), 2 * VL);
}

TEST_F(BuilderFixture, BroadcastCachingUnderOptimized)
{
    KernelBuilder b(tw, true);
    const TwiddleRef r1 = b.emitBroadcast(99);
    const size_t after_first = b.program().size();
    const TwiddleRef r2 = b.emitBroadcast(99);
    EXPECT_EQ(b.program().size(), after_first); // no new instruction
    EXPECT_EQ(r1.reg, r2.reg);
    EXPECT_FALSE(r2.transient);
}

TEST_F(BuilderFixture, NoBroadcastCachingUnderNaive)
{
    KernelBuilder b(tw, false);
    const TwiddleRef r1 = b.emitBroadcast(99);
    b.releaseTwiddle(r1);
    const size_t after_first = b.program().size();
    const TwiddleRef r2 = b.emitBroadcast(99);
    EXPECT_GT(b.program().size(), after_first); // re-broadcast
    EXPECT_TRUE(r2.transient);
    b.releaseTwiddle(r2);
}

TEST_F(BuilderFixture, BroadcastCacheEvictsLru)
{
    KernelBuilder b(tw, true);
    const TwiddleRef first = b.emitBroadcast(1000);
    for (unsigned v = 0; v < KernelBuilder::kBroadcastCacheCap; ++v)
        b.emitBroadcast(2000 + v);
    // The first entry has been evicted; rebroadcasting emits anew.
    const size_t before = b.program().size();
    const TwiddleRef again = b.emitBroadcast(1000);
    EXPECT_GT(b.program().size(), before);
    (void)first;
    (void)again;
}

TEST_F(BuilderFixture, ConstantPatternBecomesBroadcast)
{
    KernelBuilder b(tw, true);
    const TwiddleRef r = b.twiddleReg(std::vector<u128>(VL, 5));
    EXPECT_EQ(b.program()[b.program().size() - 1].op, Opcode::VBCAST);
    b.releaseTwiddle(r);
}

TEST_F(BuilderFixture, CyclicPatternComposes)
{
    // [a, b, a, b, ...] = UNPKLO(bcast a, bcast b): 3 instructions.
    KernelBuilder b(tw, true);
    std::vector<u128> pattern(VL);
    for (unsigned i = 0; i < VL; ++i)
        pattern[i] = (i % 2) ? 11 : 10;
    const size_t before = b.program().size();
    const TwiddleRef r = b.twiddleReg(pattern);
    EXPECT_EQ(b.program().size() - before, 3u);
    EXPECT_EQ(b.program()[b.program().size() - 1].op, Opcode::UNPKLO);
    EXPECT_TRUE(b.twPlanImage().empty()); // no plan vector used
    b.releaseTwiddle(r);
}

TEST_F(BuilderFixture, Cyclic4Composes)
{
    KernelBuilder b(tw, true);
    std::vector<u128> pattern(VL);
    for (unsigned i = 0; i < VL; ++i)
        pattern[i] = 20 + i % 4;
    const size_t before = b.program().size();
    const TwiddleRef r = b.twiddleReg(pattern);
    // 4 broadcasts + 3 unpacks.
    EXPECT_EQ(b.program().size() - before, 7u);
    b.releaseTwiddle(r);
}

TEST_F(BuilderFixture, WidePatternFallsBackToPlanLoad)
{
    // 512 distinct values exceed the compose budget: one vload from
    // the twiddle-plan region.
    KernelBuilder b(tw, true);
    std::vector<u128> pattern(VL);
    for (unsigned i = 0; i < VL; ++i)
        pattern[i] = 100 + i;
    const size_t before = b.program().size();
    const TwiddleRef r = b.twiddleReg(pattern);
    EXPECT_EQ(b.program().size() - before, 1u);
    EXPECT_EQ(b.program()[before].op, Opcode::VLOAD);
    EXPECT_EQ(b.program()[before].rm, KernelBuilder::kTwPlanAreg);
    EXPECT_EQ(b.twPlanImage().size(), VL);
    b.releaseTwiddle(r);
}

TEST_F(BuilderFixture, ComposeDisabledForcesPlanLoads)
{
    KernelBuilder b(tw, true, 0, /*compose=*/false);
    std::vector<u128> pattern(VL);
    for (unsigned i = 0; i < VL; ++i)
        pattern[i] = (i % 2) ? 11 : 10;
    const size_t before = b.program().size();
    const TwiddleRef r = b.twiddleReg(pattern);
    EXPECT_EQ(b.program().size() - before, 1u);
    EXPECT_EQ(b.program()[before].op, Opcode::VLOAD);
    b.releaseTwiddle(r);
}

TEST_F(BuilderFixture, RunPatternFallsBackToPlanLoad)
{
    // Runs [a x256, b x256] are NOT recursively interleave-constant:
    // composition must refuse and use a plan vector.
    KernelBuilder b(tw, true);
    std::vector<u128> pattern(VL);
    for (unsigned i = 0; i < VL; ++i)
        pattern[i] = i < VL / 2 ? 1 : 2;
    const size_t before = b.program().size();
    const TwiddleRef r = b.twiddleReg(pattern);
    EXPECT_EQ(b.program().size() - before, 1u);
    EXPECT_EQ(b.program()[before].op, Opcode::VLOAD);
    b.releaseTwiddle(r);
}

TEST_F(BuilderFixture, DataRegionSwitching)
{
    KernelBuilder b(tw, true);
    b.emitPrologue(false);
    EXPECT_EQ(b.dataBase(), 0u);
    b.beginDataRegion(4, 1024);
    EXPECT_EQ(b.dataBase(), 1024u);
    const unsigned r = b.allocReg();
    b.emitDataLoad(r, 1);
    const Instruction &last = b.program()[b.program().size() - 1];
    EXPECT_EQ(last.op, Opcode::VLOAD);
    EXPECT_EQ(last.rm, 4);
    EXPECT_EQ(last.address, 512u);
    b.freeReg(r);
}

TEST_F(BuilderFixture, ReservedAregRejected)
{
    KernelBuilder b(tw, true);
    EXPECT_DEATH(b.beginDataRegion(KernelBuilder::kTwPlanAreg, 0),
                 "reserved");
}

TEST_F(BuilderFixture, TowerSwitchingChangesModReg)
{
    KernelBuilder b(tw, true);
    b.emitPrologue(false);
    EXPECT_EQ(b.modReg(), KernelBuilder::kModReg);
    b.beginTower(12345, 7);
    EXPECT_EQ(b.modReg(), 7u);
    const unsigned x = b.allocReg();
    const unsigned y = b.allocReg();
    const unsigned w = b.allocReg();
    const unsigned p = b.allocReg();
    const unsigned q = b.allocReg();
    b.oracle().setContiguous(x, 0);
    b.oracle().setContiguous(y, 512);
    b.emitButterfly(p, q, x, y, w);
    EXPECT_EQ(b.program()[b.program().size() - 1].rm, 7);
}

TEST_F(BuilderFixture, InverseButterflyShape)
{
    KernelBuilder b(tw, true);
    b.emitPrologue(true);
    const unsigned x = b.allocReg();
    const unsigned y = b.allocReg();
    const unsigned w = b.allocReg();
    const unsigned p = b.allocReg();
    const unsigned q = b.allocReg();
    b.oracle().setContiguous(x, 0);
    b.oracle().setContiguous(y, 512);
    const size_t before = b.program().size();
    b.emitInverseButterfly(p, q, x, y, w);
    ASSERT_EQ(b.program().size() - before, 3u);
    EXPECT_EQ(b.program()[before].op, Opcode::VSUBMOD);
    EXPECT_EQ(b.program()[before + 1].op, Opcode::VADDMOD);
    EXPECT_EQ(b.program()[before + 2].op, Opcode::VMULMOD);
    // Positions preserved through the commit.
    EXPECT_EQ(b.oracle().tags(p)[0], 0u);
    EXPECT_EQ(b.oracle().tags(q)[0], 512u);
}

} // namespace
} // namespace rpu
