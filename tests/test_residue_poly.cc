/**
 * @file
 * Domain-tagged residue polynomials: Eval <-> Coeff round trips pin
 * bit-identity on every tower across the host transforms, the serial
 * functional simulator, a pooled device, and the CPU reference
 * backend; the elision ledger records exactly the conversions a
 * domain-aware caller skips; and the evaluation-domain pointwise
 * product matches the fused negacyclic product end to end.
 */

#include <gtest/gtest.h>

#include "modmath/primegen.hh"
#include "poly/polynomial.hh"
#include "rlwe/residue_poly.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

constexpr uint64_t kN = 1024;

struct Fixture
{
    RnsBasis basis;
    std::vector<std::unique_ptr<TwiddleTable>> twiddles;
    std::vector<std::unique_ptr<NttContext>> ntts;
    ResidueOps ops;

    explicit Fixture(size_t towers, unsigned bits = 58)
        : basis(RnsBasis::nttBasis(bits, kN, towers)),
          ops(kN, &basis)
    {
        std::vector<const NttContext *> host;
        for (size_t t = 0; t < towers; ++t) {
            twiddles.push_back(std::make_unique<TwiddleTable>(
                basis.modulus(t), kN));
            ntts.push_back(std::make_unique<NttContext>(*twiddles[t]));
            host.push_back(ntts[t].get());
        }
        ops.setHostTransforms(std::move(host));
    }

    ResiduePoly
    randomCoeffPoly(uint64_t seed, size_t towers) const
    {
        Rng rng(seed);
        ResiduePoly p;
        p.domain = ResidueDomain::Coeff;
        for (size_t t = 0; t < towers; ++t)
            p.towers.push_back(
                randomPoly(basis.modulus(t), kN, rng));
        return p;
    }
};

TEST(ResiduePoly, RoundTripBitIdenticalOnEveryBackend)
{
    const size_t towers = 3;
    Fixture fx(towers);
    const ResiduePoly original = fx.randomCoeffPoly(7, towers);

    // Host-transform reference round trip.
    ResiduePoly host_poly = original;
    fx.ops.toEval(host_poly);
    EXPECT_TRUE(host_poly.inEval());
    const ResiduePoly host_eval = host_poly;
    fx.ops.toCoeff(host_poly);
    EXPECT_EQ(host_poly, original);

    // Serial device, pooled device, CPU reference backend: the same
    // transitions, bit-identical towers in both domains.
    const auto run_device = [&](std::shared_ptr<RpuDevice> device,
                                const char *label) {
        Fixture dfx(towers);
        device->setParallelism(
            std::string(label) == "pooled" ? 4 : 1);
        dfx.ops.setDevice(device);
        ResiduePoly p = original;
        dfx.ops.toEval(p);
        for (size_t t = 0; t < towers; ++t) {
            EXPECT_EQ(p.towers[t], host_eval.towers[t])
                << label << " tower " << t;
        }
        dfx.ops.toCoeff(p);
        for (size_t t = 0; t < towers; ++t) {
            EXPECT_EQ(p.towers[t], original.towers[t])
                << label << " tower " << t;
        }
    };
    run_device(std::make_shared<RpuDevice>(), "serial");
    run_device(std::make_shared<RpuDevice>(), "pooled");
    run_device(std::make_shared<RpuDevice>(
                   std::make_unique<CpuReferenceBackend>()),
               "cpu-reference");
}

TEST(ResiduePoly, ConvertElidesResidentOperandsAndCountsThem)
{
    const size_t towers = 2;
    Fixture fx(towers);
    const auto device = std::make_shared<RpuDevice>();
    fx.ops.setDevice(device);

    ResiduePoly a = fx.randomCoeffPoly(11, towers);
    ResiduePoly b = fx.randomCoeffPoly(13, towers);
    fx.ops.toEval(a); // a is now resident
    device->resetCounters();

    // Mixed batch: a is already Eval (elided), b converts.
    fx.ops.convert({&a, &b}, ResidueDomain::Eval);
    const DeviceStats s = device->stats();
    EXPECT_EQ(s.transformsElided, towers);
    EXPECT_EQ(s.forwardTransforms, towers);
    EXPECT_TRUE(a.inEval());
    EXPECT_TRUE(b.inEval());

    // Fully resident batch: no launch at all, everything elided.
    device->resetCounters();
    fx.ops.convert({&a, &b}, ResidueDomain::Eval);
    EXPECT_EQ(device->stats().launches, 0u);
    EXPECT_EQ(device->stats().transformsElided, 2 * towers);
}

TEST(ResiduePoly, EvalPointwiseMatchesFusedNegacyclicProduct)
{
    // NTT -> pointwise -> INTT through ResidueOps must reproduce the
    // fused single-launch negacyclic product bit for bit: the domain
    // machinery changes the dispatch, never the math.
    const size_t towers = 3;
    Fixture fx(towers);
    const auto device = std::make_shared<RpuDevice>();
    fx.ops.setDevice(device);

    ResiduePoly a = fx.randomCoeffPoly(17, towers);
    ResiduePoly b = fx.randomCoeffPoly(19, towers);
    const ResiduePoly a0 = a;
    const ResiduePoly b0 = b;

    fx.ops.convert({&a, &b}, ResidueDomain::Eval);
    ResiduePoly prod = fx.ops.mulEval(a, b);
    fx.ops.toCoeff(prod);

    const auto fused = device->mulTowers(kN, fx.basis.primes(),
                                         a0.towers, b0.towers);
    for (size_t t = 0; t < towers; ++t)
        EXPECT_EQ(prod.towers[t], fused[t]) << "tower " << t;
}

TEST(ResiduePoly, AddSubRoundTripInBothDomains)
{
    // sub is add's exact inverse, tower for tower, in either
    // residency — the algebra the RNS-resident BFV add/sub ride on.
    const size_t towers = 2;
    Fixture fx(towers);
    ResiduePoly a = fx.randomCoeffPoly(37, towers);
    ResiduePoly b = fx.randomCoeffPoly(41, towers);

    const ResiduePoly coeff_rt = fx.ops.sub(fx.ops.add(a, b), b);
    EXPECT_EQ(coeff_rt, a);

    fx.ops.convert({&a, &b}, ResidueDomain::Eval);
    const ResiduePoly eval_rt = fx.ops.sub(fx.ops.add(a, b), b);
    EXPECT_EQ(eval_rt, a);
    EXPECT_TRUE(eval_rt.inEval());
}

TEST(ResiduePoly, SharedRightOperandAndPrefixLevels)
{
    // mulEvalShared against one plaintext, at two different levels:
    // the lower level uses the plaintext's tower prefix, matching a
    // per-level host computation exactly.
    const size_t towers = 3;
    Fixture fx(towers);

    ResiduePoly x = fx.randomCoeffPoly(23, towers);
    ResiduePoly y = fx.randomCoeffPoly(29, towers);
    ResiduePoly pt = fx.randomCoeffPoly(31, towers);
    fx.ops.convert({&x, &y, &pt}, ResidueDomain::Eval);

    const std::vector<const ResiduePoly *> views = {&x, &y};
    std::vector<ResiduePoly> both = fx.ops.mulEvalShared(views, pt);
    ASSERT_EQ(both.size(), 2u);
    for (size_t t = 0; t < towers; ++t) {
        EXPECT_EQ(both[0].towers[t],
                  polyPointwise(fx.basis.modulus(t), x.towers[t],
                                pt.towers[t]));
        EXPECT_EQ(both[1].towers[t],
                  polyPointwise(fx.basis.modulus(t), y.towers[t],
                                pt.towers[t]));
    }

    // A lower-level operand against the same full-chain plaintext:
    // the towers parameter selects the prefix, no copy needed.
    const ResiduePoly x_low = x.prefix(towers - 1);
    const std::vector<ResiduePoly> low_v =
        fx.ops.mulEvalShared({&x_low}, pt, towers - 1);
    const ResiduePoly &low = low_v[0];
    ASSERT_EQ(low.towerCount(), towers - 1);
    for (size_t t = 0; t + 1 < towers; ++t) {
        EXPECT_EQ(low.towers[t], both[0].towers[t])
            << "prefix tower " << t;
    }
}

} // namespace
} // namespace rpu
