/**
 * @file
 * Worker-pool tests: result delivery through futures, FIFO draining
 * on shutdown, exception propagation, and many-producer submission —
 * the substrate RpuDevice's parallel launch paths stand on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rpu/thread_pool.hh"

namespace rpu {
namespace {

TEST(ThreadPool, DeliversResultsInSubmissionOrder)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor joins only after every queued job has run.
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ManyProducersOneQueue)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &sum, p] {
            std::vector<std::future<void>> futures;
            for (int i = 0; i < 16; ++i) {
                futures.push_back(pool.submit(
                    [&sum, p, i] { sum += uint64_t(p * 100 + i); }));
            }
            for (auto &f : futures)
                f.get();
        });
    }
    for (auto &t : producers)
        t.join();

    uint64_t expected = 0;
    for (int p = 0; p < 4; ++p)
        for (int i = 0; i < 16; ++i)
            expected += uint64_t(p * 100 + i);
    EXPECT_EQ(sum.load(), expected);
}

} // namespace
} // namespace rpu
