/**
 * @file
 * Direct tests of the LayoutOracle: position tracking through
 * shuffles, butterfly pairing validation, twiddle-pattern derivation
 * against hand computation, and store placement checking.
 */

#include <gtest/gtest.h>

#include "codegen/layout_oracle.hh"
#include "modmath/primegen.hh"

namespace rpu {
namespace {

constexpr unsigned VL = arch::kVectorLength;

class OracleTest : public testing::Test
{
  protected:
    OracleTest()
        : mod(nttPrime(60, 1024)), tw(mod, 1024), oracle(1024)
    {
    }

    Modulus mod;
    TwiddleTable tw;
    LayoutOracle oracle;
};

TEST_F(OracleTest, ContiguousTags)
{
    oracle.setContiguous(3, 512);
    const auto &t = oracle.tags(3);
    for (unsigned i = 0; i < VL; ++i)
        EXPECT_EQ(t[i], 512 + i);
    EXPECT_TRUE(oracle.tracked(3));
    oracle.clear(3);
    EXPECT_FALSE(oracle.tracked(3));
}

TEST_F(OracleTest, UntrackedAccessPanics)
{
    EXPECT_DEATH(oracle.tags(5), "not layout-tracked");
}

TEST_F(OracleTest, OutOfRangeTagPanics)
{
    LayoutOracle::Tags t(VL, 1024); // == n, out of range
    EXPECT_DEATH(oracle.setTags(1, std::move(t)), "out of range");
}

TEST_F(OracleTest, ShufflePermutations)
{
    oracle.setContiguous(1, 0);
    oracle.setContiguous(2, 512);
    oracle.applyShuffle(Opcode::UNPKLO, 3, 1, 2);
    oracle.applyShuffle(Opcode::UNPKHI, 4, 1, 2);
    EXPECT_EQ(oracle.tags(3)[0], 0u);
    EXPECT_EQ(oracle.tags(3)[1], 512u);
    EXPECT_EQ(oracle.tags(3)[510], 255u);
    EXPECT_EQ(oracle.tags(3)[511], 767u);
    EXPECT_EQ(oracle.tags(4)[0], 256u);
    EXPECT_EQ(oracle.tags(4)[1], 768u);

    // PK pair undoes the UNPK pair.
    oracle.applyShuffle(Opcode::PKLO, 5, 3, 4);
    oracle.applyShuffle(Opcode::PKHI, 6, 3, 4);
    EXPECT_EQ(oracle.tags(5), oracle.tags(1));
    EXPECT_EQ(oracle.tags(6), oracle.tags(2));
}

TEST_F(OracleTest, VerticalButterflyTwiddles)
{
    // Stage 0 on a 1024-ring: gap 512, one block, one twiddle
    // rootPower(1) for every lane.
    oracle.setContiguous(1, 0);
    oracle.setContiguous(2, 512);
    const auto pattern = oracle.butterflyTwiddles(tw, 0, 1, 2);
    for (u128 v : pattern)
        EXPECT_EQ(v, tw.rootPower(1));
}

TEST_F(OracleTest, IntraButterflyTwiddlesAfterUnpack)
{
    // After the first intra unpack the stage-1 (gap 256) butterflies
    // alternate between blocks 0 and 1: pattern [w(2), w(3), ...].
    oracle.setContiguous(1, 0);
    oracle.setContiguous(2, 512);
    oracle.applyShuffle(Opcode::UNPKLO, 3, 1, 2);
    oracle.applyShuffle(Opcode::UNPKHI, 4, 1, 2);
    const auto pattern = oracle.butterflyTwiddles(tw, 1, 3, 4);
    for (unsigned lane = 0; lane < VL; ++lane)
        EXPECT_EQ(pattern[lane], tw.rootPower(2 + lane % 2)) << lane;
}

TEST_F(OracleTest, InverseTwiddlesAreInverses)
{
    oracle.setContiguous(1, 0);
    oracle.setContiguous(2, 512);
    const auto fwd = oracle.butterflyTwiddles(tw, 0, 1, 2);
    const auto inv = oracle.inverseButterflyTwiddles(tw, 0, 1, 2);
    for (unsigned lane = 0; lane < VL; ++lane)
        EXPECT_EQ(mod.mul(fwd[lane], inv[lane]), u128(1));
}

TEST_F(OracleTest, BadPairingPanics)
{
    // Pairing (0..511) with (0..511) is never a valid butterfly.
    oracle.setContiguous(1, 0);
    oracle.setContiguous(2, 0);
    EXPECT_DEATH(oracle.butterflyTwiddles(tw, 0, 1, 2),
                 "pairing broken");
}

TEST_F(OracleTest, WrongStagePanicsRightStagePasses)
{
    // Positions (512.., 1536..) differ by 1024 = the stage-0 gap of
    // n=2048, with correct block alignment, so stage 0 validates;
    // stage 1 (gap 512) must reject the same pairing.
    LayoutOracle big(2048);
    const Modulus mod2(nttPrime(60, 2048));
    const TwiddleTable tw2(mod2, 2048);
    big.setContiguous(1, 512);
    big.setContiguous(2, 1536);
    const auto ok = big.butterflyTwiddles(tw2, 0, 1, 2);
    EXPECT_EQ(ok[0], tw2.rootPower(1));
    EXPECT_DEATH(big.butterflyTwiddles(tw2, 1, 1, 2), "pairing broken");
}

TEST_F(OracleTest, MisalignedBlockPanics)
{
    // Positions (512.., 1024..) have the stage-1 gap of 512 for
    // n=2048, but 512 sits in the upper half of its 1024-wide block:
    // that pairing would double-butterfly the block.
    LayoutOracle big(2048);
    const Modulus mod2(nttPrime(60, 2048));
    const TwiddleTable tw2(mod2, 2048);
    big.setContiguous(1, 512);
    big.setContiguous(2, 1024);
    EXPECT_DEATH(big.butterflyTwiddles(tw2, 1, 1, 2), "pairing broken");
}

TEST_F(OracleTest, CommitButterflyPreservesPositions)
{
    oracle.setContiguous(1, 0);
    oracle.setContiguous(2, 512);
    oracle.commitButterfly(1, 2, 7, 8);
    EXPECT_EQ(oracle.tags(7)[0], 0u);
    EXPECT_EQ(oracle.tags(8)[0], 512u);
}

TEST_F(OracleTest, CheckStoreContiguous)
{
    oracle.setContiguous(1, 512);
    oracle.checkStore(1, 512, AddrMode::CONTIGUOUS, 0); // ok
    EXPECT_DEATH(oracle.checkStore(1, 0, AddrMode::CONTIGUOUS, 0),
                 "misplacement");
}

TEST_F(OracleTest, CheckStoreStrided)
{
    // Even positions in lane order: a stride-2 store places them.
    LayoutOracle::Tags t(VL);
    for (unsigned i = 0; i < VL; ++i)
        t[i] = 2 * i;
    oracle.setTags(1, std::move(t));
    oracle.checkStore(1, 0, AddrMode::STRIDED, 1); // ok
    EXPECT_DEATH(oracle.checkStore(1, 0, AddrMode::CONTIGUOUS, 0),
                 "misplacement");
}

} // namespace
} // namespace rpu
