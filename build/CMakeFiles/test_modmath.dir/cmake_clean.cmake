file(REMOVE_RECURSE
  "CMakeFiles/test_modmath.dir/tests/test_modmath.cc.o"
  "CMakeFiles/test_modmath.dir/tests/test_modmath.cc.o.d"
  "test_modmath"
  "test_modmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
