# Empty dependencies file for test_modmath.
# This may be replaced when dependencies are built.
