# Empty dependencies file for fig03_area_latency.
# This may be replaced when dependencies are built.
