file(REMOVE_RECURSE
  "CMakeFiles/fig03_area_latency.dir/bench/fig03_area_latency.cc.o"
  "CMakeFiles/fig03_area_latency.dir/bench/fig03_area_latency.cc.o.d"
  "fig03_area_latency"
  "fig03_area_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_area_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
