file(REMOVE_RECURSE
  "CMakeFiles/test_fused_kernels.dir/tests/test_fused_kernels.cc.o"
  "CMakeFiles/test_fused_kernels.dir/tests/test_fused_kernels.cc.o.d"
  "test_fused_kernels"
  "test_fused_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fused_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
