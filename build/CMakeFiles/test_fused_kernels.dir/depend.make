# Empty dependencies file for test_fused_kernels.
# This may be replaced when dependencies are built.
