file(REMOVE_RECURSE
  "CMakeFiles/fig06_code_optimization.dir/bench/fig06_code_optimization.cc.o"
  "CMakeFiles/fig06_code_optimization.dir/bench/fig06_code_optimization.cc.o.d"
  "fig06_code_optimization"
  "fig06_code_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_code_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
