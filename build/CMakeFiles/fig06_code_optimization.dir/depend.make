# Empty dependencies file for fig06_code_optimization.
# This may be replaced when dependencies are built.
