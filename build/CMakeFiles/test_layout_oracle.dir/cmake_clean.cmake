file(REMOVE_RECURSE
  "CMakeFiles/test_layout_oracle.dir/tests/test_layout_oracle.cc.o"
  "CMakeFiles/test_layout_oracle.dir/tests/test_layout_oracle.cc.o.d"
  "test_layout_oracle"
  "test_layout_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
