# Empty dependencies file for test_layout_oracle.
# This may be replaced when dependencies are built.
