# Empty dependencies file for fig04_perf_per_area.
# This may be replaced when dependencies are built.
