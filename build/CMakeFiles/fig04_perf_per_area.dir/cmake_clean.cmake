file(REMOVE_RECURSE
  "CMakeFiles/fig04_perf_per_area.dir/bench/fig04_perf_per_area.cc.o"
  "CMakeFiles/fig04_perf_per_area.dir/bench/fig04_perf_per_area.cc.o.d"
  "fig04_perf_per_area"
  "fig04_perf_per_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_perf_per_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
