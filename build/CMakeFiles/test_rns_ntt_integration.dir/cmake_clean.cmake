file(REMOVE_RECURSE
  "CMakeFiles/test_rns_ntt_integration.dir/tests/test_rns_ntt_integration.cc.o"
  "CMakeFiles/test_rns_ntt_integration.dir/tests/test_rns_ntt_integration.cc.o.d"
  "test_rns_ntt_integration"
  "test_rns_ntt_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rns_ntt_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
