# Empty dependencies file for test_rns_ntt_integration.
# This may be replaced when dependencies are built.
