# Empty dependencies file for fig07_multiplier_sensitivity.
# This may be replaced when dependencies are built.
