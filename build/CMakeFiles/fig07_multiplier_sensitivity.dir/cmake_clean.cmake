file(REMOVE_RECURSE
  "CMakeFiles/fig07_multiplier_sensitivity.dir/bench/fig07_multiplier_sensitivity.cc.o"
  "CMakeFiles/fig07_multiplier_sensitivity.dir/bench/fig07_multiplier_sensitivity.cc.o.d"
  "fig07_multiplier_sensitivity"
  "fig07_multiplier_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_multiplier_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
