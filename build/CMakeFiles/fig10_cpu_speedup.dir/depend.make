# Empty dependencies file for fig10_cpu_speedup.
# This may be replaced when dependencies are built.
