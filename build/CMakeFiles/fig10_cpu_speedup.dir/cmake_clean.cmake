file(REMOVE_RECURSE
  "CMakeFiles/fig10_cpu_speedup.dir/bench/fig10_cpu_speedup.cc.o"
  "CMakeFiles/fig10_cpu_speedup.dir/bench/fig10_cpu_speedup.cc.o.d"
  "fig10_cpu_speedup"
  "fig10_cpu_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
