file(REMOVE_RECURSE
  "librpu.a"
)
