
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cpu_ntt128.cc" "CMakeFiles/rpu.dir/src/baseline/cpu_ntt128.cc.o" "gcc" "CMakeFiles/rpu.dir/src/baseline/cpu_ntt128.cc.o.d"
  "/root/repo/src/baseline/cpu_ntt64.cc" "CMakeFiles/rpu.dir/src/baseline/cpu_ntt64.cc.o" "gcc" "CMakeFiles/rpu.dir/src/baseline/cpu_ntt64.cc.o.d"
  "/root/repo/src/codegen/builder.cc" "CMakeFiles/rpu.dir/src/codegen/builder.cc.o" "gcc" "CMakeFiles/rpu.dir/src/codegen/builder.cc.o.d"
  "/root/repo/src/codegen/layout_oracle.cc" "CMakeFiles/rpu.dir/src/codegen/layout_oracle.cc.o" "gcc" "CMakeFiles/rpu.dir/src/codegen/layout_oracle.cc.o.d"
  "/root/repo/src/codegen/ntt_codegen.cc" "CMakeFiles/rpu.dir/src/codegen/ntt_codegen.cc.o" "gcc" "CMakeFiles/rpu.dir/src/codegen/ntt_codegen.cc.o.d"
  "/root/repo/src/codegen/scheduler.cc" "CMakeFiles/rpu.dir/src/codegen/scheduler.cc.o" "gcc" "CMakeFiles/rpu.dir/src/codegen/scheduler.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/rpu.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/rpu.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/rpu.dir/src/common/random.cc.o" "gcc" "CMakeFiles/rpu.dir/src/common/random.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "CMakeFiles/rpu.dir/src/isa/assembler.cc.o" "gcc" "CMakeFiles/rpu.dir/src/isa/assembler.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "CMakeFiles/rpu.dir/src/isa/encoding.cc.o" "gcc" "CMakeFiles/rpu.dir/src/isa/encoding.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "CMakeFiles/rpu.dir/src/isa/instruction.cc.o" "gcc" "CMakeFiles/rpu.dir/src/isa/instruction.cc.o.d"
  "/root/repo/src/isa/program.cc" "CMakeFiles/rpu.dir/src/isa/program.cc.o" "gcc" "CMakeFiles/rpu.dir/src/isa/program.cc.o.d"
  "/root/repo/src/model/area.cc" "CMakeFiles/rpu.dir/src/model/area.cc.o" "gcc" "CMakeFiles/rpu.dir/src/model/area.cc.o.d"
  "/root/repo/src/model/comparisons.cc" "CMakeFiles/rpu.dir/src/model/comparisons.cc.o" "gcc" "CMakeFiles/rpu.dir/src/model/comparisons.cc.o.d"
  "/root/repo/src/model/energy.cc" "CMakeFiles/rpu.dir/src/model/energy.cc.o" "gcc" "CMakeFiles/rpu.dir/src/model/energy.cc.o.d"
  "/root/repo/src/model/frequency.cc" "CMakeFiles/rpu.dir/src/model/frequency.cc.o" "gcc" "CMakeFiles/rpu.dir/src/model/frequency.cc.o.d"
  "/root/repo/src/model/hbm.cc" "CMakeFiles/rpu.dir/src/model/hbm.cc.o" "gcc" "CMakeFiles/rpu.dir/src/model/hbm.cc.o.d"
  "/root/repo/src/modmath/mod64.cc" "CMakeFiles/rpu.dir/src/modmath/mod64.cc.o" "gcc" "CMakeFiles/rpu.dir/src/modmath/mod64.cc.o.d"
  "/root/repo/src/modmath/modulus.cc" "CMakeFiles/rpu.dir/src/modmath/modulus.cc.o" "gcc" "CMakeFiles/rpu.dir/src/modmath/modulus.cc.o.d"
  "/root/repo/src/modmath/primality.cc" "CMakeFiles/rpu.dir/src/modmath/primality.cc.o" "gcc" "CMakeFiles/rpu.dir/src/modmath/primality.cc.o.d"
  "/root/repo/src/modmath/primegen.cc" "CMakeFiles/rpu.dir/src/modmath/primegen.cc.o" "gcc" "CMakeFiles/rpu.dir/src/modmath/primegen.cc.o.d"
  "/root/repo/src/poly/ntt.cc" "CMakeFiles/rpu.dir/src/poly/ntt.cc.o" "gcc" "CMakeFiles/rpu.dir/src/poly/ntt.cc.o.d"
  "/root/repo/src/poly/polynomial.cc" "CMakeFiles/rpu.dir/src/poly/polynomial.cc.o" "gcc" "CMakeFiles/rpu.dir/src/poly/polynomial.cc.o.d"
  "/root/repo/src/poly/twiddle.cc" "CMakeFiles/rpu.dir/src/poly/twiddle.cc.o" "gcc" "CMakeFiles/rpu.dir/src/poly/twiddle.cc.o.d"
  "/root/repo/src/rlwe/bfv.cc" "CMakeFiles/rpu.dir/src/rlwe/bfv.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rlwe/bfv.cc.o.d"
  "/root/repo/src/rlwe/params.cc" "CMakeFiles/rpu.dir/src/rlwe/params.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rlwe/params.cc.o.d"
  "/root/repo/src/rns/basis.cc" "CMakeFiles/rpu.dir/src/rns/basis.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rns/basis.cc.o.d"
  "/root/repo/src/rns/crt.cc" "CMakeFiles/rpu.dir/src/rns/crt.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rns/crt.cc.o.d"
  "/root/repo/src/rpu/device.cc" "CMakeFiles/rpu.dir/src/rpu/device.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rpu/device.cc.o.d"
  "/root/repo/src/rpu/metrics.cc" "CMakeFiles/rpu.dir/src/rpu/metrics.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rpu/metrics.cc.o.d"
  "/root/repo/src/rpu/runner.cc" "CMakeFiles/rpu.dir/src/rpu/runner.cc.o" "gcc" "CMakeFiles/rpu.dir/src/rpu/runner.cc.o.d"
  "/root/repo/src/sim/arch_config.cc" "CMakeFiles/rpu.dir/src/sim/arch_config.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/arch_config.cc.o.d"
  "/root/repo/src/sim/cycle/busyboard.cc" "CMakeFiles/rpu.dir/src/sim/cycle/busyboard.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/cycle/busyboard.cc.o.d"
  "/root/repo/src/sim/cycle/frontend.cc" "CMakeFiles/rpu.dir/src/sim/cycle/frontend.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/cycle/frontend.cc.o.d"
  "/root/repo/src/sim/cycle/pipelines.cc" "CMakeFiles/rpu.dir/src/sim/cycle/pipelines.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/cycle/pipelines.cc.o.d"
  "/root/repo/src/sim/cycle/simulator.cc" "CMakeFiles/rpu.dir/src/sim/cycle/simulator.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/cycle/simulator.cc.o.d"
  "/root/repo/src/sim/functional/executor.cc" "CMakeFiles/rpu.dir/src/sim/functional/executor.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/functional/executor.cc.o.d"
  "/root/repo/src/sim/functional/state.cc" "CMakeFiles/rpu.dir/src/sim/functional/state.cc.o" "gcc" "CMakeFiles/rpu.dir/src/sim/functional/state.cc.o.d"
  "/root/repo/src/wide/biguint.cc" "CMakeFiles/rpu.dir/src/wide/biguint.cc.o" "gcc" "CMakeFiles/rpu.dir/src/wide/biguint.cc.o.d"
  "/root/repo/src/wide/u256.cc" "CMakeFiles/rpu.dir/src/wide/u256.cc.o" "gcc" "CMakeFiles/rpu.dir/src/wide/u256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
