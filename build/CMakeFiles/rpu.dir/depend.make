# Empty dependencies file for rpu.
# This may be replaced when dependencies are built.
