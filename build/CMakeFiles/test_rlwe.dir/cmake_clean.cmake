file(REMOVE_RECURSE
  "CMakeFiles/test_rlwe.dir/tests/test_rlwe.cc.o"
  "CMakeFiles/test_rlwe.dir/tests/test_rlwe.cc.o.d"
  "test_rlwe"
  "test_rlwe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlwe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
