# Empty dependencies file for test_rlwe.
# This may be replaced when dependencies are built.
