file(REMOVE_RECURSE
  "CMakeFiles/fig08_crossbar_sensitivity.dir/bench/fig08_crossbar_sensitivity.cc.o"
  "CMakeFiles/fig08_crossbar_sensitivity.dir/bench/fig08_crossbar_sensitivity.cc.o.d"
  "fig08_crossbar_sensitivity"
  "fig08_crossbar_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_crossbar_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
