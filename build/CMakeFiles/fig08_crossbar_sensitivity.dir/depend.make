# Empty dependencies file for fig08_crossbar_sensitivity.
# This may be replaced when dependencies are built.
