file(REMOVE_RECURSE
  "CMakeFiles/tab01_isa.dir/bench/tab01_isa.cc.o"
  "CMakeFiles/tab01_isa.dir/bench/tab01_isa.cc.o.d"
  "tab01_isa"
  "tab01_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
