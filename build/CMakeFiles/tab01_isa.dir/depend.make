# Empty dependencies file for tab01_isa.
# This may be replaced when dependencies are built.
