file(REMOVE_RECURSE
  "CMakeFiles/test_builder.dir/tests/test_builder.cc.o"
  "CMakeFiles/test_builder.dir/tests/test_builder.cc.o.d"
  "test_builder"
  "test_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
