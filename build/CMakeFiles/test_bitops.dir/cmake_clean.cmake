file(REMOVE_RECURSE
  "CMakeFiles/test_bitops.dir/tests/test_bitops.cc.o"
  "CMakeFiles/test_bitops.dir/tests/test_bitops.cc.o.d"
  "test_bitops"
  "test_bitops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
