file(REMOVE_RECURSE
  "CMakeFiles/tab02_f1_comparison.dir/bench/tab02_f1_comparison.cc.o"
  "CMakeFiles/tab02_f1_comparison.dir/bench/tab02_f1_comparison.cc.o.d"
  "tab02_f1_comparison"
  "tab02_f1_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_f1_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
