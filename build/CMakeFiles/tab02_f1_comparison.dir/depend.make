# Empty dependencies file for tab02_f1_comparison.
# This may be replaced when dependencies are built.
