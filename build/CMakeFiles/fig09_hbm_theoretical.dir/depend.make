# Empty dependencies file for fig09_hbm_theoretical.
# This may be replaced when dependencies are built.
