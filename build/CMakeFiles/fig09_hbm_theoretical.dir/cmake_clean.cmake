file(REMOVE_RECURSE
  "CMakeFiles/fig09_hbm_theoretical.dir/bench/fig09_hbm_theoretical.cc.o"
  "CMakeFiles/fig09_hbm_theoretical.dir/bench/fig09_hbm_theoretical.cc.o.d"
  "fig09_hbm_theoretical"
  "fig09_hbm_theoretical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hbm_theoretical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
