file(REMOVE_RECURSE
  "CMakeFiles/fig05_breakdowns.dir/bench/fig05_breakdowns.cc.o"
  "CMakeFiles/fig05_breakdowns.dir/bench/fig05_breakdowns.cc.o.d"
  "fig05_breakdowns"
  "fig05_breakdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_breakdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
