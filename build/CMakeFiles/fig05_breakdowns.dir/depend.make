# Empty dependencies file for fig05_breakdowns.
# This may be replaced when dependencies are built.
