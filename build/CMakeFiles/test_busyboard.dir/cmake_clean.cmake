file(REMOVE_RECURSE
  "CMakeFiles/test_busyboard.dir/tests/test_busyboard.cc.o"
  "CMakeFiles/test_busyboard.dir/tests/test_busyboard.cc.o.d"
  "test_busyboard"
  "test_busyboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_busyboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
