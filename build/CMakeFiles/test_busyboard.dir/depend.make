# Empty dependencies file for test_busyboard.
# This may be replaced when dependencies are built.
