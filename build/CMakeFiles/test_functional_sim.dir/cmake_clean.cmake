file(REMOVE_RECURSE
  "CMakeFiles/test_functional_sim.dir/tests/test_functional_sim.cc.o"
  "CMakeFiles/test_functional_sim.dir/tests/test_functional_sim.cc.o.d"
  "test_functional_sim"
  "test_functional_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
