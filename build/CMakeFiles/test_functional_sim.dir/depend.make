# Empty dependencies file for test_functional_sim.
# This may be replaced when dependencies are built.
