file(REMOVE_RECURSE
  "CMakeFiles/ntt_codegen_tour.dir/examples/ntt_codegen_tour.cpp.o"
  "CMakeFiles/ntt_codegen_tour.dir/examples/ntt_codegen_tour.cpp.o.d"
  "ntt_codegen_tour"
  "ntt_codegen_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntt_codegen_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
