# Empty dependencies file for ntt_codegen_tour.
# This may be replaced when dependencies are built.
