file(REMOVE_RECURSE
  "CMakeFiles/abl01_microarch.dir/bench/abl01_microarch.cc.o"
  "CMakeFiles/abl01_microarch.dir/bench/abl01_microarch.cc.o.d"
  "abl01_microarch"
  "abl01_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
