# Empty dependencies file for abl01_microarch.
# This may be replaced when dependencies are built.
