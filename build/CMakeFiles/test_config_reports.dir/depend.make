# Empty dependencies file for test_config_reports.
# This may be replaced when dependencies are built.
