file(REMOVE_RECURSE
  "CMakeFiles/test_config_reports.dir/tests/test_config_reports.cc.o"
  "CMakeFiles/test_config_reports.dir/tests/test_config_reports.cc.o.d"
  "test_config_reports"
  "test_config_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
