# Empty dependencies file for he_pipeline.
# This may be replaced when dependencies are built.
