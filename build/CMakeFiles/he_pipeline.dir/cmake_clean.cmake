file(REMOVE_RECURSE
  "CMakeFiles/he_pipeline.dir/examples/he_pipeline.cpp.o"
  "CMakeFiles/he_pipeline.dir/examples/he_pipeline.cpp.o.d"
  "he_pipeline"
  "he_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/he_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
