file(REMOVE_RECURSE
  "CMakeFiles/test_cycle_sim.dir/tests/test_cycle_sim.cc.o"
  "CMakeFiles/test_cycle_sim.dir/tests/test_cycle_sim.cc.o.d"
  "test_cycle_sim"
  "test_cycle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
