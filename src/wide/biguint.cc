#include "wide/biguint.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rpu {

BigUInt::BigUInt(uint64_t v)
{
    if (v != 0)
        limbs_.push_back(v);
}

BigUInt
BigUInt::fromU128(u128 v)
{
    BigUInt r;
    if (v != 0) {
        r.limbs_.push_back(uint64_t(v));
        const uint64_t hi = uint64_t(v >> 64);
        if (hi != 0)
            r.limbs_.push_back(hi);
    }
    return r;
}

BigUInt
BigUInt::fromDecimal(const std::string &s)
{
    if (s.empty())
        rpu_fatal("empty decimal string");
    BigUInt r;
    for (char c : s) {
        if (c < '0' || c > '9')
            rpu_fatal("malformed decimal digit '%c'", c);
        r = r * BigUInt(10) + BigUInt(uint64_t(c - '0'));
    }
    return r;
}

void
BigUInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

size_t
BigUInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    const uint64_t top = limbs_.back();
    return (limbs_.size() - 1) * 64 + (64 - __builtin_clzll(top));
}

u128
BigUInt::low128() const
{
    u128 v = limbs_.empty() ? 0 : limbs_[0];
    if (limbs_.size() > 1)
        v |= u128(limbs_[1]) << 64;
    return v;
}

double
BigUInt::toDouble() const
{
    double r = 0.0;
    for (size_t i = limbs_.size(); i-- > 0;)
        r = r * 18446744073709551616.0 + double(limbs_[i]);
    return r;
}

BigUInt
BigUInt::operator+(const BigUInt &o) const
{
    BigUInt r;
    const size_t n = std::max(limbs_.size(), o.limbs_.size());
    r.limbs_.resize(n, 0);
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        u128 sum = carry;
        if (i < limbs_.size())
            sum += limbs_[i];
        if (i < o.limbs_.size())
            sum += o.limbs_[i];
        r.limbs_[i] = uint64_t(sum);
        carry = sum >> 64;
    }
    if (carry != 0)
        r.limbs_.push_back(uint64_t(carry));
    return r;
}

BigUInt
BigUInt::operator-(const BigUInt &o) const
{
    rpu_assert(!(*this < o), "BigUInt subtraction would underflow");
    BigUInt r;
    r.limbs_.resize(limbs_.size(), 0);
    uint64_t borrow = 0;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        const uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const uint64_t lhs = limbs_[i];
        const uint64_t d1 = lhs - rhs;
        const uint64_t b1 = lhs < rhs ? 1 : 0;
        const uint64_t d2 = d1 - borrow;
        const uint64_t b2 = d1 < borrow ? 1 : 0;
        r.limbs_[i] = d2;
        borrow = b1 | b2;
    }
    rpu_assert(borrow == 0, "BigUInt subtraction borrow out");
    r.trim();
    return r;
}

BigUInt
BigUInt::operator*(const BigUInt &o) const
{
    if (isZero() || o.isZero())
        return {};
    BigUInt r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        u128 carry = 0;
        for (size_t j = 0; j < o.limbs_.size(); ++j) {
            u128 cur = u128(limbs_[i]) * o.limbs_[j] +
                       r.limbs_[i + j] + carry;
            r.limbs_[i + j] = uint64_t(cur);
            carry = cur >> 64;
        }
        size_t k = i + o.limbs_.size();
        while (carry != 0) {
            u128 cur = u128(r.limbs_[k]) + carry;
            r.limbs_[k] = uint64_t(cur);
            carry = cur >> 64;
            ++k;
        }
    }
    r.trim();
    return r;
}

std::pair<BigUInt, BigUInt>
BigUInt::divmod(const BigUInt &divisor) const
{
    rpu_assert(!divisor.isZero(), "BigUInt division by zero");
    if (*this < divisor)
        return {BigUInt(), *this};
    if (divisor.limbs_.size() == 1) {
        // Fast single-limb path.
        BigUInt q;
        q.limbs_.resize(limbs_.size(), 0);
        const uint64_t d = divisor.limbs_[0];
        u128 rem = 0;
        for (size_t i = limbs_.size(); i-- > 0;) {
            const u128 cur = (rem << 64) | limbs_[i];
            q.limbs_[i] = uint64_t(cur / d);
            rem = cur % d;
        }
        q.trim();
        return {q, BigUInt(uint64_t(rem))};
    }

    // Knuth TAOCP vol.2 Algorithm D. Normalise so the divisor's top
    // limb has its high bit set, then estimate one quotient limb at a
    // time with a 128/64 division and correct it (at most twice).
    const size_t n = divisor.limbs_.size();
    const size_t m = limbs_.size() - n;
    const unsigned shift = __builtin_clzll(divisor.limbs_.back());

    const BigUInt u_norm = *this << shift;
    const BigUInt v_norm = divisor << shift;

    std::vector<uint64_t> u(u_norm.limbs_);
    u.resize(limbs_.size() + 1, 0);
    const std::vector<uint64_t> &v = v_norm.limbs_;

    BigUInt q;
    q.limbs_.assign(m + 1, 0);

    for (size_t j = m + 1; j-- > 0;) {
        const u128 top = (u128(u[j + n]) << 64) | u[j + n - 1];
        u128 qhat = top / v[n - 1];
        u128 rhat = top % v[n - 1];
        const u128 limb_max = ~uint64_t(0);
        while (qhat > limb_max ||
               qhat * v[n - 2] > ((rhat << 64) | u[j + n - 2])) {
            --qhat;
            rhat += v[n - 1];
            if (rhat > limb_max)
                break;
        }

        // Multiply-and-subtract qhat * v from u[j .. j+n].
        u128 borrow = 0;
        u128 carry = 0;
        for (size_t i = 0; i < n; ++i) {
            const u128 p = qhat * v[i] + carry;
            carry = p >> 64;
            const uint64_t plo = uint64_t(p);
            const uint64_t before = u[i + j];
            const uint64_t mid = before - plo;
            uint64_t b = before < plo ? 1 : 0;
            const uint64_t after = mid - uint64_t(borrow);
            b += mid < uint64_t(borrow) ? 1 : 0;
            u[i + j] = after;
            borrow = b;
        }
        const u128 topsub = carry + borrow;
        if (u128(u[j + n]) < topsub) {
            // qhat was one too large: add back.
            u[j + n] = uint64_t(u128(u[j + n]) - topsub);
            --qhat;
            u128 c = 0;
            for (size_t i = 0; i < n; ++i) {
                const u128 s = u128(u[i + j]) + v[i] + c;
                u[i + j] = uint64_t(s);
                c = s >> 64;
            }
            u[j + n] += uint64_t(c);
        } else {
            u[j + n] = uint64_t(u128(u[j + n]) - topsub);
        }
        q.limbs_[j] = uint64_t(qhat);
    }

    q.trim();
    BigUInt rem;
    rem.limbs_.assign(u.begin(), u.begin() + n);
    rem.trim();
    return {q, rem >> shift};
}

BigUInt
BigUInt::operator<<(size_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    const size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    BigUInt r;
    r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        r.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0)
            r.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
    r.trim();
    return r;
}

BigUInt
BigUInt::operator>>(size_t bits) const
{
    const size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    if (limb_shift >= limbs_.size())
        return {};
    BigUInt r;
    r.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
    if (bit_shift != 0) {
        for (size_t i = 0; i < r.limbs_.size(); ++i) {
            r.limbs_[i] >>= bit_shift;
            if (i + 1 < r.limbs_.size())
                r.limbs_[i] |= r.limbs_[i + 1] << (64 - bit_shift);
        }
    }
    r.trim();
    return r;
}

std::strong_ordering
BigUInt::operator<=>(const BigUInt &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() <=> o.limbs_.size();
    for (size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i])
            return limbs_[i] <=> o.limbs_[i];
    }
    return std::strong_ordering::equal;
}

std::string
BigUInt::toDecimal() const
{
    if (isZero())
        return "0";
    std::string out;
    BigUInt cur = *this;
    const BigUInt ten(10);
    while (!cur.isZero()) {
        auto [q, r] = cur.divmod(ten);
        out.push_back(char('0' + r.low64()));
        cur = q;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace rpu
