/**
 * @file
 * Arbitrary-precision unsigned integers.
 *
 * The Residue Number System layer (paper section II-B) composes and
 * decomposes values modulo a product of many 128-bit co-prime moduli
 * (the paper's example: a 1600-bit modulus split into 13 towers).
 * That needs a small bignum: this is a straightforward base-2^64
 * implementation with schoolbook multiplication and Knuth Algorithm D
 * division, sized for hundreds-to-thousands of bits, not millions.
 */

#ifndef RPU_WIDE_BIGUINT_HH
#define RPU_WIDE_BIGUINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"

namespace rpu {

/** Arbitrary-precision unsigned integer (little-endian 64-bit limbs). */
class BigUInt
{
  public:
    /** Zero. */
    BigUInt() = default;

    /** From a 64-bit value. */
    BigUInt(uint64_t v);

    /** From a 128-bit value. */
    static BigUInt fromU128(u128 v);

    /** Parse a decimal string; fatal on malformed input. */
    static BigUInt fromDecimal(const std::string &s);

    /** Number of significant bits (0 for zero). */
    size_t bitLength() const;

    bool isZero() const { return limbs_.empty(); }

    /** Low 64 bits. */
    uint64_t low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

    /** Low 128 bits. */
    u128 low128() const;

    /**
     * Nearest double (infinity above ~2^1024). For scale and noise
     * tracking in the RLWE layers, not for exact arithmetic.
     */
    double toDouble() const;

    BigUInt operator+(const BigUInt &o) const;
    BigUInt operator-(const BigUInt &o) const; // requires *this >= o
    BigUInt operator*(const BigUInt &o) const;

    /**
     * Quotient and remainder in one pass (Knuth Algorithm D);
     * .first = quotient, .second = remainder.
     */
    std::pair<BigUInt, BigUInt> divmod(const BigUInt &divisor) const;

    BigUInt operator/(const BigUInt &o) const { return divmod(o).first; }
    BigUInt operator%(const BigUInt &o) const { return divmod(o).second; }

    BigUInt operator<<(size_t bits) const;
    BigUInt operator>>(size_t bits) const;

    std::strong_ordering operator<=>(const BigUInt &o) const;
    bool operator==(const BigUInt &o) const = default;

    /** Decimal rendering (for diagnostics and tests). */
    std::string toDecimal() const;

    /** Access to limbs for tests. */
    const std::vector<uint64_t> &limbs() const { return limbs_; }

  private:
    void trim();

    /** Little-endian limbs with no trailing zero limb; empty == 0. */
    std::vector<uint64_t> limbs_;
};

} // namespace rpu

#endif // RPU_WIDE_BIGUINT_HH
