/**
 * @file
 * 256-bit unsigned arithmetic built on the compiler's native u128.
 *
 * The RPU's LAW engines operate on 128-bit ring elements, so products
 * are 256 bits wide. This header provides exactly the operations the
 * modular-arithmetic layer needs: full multiplication, addition with
 * carry, shifts and comparison.
 */

#ifndef RPU_WIDE_U256_HH
#define RPU_WIDE_U256_HH

#include <cstdint>

#include "common/random.hh"

namespace rpu {

/** A 256-bit unsigned integer as a (hi, lo) pair of native u128. */
struct U256
{
    u128 lo = 0;
    u128 hi = 0;

    constexpr U256() = default;
    constexpr U256(u128 high, u128 low) : lo(low), hi(high) {}

    /** Widen a 128-bit value. */
    static constexpr U256 fromU128(u128 x) { return {0, x}; }

    constexpr bool operator==(const U256 &o) const = default;

    constexpr bool
    operator<(const U256 &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }

    constexpr bool operator>=(const U256 &o) const { return !(*this < o); }
};

/** Full 128x128 -> 256-bit product. */
U256 mulWide(u128 a, u128 b);

/** 256-bit addition; returns the carry-out (0 or 1). */
unsigned addWithCarry(U256 &acc, const U256 &x);

/** 256-bit subtraction acc -= x; returns the borrow-out (0 or 1). */
unsigned subWithBorrow(U256 &acc, const U256 &x);

/** Logical right shift by s in [0, 255]. */
U256 shiftRight(const U256 &x, unsigned s);

/** Logical left shift by s in [0, 255]. */
U256 shiftLeft(const U256 &x, unsigned s);

/**
 * Remainder of a 256-bit value modulo a 128-bit modulus, by binary
 * long division. Slow; used only at setup time (e.g. computing
 * Montgomery constants) and as an independent oracle in tests.
 */
u128 mod256by128(const U256 &x, u128 q);

/**
 * Full quotient and remainder of a 256-bit value by a 128-bit
 * divisor (binary long division; setup/oracle path).
 */
U256 divmod256by128(const U256 &x, u128 q, u128 &remainder);

} // namespace rpu

#endif // RPU_WIDE_U256_HH
