#include "wide/u256.hh"

#include "common/logging.hh"

namespace rpu {

U256
mulWide(u128 a, u128 b)
{
    const u128 mask = (u128(1) << 64) - 1;
    const u128 a0 = a & mask, a1 = a >> 64;
    const u128 b0 = b & mask, b1 = b >> 64;

    const u128 p00 = a0 * b0;
    const u128 p01 = a0 * b1;
    const u128 p10 = a1 * b0;
    const u128 p11 = a1 * b1;

    // Accumulate the middle partial products into the 64-bit-aligned
    // columns, tracking carries explicitly.
    u128 mid = (p00 >> 64) + (p01 & mask) + (p10 & mask);

    U256 r;
    r.lo = (p00 & mask) | (mid << 64);
    r.hi = p11 + (p01 >> 64) + (p10 >> 64) + (mid >> 64);
    return r;
}

unsigned
addWithCarry(U256 &acc, const U256 &x)
{
    acc.lo += x.lo;
    const unsigned carry_lo = acc.lo < x.lo ? 1 : 0;
    acc.hi += x.hi;
    unsigned carry_hi = acc.hi < x.hi ? 1 : 0;
    acc.hi += carry_lo;
    if (acc.hi < carry_lo)
        carry_hi = 1;
    return carry_hi;
}

unsigned
subWithBorrow(U256 &acc, const U256 &x)
{
    const unsigned borrow_lo = acc.lo < x.lo ? 1 : 0;
    acc.lo -= x.lo;
    unsigned borrow_hi = acc.hi < x.hi ? 1 : 0;
    acc.hi -= x.hi;
    if (acc.hi < u128(borrow_lo))
        borrow_hi = 1;
    acc.hi -= borrow_lo;
    return borrow_hi;
}

U256
shiftRight(const U256 &x, unsigned s)
{
    rpu_assert(s < 256, "shift amount %u out of range", s);
    if (s == 0)
        return x;
    if (s >= 128)
        return {0, x.hi >> (s - 128)};
    return {x.hi >> s, (x.lo >> s) | (x.hi << (128 - s))};
}

U256
shiftLeft(const U256 &x, unsigned s)
{
    rpu_assert(s < 256, "shift amount %u out of range", s);
    if (s == 0)
        return x;
    if (s >= 128)
        return {x.lo << (s - 128), 0};
    return {(x.hi << s) | (x.lo >> (128 - s)), x.lo << s};
}

u128
mod256by128(const U256 &x, u128 q)
{
    u128 rem;
    divmod256by128(x, q, rem);
    return rem;
}

U256
divmod256by128(const U256 &x, u128 q, u128 &remainder)
{
    rpu_assert(q != 0, "division by zero");
    // Binary long division over the 256-bit dividend: shift the
    // remainder left one bit at a time, bringing down dividend bits
    // from the top. The remainder always fits in 129 bits; we keep it
    // in 128 bits plus an explicit overflow flag.
    u128 rem = 0;
    U256 quot{0, 0};
    for (int i = 255; i >= 0; --i) {
        const unsigned overflow = (rem >> 127) != 0 ? 1 : 0;
        const u128 bit =
            i >= 128 ? (x.hi >> (i - 128)) & 1 : (x.lo >> i) & 1;
        rem = (rem << 1) | bit;
        if (overflow || rem >= q) {
            rem -= q;
            if (i >= 128)
                quot.hi |= u128(1) << (i - 128);
            else
                quot.lo |= u128(1) << i;
        }
    }
    remainder = rem;
    return quot;
}

} // namespace rpu
