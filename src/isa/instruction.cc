#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace rpu {

InstrClass
instrClass(Opcode op)
{
    switch (op) {
      case Opcode::VLOAD:
      case Opcode::VSTORE:
      case Opcode::SLOAD:
      case Opcode::VBCAST:
      case Opcode::MLOAD:
      case Opcode::ALOAD:
        return InstrClass::LoadStore;
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
      case Opcode::VMULMOD:
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD:
        return InstrClass::Compute;
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        return InstrClass::Shuffle;
    }
    rpu_panic("unknown opcode %u", unsigned(op));
}

std::string
mnemonic(Opcode op, bool bfly)
{
    if (op == Opcode::VMULMOD && bfly)
        return "vbfly";
    switch (op) {
      case Opcode::VLOAD: return "vload";
      case Opcode::VSTORE: return "vstore";
      case Opcode::SLOAD: return "sload";
      case Opcode::VBCAST: return "vbcast";
      case Opcode::VADDMOD: return "vaddmod";
      case Opcode::VSUBMOD: return "vsubmod";
      case Opcode::VMULMOD: return "vmulmod";
      case Opcode::VSADDMOD: return "vsaddmod";
      case Opcode::VSSUBMOD: return "vssubmod";
      case Opcode::VSMULMOD: return "vsmulmod";
      case Opcode::UNPKLO: return "unpklo";
      case Opcode::UNPKHI: return "unpkhi";
      case Opcode::PKLO: return "pklo";
      case Opcode::PKHI: return "pkhi";
      case Opcode::MLOAD: return "mload";
      case Opcode::ALOAD: return "aload";
    }
    rpu_panic("unknown opcode %u", unsigned(op));
}

std::string
addrModeName(AddrMode mode)
{
    switch (mode) {
      case AddrMode::CONTIGUOUS: return "contig";
      case AddrMode::STRIDED: return "strided";
      case AddrMode::STRIDED_SKIP: return "skip";
      case AddrMode::REPEATED: return "repeat";
    }
    rpu_panic("unknown addressing mode %u", unsigned(mode));
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << mnemonic(op, bfly) << " ";
    switch (op) {
      case Opcode::VLOAD:
        os << "v" << int(vd) << ", a" << int(rm) << ", " << address << ", "
           << addrModeName(mode);
        if (mode != AddrMode::CONTIGUOUS || modeValue != 0)
            os << ", " << int(modeValue);
        break;
      case Opcode::VSTORE:
        os << "v" << int(vs) << ", a" << int(rm) << ", " << address << ", "
           << addrModeName(mode);
        if (mode != AddrMode::CONTIGUOUS || modeValue != 0)
            os << ", " << int(modeValue);
        break;
      case Opcode::SLOAD:
        os << "s" << int(rt) << ", " << address;
        break;
      case Opcode::MLOAD:
        os << "m" << int(rt) << ", " << address;
        break;
      case Opcode::ALOAD:
        os << "a" << int(rt) << ", " << address;
        break;
      case Opcode::VBCAST:
        os << "v" << int(vd) << ", a" << int(rm) << ", " << address;
        break;
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
      case Opcode::VMULMOD:
        if (bfly) {
            os << "v" << int(vd) << ", v" << int(vd1) << ", v" << int(vs)
               << ", v" << int(vt) << ", v" << int(vt1) << ", m" << int(rm);
        } else {
            os << "v" << int(vd) << ", v" << int(vs) << ", v" << int(vt)
               << ", m" << int(rm);
        }
        break;
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD:
        os << "v" << int(vd) << ", v" << int(vs) << ", s" << int(rt)
           << ", m" << int(rm);
        break;
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        os << "v" << int(vd) << ", v" << int(vs) << ", v" << int(vt);
        break;
    }
    return os.str();
}

Instruction
Instruction::vload(uint8_t vd, uint8_t arf, uint32_t addr, AddrMode mode,
                   uint8_t value)
{
    Instruction i;
    i.op = Opcode::VLOAD;
    i.vd = vd;
    i.rm = arf;
    i.address = addr;
    i.mode = mode;
    i.modeValue = value;
    return i;
}

Instruction
Instruction::vstore(uint8_t vs, uint8_t arf, uint32_t addr, AddrMode mode,
                    uint8_t value)
{
    Instruction i;
    i.op = Opcode::VSTORE;
    i.vs = vs;
    i.rm = arf;
    i.address = addr;
    i.mode = mode;
    i.modeValue = value;
    return i;
}

Instruction
Instruction::sload(uint8_t rt, uint32_t addr)
{
    Instruction i;
    i.op = Opcode::SLOAD;
    i.rt = rt;
    i.address = addr;
    return i;
}

Instruction
Instruction::vbcast(uint8_t vd, uint8_t arf, uint32_t addr)
{
    Instruction i;
    i.op = Opcode::VBCAST;
    i.vd = vd;
    i.rm = arf;
    i.address = addr;
    return i;
}

Instruction
Instruction::mload(uint8_t rt, uint32_t addr)
{
    Instruction i;
    i.op = Opcode::MLOAD;
    i.rt = rt;
    i.address = addr;
    return i;
}

Instruction
Instruction::aload(uint8_t rt, uint32_t addr)
{
    Instruction i;
    i.op = Opcode::ALOAD;
    i.rt = rt;
    i.address = addr;
    return i;
}

Instruction
Instruction::vv(Opcode op, uint8_t vd, uint8_t vs, uint8_t vt, uint8_t rm)
{
    rpu_assert(op == Opcode::VADDMOD || op == Opcode::VSUBMOD ||
               op == Opcode::VMULMOD, "not a vector-vector compute op");
    Instruction i;
    i.op = op;
    i.vd = vd;
    i.vs = vs;
    i.vt = vt;
    i.rm = rm;
    return i;
}

Instruction
Instruction::vs_(Opcode op, uint8_t vd, uint8_t vs, uint8_t rt, uint8_t rm)
{
    rpu_assert(op == Opcode::VSADDMOD || op == Opcode::VSSUBMOD ||
               op == Opcode::VSMULMOD, "not a vector-scalar compute op");
    Instruction i;
    i.op = op;
    i.vd = vd;
    i.vs = vs;
    i.rt = rt;
    i.rm = rm;
    return i;
}

Instruction
Instruction::butterfly(uint8_t vd, uint8_t vd1, uint8_t vs, uint8_t vt,
                       uint8_t vt1, uint8_t rm)
{
    Instruction i;
    i.op = Opcode::VMULMOD;
    i.bfly = true;
    i.vd = vd;
    i.vd1 = vd1;
    i.vs = vs;
    i.vt = vt;
    i.vt1 = vt1;
    i.rm = rm;
    return i;
}

Instruction
Instruction::shuffle(Opcode op, uint8_t vd, uint8_t vs, uint8_t vt)
{
    rpu_assert(instrClass(op) == InstrClass::Shuffle, "not a shuffle op");
    Instruction i;
    i.op = op;
    i.vd = vd;
    i.vs = vs;
    i.vt = vt;
    return i;
}

} // namespace rpu
