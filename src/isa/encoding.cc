#include "isa/encoding.hh"

#include "common/logging.hh"

namespace rpu {

namespace {

// Field positions from Table I.
constexpr unsigned kVd1Shift = 55;   // [63:55]
constexpr unsigned kVt1Shift = 49;   // [54:49]
constexpr unsigned kBflyShift = 48;  // [48]
constexpr unsigned kOpShift = 44;    // [47:44]
constexpr unsigned kAddrShift = 24;  // [43:24]
constexpr unsigned kVdShift = 18;    // [23:18]
constexpr unsigned kVsShift = 12;    // [17:12] (also MODE)
constexpr unsigned kVtShift = 6;     // [11:6]  (also VALUE / RT)
constexpr unsigned kRmShift = 0;     // [5:0]   (also RT for scalar CI)

constexpr uint64_t kMask6 = 0x3f;
constexpr uint64_t kMask20 = 0xfffff;

void
checkReg(unsigned v, const char *what)
{
    if (v >= 64)
        rpu_fatal("%s register index %u out of range", what, v);
}

} // namespace

uint64_t
encode(const Instruction &instr)
{
    checkReg(instr.vd, "vd");
    checkReg(instr.vd1, "vd1");
    checkReg(instr.vs, "vs");
    checkReg(instr.vt, "vt");
    checkReg(instr.vt1, "vt1");
    checkReg(instr.rm, "rm");
    checkReg(instr.rt, "rt");
    if (instr.address > kMask20)
        rpu_fatal("address offset %u exceeds 20 bits", instr.address);
    if (instr.modeValue >= 64)
        rpu_fatal("mode value %u exceeds 6 bits", instr.modeValue);
    if (instr.bfly && instr.op != Opcode::VMULMOD)
        rpu_fatal("BFLY bit is only valid on vmulmod");

    uint64_t w = uint64_t(instr.op) << kOpShift;
    if (instr.bfly)
        w |= uint64_t(1) << kBflyShift;

    switch (instr.op) {
      case Opcode::VLOAD:
      case Opcode::VSTORE: {
        const unsigned vreg =
            instr.op == Opcode::VLOAD ? instr.vd : instr.vs;
        w |= uint64_t(instr.address) << kAddrShift;
        w |= uint64_t(vreg) << kVdShift;
        w |= uint64_t(instr.mode) << kVsShift;
        w |= uint64_t(instr.modeValue) << kVtShift;
        w |= uint64_t(instr.rm) << kRmShift;
        break;
      }
      case Opcode::VBCAST:
        w |= uint64_t(instr.address) << kAddrShift;
        w |= uint64_t(instr.vd) << kVdShift;
        w |= uint64_t(instr.rm) << kRmShift;
        break;
      case Opcode::SLOAD:
      case Opcode::MLOAD:
      case Opcode::ALOAD:
        w |= uint64_t(instr.address) << kAddrShift;
        w |= uint64_t(instr.rt) << kVtShift;
        break;
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
      case Opcode::VMULMOD:
        w |= uint64_t(instr.vd) << kVdShift;
        w |= uint64_t(instr.vs) << kVsShift;
        w |= uint64_t(instr.vt) << kVtShift;
        w |= uint64_t(instr.rm) << kRmShift;
        if (instr.bfly) {
            w |= uint64_t(instr.vd1) << kVd1Shift;
            w |= uint64_t(instr.vt1) << kVt1Shift;
        }
        break;
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD:
        w |= uint64_t(instr.vd) << kVdShift;
        w |= uint64_t(instr.vs) << kVsShift;
        w |= uint64_t(instr.rt) << kVtShift;
        w |= uint64_t(instr.rm) << kRmShift;
        break;
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        w |= uint64_t(instr.vd) << kVdShift;
        w |= uint64_t(instr.vs) << kVsShift;
        w |= uint64_t(instr.vt) << kVtShift;
        break;
    }
    return w;
}

Instruction
decode(uint64_t w)
{
    Instruction i;
    const unsigned op_raw = (w >> kOpShift) & 0xf;
    i.op = Opcode(op_raw);
    i.bfly = ((w >> kBflyShift) & 1) != 0;
    if (i.bfly && i.op != Opcode::VMULMOD)
        rpu_fatal("decoded BFLY bit on non-vmulmod opcode %u", op_raw);

    const auto addr = uint32_t((w >> kAddrShift) & kMask20);
    const auto f_vd = uint8_t((w >> kVdShift) & kMask6);
    const auto f_vs = uint8_t((w >> kVsShift) & kMask6);
    const auto f_vt = uint8_t((w >> kVtShift) & kMask6);
    const auto f_rm = uint8_t((w >> kRmShift) & kMask6);

    switch (i.op) {
      case Opcode::VLOAD:
      case Opcode::VSTORE:
        i.address = addr;
        if (i.op == Opcode::VLOAD)
            i.vd = f_vd;
        else
            i.vs = f_vd;
        i.mode = AddrMode(f_vs & 0x3);
        i.modeValue = f_vt;
        i.rm = f_rm;
        break;
      case Opcode::VBCAST:
        i.address = addr;
        i.vd = f_vd;
        i.rm = f_rm;
        break;
      case Opcode::SLOAD:
      case Opcode::MLOAD:
      case Opcode::ALOAD:
        i.address = addr;
        i.rt = f_vt;
        break;
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
      case Opcode::VMULMOD:
        i.vd = f_vd;
        i.vs = f_vs;
        i.vt = f_vt;
        i.rm = f_rm;
        if (i.bfly) {
            i.vd1 = uint8_t((w >> kVd1Shift) & kMask6);
            i.vt1 = uint8_t((w >> kVt1Shift) & kMask6);
        }
        break;
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD:
        i.vd = f_vd;
        i.vs = f_vs;
        i.rt = f_vt;
        i.rm = f_rm;
        break;
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        i.vd = f_vd;
        i.vs = f_vs;
        i.vt = f_vt;
        break;
    }
    return i;
}

std::vector<uint64_t>
encodeProgram(const std::vector<Instruction> &prog)
{
    std::vector<uint64_t> words;
    words.reserve(prog.size());
    for (const auto &instr : prog)
        words.push_back(encode(instr));
    return words;
}

std::vector<Instruction>
decodeProgram(const std::vector<uint64_t> &words)
{
    std::vector<Instruction> prog;
    prog.reserve(words.size());
    for (uint64_t w : words)
        prog.push_back(decode(w));
    return prog;
}

} // namespace rpu
