/**
 * @file
 * Decoded B512 instruction representation and field validation.
 */

#ifndef RPU_ISA_INSTRUCTION_HH
#define RPU_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"

namespace rpu {

/**
 * A decoded B512 instruction. Field applicability depends on the
 * opcode; encode() validates that inapplicable fields are zero.
 *
 * Field mapping onto the 64-bit word (paper Table I):
 *   [63:55] vd1  [54:49] vt1  [48] bfly  [47:44] opcode
 *   [43:24] address  [23:18] vd  [17:12] vs/mode  [11:6] vt/value/rt
 *   [5:0] rm/rt
 */
struct Instruction
{
    Opcode op = Opcode::VLOAD;
    bool bfly = false; ///< butterfly modifier (VMULMOD only)

    uint8_t vd = 0;  ///< vector destination
    uint8_t vd1 = 0; ///< second vector destination (butterfly)
    uint8_t vs = 0;  ///< first vector source
    uint8_t vt = 0;  ///< second vector source
    uint8_t vt1 = 0; ///< third vector source: butterfly twiddles

    uint8_t rm = 0; ///< MRF index (CI) or ARF index (VLOAD/VSTORE/VBCAST)
    uint8_t rt = 0; ///< SRF index (vector-scalar CI; SLOAD/MLOAD/ALOAD dest)

    AddrMode mode = AddrMode::CONTIGUOUS;
    uint8_t modeValue = 0; ///< VALUE field: log2 stride / run / repeat
    uint32_t address = 0;  ///< 20-bit unsigned word offset

    InstrClass pipeClass() const { return instrClass(op); }

    bool isVectorLoad() const { return op == Opcode::VLOAD; }
    bool isVectorStore() const { return op == Opcode::VSTORE; }
    bool isButterfly() const { return op == Opcode::VMULMOD && bfly; }

    bool
    isVectorScalarCompute() const
    {
        return op == Opcode::VSADDMOD || op == Opcode::VSSUBMOD ||
               op == Opcode::VSMULMOD;
    }

    bool
    isVectorVectorCompute() const
    {
        return op == Opcode::VADDMOD || op == Opcode::VSUBMOD ||
               op == Opcode::VMULMOD;
    }

    bool
    isShuffle() const
    {
        return pipeClass() == InstrClass::Shuffle;
    }

    /** Human-readable one-line disassembly. */
    std::string toString() const;

    bool operator==(const Instruction &o) const = default;

    // -- Convenience constructors -------------------------------------

    static Instruction vload(uint8_t vd, uint8_t arf, uint32_t addr,
                             AddrMode mode = AddrMode::CONTIGUOUS,
                             uint8_t value = 0);
    static Instruction vstore(uint8_t vs, uint8_t arf, uint32_t addr,
                              AddrMode mode = AddrMode::CONTIGUOUS,
                              uint8_t value = 0);
    static Instruction sload(uint8_t rt, uint32_t addr);
    static Instruction vbcast(uint8_t vd, uint8_t arf, uint32_t addr);
    static Instruction mload(uint8_t rt, uint32_t addr);
    static Instruction aload(uint8_t rt, uint32_t addr);

    static Instruction vv(Opcode op, uint8_t vd, uint8_t vs, uint8_t vt,
                          uint8_t rm);
    static Instruction vs_(Opcode op, uint8_t vd, uint8_t vs, uint8_t rt,
                           uint8_t rm);
    static Instruction butterfly(uint8_t vd, uint8_t vd1, uint8_t vs,
                                 uint8_t vt, uint8_t vt1, uint8_t rm);
    static Instruction shuffle(Opcode op, uint8_t vd, uint8_t vs,
                               uint8_t vt);
};

} // namespace rpu

#endif // RPU_ISA_INSTRUCTION_HH
