/**
 * @file
 * Binary encoding of B512 instructions per paper Table I.
 */

#ifndef RPU_ISA_ENCODING_HH
#define RPU_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace rpu {

/**
 * Encode to the 64-bit instruction word. Validates field ranges
 * (register indices < 64, 20-bit address, mode value < 64) and that
 * fields not used by the instruction's format are zero; fatal on
 * violation (this is a programming error in the code generator).
 */
uint64_t encode(const Instruction &instr);

/** Decode a 64-bit instruction word. */
Instruction decode(uint64_t word);

/** Encode a whole program. */
std::vector<uint64_t> encodeProgram(const std::vector<Instruction> &prog);

/** Decode a whole program. */
std::vector<Instruction> decodeProgram(const std::vector<uint64_t> &words);

} // namespace rpu

#endif // RPU_ISA_ENCODING_HH
