/**
 * @file
 * Two-way text assembler for B512.
 *
 * The assembly grammar is exactly what Instruction::toString() emits,
 * plus comments (';' or '#' to end of line) and blank lines, so
 * assemble(disassemble(p)) == p for every valid program.
 *
 * Examples:
 *   vload v3, a1, 8192, strided, 1
 *   vbcast v19, a3, 1
 *   vbfly v4, v5, v1, v2, v3, m1    ; vd, vd1, vs, vt, vt1, modulus
 *   unpklo v6, v4, v5
 *   vstore v6, a2, 16, skip, 2
 */

#ifndef RPU_ISA_ASSEMBLER_HH
#define RPU_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace rpu {

/** Parse one line of assembly; fatal with a line diagnostic on error. */
Instruction assembleLine(const std::string &line);

/** Parse a full program; skips blank lines and comments. */
Program assemble(const std::string &text, const std::string &name = "");

} // namespace rpu

#endif // RPU_ISA_ASSEMBLER_HH
