/**
 * @file
 * B512 program container with mix statistics and disassembly.
 */

#ifndef RPU_ISA_PROGRAM_HH
#define RPU_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace rpu {

/** Instruction counts by class (paper quotes these for 64K NTT). */
struct InstructionMix
{
    uint64_t loads = 0;      ///< VLOAD
    uint64_t stores = 0;     ///< VSTORE
    uint64_t broadcasts = 0; ///< VBCAST
    uint64_t scalarLs = 0;   ///< SLOAD/MLOAD/ALOAD
    uint64_t compute = 0;    ///< all CIs (butterfly counts once)
    uint64_t butterflies = 0;
    uint64_t shuffles = 0;

    uint64_t
    total() const
    {
        return loads + stores + broadcasts + scalarLs + compute + shuffles;
    }
};

/** A named B512 kernel. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    void append(const Instruction &instr) { instrs_.push_back(instr); }
    size_t size() const { return instrs_.size(); }
    bool empty() const { return instrs_.empty(); }

    const Instruction &operator[](size_t i) const { return instrs_[i]; }
    Instruction &operator[](size_t i) { return instrs_[i]; }

    const std::vector<Instruction> &instructions() const { return instrs_; }
    std::vector<Instruction> &instructions() { return instrs_; }

    InstructionMix mix() const;

    /** Full text disassembly, one instruction per line. */
    std::string disassemble() const;

    /** Size in bytes when encoded (8 bytes per instruction). */
    size_t encodedBytes() const { return instrs_.size() * 8; }

  private:
    std::string name_;
    std::vector<Instruction> instrs_;
};

} // namespace rpu

#endif // RPU_ISA_PROGRAM_HH
