#include "isa/program.hh"

#include <sstream>

namespace rpu {

InstructionMix
Program::mix() const
{
    InstructionMix m;
    for (const auto &i : instrs_) {
        switch (i.op) {
          case Opcode::VLOAD:
            ++m.loads;
            break;
          case Opcode::VSTORE:
            ++m.stores;
            break;
          case Opcode::VBCAST:
            ++m.broadcasts;
            break;
          case Opcode::SLOAD:
          case Opcode::MLOAD:
          case Opcode::ALOAD:
            ++m.scalarLs;
            break;
          case Opcode::VADDMOD:
          case Opcode::VSUBMOD:
          case Opcode::VMULMOD:
          case Opcode::VSADDMOD:
          case Opcode::VSSUBMOD:
          case Opcode::VSMULMOD:
            ++m.compute;
            if (i.isButterfly())
                ++m.butterflies;
            break;
          case Opcode::UNPKLO:
          case Opcode::UNPKHI:
          case Opcode::PKLO:
          case Opcode::PKHI:
            ++m.shuffles;
            break;
        }
    }
    return m;
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (size_t i = 0; i < instrs_.size(); ++i)
        os << instrs_[i].toString() << "\n";
    return os.str();
}

} // namespace rpu
