/**
 * @file
 * B512 opcode and addressing-mode definitions (paper section III).
 *
 * The ISA has 17 instructions encoded as 16 four-bit opcodes plus the
 * BFLY modifier bit on VMULMOD (the fused butterfly). Instructions
 * fall into three classes, each served by its own decoupled pipeline:
 * load/store (LSI), compute (CI) and shuffle (SI).
 */

#ifndef RPU_ISA_OPCODES_HH
#define RPU_ISA_OPCODES_HH

#include <cstdint>
#include <string>

namespace rpu {

/** The 16 B512 primary opcodes (4-bit encoding space, fully used). */
enum class Opcode : uint8_t
{
    // Load/store instructions (LSI)
    VLOAD = 0,  ///< VDM -> vector register, 4 addressing modes
    VSTORE = 1, ///< vector register -> VDM
    SLOAD = 2,  ///< SDM -> scalar register
    VBCAST = 3, ///< SDM[ARF[RM]+addr] broadcast to all 512 lanes

    // Compute instructions (CI)
    VADDMOD = 4,  ///< lane-wise (VS + VT) mod MRF[RM]
    VSUBMOD = 5,  ///< lane-wise (VS - VT) mod MRF[RM]
    VMULMOD = 6,  ///< lane-wise (VS * VT) mod MRF[RM]; +BFLY = butterfly
    VSADDMOD = 7, ///< lane-wise (VS + SRF[RT]) mod MRF[RM]
    VSSUBMOD = 8, ///< lane-wise (VS - SRF[RT]) mod MRF[RM]
    VSMULMOD = 9, ///< lane-wise (VS * SRF[RT]) mod MRF[RM]

    // Shuffle instructions (SI)
    UNPKLO = 10, ///< interleave first halves of VS and VT
    UNPKHI = 11, ///< interleave second halves of VS and VT
    PKLO = 12,   ///< even lanes of VS, then even lanes of VT
    PKHI = 13,   ///< odd lanes of VS, then odd lanes of VT

    // Scalar-unit loads (LSI class)
    MLOAD = 14, ///< SDM -> modulus register
    ALOAD = 15, ///< SDM -> address register
};

/** Pipeline class an instruction dispatches to (paper section IV-A). */
enum class InstrClass : uint8_t
{
    LoadStore,
    Compute,
    Shuffle,
};

/** Vector load/store addressing modes (MODE field, section III). */
enum class AddrMode : uint8_t
{
    CONTIGUOUS = 0,   ///< word i at base + i
    STRIDED = 1,      ///< word i at base + i * 2^VALUE
    STRIDED_SKIP = 2, ///< runs of 2^VALUE words, skipping 2^VALUE between
    REPEATED = 3,     ///< word i = mem[base + (i >> VALUE)] (loads only)
};

/** Pipeline class for @p op (+BFLY does not change the class). */
InstrClass instrClass(Opcode op);

/** Lower-case mnemonic, e.g. "vaddmod". BFLY renders as "vbfly". */
std::string mnemonic(Opcode op, bool bfly = false);

/** Addressing-mode name, e.g. "strided". */
std::string addrModeName(AddrMode mode);

} // namespace rpu

#endif // RPU_ISA_OPCODES_HH
