#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace rpu {

namespace {

std::string
stripComment(const std::string &line)
{
    const size_t pos = line.find_first_of(";#");
    std::string s = pos == std::string::npos ? line : line.substr(0, pos);
    // Trim whitespace.
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    s.erase(s.begin(), std::find_if_not(s.begin(), s.end(), is_space));
    s.erase(std::find_if_not(s.rbegin(), s.rend(), is_space).base(),
            s.end());
    return s;
}

/** Split "mnemonic op1, op2, ..." into mnemonic + operand tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string head, rest;
    std::istringstream is(line);
    is >> head;
    tokens.push_back(head);
    std::getline(is, rest);
    std::string cur;
    for (char c : rest) {
        if (c == ',') {
            tokens.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);
    return tokens;
}

uint8_t
parseReg(const std::string &tok, char prefix)
{
    if (tok.size() < 2 || tok[0] != prefix)
        rpu_fatal("expected %c-register, got '%s'", prefix, tok.c_str());
    const unsigned long idx = std::stoul(tok.substr(1));
    if (idx >= 64)
        rpu_fatal("register index %lu out of range in '%s'", idx,
                  tok.c_str());
    return uint8_t(idx);
}

uint32_t
parseImm(const std::string &tok)
{
    return uint32_t(std::stoul(tok, nullptr, 0));
}

AddrMode
parseMode(const std::string &tok)
{
    if (tok == "contig")
        return AddrMode::CONTIGUOUS;
    if (tok == "strided")
        return AddrMode::STRIDED;
    if (tok == "skip")
        return AddrMode::STRIDED_SKIP;
    if (tok == "repeat")
        return AddrMode::REPEATED;
    rpu_fatal("unknown addressing mode '%s'", tok.c_str());
}

void
expectOperands(const std::vector<std::string> &t, size_t lo, size_t hi)
{
    const size_t n = t.size() - 1;
    if (n < lo || n > hi)
        rpu_fatal("'%s' expects %zu..%zu operands, got %zu", t[0].c_str(),
                  lo, hi, n);
}

} // namespace

Instruction
assembleLine(const std::string &raw)
{
    const std::string line = stripComment(raw);
    rpu_assert(!line.empty(), "assembleLine on empty line");
    const auto t = tokenize(line);
    const std::string &m = t[0];

    if (m == "vload" || m == "vstore") {
        expectOperands(t, 4, 5);
        const uint8_t vreg = parseReg(t[1], 'v');
        const uint8_t arf = parseReg(t[2], 'a');
        const uint32_t addr = parseImm(t[3]);
        const AddrMode mode = parseMode(t[4]);
        const uint8_t value = t.size() > 5 ? uint8_t(parseImm(t[5])) : 0;
        return m == "vload"
                   ? Instruction::vload(vreg, arf, addr, mode, value)
                   : Instruction::vstore(vreg, arf, addr, mode, value);
    }
    if (m == "vbcast") {
        expectOperands(t, 3, 3);
        return Instruction::vbcast(parseReg(t[1], 'v'), parseReg(t[2], 'a'),
                                   parseImm(t[3]));
    }
    if (m == "sload") {
        expectOperands(t, 2, 2);
        return Instruction::sload(parseReg(t[1], 's'), parseImm(t[2]));
    }
    if (m == "mload") {
        expectOperands(t, 2, 2);
        return Instruction::mload(parseReg(t[1], 'm'), parseImm(t[2]));
    }
    if (m == "aload") {
        expectOperands(t, 2, 2);
        return Instruction::aload(parseReg(t[1], 'a'), parseImm(t[2]));
    }
    if (m == "vaddmod" || m == "vsubmod" || m == "vmulmod") {
        expectOperands(t, 4, 4);
        const Opcode op = m == "vaddmod"  ? Opcode::VADDMOD
                          : m == "vsubmod" ? Opcode::VSUBMOD
                                           : Opcode::VMULMOD;
        return Instruction::vv(op, parseReg(t[1], 'v'), parseReg(t[2], 'v'),
                               parseReg(t[3], 'v'), parseReg(t[4], 'm'));
    }
    if (m == "vbfly") {
        expectOperands(t, 6, 6);
        return Instruction::butterfly(
            parseReg(t[1], 'v'), parseReg(t[2], 'v'), parseReg(t[3], 'v'),
            parseReg(t[4], 'v'), parseReg(t[5], 'v'), parseReg(t[6], 'm'));
    }
    if (m == "vsaddmod" || m == "vssubmod" || m == "vsmulmod") {
        expectOperands(t, 4, 4);
        const Opcode op = m == "vsaddmod"  ? Opcode::VSADDMOD
                          : m == "vssubmod" ? Opcode::VSSUBMOD
                                            : Opcode::VSMULMOD;
        return Instruction::vs_(op, parseReg(t[1], 'v'), parseReg(t[2], 'v'),
                                parseReg(t[3], 's'), parseReg(t[4], 'm'));
    }
    if (m == "unpklo" || m == "unpkhi" || m == "pklo" || m == "pkhi") {
        expectOperands(t, 3, 3);
        const Opcode op = m == "unpklo"   ? Opcode::UNPKLO
                          : m == "unpkhi" ? Opcode::UNPKHI
                          : m == "pklo"   ? Opcode::PKLO
                                          : Opcode::PKHI;
        return Instruction::shuffle(op, parseReg(t[1], 'v'),
                                    parseReg(t[2], 'v'), parseReg(t[3], 'v'));
    }
    rpu_fatal("unknown mnemonic '%s'", m.c_str());
}

Program
assemble(const std::string &text, const std::string &name)
{
    Program prog(name);
    std::istringstream is(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (stripComment(line).empty())
            continue;
        prog.append(assembleLine(line));
    }
    return prog;
}

} // namespace rpu
