/**
 * @file
 * Narrow-kernel dispatch: mode selection (RPU_HOST_SIMD), the
 * ISA-table pick (done once, at first use), and the always-available
 * scalar-u64 fallback kernel set. The fallback instantiates the same
 * generic bodies as the vector sets with a width-1 "vector", so the
 * three implementations can only ever differ in how a span is split,
 * never in what an element becomes.
 */

#include "modmath/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace rpu::simd {

NarrowModulus::NarrowModulus(uint64_t modulus) : q(modulus)
{
    rpu_assert(narrowModulusOk(modulus),
               "modulus %llu outside the narrow-kernel domain",
               (unsigned long long)modulus);
    // Newton iteration doubles correct low bits per step: 5 steps
    // from the 5-bit seed (q * q == q^-1 mod 2^5 for odd q... the
    // classic trick: x := q is correct mod 2^3 already).
    uint64_t inv = q;
    for (int i = 0; i < 5; ++i)
        inv *= 2 - q * inv;
    qInvNeg = ~inv + 1; // -q^-1 mod 2^64
    const uint64_t r = uint64_t((u128(1) << 64) % q); // 2^64 mod q
    r2 = uint64_t(u128(r) * r % q);                   // 2^128 mod q
}

namespace {

HostSimdMode
initialModeFromEnv()
{
    const char *env = std::getenv("RPU_HOST_SIMD");
    if (env == nullptr || *env == '\0')
        return HostSimdMode::Native;
    if (std::strcmp(env, "scalar") == 0)
        return HostSimdMode::Scalar;
    if (std::strcmp(env, "native") == 0)
        return HostSimdMode::Native;
    rpu_fatal("RPU_HOST_SIMD must be 'scalar' or 'native', got '%s'",
              env);
}

std::atomic<HostSimdMode> &
modeSlot()
{
    static std::atomic<HostSimdMode> mode{initialModeFromEnv()};
    return mode;
}

const detail::KernelTable &
activeTable()
{
    static const detail::KernelTable *table = [] {
        if (const auto *t = detail::avx2KernelTable())
            return t;
        if (const auto *t = detail::neonKernelTable())
            return t;
        return detail::scalarKernelTable();
    }();
    return *table;
}

} // namespace

HostSimdMode
hostSimdMode()
{
    return modeSlot().load(std::memory_order_relaxed);
}

void
setHostSimdMode(HostSimdMode mode)
{
    modeSlot().store(mode, std::memory_order_relaxed);
}

bool
narrowLanesActive()
{
    return hostSimdMode() == HostSimdMode::Native;
}

const char *
hostSimdIsa()
{
    return activeTable().isa;
}

const char *
hostSimdModeName()
{
    return hostSimdMode() == HostSimdMode::Scalar ? "scalar" : "native";
}

void
mulShoupSpan(const uint64_t *a, uint64_t *out, size_t len, uint64_t w,
             uint64_t wShoup, uint64_t q)
{
    activeTable().mulShoupSpan(a, out, len, w, wShoup, q);
}

void
mulModSpan(const uint64_t *a, const uint64_t *b, uint64_t *out,
           size_t len, const NarrowModulus &m)
{
    activeTable().mulModSpan(a, b, out, len, m);
}

void
addModSpan(const uint64_t *a, const uint64_t *b, uint64_t *out,
           size_t len, uint64_t q)
{
    activeTable().addModSpan(a, b, out, len, q);
}

void
subModSpan(const uint64_t *a, const uint64_t *b, uint64_t *out,
           size_t len, uint64_t q)
{
    activeTable().subModSpan(a, b, out, len, q);
}

void
butterflyMulModSpan(const uint64_t *x, const uint64_t *y,
                    const uint64_t *w, uint64_t *sum, uint64_t *diff,
                    size_t len, const NarrowModulus &m)
{
    activeTable().butterflyMulModSpan(x, y, w, sum, diff, len, m);
}

void
forwardButterflyLazySpan(uint64_t *lo, uint64_t *hi, size_t len,
                         uint64_t w, uint64_t wShoup, uint64_t q)
{
    activeTable().forwardButterflyLazySpan(lo, hi, len, w, wShoup, q);
}

void
inverseButterflyLazySpan(uint64_t *lo, uint64_t *hi, size_t len,
                         uint64_t w, uint64_t wShoup, uint64_t q)
{
    activeTable().inverseButterflyLazySpan(lo, hi, len, w, wShoup, q);
}

void
canonicalizeSpan(uint64_t *x, size_t len, uint64_t q)
{
    activeTable().canonicalizeSpan(x, len, q);
}

// ---------------------------------------------------------------------
// Scalar fallback kernel set: the generic bodies over a 1-lane "vector".
// ---------------------------------------------------------------------

namespace {

struct ScalarVec
{
    uint64_t v;
    static constexpr size_t width = 1;

    static ScalarVec load(const uint64_t *p) { return {*p}; }
    static void store(uint64_t *p, ScalarVec x) { *p = x.v; }
    static ScalarVec set1(uint64_t x) { return {x}; }
    static ScalarVec add(ScalarVec a, ScalarVec b) { return {a.v + b.v}; }
    static ScalarVec sub(ScalarVec a, ScalarVec b) { return {a.v - b.v}; }
    static ScalarVec
    mullo(ScalarVec a, ScalarVec b)
    {
        return {a.v * b.v};
    }
    static ScalarVec
    mulhi(ScalarVec a, ScalarVec b)
    {
        return {uint64_t((u128(a.v) * b.v) >> 64)};
    }
    static ScalarVec
    csub(ScalarVec x, ScalarVec q)
    {
        return {x.v >= q.v ? x.v - q.v : x.v};
    }
    static ScalarVec
    nonzero01(ScalarVec x)
    {
        return {x.v != 0 ? uint64_t(1) : uint64_t(0)};
    }
};

using VecT = ScalarVec;
#include "modmath/simd_kernels.inl"

} // namespace

namespace detail {

const KernelTable *
scalarKernelTable()
{
    static const KernelTable table = {
        mulShoupSpanImpl,
        mulModSpanImpl,
        addModSpanImpl,
        subModSpanImpl,
        butterflyMulModSpanImpl,
        forwardButterflyLazySpanImpl,
        inverseButterflyLazySpanImpl,
        canonicalizeSpanImpl,
        "scalar-fallback",
    };
    return &table;
}

} // namespace detail

} // namespace rpu::simd
