/**
 * @file
 * Generic bodies of the narrow batch kernels, templated over a vector
 * wrapper type V. Each ISA translation unit (simd.cc scalar fallback,
 * simd_avx2.cc, simd_neon.cc) defines its wrapper and instantiates
 * these once; the tail of every span falls through to the scalar lane
 * helpers in simd.hh, so splitting a span between vector body and
 * tail can never change a single element.
 *
 * Wrapper contract (all lanes are uint64_t, arithmetic mod 2^64):
 *   static constexpr size_t width;
 *   static V load(const uint64_t *);    static void store(uint64_t *, V);
 *   static V set1(uint64_t);
 *   static V add(V, V);                 static V sub(V, V);
 *   static V mullo(V, V);  // low 64 bits of the product
 *   static V mulhi(V, V);  // high 64 bits of the product
 *   static V csub(V x, V q);      // x >= q ? x - q : x  (unsigned)
 *   static V nonzero01(V x);      // per lane: x != 0 ? 1 : 0
 *
 * This file is included inside a namespace with `using VecT = ...;`
 * and relies on rpu::simd scalar helpers being visible.
 */

// REDC(hi:lo) = (hi:lo) * 2^-64 mod q, in [0, 2q) for hi < q.
// k = lo * (-q^-1); correction = carry-out of (lo + k*q) — the low
// word of that sum is zero by construction, so the carry is exactly
// mulhi(k, q) plus (lo != 0).
static inline VecT
vecRedc(VecT hi, VecT lo, VecT vq, VecT vqInvNeg)
{
    const VecT k = VecT::mullo(lo, vqInvNeg);
    const VecT kqHi = VecT::mulhi(k, vq);
    return VecT::add(VecT::add(hi, kqHi), VecT::nonzero01(lo));
}

static void
mulShoupSpanImpl(const uint64_t *a, uint64_t *out, size_t len,
                 uint64_t w, uint64_t wShoup, uint64_t q)
{
    const VecT vw = VecT::set1(w);
    const VecT vws = VecT::set1(wShoup);
    const VecT vq = VecT::set1(q);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT va = VecT::load(a + i);
        const VecT hi = VecT::mulhi(vws, va);
        const VecT r =
            VecT::sub(VecT::mullo(vw, va), VecT::mullo(hi, vq));
        VecT::store(out + i, VecT::csub(r, vq));
    }
    for (; i < len; ++i)
        out[i] = rpu::simd::mulShoup64(w, wShoup, a[i], q);
}

// a * b mod q canonical: u = REDC(a*b) < 2q, r = REDC(u*r2) < 2q,
// then one conditional subtraction. Needs 2q < 2^64 (q < 2^62 holds)
// so u * r2 < q * 2^64 stays inside REDC's input bound.
static inline VecT
vecMulMontMod(VecT va, VecT vb, VecT vq, VecT vqInvNeg, VecT vr2)
{
    const VecT u = vecRedc(VecT::mulhi(va, vb), VecT::mullo(va, vb),
                           vq, vqInvNeg);
    const VecT r = vecRedc(VecT::mulhi(u, vr2), VecT::mullo(u, vr2),
                           vq, vqInvNeg);
    return VecT::csub(r, vq);
}

static void
mulModSpanImpl(const uint64_t *a, const uint64_t *b, uint64_t *out,
               size_t len, const rpu::simd::NarrowModulus &m)
{
    const VecT vq = VecT::set1(m.q);
    const VecT vqInvNeg = VecT::set1(m.qInvNeg);
    const VecT vr2 = VecT::set1(m.r2);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT va = VecT::load(a + i);
        const VecT vb = VecT::load(b + i);
        VecT::store(out + i, vecMulMontMod(va, vb, vq, vqInvNeg, vr2));
    }
    for (; i < len; ++i)
        out[i] = rpu::simd::mulMontMod64(a[i], b[i], m);
}

static void
addModSpanImpl(const uint64_t *a, const uint64_t *b, uint64_t *out,
               size_t len, uint64_t q)
{
    const VecT vq = VecT::set1(q);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT s = VecT::add(VecT::load(a + i), VecT::load(b + i));
        VecT::store(out + i, VecT::csub(s, vq));
    }
    for (; i < len; ++i)
        out[i] = rpu::simd::addMod64(a[i], b[i], q);
}

static void
subModSpanImpl(const uint64_t *a, const uint64_t *b, uint64_t *out,
               size_t len, uint64_t q)
{
    const VecT vq = VecT::set1(q);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT d = VecT::sub(VecT::add(VecT::load(a + i), vq),
                                 VecT::load(b + i));
        VecT::store(out + i, VecT::csub(d, vq));
    }
    for (; i < len; ++i)
        out[i] = rpu::simd::subMod64(a[i], b[i], q);
}

static void
butterflyMulModSpanImpl(const uint64_t *x, const uint64_t *y,
                        const uint64_t *w, uint64_t *sum, uint64_t *diff,
                        size_t len, const rpu::simd::NarrowModulus &m)
{
    const VecT vq = VecT::set1(m.q);
    const VecT vqInvNeg = VecT::set1(m.qInvNeg);
    const VecT vr2 = VecT::set1(m.r2);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT vx = VecT::load(x + i);
        const VecT t = vecMulMontMod(VecT::load(w + i), VecT::load(y + i),
                                     vq, vqInvNeg, vr2);
        VecT::store(sum + i, VecT::csub(VecT::add(vx, t), vq));
        VecT::store(diff + i,
                    VecT::csub(VecT::sub(VecT::add(vx, vq), t), vq));
    }
    for (; i < len; ++i) {
        const uint64_t t = rpu::simd::mulMontMod64(w[i], y[i], m);
        sum[i] = rpu::simd::addMod64(x[i], t, m.q);
        diff[i] = rpu::simd::subMod64(x[i], t, m.q);
    }
}

static void
forwardButterflyLazySpanImpl(uint64_t *lo, uint64_t *hi, size_t len,
                             uint64_t w, uint64_t wShoup, uint64_t q)
{
    const VecT vw = VecT::set1(w);
    const VecT vws = VecT::set1(wShoup);
    const VecT vq = VecT::set1(q);
    const VecT v2q = VecT::set1(2 * q);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT x = VecT::csub(VecT::load(lo + i), v2q); // < 2q
        const VecT y = VecT::load(hi + i);                  // < 4q
        const VecT prodHi = VecT::mulhi(vws, y);
        const VecT t =
            VecT::sub(VecT::mullo(vw, y), VecT::mullo(prodHi, vq)); // < 2q
        VecT::store(lo + i, VecT::add(x, t));                 // < 4q
        VecT::store(hi + i, VecT::add(VecT::sub(x, t), v2q)); // < 4q
    }
    for (; i < len; ++i) {
        uint64_t x = lo[i];
        if (x >= 2 * q)
            x -= 2 * q;
        const uint64_t t = rpu::simd::mulShoupLazy64(w, wShoup, hi[i], q);
        lo[i] = x + t;
        hi[i] = x - t + 2 * q;
    }
}

static void
inverseButterflyLazySpanImpl(uint64_t *lo, uint64_t *hi, size_t len,
                             uint64_t w, uint64_t wShoup, uint64_t q)
{
    const VecT vw = VecT::set1(w);
    const VecT vws = VecT::set1(wShoup);
    const VecT vq = VecT::set1(q);
    const VecT v2q = VecT::set1(2 * q);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT x = VecT::load(lo + i); // < 2q
        const VecT y = VecT::load(hi + i); // < 2q
        VecT::store(lo + i, VecT::csub(VecT::add(x, y), v2q)); // < 2q
        const VecT d = VecT::add(VecT::sub(x, y), v2q);        // < 4q
        const VecT prodHi = VecT::mulhi(vws, d);
        VecT::store(
            hi + i,
            VecT::sub(VecT::mullo(vw, d), VecT::mullo(prodHi, vq))); // <2q
    }
    for (; i < len; ++i) {
        const uint64_t x = lo[i];
        const uint64_t y = hi[i];
        uint64_t s = x + y;
        if (s >= 2 * q)
            s -= 2 * q;
        lo[i] = s;
        hi[i] = rpu::simd::mulShoupLazy64(w, wShoup, x - y + 2 * q, q);
    }
}

static void
canonicalizeSpanImpl(uint64_t *x, size_t len, uint64_t q)
{
    const VecT vq = VecT::set1(q);
    const VecT v2q = VecT::set1(2 * q);
    size_t i = 0;
    for (; i + VecT::width <= len; i += VecT::width) {
        const VecT v = VecT::csub(VecT::load(x + i), v2q);
        VecT::store(x + i, VecT::csub(v, vq));
    }
    for (; i < len; ++i) {
        uint64_t v = x[i];
        if (v >= 2 * q)
            v -= 2 * q;
        if (v >= q)
            v -= q;
        x[i] = v;
    }
}
