/**
 * @file
 * AVX2 specialisation of the narrow kernels: four u64 lanes per op.
 *
 * This translation unit alone is compiled with -mavx2 (see
 * CMakeLists.txt); nothing in it runs unless the runtime cpuid check
 * in avx2KernelTable() passes, so the base build stays portable to
 * any x86-64. AVX2 has no 64x64 multiplier, so mullo/mulhi are
 * composed from 32x32->64 vpmuludq partial products — the standard
 * trick (Intel HEXL, SEAL do the same). Unsigned compares go through
 * the sign-bit flip because vpcmpgtq is signed-only.
 */

#include "modmath/simd.hh"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace rpu::simd {
namespace {

struct Avx2Vec
{
    __m256i v;
    static constexpr size_t width = 4;

    static Avx2Vec
    load(const uint64_t *p)
    {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p))};
    }
    static void
    store(uint64_t *p, Avx2Vec x)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), x.v);
    }
    static Avx2Vec
    set1(uint64_t x)
    {
        return {_mm256_set1_epi64x((long long)x)};
    }
    static Avx2Vec add(Avx2Vec a, Avx2Vec b)
    {
        return {_mm256_add_epi64(a.v, b.v)};
    }
    static Avx2Vec sub(Avx2Vec a, Avx2Vec b)
    {
        return {_mm256_sub_epi64(a.v, b.v)};
    }

    /** Low 64 bits of the 64x64 product per lane. */
    static Avx2Vec
    mullo(Avx2Vec a, Avx2Vec b)
    {
        // a*b mod 2^64 = a0*b0 + ((a1*b0 + a0*b1) << 32)
        const __m256i aHi = _mm256_srli_epi64(a.v, 32);
        const __m256i bHi = _mm256_srli_epi64(b.v, 32);
        const __m256i loLo = _mm256_mul_epu32(a.v, b.v);
        const __m256i cross =
            _mm256_add_epi64(_mm256_mul_epu32(aHi, b.v),
                             _mm256_mul_epu32(a.v, bHi));
        return {_mm256_add_epi64(loLo, _mm256_slli_epi64(cross, 32))};
    }

    /** High 64 bits of the 64x64 product per lane. */
    static Avx2Vec
    mulhi(Avx2Vec a, Avx2Vec b)
    {
        const __m256i mask32 = _mm256_set1_epi64x(0xffffffffll);
        const __m256i aHi = _mm256_srli_epi64(a.v, 32);
        const __m256i bHi = _mm256_srli_epi64(b.v, 32);
        const __m256i loLo = _mm256_mul_epu32(a.v, b.v);   // a0*b0
        const __m256i hiLo = _mm256_mul_epu32(aHi, b.v);   // a1*b0
        const __m256i loHi = _mm256_mul_epu32(a.v, bHi);   // a0*b1
        const __m256i hiHi = _mm256_mul_epu32(aHi, bHi);   // a1*b1
        // carry-save middle column: cannot overflow 64 bits
        // (2^32-1)^2 >> 32 + 2 * (2^32-1) < 2^34.
        const __m256i mid =
            _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(loLo, 32),
                                              _mm256_and_si256(hiLo,
                                                               mask32)),
                             _mm256_and_si256(loHi, mask32));
        return {_mm256_add_epi64(
            _mm256_add_epi64(hiHi, _mm256_srli_epi64(hiLo, 32)),
            _mm256_add_epi64(_mm256_srli_epi64(loHi, 32),
                             _mm256_srli_epi64(mid, 32)))};
    }

    /** x >= q ? x - q : x, unsigned per lane. */
    static Avx2Vec
    csub(Avx2Vec x, Avx2Vec q)
    {
        const __m256i sign = _mm256_set1_epi64x(
            (long long)0x8000000000000000ull);
        // q > x (unsigned) <=> keep x; else take x - q.
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(q.v, sign), _mm256_xor_si256(x.v, sign));
        const __m256i diff = _mm256_sub_epi64(x.v, q.v);
        return {_mm256_blendv_epi8(diff, x.v, gt)};
    }

    /** Per lane: x != 0 ? 1 : 0. */
    static Avx2Vec
    nonzero01(Avx2Vec x)
    {
        // cmpeq(x, 0) is all-ones (-1) on zero lanes; 1 + (-1) = 0.
        const __m256i eq0 =
            _mm256_cmpeq_epi64(x.v, _mm256_setzero_si256());
        return {_mm256_add_epi64(_mm256_set1_epi64x(1), eq0)};
    }
};

using VecT = Avx2Vec;
#include "modmath/simd_kernels.inl"

} // namespace

namespace detail {

const KernelTable *
avx2KernelTable()
{
    if (!__builtin_cpu_supports("avx2"))
        return nullptr;
    static const KernelTable table = {
        mulShoupSpanImpl,
        mulModSpanImpl,
        addModSpanImpl,
        subModSpanImpl,
        butterflyMulModSpanImpl,
        forwardButterflyLazySpanImpl,
        inverseButterflyLazySpanImpl,
        canonicalizeSpanImpl,
        "avx2",
    };
    return &table;
}

} // namespace detail
} // namespace rpu::simd

#else // not x86-64

namespace rpu::simd::detail {

const KernelTable *
avx2KernelTable()
{
    return nullptr;
}

} // namespace rpu::simd::detail

#endif
