#include "modmath/primality.hh"

#include "modmath/modulus.hh"

namespace rpu {

bool
isPrime(u128 n, unsigned rounds, uint64_t seed)
{
    if (n < 2)
        return false;
    static constexpr uint64_t small_primes[] = {
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
        53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    };
    for (uint64_t p : small_primes) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }

    // n - 1 = d * 2^s with d odd.
    u128 d = n - 1;
    unsigned s = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++s;
    }

    const Modulus mod(n);
    Rng rng(seed);
    for (unsigned round = 0; round < rounds; ++round) {
        const u128 a = 2 + rng.below128(n - 3);
        u128 x = mod.pow(a, d);
        if (x == 1 || x == n - 1)
            continue;
        bool witness = true;
        for (unsigned i = 1; i < s; ++i) {
            x = mod.mul(x, x);
            if (x == n - 1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

} // namespace rpu
