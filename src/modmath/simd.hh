/**
 * @file
 * Vectorised host math: the SIMD backend for the scalar hot loops.
 *
 * The RPU paper's CPU baseline (Fig. 10) runs the NTT inner loop on
 * scalar 64-/128-bit arithmetic, and so did every host path in this
 * repository: the reference NTT, the functional simulator's
 * butterfly/pointwise lanes, and the ResidueOps/RlweEvaluator host
 * fallbacks all went through the 128-bit Montgomery `Modulus`. Every
 * tower prime any scheme actually uses is far narrower (<= 50 bits in
 * the tests and benches), so this layer adds a *narrow* u64 kernel
 * set for the three hot shapes — Shoup modular multiply over a span,
 * radix-2 butterfly passes with lazy reduction, and Montgomery
 * pointwise products — vectorised with AVX2 or NEON where available
 * and falling back to scalar u64 otherwise.
 *
 * Dispatch contract:
 *  - The kernel ISA (AVX2 / NEON / scalar fallback) is chosen once,
 *    at first use, from compile-time availability plus a runtime
 *    cpuid check. Both paths are always compiled; nothing here
 *    requires building the whole tree with -mavx2.
 *  - `RPU_HOST_SIMD=scalar|native` selects at startup whether callers
 *    use the narrow kernels at all. `scalar` keeps every caller on
 *    the verbatim u128 reference path (the bit-identity baseline);
 *    `native` (the default) routes moduli below 2^62 through the
 *    narrow kernels. setHostSimdMode() is the in-process override
 *    the A/B benches and bit-identity tests use.
 *  - Every kernel produces canonical representatives in [0, q) at
 *    its boundary and is bit-identical to the scalar reference: the
 *    lazy butterfly passes keep values in [0, 4q)/[0, 2q) *between*
 *    stages, but a transform always ends with a canonicalisation
 *    pass, and canonical residues agree with the u128 path exactly.
 *
 * Lane-width requirements: q odd and q < 2^62 (the same bound as the
 * Fig. 10 CPU-64b baseline) so lazy sums never overflow 64 bits and
 * Shoup's w*a - floor(ws*a/2^64)*q stays below 2q for any a < 2^64.
 */

#ifndef RPU_MODMATH_SIMD_HH
#define RPU_MODMATH_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "common/random.hh"

namespace rpu::simd {

/** Which path the callers take (see file comment). */
enum class HostSimdMode
{
    Scalar, ///< verbatim u128 reference loops everywhere
    Native, ///< narrow u64 kernels for moduli below 2^62
};

/**
 * The process-wide mode: initialised once from RPU_HOST_SIMD
 * ("scalar" | "native"; unset means native, anything else is fatal).
 */
HostSimdMode hostSimdMode();

/** In-process override for A/B benches and bit-identity tests. */
void setHostSimdMode(HostSimdMode mode);

/** True when callers should take the narrow kernel path. */
bool narrowLanesActive();

/**
 * Name of the kernel set the narrow path dispatches to ("avx2",
 * "neon", or "scalar-fallback") — fixed at first use, independent of
 * the mode.
 */
const char *hostSimdIsa();

/** "scalar" or "native", after env/override resolution. */
const char *hostSimdModeName();

/** Largest modulus the narrow kernels accept (exclusive). */
constexpr unsigned kMaxNarrowModulusBits = 62;

/** Narrow kernels need q odd (Montgomery) and q < 2^62 (lazy sums). */
inline bool
narrowModulusOk(u128 q)
{
    return (q & 1) != 0 && q >= 3 && q < (u128(1) << kMaxNarrowModulusBits);
}

/**
 * Per-modulus constants for the narrow kernels (Montgomery with
 * R = 2^64 plus the plain value). Cheap to build; `Modulus` owns one
 * per cached context so hot paths never rebuild it.
 */
struct NarrowModulus
{
    uint64_t q = 0;
    uint64_t qInvNeg = 0; ///< -q^-1 mod 2^64
    uint64_t r2 = 0;      ///< 2^128 mod q

    NarrowModulus() = default;
    explicit NarrowModulus(uint64_t modulus);
};

/** floor(w * 2^64 / q) — the Shoup constant for w in [0, q). */
inline uint64_t
shoupPrecompute64(uint64_t w, uint64_t q)
{
    return uint64_t((u128(w) << 64) / q);
}

// ---------------------------------------------------------------------
// Scalar lane helpers. These are *the* semantics: the vector kernels'
// tail loops and the scalar-fallback kernel set call exactly these, so
// a span is element-for-element identical no matter how it was split
// between vector body and tail.
// ---------------------------------------------------------------------

/** w * a mod q in [0, 2q): Harvey's lazy Shoup product (any a). */
inline uint64_t
mulShoupLazy64(uint64_t w, uint64_t wShoup, uint64_t a, uint64_t q)
{
    const uint64_t hi = uint64_t((u128(wShoup) * a) >> 64);
    return w * a - hi * q;
}

/** w * a mod q, canonical (w < q, any a < 2^64). */
inline uint64_t
mulShoup64(uint64_t w, uint64_t wShoup, uint64_t a, uint64_t q)
{
    const uint64_t r = mulShoupLazy64(w, wShoup, a, q);
    return r >= q ? r - q : r;
}

/** REDC(t) = t * 2^-64 mod q, in [0, 2q) for t < q * 2^64. */
inline uint64_t
redc64(u128 t, const NarrowModulus &m)
{
    const uint64_t lo = uint64_t(t);
    const uint64_t hi = uint64_t(t >> 64);
    const uint64_t k = lo * m.qInvNeg;
    const uint64_t correction = uint64_t((u128(k) * m.q + lo) >> 64);
    return hi + correction;
}

/** a * b mod q, canonical, via two Montgomery reductions (a, b < q). */
inline uint64_t
mulMontMod64(uint64_t a, uint64_t b, const NarrowModulus &m)
{
    const uint64_t u = redc64(u128(a) * b, m);     // < 2q
    const uint64_t r = redc64(u128(u) * m.r2, m);  // < 2q
    return r >= m.q ? r - m.q : r;
}

/** a + b mod q, canonical inputs. */
inline uint64_t
addMod64(uint64_t a, uint64_t b, uint64_t q)
{
    const uint64_t s = a + b;
    return s >= q ? s - q : s;
}

/** a - b mod q, canonical inputs. */
inline uint64_t
subMod64(uint64_t a, uint64_t b, uint64_t q)
{
    const uint64_t d = a + q - b;
    return d >= q ? d - q : d;
}

// ---------------------------------------------------------------------
// Batch kernels. All handle arbitrary span lengths (including lengths
// that are not a multiple of the vector width, and len == 0); `out`
// may alias `a` / `b`. Dispatch to the selected ISA happens inside.
// ---------------------------------------------------------------------

/** out[i] = w * a[i] mod q, canonical (w < q). */
void mulShoupSpan(const uint64_t *a, uint64_t *out, size_t len,
                  uint64_t w, uint64_t wShoup, uint64_t q);

/** out[i] = a[i] * b[i] mod q, canonical (Montgomery pointwise). */
void mulModSpan(const uint64_t *a, const uint64_t *b, uint64_t *out,
                size_t len, const NarrowModulus &m);

/** out[i] = a[i] + b[i] mod q, canonical inputs. */
void addModSpan(const uint64_t *a, const uint64_t *b, uint64_t *out,
                size_t len, uint64_t q);

/** out[i] = a[i] - b[i] mod q, canonical inputs. */
void subModSpan(const uint64_t *a, const uint64_t *b, uint64_t *out,
                size_t len, uint64_t q);

/**
 * The functional simulator's butterfly lane op, fused: per element
 * t = w[i] * y[i] mod q, sum[i] = x[i] + t, diff[i] = x[i] - t, all
 * canonical. sum/diff must not alias the inputs.
 */
void butterflyMulModSpan(const uint64_t *x, const uint64_t *y,
                         const uint64_t *w, uint64_t *sum,
                         uint64_t *diff, size_t len,
                         const NarrowModulus &m);

/**
 * One forward (Cooley-Tukey) butterfly group with lazy reduction:
 * inputs in [0, 4q), outputs in [0, 4q). Per element:
 *   x' = csub(lo, 2q) + t;  hi' = csub(lo, 2q) - t + 2q
 * with t = mulShoupLazy(w, hi) < 2q. Canonicalise after the last
 * stage with canonicalizeSpan().
 */
void forwardButterflyLazySpan(uint64_t *lo, uint64_t *hi, size_t len,
                              uint64_t w, uint64_t wShoup, uint64_t q);

/**
 * One inverse (Gentleman-Sande) butterfly group with lazy reduction:
 * inputs in [0, 2q), outputs in [0, 2q). Per element:
 *   lo' = csub(lo + hi, 2q);  hi' = mulShoupLazy(w, lo - hi + 2q)
 */
void inverseButterflyLazySpan(uint64_t *lo, uint64_t *hi, size_t len,
                              uint64_t w, uint64_t wShoup, uint64_t q);

/** Reduce x[i] in [0, 4q) to canonical [0, q). */
void canonicalizeSpan(uint64_t *x, size_t len, uint64_t q);

namespace detail {

/** The dispatchable kernel set; one instance per ISA. */
struct KernelTable
{
    void (*mulShoupSpan)(const uint64_t *, uint64_t *, size_t, uint64_t,
                         uint64_t, uint64_t);
    void (*mulModSpan)(const uint64_t *, const uint64_t *, uint64_t *,
                       size_t, const NarrowModulus &);
    void (*addModSpan)(const uint64_t *, const uint64_t *, uint64_t *,
                       size_t, uint64_t);
    void (*subModSpan)(const uint64_t *, const uint64_t *, uint64_t *,
                       size_t, uint64_t);
    void (*butterflyMulModSpan)(const uint64_t *, const uint64_t *,
                                const uint64_t *, uint64_t *, uint64_t *,
                                size_t, const NarrowModulus &);
    void (*forwardButterflyLazySpan)(uint64_t *, uint64_t *, size_t,
                                     uint64_t, uint64_t, uint64_t);
    void (*inverseButterflyLazySpan)(uint64_t *, uint64_t *, size_t,
                                     uint64_t, uint64_t, uint64_t);
    void (*canonicalizeSpan)(uint64_t *, size_t, uint64_t);
    const char *isa;
};

/** nullptr when the build/CPU cannot run AVX2 code. */
const KernelTable *avx2KernelTable();

/** nullptr when not an AArch64 build. */
const KernelTable *neonKernelTable();

/** The always-available scalar-u64 kernel set. */
const KernelTable *scalarKernelTable();

} // namespace detail

} // namespace rpu::simd

#endif // RPU_MODMATH_SIMD_HH
