/**
 * @file
 * 64-bit modular arithmetic for the CPU baseline (paper Fig. 10 runs
 * the CPU NTT on both 64-bit and 128-bit data).
 *
 * Uses the native u128 for products plus Barrett reduction, and the
 * Shoup/Harvey trick for multiplication by precomputed constants —
 * the standard high-performance CPU NTT inner loop.
 */

#ifndef RPU_MODMATH_MOD64_HH
#define RPU_MODMATH_MOD64_HH

#include <cstdint>

#include "common/random.hh"

namespace rpu {

/** A 64-bit modulus (q < 2^62 so lazy sums never overflow). */
class Modulus64
{
  public:
    explicit Modulus64(uint64_t q);

    uint64_t value() const { return q_; }

    uint64_t
    add(uint64_t a, uint64_t b) const
    {
        const uint64_t s = a + b;
        return s >= q_ ? s - q_ : s;
    }

    uint64_t
    sub(uint64_t a, uint64_t b) const
    {
        return a >= b ? a - b : a + (q_ - b);
    }

    /** (a * b) mod q via the native 128-bit product. */
    uint64_t
    mul(uint64_t a, uint64_t b) const
    {
        return uint64_t((u128(a) * b) % q_);
    }

    /** Precompute the Shoup constant floor(w * 2^64 / q) for @p w. */
    uint64_t
    shoupPrecompute(uint64_t w) const
    {
        return uint64_t((u128(w) << 64) / q_);
    }

    /**
     * Shoup multiplication: w * a mod q with w's precomputed constant.
     * Result is in [0, q).
     */
    uint64_t
    mulShoup(uint64_t w, uint64_t w_shoup, uint64_t a) const
    {
        const uint64_t hi = uint64_t((u128(w_shoup) * a) >> 64);
        const uint64_t r = w * a - hi * q_;
        return r >= q_ ? r - q_ : r;
    }

    uint64_t pow(uint64_t a, uint64_t e) const;
    uint64_t inv(uint64_t a) const;

  private:
    uint64_t q_;
};

} // namespace rpu

#endif // RPU_MODMATH_MOD64_HH
