#include "modmath/modulus.hh"

#include "common/logging.hh"

namespace rpu {

Modulus::Modulus(u128 q) : q_(q)
{
    rpu_assert(q >= 2, "modulus must be >= 2");

    unsigned b = 0;
    for (u128 t = q; t != 0; t >>= 1)
        ++b;
    bits_ = b;

    if (!isOdd())
        return; // Montgomery constants are undefined; generic path only.

    if (simd::narrowModulusOk(q_))
        narrow_.emplace(uint64_t(q_));

    // Newton iteration for q^-1 mod 2^128: each step doubles the
    // number of correct low bits, so 7 steps starting from 1 bit
    // reach 128.
    u128 inv = 1;
    for (int i = 0; i < 7; ++i)
        inv *= 2 - q_ * inv;
    rpu_assert(q_ * inv == 1, "Montgomery inverse failed");
    qInvNeg_ = u128(0) - inv;

    // r2 = 2^256 mod q by doubling 2^128 mod q 128 times.
    u128 r = (~u128(0)) % q_; // 2^128 - 1 mod q
    r = add(r, 1);            // 2^128 mod q
    for (int i = 0; i < 128; ++i)
        r = add(r, r);
    r2_ = r;
}

u128
Modulus::redc(U256 t) const
{
    // m = (t mod 2^128) * (-q^-1) mod 2^128
    const u128 m = t.lo * qInvNeg_;
    // t = (t + m * q) / 2^128; the addition can carry out of 256 bits.
    U256 mq = mulWide(m, q_);
    const unsigned carry = addWithCarry(t, mq);
    u128 res = t.hi;
    if (carry || res >= q_)
        res -= q_;
    return res;
}

u128
Modulus::mul(u128 a, u128 b) const
{
    if (!isOdd())
        return mulGeneric(a, b);
    // REDC(a*b) = a*b*R^-1; multiplying by r2 = R^2 and reducing again
    // restores the plain representative.
    const u128 ab_red = redc(mulWide(a, b));
    return redc(mulWide(ab_red, r2_));
}

u128
Modulus::mulGeneric(u128 a, u128 b) const
{
    // Double-and-add: O(128) additions, only used for even moduli.
    u128 result = 0;
    a %= q_;
    while (b != 0) {
        if (b & 1)
            result = add(result, a);
        a = add(a, a);
        b >>= 1;
    }
    return result;
}

u128
Modulus::pow(u128 a, u128 e) const
{
    u128 base = reduce(a);
    u128 result = reduce(1);
    while (e != 0) {
        if (e & 1)
            result = mul(result, base);
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

u128
Modulus::inv(u128 a) const
{
    rpu_assert(a % q_ != 0, "inverse of zero");
    return pow(a, q_ - 2);
}

u128
Modulus::toMont(u128 a) const
{
    rpu_assert(isOdd(), "Montgomery form requires an odd modulus");
    return redc(mulWide(reduce(a), r2_));
}

} // namespace rpu
