/**
 * @file
 * NTT-friendly prime generation and primitive-root search.
 *
 * A negacyclic NTT over Z_q[x]/(x^n + 1) needs a primitive 2n-th root
 * of unity, which exists iff q == 1 (mod 2n). We generate primes of
 * the form k * 2^m + 1 at a requested bit width, then find psi with
 * psi^n == -1 (a primitive 2n-th root).
 */

#ifndef RPU_MODMATH_PRIMEGEN_HH
#define RPU_MODMATH_PRIMEGEN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace rpu {

/**
 * Find the largest prime q < 2^bits with q == 1 (mod 2n).
 * @param bits total width in [10, 128]
 * @param n    power-of-two ring dimension
 */
u128 nttPrime(unsigned bits, uint64_t n);

/**
 * Find @p count distinct NTT-friendly primes just below 2^bits
 * (pairwise co-prime by construction — they are distinct primes),
 * suitable as an RNS basis.
 */
std::vector<u128> nttPrimes(unsigned bits, uint64_t n, size_t count);

/**
 * A primitive 2n-th root of unity mod prime @p q (psi with
 * psi^n == -1). Fatal if q != 1 (mod 2n).
 */
u128 primitiveRoot2n(u128 q, uint64_t n, uint64_t seed = 0x900d);

} // namespace rpu

#endif // RPU_MODMATH_PRIMEGEN_HH
