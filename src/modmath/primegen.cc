#include "modmath/primegen.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "modmath/modulus.hh"
#include "modmath/primality.hh"

namespace rpu {

u128
nttPrime(unsigned bits, uint64_t n)
{
    rpu_assert(bits >= 10 && bits <= 128, "prime width %u unsupported", bits);
    rpu_assert(isPow2(n), "ring dimension must be a power of two");

    const u128 step = u128(2) * n;
    // Start from the largest value < 2^bits congruent to 1 mod 2n.
    const u128 top = bits == 128 ? ~u128(0) : (u128(1) << bits) - 1;
    u128 candidate = top - ((top - 1) % step);
    while (candidate > step) {
        if (isPrime(candidate))
            return candidate;
        candidate -= step;
    }
    rpu_fatal("no %u-bit NTT prime for n = %llu", bits,
              (unsigned long long)n);
}

std::vector<u128>
nttPrimes(unsigned bits, uint64_t n, size_t count)
{
    std::vector<u128> primes;
    const u128 step = u128(2) * n;
    const u128 top = bits == 128 ? ~u128(0) : (u128(1) << bits) - 1;
    u128 candidate = top - ((top - 1) % step);
    while (primes.size() < count && candidate > step) {
        if (isPrime(candidate))
            primes.push_back(candidate);
        candidate -= step;
    }
    if (primes.size() < count)
        rpu_fatal("could not find %zu NTT primes at %u bits", count, bits);
    return primes;
}

u128
primitiveRoot2n(u128 q, uint64_t n, uint64_t seed)
{
    rpu_assert(isPow2(n), "ring dimension must be a power of two");
    const Modulus mod(q);
    const u128 order = u128(2) * n;
    if ((q - 1) % order != 0)
        rpu_fatal("modulus does not support a 2n-th root (q != 1 mod 2n)");

    const u128 cofactor = (q - 1) / order;
    Rng rng(seed);
    for (int attempt = 0; attempt < 4096; ++attempt) {
        const u128 r = 2 + rng.below128(q - 3);
        const u128 psi = mod.pow(r, cofactor);
        // psi has order dividing 2n; it is primitive iff psi^n == -1.
        if (mod.pow(psi, n) == q - 1)
            return psi;
    }
    rpu_fatal("primitive root search failed (is q prime?)");
}

} // namespace rpu
