/**
 * @file
 * 128-bit modular arithmetic — the numeric core of the LAW engine.
 *
 * The RPU operates on 128-bit ring elements (paper section III-A).
 * Multiplication modulo a 128-bit prime requires 256-bit intermediate
 * products; we use Montgomery reduction (R = 2^128) for speed, with a
 * plain double-and-add fallback for even moduli so that the ISA-level
 * semantics ("a * b mod q") hold for any modulus value.
 *
 * All public entry points take and return *plain* (non-Montgomery)
 * representatives in [0, q); Montgomery form is an internal detail
 * except for the explicit toMont()/mulMontNormal() fast path used by
 * the reference NTT's precomputed twiddles.
 */

#ifndef RPU_MODMATH_MODULUS_HH
#define RPU_MODMATH_MODULUS_HH

#include <cstdint>
#include <optional>

#include "common/random.hh"
#include "modmath/simd.hh"
#include "wide/u256.hh"

namespace rpu {

/**
 * A fixed 128-bit modulus with precomputed Montgomery constants.
 */
class Modulus
{
  public:
    /** Precompute constants for modulus @p q (q >= 2). */
    explicit Modulus(u128 q);

    u128 value() const { return q_; }
    unsigned bits() const { return bits_; }

    /** (a + b) mod q; inputs must already be reduced. */
    u128
    add(u128 a, u128 b) const
    {
        // a + b can exceed 2^128; detect wraparound explicitly.
        const u128 s = a + b;
        if (s < a || s >= q_)
            return s - q_;
        return s;
    }

    /** (a - b) mod q; inputs must already be reduced. */
    u128
    sub(u128 a, u128 b) const
    {
        return a >= b ? a - b : a + (q_ - b);
    }

    /** (a * b) mod q for any modulus; inputs must be reduced. */
    u128 mul(u128 a, u128 b) const;

    /** a^e mod q. */
    u128 pow(u128 a, u128 e) const;

    /** Multiplicative inverse via Fermat (q must be prime). */
    u128 inv(u128 a) const;

    /** Reduce an arbitrary 128-bit value into [0, q). */
    u128 reduce(u128 a) const { return a % q_; }

    /** Reduce a 256-bit value into [0, q). Setup/oracle path. */
    u128 reduceWide(const U256 &a) const { return mod256by128(a, q_); }

    /** Negate: (q - a) mod q. */
    u128 neg(u128 a) const { return a == 0 ? 0 : q_ - a; }

    /**
     * Convert to Montgomery form (a * 2^128 mod q). Only valid for
     * odd moduli.
     */
    u128 toMont(u128 a) const;

    /**
     * Multiply a Montgomery-form constant by a plain value, returning
     * a plain value: REDC(aMont * b) = a * b mod q. This is the fast
     * path used with precomputed twiddles (one reduction per product).
     */
    u128
    mulMontNormal(u128 a_mont, u128 b) const
    {
        return redc(mulWide(a_mont, b));
    }

    bool isOdd() const { return (q_ & 1) != 0; }

    /**
     * The per-modulus constants for the vectorised u64 kernel set, or
     * nullptr when q is outside the narrow domain (even or >= 2^62).
     * Built once at construction; the contexts are cached and shared
     * (ModulusContextCache, RnsBasis), so hot paths never rebuild it.
     */
    const simd::NarrowModulus *
    narrow() const
    {
        return narrow_ ? &*narrow_ : nullptr;
    }

  private:
    /** Montgomery reduction: t * 2^-128 mod q, for t < q * 2^128. */
    u128 redc(U256 t) const;

    /** Slow but fully general multiply (used for even moduli). */
    u128 mulGeneric(u128 a, u128 b) const;

    u128 q_;
    u128 qInvNeg_ = 0; ///< -q^-1 mod 2^128 (odd q only)
    u128 r2_ = 0;      ///< 2^256 mod q (odd q only)
    unsigned bits_;
    std::optional<simd::NarrowModulus> narrow_; ///< q < 2^62 and odd
};

} // namespace rpu

#endif // RPU_MODMATH_MODULUS_HH
