/**
 * @file
 * NEON (AArch64) specialisation of the narrow kernels: two u64 lanes
 * per op. AArch64 guarantees Advanced SIMD, so there is no runtime
 * feature check — the table is available whenever this is an arm64
 * build. Like AVX2, NEON has no full 64x64 multiplier; mullo/mulhi
 * are composed from 32x32->64 vmull_u32 partial products. Unlike
 * AVX2, unsigned 64-bit compares exist (vcgeq_u64), which makes the
 * conditional subtraction direct.
 */

#include "modmath/simd.hh"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace rpu::simd {
namespace {

struct NeonVec
{
    uint64x2_t v;
    static constexpr size_t width = 2;

    static NeonVec load(const uint64_t *p) { return {vld1q_u64(p)}; }
    static void store(uint64_t *p, NeonVec x) { vst1q_u64(p, x.v); }
    static NeonVec set1(uint64_t x) { return {vdupq_n_u64(x)}; }
    static NeonVec add(NeonVec a, NeonVec b)
    {
        return {vaddq_u64(a.v, b.v)};
    }
    static NeonVec sub(NeonVec a, NeonVec b)
    {
        return {vsubq_u64(a.v, b.v)};
    }

    static NeonVec
    mullo(NeonVec a, NeonVec b)
    {
        const uint32x2_t aLo = vmovn_u64(a.v);
        const uint32x2_t bLo = vmovn_u64(b.v);
        const uint32x2_t aHi = vshrn_n_u64(a.v, 32);
        const uint32x2_t bHi = vshrn_n_u64(b.v, 32);
        const uint64x2_t loLo = vmull_u32(aLo, bLo);
        const uint64x2_t cross =
            vaddq_u64(vmull_u32(aHi, bLo), vmull_u32(aLo, bHi));
        return {vaddq_u64(loLo, vshlq_n_u64(cross, 32))};
    }

    static NeonVec
    mulhi(NeonVec a, NeonVec b)
    {
        const uint32x2_t aLo = vmovn_u64(a.v);
        const uint32x2_t bLo = vmovn_u64(b.v);
        const uint32x2_t aHi = vshrn_n_u64(a.v, 32);
        const uint32x2_t bHi = vshrn_n_u64(b.v, 32);
        const uint64x2_t loLo = vmull_u32(aLo, bLo);
        const uint64x2_t hiLo = vmull_u32(aHi, bLo);
        const uint64x2_t loHi = vmull_u32(aLo, bHi);
        const uint64x2_t hiHi = vmull_u32(aHi, bHi);
        const uint64x2_t mask32 = vdupq_n_u64(0xffffffffull);
        const uint64x2_t mid = vaddq_u64(
            vaddq_u64(vshrq_n_u64(loLo, 32), vandq_u64(hiLo, mask32)),
            vandq_u64(loHi, mask32));
        return {vaddq_u64(
            vaddq_u64(hiHi, vshrq_n_u64(hiLo, 32)),
            vaddq_u64(vshrq_n_u64(loHi, 32), vshrq_n_u64(mid, 32)))};
    }

    static NeonVec
    csub(NeonVec x, NeonVec q)
    {
        const uint64x2_t ge = vcgeq_u64(x.v, q.v); // all-ones where x>=q
        return {vsubq_u64(x.v, vandq_u64(ge, q.v))};
    }

    static NeonVec
    nonzero01(NeonVec x)
    {
        const uint64x2_t eq0 = vceqq_u64(x.v, vdupq_n_u64(0));
        return {vaddq_u64(vdupq_n_u64(1), eq0)}; // 1 + (-1 | 0)
    }
};

using VecT = NeonVec;
#include "modmath/simd_kernels.inl"

} // namespace

namespace detail {

const KernelTable *
neonKernelTable()
{
    static const KernelTable table = {
        mulShoupSpanImpl,
        mulModSpanImpl,
        addModSpanImpl,
        subModSpanImpl,
        butterflyMulModSpanImpl,
        forwardButterflyLazySpanImpl,
        inverseButterflyLazySpanImpl,
        canonicalizeSpanImpl,
        "neon",
    };
    return &table;
}

} // namespace detail
} // namespace rpu::simd

#else // not AArch64

namespace rpu::simd::detail {

const KernelTable *
neonKernelTable()
{
    return nullptr;
}

} // namespace rpu::simd::detail

#endif
