/**
 * @file
 * Probabilistic primality testing for up to 128-bit candidates.
 */

#ifndef RPU_MODMATH_PRIMALITY_HH
#define RPU_MODMATH_PRIMALITY_HH

#include "common/random.hh"

namespace rpu {

/**
 * Miller-Rabin with @p rounds random bases (error probability
 * <= 4^-rounds). Deterministic small-prime trial division first.
 */
bool isPrime(u128 n, unsigned rounds = 40, uint64_t seed = 0x5eed);

} // namespace rpu

#endif // RPU_MODMATH_PRIMALITY_HH
