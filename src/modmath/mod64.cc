#include "modmath/mod64.hh"

#include "common/logging.hh"

namespace rpu {

Modulus64::Modulus64(uint64_t q) : q_(q)
{
    rpu_assert(q >= 2, "modulus must be >= 2");
    rpu_assert(q < (uint64_t(1) << 62), "Modulus64 requires q < 2^62");
}

uint64_t
Modulus64::pow(uint64_t a, uint64_t e) const
{
    uint64_t base = a % q_;
    uint64_t result = 1 % q_;
    while (e != 0) {
        if (e & 1)
            result = mul(result, base);
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

uint64_t
Modulus64::inv(uint64_t a) const
{
    rpu_assert(a % q_ != 0, "inverse of zero");
    return pow(a, q_ - 2);
}

} // namespace rpu
