#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace rpu {

namespace {

void
vreport(FILE *stream, const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s: ", tag);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
    std::fflush(stream);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info", fmt, args);
    va_end(args);
}

} // namespace rpu
