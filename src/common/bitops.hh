/**
 * @file
 * Small bit-manipulation helpers shared across the library.
 */

#ifndef RPU_COMMON_BITOPS_HH
#define RPU_COMMON_BITOPS_HH

#include <cstddef>
#include <cstdint>

namespace rpu {

/** True iff @p x is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); @p x must be non-zero. */
constexpr unsigned
log2Floor(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** ceil(log2(x)); @p x must be non-zero. */
constexpr unsigned
log2Ceil(uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/** Reverse the low @p bits bits of @p x (the classic NTT bit-reversal). */
constexpr uint64_t
bitReverse(uint64_t x, unsigned bits)
{
    uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/** ceil(a / b) for positive integers. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr uint64_t
roundUp(uint64_t a, uint64_t b)
{
    return divCeil(a, b) * b;
}

} // namespace rpu

#endif // RPU_COMMON_BITOPS_HH
