/**
 * @file
 * Deterministic pseudo-random generation (xoshiro256**).
 *
 * The standard <random> engines are not guaranteed to be reproducible
 * across library implementations; simulators want bit-stable test
 * vectors, so we carry our own small engine.
 */

#ifndef RPU_COMMON_RANDOM_HH
#define RPU_COMMON_RANDOM_HH

#include <cstdint>

namespace rpu {

/** 128-bit unsigned integer used pervasively for ring elements. */
using u128 = unsigned __int128;

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, reproducible.
 */
class Rng
{
  public:
    /** Seed with splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x243f6a8885a308d3ull);

    /** Next 64 uniformly random bits. */
    uint64_t next64();

    /** Next 128 uniformly random bits. */
    u128 next128();

    /** Uniform value in [0, bound) for a non-zero 64-bit bound. */
    uint64_t below64(uint64_t bound);

    /** Uniform value in [0, bound) for a non-zero 128-bit bound. */
    u128 below128(u128 bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    uint64_t state[4];
};

} // namespace rpu

#endif // RPU_COMMON_RANDOM_HH
