/**
 * @file
 * Status/error reporting helpers in the gem5 style.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  - the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits cleanly with code 1.
 * warn()   - something is suspicious but execution can continue.
 * inform() - neutral status output.
 */

#ifndef RPU_COMMON_LOGGING_HH
#define RPU_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rpu {

/** Print a formatted message and abort. Use for internal bugs only. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message and exit(1). Use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning to stderr; execution continues. */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

#define rpu_panic(...) ::rpu::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rpu_fatal(...) ::rpu::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rpu_warn(...) ::rpu::warnImpl(__VA_ARGS__)
#define rpu_inform(...) ::rpu::informImpl(__VA_ARGS__)

/**
 * Internal invariant check that is kept in release builds.
 * Unlike assert(), the condition is always evaluated.
 */
#define rpu_assert(cond, fmt, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rpu::panicImpl(__FILE__, __LINE__,                            \
                             "assertion '%s' failed: " fmt, #cond,          \
                             ##__VA_ARGS__);                                \
        }                                                                   \
    } while (0)

} // namespace rpu

#endif // RPU_COMMON_LOGGING_HH
