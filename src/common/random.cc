#include "common/random.hh"

namespace rpu {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    for (auto &s : state)
        s = splitmix64(seed);
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

u128
Rng::next128()
{
    return (u128(next64()) << 64) | next64();
}

uint64_t
Rng::below64(uint64_t bound)
{
    // Rejection sampling on the top range to avoid modulo bias.
    const uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t x;
    do {
        x = next64();
    } while (x >= limit && limit != 0);
    return x % bound;
}

u128
Rng::below128(u128 bound)
{
    const u128 maxv = ~u128(0);
    const u128 limit = bound * (maxv / bound);
    u128 x;
    do {
        x = next128();
    } while (x >= limit && limit != 0);
    return x % bound;
}

double
Rng::nextDouble()
{
    return (next64() >> 11) * 0x1.0p-53;
}

} // namespace rpu
