/**
 * @file
 * Architectural constants of B512 and the microarchitectural
 * configuration knobs of the RPU (paper sections III-A and VI-A).
 */

#ifndef RPU_SIM_ARCH_CONFIG_HH
#define RPU_SIM_ARCH_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace rpu {

/** Fixed B512 architectural parameters (paper section III-A). */
namespace arch {

constexpr unsigned kVectorLength = 512; ///< lanes per vector register
constexpr unsigned kNumVregs = 64;
constexpr unsigned kNumSregs = 64;
constexpr unsigned kNumAregs = 64;
constexpr unsigned kNumMregs = 64;
constexpr unsigned kWordBytes = 16; ///< 128-bit elements

constexpr size_t kVdmDefaultBytes = 4ull << 20;  ///< 4 MiB default
constexpr size_t kVdmMaxBytes = 32ull << 20;     ///< 32 MiB ISA maximum
constexpr size_t kSdmBytes = 32ull << 10;        ///< 32 KiB
constexpr size_t kImBytes = 512ull << 10;        ///< 512 KiB
constexpr unsigned kInstrBytes = 8;              ///< 64-bit instructions

constexpr size_t kVdmDefaultWords = kVdmDefaultBytes / kWordBytes;
constexpr size_t kSdmWords = kSdmBytes / kWordBytes;
constexpr size_t kImMaxInstrs = kImBytes / kInstrBytes;

} // namespace arch

/**
 * One RPU design point. The paper's design-space exploration sweeps
 * the number of HPLEs, the number of VDM banks, the multiplier
 * pipeline (latency and initiation interval), and the crossbar
 * latencies (Figs. 3, 4, 7, 8).
 */
struct RpuConfig
{
    unsigned numHples = 128;
    unsigned numBanks = 128;
    size_t vdmBytes = arch::kVdmDefaultBytes;

    // HPLE modular-multiplier pipeline (Fig. 7 sweeps these).
    unsigned mulLatency = 5;
    unsigned mulII = 1;
    unsigned addLatency = 2; ///< modular adder/subtractor depth

    // Crossbar / memory latencies (Fig. 8 sweeps these).
    unsigned shuffleLatency = 4; ///< SBAR traversal
    unsigned lsLatency = 4;      ///< VBAR + VDM access
    unsigned sdmLatency = 2;     ///< scalar memory access

    // Front-end / queue sizing.
    unsigned queueDepth = 8;     ///< per decoupled queue
    unsigned dispatchWidth = 1;  ///< instructions dispatched per cycle

    /**
     * If true, an in-flight reader also blocks later readers of the
     * same register (strictest reading of the paper's "tracks all the
     * vector registers being used"). Default allows concurrent
     * readers, which twiddle-register reuse depends on.
     */
    bool exclusiveReaders = false;

    /** Fatal on invalid combinations (user configuration error). */
    void validate() const;

    /** e.g. "(128, 128)" — the paper's (HPLEs, banks) notation. */
    std::string name() const;

    size_t vdmWords() const { return vdmBytes / arch::kWordBytes; }
};

} // namespace rpu

#endif // RPU_SIM_ARCH_CONFIG_HH
