#include "sim/cycle/pipelines.hh"

#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "sim/functional/executor.hh"

namespace rpu {

uint64_t
bankBeats(AddrMode mode, unsigned value, unsigned banks)
{
    // Count how many (distinct, for REPEATED) words each bank serves;
    // the slowest bank sets the beat count. Word w lives in bank
    // w % banks (low-order interleaving).
    std::vector<uint32_t> per_bank(banks, 0);
    uint64_t prev_off = ~uint64_t(0);
    for (unsigned lane = 0; lane < arch::kVectorLength; ++lane) {
        const uint64_t off =
            FunctionalSimulator::laneOffset(mode, value, lane);
        if (mode == AddrMode::REPEATED && off == prev_off)
            continue; // same word replicated: one physical read
        prev_off = off;
        ++per_bank[off % banks];
    }
    uint32_t worst = 1;
    for (uint32_t c : per_bank)
        worst = std::max(worst, c);
    return worst;
}

uint64_t
instrBeats(const Instruction &instr, const RpuConfig &cfg)
{
    const uint64_t lane_groups =
        divCeil(arch::kVectorLength, cfg.numHples);
    switch (instr.pipeClass()) {
      case InstrClass::Compute: {
        const bool uses_multiplier = instr.op == Opcode::VMULMOD ||
                                     instr.op == Opcode::VSMULMOD;
        return lane_groups * (uses_multiplier ? cfg.mulII : 1);
      }
      case InstrClass::Shuffle:
        return lane_groups;
      case InstrClass::LoadStore:
        switch (instr.op) {
          case Opcode::VLOAD:
          case Opcode::VSTORE:
            return bankBeats(instr.mode, instr.modeValue, cfg.numBanks);
          case Opcode::VBCAST:
            return lane_groups;
          default:
            return 1; // SLOAD / MLOAD / ALOAD
        }
    }
    rpu_panic("unknown pipeline class");
}

uint64_t
instrLatency(const Instruction &instr, const RpuConfig &cfg)
{
    switch (instr.pipeClass()) {
      case InstrClass::Compute:
        if (instr.isButterfly())
            return cfg.mulLatency + cfg.addLatency;
        if (instr.op == Opcode::VMULMOD || instr.op == Opcode::VSMULMOD)
            return cfg.mulLatency;
        return cfg.addLatency;
      case InstrClass::Shuffle:
        return cfg.shuffleLatency;
      case InstrClass::LoadStore:
        switch (instr.op) {
          case Opcode::VLOAD:
          case Opcode::VSTORE:
            return cfg.lsLatency;
          case Opcode::VBCAST:
            return cfg.sdmLatency + cfg.lsLatency;
          default:
            return cfg.sdmLatency;
        }
    }
    rpu_panic("unknown pipeline class");
}

} // namespace rpu
