#include "sim/cycle/frontend.hh"

namespace rpu {

Frontend::Frontend(const Program &prog, const RpuConfig &cfg)
    : prog_(prog), cfg_(cfg)
{
    infos_.reserve(prog.size());
    for (const auto &instr : prog.instructions()) {
        DecodedInfo d;
        d.use = regUses(instr);
        d.beats = instrBeats(instr, cfg);
        d.latency = instrLatency(instr, cfg);
        d.cls = instr.pipeClass();
        infos_.push_back(d);
    }
}

StallReason
Frontend::dispatchCycle(Busyboard &bb, Pipeline &ls, Pipeline &compute,
                        Pipeline &shuffle, uint64_t &fetched)
{
    for (unsigned slot = 0; slot < cfg_.dispatchWidth; ++slot) {
        if (done())
            return StallReason::None;
        const DecodedInfo &d = infos_[pc_];
        if (!bb.canIssue(d.use))
            return StallReason::Busyboard;
        Pipeline &pipe = d.cls == InstrClass::LoadStore ? ls
                         : d.cls == InstrClass::Compute ? compute
                                                        : shuffle;
        if (pipe.queueFull())
            return StallReason::QueueFull;
        bb.acquire(d.use);
        pipe.enqueue(pc_, d.beats);
        ++fetched;
        ++pc_;
    }
    return StallReason::None;
}

} // namespace rpu
