/**
 * @file
 * The RPU cycle-level performance simulator (paper section VI-A).
 *
 * Timing-only: functional correctness is established separately by the
 * FunctionalSimulator; this model accounts for every cycle of the
 * front-end, busyboard, queues, and the three decoupled pipelines.
 * The paper validated its simulator against an RTL implementation on
 * a Palladium emulator at 97% accuracy; here the model is validated
 * against closed-form bounds and hand-computed micro-programs
 * (see tests/test_cycle_sim.cc and DESIGN.md section 7).
 */

#ifndef RPU_SIM_CYCLE_SIMULATOR_HH
#define RPU_SIM_CYCLE_SIMULATOR_HH

#include "isa/program.hh"
#include "sim/arch_config.hh"
#include "sim/cycle/stats.hh"

namespace rpu {

/** Simulate @p prog on design point @p cfg and return its timing. */
CycleStats simulateCycles(const Program &prog, const RpuConfig &cfg);

/**
 * Closed-form lower bound on the cycle count: each pipeline's total
 * busy beats, the dispatch throughput, and the critical-path drain
 * are all hard floors. Used to sanity-check the simulator (our
 * substitute for the paper's RTL validation).
 */
uint64_t cycleLowerBound(const Program &prog, const RpuConfig &cfg);

} // namespace rpu

#endif // RPU_SIM_CYCLE_SIMULATOR_HH
