#include "sim/cycle/busyboard.hh"

#include "common/logging.hh"

namespace rpu {

RegUse
regUses(const Instruction &instr)
{
    RegUse u;
    switch (instr.op) {
      case Opcode::VLOAD:
        u.addRead(RegClass::Address, instr.rm);
        u.addWrite(RegClass::Vector, instr.vd);
        break;
      case Opcode::VSTORE:
        u.addRead(RegClass::Address, instr.rm);
        u.addRead(RegClass::Vector, instr.vs);
        break;
      case Opcode::VBCAST:
        u.addRead(RegClass::Address, instr.rm);
        u.addWrite(RegClass::Vector, instr.vd);
        break;
      case Opcode::SLOAD:
        u.addWrite(RegClass::Scalar, instr.rt);
        break;
      case Opcode::MLOAD:
        u.addWrite(RegClass::Modulus, instr.rt);
        break;
      case Opcode::ALOAD:
        u.addWrite(RegClass::Address, instr.rt);
        break;
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
      case Opcode::VMULMOD:
        u.addRead(RegClass::Vector, instr.vs);
        u.addRead(RegClass::Vector, instr.vt);
        u.addRead(RegClass::Modulus, instr.rm);
        u.addWrite(RegClass::Vector, instr.vd);
        if (instr.bfly) {
            u.addRead(RegClass::Vector, instr.vt1);
            u.addWrite(RegClass::Vector, instr.vd1);
        }
        break;
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD:
        u.addRead(RegClass::Vector, instr.vs);
        u.addRead(RegClass::Scalar, instr.rt);
        u.addRead(RegClass::Modulus, instr.rm);
        u.addWrite(RegClass::Vector, instr.vd);
        break;
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        u.addRead(RegClass::Vector, instr.vs);
        u.addRead(RegClass::Vector, instr.vt);
        u.addWrite(RegClass::Vector, instr.vd);
        break;
    }
    return u;
}

bool
Busyboard::canIssue(const RegUse &use) const
{
    for (unsigned i = 0; i < use.numWrites; ++i) {
        const auto &r = use.writes[i];
        const unsigned c = unsigned(r.cls);
        if (write_count_[c][r.idx] != 0 || read_count_[c][r.idx] != 0)
            return false;
    }
    for (unsigned i = 0; i < use.numReads; ++i) {
        const auto &r = use.reads[i];
        const unsigned c = unsigned(r.cls);
        if (write_count_[c][r.idx] != 0)
            return false;
        if (exclusive_readers_ && read_count_[c][r.idx] != 0)
            return false;
    }
    return true;
}

void
Busyboard::acquire(const RegUse &use)
{
    for (unsigned i = 0; i < use.numReads; ++i)
        ++read_count_[unsigned(use.reads[i].cls)][use.reads[i].idx];
    for (unsigned i = 0; i < use.numWrites; ++i)
        ++write_count_[unsigned(use.writes[i].cls)][use.writes[i].idx];
}

void
Busyboard::release(const RegUse &use)
{
    for (unsigned i = 0; i < use.numReads; ++i) {
        auto &cnt = read_count_[unsigned(use.reads[i].cls)][use.reads[i].idx];
        rpu_assert(cnt > 0, "busyboard read underflow");
        --cnt;
    }
    for (unsigned i = 0; i < use.numWrites; ++i) {
        auto &cnt =
            write_count_[unsigned(use.writes[i].cls)][use.writes[i].idx];
        rpu_assert(cnt > 0, "busyboard write underflow");
        --cnt;
    }
}

bool
Busyboard::idle() const
{
    for (unsigned c = 0; c < kClasses; ++c) {
        for (unsigned r = 0; r < kRegs; ++r) {
            if (read_count_[c][r] != 0 || write_count_[c][r] != 0)
                return false;
        }
    }
    return true;
}

} // namespace rpu
