/**
 * @file
 * The RPU front-end: in-order fetch/decode, busyboard hazard check,
 * dispatch into the three decoupled queues (paper section IV-A).
 *
 * "No renaming is supported, and whenever a decoded instruction
 *  register is busy, the entire front-end stalls."
 */

#ifndef RPU_SIM_CYCLE_FRONTEND_HH
#define RPU_SIM_CYCLE_FRONTEND_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sim/cycle/busyboard.hh"
#include "sim/cycle/pipelines.hh"

namespace rpu {

/** Static per-instruction dispatch information, precomputed once. */
struct DecodedInfo
{
    RegUse use;
    uint64_t beats;
    uint64_t latency;
    InstrClass cls;
};

/** Why the front-end could not dispatch this cycle. */
enum class StallReason : uint8_t
{
    None,      ///< dispatched (or program drained)
    Busyboard, ///< register hazard against an in-flight instruction
    QueueFull, ///< target pipeline queue has no space
};

/** In-order single-issue front-end. */
class Frontend
{
  public:
    Frontend(const Program &prog, const RpuConfig &cfg);

    bool done() const { return pc_ >= infos_.size(); }

    const DecodedInfo &info(uint32_t idx) const { return infos_[idx]; }

    /**
     * Try to dispatch up to dispatchWidth instructions this cycle,
     * adding the number dispatched to @p fetched (a running IM-fetch
     * counter). Returns the reason the slot was lost, if any.
     */
    StallReason dispatchCycle(Busyboard &bb, Pipeline &ls, Pipeline &compute,
                              Pipeline &shuffle, uint64_t &fetched);

  private:
    const Program &prog_;
    const RpuConfig &cfg_;
    std::vector<DecodedInfo> infos_;
    uint32_t pc_ = 0;
};

} // namespace rpu

#endif // RPU_SIM_CYCLE_FRONTEND_HH
