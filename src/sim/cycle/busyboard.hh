/**
 * @file
 * The busyboard: the RPU's lightweight scoreboarding mechanism
 * (paper section IV-A).
 *
 * The front-end is in-order with no renaming. A bit array tracks the
 * registers used by all in-flight instructions; a decoded instruction
 * whose registers conflict stalls the entire front-end until the
 * in-flight users complete. Once dispatched, instructions are known
 * dependence-free and the three pipelines may execute and complete
 * out of order.
 *
 * We refine "being used" into read-use and write-use so that multiple
 * in-flight readers of one register (e.g. a twiddle vector shared by
 * many butterflies) do not serialise; RpuConfig::exclusiveReaders
 * selects the stricter any-use-blocks interpretation.
 */

#ifndef RPU_SIM_CYCLE_BUSYBOARD_HH
#define RPU_SIM_CYCLE_BUSYBOARD_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/arch_config.hh"

namespace rpu {

/** Architected register classes tracked by the busyboard. */
enum class RegClass : uint8_t
{
    Vector = 0,
    Scalar,
    Address,
    Modulus,
};

/** Source/destination registers of one instruction. */
struct RegUse
{
    static constexpr unsigned kMaxReads = 4;
    static constexpr unsigned kMaxWrites = 2;

    struct Ref
    {
        RegClass cls;
        uint8_t idx;
    };

    std::array<Ref, kMaxReads> reads;
    std::array<Ref, kMaxWrites> writes;
    unsigned numReads = 0;
    unsigned numWrites = 0;

    void
    addRead(RegClass c, uint8_t i)
    {
        reads[numReads++] = {c, i};
    }

    void
    addWrite(RegClass c, uint8_t i)
    {
        writes[numWrites++] = {c, i};
    }
};

/** Compute the registers an instruction reads and writes. */
RegUse regUses(const Instruction &instr);

/** In-flight register usage tracker. */
class Busyboard
{
  public:
    explicit Busyboard(bool exclusive_readers = false)
        : exclusive_readers_(exclusive_readers)
    {
        for (auto &cls : read_count_)
            cls.fill(0);
        for (auto &cls : write_count_)
            cls.fill(0);
    }

    /**
     * True if @p use has no hazard against in-flight instructions:
     * no write to a register being read or written, and no read of a
     * register being written.
     */
    bool canIssue(const RegUse &use) const;

    /** Mark the registers of a dispatching instruction in flight. */
    void acquire(const RegUse &use);

    /** Clear the registers of a completing instruction. */
    void release(const RegUse &use);

    /** True when no registers are in flight (end-of-program check). */
    bool idle() const;

  private:
    static constexpr unsigned kClasses = 4;
    static constexpr unsigned kRegs = 64;

    std::array<std::array<uint16_t, kRegs>, kClasses> read_count_;
    std::array<std::array<uint16_t, kRegs>, kClasses> write_count_;
    bool exclusive_readers_;
};

} // namespace rpu

#endif // RPU_SIM_CYCLE_BUSYBOARD_HH
