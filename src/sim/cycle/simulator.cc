#include "sim/cycle/simulator.hh"

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "sim/cycle/frontend.hh"

namespace rpu {

namespace {

/** Structural access accounting for one executed instruction. */
void
countAccesses(const Instruction &instr, CycleStats &s)
{
    constexpr uint64_t VL = arch::kVectorLength;
    switch (instr.op) {
      case Opcode::VLOAD:
        s.vdmWordsRead += VL;
        s.vbarWords += VL;
        s.vrfWordWrites += VL;
        break;
      case Opcode::VSTORE:
        s.vrfWordReads += VL;
        s.vbarWords += VL;
        s.vdmWordsWritten += VL;
        break;
      case Opcode::VBCAST:
        s.sdmReads += 1;
        s.vrfWordWrites += VL;
        break;
      case Opcode::SLOAD:
      case Opcode::MLOAD:
      case Opcode::ALOAD:
        s.sdmReads += 1;
        break;
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
        s.vrfWordReads += 2 * VL;
        s.vrfWordWrites += VL;
        s.addLaneOps += VL;
        break;
      case Opcode::VMULMOD:
        if (instr.bfly) {
            s.vrfWordReads += 3 * VL;
            s.vrfWordWrites += 2 * VL;
            s.mulLaneOps += VL;
            s.addLaneOps += 2 * VL;
        } else {
            s.vrfWordReads += 2 * VL;
            s.vrfWordWrites += VL;
            s.mulLaneOps += VL;
        }
        break;
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
        s.vrfWordReads += VL;
        s.vrfWordWrites += VL;
        s.addLaneOps += VL;
        break;
      case Opcode::VSMULMOD:
        s.vrfWordReads += VL;
        s.vrfWordWrites += VL;
        s.mulLaneOps += VL;
        break;
      case Opcode::UNPKLO:
      case Opcode::UNPKHI:
      case Opcode::PKLO:
      case Opcode::PKHI:
        s.vrfWordReads += 2 * VL;
        s.vrfWordWrites += VL;
        s.sbarWords += VL;
        break;
    }
}

} // namespace

CycleStats
simulateCycles(const Program &prog, const RpuConfig &cfg)
{
    cfg.validate();
    if (prog.size() > arch::kImMaxInstrs)
        rpu_fatal("program '%s' exceeds the 512 KiB instruction memory",
                  prog.name().c_str());

    CycleStats stats;
    stats.mix = prog.mix();
    stats.instructions = prog.size();
    if (prog.empty())
        return stats;

    Frontend frontend(prog, cfg);
    Busyboard busyboard(cfg.exclusiveReaders);
    Pipeline ls_pipe(cfg.queueDepth);
    Pipeline compute_pipe(cfg.queueDepth);
    Pipeline shuffle_pipe(cfg.queueDepth);

    // Completion events: (cycle, instruction index), soonest first.
    using Event = std::pair<uint64_t, uint32_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> inflight;

    uint64_t now = 0;
    uint64_t retired = 0;
    // A generous progress guard: every instruction must retire within
    // this many cycles of simulation or the model has deadlocked.
    const uint64_t limit = 1000ull * prog.size() *
                               (arch::kVectorLength / cfg.numHples + 1) +
                           1000000ull;

    while (retired < prog.size()) {
        ++now;
        rpu_assert(now < limit, "cycle simulator deadlock in '%s'",
                   prog.name().c_str());

        // 1. Retire instructions completing by this cycle, releasing
        //    their busyboard claims.
        while (!inflight.empty() && inflight.top().first <= now) {
            const uint32_t idx = inflight.top().second;
            inflight.pop();
            busyboard.release(frontend.info(idx).use);
            ++retired;
        }

        // 2. Each pipeline starts its queue head if the previous
        //    occupant's beats have drained.
        const auto pump = [&](Pipeline &pipe, PipeStats &ps) {
            uint32_t idx;
            uint64_t beats;
            if (pipe.tryIssue(now, idx, beats)) {
                const DecodedInfo &d = frontend.info(idx);
                inflight.emplace(now + beats + d.latency, idx);
                ps.instrs += 1;
                ps.busyBeats += beats;
                countAccesses(prog[idx], stats);
            }
        };
        pump(ls_pipe, stats.ls);
        pump(compute_pipe, stats.compute);
        pump(shuffle_pipe, stats.shuffle);

        // 3. Front-end fetch/decode/dispatch. Every cycle lands in
        //    exactly one attribution bucket: dispatch progress, a
        //    stall reason, or the post-frontend drain tail.
        if (!frontend.done()) {
            const StallReason reason = frontend.dispatchCycle(
                busyboard, ls_pipe, compute_pipe, shuffle_pipe,
                stats.imFetches);
            if (reason == StallReason::Busyboard)
                ++stats.busyboardStallCycles;
            else if (reason == StallReason::QueueFull)
                ++stats.queueFullStallCycles;
            else
                ++stats.dispatchCycles;
        } else {
            ++stats.drainCycles;
        }
    }

    stats.cycles = now;
    return stats;
}

uint64_t
cycleLowerBound(const Program &prog, const RpuConfig &cfg)
{
    uint64_t ls_beats = 0, compute_beats = 0, shuffle_beats = 0;
    for (const auto &instr : prog.instructions()) {
        const uint64_t b = instrBeats(instr, cfg);
        switch (instr.pipeClass()) {
          case InstrClass::LoadStore:
            ls_beats += b;
            break;
          case InstrClass::Compute:
            compute_beats += b;
            break;
          case InstrClass::Shuffle:
            shuffle_beats += b;
            break;
        }
    }
    const uint64_t dispatch_floor =
        divCeil(prog.size(), cfg.dispatchWidth);
    uint64_t bound = std::max({ls_beats, compute_beats, shuffle_beats,
                               dispatch_floor});
    return bound;
}

std::string
CycleStats::report() const
{
    std::ostringstream os;
    os << "cycles: " << cycles << "  instructions: " << instructions
       << "\n";
    os << "front-end: dispatch " << dispatchCycles << ", busyboard stall "
       << busyboardStallCycles << ", queue-full stall "
       << queueFullStallCycles << ", drain " << drainCycles << "\n";
    const auto pct = [&](const PipeStats &p) {
        return cycles == 0 ? 0.0 : 100.0 * double(p.busyBeats) /
                                        double(cycles);
    };
    os << "ls pipeline:      " << ls.instrs << " instrs, " << ls.busyBeats
       << " busy beats (" << pct(ls) << "%)\n";
    os << "compute pipeline: " << compute.instrs << " instrs, "
       << compute.busyBeats << " busy beats (" << pct(compute) << "%)\n";
    os << "shuffle pipeline: " << shuffle.instrs << " instrs, "
       << shuffle.busyBeats << " busy beats (" << pct(shuffle) << "%)\n";
    os << "mix: " << mix.loads << " loads, " << mix.stores << " stores, "
       << mix.broadcasts << " broadcasts, " << mix.compute << " compute ("
       << mix.butterflies << " butterflies), " << mix.shuffles
       << " shuffles\n";
    return os.str();
}

} // namespace rpu
