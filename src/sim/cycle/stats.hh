/**
 * @file
 * Cycle-simulation statistics: timing, stall attribution, and the
 * structural access counts that feed the energy model (Fig. 5c).
 */

#ifndef RPU_SIM_CYCLE_STATS_HH
#define RPU_SIM_CYCLE_STATS_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace rpu {

/** Per-pipeline activity. */
struct PipeStats
{
    uint64_t instrs = 0;
    uint64_t busyBeats = 0; ///< cycles the pipeline issued work

    double
    utilisation(uint64_t cycles) const
    {
        return cycles == 0 ? 0.0 : double(busyBeats) / double(cycles);
    }
};

/** Results of one cycle-level simulation. */
struct CycleStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;

    // Front-end cycle attribution. Every simulated cycle lands in
    // exactly one bucket:
    //   cycles == dispatchCycles + busyboardStallCycles
    //           + queueFullStallCycles + drainCycles.
    uint64_t dispatchCycles = 0;       ///< front-end made progress
    uint64_t busyboardStallCycles = 0; ///< dispatch slot lost to a hazard
    uint64_t queueFullStallCycles = 0; ///< dispatch slot lost to backpressure
    uint64_t drainCycles = 0; ///< frontend done, pipelines draining

    PipeStats ls;
    PipeStats compute;
    PipeStats shuffle;

    // Structural access counts for the energy model.
    uint64_t vrfWordReads = 0;
    uint64_t vrfWordWrites = 0;
    uint64_t vdmWordsRead = 0;
    uint64_t vdmWordsWritten = 0;
    uint64_t vbarWords = 0; ///< words through the vector crossbar
    uint64_t sbarWords = 0; ///< words through the shuffle crossbar
    uint64_t sdmReads = 0;
    uint64_t imFetches = 0;
    uint64_t mulLaneOps = 0; ///< modular multiplier activations
    uint64_t addLaneOps = 0; ///< modular adder/subtractor activations

    InstructionMix mix;

    /** Wall-clock time at @p freq_ghz. */
    double
    runtimeUs(double freq_ghz) const
    {
        return double(cycles) / (freq_ghz * 1e3);
    }

    /** Multi-line human-readable report. */
    std::string report() const;
};

} // namespace rpu

#endif // RPU_SIM_CYCLE_STATS_HH
