/**
 * @file
 * The three decoupled execution pipelines (paper section IV).
 *
 * Each pipeline owns a FIFO queue fed by the front-end. Execution is
 * fully pipelined: an instruction occupies the pipeline for a number
 * of "beats" (issue cycles) and completes a fixed latency after its
 * last beat; the next queued instruction may start as soon as the
 * previous one's beats have drained, without waiting for completion.
 *
 * Beat counts model the structural width of each backend component:
 *  - compute: ceil(VL / HPLEs) element groups, times the multiplier
 *    initiation interval for multiplying instructions;
 *  - shuffle: ceil(VL / HPLEs) (the SBAR moves one word per VRF slice
 *    per cycle);
 *  - load/store: the maximum number of words any single VDM bank must
 *    serve, derived from the exact addressing pattern (one word per
 *    bank per cycle through the VBAR).
 */

#ifndef RPU_SIM_CYCLE_PIPELINES_HH
#define RPU_SIM_CYCLE_PIPELINES_HH

#include <cstdint>
#include <deque>

#include "isa/instruction.hh"
#include "sim/arch_config.hh"

namespace rpu {

/** Occupancy beats of @p instr on its pipeline under @p cfg. */
uint64_t instrBeats(const Instruction &instr, const RpuConfig &cfg);

/** Completion latency beyond the last beat. */
uint64_t instrLatency(const Instruction &instr, const RpuConfig &cfg);

/**
 * Max words any single bank serves for a 512-lane access with the
 * given addressing mode (the load/store beat count). Exposed for
 * tests and the analytical model.
 */
uint64_t bankBeats(AddrMode mode, unsigned value, unsigned banks);

/** One decoupled pipeline: FIFO queue + pipelined execution. */
class Pipeline
{
  public:
    explicit Pipeline(unsigned queue_depth) : depth_(queue_depth) {}

    bool queueFull() const { return queue_.size() >= depth_; }
    bool queueEmpty() const { return queue_.empty(); }

    /** Enqueue a dispatched instruction (id = program index). */
    void
    enqueue(uint32_t id, uint64_t beats)
    {
        queue_.push_back({id, beats});
    }

    /**
     * If the pipeline front is free this cycle, start the queue head.
     * Returns true and fills @p id / @p beats when an instruction
     * issued.
     */
    bool
    tryIssue(uint64_t now, uint32_t &id, uint64_t &beats)
    {
        if (queue_.empty() || now < free_at_)
            return false;
        id = queue_.front().id;
        beats = queue_.front().beats;
        queue_.pop_front();
        free_at_ = now + beats;
        return true;
    }

    bool busy(uint64_t now) const { return now < free_at_; }

  private:
    struct Entry
    {
        uint32_t id;
        uint64_t beats;
    };

    std::deque<Entry> queue_;
    uint64_t free_at_ = 0;
    unsigned depth_;
};

} // namespace rpu

#endif // RPU_SIM_CYCLE_PIPELINES_HH
