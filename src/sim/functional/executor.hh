/**
 * @file
 * Functional (bit-exact, untimed) B512 simulator.
 *
 * Mirrors the paper's "functional simulator implemented in C++ to
 * verify the generated code" (section V). Every generated program in
 * this repository is checked through this executor against the
 * reference NTT before any cycle-level results are reported.
 */

#ifndef RPU_SIM_FUNCTIONAL_EXECUTOR_HH
#define RPU_SIM_FUNCTIONAL_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <mutex>

#include "isa/program.hh"
#include "modmath/modulus.hh"
#include "sim/functional/state.hh"

namespace rpu {

/** Dynamic operation counters (feed the energy model cross-checks). */
struct FunctionalCounts
{
    uint64_t instructions = 0;
    uint64_t laneMuls = 0;    ///< modular multiplier activations
    uint64_t laneAdds = 0;    ///< modular adder/subtractor activations
    uint64_t vdmWordsRead = 0;
    uint64_t vdmWordsWritten = 0;
    uint64_t sdmWordsRead = 0;
    uint64_t shuffleWords = 0;
};

/**
 * Montgomery contexts are expensive to build; launches that share a
 * modulus should share a cache (RpuDevice owns one per device so the
 * cost is paid once, not per launch). Thread-safe: a multi-worker
 * device executes launches concurrently, and every one of them goes
 * through the shared cache.
 */
class ModulusContextCache
{
  public:
    /**
     * The context for @p q, built on first use. References stay valid
     * for the cache's lifetime (node-based storage, entries are never
     * evicted).
     */
    const Modulus &
    get(u128 q)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(q);
        if (it == map_.end())
            it = map_.emplace(q, Modulus(q)).first;
        return it->second;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::map<u128, Modulus> map_;
};

/**
 * Executes B512 programs against an ArchState.
 */
class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(ArchState &state) : state_(state) {}

    /** Share a modulus-context cache owned by the caller. */
    FunctionalSimulator(ArchState &state, ModulusContextCache &shared)
        : state_(state), shared_cache_(&shared)
    {
    }

    /** Execute one instruction. */
    void step(const Instruction &instr);

    /** Execute a whole program front to back. */
    void run(const Program &prog);

    const FunctionalCounts &counts() const { return counts_; }
    void resetCounts() { counts_ = FunctionalCounts(); }

    /**
     * Word offset of lane @p lane under an addressing mode, relative
     * to the effective base. Shared with the cycle simulator's bank
     * model so timing and semantics can never diverge.
     */
    static uint64_t laneOffset(AddrMode mode, unsigned value,
                               unsigned lane);

  private:
    /**
     * The context for @p q. Resolved pointers are memoized per
     * simulator so the shared cache's lock is taken O(distinct
     * moduli) per launch, not once per compute instruction — workers
     * running concurrent launches would otherwise serialize on it.
     */
    const Modulus &modulusFor(u128 q);

    void execLoadStore(const Instruction &instr);
    void execCompute(const Instruction &instr);
    void execShuffle(const Instruction &instr);

    ArchState &state_;
    FunctionalCounts counts_;

    /** Per-simulator fallback cache when no shared one is supplied. */
    ModulusContextCache modulus_cache_;
    ModulusContextCache *shared_cache_ = nullptr;

    /** Lock-free memo of contexts this simulator already resolved. */
    std::map<u128, const Modulus *> resolved_;
};

} // namespace rpu

#endif // RPU_SIM_FUNCTIONAL_EXECUTOR_HH
