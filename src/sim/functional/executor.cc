#include "sim/functional/executor.hh"

#include "common/logging.hh"
#include "modmath/simd.hh"

namespace rpu {

namespace {

/**
 * The narrow lane kernels are exact only for canonical inputs: a lane
 * value >= q would be truncated by the u64 cast, whereas the u128
 * Montgomery path reduces it. Well-formed programs only ever put
 * canonical residues in vector registers, but the bit-identity
 * contract between RPU_HOST_SIMD modes must hold for any program, so
 * verify before narrowing and fall back to the scalar loop otherwise.
 */
bool
narrowLanes(const ArchState::Vreg &v, u128 q, uint64_t *out)
{
    for (unsigned i = 0; i < arch::kVectorLength; ++i) {
        if (v[i] >= q)
            return false;
        out[i] = uint64_t(v[i]);
    }
    return true;
}

} // namespace

uint64_t
FunctionalSimulator::laneOffset(AddrMode mode, unsigned value,
                                unsigned lane)
{
    switch (mode) {
      case AddrMode::CONTIGUOUS:
        return lane;
      case AddrMode::STRIDED:
        return uint64_t(lane) << value;
      case AddrMode::STRIDED_SKIP: {
        // Runs of 2^value consecutive words, skipping the next 2^value.
        const uint64_t run = uint64_t(1) << value;
        return (lane / run) * 2 * run + (lane % run);
      }
      case AddrMode::REPEATED:
        return uint64_t(lane) >> value;
    }
    rpu_panic("unknown addressing mode");
}

const Modulus &
FunctionalSimulator::modulusFor(u128 q)
{
    auto it = resolved_.find(q);
    if (it == resolved_.end()) {
        const Modulus &m =
            (shared_cache_ ? *shared_cache_ : modulus_cache_).get(q);
        it = resolved_.emplace(q, &m).first;
    }
    return *it->second;
}

void
FunctionalSimulator::step(const Instruction &instr)
{
    ++counts_.instructions;
    switch (instr.pipeClass()) {
      case InstrClass::LoadStore:
        execLoadStore(instr);
        break;
      case InstrClass::Compute:
        execCompute(instr);
        break;
      case InstrClass::Shuffle:
        execShuffle(instr);
        break;
    }
}

void
FunctionalSimulator::run(const Program &prog)
{
    if (prog.size() > arch::kImMaxInstrs)
        rpu_fatal("program '%s' (%zu instrs) exceeds instruction memory",
                  prog.name().c_str(), prog.size());
    for (const auto &instr : prog.instructions())
        step(instr);
}

void
FunctionalSimulator::execLoadStore(const Instruction &instr)
{
    constexpr unsigned VL = arch::kVectorLength;
    switch (instr.op) {
      case Opcode::VLOAD: {
        const uint64_t base = state_.areg(instr.rm) + instr.address;
        auto &dst = state_.vreg(instr.vd);
        for (unsigned i = 0; i < VL; ++i) {
            dst[i] = state_.readVdm(
                base + laneOffset(instr.mode, instr.modeValue, i));
        }
        counts_.vdmWordsRead += VL;
        break;
      }
      case Opcode::VSTORE: {
        if (instr.mode == AddrMode::REPEATED)
            rpu_fatal("REPEATED mode is not defined for stores");
        const uint64_t base = state_.areg(instr.rm) + instr.address;
        const auto &src = state_.vreg(instr.vs);
        for (unsigned i = 0; i < VL; ++i) {
            state_.writeVdm(
                base + laneOffset(instr.mode, instr.modeValue, i), src[i]);
        }
        counts_.vdmWordsWritten += VL;
        break;
      }
      case Opcode::VBCAST: {
        const uint64_t addr = state_.areg(instr.rm) + instr.address;
        const u128 v = state_.readSdm(addr);
        state_.vreg(instr.vd).fill(v);
        ++counts_.sdmWordsRead;
        break;
      }
      case Opcode::SLOAD:
        state_.setSreg(instr.rt, state_.readSdm(instr.address));
        ++counts_.sdmWordsRead;
        break;
      case Opcode::MLOAD:
        state_.setMreg(instr.rt, state_.readSdm(instr.address));
        ++counts_.sdmWordsRead;
        break;
      case Opcode::ALOAD:
        state_.setAreg(instr.rt, uint64_t(state_.readSdm(instr.address)));
        ++counts_.sdmWordsRead;
        break;
      default:
        rpu_panic("not a load/store op");
    }
}

void
FunctionalSimulator::execCompute(const Instruction &instr)
{
    constexpr unsigned VL = arch::kVectorLength;
    const Modulus &mod = modulusFor(state_.mreg(instr.rm));

    // Read all sources before writing any destination so that
    // destination aliasing (vd == vs etc.) behaves like hardware with
    // read-before-write register file timing.
    const ArchState::Vreg vs = state_.vreg(instr.vs);

    const simd::NarrowModulus *nm =
        simd::narrowLanesActive() ? mod.narrow() : nullptr;

    if (instr.isButterfly()) {
        const ArchState::Vreg vt = state_.vreg(instr.vt);
        const ArchState::Vreg vt1 = state_.vreg(instr.vt1);
        ArchState::Vreg sum, diff;
        uint64_t nx[VL], ny[VL], nw[VL];
        if (nm && narrowLanes(vs, mod.value(), nx) &&
            narrowLanes(vt, mod.value(), ny) &&
            narrowLanes(vt1, mod.value(), nw)) {
            uint64_t ns[VL], nd[VL];
            simd::butterflyMulModSpan(nx, ny, nw, ns, nd, VL, *nm);
            for (unsigned i = 0; i < VL; ++i) {
                sum[i] = ns[i];
                diff[i] = nd[i];
            }
        } else {
            for (unsigned i = 0; i < VL; ++i) {
                const u128 t = mod.mul(vt1[i], vt[i]);
                sum[i] = mod.add(vs[i], t);
                diff[i] = mod.sub(vs[i], t);
            }
        }
        state_.vreg(instr.vd) = sum;
        state_.vreg(instr.vd1) = diff;
        counts_.laneMuls += VL;
        counts_.laneAdds += 2ull * VL;
        return;
    }

    ArchState::Vreg out;
    switch (instr.op) {
      case Opcode::VADDMOD:
      case Opcode::VSUBMOD:
      case Opcode::VMULMOD: {
        const ArchState::Vreg vt = state_.vreg(instr.vt);
        uint64_t na[VL], nb[VL];
        if (instr.op == Opcode::VMULMOD && nm &&
            narrowLanes(vs, mod.value(), na) &&
            narrowLanes(vt, mod.value(), nb)) {
            uint64_t no[VL];
            simd::mulModSpan(na, nb, no, VL, *nm);
            for (unsigned i = 0; i < VL; ++i)
                out[i] = no[i];
            break;
        }
        for (unsigned i = 0; i < VL; ++i) {
            if (instr.op == Opcode::VADDMOD)
                out[i] = mod.add(vs[i], vt[i]);
            else if (instr.op == Opcode::VSUBMOD)
                out[i] = mod.sub(vs[i], vt[i]);
            else
                out[i] = mod.mul(vs[i], vt[i]);
        }
        break;
      }
      case Opcode::VSADDMOD:
      case Opcode::VSSUBMOD:
      case Opcode::VSMULMOD: {
        const u128 s = state_.sreg(instr.rt);
        uint64_t na[VL];
        if (instr.op == Opcode::VSMULMOD && nm && s < mod.value() &&
            narrowLanes(vs, mod.value(), na)) {
            // Per-instruction Shoup precompute: one 128/64 division
            // amortised over all kVectorLength lanes.
            const uint64_t w = uint64_t(s);
            const uint64_t wShoup = simd::shoupPrecompute64(w, nm->q);
            uint64_t no[VL];
            simd::mulShoupSpan(na, no, VL, w, wShoup, nm->q);
            for (unsigned i = 0; i < VL; ++i)
                out[i] = no[i];
            break;
        }
        for (unsigned i = 0; i < VL; ++i) {
            if (instr.op == Opcode::VSADDMOD)
                out[i] = mod.add(vs[i], s);
            else if (instr.op == Opcode::VSSUBMOD)
                out[i] = mod.sub(vs[i], s);
            else
                out[i] = mod.mul(vs[i], s);
        }
        break;
      }
      default:
        rpu_panic("not a compute op");
    }
    state_.vreg(instr.vd) = out;

    if (instr.op == Opcode::VMULMOD || instr.op == Opcode::VSMULMOD)
        counts_.laneMuls += VL;
    else
        counts_.laneAdds += VL;
}

void
FunctionalSimulator::execShuffle(const Instruction &instr)
{
    constexpr unsigned VL = arch::kVectorLength;
    constexpr unsigned H = VL / 2;
    const ArchState::Vreg vs = state_.vreg(instr.vs);
    const ArchState::Vreg vt = state_.vreg(instr.vt);
    ArchState::Vreg out;

    switch (instr.op) {
      case Opcode::UNPKLO:
        // First halves of VS and VT, interleaved.
        for (unsigned i = 0; i < H; ++i) {
            out[2 * i] = vs[i];
            out[2 * i + 1] = vt[i];
        }
        break;
      case Opcode::UNPKHI:
        // Second halves of VS and VT, interleaved.
        for (unsigned i = 0; i < H; ++i) {
            out[2 * i] = vs[H + i];
            out[2 * i + 1] = vt[H + i];
        }
        break;
      case Opcode::PKLO:
        // Even lanes of VS to the first half, even lanes of VT to the
        // second half.
        for (unsigned i = 0; i < H; ++i) {
            out[i] = vs[2 * i];
            out[H + i] = vt[2 * i];
        }
        break;
      case Opcode::PKHI:
        // Odd lanes likewise.
        for (unsigned i = 0; i < H; ++i) {
            out[i] = vs[2 * i + 1];
            out[H + i] = vt[2 * i + 1];
        }
        break;
      default:
        rpu_panic("not a shuffle op");
    }
    state_.vreg(instr.vd) = out;
    counts_.shuffleWords += VL;
}

} // namespace rpu
