#include "sim/functional/state.hh"

#include "common/logging.hh"

namespace rpu {

ArchState::ArchState(size_t vdm_bytes)
    : vdm_(vdm_bytes / arch::kWordBytes, 0),
      sdm_(arch::kSdmWords, 0),
      vrf_(arch::kNumVregs),
      srf_(arch::kNumSregs, 0),
      arf_(arch::kNumAregs, 0),
      mrf_(arch::kNumMregs, 0)
{
    rpu_assert(vdm_bytes % arch::kWordBytes == 0 &&
               vdm_bytes <= arch::kVdmMaxBytes,
               "invalid VDM size %zu", vdm_bytes);
    for (auto &reg : vrf_)
        reg.fill(0);
}

u128
ArchState::readVdm(uint64_t word_addr) const
{
    if (word_addr >= vdm_.size())
        rpu_fatal("VDM read out of bounds: word %llu of %zu",
                  (unsigned long long)word_addr, vdm_.size());
    return vdm_[word_addr];
}

void
ArchState::writeVdm(uint64_t word_addr, u128 value)
{
    if (word_addr >= vdm_.size())
        rpu_fatal("VDM write out of bounds: word %llu of %zu",
                  (unsigned long long)word_addr, vdm_.size());
    vdm_[word_addr] = value;
}

void
ArchState::loadVdm(uint64_t word_addr, const std::vector<u128> &data)
{
    if (word_addr + data.size() > vdm_.size())
        rpu_fatal("VDM bulk load out of bounds");
    for (size_t i = 0; i < data.size(); ++i)
        vdm_[word_addr + i] = data[i];
}

std::vector<u128>
ArchState::dumpVdm(uint64_t word_addr, size_t count) const
{
    if (word_addr + count > vdm_.size())
        rpu_fatal("VDM bulk dump out of bounds");
    return {vdm_.begin() + word_addr, vdm_.begin() + word_addr + count};
}

u128
ArchState::readSdm(uint64_t word_addr) const
{
    if (word_addr >= sdm_.size())
        rpu_fatal("SDM read out of bounds: word %llu",
                  (unsigned long long)word_addr);
    return sdm_[word_addr];
}

void
ArchState::writeSdm(uint64_t word_addr, u128 value)
{
    if (word_addr >= sdm_.size())
        rpu_fatal("SDM write out of bounds: word %llu",
                  (unsigned long long)word_addr);
    sdm_[word_addr] = value;
}

} // namespace rpu
