/**
 * @file
 * Architectural state of the RPU: data memories and register files.
 *
 * The host-facing accessors model the paper's "launch code", which
 * converts host data structures into scratchpad-based data structures
 * before a kernel runs (paper section V).
 */

#ifndef RPU_SIM_FUNCTIONAL_STATE_HH
#define RPU_SIM_FUNCTIONAL_STATE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "sim/arch_config.hh"

namespace rpu {

/** All architecturally visible RPU state. */
class ArchState
{
  public:
    /** Allocate memories; @p vdm_bytes defaults to the 4 MiB design. */
    explicit ArchState(size_t vdm_bytes = arch::kVdmDefaultBytes);

    // -- Vector data memory (word addressed, 128b words) ---------------

    size_t vdmWords() const { return vdm_.size(); }
    u128 readVdm(uint64_t word_addr) const;
    void writeVdm(uint64_t word_addr, u128 value);

    /** Bulk host copy-in starting at @p word_addr. */
    void loadVdm(uint64_t word_addr, const std::vector<u128> &data);

    /** Bulk host copy-out of @p count words. */
    std::vector<u128> dumpVdm(uint64_t word_addr, size_t count) const;

    // -- Scalar data memory ---------------------------------------------

    u128 readSdm(uint64_t word_addr) const;
    void writeSdm(uint64_t word_addr, u128 value);

    // -- Register files --------------------------------------------------

    /** One full 512-lane vector register. */
    using Vreg = std::array<u128, arch::kVectorLength>;

    const Vreg &vreg(unsigned idx) const { return vrf_.at(idx); }
    Vreg &vreg(unsigned idx) { return vrf_.at(idx); }

    u128 sreg(unsigned idx) const { return srf_.at(idx); }
    void setSreg(unsigned idx, u128 v) { srf_.at(idx) = v; }

    uint64_t areg(unsigned idx) const { return arf_.at(idx); }
    void setAreg(unsigned idx, uint64_t v) { arf_.at(idx) = v; }

    u128 mreg(unsigned idx) const { return mrf_.at(idx); }
    void setMreg(unsigned idx, u128 v) { mrf_.at(idx) = v; }

  private:
    std::vector<u128> vdm_;
    std::vector<u128> sdm_;
    std::vector<Vreg> vrf_;
    std::vector<u128> srf_;
    std::vector<uint64_t> arf_;
    std::vector<u128> mrf_;
};

} // namespace rpu

#endif // RPU_SIM_FUNCTIONAL_STATE_HH
