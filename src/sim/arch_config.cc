#include "sim/arch_config.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

void
RpuConfig::validate() const
{
    if (!isPow2(numHples) || numHples < 1 ||
        numHples > arch::kVectorLength) {
        rpu_fatal("numHples must be a power of two in [1, %u], got %u",
                  arch::kVectorLength, numHples);
    }
    if (!isPow2(numBanks) || numBanks < 1)
        rpu_fatal("numBanks must be a power of two >= 1, got %u", numBanks);
    if (vdmBytes > arch::kVdmMaxBytes || vdmBytes % arch::kWordBytes != 0)
        rpu_fatal("vdmBytes invalid (max %zu)", arch::kVdmMaxBytes);
    if (mulII < 1 || mulLatency < 1)
        rpu_fatal("multiplier latency and II must be >= 1");
    if (dispatchWidth < 1 || queueDepth < 1)
        rpu_fatal("dispatchWidth and queueDepth must be >= 1");
}

std::string
RpuConfig::name() const
{
    std::ostringstream os;
    os << "(" << numHples << ", " << numBanks << ")";
    return os.str();
}

} // namespace rpu
