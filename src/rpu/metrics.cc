#include "rpu/metrics.hh"

#include <sstream>

#include "model/frequency.hh"

namespace rpu {

KernelMetrics
computeMetrics(const CycleStats &stats, const RpuConfig &cfg)
{
    KernelMetrics m;
    m.cycle = stats;
    m.freqGhz = rpuFrequencyGhz(cfg);
    m.runtimeUs = stats.runtimeUs(m.freqGhz);
    m.area = rpuArea(cfg);
    m.energy = kernelEnergy(stats);
    m.powerW = averagePowerW(m.energy.totalUj(), m.runtimeUs);
    return m;
}

std::string
KernelMetrics::report() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << cycle.cycles << " cycles @ " << freqGhz << " GHz = "
       << runtimeUs << " us | " << area.total() << " mm^2 | "
       << energy.totalUj() << " uJ | " << powerW << " W | P/A "
       << perfPerArea();
    return os.str();
}

} // namespace rpu
