/**
 * @file
 * End-to-end NTT workbench: the "host side" of the RPU, now a thin
 * façade over RpuDevice.
 *
 * Owns the ring (modulus + twiddle tables), generates B512 kernels,
 * launches them through the device layer (which stages host data into
 * the scratchpads and runs the configured execution backend), verifies
 * outputs against the reference NTT, and evaluates design points with
 * the cycle simulator and analytical models. Several runners can share
 * one RpuDevice to pool its kernel and Montgomery-context caches.
 */

#ifndef RPU_RPU_RUNNER_HH
#define RPU_RPU_RUNNER_HH

#include <memory>
#include <vector>

#include "codegen/ntt_codegen.hh"
#include "poly/polynomial.hh"
#include "rpu/device.hh"
#include "rpu/metrics.hh"

namespace rpu {

/** Cycle-simulate any program at a design point and apply the models. */
KernelMetrics evaluateProgram(const Program &program,
                              size_t vdm_bytes_required,
                              const RpuConfig &cfg);

/** Workbench for one ring (n, q). */
class NttRunner
{
  public:
    /**
     * Build the ring: finds the largest @p q_bits-bit NTT prime for
     * dimension @p n and precomputes twiddle tables. Launches run on
     * @p device (a fresh functional-simulator device when null).
     */
    explicit NttRunner(uint64_t n, unsigned q_bits = 128,
                       std::shared_ptr<RpuDevice> device = nullptr);

    /**
     * Build the ring over an explicit NTT-friendly prime (e.g. to
     * share a modulus with an RLWE context).
     */
    static NttRunner withModulus(uint64_t n, u128 modulus,
                                 std::shared_ptr<RpuDevice> device =
                                     nullptr);

    uint64_t n() const { return n_; }
    const Modulus &modulus() const { return *mod_; }
    const TwiddleTable &table() const { return *tw_; }
    const NttContext &reference() const { return *ref_; }

    /** The device this runner launches through. */
    RpuDevice &device() const { return *device_; }
    std::shared_ptr<RpuDevice> deviceHandle() const { return device_; }

    /** Generate a kernel (see NttCodegenOptions). */
    NttKernel makeKernel(const NttCodegenOptions &opts = {}) const;

    /**
     * Launch a kernel on the device: stage @p input at the kernel's
     * data region, execute, and return the data region.
     */
    std::vector<u128> execute(const NttKernel &kernel,
                              const std::vector<u128> &input) const;

    /**
     * Check a kernel end-to-end against the reference transform on a
     * deterministic random input. Returns true on bit-exact match.
     */
    bool verify(const NttKernel &kernel, uint64_t seed = 42) const;

    /** Cycle-simulate a kernel at a design point and apply the models. */
    KernelMetrics evaluate(const NttKernel &kernel,
                           const RpuConfig &cfg) const;

    // -- Fused polynomial multiplication --------------------------------

    PolyMulKernel
    makePolyMulKernel(const NttCodegenOptions &opts = {}) const;

    /** Full negacyclic product of @p a and @p b in one kernel launch. */
    std::vector<u128> executePolyMul(const PolyMulKernel &kernel,
                                     const std::vector<u128> &a,
                                     const std::vector<u128> &b) const;

    /** Check the fused kernel against the naive negacyclic product. */
    bool verifyPolyMul(const PolyMulKernel &kernel,
                       uint64_t seed = 42) const;

    /** Timing/area/energy for a fused kernel. */
    KernelMetrics evaluateProgram(const Program &program,
                                  size_t vdm_bytes_required,
                                  const RpuConfig &cfg) const;

  private:
    NttRunner() = default;

    uint64_t n_ = 0;
    std::unique_ptr<Modulus> mod_;
    std::unique_ptr<TwiddleTable> tw_;
    std::unique_ptr<NttContext> ref_;
    std::shared_ptr<RpuDevice> device_;
};

} // namespace rpu

#endif // RPU_RPU_RUNNER_HH
