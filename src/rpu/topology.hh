/**
 * @file
 * RpuTopology: an N-device set of simulated RPUs behind one cache
 * bundle — the device layer's answer to "serving heavy traffic means
 * scaling past one accelerator".
 *
 * All devices share a single DeviceCaches: Montgomery contexts,
 * twiddle tables, reference NTTs, and — most importantly — the
 * generated kernel images. A kernel generated (and cycle-simulated)
 * on device 0 is a cache hit on device 1..N-1, so prewarm cost and
 * codegen latency are paid once per topology, not once per device
 * ("generate once, launch anywhere"; a regression test pins this).
 *
 * The topology also rolls the per-device ledgers up:
 *
 *  - snapshot()/since() give per-device DeviceStats windows;
 *  - stats()/aggregate() sum a window field-wise (per-worker vectors
 *    zero-padded to the widest device — see DeviceStats::operator+=);
 *  - makespanCycles() is the topology-wide modelled wall-clock: the
 *    max over devices of each device's contention-aware busy
 *    makespan. Work spread evenly across N devices shows ~1/N the
 *    makespan of the same work on one device — the capacity-planning
 *    signal the sharding bench sweeps.
 *
 * Finally, the sharded coalesced hooks (transformSharded /
 * pointwiseSharded) take the serving layer's tiled batched launches
 * and spread the <= kMaxBatchedTowers tile groups across devices
 * according to a placement plan, overlapping devices on real threads.
 * Group boundaries are identical to the single-device coalesced path
 * and every group's math is independent, so results are bit-identical
 * to RpuDevice::transformCoalesced / pointwiseCoalesced whatever the
 * plan — only the ledger (which device paid which launches) moves.
 */

#ifndef RPU_RPU_TOPOLOGY_HH
#define RPU_RPU_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "rpu/device.hh"

namespace rpu {

/** See the file comment. */
class RpuTopology
{
  public:
    /**
     * Build @p devices functional-simulator RPUs over one fresh
     * shared cache bundle, each with @p parallelism worker lanes
     * (1 = serial devices, the deterministic-ledger configuration).
     */
    explicit RpuTopology(size_t devices, unsigned parallelism = 1);

    /**
     * Wrap existing devices (at least one) without rebuilding them —
     * how a single-device server becomes the degenerate 1-topology.
     * The devices keep whatever cache bundles they were built with:
     * cross-device cache sharing is only guaranteed when the adopted
     * devices already share one (as the N-device constructor
     * arranges).
     */
    static std::shared_ptr<RpuTopology>
    adopt(std::vector<std::shared_ptr<RpuDevice>> devices);

    size_t size() const { return devices_.size(); }

    const std::shared_ptr<RpuDevice> &device(size_t i) const
    {
        return devices_.at(i);
    }

    /** Device 0's cache bundle (the shared one for built topologies). */
    const std::shared_ptr<DeviceCaches> &caches() const
    {
        return devices_.front()->caches();
    }

    // -- Ledger roll-up --------------------------------------------------

    /** One DeviceStats per device, in device order. */
    using Snapshot = std::vector<DeviceStats>;

    Snapshot snapshot() const;

    /** Per-device windows since @p before (an earlier snapshot()). */
    Snapshot since(const Snapshot &before) const;

    /** Field-wise sum of a snapshot (see DeviceStats::operator+=). */
    static DeviceStats aggregate(const Snapshot &snap);

    /** aggregate(snapshot()): the topology-wide summed ledger. */
    DeviceStats stats() const { return aggregate(snapshot()); }

    /**
     * Topology-wide modelled makespan of a window: the max over
     * devices of the contention-aware per-device busy makespan. The
     * denominator of "modelled sustained throughput" in the capacity
     * sweep.
     */
    static uint64_t makespanCycles(const Snapshot &snap);

    /** makespanCycles(snapshot()) — cumulative since construction. */
    uint64_t makespanCycles() const
    {
        return makespanCycles(snapshot());
    }

    // -- Sharded coalesced launches --------------------------------------

    /** Tile-group count of a @p towers-long tiled chain: the number
     *  of launches the coalesced hooks split it into, and the length
     *  of a placement plan. */
    static size_t tileGroups(size_t towers)
    {
        return (towers + RpuDevice::kMaxBatchedTowers - 1) /
               RpuDevice::kMaxBatchedTowers;
    }

    /** Tower count of each tile group of a @p towers-long tiled
     *  chain — full kMaxBatchedTowers groups plus the remainder.
     *  Matches the group boundaries the coalesced hooks cut, so a
     *  planner can weigh each launch of a stage before building its
     *  plan. */
    static std::vector<size_t> groupTowerCounts(size_t towers)
    {
        std::vector<size_t> counts(tileGroups(towers),
                                   RpuDevice::kMaxBatchedTowers);
        if (!counts.empty() && towers % RpuDevice::kMaxBatchedTowers)
            counts.back() = towers % RpuDevice::kMaxBatchedTowers;
        return counts;
    }

    /** groupTowerCounts scaled by a per-tower cost weight: the
     *  stage-weight vector MakespanScheduler::splitPlans consumes. */
    static std::vector<double> groupWeights(size_t towers,
                                            double perTower)
    {
        std::vector<double> w;
        for (size_t t : groupTowerCounts(towers))
            w.push_back(double(t) * perTower);
        return w;
    }

    /**
     * RpuDevice::transformCoalesced with the tiled launches spread
     * across the topology: group g of the flattened chain executes on
     * device plan[g]. plan.size() must equal tileGroups(total
     * towers); groups placed on different devices run concurrently
     * (one thread per occupied device), groups on the same device run
     * in tile order on it. A uniform plan routes the whole call to
     * that one device's coalesced hook — the 1-device degeneracy is
     * the identical code path, not a lookalike.
     */
    std::vector<std::vector<std::vector<u128>>>
    transformSharded(const std::vector<size_t> &plan, uint64_t n,
                     const std::vector<std::vector<u128>> &moduli,
                     std::vector<std::vector<std::vector<u128>>> xs,
                     bool inverse,
                     const NttCodegenOptions &opts = {});

    /** RpuDevice::pointwiseCoalesced, sharded the same way. */
    std::vector<std::vector<std::vector<u128>>>
    pointwiseSharded(const std::vector<size_t> &plan, uint64_t n,
                     const std::vector<std::vector<u128>> &moduli,
                     std::vector<std::vector<std::vector<u128>>> a,
                     std::vector<std::vector<std::vector<u128>>> b,
                     const NttCodegenOptions &opts = {});

  private:
    RpuTopology() = default;

    /**
     * Shared body of the sharded hooks: execute each tile group of
     * the flattened chain @p tiled on its planned device (transform:
     * one input region per tower; pointwise: a/b region pairs) and
     * return the flat per-tower outputs in tile order. @p pointwise
     * selects the kernel kind and region layout; callers reassemble
     * per item.
     */
    std::vector<std::vector<u128>>
    runShardedFlat(const std::vector<size_t> &plan, uint64_t n,
                   const std::vector<u128> &tiled,
                   std::vector<std::vector<u128>> regions,
                   bool pointwise, bool inverse,
                   const NttCodegenOptions &opts);

    std::vector<std::shared_ptr<RpuDevice>> devices_;
};

} // namespace rpu

#endif // RPU_RPU_TOPOLOGY_HH
