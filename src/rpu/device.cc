#include "rpu/device.hh"

#include "common/logging.hh"
#include "sim/functional/state.hh"

namespace rpu {

// ----------------------------------------------------------------------
// Backends
// ----------------------------------------------------------------------

std::vector<std::vector<u128>>
FunctionalSimBackend::execute(RpuDevice &dev, const KernelImage &image,
                              const std::vector<std::vector<u128>> &inputs)
{
    // Launch code: stage constants and data into the scratchpads.
    ArchState state(image.vdmBytesRequired);
    for (size_t i = 0; i < image.sdmImage.size(); ++i)
        state.writeSdm(i, image.sdmImage[i]);
    state.loadVdm(image.twPlanBase, image.twPlanImage);

    const auto in_regions = image.inputRegions();
    for (size_t i = 0; i < in_regions.size(); ++i)
        state.loadVdm(in_regions[i]->base, inputs[i]);

    FunctionalSimulator sim(state, dev.modulusCache());
    sim.run(image.program);

    std::vector<std::vector<u128>> outputs;
    for (const DataRegion *r : image.outputRegions())
        outputs.push_back(state.dumpVdm(r->base, r->words));
    return outputs;
}

std::vector<std::vector<u128>>
CpuReferenceBackend::execute(RpuDevice &dev, const KernelImage &image,
                             const std::vector<std::vector<u128>> &inputs)
{
    std::vector<std::vector<u128>> outputs;
    switch (image.kind) {
      case KernelKind::ForwardNtt:
      case KernelKind::InverseNtt: {
        std::vector<u128> x = inputs[0];
        const NttContext &ntt = dev.nttContext(image.n, image.moduli[0]);
        if (image.kind == KernelKind::InverseNtt)
            ntt.inverse(x);
        else
            ntt.forward(x);
        outputs.push_back(std::move(x));
        break;
      }
      case KernelKind::PolyMul: {
        const NttContext &ntt = dev.nttContext(image.n, image.moduli[0]);
        outputs.push_back(negacyclicMulNtt(ntt, inputs[0], inputs[1]));
        break;
      }
      case KernelKind::BatchedForwardNtt: {
        for (size_t t = 0; t < image.moduli.size(); ++t) {
            std::vector<u128> x = inputs[t];
            dev.nttContext(image.n, image.moduli[t]).forward(x);
            outputs.push_back(std::move(x));
        }
        break;
      }
      case KernelKind::BatchedPolyMul: {
        for (size_t t = 0; t < image.moduli.size(); ++t) {
            const NttContext &ntt =
                dev.nttContext(image.n, image.moduli[t]);
            outputs.push_back(
                negacyclicMulNtt(ntt, inputs[2 * t], inputs[2 * t + 1]));
        }
        break;
      }
      default:
        rpu_fatal("cpu-reference backend cannot execute kernel '%s' "
                  "(unhandled kind %d)",
                  image.program.name().c_str(), int(image.kind));
    }
    // Output-region count/size validation happens once for every
    // backend in RpuDevice::executeValidated.
    return outputs;
}

// ----------------------------------------------------------------------
// RpuDevice
// ----------------------------------------------------------------------

RpuDevice::RpuDevice(std::unique_ptr<ExecutionBackend> backend)
    : backend_(std::move(backend))
{
    rpu_assert(backend_ != nullptr, "device needs a backend");
}

void
RpuDevice::setParallelism(unsigned workers)
{
    if (workers <= 1) {
        pool_.reset();
        return;
    }
    if (!pool_ || pool_->workers() != workers)
        pool_ = std::make_unique<ThreadPool>(workers);
}

void
RpuDevice::resetCounters()
{
    counters_.launches = 0;
    counters_.towerLaunches = 0;
    counters_.kernelHits = 0;
    counters_.kernelMisses = 0;
}

const Modulus &
RpuDevice::modulusContext(u128 q)
{
    return modulus_cache_.get(q);
}

const TwiddleTable &
RpuDevice::twiddleTableLocked(uint64_t n, u128 q)
{
    const auto key = std::make_pair(n, q);
    auto it = twiddle_cache_.find(key);
    if (it == twiddle_cache_.end()) {
        // The table holds a reference to the modulus context; both
        // caches only ever grow, so the reference stays valid.
        it = twiddle_cache_
                 .emplace(key, std::make_unique<TwiddleTable>(
                                   modulusContext(q), n))
                 .first;
    }
    return *it->second;
}

const TwiddleTable &
RpuDevice::twiddleTable(uint64_t n, u128 q)
{
    std::lock_guard<std::mutex> lock(context_mutex_);
    return twiddleTableLocked(n, q);
}

const NttContext &
RpuDevice::nttContext(uint64_t n, u128 q)
{
    std::lock_guard<std::mutex> lock(context_mutex_);
    const auto key = std::make_pair(n, q);
    auto it = ntt_cache_.find(key);
    if (it == ntt_cache_.end()) {
        it = ntt_cache_
                 .emplace(key, std::make_unique<NttContext>(
                                   twiddleTableLocked(n, q)))
                 .first;
    }
    return *it->second;
}

std::string
RpuDevice::kernelKey(KernelKind kind, uint64_t n,
                     const std::vector<u128> &moduli,
                     const NttCodegenOptions &opts) const
{
    // Everything that changes the generated/scheduled program, each
    // field behind its own delimiter so no two specs can collide.
    std::string key = "k" + std::to_string(int(kind)) + ":n" +
                      std::to_string(n) + ":m";
    for (u128 q : moduli) {
        key += std::to_string(uint64_t(q >> 64)) + "_" +
               std::to_string(uint64_t(q)) + ",";
    }
    key += ":o" + std::to_string(opts.optimized) + ":w" +
           std::to_string(opts.twiddleCompose);
    // The design point only shapes the program through the list
    // scheduler, which unoptimized generation skips. Every RpuConfig
    // field is keyed — including ones the scheduler does not consult
    // today (vdmBytes) — so a future scheduler input can never alias
    // two design points onto one cached kernel.
    if (opts.optimized) {
        const RpuConfig &c = opts.scheduleConfig;
        for (uint64_t v :
             {uint64_t(c.numHples), uint64_t(c.numBanks),
              uint64_t(c.vdmBytes), uint64_t(c.mulLatency),
              uint64_t(c.mulII), uint64_t(c.addLatency),
              uint64_t(c.shuffleLatency), uint64_t(c.lsLatency),
              uint64_t(c.sdmLatency), uint64_t(c.queueDepth),
              uint64_t(c.dispatchWidth),
              uint64_t(c.exclusiveReaders)}) {
            key += ":" + std::to_string(v);
        }
    }
    return key;
}

const KernelImage &
RpuDevice::kernel(KernelKind kind, uint64_t n,
                  const std::vector<u128> &moduli,
                  const NttCodegenOptions &opts)
{
    rpu_assert(!moduli.empty(), "kernel needs at least one modulus");

    const std::string key = kernelKey(kind, n, moduli, opts);
    // Single-flight generation per key: the first requester marks the
    // key in generating_ and builds the kernel *outside* the cache
    // lock, so distinct kernels generate concurrently (e.g. several
    // towers' kernels racing in from worker threads); same-key
    // requesters wait on the condvar for the one generation instead
    // of duplicating it, and count a cache hit once it lands.
    std::unique_lock<std::mutex> lock(kernel_mutex_);
    for (;;) {
        auto it = kernels_.find(key);
        if (it != kernels_.end()) {
            ++counters_.kernelHits;
            return *it->second;
        }
        if (generating_.insert(key).second)
            break;
        kernel_cv_.wait(lock);
    }
    ++counters_.kernelMisses;
    lock.unlock();

    NttCodegenOptions gen_opts = opts;
    gen_opts.inverse = kind == KernelKind::InverseNtt;

    std::vector<const TwiddleTable *> towers;
    towers.reserve(moduli.size());
    for (u128 q : moduli)
        towers.push_back(&twiddleTable(n, q));

    auto image = std::make_unique<KernelImage>();
    switch (kind) {
      case KernelKind::ForwardNtt:
      case KernelKind::InverseNtt:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generateNttKernel(*towers[0], gen_opts));
        break;
      case KernelKind::PolyMul:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generatePolyMulKernel(*towers[0], gen_opts));
        break;
      case KernelKind::BatchedForwardNtt:
        *image = static_cast<KernelImage &&>(
            generateBatchedForwardNtt(towers, gen_opts));
        break;
      case KernelKind::BatchedPolyMul:
        *image = generateBatchedPolyMul(towers, gen_opts);
        break;
    }

    // Publish and wake every same-key waiter. Generation itself
    // cannot fail softly (codegen errors are fatal), so the
    // generating_ entry is always cleared here.
    lock.lock();
    auto it = kernels_.emplace(key, std::move(image)).first;
    generating_.erase(key);
    kernel_cv_.notify_all();
    return *it->second;
}

void
RpuDevice::validateLaunch(const KernelImage &image,
                          const std::vector<std::vector<u128>> &inputs)
    const
{
    const auto in_regions = image.inputRegions();
    if (inputs.size() != in_regions.size()) {
        rpu_fatal("kernel '%s' takes %zu inputs, got %zu",
                  image.program.name().c_str(), in_regions.size(),
                  inputs.size());
    }
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].size() != in_regions[i]->words) {
            rpu_fatal("input '%s' wants %llu words, got %zu",
                      in_regions[i]->name.c_str(),
                      (unsigned long long)in_regions[i]->words,
                      inputs[i].size());
        }
    }
}

std::vector<std::vector<u128>>
RpuDevice::executeValidated(const KernelImage &image,
                            const std::vector<std::vector<u128>> &inputs)
{
    ++counters_.launches;
    counters_.towerLaunches += image.moduli.size();
    auto outputs = backend_->execute(*this, image, inputs);

    // Guard every backend, present and future: an execute() that
    // under-fills the image's output regions must never hand callers
    // truncated results.
    const auto out_regions = image.outputRegions();
    if (outputs.size() != out_regions.size()) {
        rpu_fatal("kernel '%s' declares %zu output regions, backend "
                  "'%s' produced %zu",
                  image.program.name().c_str(), out_regions.size(),
                  backend_->name(), outputs.size());
    }
    for (size_t i = 0; i < outputs.size(); ++i) {
        if (outputs[i].size() != out_regions[i]->words) {
            rpu_fatal("output '%s' wants %llu words, backend '%s' "
                      "produced %zu",
                      out_regions[i]->name.c_str(),
                      (unsigned long long)out_regions[i]->words,
                      backend_->name(), outputs[i].size());
        }
    }
    return outputs;
}

std::vector<std::vector<u128>>
RpuDevice::launch(const KernelImage &image,
                  const std::vector<std::vector<u128>> &inputs)
{
    validateLaunch(image, inputs);
    return executeValidated(image, inputs);
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::launchAll(const std::vector<LaunchRequest> &batch)
{
    // Validate the whole batch on the calling thread so user errors
    // fire deterministically before any worker starts.
    for (const LaunchRequest &req : batch) {
        rpu_assert(req.image != nullptr, "launch without a kernel");
        validateLaunch(*req.image, req.inputs);
    }

    std::vector<std::vector<std::vector<u128>>> results(batch.size());
    if (pool_ && batch.size() > 1) {
        std::vector<std::future<std::vector<std::vector<u128>>>> futures;
        futures.reserve(batch.size());
        for (const LaunchRequest &req : batch) {
            futures.push_back(pool_->submit([this, &req] {
                return executeValidated(*req.image, req.inputs);
            }));
        }
        // Collect in request order: results are deterministic no
        // matter which worker finishes first, and each launch is a
        // pure function of (image, inputs), so the batch is
        // bit-identical to the serial path. whenAll joins every job
        // before surfacing any failure — still-queued jobs hold
        // references into the caller's batch, so unwinding early
        // would free memory under them.
        results = whenAll(std::move(futures));
    } else {
        for (size_t i = 0; i < batch.size(); ++i)
            results[i] = executeValidated(*batch[i].image,
                                          batch[i].inputs);
    }
    return results;
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::whenAll(std::vector<LaunchFuture> futures)
{
    // Request-ordered join. Every future is drained before the first
    // failure is rethrown: a still-running launch must never outlive
    // an unwinding caller that owns state it references.
    std::vector<std::vector<std::vector<u128>>> results(futures.size());
    std::exception_ptr first_error;
    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            results[i] = futures[i].get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

LaunchFuture
RpuDevice::launchAsync(const KernelImage &image,
                       std::vector<std::vector<u128>> inputs)
{
    validateLaunch(image, inputs);
    if (pool_) {
        return pool_->submit(
            [this, &image, in = std::move(inputs)] {
                return executeValidated(image, in);
            });
    }
    // Inline execution still reports failure through the future, so
    // callers handle errors at .get() regardless of the parallelism.
    std::promise<std::vector<std::vector<u128>>> done;
    try {
        done.set_value(executeValidated(image, inputs));
    } catch (...) {
        done.set_exception(std::current_exception());
    }
    return done.get_future();
}

std::vector<u128>
RpuDevice::ntt(uint64_t n, u128 q, const std::vector<u128> &x,
               bool inverse, const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(
        inverse ? KernelKind::InverseNtt : KernelKind::ForwardNtt, n,
        {q}, opts);
    return launch(k, {x})[0];
}

std::vector<u128>
RpuDevice::negacyclicMul(uint64_t n, u128 q, const std::vector<u128> &a,
                         const std::vector<u128> &b,
                         const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(KernelKind::PolyMul, n, {q}, opts);
    return launch(k, {a, b})[0];
}

std::vector<std::vector<u128>>
RpuDevice::mulTowers(uint64_t n, const std::vector<u128> &moduli,
                     std::vector<std::vector<u128>> a,
                     std::vector<std::vector<u128>> b,
                     const NttCodegenOptions &opts)
{
    std::vector<std::vector<std::vector<u128>>> as, bs;
    as.push_back(std::move(a));
    bs.push_back(std::move(b));
    return std::move(
        mulTowersBatch(n, moduli, std::move(as), std::move(bs),
                       opts)[0]);
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::mulTowersBatch(
    uint64_t n, const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    auto pending = mulTowersBatchAsync(n, moduli, std::move(a),
                                       std::move(b), opts);
    std::vector<std::vector<std::vector<u128>>> out(pending.size());
    for (size_t p = 0; p < pending.size(); ++p)
        out[p] = collectTowers(std::move(pending[p]));
    return out;
}

std::vector<PendingTowerProducts>
RpuDevice::mulTowersBatchAsync(
    uint64_t n, const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    rpu_assert(a.size() == b.size(), "operand pair count mismatch");
    const size_t pairs = a.size();
    const size_t towers = moduli.size();
    for (size_t p = 0; p < pairs; ++p) {
        rpu_assert(a[p].size() == towers && b[p].size() == towers,
                   "tower count mismatch");
    }

    std::vector<PendingTowerProducts> pending(pairs);
    for (auto &p : pending)
        p.towers = towers;

    if (pool_ && pairs * towers > 1) {
        // One single-ring fused product per (pair, tower), so every
        // independent product overlaps across the worker pool — the
        // paper's "process different towers simultaneously", realised
        // in host wall-clock time. Operand vectors are moved into the
        // launches, which own them until their futures resolve.
        std::vector<const KernelImage *> tower_kernels(towers);
        for (size_t t = 0; t < towers; ++t) {
            tower_kernels[t] =
                &kernel(KernelKind::PolyMul, n, {moduli[t]}, opts);
        }
        for (size_t p = 0; p < pairs; ++p) {
            pending[p].futures.reserve(towers);
            for (size_t t = 0; t < towers; ++t) {
                std::vector<std::vector<u128>> in;
                in.reserve(2);
                in.push_back(std::move(a[p][t]));
                in.push_back(std::move(b[p][t]));
                pending[p].futures.push_back(
                    launchAsync(*tower_kernels[t], std::move(in)));
            }
        }
        return pending;
    }

    // Serial: one batched all-towers launch per pair (executed inline
    // by launchAsync when there is no pool, so the returned futures
    // are already ready). Region order is t0.a, t0.b, t1.a, t1.b, ...
    const KernelImage &k =
        kernel(KernelKind::BatchedPolyMul, n, moduli, opts);
    for (size_t p = 0; p < pairs; ++p) {
        std::vector<std::vector<u128>> in;
        in.reserve(2 * towers);
        for (size_t t = 0; t < towers; ++t) {
            in.push_back(std::move(a[p][t]));
            in.push_back(std::move(b[p][t]));
        }
        pending[p].futures.push_back(launchAsync(k, std::move(in)));
    }
    return pending;
}

std::vector<std::vector<u128>>
RpuDevice::collectTowers(PendingTowerProducts pending)
{
    // Both dispatch shapes flatten to one region per tower: the
    // batched kernel is one future whose outputs are the towers'
    // "t<i>.a" regions in basis order, the per-tower fan-out is one
    // single-region future per tower in the same order.
    auto results = whenAll(std::move(pending.futures));
    std::vector<std::vector<u128>> out;
    out.reserve(pending.towers);
    for (auto &regions : results) {
        for (auto &r : regions)
            out.push_back(std::move(r));
    }
    rpu_assert(out.size() == pending.towers,
               "pending pair resolved to %zu regions, expected %zu",
               out.size(), pending.towers);
    return out;
}

} // namespace rpu
