#include "rpu/device.hh"

#include "common/logging.hh"
#include "sim/functional/state.hh"

namespace rpu {

// ----------------------------------------------------------------------
// Backends
// ----------------------------------------------------------------------

std::vector<std::vector<u128>>
FunctionalSimBackend::execute(RpuDevice &dev, const KernelImage &image,
                              const std::vector<std::vector<u128>> &inputs)
{
    // Launch code: stage constants and data into the scratchpads.
    ArchState state(image.vdmBytesRequired);
    for (size_t i = 0; i < image.sdmImage.size(); ++i)
        state.writeSdm(i, image.sdmImage[i]);
    state.loadVdm(image.twPlanBase, image.twPlanImage);

    const auto in_regions = image.inputRegions();
    for (size_t i = 0; i < in_regions.size(); ++i)
        state.loadVdm(in_regions[i]->base, inputs[i]);

    FunctionalSimulator sim(state, dev.modulusCache());
    sim.run(image.program);

    std::vector<std::vector<u128>> outputs;
    for (const DataRegion *r : image.outputRegions())
        outputs.push_back(state.dumpVdm(r->base, r->words));
    return outputs;
}

std::vector<std::vector<u128>>
CpuReferenceBackend::execute(RpuDevice &dev, const KernelImage &image,
                             const std::vector<std::vector<u128>> &inputs)
{
    std::vector<std::vector<u128>> outputs;
    switch (image.kind) {
      case KernelKind::ForwardNtt:
      case KernelKind::InverseNtt: {
        std::vector<u128> x = inputs[0];
        const NttContext &ntt = dev.nttContext(image.n, image.moduli[0]);
        if (image.kind == KernelKind::InverseNtt)
            ntt.inverse(x);
        else
            ntt.forward(x);
        outputs.push_back(std::move(x));
        break;
      }
      case KernelKind::PolyMul: {
        const NttContext &ntt = dev.nttContext(image.n, image.moduli[0]);
        outputs.push_back(negacyclicMulNtt(ntt, inputs[0], inputs[1]));
        break;
      }
      case KernelKind::BatchedForwardNtt: {
        for (size_t t = 0; t < image.moduli.size(); ++t) {
            std::vector<u128> x = inputs[t];
            dev.nttContext(image.n, image.moduli[t]).forward(x);
            outputs.push_back(std::move(x));
        }
        break;
      }
      case KernelKind::BatchedPolyMul: {
        for (size_t t = 0; t < image.moduli.size(); ++t) {
            const NttContext &ntt =
                dev.nttContext(image.n, image.moduli[t]);
            outputs.push_back(
                negacyclicMulNtt(ntt, inputs[2 * t], inputs[2 * t + 1]));
        }
        break;
      }
    }
    return outputs;
}

// ----------------------------------------------------------------------
// RpuDevice
// ----------------------------------------------------------------------

RpuDevice::RpuDevice(std::unique_ptr<ExecutionBackend> backend)
    : backend_(std::move(backend))
{
    rpu_assert(backend_ != nullptr, "device needs a backend");
}

const Modulus &
RpuDevice::modulusContext(u128 q)
{
    auto it = modulus_cache_.find(q);
    if (it == modulus_cache_.end())
        it = modulus_cache_.emplace(q, Modulus(q)).first;
    return it->second;
}

const TwiddleTable &
RpuDevice::twiddleTable(uint64_t n, u128 q)
{
    const auto key = std::make_pair(n, q);
    auto it = twiddle_cache_.find(key);
    if (it == twiddle_cache_.end()) {
        // The table holds a reference to the modulus context; both
        // caches only ever grow, so the reference stays valid.
        it = twiddle_cache_
                 .emplace(key, std::make_unique<TwiddleTable>(
                                   modulusContext(q), n))
                 .first;
    }
    return *it->second;
}

const NttContext &
RpuDevice::nttContext(uint64_t n, u128 q)
{
    const auto key = std::make_pair(n, q);
    auto it = ntt_cache_.find(key);
    if (it == ntt_cache_.end()) {
        it = ntt_cache_
                 .emplace(key, std::make_unique<NttContext>(
                                   twiddleTable(n, q)))
                 .first;
    }
    return *it->second;
}

std::string
RpuDevice::kernelKey(KernelKind kind, uint64_t n,
                     const std::vector<u128> &moduli,
                     const NttCodegenOptions &opts) const
{
    // Everything that changes the generated/scheduled program.
    std::string key = std::to_string(int(kind)) + ":" +
                      std::to_string(n) + ":";
    for (u128 q : moduli) {
        key += std::to_string(uint64_t(q >> 64)) + "_" +
               std::to_string(uint64_t(q)) + ",";
    }
    key += ":" + std::to_string(opts.optimized) +
           std::to_string(opts.twiddleCompose);
    // The design point only shapes the program through the list
    // scheduler, which unoptimized generation skips.
    if (opts.optimized) {
        const RpuConfig &c = opts.scheduleConfig;
        for (unsigned v :
             {c.numHples, c.numBanks, c.mulLatency, c.mulII,
              c.addLatency, c.shuffleLatency, c.lsLatency, c.sdmLatency,
              c.queueDepth, c.dispatchWidth,
              unsigned(c.exclusiveReaders)}) {
            key += ":" + std::to_string(v);
        }
    }
    return key;
}

const KernelImage &
RpuDevice::kernel(KernelKind kind, uint64_t n,
                  const std::vector<u128> &moduli,
                  const NttCodegenOptions &opts)
{
    rpu_assert(!moduli.empty(), "kernel needs at least one modulus");

    const std::string key = kernelKey(kind, n, moduli, opts);
    auto it = kernels_.find(key);
    if (it != kernels_.end()) {
        ++counters_.kernelHits;
        return *it->second;
    }
    ++counters_.kernelMisses;

    NttCodegenOptions gen_opts = opts;
    gen_opts.inverse = kind == KernelKind::InverseNtt;

    std::vector<const TwiddleTable *> towers;
    towers.reserve(moduli.size());
    for (u128 q : moduli)
        towers.push_back(&twiddleTable(n, q));

    auto image = std::make_unique<KernelImage>();
    switch (kind) {
      case KernelKind::ForwardNtt:
      case KernelKind::InverseNtt:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generateNttKernel(*towers[0], gen_opts));
        break;
      case KernelKind::PolyMul:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generatePolyMulKernel(*towers[0], gen_opts));
        break;
      case KernelKind::BatchedForwardNtt:
        *image = static_cast<KernelImage &&>(
            generateBatchedForwardNtt(towers, gen_opts));
        break;
      case KernelKind::BatchedPolyMul:
        *image = generateBatchedPolyMul(towers, gen_opts);
        break;
    }

    it = kernels_.emplace(key, std::move(image)).first;
    return *it->second;
}

std::vector<std::vector<u128>>
RpuDevice::launch(const KernelImage &image,
                  const std::vector<std::vector<u128>> &inputs)
{
    const auto in_regions = image.inputRegions();
    if (inputs.size() != in_regions.size()) {
        rpu_fatal("kernel '%s' takes %zu inputs, got %zu",
                  image.program.name().c_str(), in_regions.size(),
                  inputs.size());
    }
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].size() != in_regions[i]->words) {
            rpu_fatal("input '%s' wants %llu words, got %zu",
                      in_regions[i]->name.c_str(),
                      (unsigned long long)in_regions[i]->words,
                      inputs[i].size());
        }
    }

    ++counters_.launches;
    counters_.towerLaunches += image.moduli.size();
    return backend_->execute(*this, image, inputs);
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::launchAll(const std::vector<LaunchRequest> &batch)
{
    std::vector<std::vector<std::vector<u128>>> results;
    results.reserve(batch.size());
    for (const LaunchRequest &req : batch) {
        rpu_assert(req.image != nullptr, "launch without a kernel");
        results.push_back(launch(*req.image, req.inputs));
    }
    return results;
}

std::vector<u128>
RpuDevice::ntt(uint64_t n, u128 q, const std::vector<u128> &x,
               bool inverse, const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(
        inverse ? KernelKind::InverseNtt : KernelKind::ForwardNtt, n,
        {q}, opts);
    return launch(k, {x})[0];
}

std::vector<u128>
RpuDevice::negacyclicMul(uint64_t n, u128 q, const std::vector<u128> &a,
                         const std::vector<u128> &b,
                         const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(KernelKind::PolyMul, n, {q}, opts);
    return launch(k, {a, b})[0];
}

std::vector<std::vector<u128>>
RpuDevice::mulTowers(uint64_t n, const std::vector<u128> &moduli,
                     const std::vector<std::vector<u128>> &a,
                     const std::vector<std::vector<u128>> &b,
                     const NttCodegenOptions &opts)
{
    rpu_assert(a.size() == moduli.size() && b.size() == moduli.size(),
               "tower count mismatch");
    const KernelImage &k =
        kernel(KernelKind::BatchedPolyMul, n, moduli, opts);

    // Region order is t0.a, t0.b, t1.a, t1.b, ...
    std::vector<std::vector<u128>> inputs;
    inputs.reserve(2 * moduli.size());
    for (size_t t = 0; t < moduli.size(); ++t) {
        inputs.push_back(a[t]);
        inputs.push_back(b[t]);
    }
    return launch(k, inputs);
}

} // namespace rpu
