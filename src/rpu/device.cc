#include "rpu/device.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/cycle/simulator.hh"
#include "sim/functional/state.hh"

namespace rpu {

// ----------------------------------------------------------------------
// Backends
// ----------------------------------------------------------------------

std::vector<std::vector<u128>>
FunctionalSimBackend::execute(RpuDevice &dev, const KernelImage &image,
                              const std::vector<std::vector<u128>> &inputs)
{
    // Launch code: stage constants and data into the scratchpads.
    ArchState state(image.vdmBytesRequired);
    for (size_t i = 0; i < image.sdmImage.size(); ++i)
        state.writeSdm(i, image.sdmImage[i]);
    state.loadVdm(image.twPlanBase, image.twPlanImage);

    const auto in_regions = image.inputRegions();
    for (size_t i = 0; i < in_regions.size(); ++i)
        state.loadVdm(in_regions[i]->base, inputs[i]);

    FunctionalSimulator sim(state, dev.modulusCache());
    sim.run(image.program);

    std::vector<std::vector<u128>> outputs;
    for (const DataRegion *r : image.outputRegions())
        outputs.push_back(state.dumpVdm(r->base, r->words));
    return outputs;
}

namespace {

/** One reference handler per KernelKind (see refHandlers). */
using RefInputs = std::vector<std::vector<u128>>;
using RefHandler = RefInputs (*)(RpuDevice &, const KernelImage &,
                                 const RefInputs &);

RefInputs
refSingleNtt(RpuDevice &dev, const KernelImage &image,
             const RefInputs &inputs)
{
    std::vector<u128> x = inputs[0];
    const NttContext &ntt = dev.nttContext(image.n, image.moduli[0]);
    if (image.kind == KernelKind::InverseNtt)
        ntt.inverse(x);
    else
        ntt.forward(x);
    RefInputs out;
    out.push_back(std::move(x));
    return out;
}

RefInputs
refPolyMul(RpuDevice &dev, const KernelImage &image,
           const RefInputs &inputs)
{
    const NttContext &ntt = dev.nttContext(image.n, image.moduli[0]);
    RefInputs out;
    out.push_back(negacyclicMulNtt(ntt, inputs[0], inputs[1]));
    return out;
}

RefInputs
refBatchedNtt(RpuDevice &dev, const KernelImage &image,
              const RefInputs &inputs)
{
    RefInputs out;
    for (size_t t = 0; t < image.moduli.size(); ++t) {
        std::vector<u128> x = inputs[t];
        const NttContext &ntt = dev.nttContext(image.n, image.moduli[t]);
        if (image.kind == KernelKind::BatchedInverseNtt)
            ntt.inverse(x);
        else
            ntt.forward(x);
        out.push_back(std::move(x));
    }
    return out;
}

RefInputs
refBatchedPolyMul(RpuDevice &dev, const KernelImage &image,
                  const RefInputs &inputs)
{
    RefInputs out;
    for (size_t t = 0; t < image.moduli.size(); ++t) {
        const NttContext &ntt = dev.nttContext(image.n, image.moduli[t]);
        out.push_back(
            negacyclicMulNtt(ntt, inputs[2 * t], inputs[2 * t + 1]));
    }
    return out;
}

RefInputs
refPointwiseMul(RpuDevice &dev, const KernelImage &image,
                const RefInputs &inputs)
{
    RefInputs out;
    out.push_back(polyPointwise(dev.modulusContext(image.moduli[0]),
                                inputs[0], inputs[1]));
    return out;
}

RefInputs
refBatchedPointwiseMul(RpuDevice &dev, const KernelImage &image,
                       const RefInputs &inputs)
{
    RefInputs out;
    for (size_t t = 0; t < image.moduli.size(); ++t) {
        out.push_back(polyPointwise(dev.modulusContext(image.moduli[t]),
                                    inputs[2 * t], inputs[2 * t + 1]));
    }
    return out;
}

/**
 * The kind -> handler table. This is data, not a switch, so coverage
 * is testable: the tier-1 handler-coverage test walks every
 * KernelKind through CpuReferenceBackend::handles and fails when a
 * new kind lands without a reference implementation.
 */
const std::map<KernelKind, RefHandler> &
refHandlers()
{
    static const std::map<KernelKind, RefHandler> table = {
        {KernelKind::ForwardNtt, &refSingleNtt},
        {KernelKind::InverseNtt, &refSingleNtt},
        {KernelKind::PolyMul, &refPolyMul},
        {KernelKind::BatchedForwardNtt, &refBatchedNtt},
        {KernelKind::BatchedInverseNtt, &refBatchedNtt},
        {KernelKind::BatchedPolyMul, &refBatchedPolyMul},
        {KernelKind::PointwiseMul, &refPointwiseMul},
        {KernelKind::PointwiseMulBatched, &refBatchedPointwiseMul},
    };
    return table;
}

} // namespace

bool
CpuReferenceBackend::handles(KernelKind kind)
{
    return refHandlers().count(kind) != 0;
}

std::vector<std::vector<u128>>
CpuReferenceBackend::execute(RpuDevice &dev, const KernelImage &image,
                             const std::vector<std::vector<u128>> &inputs)
{
    const auto it = refHandlers().find(image.kind);
    if (it == refHandlers().end()) {
        rpu_fatal("cpu-reference backend cannot execute kernel '%s' "
                  "(unhandled kind %d)",
                  image.program.name().c_str(), int(image.kind));
    }
    // Output-region count/size validation happens once for every
    // backend in RpuDevice::executeValidated.
    return it->second(dev, image, inputs);
}

// ----------------------------------------------------------------------
// RpuDevice
// ----------------------------------------------------------------------

RpuDevice::RpuDevice(std::unique_ptr<ExecutionBackend> backend,
                     std::shared_ptr<DeviceCaches> caches)
    : backend_(std::move(backend)), caches_(std::move(caches))
{
    rpu_assert(backend_ != nullptr, "device needs a backend");
    rpu_assert(caches_ != nullptr, "device needs a cache bundle");
}

void
RpuDevice::setParallelism(unsigned workers)
{
    // The per-worker launch ledger has one slot per worker plus the
    // inline slot; a wider pool would alias workers into the last
    // slot and corrupt the utilisation signal, so the pool is capped
    // at the tracked width (launch granularity is far too coarse for
    // >64 workers to pay anyway — callers routinely pass
    // hardware_concurrency() from big hosts).
    workers = std::min(workers,
                       unsigned(DeviceCounters::kWorkerSlots - 1));
    if (workers <= 1) {
        pool_.reset();
        return;
    }
    if (!pool_ || pool_->workers() != workers)
        pool_ = std::make_unique<ThreadPool>(workers);
}

void
RpuDevice::resetCounters()
{
    counters_.launches = 0;
    counters_.towerLaunches = 0;
    counters_.kernelHits = 0;
    counters_.kernelMisses = 0;
    counters_.forwardTransforms = 0;
    counters_.inverseTransforms = 0;
    counters_.pointwiseMuls = 0;
    counters_.transformsElided = 0;
    counters_.keySwitchTransforms = 0;
    counters_.stagedWords = 0;
    counters_.contendedLaunches = 0;
    counters_.maxOccupiedLanes = 0;
    for (auto &w : counters_.perWorkerLaunches)
        w = 0;
    for (auto &w : counters_.perWorkerCycles)
        w = 0;
    for (auto &w : counters_.perWorkerStagingCycles)
        w = 0;
    for (auto &w : counters_.perWorkerBusyCycles)
        w = 0;
}

void
RpuDevice::noteElidedTransforms(uint64_t towers)
{
    counters_.transformsElided += towers;
}

void
RpuDevice::noteKeySwitchTransforms(uint64_t towers)
{
    counters_.keySwitchTransforms += towers;
}

DeviceStats
RpuDevice::stats() const
{
    DeviceStats s;
    s.launches = counters_.launches;
    s.towerLaunches = counters_.towerLaunches;
    s.kernelHits = counters_.kernelHits;
    s.kernelMisses = counters_.kernelMisses;
    s.forwardTransforms = counters_.forwardTransforms;
    s.inverseTransforms = counters_.inverseTransforms;
    s.pointwiseMuls = counters_.pointwiseMuls;
    s.transformsElided = counters_.transformsElided;
    s.keySwitchTransforms = counters_.keySwitchTransforms;
    s.stagedWords = counters_.stagedWords;
    s.contendedLaunches = counters_.contendedLaunches;
    s.maxOccupiedLanes = counters_.maxOccupiedLanes;

    // Slot 0 (inline) plus one slot per current pool worker — but
    // never drop a slot that recorded launches under an earlier,
    // wider pool configuration.
    size_t slots = 1 + (pool_ ? pool_->workers() : 0);
    for (size_t i = slots; i < DeviceCounters::kWorkerSlots; ++i) {
        if (counters_.perWorkerLaunches[i] != 0)
            slots = i + 1;
    }
    for (size_t i = slots; i < DeviceCounters::kWorkerSlots; ++i) {
        if (counters_.perWorkerCycles[i] != 0)
            slots = i + 1;
    }
    slots = std::min(slots, DeviceCounters::kWorkerSlots);
    s.perWorkerLaunches.resize(slots);
    s.perWorkerCycles.resize(slots);
    s.perWorkerStagingCycles.resize(slots);
    s.perWorkerBusyCycles.resize(slots);
    for (size_t i = 0; i < slots; ++i) {
        s.perWorkerLaunches[i] = counters_.perWorkerLaunches[i];
        s.perWorkerCycles[i] = counters_.perWorkerCycles[i];
        s.perWorkerStagingCycles[i] =
            counters_.perWorkerStagingCycles[i];
        s.perWorkerBusyCycles[i] = counters_.perWorkerBusyCycles[i];
    }
    return s;
}

std::string
DeviceStats::summary() const
{
    std::string s = "launches=" + std::to_string(launches) +
                    " (towers=" + std::to_string(towerLaunches) +
                    "), ntt fwd=" + std::to_string(forwardTransforms) +
                    " inv=" + std::to_string(inverseTransforms) +
                    ", pointwise=" + std::to_string(pointwiseMuls) +
                    ", transforms elided=" +
                    std::to_string(transformsElided) +
                    " key-switch=" +
                    std::to_string(keySwitchTransforms) + ", workers=[";
    for (size_t i = 0; i < perWorkerLaunches.size(); ++i) {
        if (i > 0)
            s += " ";
        s += std::to_string(perWorkerLaunches[i]);
    }
    s += "], cycles total=" + std::to_string(cycleTotal()) +
         " makespan=" + std::to_string(makespanCycles()) +
         ", busy makespan=" + std::to_string(busyMakespanCycles()) +
         " (staging " + std::to_string(stagingCycleTotal()) +
         " cyc overlapped, contended=" +
         std::to_string(contendedLaunches) +
         " peak lanes=" + std::to_string(maxOccupiedLanes) + ")";
    return s;
}

namespace {

/** a[i] - b[i] over max(|a|, |b|) slots, missing slots reading 0. */
std::vector<uint64_t>
slotsSub(const std::vector<uint64_t> &a, const std::vector<uint64_t> &b)
{
    std::vector<uint64_t> out(std::max(a.size(), b.size()), 0);
    for (size_t i = 0; i < out.size(); ++i) {
        out[i] = (i < a.size() ? a[i] : 0) - (i < b.size() ? b[i] : 0);
    }
    return out;
}

/** a[i] += b[i], widening a to |b| first. */
void
slotsAdd(std::vector<uint64_t> &a, const std::vector<uint64_t> &b)
{
    if (a.size() < b.size())
        a.resize(b.size(), 0);
    for (size_t i = 0; i < b.size(); ++i)
        a[i] += b[i];
}

} // namespace

DeviceStats
DeviceStats::operator-(const DeviceStats &since) const
{
    DeviceStats d;
    d.launches = launches - since.launches;
    d.towerLaunches = towerLaunches - since.towerLaunches;
    d.kernelHits = kernelHits - since.kernelHits;
    d.kernelMisses = kernelMisses - since.kernelMisses;
    d.forwardTransforms = forwardTransforms - since.forwardTransforms;
    d.inverseTransforms = inverseTransforms - since.inverseTransforms;
    d.pointwiseMuls = pointwiseMuls - since.pointwiseMuls;
    d.transformsElided = transformsElided - since.transformsElided;
    d.keySwitchTransforms =
        keySwitchTransforms - since.keySwitchTransforms;
    d.stagedWords = stagedWords - since.stagedWords;
    d.contendedLaunches = contendedLaunches - since.contendedLaunches;
    // A high-water mark has no meaningful windowed delta; keep the
    // later snapshot's value.
    d.maxOccupiedLanes = maxOccupiedLanes;

    // The later snapshot may span more worker slots (the pool was
    // widened in the window); the earlier one contributes zero there.
    d.perWorkerLaunches = slotsSub(perWorkerLaunches,
                                   since.perWorkerLaunches);
    d.perWorkerCycles = slotsSub(perWorkerCycles,
                                 since.perWorkerCycles);
    d.perWorkerStagingCycles = slotsSub(perWorkerStagingCycles,
                                        since.perWorkerStagingCycles);
    d.perWorkerBusyCycles = slotsSub(perWorkerBusyCycles,
                                     since.perWorkerBusyCycles);
    return d;
}

DeviceStats &
DeviceStats::operator+=(const DeviceStats &other)
{
    launches += other.launches;
    towerLaunches += other.towerLaunches;
    kernelHits += other.kernelHits;
    kernelMisses += other.kernelMisses;
    forwardTransforms += other.forwardTransforms;
    inverseTransforms += other.inverseTransforms;
    pointwiseMuls += other.pointwiseMuls;
    transformsElided += other.transformsElided;
    keySwitchTransforms += other.keySwitchTransforms;
    stagedWords += other.stagedWords;
    contendedLaunches += other.contendedLaunches;
    maxOccupiedLanes = std::max(maxOccupiedLanes,
                                other.maxOccupiedLanes);
    slotsAdd(perWorkerLaunches, other.perWorkerLaunches);
    slotsAdd(perWorkerCycles, other.perWorkerCycles);
    slotsAdd(perWorkerStagingCycles, other.perWorkerStagingCycles);
    slotsAdd(perWorkerBusyCycles, other.perWorkerBusyCycles);
    return *this;
}

DeviceStats
DeviceStats::operator+(const DeviceStats &other) const
{
    DeviceStats d = *this;
    d += other;
    return d;
}

const Modulus &
RpuDevice::modulusContext(u128 q)
{
    return caches_->modulus.get(q);
}

const TwiddleTable &
RpuDevice::twiddleTableLocked(uint64_t n, u128 q)
{
    const auto key = std::make_pair(n, q);
    auto it = caches_->twiddle.find(key);
    if (it == caches_->twiddle.end()) {
        // The table holds a reference to the modulus context; both
        // caches only ever grow, so the reference stays valid.
        it = caches_->twiddle
                 .emplace(key, std::make_unique<TwiddleTable>(
                                   modulusContext(q), n))
                 .first;
    }
    return *it->second;
}

const TwiddleTable &
RpuDevice::twiddleTable(uint64_t n, u128 q)
{
    std::lock_guard<std::mutex> lock(caches_->contextMutex);
    return twiddleTableLocked(n, q);
}

const NttContext &
RpuDevice::nttContext(uint64_t n, u128 q)
{
    std::lock_guard<std::mutex> lock(caches_->contextMutex);
    const auto key = std::make_pair(n, q);
    auto it = caches_->ntt.find(key);
    if (it == caches_->ntt.end()) {
        it = caches_->ntt
                 .emplace(key, std::make_unique<NttContext>(
                                   twiddleTableLocked(n, q)))
                 .first;
    }
    return *it->second;
}

std::string
RpuDevice::kernelKey(KernelKind kind, uint64_t n,
                     const std::vector<u128> &moduli,
                     const NttCodegenOptions &opts) const
{
    // Everything that changes the generated/scheduled program, each
    // field behind its own delimiter so no two specs can collide.
    std::string key = "k" + std::to_string(int(kind)) + ":n" +
                      std::to_string(n) + ":m";
    for (u128 q : moduli) {
        key += std::to_string(uint64_t(q >> 64)) + "_" +
               std::to_string(uint64_t(q)) + ",";
    }
    key += ":o" + std::to_string(opts.optimized) + ":w" +
           std::to_string(opts.twiddleCompose);
    // The design point only shapes the program through the list
    // scheduler, which unoptimized generation skips. Every RpuConfig
    // field is keyed — including ones the scheduler does not consult
    // today (vdmBytes) — so a future scheduler input can never alias
    // two design points onto one cached kernel.
    if (opts.optimized) {
        const RpuConfig &c = opts.scheduleConfig;
        for (uint64_t v :
             {uint64_t(c.numHples), uint64_t(c.numBanks),
              uint64_t(c.vdmBytes), uint64_t(c.mulLatency),
              uint64_t(c.mulII), uint64_t(c.addLatency),
              uint64_t(c.shuffleLatency), uint64_t(c.lsLatency),
              uint64_t(c.sdmLatency), uint64_t(c.queueDepth),
              uint64_t(c.dispatchWidth),
              uint64_t(c.exclusiveReaders)}) {
            key += ":" + std::to_string(v);
        }
    }
    return key;
}

const KernelImage &
RpuDevice::kernel(KernelKind kind, uint64_t n,
                  const std::vector<u128> &moduli,
                  const NttCodegenOptions &opts)
{
    rpu_assert(!moduli.empty(), "kernel needs at least one modulus");

    const std::string key = kernelKey(kind, n, moduli, opts);
    // Single-flight generation per key: the first requester marks the
    // key in the bundle's generating set and builds the kernel
    // *outside* the cache lock, so distinct kernels generate
    // concurrently (e.g. several towers' kernels racing in from
    // worker threads); same-key requesters wait on the condvar for
    // the one generation instead of duplicating it, and count a cache
    // hit once it lands. The bundle may be shared across a topology:
    // hit/miss counters stay per-device, so a kernel generated on one
    // device is observably a hit (not a regeneration) on every other.
    std::unique_lock<std::mutex> lock(caches_->kernelMutex);
    for (;;) {
        auto it = caches_->kernels.find(key);
        if (it != caches_->kernels.end()) {
            ++counters_.kernelHits;
            return *it->second;
        }
        if (caches_->generating.insert(key).second)
            break;
        caches_->kernelCv.wait(lock);
    }
    ++counters_.kernelMisses;
    lock.unlock();

    NttCodegenOptions gen_opts = opts;
    gen_opts.inverse = kind == KernelKind::InverseNtt ||
                       kind == KernelKind::BatchedInverseNtt;

    std::vector<const TwiddleTable *> towers;
    towers.reserve(moduli.size());
    for (u128 q : moduli)
        towers.push_back(&twiddleTable(n, q));

    auto image = std::make_unique<KernelImage>();
    switch (kind) {
      case KernelKind::ForwardNtt:
      case KernelKind::InverseNtt:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generateNttKernel(*towers[0], gen_opts));
        break;
      case KernelKind::PolyMul:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generatePolyMulKernel(*towers[0], gen_opts));
        break;
      case KernelKind::BatchedForwardNtt:
      case KernelKind::BatchedInverseNtt:
        *image = static_cast<KernelImage &&>(
            generateBatchedNtt(towers, gen_opts));
        break;
      case KernelKind::BatchedPolyMul:
        *image = generateBatchedPolyMul(towers, gen_opts);
        break;
      case KernelKind::PointwiseMul:
        rpu_assert(moduli.size() == 1, "single-ring kernel");
        *image = static_cast<KernelImage &&>(
            generatePointwiseMulKernel(*towers[0], gen_opts));
        break;
      case KernelKind::PointwiseMulBatched:
        *image = generateBatchedPointwiseMul(towers, gen_opts);
        break;
      case KernelKind::kCount:
        rpu_fatal("kCount is a sentinel, not a kernel kind");
    }

    // Cycle-simulate the program once, at the design point it was
    // generated for, and stamp the cost on the image itself: every
    // launch then folds its modelled cost into the per-worker cycle
    // ledger with a plain field read, no lock (this runs outside the
    // cache lock, like generation itself).
    RpuConfig cycle_cfg = gen_opts.scheduleConfig;
    cycle_cfg.vdmBytes =
        std::max(cycle_cfg.vdmBytes, image->vdmBytesRequired);
    image->modelCycles =
        simulateCycles(image->program, cycle_cfg).cycles;

    // Publish and wake every same-key waiter. Generation itself
    // cannot fail softly (codegen errors are fatal), so the
    // generating entry is always cleared here.
    lock.lock();
    auto it = caches_->kernels.emplace(key, std::move(image)).first;
    caches_->generating.erase(key);
    caches_->kernelCv.notify_all();
    return *it->second;
}

void
RpuDevice::validateLaunch(const KernelImage &image,
                          const std::vector<std::vector<u128>> &inputs)
    const
{
    const auto in_regions = image.inputRegions();
    if (inputs.size() != in_regions.size()) {
        rpu_fatal("kernel '%s' takes %zu inputs, got %zu",
                  image.program.name().c_str(), in_regions.size(),
                  inputs.size());
    }
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].size() != in_regions[i]->words) {
            rpu_fatal("input '%s' wants %llu words, got %zu",
                      in_regions[i]->name.c_str(),
                      (unsigned long long)in_regions[i]->words,
                      inputs[i].size());
        }
    }
}

std::vector<std::vector<u128>>
RpuDevice::executeValidated(const KernelImage &image,
                            const std::vector<std::vector<u128>> &inputs,
                            unsigned structuralLanes)
{
    ++counters_.launches;
    counters_.towerLaunches += image.moduli.size();

    // Semantic, tower-granular transform ledger: what the kernel kind
    // actually computes, independent of how it was dispatched.
    const uint64_t towers = image.moduli.size();
    switch (image.kind) {
      case KernelKind::ForwardNtt:
        counters_.forwardTransforms += 1;
        break;
      case KernelKind::InverseNtt:
        counters_.inverseTransforms += 1;
        break;
      case KernelKind::PolyMul:
        counters_.forwardTransforms += 2;
        counters_.inverseTransforms += 1;
        counters_.pointwiseMuls += 1;
        break;
      case KernelKind::BatchedForwardNtt:
        counters_.forwardTransforms += towers;
        break;
      case KernelKind::BatchedInverseNtt:
        counters_.inverseTransforms += towers;
        break;
      case KernelKind::BatchedPolyMul:
        counters_.forwardTransforms += 2 * towers;
        counters_.inverseTransforms += towers;
        counters_.pointwiseMuls += towers;
        break;
      case KernelKind::PointwiseMul:
        counters_.pointwiseMuls += 1;
        break;
      case KernelKind::PointwiseMulBatched:
        counters_.pointwiseMuls += towers;
        break;
      case KernelKind::kCount:
        break;
    }

    // Attribute the launch to the lane that ran it: slot 0 for the
    // calling thread, 1 + w for worker w of *this device's* pool.
    // A launch issued from some other pool's worker thread is an
    // inline launch as far as this device is concerned, so it counts
    // in slot 0 rather than crediting a phantom worker.
    const bool own_worker =
        pool_ && ThreadPool::currentPool() == pool_.get();
    const size_t slot =
        own_worker ? size_t(ThreadPool::currentWorkerIndex() + 1) : 0;
    ++counters_.perWorkerLaunches[slot];
    counters_.perWorkerCycles[slot] += image.modelCycles;

    // Contention ledger: words staged in + drained out, costed
    // through the HBM model at the lane occupancy this launch ran
    // under. Occupancy is the max of the dispatch-structure hint
    // (deterministic: a batch of m launches over a w-worker pool
    // fills min(w, m) lanes at steady state) and the launches
    // actually observed in flight right now (catches unstructured
    // concurrency, e.g. several dispatcher threads sharing a serial
    // device). At single-lane occupancy the staging/drain traffic
    // hides fully behind compute — busy == modelCycles, the PR 5
    // ledger bit for bit.
    uint64_t words = 0;
    for (const std::vector<u128> &in : inputs)
        words += in.size();
    for (const DataRegion *r : image.outputRegions())
        words += r->words;

    const uint32_t in_flight = active_launches_.fetch_add(1) + 1;
    const unsigned lanes =
        std::max(structuralLanes, unsigned(in_flight));
    const uint64_t staging = contention_.stagingCycles(words);
    const uint64_t busy =
        contention_.busyCycles(image.modelCycles, words, lanes);
    counters_.stagedWords += words;
    counters_.perWorkerStagingCycles[slot] += staging;
    counters_.perWorkerBusyCycles[slot] += busy;
    if (lanes > 1)
        ++counters_.contendedLaunches;
    uint64_t peak = counters_.maxOccupiedLanes.load();
    while (peak < lanes &&
           !counters_.maxOccupiedLanes.compare_exchange_weak(peak,
                                                             lanes)) {
    }

    // Balance active_launches_ on every exit path (backend execute
    // may throw; validation already happened).
    struct LaneGuard
    {
        std::atomic<uint32_t> &active;
        ~LaneGuard() { active.fetch_sub(1); }
    } lane_guard{active_launches_};

    auto outputs = backend_->execute(*this, image, inputs);

    // Guard every backend, present and future: an execute() that
    // under-fills the image's output regions must never hand callers
    // truncated results.
    const auto out_regions = image.outputRegions();
    if (outputs.size() != out_regions.size()) {
        rpu_fatal("kernel '%s' declares %zu output regions, backend "
                  "'%s' produced %zu",
                  image.program.name().c_str(), out_regions.size(),
                  backend_->name(), outputs.size());
    }
    for (size_t i = 0; i < outputs.size(); ++i) {
        if (outputs[i].size() != out_regions[i]->words) {
            rpu_fatal("output '%s' wants %llu words, backend '%s' "
                      "produced %zu",
                      out_regions[i]->name.c_str(),
                      (unsigned long long)out_regions[i]->words,
                      backend_->name(), outputs[i].size());
        }
    }
    return outputs;
}

std::vector<std::vector<u128>>
RpuDevice::launch(const KernelImage &image,
                  const std::vector<std::vector<u128>> &inputs)
{
    validateLaunch(image, inputs);
    return executeValidated(image, inputs);
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::launchAll(const std::vector<LaunchRequest> &batch)
{
    // Validate the whole batch on the calling thread so user errors
    // fire deterministically before any worker starts.
    for (const LaunchRequest &req : batch) {
        rpu_assert(req.image != nullptr, "launch without a kernel");
        validateLaunch(*req.image, req.inputs);
    }

    std::vector<std::vector<std::vector<u128>>> results(batch.size());
    if (pool_ && batch.size() > 1) {
        // The batch structurally occupies min(workers, batch) lanes;
        // the contention ledger models that occupancy even when the
        // host OS happens to serialise the worker threads.
        const unsigned lanes = unsigned(
            std::min<size_t>(pool_->workers(), batch.size()));
        std::vector<std::future<std::vector<std::vector<u128>>>> futures;
        futures.reserve(batch.size());
        for (const LaunchRequest &req : batch) {
            futures.push_back(pool_->submit([this, &req, lanes] {
                return executeValidated(*req.image, req.inputs, lanes);
            }));
        }
        // Collect in request order: results are deterministic no
        // matter which worker finishes first, and each launch is a
        // pure function of (image, inputs), so the batch is
        // bit-identical to the serial path. whenAll joins every job
        // before surfacing any failure — still-queued jobs hold
        // references into the caller's batch, so unwinding early
        // would free memory under them.
        results = whenAll(std::move(futures));
    } else {
        for (size_t i = 0; i < batch.size(); ++i)
            results[i] = executeValidated(*batch[i].image,
                                          batch[i].inputs);
    }
    return results;
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::whenAll(std::vector<LaunchFuture> futures)
{
    // Request-ordered join. Every future is drained before the first
    // failure is rethrown: a still-running launch must never outlive
    // an unwinding caller that owns state it references.
    std::vector<std::vector<std::vector<u128>>> results(futures.size());
    std::exception_ptr first_error;
    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            results[i] = futures[i].get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

LaunchFuture
RpuDevice::launchAsync(const KernelImage &image,
                       std::vector<std::vector<u128>> inputs,
                       unsigned structuralLanes)
{
    validateLaunch(image, inputs);
    if (pool_) {
        return pool_->submit(
            [this, &image, in = std::move(inputs), structuralLanes] {
                return executeValidated(image, in, structuralLanes);
            });
    }
    // Inline execution still reports failure through the future, so
    // callers handle errors at .get() regardless of the parallelism.
    // An inline launch occupies exactly one lane whatever the caller
    // believed the dispatch structure was.
    std::promise<std::vector<std::vector<u128>>> done;
    try {
        done.set_value(executeValidated(image, inputs));
    } catch (...) {
        done.set_exception(std::current_exception());
    }
    return done.get_future();
}

std::vector<u128>
RpuDevice::ntt(uint64_t n, u128 q, const std::vector<u128> &x,
               bool inverse, const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(
        inverse ? KernelKind::InverseNtt : KernelKind::ForwardNtt, n,
        {q}, opts);
    return launch(k, {x})[0];
}

std::vector<u128>
RpuDevice::negacyclicMul(uint64_t n, u128 q, const std::vector<u128> &a,
                         const std::vector<u128> &b,
                         const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(KernelKind::PolyMul, n, {q}, opts);
    return launch(k, {a, b})[0];
}

std::vector<std::vector<u128>>
RpuDevice::mulTowers(uint64_t n, const std::vector<u128> &moduli,
                     std::vector<std::vector<u128>> a,
                     std::vector<std::vector<u128>> b,
                     const NttCodegenOptions &opts)
{
    std::vector<std::vector<std::vector<u128>>> as, bs;
    as.push_back(std::move(a));
    bs.push_back(std::move(b));
    return std::move(
        mulTowersBatch(n, moduli, std::move(as), std::move(bs),
                       opts)[0]);
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::mulTowersBatch(
    uint64_t n, const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    auto pending = mulTowersBatchAsync(n, moduli, std::move(a),
                                       std::move(b), opts);
    std::vector<std::vector<std::vector<u128>>> out(pending.size());
    for (size_t p = 0; p < pending.size(); ++p)
        out[p] = collectTowers(std::move(pending[p]));
    return out;
}

std::vector<PendingTowerProducts>
RpuDevice::pairProductsBatchAsync(
    KernelKind single, KernelKind batched, uint64_t n,
    const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    rpu_assert(a.size() == b.size(), "operand pair count mismatch");
    const size_t pairs = a.size();
    const size_t towers = moduli.size();
    for (size_t p = 0; p < pairs; ++p) {
        rpu_assert(a[p].size() == towers && b[p].size() == towers,
                   "tower count mismatch");
    }

    std::vector<PendingTowerProducts> pending(pairs);
    for (auto &p : pending)
        p.towers = towers;

    if (pool_ && pairs * towers > 1) {
        // One single-ring launch per (pair, tower), so every
        // independent product overlaps across the worker pool — the
        // paper's "process different towers simultaneously", realised
        // in host wall-clock time. Operand vectors are moved into the
        // launches, which own them until their futures resolve.
        const unsigned lanes = unsigned(
            std::min<size_t>(pool_->workers(), pairs * towers));
        std::vector<const KernelImage *> tower_kernels(towers);
        for (size_t t = 0; t < towers; ++t)
            tower_kernels[t] = &kernel(single, n, {moduli[t]}, opts);
        for (size_t p = 0; p < pairs; ++p) {
            pending[p].futures.reserve(towers);
            for (size_t t = 0; t < towers; ++t) {
                std::vector<std::vector<u128>> in;
                in.reserve(2);
                in.push_back(std::move(a[p][t]));
                in.push_back(std::move(b[p][t]));
                pending[p].futures.push_back(launchAsync(
                    *tower_kernels[t], std::move(in), lanes));
            }
        }
        return pending;
    }

    // Serial: one batched all-towers launch per pair (executed inline
    // by launchAsync when there is no pool, so the returned futures
    // are already ready). Region order is t0.a, t0.b, t1.a, t1.b, ...
    const KernelImage &k = kernel(batched, n, moduli, opts);
    for (size_t p = 0; p < pairs; ++p) {
        std::vector<std::vector<u128>> in;
        in.reserve(2 * towers);
        for (size_t t = 0; t < towers; ++t) {
            in.push_back(std::move(a[p][t]));
            in.push_back(std::move(b[p][t]));
        }
        pending[p].futures.push_back(launchAsync(k, std::move(in)));
    }
    return pending;
}

std::vector<PendingTowerProducts>
RpuDevice::mulTowersBatchAsync(
    uint64_t n, const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    return pairProductsBatchAsync(KernelKind::PolyMul,
                                  KernelKind::BatchedPolyMul, n,
                                  moduli, std::move(a), std::move(b),
                                  opts);
}

std::vector<u128>
RpuDevice::pointwiseMul(uint64_t n, u128 q, const std::vector<u128> &a,
                        const std::vector<u128> &b,
                        const NttCodegenOptions &opts)
{
    const KernelImage &k = kernel(KernelKind::PointwiseMul, n, {q}, opts);
    return launch(k, {a, b})[0];
}

std::vector<PendingTowerProducts>
RpuDevice::transformTowersBatchAsync(
    uint64_t n, const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> xs, bool inverse,
    const NttCodegenOptions &opts)
{
    const size_t towers = moduli.size();
    const size_t sets = xs.size();
    for (size_t s = 0; s < sets; ++s)
        rpu_assert(xs[s].size() == towers, "tower count mismatch");

    std::vector<PendingTowerProducts> pending(sets);
    for (auto &p : pending)
        p.towers = towers;

    if (pool_ && sets * towers > 1) {
        // One single-ring transform per (set, tower), fanned across
        // the worker pool — the same policy split as the fused tower
        // products.
        const unsigned lanes = unsigned(
            std::min<size_t>(pool_->workers(), sets * towers));
        std::vector<const KernelImage *> tower_kernels(towers);
        for (size_t t = 0; t < towers; ++t) {
            tower_kernels[t] = &kernel(inverse ? KernelKind::InverseNtt
                                               : KernelKind::ForwardNtt,
                                       n, {moduli[t]}, opts);
        }
        for (size_t s = 0; s < sets; ++s) {
            pending[s].futures.reserve(towers);
            for (size_t t = 0; t < towers; ++t) {
                pending[s].futures.push_back(
                    launchAsync(*tower_kernels[t],
                                {std::move(xs[s][t])}, lanes));
            }
        }
        return pending;
    }

    // Serial: one batched all-towers transform launch per set.
    const KernelImage &k =
        kernel(inverse ? KernelKind::BatchedInverseNtt
                       : KernelKind::BatchedForwardNtt,
               n, moduli, opts);
    for (size_t s = 0; s < sets; ++s) {
        std::vector<std::vector<u128>> in;
        in.reserve(towers);
        for (size_t t = 0; t < towers; ++t)
            in.push_back(std::move(xs[s][t]));
        pending[s].futures.push_back(launchAsync(k, std::move(in)));
    }
    return pending;
}

std::vector<PendingTowerProducts>
RpuDevice::pointwiseTowersBatchAsync(
    uint64_t n, const std::vector<u128> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    return pairProductsBatchAsync(KernelKind::PointwiseMul,
                                  KernelKind::PointwiseMulBatched, n,
                                  moduli, std::move(a), std::move(b),
                                  opts);
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::transformCoalesced(
    uint64_t n, const std::vector<std::vector<u128>> &moduli,
    std::vector<std::vector<std::vector<u128>>> xs, bool inverse,
    const NttCodegenOptions &opts)
{
    const size_t items = moduli.size();
    rpu_assert(xs.size() == items, "item count mismatch");

    std::vector<u128> tiled;
    for (size_t i = 0; i < items; ++i) {
        rpu_assert(xs[i].size() == moduli[i].size(),
                   "tower count mismatch in item %zu", i);
        tiled.insert(tiled.end(), moduli[i].begin(), moduli[i].end());
    }

    std::vector<std::vector<u128>> in;
    in.reserve(tiled.size());
    for (auto &item : xs)
        for (auto &tower : item)
            in.push_back(std::move(tower));

    // One launch per <= kMaxBatchedTowers group of the tiled chain
    // (the batched-kernel register budget), so a chunk costs
    // ceil(towers / budget) launches however many items it merged.
    std::vector<std::vector<u128>> flat;
    flat.reserve(tiled.size());
    for (size_t g = 0; g < tiled.size(); g += kMaxBatchedTowers) {
        const size_t end =
            std::min(tiled.size(), g + kMaxBatchedTowers);
        const std::vector<u128> group(tiled.begin() + g,
                                      tiled.begin() + end);
        const KernelImage &k =
            kernel(inverse ? KernelKind::BatchedInverseNtt
                           : KernelKind::BatchedForwardNtt,
                   n, group, opts);
        std::vector<std::vector<u128>> part = launch(
            k, std::vector<std::vector<u128>>(
                   std::make_move_iterator(in.begin() + g),
                   std::make_move_iterator(in.begin() + end)));
        for (auto &r : part)
            flat.push_back(std::move(r));
    }

    std::vector<std::vector<std::vector<u128>>> out(items);
    size_t f = 0;
    for (size_t i = 0; i < items; ++i) {
        out[i].reserve(moduli[i].size());
        for (size_t t = 0; t < moduli[i].size(); ++t)
            out[i].push_back(std::move(flat[f++]));
    }
    return out;
}

std::vector<std::vector<std::vector<u128>>>
RpuDevice::pointwiseCoalesced(
    uint64_t n, const std::vector<std::vector<u128>> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    const size_t items = moduli.size();
    rpu_assert(a.size() == items && b.size() == items,
               "item count mismatch");

    std::vector<u128> tiled;
    for (size_t i = 0; i < items; ++i) {
        rpu_assert(a[i].size() == moduli[i].size() &&
                       b[i].size() == moduli[i].size(),
                   "tower count mismatch in item %zu", i);
        tiled.insert(tiled.end(), moduli[i].begin(), moduli[i].end());
    }

    // Same region layout as one PointwiseMulBatched pair: per flat
    // tower, the a operand then the b operand.
    std::vector<std::vector<u128>> in;
    in.reserve(2 * tiled.size());
    for (size_t i = 0; i < items; ++i) {
        for (size_t t = 0; t < moduli[i].size(); ++t) {
            in.push_back(std::move(a[i][t]));
            in.push_back(std::move(b[i][t]));
        }
    }

    // Tiled into <= kMaxBatchedTowers launches like the transforms;
    // a tower's a/b regions always land in the same group.
    std::vector<std::vector<u128>> flat;
    flat.reserve(tiled.size());
    for (size_t g = 0; g < tiled.size(); g += kMaxBatchedTowers) {
        const size_t end =
            std::min(tiled.size(), g + kMaxBatchedTowers);
        const std::vector<u128> group(tiled.begin() + g,
                                      tiled.begin() + end);
        const KernelImage &k =
            kernel(KernelKind::PointwiseMulBatched, n, group, opts);
        std::vector<std::vector<u128>> part = launch(
            k, std::vector<std::vector<u128>>(
                   std::make_move_iterator(in.begin() + 2 * g),
                   std::make_move_iterator(in.begin() + 2 * end)));
        for (auto &r : part)
            flat.push_back(std::move(r));
    }

    std::vector<std::vector<std::vector<u128>>> out(items);
    size_t f = 0;
    for (size_t i = 0; i < items; ++i) {
        out[i].reserve(moduli[i].size());
        for (size_t t = 0; t < moduli[i].size(); ++t)
            out[i].push_back(std::move(flat[f++]));
    }
    return out;
}

std::vector<std::vector<u128>>
RpuDevice::collectTowers(PendingTowerProducts pending)
{
    // Both dispatch shapes flatten to one region per tower: the
    // batched kernel is one future whose outputs are the towers'
    // "t<i>.a" regions in basis order, the per-tower fan-out is one
    // single-region future per tower in the same order.
    auto results = whenAll(std::move(pending.futures));
    std::vector<std::vector<u128>> out;
    out.reserve(pending.towers);
    for (auto &regions : results) {
        for (auto &r : regions)
            out.push_back(std::move(r));
    }
    rpu_assert(out.size() == pending.towers,
               "pending pair resolved to %zu regions, expected %zu",
               out.size(), pending.towers);
    return out;
}

} // namespace rpu
