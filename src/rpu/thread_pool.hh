/**
 * @file
 * Fixed-size worker pool for the host-side dispatch layer.
 *
 * The paper's MRF gives the RPU "the potential to process different
 * towers simultaneously" (section IV-B5); RpuDevice lifts the same
 * idea to host dispatch by fanning independent kernel launches across
 * these workers. The pool is deliberately minimal: a FIFO job queue,
 * N long-lived threads, and futures for results — no work stealing,
 * no priorities. Launch granularity (a whole B512 program) is coarse
 * enough that a simple queue never becomes the bottleneck.
 */

#ifndef RPU_RPU_THREAD_POOL_HH
#define RPU_RPU_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rpu {

/** N worker threads draining one FIFO job queue. */
class ThreadPool
{
  public:
    /** Start @p workers threads (at least one). */
    explicit ThreadPool(unsigned workers);

    /** Drains the queue: queued jobs run to completion before join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const { return unsigned(threads_.size()); }

    /**
     * Index (0-based) of the pool worker executing the caller, or -1
     * when called from a thread that is not a pool worker. Lets
     * per-worker accounting (e.g. DeviceStats launch attribution)
     * name the lane a job actually ran on. Pair with currentPool():
     * the index is only meaningful relative to the pool that owns
     * the thread.
     */
    static int currentWorkerIndex();

    /** The pool owning the calling thread, or nullptr off-pool. */
    static const ThreadPool *currentPool();

    /**
     * Queue @p fn for execution on a worker; the future carries its
     * result (or the exception it threw).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // std::function requires copyable targets; a packaged_task is
        // move-only, so it rides behind a shared_ptr.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

  private:
    void enqueue(std::function<void()> job);
    void workerLoop(unsigned index);

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

} // namespace rpu

#endif // RPU_RPU_THREAD_POOL_HH
