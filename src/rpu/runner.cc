#include "rpu/runner.hh"

#include "common/logging.hh"
#include "modmath/primegen.hh"
#include "sim/cycle/simulator.hh"
#include "sim/functional/executor.hh"

namespace rpu {

NttRunner::NttRunner(uint64_t n, unsigned q_bits) : n_(n)
{
    mod_ = std::make_unique<Modulus>(nttPrime(q_bits, n));
    tw_ = std::make_unique<TwiddleTable>(*mod_, n);
    ref_ = std::make_unique<NttContext>(*tw_);
}

NttRunner
NttRunner::withModulus(uint64_t n, u128 modulus)
{
    NttRunner runner;
    runner.n_ = n;
    runner.mod_ = std::make_unique<Modulus>(modulus);
    runner.tw_ = std::make_unique<TwiddleTable>(*runner.mod_, n);
    runner.ref_ = std::make_unique<NttContext>(*runner.tw_);
    return runner;
}

NttKernel
NttRunner::makeKernel(const NttCodegenOptions &opts) const
{
    return generateNttKernel(*tw_, opts);
}

std::vector<u128>
NttRunner::execute(const NttKernel &kernel,
                   const std::vector<u128> &input) const
{
    rpu_assert(input.size() == n_, "input size mismatch");

    // Launch code: stage constants and data into the scratchpads.
    ArchState state(kernel.vdmBytesRequired);
    for (size_t i = 0; i < kernel.sdmImage.size(); ++i)
        state.writeSdm(i, kernel.sdmImage[i]);
    state.loadVdm(kernel.twPlanBase, kernel.twPlanImage);
    state.loadVdm(kernel.dataBase, input);

    FunctionalSimulator sim(state);
    sim.run(kernel.program);
    return state.dumpVdm(kernel.dataBase, n_);
}

bool
NttRunner::verify(const NttKernel &kernel, uint64_t seed) const
{
    Rng rng(seed);
    const std::vector<u128> input = randomPoly(*mod_, n_, rng);

    std::vector<u128> expected = input;
    if (kernel.inverse)
        ref_->inverse(expected);
    else
        ref_->forward(expected);

    const std::vector<u128> actual = execute(kernel, input);
    return actual == expected;
}

KernelMetrics
NttRunner::evaluate(const NttKernel &kernel, const RpuConfig &cfg) const
{
    return evaluateProgram(kernel.program, kernel.vdmBytesRequired, cfg);
}

KernelMetrics
NttRunner::evaluateProgram(const Program &program,
                           size_t vdm_bytes_required,
                           const RpuConfig &cfg) const
{
    RpuConfig run_cfg = cfg;
    run_cfg.vdmBytes = std::max(run_cfg.vdmBytes, vdm_bytes_required);
    const CycleStats stats = simulateCycles(program, run_cfg);
    return computeMetrics(stats, run_cfg);
}

PolyMulKernel
NttRunner::makePolyMulKernel(const NttCodegenOptions &opts) const
{
    return generatePolyMulKernel(*tw_, opts);
}

std::vector<u128>
NttRunner::executePolyMul(const PolyMulKernel &kernel,
                          const std::vector<u128> &a,
                          const std::vector<u128> &b) const
{
    rpu_assert(a.size() == n_ && b.size() == n_, "input size mismatch");
    ArchState state(kernel.vdmBytesRequired);
    for (size_t i = 0; i < kernel.sdmImage.size(); ++i)
        state.writeSdm(i, kernel.sdmImage[i]);
    state.loadVdm(kernel.twPlanBase, kernel.twPlanImage);
    state.loadVdm(kernel.aBase, a);
    state.loadVdm(kernel.bBase, b);

    FunctionalSimulator sim(state);
    sim.run(kernel.program);
    return state.dumpVdm(kernel.aBase, n_);
}

bool
NttRunner::verifyPolyMul(const PolyMulKernel &kernel, uint64_t seed) const
{
    Rng rng(seed);
    const std::vector<u128> a = randomPoly(*mod_, n_, rng);
    const std::vector<u128> b = randomPoly(*mod_, n_, rng);
    const std::vector<u128> expected = negacyclicMulNtt(*ref_, a, b);
    return executePolyMul(kernel, a, b) == expected;
}

} // namespace rpu
