#include "rpu/runner.hh"

#include "common/logging.hh"
#include "modmath/primegen.hh"
#include "sim/cycle/simulator.hh"

namespace rpu {

NttRunner::NttRunner(uint64_t n, unsigned q_bits,
                     std::shared_ptr<RpuDevice> device)
    : n_(n), device_(device ? std::move(device)
                            : std::make_shared<RpuDevice>())
{
    mod_ = std::make_unique<Modulus>(nttPrime(q_bits, n));
    tw_ = std::make_unique<TwiddleTable>(*mod_, n);
    ref_ = std::make_unique<NttContext>(*tw_);
}

NttRunner
NttRunner::withModulus(uint64_t n, u128 modulus,
                       std::shared_ptr<RpuDevice> device)
{
    NttRunner runner;
    runner.n_ = n;
    runner.device_ = device ? std::move(device)
                            : std::make_shared<RpuDevice>();
    runner.mod_ = std::make_unique<Modulus>(modulus);
    runner.tw_ = std::make_unique<TwiddleTable>(*runner.mod_, n);
    runner.ref_ = std::make_unique<NttContext>(*runner.tw_);
    return runner;
}

NttKernel
NttRunner::makeKernel(const NttCodegenOptions &opts) const
{
    return generateNttKernel(*tw_, opts);
}

std::vector<u128>
NttRunner::execute(const NttKernel &kernel,
                   const std::vector<u128> &input) const
{
    rpu_assert(input.size() == n_, "input size mismatch");
    return device_->launch(kernel, {input})[0];
}

bool
NttRunner::verify(const NttKernel &kernel, uint64_t seed) const
{
    Rng rng(seed);
    const std::vector<u128> input = randomPoly(*mod_, n_, rng);

    std::vector<u128> expected = input;
    if (kernel.inverse)
        ref_->inverse(expected);
    else
        ref_->forward(expected);

    const std::vector<u128> actual = execute(kernel, input);
    return actual == expected;
}

KernelMetrics
NttRunner::evaluate(const NttKernel &kernel, const RpuConfig &cfg) const
{
    return evaluateProgram(kernel.program, kernel.vdmBytesRequired, cfg);
}

KernelMetrics
evaluateProgram(const Program &program, size_t vdm_bytes_required,
                const RpuConfig &cfg)
{
    RpuConfig run_cfg = cfg;
    run_cfg.vdmBytes = std::max(run_cfg.vdmBytes, vdm_bytes_required);
    const CycleStats stats = simulateCycles(program, run_cfg);
    return computeMetrics(stats, run_cfg);
}

KernelMetrics
NttRunner::evaluateProgram(const Program &program,
                           size_t vdm_bytes_required,
                           const RpuConfig &cfg) const
{
    return rpu::evaluateProgram(program, vdm_bytes_required, cfg);
}

PolyMulKernel
NttRunner::makePolyMulKernel(const NttCodegenOptions &opts) const
{
    return generatePolyMulKernel(*tw_, opts);
}

std::vector<u128>
NttRunner::executePolyMul(const PolyMulKernel &kernel,
                          const std::vector<u128> &a,
                          const std::vector<u128> &b) const
{
    rpu_assert(a.size() == n_ && b.size() == n_, "input size mismatch");
    return device_->launch(kernel, {a, b})[0];
}

bool
NttRunner::verifyPolyMul(const PolyMulKernel &kernel, uint64_t seed) const
{
    Rng rng(seed);
    const std::vector<u128> a = randomPoly(*mod_, n_, rng);
    const std::vector<u128> b = randomPoly(*mod_, n_, rng);
    const std::vector<u128> expected = negacyclicMulNtt(*ref_, a, b);
    return executePolyMul(kernel, a, b) == expected;
}

} // namespace rpu
