/**
 * @file
 * RpuDevice: the host-side device layer every kernel launch goes
 * through.
 *
 * The paper's flow (section V) stages host polynomials into the
 * scratchpads, runs a SPIRAL-generated B512 program on the functional
 * simulator, and reads the result back. This layer centralises that
 * launch path behind one object:
 *
 *  - a kernel cache keyed by (kind, n, moduli, codegen options), so a
 *    ring's kernels are generated and scheduled once and reused across
 *    launches;
 *  - shared numeric context caches (Montgomery modulus contexts,
 *    twiddle tables, reference NTT contexts) that are expensive to
 *    build and were previously rebuilt per launch;
 *  - a pluggable ExecutionBackend, with two implementations: the
 *    bit-exact functional simulator and the CPU reference baseline.
 *    Both consume the same KernelImage, so any kernel can be checked
 *    bit-for-bit across backends;
 *  - batched launches (launchAll) that push many independent tower
 *    launches through one backend, the software counterpart of the
 *    paper's "process different towers simultaneously" — and, with
 *    setParallelism(w > 1), actually execute them concurrently on a
 *    worker pool, with request-ordered results bit-identical to the
 *    serial path.
 */

#ifndef RPU_RPU_DEVICE_HH
#define RPU_RPU_DEVICE_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "codegen/ntt_codegen.hh"
#include "poly/polynomial.hh"
#include "rpu/thread_pool.hh"
#include "sim/functional/executor.hh"

namespace rpu {

class RpuDevice;

/**
 * Executes staged kernel launches. Backends receive the device so
 * they can use its shared numeric caches.
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    virtual const char *name() const = 0;

    /**
     * Run @p image with @p inputs bound to its input regions (in
     * region order); return the output regions' contents (in region
     * order).
     */
    virtual std::vector<std::vector<u128>>
    execute(RpuDevice &dev, const KernelImage &image,
            const std::vector<std::vector<u128>> &inputs) = 0;
};

/**
 * Bit-exact functional simulation of the B512 program — the paper's
 * verification path and this repository's default execution engine.
 */
class FunctionalSimBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "functional-sim"; }

    std::vector<std::vector<u128>>
    execute(RpuDevice &dev, const KernelImage &image,
            const std::vector<std::vector<u128>> &inputs) override;
};

/**
 * CPU reference baseline: computes the kernel's function with the
 * golden-model NTT instead of executing the program. Launch-for-launch
 * bit-identical to the functional simulator (backend equivalence is a
 * tier-1 test), and the natural A/B harness for new kernels.
 */
class CpuReferenceBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "cpu-reference"; }

    /**
     * Whether a reference handler is registered for @p kind. The
     * handler table is the single source of truth execute() consults;
     * a tier-1 test iterates every KernelKind through this, so adding
     * a kind without a reference handler fails ctest instead of
     * fataling at the first launch.
     */
    static bool handles(KernelKind kind);

    std::vector<std::vector<u128>>
    execute(RpuDevice &dev, const KernelImage &image,
            const std::vector<std::vector<u128>> &inputs) override;
};

/**
 * Launch and cache activity since construction / resetCounters().
 * Fields are individually atomic (workers bump them concurrently);
 * cross-counter consistency is only guaranteed while no launches are
 * in flight.
 *
 * The transform counters are semantic and tower-granular: every
 * launch contributes the number of forward / inverse NTT passes and
 * pointwise tower products its kernel kind actually performs (a
 * BatchedPolyMul over T towers is 2T forward + T inverse; a
 * PointwiseMulBatched is T pointwise products and no transforms).
 * transformsElided counts the tower transforms a domain-aware caller
 * skipped because an operand was already resident in the target
 * domain (see ResidueOps) — the paper's amortise-the-NTT win, made
 * observable.
 */
struct DeviceCounters
{
    /** Worker slots tracked for per-worker launch attribution:
     *  slot 0 is the calling thread (serial / inline launches),
     *  slot 1 + w is pool worker w. */
    static constexpr size_t kWorkerSlots = 65;

    std::atomic<uint64_t> launches{0}; ///< launches issued to the backend
    std::atomic<uint64_t> towerLaunches{0}; ///< tower transforms inside those
    std::atomic<uint64_t> kernelHits{0};    ///< kernel-cache hits
    std::atomic<uint64_t> kernelMisses{0};  ///< kernel-cache misses

    std::atomic<uint64_t> forwardTransforms{0}; ///< fwd NTT passes executed
    std::atomic<uint64_t> inverseTransforms{0}; ///< inv NTT passes executed
    std::atomic<uint64_t> pointwiseMuls{0}; ///< pointwise tower products
    std::atomic<uint64_t> transformsElided{0}; ///< conversions skipped

    /** Of the issued transforms, how many were key-switch plumbing
     *  (relinearisation's digit split + re-entry) rather than
     *  workload domain boundaries. A subset annotation reported by
     *  the evaluator, not a separate execution count: subtract it
     *  from transformsIssued() to get the workload-only figure, so
     *  elision ratios for user chains stay meaningful once ct x ct
     *  multiplies enter the mix. */
    std::atomic<uint64_t> keySwitchTransforms{0};

    std::atomic<uint64_t> perWorkerLaunches[kWorkerSlots] = {};

    /** Modelled RPU cycles of the launches each lane executed (the
     *  per-kernel KernelMetrics cycle counts, folded into the same
     *  per-worker ledger as the launch counts). */
    std::atomic<uint64_t> perWorkerCycles[kWorkerSlots] = {};
};

/**
 * A coherent snapshot of the device's aggregate activity — the
 * device-level roll-up of what per-kernel KernelMetrics measure one
 * program at a time, and the first step toward a multi-RPU
 * utilisation model: per-worker launch counts show how evenly a
 * batch spread across the pool, and issued-vs-elided transform
 * totals show what evaluation-domain residency saved.
 */
struct DeviceStats
{
    uint64_t launches = 0;
    uint64_t towerLaunches = 0;
    uint64_t kernelHits = 0;
    uint64_t kernelMisses = 0;

    uint64_t forwardTransforms = 0;
    uint64_t inverseTransforms = 0;
    uint64_t pointwiseMuls = 0;
    uint64_t transformsElided = 0;
    uint64_t keySwitchTransforms = 0; ///< subset of issued (see counters)

    /** [0] = inline launches on callers' threads; [1 + w] = worker w. */
    std::vector<uint64_t> perWorkerLaunches;

    /**
     * Modelled RPU cycles executed per lane (same slot layout):
     * every launch contributes its image's modelCycles — stamped at
     * generation time by the device's kernel cache — so the ledger
     * converts directly into device-time. Ad-hoc KernelImages that
     * were never cycle-simulated contribute zero; every scheme /
     * ResidueOps path launches cached kernels, so the HE pipelines
     * are fully covered.
     */
    std::vector<uint64_t> perWorkerCycles;

    uint64_t transformsIssued() const
    {
        return forwardTransforms + inverseTransforms;
    }

    /** Transforms issued for the workload's own domain boundaries —
     *  issued minus the key-switch digit-split/re-entry passes. */
    uint64_t workloadTransforms() const
    {
        return transformsIssued() - keySwitchTransforms;
    }

    /** Total modelled cycles across every lane. */
    uint64_t cycleTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t c : perWorkerCycles)
            sum += c;
        return sum;
    }

    /**
     * Device-level makespan estimate: the busiest lane's cycle
     * total. For a batch fanned across w workers this is the
     * modelled wall-clock of a w-RPU (or w-lane-group) system;
     * cycleTotal() / makespanCycles() is its utilisation-weighted
     * speedup over one RPU.
     */
    uint64_t makespanCycles() const
    {
        uint64_t worst = 0;
        for (uint64_t c : perWorkerCycles)
            worst = std::max(worst, c);
        return worst;
    }

    /** One-line summary for benches and examples. */
    std::string summary() const;

    /**
     * Windowed delta between two snapshots of the *same* device with
     * no resetCounters() in between: every counter of @p since is
     * subtracted field-wise (per-worker vectors are padded with
     * zeros when the pool widened between the snapshots). This is
     * how the serving layer and benches attribute launches and
     * transforms to one request window instead of diffing cumulative
     * counters by hand; see also RpuDevice::statsSince.
     */
    DeviceStats operator-(const DeviceStats &since) const;
};

/** One element of a batched launchAll(). */
struct LaunchRequest
{
    const KernelImage *image = nullptr;
    std::vector<std::vector<u128>> inputs;
};

/** The future every asynchronous launch path resolves to. */
using LaunchFuture = std::future<std::vector<std::vector<u128>>>;

/**
 * The still-running tower products of one operand pair, as returned
 * by mulTowersBatchAsync(). Joining (collectTowers) yields one
 * product polynomial per tower, in basis order, regardless of whether
 * the pair ran as one batched all-towers launch (one future, one
 * output region per tower) or as per-tower launches fanned across the
 * worker pool (one single-region future per tower).
 */
struct PendingTowerProducts
{
    std::vector<LaunchFuture> futures;
    size_t towers = 0;
};

/** An RPU: kernel cache + context caches + execution backend. */
class RpuDevice
{
  public:
    /** Default device: functional-simulator backend. */
    RpuDevice() : RpuDevice(std::make_unique<FunctionalSimBackend>()) {}

    explicit RpuDevice(std::unique_ptr<ExecutionBackend> backend);

    ExecutionBackend &backend() { return *backend_; }

    const DeviceCounters &counters() const { return counters_; }
    void resetCounters();

    /**
     * Aggregate activity snapshot (see DeviceStats). Consistent only
     * while no launches are in flight; perWorkerLaunches spans slot 0
     * (inline launches) plus one slot per current pool worker.
     */
    DeviceStats stats() const;

    /**
     * The device's activity since @p snapshot (an earlier stats()
     * with no resetCounters() in between): stats() - snapshot.
     * Consistent under the same conditions as stats() itself.
     */
    DeviceStats statsSince(const DeviceStats &snapshot) const
    {
        return stats() - snapshot;
    }

    /**
     * Record @p towers tower transforms that a domain-aware caller
     * skipped because the operand was already resident in the target
     * domain. Callers (ResidueOps) report elisions here so the
     * issued-vs-elided ledger lives in one place.
     */
    void noteElidedTransforms(uint64_t towers);

    /**
     * Annotate @p towers of the transforms just issued as key-switch
     * plumbing (relinearisation's digit split + re-entry). Reported
     * by RlweEvaluator::relinearise alongside the launches
     * themselves; always <= the tower transforms issued.
     */
    void noteKeySwitchTransforms(uint64_t towers);

    // -- Concurrency -----------------------------------------------------

    /**
     * Number of worker threads independent launches fan out across.
     * 1 (the default) executes every batch serially on the caller's
     * thread; w > 1 starts a worker pool and launchAll()/launchAsync()
     * (and the RNS tower paths built on them) overlap independent
     * launches. Results are request-ordered and bit-identical to the
     * serial path regardless of the setting. Capped at 64 workers
     * (the per-worker launch ledger's width) so passing
     * hardware_concurrency() from a large host is always safe. Not
     * thread-safe against in-flight launches: reconfigure only
     * between batches.
     */
    void setParallelism(unsigned workers);
    unsigned parallelism() const { return pool_ ? pool_->workers() : 1; }

    /**
     * The worker pool, or null when parallelism() == 1. Host-side
     * helpers (e.g. RlweEvaluator's per-tower fan-outs) may submit
     * independent host work to ride the same lanes between launches;
     * jobs submitted here do not touch the launch ledger.
     */
    ThreadPool *workerPool() const { return pool_.get(); }

    // -- Shared numeric context caches ---------------------------------

    /** Montgomery context for @p q, built once per device. */
    const Modulus &modulusContext(u128 q);

    /** The cache itself (shared with every functional-sim launch). */
    ModulusContextCache &modulusCache() { return modulus_cache_; }

    /** Twiddle tables / reference transforms for one (n, q) ring. */
    const TwiddleTable &twiddleTable(uint64_t n, u128 q);
    const NttContext &nttContext(uint64_t n, u128 q);

    // -- Kernel cache ----------------------------------------------------

    /**
     * The cached kernel for (kind, n, moduli, opts); generated (and
     * scheduled) on first use. Single-tower kinds take one modulus.
     * The reference stays valid for the device's lifetime.
     */
    const KernelImage &kernel(KernelKind kind, uint64_t n,
                              const std::vector<u128> &moduli,
                              const NttCodegenOptions &opts = {});

    size_t
    cachedKernels() const
    {
        std::lock_guard<std::mutex> lock(kernel_mutex_);
        return kernels_.size();
    }

    // -- Launches --------------------------------------------------------

    /**
     * Stage @p inputs into the image's input regions (in region
     * order), execute on the backend, and return the output regions'
     * contents (in region order).
     */
    std::vector<std::vector<u128>>
    launch(const KernelImage &image,
           const std::vector<std::vector<u128>> &inputs);

    /**
     * Run many independent launches through the backend in one batch
     * (e.g. all towers of an RNS multiply). Results are returned in
     * request order and are bit-identical whether the batch executes
     * serially or across the worker pool (see setParallelism).
     */
    std::vector<std::vector<std::vector<u128>>>
    launchAll(const std::vector<LaunchRequest> &batch);

    /**
     * Asynchronous launch: validates on the calling thread, then
     * executes on the worker pool (or inline when parallelism() == 1,
     * in which case the returned future is already ready).
     * @p image is captured by reference and must stay alive until the
     * future resolves — kernels from kernel() satisfy this for the
     * device's lifetime.
     */
    LaunchFuture launchAsync(const KernelImage &image,
                             std::vector<std::vector<u128>> inputs);

    /**
     * Join a batch of asynchronous launches: results in request
     * order, one entry per future (the launch's output regions).
     * Every future is joined before the first failure (if any) is
     * rethrown, so no launch is left running with dangling state.
     * The building block that lets callers overlap host-side
     * post-processing (e.g. CRT reconstruction of an early operand
     * pair) with launches that are still in flight: join one group of
     * futures while the rest keep running.
     */
    static std::vector<std::vector<std::vector<u128>>>
    whenAll(std::vector<LaunchFuture> futures);

    // -- Convenience ring operations -------------------------------------

    /** Transform @p x on the device via the cached (n, q) kernel. */
    std::vector<u128> ntt(uint64_t n, u128 q, const std::vector<u128> &x,
                          bool inverse = false,
                          const NttCodegenOptions &opts = {});

    /** Fused negacyclic product of @p a and @p b in one launch. */
    std::vector<u128> negacyclicMul(uint64_t n, u128 q,
                                    const std::vector<u128> &a,
                                    const std::vector<u128> &b,
                                    const NttCodegenOptions &opts = {});

    /**
     * All towers' negacyclic products:
     * result[t] = INTT_t(NTT_t(a[t]) .* NTT_t(b[t])) mod moduli[t].
     * Serially this is one batched kernel launch; with
     * parallelism() > 1 each tower becomes its own single-ring launch
     * and the towers overlap across the worker pool (bit-identical
     * results either way). Operands are taken by value: pass rvalues
     * to avoid the copy.
     */
    std::vector<std::vector<u128>>
    mulTowers(uint64_t n, const std::vector<u128> &moduli,
              std::vector<std::vector<u128>> a,
              std::vector<std::vector<u128>> b,
              const NttCodegenOptions &opts = {});

    /**
     * Many independent multi-tower products over one basis in a
     * single dispatch decision:
     * result[p][t] = INTT_t(NTT_t(a[p][t]) .* NTT_t(b[p][t])).
     * Serially each pair is one batched all-towers launch, pushed
     * through the backend as one batch; with parallelism() > 1 every
     * (pair, tower) product becomes its own single-ring launch and
     * they all overlap across the worker pool — keeping the dispatch
     * policy here rather than in callers. Operand tower sets are
     * consumed: taken by value and moved into the launch requests, so
     * rvalue operands are never copied.
     */
    std::vector<std::vector<std::vector<u128>>>
    mulTowersBatch(uint64_t n, const std::vector<u128> &moduli,
                   std::vector<std::vector<std::vector<u128>>> a,
                   std::vector<std::vector<std::vector<u128>>> b,
                   const NttCodegenOptions &opts = {});

    /**
     * Asynchronous mulTowersBatch: same operands, same dispatch
     * policy (serial devices stage one batched all-towers launch per
     * pair, pooled devices one single-ring launch per (pair, tower)),
     * but returns per-pair pending futures instead of joining. BFV
     * and CKKS use this to overlap the CRT reconstruction / residue
     * assembly of early pairs with launches that are still running.
     * Join each pair with collectTowers, in any order.
     */
    std::vector<PendingTowerProducts>
    mulTowersBatchAsync(uint64_t n, const std::vector<u128> &moduli,
                        std::vector<std::vector<std::vector<u128>>> a,
                        std::vector<std::vector<std::vector<u128>>> b,
                        const NttCodegenOptions &opts = {});

    /** Join one pending pair into its tower products (basis order). */
    static std::vector<std::vector<u128>>
    collectTowers(PendingTowerProducts pending);

    /**
     * Pointwise (evaluation-domain) product a .* b in one launch —
     * the whole homomorphic multiply once operands are NTT-resident.
     */
    std::vector<u128> pointwiseMul(uint64_t n, u128 q,
                                   const std::vector<u128> &a,
                                   const std::vector<u128> &b,
                                   const NttCodegenOptions &opts = {});

    /**
     * Forward or inverse NTT of every tower of several residue
     * polynomials in one dispatch decision — the launch stream a
     * domain-resident ciphertext issues at a Coeff<->Eval boundary.
     * Serially each set is one batched all-towers launch; with
     * parallelism() > 1 every (set, tower) transform becomes its own
     * single-ring launch across the worker pool (bit-identical either
     * way). Join each set with collectTowers, in any order.
     */
    std::vector<PendingTowerProducts>
    transformTowersBatchAsync(uint64_t n, const std::vector<u128> &moduli,
                              std::vector<std::vector<std::vector<u128>>> xs,
                              bool inverse,
                              const NttCodegenOptions &opts = {});

    /**
     * Pointwise tower products of many operand pairs over one basis:
     * result[p][t] = a[p][t] .* b[p][t] mod moduli[t], with the same
     * dispatch policy split as mulTowersBatchAsync (serial: one
     * PointwiseMulBatched launch per pair; pooled: one PointwiseMul
     * launch per (pair, tower)). This is mulTowersBatchAsync minus
     * every butterfly stage — what the ciphertext hot loop launches
     * when both operands are evaluation-domain resident.
     */
    std::vector<PendingTowerProducts>
    pointwiseTowersBatchAsync(uint64_t n, const std::vector<u128> &moduli,
                              std::vector<std::vector<std::vector<u128>>> a,
                              std::vector<std::vector<std::vector<u128>>> b,
                              const NttCodegenOptions &opts = {});

    // -- Cross-item coalescing -------------------------------------------
    //
    // The serving layer's batching hooks: many *independent* items —
    // typically requests from different tenants whose parameter sets
    // share the ring dimension and (a prefix of) the same modulus
    // chain — merge into batched kernels over the concatenated
    // (tiled) moduli list, split only where the batched-kernel
    // register budget forces it: ceil(towers / kMaxBatchedTowers)
    // launches per call, however many items were merged. The batched
    // kernel kinds already compute each region's ring independently,
    // so the result is bit-identical to launching the items
    // separately (a tier-1 test pins this); what changes is the
    // ledger: a handful of launches where the uncoalesced path pays
    // at least one per item, while the semantic tower-granular
    // transform/pointwise counts stay exactly equal. Items may have
    // different tower counts (tenants at different levels); results
    // come back per item, in item order.

    /** Towers one batched kernel can carry — the per-tower modulus /
     *  scalar / data-pointer register budget in the codegen. */
    static constexpr size_t kMaxBatchedTowers = 16;

    /**
     * Forward or inverse NTT of every tower of every item:
     * result[i][t] = NTT_{moduli[i][t]}(xs[i][t]) (or the inverse).
     * BatchedForward/InverseNtt launches over the tiled moduli,
     * regardless of parallelism — coalescing trades the pool fan-out
     * for launch-count reduction by design.
     */
    std::vector<std::vector<std::vector<u128>>>
    transformCoalesced(uint64_t n,
                       const std::vector<std::vector<u128>> &moduli,
                       std::vector<std::vector<std::vector<u128>>> xs,
                       bool inverse, const NttCodegenOptions &opts = {});

    /**
     * Pointwise tower products of every item: result[i][t] =
     * a[i][t] .* b[i][t] mod moduli[i][t], as PointwiseMulBatched
     * launches over the tiled moduli.
     */
    std::vector<std::vector<std::vector<u128>>>
    pointwiseCoalesced(uint64_t n,
                       const std::vector<std::vector<u128>> &moduli,
                       std::vector<std::vector<std::vector<u128>>> a,
                       std::vector<std::vector<std::vector<u128>>> b,
                       const NttCodegenOptions &opts = {});

  private:
    /**
     * Shared body of the two pair-product dispatch families
     * (mulTowersBatchAsync / pointwiseTowersBatchAsync): the policy
     * split — one @p batched all-towers launch per pair serially,
     * one @p single launch per (pair, tower) across the pool — lives
     * here exactly once.
     */
    std::vector<PendingTowerProducts>
    pairProductsBatchAsync(KernelKind single, KernelKind batched,
                           uint64_t n, const std::vector<u128> &moduli,
                           std::vector<std::vector<std::vector<u128>>> a,
                           std::vector<std::vector<std::vector<u128>>> b,
                           const NttCodegenOptions &opts);

    std::string kernelKey(KernelKind kind, uint64_t n,
                          const std::vector<u128> &moduli,
                          const NttCodegenOptions &opts) const;

    /** Fatal unless @p inputs matches the image's input regions. */
    void validateLaunch(const KernelImage &image,
                        const std::vector<std::vector<u128>> &inputs)
        const;

    /** Validated launch body: count, then execute on the backend. */
    std::vector<std::vector<u128>>
    executeValidated(const KernelImage &image,
                     const std::vector<std::vector<u128>> &inputs);

    /** twiddleTable() body; caller holds context_mutex_. */
    const TwiddleTable &twiddleTableLocked(uint64_t n, u128 q);

    std::unique_ptr<ExecutionBackend> backend_;

    DeviceCounters counters_;

    // Context/kernel caches and their locks. Kernel generation runs
    // outside kernel_mutex_ (the generating_ set + condvar keep it
    // single-flight per key), so the only nesting left is that
    // generation takes context_mutex_ for twiddle tables;
    // modulus_cache_ synchronises itself and sits below everything.
    // All four caches are append-only with node-stable storage, so
    // returned references never need the lock.
    ModulusContextCache modulus_cache_;
    mutable std::mutex context_mutex_;
    std::map<std::pair<uint64_t, u128>, std::unique_ptr<TwiddleTable>>
        twiddle_cache_;
    std::map<std::pair<uint64_t, u128>, std::unique_ptr<NttContext>>
        ntt_cache_;
    mutable std::mutex kernel_mutex_;
    std::map<std::string, std::unique_ptr<KernelImage>> kernels_;
    /// Keys whose kernels are being generated right now. Guarded by
    /// kernel_mutex_; kernel_cv_ signals every insertion into
    /// kernels_ so same-key waiters can re-check the cache.
    std::set<std::string> generating_;
    std::condition_variable kernel_cv_;

    // Last member on purpose: destroyed first, so the pool drains and
    // joins any still-queued async launches while the caches, mutexes,
    // and backend they use are all still alive.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace rpu

#endif // RPU_RPU_DEVICE_HH
