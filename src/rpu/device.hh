/**
 * @file
 * RpuDevice: the host-side device layer every kernel launch goes
 * through.
 *
 * The paper's flow (section V) stages host polynomials into the
 * scratchpads, runs a SPIRAL-generated B512 program on the functional
 * simulator, and reads the result back. This layer centralises that
 * launch path behind one object:
 *
 *  - a kernel cache keyed by (kind, n, moduli, codegen options), so a
 *    ring's kernels are generated and scheduled once and reused across
 *    launches;
 *  - shared numeric context caches (Montgomery modulus contexts,
 *    twiddle tables, reference NTT contexts) that are expensive to
 *    build and were previously rebuilt per launch;
 *  - a pluggable ExecutionBackend, with two implementations: the
 *    bit-exact functional simulator and the CPU reference baseline.
 *    Both consume the same KernelImage, so any kernel can be checked
 *    bit-for-bit across backends;
 *  - batched launches (launchAll) that push many independent tower
 *    launches through one backend, the software counterpart of the
 *    paper's "process different towers simultaneously" — and, with
 *    setParallelism(w > 1), actually execute them concurrently on a
 *    worker pool, with request-ordered results bit-identical to the
 *    serial path.
 */

#ifndef RPU_RPU_DEVICE_HH
#define RPU_RPU_DEVICE_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "codegen/ntt_codegen.hh"
#include "model/contention.hh"
#include "poly/polynomial.hh"
#include "rpu/thread_pool.hh"
#include "sim/functional/executor.hh"

namespace rpu {

class RpuDevice;

/**
 * The numeric and kernel caches a device launches against, extracted
 * so an N-device topology can share one bundle: Montgomery modulus
 * contexts, twiddle tables, reference NTT contexts, and the generated
 * kernel images with their single-flight generation state. A kernel
 * generated (and cycle-simulated) on one device is a cache hit on
 * every other device of the same topology — generate once, launch
 * anywhere — so prewarm cost and codegen latency do not scale with
 * device count.
 *
 * Locking is exactly what RpuDevice used when it owned these members
 * privately: kernel generation runs outside kernelMutex (the
 * generating set + condvar keep it single-flight per key), generation
 * takes contextMutex for twiddle tables, and the modulus cache
 * synchronises itself below everything. All four caches are
 * append-only with node-stable storage, so returned references never
 * need the lock and stay valid for the bundle's lifetime.
 */
struct DeviceCaches
{
    ModulusContextCache modulus;
    mutable std::mutex contextMutex;
    std::map<std::pair<uint64_t, u128>, std::unique_ptr<TwiddleTable>>
        twiddle;
    std::map<std::pair<uint64_t, u128>, std::unique_ptr<NttContext>>
        ntt;
    mutable std::mutex kernelMutex;
    std::map<std::string, std::unique_ptr<KernelImage>> kernels;
    /// Keys whose kernels are being generated right now. Guarded by
    /// kernelMutex; kernelCv signals every insertion into kernels so
    /// same-key waiters (on any device) can re-check the cache.
    std::set<std::string> generating;
    std::condition_variable kernelCv;
};

/**
 * Executes staged kernel launches. Backends receive the device so
 * they can use its shared numeric caches.
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    virtual const char *name() const = 0;

    /**
     * Run @p image with @p inputs bound to its input regions (in
     * region order); return the output regions' contents (in region
     * order).
     */
    virtual std::vector<std::vector<u128>>
    execute(RpuDevice &dev, const KernelImage &image,
            const std::vector<std::vector<u128>> &inputs) = 0;
};

/**
 * Bit-exact functional simulation of the B512 program — the paper's
 * verification path and this repository's default execution engine.
 */
class FunctionalSimBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "functional-sim"; }

    std::vector<std::vector<u128>>
    execute(RpuDevice &dev, const KernelImage &image,
            const std::vector<std::vector<u128>> &inputs) override;
};

/**
 * CPU reference baseline: computes the kernel's function with the
 * golden-model NTT instead of executing the program. Launch-for-launch
 * bit-identical to the functional simulator (backend equivalence is a
 * tier-1 test), and the natural A/B harness for new kernels.
 */
class CpuReferenceBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "cpu-reference"; }

    /**
     * Whether a reference handler is registered for @p kind. The
     * handler table is the single source of truth execute() consults;
     * a tier-1 test iterates every KernelKind through this, so adding
     * a kind without a reference handler fails ctest instead of
     * fataling at the first launch.
     */
    static bool handles(KernelKind kind);

    std::vector<std::vector<u128>>
    execute(RpuDevice &dev, const KernelImage &image,
            const std::vector<std::vector<u128>> &inputs) override;
};

/**
 * Launch and cache activity since construction / resetCounters().
 * Fields are individually atomic (workers bump them concurrently);
 * cross-counter consistency is only guaranteed while no launches are
 * in flight.
 *
 * The transform counters are semantic and tower-granular: every
 * launch contributes the number of forward / inverse NTT passes and
 * pointwise tower products its kernel kind actually performs (a
 * BatchedPolyMul over T towers is 2T forward + T inverse; a
 * PointwiseMulBatched is T pointwise products and no transforms).
 * transformsElided counts the tower transforms a domain-aware caller
 * skipped because an operand was already resident in the target
 * domain (see ResidueOps) — the paper's amortise-the-NTT win, made
 * observable.
 */
struct DeviceCounters
{
    /** Worker slots tracked for per-worker launch attribution:
     *  slot 0 is the calling thread (serial / inline launches),
     *  slot 1 + w is pool worker w. */
    static constexpr size_t kWorkerSlots = 65;

    std::atomic<uint64_t> launches{0}; ///< launches issued to the backend
    std::atomic<uint64_t> towerLaunches{0}; ///< tower transforms inside those
    std::atomic<uint64_t> kernelHits{0};    ///< kernel-cache hits
    std::atomic<uint64_t> kernelMisses{0};  ///< kernel-cache misses

    std::atomic<uint64_t> forwardTransforms{0}; ///< fwd NTT passes executed
    std::atomic<uint64_t> inverseTransforms{0}; ///< inv NTT passes executed
    std::atomic<uint64_t> pointwiseMuls{0}; ///< pointwise tower products
    std::atomic<uint64_t> transformsElided{0}; ///< conversions skipped

    /** Of the issued transforms, how many were key-switch plumbing
     *  (relinearisation's digit split + re-entry) rather than
     *  workload domain boundaries. A subset annotation reported by
     *  the evaluator, not a separate execution count: subtract it
     *  from transformsIssued() to get the workload-only figure, so
     *  elision ratios for user chains stay meaningful once ct x ct
     *  multiplies enter the mix. */
    std::atomic<uint64_t> keySwitchTransforms{0};

    std::atomic<uint64_t> perWorkerLaunches[kWorkerSlots] = {};

    /** Modelled RPU cycles of the launches each lane executed (the
     *  per-kernel KernelMetrics cycle counts, folded into the same
     *  per-worker ledger as the launch counts). */
    std::atomic<uint64_t> perWorkerCycles[kWorkerSlots] = {};

    /** HBM staging/drain cycles of each lane's launches at full
     *  bandwidth (input + output region words through the contention
     *  model). Fully overlapped behind compute while a launch has the
     *  interface to itself — recorded so the overlap is observable,
     *  not folded into the cycle ledger. */
    std::atomic<uint64_t> perWorkerStagingCycles[kWorkerSlots] = {};

    /** Contended busy cycles per lane: each launch's modelled cost
     *  plus the HBM-contention term for the lanes concurrently
     *  occupied with it (HbmContentionModel::busyCycles). Equal to
     *  perWorkerCycles while the device never ran >1 lane at once. */
    std::atomic<uint64_t> perWorkerBusyCycles[kWorkerSlots] = {};

    /** Words staged + drained across all launches. */
    std::atomic<uint64_t> stagedWords{0};
    /** Launches whose modelled cost carried a contention term. */
    std::atomic<uint64_t> contendedLaunches{0};
    /** High-water mark of concurrently occupied lanes. */
    std::atomic<uint64_t> maxOccupiedLanes{0};
};

/**
 * A coherent snapshot of the device's aggregate activity — the
 * device-level roll-up of what per-kernel KernelMetrics measure one
 * program at a time, and the first step toward a multi-RPU
 * utilisation model: per-worker launch counts show how evenly a
 * batch spread across the pool, and issued-vs-elided transform
 * totals show what evaluation-domain residency saved.
 */
struct DeviceStats
{
    uint64_t launches = 0;
    uint64_t towerLaunches = 0;
    uint64_t kernelHits = 0;
    uint64_t kernelMisses = 0;

    uint64_t forwardTransforms = 0;
    uint64_t inverseTransforms = 0;
    uint64_t pointwiseMuls = 0;
    uint64_t transformsElided = 0;
    uint64_t keySwitchTransforms = 0; ///< subset of issued (see counters)

    /** [0] = inline launches on callers' threads; [1 + w] = worker w. */
    std::vector<uint64_t> perWorkerLaunches;

    /**
     * Modelled RPU cycles executed per lane (same slot layout):
     * every launch contributes its image's modelCycles — stamped at
     * generation time by the device's kernel cache — so the ledger
     * converts directly into device-time. Ad-hoc KernelImages that
     * were never cycle-simulated contribute zero; every scheme /
     * ResidueOps path launches cached kernels, so the HE pipelines
     * are fully covered.
     */
    std::vector<uint64_t> perWorkerCycles;

    /** Staging/drain cycles per lane (same slot layout); overlapped
     *  behind compute at single-lane occupancy. */
    std::vector<uint64_t> perWorkerStagingCycles;

    /** Contended busy cycles per lane (same slot layout): modelled
     *  cost plus the HBM-contention term. See DeviceCounters. */
    std::vector<uint64_t> perWorkerBusyCycles;

    uint64_t stagedWords = 0;
    uint64_t contendedLaunches = 0;
    /** High-water mark, not a windowed delta: operator- carries the
     *  later snapshot's value through unchanged. */
    uint64_t maxOccupiedLanes = 0;

    uint64_t transformsIssued() const
    {
        return forwardTransforms + inverseTransforms;
    }

    /** Transforms issued for the workload's own domain boundaries —
     *  issued minus the key-switch digit-split/re-entry passes. */
    uint64_t workloadTransforms() const
    {
        return transformsIssued() - keySwitchTransforms;
    }

    /** Total modelled cycles across every lane. */
    uint64_t cycleTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t c : perWorkerCycles)
            sum += c;
        return sum;
    }

    /**
     * Device-level makespan estimate: the busiest lane's cycle
     * total. For a batch fanned across w workers this is the
     * modelled wall-clock of a w-RPU (or w-lane-group) system;
     * cycleTotal() / makespanCycles() is its utilisation-weighted
     * speedup over one RPU.
     */
    uint64_t makespanCycles() const
    {
        uint64_t worst = 0;
        for (uint64_t c : perWorkerCycles)
            worst = std::max(worst, c);
        return worst;
    }

    /** Total staging/drain cycles across every lane. */
    uint64_t stagingCycleTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t c : perWorkerStagingCycles)
            sum += c;
        return sum;
    }

    /** Total contended busy cycles across every lane. */
    uint64_t busyCycleTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t c : perWorkerBusyCycles)
            sum += c;
        return sum;
    }

    /**
     * Contention-aware makespan: the busiest lane's contended busy
     * cycles. Equals makespanCycles() exactly while the device never
     * ran more than one lane at once (full staging/drain overlap);
     * strictly exceeds it as soon as concurrent lanes shared the HBM
     * interface — the multi-RPU capacity model's per-device term.
     */
    uint64_t busyMakespanCycles() const
    {
        uint64_t worst = 0;
        for (uint64_t c : perWorkerBusyCycles)
            worst = std::max(worst, c);
        return worst;
    }

    /** One-line summary for benches and examples. */
    std::string summary() const;

    /**
     * Windowed delta between two snapshots of the *same* device with
     * no resetCounters() in between: every counter of @p since is
     * subtracted field-wise (per-worker vectors are padded with
     * zeros when the pool widened between the snapshots). This is
     * how the serving layer and benches attribute launches and
     * transforms to one request window instead of diffing cumulative
     * counters by hand; see also RpuDevice::statsSince.
     */
    DeviceStats operator-(const DeviceStats &since) const;

    /**
     * Field-wise sum — how a topology rolls N per-device windows into
     * one ledger. Per-worker vectors are padded with zeros to the
     * wider operand (devices may run different pool widths), so slot
     * i accumulates every device's slot-i activity and no slot is
     * ever dropped or misaligned; maxOccupiedLanes takes the max.
     * Note the summed per-worker vectors merge *different devices'*
     * lanes, so makespan readings on a summed ledger are meaningless
     * — use RpuTopology::makespanCycles (max over per-device
     * makespans) for the topology-wide figure.
     */
    DeviceStats &operator+=(const DeviceStats &other);
    DeviceStats operator+(const DeviceStats &other) const;
};

/** One element of a batched launchAll(). */
struct LaunchRequest
{
    const KernelImage *image = nullptr;
    std::vector<std::vector<u128>> inputs;
};

/** The future every asynchronous launch path resolves to. */
using LaunchFuture = std::future<std::vector<std::vector<u128>>>;

/**
 * The still-running tower products of one operand pair, as returned
 * by mulTowersBatchAsync(). Joining (collectTowers) yields one
 * product polynomial per tower, in basis order, regardless of whether
 * the pair ran as one batched all-towers launch (one future, one
 * output region per tower) or as per-tower launches fanned across the
 * worker pool (one single-region future per tower).
 */
struct PendingTowerProducts
{
    std::vector<LaunchFuture> futures;
    size_t towers = 0;
};

/** An RPU: kernel cache + context caches + execution backend. */
class RpuDevice
{
  public:
    /** Default device: functional-simulator backend, private caches. */
    RpuDevice() : RpuDevice(std::make_unique<FunctionalSimBackend>()) {}

    explicit RpuDevice(std::unique_ptr<ExecutionBackend> backend)
        : RpuDevice(std::move(backend),
                    std::make_shared<DeviceCaches>())
    {
    }

    /**
     * A device over an existing cache bundle — how RpuTopology builds
     * N devices that generate each kernel and numeric context once
     * between them. @p caches must outlive the device (shared
     * ownership guarantees it).
     */
    RpuDevice(std::unique_ptr<ExecutionBackend> backend,
              std::shared_ptr<DeviceCaches> caches);

    ExecutionBackend &backend() { return *backend_; }

    /** The cache bundle this device launches against. */
    const std::shared_ptr<DeviceCaches> &caches() const
    {
        return caches_;
    }

    /**
     * The HBM-contention model folded into the busy-cycle ledger.
     * Reconfigure only between batches (reads race with in-flight
     * launches otherwise).
     */
    const HbmContentionModel &contentionModel() const
    {
        return contention_;
    }
    void setContentionModel(const HbmContentionModel &m)
    {
        contention_ = m;
    }

    const DeviceCounters &counters() const { return counters_; }
    void resetCounters();

    /**
     * Aggregate activity snapshot (see DeviceStats). Consistent only
     * while no launches are in flight; perWorkerLaunches spans slot 0
     * (inline launches) plus one slot per current pool worker.
     */
    DeviceStats stats() const;

    /**
     * The device's activity since @p snapshot (an earlier stats()
     * with no resetCounters() in between): stats() - snapshot.
     * Consistent under the same conditions as stats() itself.
     */
    DeviceStats statsSince(const DeviceStats &snapshot) const
    {
        return stats() - snapshot;
    }

    /**
     * Record @p towers tower transforms that a domain-aware caller
     * skipped because the operand was already resident in the target
     * domain. Callers (ResidueOps) report elisions here so the
     * issued-vs-elided ledger lives in one place.
     */
    void noteElidedTransforms(uint64_t towers);

    /**
     * Annotate @p towers of the transforms just issued as key-switch
     * plumbing (relinearisation's digit split + re-entry). Reported
     * by RlweEvaluator::relinearise alongside the launches
     * themselves; always <= the tower transforms issued.
     */
    void noteKeySwitchTransforms(uint64_t towers);

    // -- Concurrency -----------------------------------------------------

    /**
     * Number of worker threads independent launches fan out across.
     * 1 (the default) executes every batch serially on the caller's
     * thread; w > 1 starts a worker pool and launchAll()/launchAsync()
     * (and the RNS tower paths built on them) overlap independent
     * launches. Results are request-ordered and bit-identical to the
     * serial path regardless of the setting. Capped at 64 workers
     * (the per-worker launch ledger's width) so passing
     * hardware_concurrency() from a large host is always safe. Not
     * thread-safe against in-flight launches: reconfigure only
     * between batches.
     */
    void setParallelism(unsigned workers);
    unsigned parallelism() const { return pool_ ? pool_->workers() : 1; }

    /**
     * The worker pool, or null when parallelism() == 1. Host-side
     * helpers (e.g. RlweEvaluator's per-tower fan-outs) may submit
     * independent host work to ride the same lanes between launches;
     * jobs submitted here do not touch the launch ledger.
     */
    ThreadPool *workerPool() const { return pool_.get(); }

    // -- Shared numeric context caches ---------------------------------

    /** Montgomery context for @p q, built once per cache bundle. */
    const Modulus &modulusContext(u128 q);

    /** The cache itself (shared with every functional-sim launch). */
    ModulusContextCache &modulusCache() { return caches_->modulus; }

    /** Twiddle tables / reference transforms for one (n, q) ring. */
    const TwiddleTable &twiddleTable(uint64_t n, u128 q);
    const NttContext &nttContext(uint64_t n, u128 q);

    // -- Kernel cache ----------------------------------------------------

    /**
     * The cached kernel for (kind, n, moduli, opts); generated (and
     * scheduled) on first use. Single-tower kinds take one modulus.
     * The reference stays valid for the device's lifetime.
     */
    const KernelImage &kernel(KernelKind kind, uint64_t n,
                              const std::vector<u128> &moduli,
                              const NttCodegenOptions &opts = {});

    size_t
    cachedKernels() const
    {
        std::lock_guard<std::mutex> lock(caches_->kernelMutex);
        return caches_->kernels.size();
    }

    // -- Launches --------------------------------------------------------

    /**
     * Stage @p inputs into the image's input regions (in region
     * order), execute on the backend, and return the output regions'
     * contents (in region order).
     */
    std::vector<std::vector<u128>>
    launch(const KernelImage &image,
           const std::vector<std::vector<u128>> &inputs);

    /**
     * Run many independent launches through the backend in one batch
     * (e.g. all towers of an RNS multiply). Results are returned in
     * request order and are bit-identical whether the batch executes
     * serially or across the worker pool (see setParallelism).
     */
    std::vector<std::vector<std::vector<u128>>>
    launchAll(const std::vector<LaunchRequest> &batch);

    /**
     * Asynchronous launch: validates on the calling thread, then
     * executes on the worker pool (or inline when parallelism() == 1,
     * in which case the returned future is already ready).
     * @p image is captured by reference and must stay alive until the
     * future resolves — kernels from kernel() satisfy this for the
     * device's lifetime.
     *
     * @p structuralLanes is the dispatch-structure occupancy hint for
     * the contention ledger: how many lanes the *call site* knows it
     * is filling concurrently (a batch of m independent launches over
     * a w-worker pool occupies min(w, m) lanes at steady state). The
     * ledger uses max(hint, observed in-flight launches), so the
     * modelled contention is deterministic for structured fan-outs
     * even when OS scheduling would serialise the real threads.
     */
    LaunchFuture launchAsync(const KernelImage &image,
                             std::vector<std::vector<u128>> inputs,
                             unsigned structuralLanes = 1);

    /**
     * Join a batch of asynchronous launches: results in request
     * order, one entry per future (the launch's output regions).
     * Every future is joined before the first failure (if any) is
     * rethrown, so no launch is left running with dangling state.
     * The building block that lets callers overlap host-side
     * post-processing (e.g. CRT reconstruction of an early operand
     * pair) with launches that are still in flight: join one group of
     * futures while the rest keep running.
     */
    static std::vector<std::vector<std::vector<u128>>>
    whenAll(std::vector<LaunchFuture> futures);

    // -- Convenience ring operations -------------------------------------

    /** Transform @p x on the device via the cached (n, q) kernel. */
    std::vector<u128> ntt(uint64_t n, u128 q, const std::vector<u128> &x,
                          bool inverse = false,
                          const NttCodegenOptions &opts = {});

    /** Fused negacyclic product of @p a and @p b in one launch. */
    std::vector<u128> negacyclicMul(uint64_t n, u128 q,
                                    const std::vector<u128> &a,
                                    const std::vector<u128> &b,
                                    const NttCodegenOptions &opts = {});

    /**
     * All towers' negacyclic products:
     * result[t] = INTT_t(NTT_t(a[t]) .* NTT_t(b[t])) mod moduli[t].
     * Serially this is one batched kernel launch; with
     * parallelism() > 1 each tower becomes its own single-ring launch
     * and the towers overlap across the worker pool (bit-identical
     * results either way). Operands are taken by value: pass rvalues
     * to avoid the copy.
     */
    std::vector<std::vector<u128>>
    mulTowers(uint64_t n, const std::vector<u128> &moduli,
              std::vector<std::vector<u128>> a,
              std::vector<std::vector<u128>> b,
              const NttCodegenOptions &opts = {});

    /**
     * Many independent multi-tower products over one basis in a
     * single dispatch decision:
     * result[p][t] = INTT_t(NTT_t(a[p][t]) .* NTT_t(b[p][t])).
     * Serially each pair is one batched all-towers launch, pushed
     * through the backend as one batch; with parallelism() > 1 every
     * (pair, tower) product becomes its own single-ring launch and
     * they all overlap across the worker pool — keeping the dispatch
     * policy here rather than in callers. Operand tower sets are
     * consumed: taken by value and moved into the launch requests, so
     * rvalue operands are never copied.
     */
    std::vector<std::vector<std::vector<u128>>>
    mulTowersBatch(uint64_t n, const std::vector<u128> &moduli,
                   std::vector<std::vector<std::vector<u128>>> a,
                   std::vector<std::vector<std::vector<u128>>> b,
                   const NttCodegenOptions &opts = {});

    /**
     * Asynchronous mulTowersBatch: same operands, same dispatch
     * policy (serial devices stage one batched all-towers launch per
     * pair, pooled devices one single-ring launch per (pair, tower)),
     * but returns per-pair pending futures instead of joining. BFV
     * and CKKS use this to overlap the CRT reconstruction / residue
     * assembly of early pairs with launches that are still running.
     * Join each pair with collectTowers, in any order.
     */
    std::vector<PendingTowerProducts>
    mulTowersBatchAsync(uint64_t n, const std::vector<u128> &moduli,
                        std::vector<std::vector<std::vector<u128>>> a,
                        std::vector<std::vector<std::vector<u128>>> b,
                        const NttCodegenOptions &opts = {});

    /** Join one pending pair into its tower products (basis order). */
    static std::vector<std::vector<u128>>
    collectTowers(PendingTowerProducts pending);

    /**
     * Pointwise (evaluation-domain) product a .* b in one launch —
     * the whole homomorphic multiply once operands are NTT-resident.
     */
    std::vector<u128> pointwiseMul(uint64_t n, u128 q,
                                   const std::vector<u128> &a,
                                   const std::vector<u128> &b,
                                   const NttCodegenOptions &opts = {});

    /**
     * Forward or inverse NTT of every tower of several residue
     * polynomials in one dispatch decision — the launch stream a
     * domain-resident ciphertext issues at a Coeff<->Eval boundary.
     * Serially each set is one batched all-towers launch; with
     * parallelism() > 1 every (set, tower) transform becomes its own
     * single-ring launch across the worker pool (bit-identical either
     * way). Join each set with collectTowers, in any order.
     */
    std::vector<PendingTowerProducts>
    transformTowersBatchAsync(uint64_t n, const std::vector<u128> &moduli,
                              std::vector<std::vector<std::vector<u128>>> xs,
                              bool inverse,
                              const NttCodegenOptions &opts = {});

    /**
     * Pointwise tower products of many operand pairs over one basis:
     * result[p][t] = a[p][t] .* b[p][t] mod moduli[t], with the same
     * dispatch policy split as mulTowersBatchAsync (serial: one
     * PointwiseMulBatched launch per pair; pooled: one PointwiseMul
     * launch per (pair, tower)). This is mulTowersBatchAsync minus
     * every butterfly stage — what the ciphertext hot loop launches
     * when both operands are evaluation-domain resident.
     */
    std::vector<PendingTowerProducts>
    pointwiseTowersBatchAsync(uint64_t n, const std::vector<u128> &moduli,
                              std::vector<std::vector<std::vector<u128>>> a,
                              std::vector<std::vector<std::vector<u128>>> b,
                              const NttCodegenOptions &opts = {});

    // -- Cross-item coalescing -------------------------------------------
    //
    // The serving layer's batching hooks: many *independent* items —
    // typically requests from different tenants whose parameter sets
    // share the ring dimension and (a prefix of) the same modulus
    // chain — merge into batched kernels over the concatenated
    // (tiled) moduli list, split only where the batched-kernel
    // register budget forces it: ceil(towers / kMaxBatchedTowers)
    // launches per call, however many items were merged. The batched
    // kernel kinds already compute each region's ring independently,
    // so the result is bit-identical to launching the items
    // separately (a tier-1 test pins this); what changes is the
    // ledger: a handful of launches where the uncoalesced path pays
    // at least one per item, while the semantic tower-granular
    // transform/pointwise counts stay exactly equal. Items may have
    // different tower counts (tenants at different levels); results
    // come back per item, in item order.

    /** Towers one batched kernel can carry — the per-tower modulus /
     *  scalar / data-pointer register budget in the codegen. */
    static constexpr size_t kMaxBatchedTowers = 16;

    /**
     * Forward or inverse NTT of every tower of every item:
     * result[i][t] = NTT_{moduli[i][t]}(xs[i][t]) (or the inverse).
     * BatchedForward/InverseNtt launches over the tiled moduli,
     * regardless of parallelism — coalescing trades the pool fan-out
     * for launch-count reduction by design.
     */
    std::vector<std::vector<std::vector<u128>>>
    transformCoalesced(uint64_t n,
                       const std::vector<std::vector<u128>> &moduli,
                       std::vector<std::vector<std::vector<u128>>> xs,
                       bool inverse, const NttCodegenOptions &opts = {});

    /**
     * Pointwise tower products of every item: result[i][t] =
     * a[i][t] .* b[i][t] mod moduli[i][t], as PointwiseMulBatched
     * launches over the tiled moduli.
     */
    std::vector<std::vector<std::vector<u128>>>
    pointwiseCoalesced(uint64_t n,
                       const std::vector<std::vector<u128>> &moduli,
                       std::vector<std::vector<std::vector<u128>>> a,
                       std::vector<std::vector<std::vector<u128>>> b,
                       const NttCodegenOptions &opts = {});

  private:
    /**
     * Shared body of the two pair-product dispatch families
     * (mulTowersBatchAsync / pointwiseTowersBatchAsync): the policy
     * split — one @p batched all-towers launch per pair serially,
     * one @p single launch per (pair, tower) across the pool — lives
     * here exactly once.
     */
    std::vector<PendingTowerProducts>
    pairProductsBatchAsync(KernelKind single, KernelKind batched,
                           uint64_t n, const std::vector<u128> &moduli,
                           std::vector<std::vector<std::vector<u128>>> a,
                           std::vector<std::vector<std::vector<u128>>> b,
                           const NttCodegenOptions &opts);

    std::string kernelKey(KernelKind kind, uint64_t n,
                          const std::vector<u128> &moduli,
                          const NttCodegenOptions &opts) const;

    /** Fatal unless @p inputs matches the image's input regions. */
    void validateLaunch(const KernelImage &image,
                        const std::vector<std::vector<u128>> &inputs)
        const;

    /** Validated launch body: count (with the contention term for
     *  max(@p structuralLanes, observed in-flight launches) occupied
     *  lanes), then execute on the backend. */
    std::vector<std::vector<u128>>
    executeValidated(const KernelImage &image,
                     const std::vector<std::vector<u128>> &inputs,
                     unsigned structuralLanes = 1);

    /** twiddleTable() body; caller holds caches_->contextMutex. */
    const TwiddleTable &twiddleTableLocked(uint64_t n, u128 q);

    std::unique_ptr<ExecutionBackend> backend_;

    DeviceCounters counters_;

    /** Launches currently inside executeValidated — the observed half
     *  of the contention ledger's lane-occupancy count. */
    std::atomic<uint32_t> active_launches_{0};

    HbmContentionModel contention_;

    /** Shared (or private) cache bundle; see DeviceCaches for the
     *  locking story that used to live on these members directly. */
    std::shared_ptr<DeviceCaches> caches_;

    // Last member on purpose: destroyed first, so the pool drains and
    // joins any still-queued async launches while the caches, mutexes,
    // and backend they use are all still alive.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace rpu

#endif // RPU_RPU_DEVICE_HH
