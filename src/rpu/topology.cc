#include "rpu/topology.hh"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace rpu {

RpuTopology::RpuTopology(size_t devices, unsigned parallelism)
{
    rpu_assert(devices >= 1, "topology needs at least one device");
    auto caches = std::make_shared<DeviceCaches>();
    devices_.reserve(devices);
    for (size_t i = 0; i < devices; ++i) {
        auto dev = std::make_shared<RpuDevice>(
            std::make_unique<FunctionalSimBackend>(), caches);
        if (parallelism > 1)
            dev->setParallelism(parallelism);
        devices_.push_back(std::move(dev));
    }
}

std::shared_ptr<RpuTopology>
RpuTopology::adopt(std::vector<std::shared_ptr<RpuDevice>> devices)
{
    rpu_assert(!devices.empty(), "topology needs at least one device");
    for (const auto &d : devices)
        rpu_assert(d != nullptr, "topology device must not be null");
    auto topo = std::shared_ptr<RpuTopology>(new RpuTopology());
    topo->devices_ = std::move(devices);
    return topo;
}

RpuTopology::Snapshot
RpuTopology::snapshot() const
{
    Snapshot snap;
    snap.reserve(devices_.size());
    for (const auto &d : devices_)
        snap.push_back(d->stats());
    return snap;
}

RpuTopology::Snapshot
RpuTopology::since(const Snapshot &before) const
{
    rpu_assert(before.size() == devices_.size(),
               "snapshot spans %zu devices, topology has %zu",
               before.size(), devices_.size());
    Snapshot delta;
    delta.reserve(devices_.size());
    for (size_t i = 0; i < devices_.size(); ++i)
        delta.push_back(devices_[i]->stats() - before[i]);
    return delta;
}

DeviceStats
RpuTopology::aggregate(const Snapshot &snap)
{
    DeviceStats total;
    for (const DeviceStats &s : snap)
        total += s;
    return total;
}

uint64_t
RpuTopology::makespanCycles(const Snapshot &snap)
{
    uint64_t worst = 0;
    for (const DeviceStats &s : snap)
        worst = std::max(worst, s.busyMakespanCycles());
    return worst;
}

std::vector<std::vector<std::vector<u128>>>
RpuTopology::transformSharded(
    const std::vector<size_t> &plan, uint64_t n,
    const std::vector<std::vector<u128>> &moduli,
    std::vector<std::vector<std::vector<u128>>> xs, bool inverse,
    const NttCodegenOptions &opts)
{
    const size_t items = moduli.size();
    rpu_assert(xs.size() == items, "item count mismatch");

    // A uniform plan is the whole call on one device — route through
    // its own coalesced hook so the degenerate case is the identical
    // code path (same launches, same ledger), not a reimplementation.
    const bool uniform =
        std::all_of(plan.begin(), plan.end(),
                    [&](size_t d) { return d == plan.front(); });
    if (plan.empty() || uniform) {
        const size_t d = plan.empty() ? 0 : plan.front();
        return device(d)->transformCoalesced(n, moduli, std::move(xs),
                                             inverse, opts);
    }

    std::vector<u128> tiled;
    std::vector<std::vector<u128>> regions;
    for (size_t i = 0; i < items; ++i) {
        rpu_assert(xs[i].size() == moduli[i].size(),
                   "tower count mismatch in item %zu", i);
        tiled.insert(tiled.end(), moduli[i].begin(), moduli[i].end());
        for (auto &tower : xs[i])
            regions.push_back(std::move(tower));
    }

    std::vector<std::vector<u128>> flat = runShardedFlat(
        plan, n, tiled, std::move(regions), false, inverse, opts);

    std::vector<std::vector<std::vector<u128>>> out(items);
    size_t f = 0;
    for (size_t i = 0; i < items; ++i) {
        out[i].reserve(moduli[i].size());
        for (size_t t = 0; t < moduli[i].size(); ++t)
            out[i].push_back(std::move(flat[f++]));
    }
    return out;
}

std::vector<std::vector<std::vector<u128>>>
RpuTopology::pointwiseSharded(
    const std::vector<size_t> &plan, uint64_t n,
    const std::vector<std::vector<u128>> &moduli,
    std::vector<std::vector<std::vector<u128>>> a,
    std::vector<std::vector<std::vector<u128>>> b,
    const NttCodegenOptions &opts)
{
    const size_t items = moduli.size();
    rpu_assert(a.size() == items && b.size() == items,
               "item count mismatch");

    const bool uniform =
        std::all_of(plan.begin(), plan.end(),
                    [&](size_t d) { return d == plan.front(); });
    if (plan.empty() || uniform) {
        const size_t d = plan.empty() ? 0 : plan.front();
        return device(d)->pointwiseCoalesced(n, moduli, std::move(a),
                                             std::move(b), opts);
    }

    // Same region layout as one PointwiseMulBatched pair: per flat
    // tower, the a operand then the b operand.
    std::vector<u128> tiled;
    std::vector<std::vector<u128>> regions;
    for (size_t i = 0; i < items; ++i) {
        rpu_assert(a[i].size() == moduli[i].size() &&
                       b[i].size() == moduli[i].size(),
                   "tower count mismatch in item %zu", i);
        tiled.insert(tiled.end(), moduli[i].begin(), moduli[i].end());
        for (size_t t = 0; t < moduli[i].size(); ++t) {
            regions.push_back(std::move(a[i][t]));
            regions.push_back(std::move(b[i][t]));
        }
    }

    std::vector<std::vector<u128>> flat = runShardedFlat(
        plan, n, tiled, std::move(regions), true, false, opts);

    std::vector<std::vector<std::vector<u128>>> out(items);
    size_t f = 0;
    for (size_t i = 0; i < items; ++i) {
        out[i].reserve(moduli[i].size());
        for (size_t t = 0; t < moduli[i].size(); ++t)
            out[i].push_back(std::move(flat[f++]));
    }
    return out;
}

std::vector<std::vector<u128>>
RpuTopology::runShardedFlat(const std::vector<size_t> &plan, uint64_t n,
                            const std::vector<u128> &tiled,
                            std::vector<std::vector<u128>> regions,
                            bool pointwise, bool inverse,
                            const NttCodegenOptions &opts)
{
    const size_t groups = tileGroups(tiled.size());
    rpu_assert(plan.size() == groups,
               "plan covers %zu groups, chain tiles into %zu",
               plan.size(), groups);
    for (size_t d : plan) {
        rpu_assert(d < devices_.size(),
                   "plan routes to device %zu of %zu", d,
                   devices_.size());
    }

    const KernelKind kind =
        pointwise ? KernelKind::PointwiseMulBatched
                  : (inverse ? KernelKind::BatchedInverseNtt
                             : KernelKind::BatchedForwardNtt);
    const size_t step = RpuDevice::kMaxBatchedTowers;
    const size_t per_tower = pointwise ? 2 : 1;

    // One launch per tile group, on the planned device; a group's
    // result lands in its own slot so reassembly is order-stable
    // however the devices interleave.
    std::vector<std::vector<std::vector<u128>>> group_out(groups);
    const auto runGroup = [&](size_t g) {
        const size_t begin = g * step;
        const size_t end = std::min(tiled.size(), begin + step);
        RpuDevice &dev = *devices_[plan[g]];
        const std::vector<u128> group_moduli(tiled.begin() + begin,
                                             tiled.begin() + end);
        const KernelImage &k = dev.kernel(kind, n, group_moduli, opts);
        group_out[g] = dev.launch(
            k, std::vector<std::vector<u128>>(
                   std::make_move_iterator(regions.begin() +
                                           per_tower * begin),
                   std::make_move_iterator(regions.begin() +
                                           per_tower * end)));
    };

    // Groups per device, in tile order; devices overlap on real
    // threads (the caller's thread runs the first occupied device).
    std::vector<std::vector<size_t>> by_device(devices_.size());
    for (size_t g = 0; g < groups; ++g)
        by_device[plan[g]].push_back(g);
    std::vector<size_t> occupied;
    for (size_t d = 0; d < by_device.size(); ++d) {
        if (!by_device[d].empty())
            occupied.push_back(d);
    }

    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(occupied.size());
    for (size_t i = 1; i < occupied.size(); ++i) {
        threads.emplace_back([&, i] {
            try {
                for (size_t g : by_device[occupied[i]])
                    runGroup(g);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    try {
        for (size_t g : by_device[occupied.front()])
            runGroup(g);
    } catch (...) {
        errors[0] = std::current_exception();
    }
    for (std::thread &t : threads)
        t.join();
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }

    std::vector<std::vector<u128>> flat;
    flat.reserve(tiled.size());
    for (auto &part : group_out)
        for (auto &r : part)
            flat.push_back(std::move(r));
    rpu_assert(flat.size() == tiled.size(),
               "sharded launches resolved to %zu regions, expected %zu",
               flat.size(), tiled.size());
    return flat;
}

} // namespace rpu
