#include "rpu/thread_pool.hh"

#include "common/logging.hh"

namespace rpu {

namespace {
/** Set for the lifetime of a worker thread; -1/null everywhere else. */
thread_local int tl_worker_index = -1;
thread_local const ThreadPool *tl_worker_pool = nullptr;
} // namespace

int
ThreadPool::currentWorkerIndex()
{
    return tl_worker_index;
}

const ThreadPool *
ThreadPool::currentPool()
{
    return tl_worker_pool;
}

ThreadPool::ThreadPool(unsigned workers)
{
    rpu_assert(workers > 0, "thread pool needs at least one worker");
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rpu_assert(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop(unsigned index)
{
    tl_worker_index = int(index);
    tl_worker_pool = this;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, and every queued job has run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

} // namespace rpu
