#include "rpu/thread_pool.hh"

#include "common/logging.hh"

namespace rpu {

ThreadPool::ThreadPool(unsigned workers)
{
    rpu_assert(workers > 0, "thread pool needs at least one worker");
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rpu_assert(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, and every queued job has run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

} // namespace rpu
