/**
 * @file
 * Aggregated design-point metrics: timing from the cycle simulator
 * combined with the frequency, area and energy models — the quantities
 * every figure in the paper's evaluation reports.
 */

#ifndef RPU_RPU_METRICS_HH
#define RPU_RPU_METRICS_HH

#include <string>

#include "model/area.hh"
#include "model/energy.hh"
#include "sim/cycle/stats.hh"

namespace rpu {

/** Everything measured for one (kernel, design point) pair. */
struct KernelMetrics
{
    CycleStats cycle;
    double freqGhz = 0;
    double runtimeUs = 0;
    AreaBreakdown area;
    EnergyBreakdown energy;
    double powerW = 0;

    /** The paper's Fig. 4 metric: higher is better. */
    double
    perfPerArea() const
    {
        return runtimeUs == 0 ? 0 : 1.0 / (runtimeUs * area.total());
    }

    std::string report() const;
};

/** Combine a timing result with the analytical models. */
KernelMetrics computeMetrics(const CycleStats &stats,
                             const RpuConfig &cfg);

} // namespace rpu

#endif // RPU_RPU_METRICS_HH
