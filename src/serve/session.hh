/**
 * @file
 * Per-tenant serving session: one tenant's complete cryptographic
 * world, plus the accounting the server attributes to it.
 *
 * Every tenant owns a full CkksContext — its own parameter set,
 * deterministic modulus chain, secret key, relinearisation key, and
 * evaluator state — seeded *derivably from the session id*, so a
 * multi-tenant run is reproducible end to end: two servers built
 * with the same tenant ids produce bit-identical keys, ciphertexts,
 * and responses, regardless of how requests interleave. Per-request
 * randomness is likewise derived from (session seed, request seq),
 * which is what makes the serving bench's bit-identity check against
 * per-tenant *serial* execution meaningful even when the device runs
 * a worker pool: no draw depends on service order.
 *
 * runSerial() is that serial reference — the exact per-request
 * pipeline, executed alone. The server's uncoalesced path *is* this
 * function, so "coalesced equals serial" is a real statement about
 * the cross-tenant batching machinery, not about two copies of the
 * same code.
 *
 * Sessions with equal kernelClass() strings (same ring dimension and
 * same modulus chain — chains are deterministic per parameter set,
 * so equal CkksParams imply an equal class) issue kernel-compatible
 * launches, which is the server's coalescing criterion.
 */

#ifndef RPU_SERVE_SESSION_HH
#define RPU_SERVE_SESSION_HH

#include <atomic>
#include <complex>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rlwe/ckks.hh"
#include "serve/queue.hh"

namespace rpu {

class RpuDevice;
struct DeviceStats;

namespace serve {

/** Everything needed to open a tenant's session. */
struct TenantConfig
{
    uint64_t id = 0;    ///< stable tenant identity; seeds everything
    CkksParams params;  ///< the tenant's own parameter set
    unsigned relinDigitBits = 30; ///< gadget base for its relin key
};

/**
 * Per-tenant ledger, layered on DeviceStats deltas: the server
 * snapshots the device around each dispatch chunk and splits the
 * delta evenly across the chunk's requests. Launch/cycle shares are
 * fractional (a 3-launch chunk over 8 requests does not divide
 * evenly); the semantic tower-granular counters are exact per
 * request by construction when every request in a chunk has the
 * same shape, which the server's chunking guarantees. Exact with one
 * dispatcher; approximate (deltas may interleave) with several.
 */
struct TenantAccounting
{
    uint64_t accepted = 0;
    uint64_t rejectedFull = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t coalesced = 0; ///< completed in a chunk with >1 requests

    double launchShare = 0; ///< device launches attributed
    double cycleShare = 0;  ///< modelled device cycles attributed
    uint64_t pointwiseMuls = 0;
    uint64_t forwardTransforms = 0;
    uint64_t inverseTransforms = 0;
};

/** See the file comment. */
class Session
{
  public:
    /** Builds the context, keys, and kernel class; attaches
     *  @p device (may be null for host-only execution). */
    Session(const TenantConfig &cfg, std::shared_ptr<RpuDevice> device);

    uint64_t id() const { return cfg_.id; }
    const TenantConfig &config() const { return cfg_; }
    const CkksContext &ctx() const { return *ctx_; }
    const CkksSecretKey &secretKey() const { return sk_; }
    const RelinKey &relinKey() const { return rk_; }

    /** Master seed for tenant @p id (splitmix64 of the id, so
     *  adjacent ids get unrelated streams). */
    static uint64_t deriveSeed(uint64_t id);

    /** Fresh derived stream for request @p seq of this session —
     *  independent of every other (session, seq) pair and of
     *  service order. */
    Rng requestRng(uint64_t seq) const;

    /** Next per-tenant sequence number (assigned at submit). */
    uint64_t nextSeq() { return seq_.fetch_add(1); }

    /**
     * Launch-compatibility fingerprint: sessions with equal strings
     * share ring dimension and modulus chain, so their launches can
     * merge into one batched kernel (the server's coalescing key).
     */
    const std::string &kernelClass() const { return kernel_class_; }

    /**
     * The per-tenant serial reference: run one request's full
     * pipeline alone — encrypt with requestRng(seq), op, rescale,
     * decrypt — and return the decrypted slots. The server's
     * uncoalesced execution path calls exactly this.
     */
    std::vector<std::complex<double>>
    runSerial(RequestOp op, const std::vector<std::complex<double>> &a,
              const std::vector<std::complex<double>> &b,
              uint64_t seq) const;

    /**
     * runSerial against @p ctx instead of the session's own context.
     * @p ctx must share this session's parameter set (same
     * deterministic modulus chain) — the keys, encoding, and request
     * randomness are all the session's, so the results are
     * bit-identical to runSerial; only the attached device changes.
     * This is how the server routes uncoalesced requests to a
     * non-default device of a topology: one execution context per
     * (kernel class, device), every tenant's keys usable with any of
     * them.
     */
    std::vector<std::complex<double>>
    runSerialWith(const CkksContext &ctx, RequestOp op,
                  const std::vector<std::complex<double>> &a,
                  const std::vector<std::complex<double>> &b,
                  uint64_t seq) const;

    // -- Accounting (called by the server's dispatchers) ----------------

    void noteSubmission(SubmitStatus s);
    void noteFailed();

    /** Attribute an even share of @p chunkDelta to this tenant for
     *  one completed request in a @p chunkRequests-request chunk. */
    void noteCompleted(size_t chunkRequests,
                       const DeviceStats &chunkDelta);

    TenantAccounting accounting() const;

  private:
    TenantConfig cfg_;
    uint64_t seed_ = 0;
    std::unique_ptr<CkksContext> ctx_;
    CkksSecretKey sk_;
    RelinKey rk_;
    std::string kernel_class_;
    std::atomic<uint64_t> seq_{0};

    mutable std::mutex acct_mutex_;
    TenantAccounting acct_;
};

} // namespace serve
} // namespace rpu

#endif // RPU_SERVE_SESSION_HH
