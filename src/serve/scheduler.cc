#include "serve/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "rpu/topology.hh"

namespace rpu {
namespace serve {

namespace {

/** EWMA weight for new samples; high enough to track a workload
 *  shift within a few chunks, low enough not to thrash on the
 *  chunk-size mix. */
constexpr double kEwma = 0.25;

} // namespace

MakespanScheduler::MakespanScheduler(
    std::shared_ptr<RpuTopology> topology)
    : topology_(std::move(topology))
{
    rpu_assert(topology_ != nullptr, "scheduler needs a topology");
    devices_.resize(topology_->size());
}

std::string
MakespanScheduler::key(RequestOp op, const std::string &cls)
{
    return (op == RequestOp::MulPlainRescale ? "mp|" : "mc|") + cls;
}

MakespanScheduler::Placement
MakespanScheduler::place(RequestOp op, const std::string &cls,
                         size_t requests)
{
    std::lock_guard<std::mutex> lock(mutex_);

    double busy_est = 0, staging_est = 0;
    const auto it = estimates_.find(key(op, cls));
    if (it != estimates_.end()) {
        busy_est = it->second.busy;
        staging_est = it->second.staging;
    }

    // Greedy makespan minimisation: land on the device whose load
    // plus this chunk's contended marginal cost is smallest. The
    // contention term re-exposes the chunk's staging traffic once per
    // chunk already in flight on the device (HbmContentionModel with
    // lanes = 1 + inflight), so equal loads still prefer an idle
    // device. Ties break to the lowest index — deterministic, and on
    // a 1-device topology this is always device 0.
    size_t best = devices_.size();
    double best_score = 0;
    for (size_t d = 0; d < devices_.size(); ++d) {
        const DeviceState &st = devices_[d];
        if (st.paused)
            continue;
        const double projected =
            double(requests) *
            (busy_est + double(st.inflight) * staging_est);
        const double score = double(st.load) + projected;
        if (best == devices_.size() || score < best_score) {
            best = d;
            best_score = score;
        }
    }
    rpu_assert(best < devices_.size(),
               "every device of the topology is paused");

    Placement p;
    p.device = best;
    p.booked = uint64_t(double(requests) * busy_est);
    devices_[best].load += p.booked;
    ++devices_[best].inflight;
    return p;
}

void
MakespanScheduler::complete(const Placement &p, RequestOp op,
                            const std::string &cls, size_t requests,
                            uint64_t busyCycles, uint64_t stagingCycles)
{
    rpu_assert(requests >= 1, "empty chunk completed");
    std::lock_guard<std::mutex> lock(mutex_);
    DeviceState &st = devices_.at(p.device);
    // Correct the booking to the measured cycle-model cost. The
    // booking can exceed the running load only if resetCounters-style
    // races produced nonsense; clamp rather than wrap.
    st.load -= std::min(st.load, p.booked);
    st.load += busyCycles;
    if (st.inflight > 0)
        --st.inflight;

    Estimate &est = estimates_[key(op, cls)];
    const double busy_per_req = double(busyCycles) / double(requests);
    const double staging_per_req =
        double(stagingCycles) / double(requests);
    if (est.samples == 0) {
        est.busy = busy_per_req;
        est.staging = staging_per_req;
    } else {
        est.busy += kEwma * (busy_per_req - est.busy);
        est.staging += kEwma * (staging_per_req - est.staging);
    }
    ++est.samples;
}

std::vector<size_t>
MakespanScheduler::stagePlan(const Placement &p, size_t groups) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<size_t> plan(groups, p.device);
    if (groups <= 1 || devices_.size() <= 1)
        return plan;

    // Unpaused devices in ascending-load order, placement device
    // first (it already carries this chunk's booking, and keeping it
    // first means a 2-group stage on an idle topology uses the
    // placement device plus one helper rather than skipping it).
    std::vector<size_t> order;
    for (size_t d = 0; d < devices_.size(); ++d) {
        if (!devices_[d].paused && d != p.device)
            order.push_back(d);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return devices_[a].load < devices_[b].load;
                     });
    order.insert(order.begin(), p.device);

    for (size_t g = 0; g < groups; ++g)
        plan[g] = order[g % order.size()];
    return plan;
}

void
MakespanScheduler::pause(size_t device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    devices_.at(device).paused = true;
}

void
MakespanScheduler::resume(size_t device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    devices_.at(device).paused = false;
}

bool
MakespanScheduler::paused(size_t device) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return devices_.at(device).paused;
}

uint64_t
MakespanScheduler::load(size_t device) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return devices_.at(device).load;
}

uint64_t
MakespanScheduler::modelledMakespan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t worst = 0;
    for (const DeviceState &st : devices_)
        worst = std::max(worst, st.load);
    return worst;
}

} // namespace serve
} // namespace rpu
