#include "serve/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "rpu/topology.hh"

namespace rpu {
namespace serve {

namespace {

/** EWMA weight for new samples; high enough to track a workload
 *  shift within a few chunks, low enough not to thrash on the
 *  chunk-size mix. */
constexpr double kEwma = 0.25;

} // namespace

MakespanScheduler::MakespanScheduler(
    std::shared_ptr<RpuTopology> topology, SchedulerPolicy policy)
    : topology_(std::move(topology)), policy_(policy)
{
    rpu_assert(topology_ != nullptr, "scheduler needs a topology");
    devices_.resize(topology_->size());
}

std::string
MakespanScheduler::key(RequestOp op, const std::string &cls)
{
    return (op == RequestOp::MulPlainRescale ? "mp|" : "mc|") + cls;
}

MakespanScheduler::Estimate
MakespanScheduler::estimateLocked(RequestOp op,
                                  const std::string &cls) const
{
    const auto it = estimates_.find(key(op, cls));
    return it == estimates_.end() ? Estimate{} : it->second;
}

MakespanScheduler::Placement
MakespanScheduler::bookLocked(size_t requests, const Estimate &est)
{
    // Greedy makespan minimisation: land on the device whose load
    // plus this chunk's contended marginal cost is smallest. The
    // contention term re-exposes the chunk's staging traffic once per
    // chunk already in flight on the device (HbmContentionModel with
    // lanes = 1 + inflight), so equal loads still prefer an idle
    // device. Ties break to the lowest index — deterministic, and on
    // a 1-device topology this is always device 0.
    size_t best = devices_.size();
    double best_score = 0;
    for (size_t d = 0; d < devices_.size(); ++d) {
        const DeviceState &st = devices_[d];
        if (st.paused)
            continue;
        const double projected =
            double(requests) *
            (est.busy + double(st.inflight) * est.staging);
        const double score = double(st.load) + projected;
        if (best == devices_.size() || score < best_score) {
            best = d;
            best_score = score;
        }
    }
    rpu_assert(best < devices_.size(),
               "every device of the topology is paused");

    Placement p;
    p.device = best;
    // Cold classes (no samples yet) book a nominal cycle so that the
    // chunks of one batch still spread instead of all tying onto
    // device 0 before the first completion corrects the ledger.
    p.booked = std::max<uint64_t>(
        1, uint64_t(std::llround(double(requests) * est.busy)));
    devices_[best].load += p.booked;
    ++devices_[best].inflight;
    return p;
}

MakespanScheduler::Placement
MakespanScheduler::place(RequestOp op, const std::string &cls,
                         size_t requests)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bookLocked(requests, estimateLocked(op, cls));
}

std::vector<MakespanScheduler::Placement>
MakespanScheduler::placeBatch(const std::vector<ChunkDesc> &chunks)
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Booking order: input (pop) order for greedy; descending
    // estimated chunk cost for lookahead (LPT — placing the long
    // chunks while the ledger is emptiest is the classic makespan
    // heuristic). Ties keep input order, so the schedule stays
    // deterministic for a deterministic workload.
    std::vector<size_t> order(chunks.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<Estimate> ests(chunks.size());
    for (size_t i = 0; i < chunks.size(); ++i)
        ests[i] = estimateLocked(chunks[i].op, chunks[i].cls);
    if (policy_.lookahead) {
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return double(chunks[a].requests) *
                                        ests[a].busy >
                                    double(chunks[b].requests) *
                                        ests[b].busy;
                         });
    }

    std::vector<Placement> placements(chunks.size());
    for (size_t i : order)
        placements[i] = bookLocked(chunks[i].requests, ests[i]);
    return placements;
}

std::vector<std::vector<size_t>>
MakespanScheduler::splitPlans(
    Placement &p, RequestOp op, const std::string &cls,
    size_t requests,
    const std::vector<std::vector<double>> &stageWeights)
{
    std::lock_guard<std::mutex> lock(mutex_);

    std::vector<std::vector<size_t>> plans(stageWeights.size());
    for (size_t s = 0; s < stageWeights.size(); ++s)
        plans[s].assign(stageWeights[s].size(), p.device);

    size_t unpaused = 0;
    for (const DeviceState &st : devices_)
        unpaused += st.paused ? 0 : 1;
    if (!policy_.split || unpaused <= 1)
        return plans;

    // The chunk no longer runs whole on the placement device: release
    // its chunk-level booking and re-book per tile group as each is
    // assigned, so concurrent placements see the split load.
    DeviceState &home = devices_.at(p.device);
    home.load -= std::min(home.load, p.booked);
    p.booked = 0;
    p.stageBooked.assign(devices_.size(), 0);

    double total_weight = 0;
    for (const auto &stage : stageWeights)
        for (double w : stage)
            total_weight += w;
    const Estimate est = estimateLocked(op, cls);
    const double chunk_cycles = double(requests) * est.busy;
    // Cycles booked per weight unit. A cold class books one cycle per
    // unit — enough to make the within-chunk assignment spread.
    const double per_unit =
        total_weight <= 0
            ? 0
            : (chunk_cycles > 0 ? chunk_cycles / total_weight : 1.0);

    // All stages' groups assigned jointly, largest first (LPT over
    // the tile groups), each onto the currently least-loaded unpaused
    // device. Stable order keeps the plan deterministic.
    struct Group
    {
        size_t stage, index;
        double weight;
    };
    std::vector<Group> groups;
    for (size_t s = 0; s < stageWeights.size(); ++s)
        for (size_t g = 0; g < stageWeights[s].size(); ++g)
            groups.push_back({s, g, stageWeights[s][g]});
    std::stable_sort(groups.begin(), groups.end(),
                     [](const Group &a, const Group &b) {
                         return a.weight > b.weight;
                     });

    for (const Group &g : groups) {
        size_t best = devices_.size();
        for (size_t d = 0; d < devices_.size(); ++d) {
            if (devices_[d].paused)
                continue;
            if (best == devices_.size() ||
                devices_[d].load < devices_[best].load)
                best = d;
        }
        const uint64_t booked = std::max<uint64_t>(
            1, uint64_t(std::llround(g.weight * per_unit)));
        devices_[best].load += booked;
        p.stageBooked[best] += booked;
        plans[g.stage][g.index] = best;
    }
    return plans;
}

bool
MakespanScheduler::rehome(Placement &p, RequestOp op,
                          const std::string &cls, size_t requests)
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Release, re-score, re-book — all under one lock, so the ledger
    // never double-counts the chunk and never drops it either.
    DeviceState &cur = devices_.at(p.device);
    cur.load -= std::min(cur.load, p.booked);
    if (cur.inflight > 0)
        --cur.inflight;

    const Estimate est = estimateLocked(op, cls);
    size_t best = devices_.size();
    double best_score = 0;
    for (size_t d = 0; d < devices_.size(); ++d) {
        const DeviceState &st = devices_[d];
        if (st.paused)
            continue;
        const double projected =
            double(requests) *
            (est.busy + double(st.inflight) * est.staging);
        const double score = double(st.load) + projected;
        if (best == devices_.size() || score < best_score) {
            best = d;
            best_score = score;
        }
    }
    rpu_assert(best < devices_.size(),
               "every device of the topology is paused");

    const bool moved = best != p.device;
    p.device = best;
    devices_[best].load += p.booked;
    ++devices_[best].inflight;
    return moved;
}

void
MakespanScheduler::complete(const Placement &p, RequestOp op,
                            const std::string &cls, size_t requests,
                            const std::vector<uint64_t> &busyPerDevice,
                            uint64_t stagingCycles, bool failed)
{
    rpu_assert(requests >= 1, "empty chunk completed");
    std::lock_guard<std::mutex> lock(mutex_);

    // Correct every booking to the measured cycle-model cost: the
    // chunk-level booking on the placement device, any split-stage
    // bookings, then credit each device the cycles it actually spent.
    // Bookings can exceed the running load only if resetCounters-style
    // races produced nonsense; clamp rather than wrap.
    DeviceState &st = devices_.at(p.device);
    st.load -= std::min(st.load, p.booked);
    for (size_t d = 0;
         d < p.stageBooked.size() && d < devices_.size(); ++d) {
        devices_[d].load -=
            std::min(devices_[d].load, p.stageBooked[d]);
    }
    uint64_t busy_total = 0;
    for (size_t d = 0;
         d < busyPerDevice.size() && d < devices_.size(); ++d) {
        devices_[d].load += busyPerDevice[d];
        busy_total += busyPerDevice[d];
    }
    if (st.inflight > 0)
        --st.inflight;

    // A failed chunk's window measures however far the attempt got,
    // not what the class costs — folding it into the estimate would
    // poison every later placement of the class. The cycles above
    // were still spent, so the load credit stands.
    if (failed)
        return;

    Estimate &est = estimates_[key(op, cls)];
    const double busy_per_req = double(busy_total) / double(requests);
    const double staging_per_req =
        double(stagingCycles) / double(requests);
    if (est.samples == 0) {
        est.busy = busy_per_req;
        est.staging = staging_per_req;
    } else {
        est.busy += kEwma * (busy_per_req - est.busy);
        est.staging += kEwma * (staging_per_req - est.staging);
    }
    ++est.samples;
}

void
MakespanScheduler::complete(const Placement &p, RequestOp op,
                            const std::string &cls, size_t requests,
                            uint64_t busyCycles, uint64_t stagingCycles)
{
    std::vector<uint64_t> busy(p.device + 1, 0);
    busy[p.device] = busyCycles;
    complete(p, op, cls, requests, busy, stagingCycles, false);
}

std::vector<size_t>
MakespanScheduler::stagePlan(const Placement &p, size_t groups) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<size_t> plan(groups, p.device);
    if (groups <= 1 || devices_.size() <= 1)
        return plan;

    // Unpaused devices in ascending-load order, placement device
    // first (it already carries this chunk's booking, and keeping it
    // first means a 2-group stage on an idle topology uses the
    // placement device plus one helper rather than skipping it).
    std::vector<size_t> order;
    for (size_t d = 0; d < devices_.size(); ++d) {
        if (!devices_[d].paused && d != p.device)
            order.push_back(d);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return devices_[a].load < devices_[b].load;
                     });
    order.insert(order.begin(), p.device);

    for (size_t g = 0; g < groups; ++g)
        plan[g] = order[g % order.size()];
    return plan;
}

void
MakespanScheduler::pause(size_t device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    devices_.at(device).paused = true;
}

void
MakespanScheduler::resume(size_t device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    devices_.at(device).paused = false;
}

bool
MakespanScheduler::paused(size_t device) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return devices_.at(device).paused;
}

uint64_t
MakespanScheduler::load(size_t device) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return devices_.at(device).load;
}

uint64_t
MakespanScheduler::modelledMakespan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t worst = 0;
    for (const DeviceState &st : devices_)
        worst = std::max(worst, st.load);
    return worst;
}

} // namespace serve
} // namespace rpu
