/**
 * @file
 * Bounded multi-tenant request queue: the admission edge of the
 * serving front-end.
 *
 * The queue is MPMC — any thread may submit, any dispatcher may pop —
 * with two properties the naive single-deque version lacks:
 *
 *  - Explicit backpressure. Admission is a non-blocking decision:
 *    a full queue rejects with SubmitStatus::RejectedFull instead of
 *    blocking the producer or growing without bound (the open-loop
 *    harness depends on this — under overload, arrivals must fail
 *    fast so the generator keeps its schedule). After close(), every
 *    submit reports RejectedShutdown.
 *
 *  - A per-tenant fairness bound. Requests live in per-tenant FIFO
 *    lanes and popBatch() sweeps the lanes round-robin from a
 *    rotating cursor, taking at most maxPerTenant per lane per
 *    batch. A hog tenant with a thousand queued requests therefore
 *    cannot starve anyone: every other tenant with pending work is
 *    visited once per sweep, so its head-of-line request is served
 *    within one batch of the hog's — the bound the serve tests pin.
 *
 * Shutdown is a graceful drain: close() rejects new work but
 * consumers keep popping until the lanes are empty, and only then
 * does popBatch() return an empty batch (the consumer's exit
 * signal). No accepted request is ever dropped — its promise is
 * always eventually fulfilled by whoever pops it.
 */

#ifndef RPU_SERVE_QUEUE_HH
#define RPU_SERVE_QUEUE_HH

#include <chrono>
#include <complex>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

namespace rpu {
namespace serve {

/** Admission verdict for one submit. */
enum class SubmitStatus
{
    Accepted,         ///< queued; the submission's future will resolve
    RejectedFull,     ///< backpressure: queue at capacity, try later
    RejectedShutdown, ///< the server is draining; no new work
};

const char *submitStatusName(SubmitStatus s);

/** The homomorphic pipeline one request runs. */
enum class RequestOp
{
    /** encrypt(a) -> x encode(b) -> rescale -> decrypt. */
    MulPlainRescale,
    /** encrypt(a), encrypt(b) -> ct x ct + relin -> rescale -> decrypt. */
    MulCtRescale,
};

/** What a fulfilled request resolves to. */
struct ServeResponse
{
    uint64_t tenant = 0;
    uint64_t seq = 0; ///< per-tenant sequence number (RNG derivation)

    std::vector<std::complex<double>> values; ///< decrypted slots

    double queueMicros = 0;   ///< submit -> dispatch pop
    double serviceMicros = 0; ///< dispatch pop -> completion
    double totalMicros = 0;   ///< submit -> completion

    /** Server-wide ordinal of the dispatch batch that served this
     *  request — consecutive for a fairly-served tenant even when a
     *  hog floods the queue (the fairness tests compare these). */
    uint64_t dispatchIndex = 0;

    /** Requests sharing this request's device dispatch chunk (1 =
     *  executed alone, >1 = cross-tenant coalesced). */
    size_t chunkRequests = 1;
};

/** One queued request (internal to the queue/server). */
struct ServeRequest
{
    uint64_t tenant = 0;
    uint64_t seq = 0;
    RequestOp op = RequestOp::MulPlainRescale;
    std::vector<std::complex<double>> a;
    std::vector<std::complex<double>> b;
    std::chrono::steady_clock::time_point submitted;
    std::promise<ServeResponse> done;
};

/** See the file comment. */
class BoundedRequestQueue
{
  public:
    explicit BoundedRequestQueue(size_t capacity);

    /**
     * Non-blocking admission: enqueue on the tenant's lane or reject
     * (full / shutdown). On rejection the request — promise included
     * — is returned to the caller untouched via the reference.
     */
    SubmitStatus push(ServeRequest &req);

    /**
     * Pop the next batch: blocks while the queue is open and empty;
     * returns an empty batch only after close() once every lane has
     * drained. The sweep starts at a cursor that rotates between
     * calls and takes at most @p maxPerTenant requests from each
     * lane, up to @p maxBatch total — the fairness bound.
     */
    std::vector<ServeRequest> popBatch(size_t maxBatch,
                                       size_t maxPerTenant);

    /**
     * popBatch with a bounded wait: returns an empty batch after
     * @p timeout even while the queue is open, so a consumer with a
     * second work source (the work-stealing dispatcher) can poll both
     * instead of parking here forever. @p closedOut reports whether
     * the queue is closed *and* drained — the only empty return that
     * means "no work will ever come".
     */
    std::vector<ServeRequest>
    popBatchFor(size_t maxBatch, size_t maxPerTenant,
                std::chrono::steady_clock::duration timeout,
                bool &closedOut);

    /** Reject new submissions; wake consumers to drain what's left. */
    void close();

    size_t capacity() const { return capacity_; }
    size_t depth() const;
    bool closed() const;

  private:
    /** The rotating round-robin sweep both pops share; under mutex_. */
    std::vector<ServeRequest> sweepLocked(size_t maxBatch,
                                          size_t maxPerTenant);

    struct Lane
    {
        uint64_t tenant = 0;
        std::deque<ServeRequest> q;
    };

    const size_t capacity_;

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    // A deque, not a vector: growth must not require copying lanes
    // (queued requests are move-only) and must keep references to
    // existing lanes stable.
    std::deque<Lane> lanes_; ///< stable first-appearance order
    size_t size_ = 0;
    size_t cursor_ = 0; ///< lane the next sweep starts at
    bool closed_ = false;
};

} // namespace serve
} // namespace rpu

#endif // RPU_SERVE_QUEUE_HH
