#include "serve/queue.hh"

#include "common/logging.hh"

namespace rpu {
namespace serve {

const char *
submitStatusName(SubmitStatus s)
{
    switch (s) {
      case SubmitStatus::Accepted:
        return "accepted";
      case SubmitStatus::RejectedFull:
        return "rejected-full";
      case SubmitStatus::RejectedShutdown:
        return "rejected-shutdown";
    }
    return "?";
}

BoundedRequestQueue::BoundedRequestQueue(size_t capacity)
    : capacity_(capacity)
{
    rpu_assert(capacity >= 1, "queue needs capacity >= 1");
}

SubmitStatus
BoundedRequestQueue::push(ServeRequest &req)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return SubmitStatus::RejectedShutdown;
    if (size_ >= capacity_)
        return SubmitStatus::RejectedFull;

    Lane *lane = nullptr;
    for (Lane &l : lanes_) {
        if (l.tenant == req.tenant) {
            lane = &l;
            break;
        }
    }
    if (!lane) {
        lanes_.push_back(Lane{req.tenant, {}});
        lane = &lanes_.back();
    }
    lane->q.push_back(std::move(req));
    ++size_;
    ready_.notify_one();
    return SubmitStatus::Accepted;
}

std::vector<ServeRequest>
BoundedRequestQueue::popBatch(size_t maxBatch, size_t maxPerTenant)
{
    rpu_assert(maxBatch >= 1 && maxPerTenant >= 1,
               "batch bounds must be positive");
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0)
        return {}; // closed and drained: the consumer exit signal
    return sweepLocked(maxBatch, maxPerTenant);
}

std::vector<ServeRequest>
BoundedRequestQueue::popBatchFor(
    size_t maxBatch, size_t maxPerTenant,
    std::chrono::steady_clock::duration timeout, bool &closedOut)
{
    rpu_assert(maxBatch >= 1 && maxPerTenant >= 1,
               "batch bounds must be positive");
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_for(lock, timeout,
                    [&] { return size_ > 0 || closed_; });
    closedOut = closed_ && size_ == 0;
    if (size_ == 0)
        return {};
    return sweepLocked(maxBatch, maxPerTenant);
}

std::vector<ServeRequest>
BoundedRequestQueue::sweepLocked(size_t maxBatch, size_t maxPerTenant)
{
    // One round-robin sweep from the rotating cursor: every lane
    // with pending work is visited exactly once and contributes at
    // most maxPerTenant requests, so no tenant waits more than one
    // batch behind a hog's flood.
    std::vector<ServeRequest> batch;
    const size_t lanes = lanes_.size();
    for (size_t k = 0; k < lanes && batch.size() < maxBatch; ++k) {
        Lane &lane = lanes_[(cursor_ + k) % lanes];
        for (size_t taken = 0; taken < maxPerTenant &&
                               !lane.q.empty() &&
                               batch.size() < maxBatch;
             ++taken) {
            batch.push_back(std::move(lane.q.front()));
            lane.q.pop_front();
            --size_;
        }
    }
    // Rotate the sweep's starting lane so batch priority circulates
    // instead of always favouring the first tenant to ever submit.
    cursor_ = lanes == 0 ? 0 : (cursor_ + 1) % lanes;

    // A producer blocked on a full queue has no wait path (push is
    // non-blocking), but a concurrent popBatch may be waiting for
    // work that another consumer just exposed — and close() needs
    // every consumer awake eventually.
    if (size_ > 0 || closed_)
        ready_.notify_all();
    return batch;
}

void
BoundedRequestQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

size_t
BoundedRequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
}

bool
BoundedRequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace serve
} // namespace rpu
