#include "serve/server.hh"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "rpu/device.hh"
#include "rpu/topology.hh"

namespace rpu {
namespace serve {

namespace {

double
micros(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

/** Largest power of two <= @p v (v >= 1). */
size_t
pow2Floor(size_t v)
{
    size_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

HeServer::HeServer(const ServeConfig &cfg,
                   std::shared_ptr<RpuDevice> device)
    : HeServer(cfg, device ? RpuTopology::adopt({std::move(device)})
                           : std::shared_ptr<RpuTopology>())
{
}

HeServer::HeServer(const ServeConfig &cfg,
                   std::shared_ptr<RpuTopology> topology)
    : cfg_(cfg), topology_(std::move(topology)),
      queue_(cfg.queueCapacity)
{
    rpu_assert(cfg_.maxBatch >= 1 && cfg_.maxPerTenant >= 1 &&
                   cfg_.maxCoalesce >= 1,
               "batch bounds must be positive");
    rpu_assert(cfg_.dispatchers >= 1, "need at least one dispatcher");
    if (topology_) {
        scheduler_ =
            std::make_unique<MakespanScheduler>(topology_, cfg_.policy);
        device_ = topology_->device(0);
        pending_.resize(topology_->size());
    }
    if (!cfg_.startPaused)
        start();
}

void
HeServer::start()
{
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (started_ || shut_down_)
        return;
    started_ = true;
    dispatchers_.reserve(cfg_.dispatchers);
    for (unsigned i = 0; i < cfg_.dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

HeServer::~HeServer()
{
    shutdown();
}

Session &
HeServer::addTenant(const TenantConfig &cfg)
{
    // Key generation is heavy; build the session outside the lock and
    // only the registration itself races with dispatcher lookups.
    auto session = std::make_unique<Session>(cfg, device_);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto &s : sessions_) {
        rpu_assert(s->id() != cfg.id, "tenant %llu already exists",
                   (unsigned long long)cfg.id);
    }
    sessions_.push_back(std::move(session));
    return *sessions_.back();
}

const CkksContext &
HeServer::execContext(const Session &sess, size_t device)
{
    rpu_assert(topology_ != nullptr && device < topology_->size(),
               "no topology device %zu", device);
    if (device == 0)
        return sess.ctx(); // sessions attach device 0 themselves

    // One replica per (kernel class, device): contexts are
    // deterministic per parameter set, so any same-class session's
    // keys and request randomness work against it unchanged (the
    // replica's own seed never feeds a request — see runSerialWith).
    // Like the sessions, a replica is exercised by one dispatcher at
    // a time in the deterministic single-dispatcher configuration.
    const std::string key =
        sess.kernelClass() + "|d" + std::to_string(device);
    std::lock_guard<std::mutex> lock(exec_ctx_mutex_);
    auto it = exec_ctx_.find(key);
    if (it == exec_ctx_.end()) {
        auto ctx = std::make_unique<CkksContext>(sess.config().params);
        ctx->attachDevice(topology_->device(device));
        it = exec_ctx_.emplace(key, std::move(ctx)).first;
    }
    return *it->second;
}

Session *
HeServer::tenant(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto &s : sessions_) {
        if (s->id() == id)
            return s.get();
    }
    return nullptr;
}

Submission
HeServer::submit(uint64_t tenant_id, RequestOp op,
                 std::vector<std::complex<double>> a,
                 std::vector<std::complex<double>> b)
{
    Session *sess = tenant(tenant_id);
    rpu_assert(sess != nullptr, "unknown tenant %llu",
               (unsigned long long)tenant_id);

    ServeRequest req;
    req.tenant = tenant_id;
    // Assigned whether or not admission succeeds: the sequence
    // number (and with it the request's derived RNG stream) must
    // never depend on queue occupancy, or rejected submissions would
    // shift every later request's randomness and break reproducible
    // replay. Bit-identity harnesses run with no rejections.
    req.seq = sess->nextSeq();
    req.op = op;
    req.a = std::move(a);
    req.b = std::move(b);
    req.submitted = std::chrono::steady_clock::now();

    Submission sub;
    // The future must exist before push: a dispatcher may pop and
    // fulfil the request before push even returns.
    sub.response = req.done.get_future();
    sub.status = queue_.push(req);
    sess->noteSubmission(sub.status);
    switch (sub.status) {
      case SubmitStatus::Accepted:
        ++accepted_;
        break;
      case SubmitStatus::RejectedFull:
        ++rejected_full_;
        break;
      case SubmitStatus::RejectedShutdown:
        ++rejected_shutdown_;
        break;
    }
    return sub;
}

void
HeServer::prewarm()
{
    if (!device_)
        return;

    // One representative session per kernel class.
    std::vector<Session *> reps;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        for (const auto &s : sessions_) {
            bool seen = false;
            for (Session *r : reps)
                seen = seen || r->kernelClass() == s->kernelClass();
            if (!seen)
                reps.push_back(s.get());
        }
    }

    for (Session *s : reps) {
        const uint64_t n = s->config().params.n;
        const std::vector<u128> primes = s->ctx().basis().primes();
        const u128 q_l = primes.back();

        // Build the cross-device execution contexts up front so a
        // routed first request doesn't pay context construction.
        // Kernels themselves only need warming once: the topology's
        // devices share one cache bundle ("generate once, launch
        // anywhere").
        if (topology_) {
            for (size_t d = 1; d < topology_->size(); ++d)
                execContext(*s, d);
        }

        // Uncoalesced path on a serial device: plaintext entry, the
        // per-pair pointwise dispatch, the dropped-tower inverses.
        device_->kernel(KernelKind::BatchedForwardNtt, n, primes);
        device_->kernel(KernelKind::PointwiseMulBatched, n, primes);
        device_->kernel(KernelKind::InverseNtt, n, {q_l});
        // A pooled device fans the same work per tower.
        if (device_->parallelism() > 1) {
            for (u128 q : primes) {
                device_->kernel(KernelKind::ForwardNtt, n, {q});
                device_->kernel(KernelKind::PointwiseMul, n, {q});
            }
        }
        if (!cfg_.coalesce)
            continue;

        // Coalesced chunk shapes: chunks come in power-of-two sizes
        // and the coalesced hooks split tiled chains at the batched
        // register budget, so warm exactly the per-group shapes those
        // splits produce — the cache stays logarithmic in maxCoalesce
        // per class and stage, not one entry per observed batch size.
        const auto warmTiled = [&](KernelKind kind,
                                   const std::vector<u128> &tiled) {
            const size_t step = RpuDevice::kMaxBatchedTowers;
            for (size_t g = 0; g < tiled.size(); g += step) {
                const size_t end = std::min(tiled.size(), g + step);
                device_->kernel(kind, n,
                                std::vector<u128>(tiled.begin() + g,
                                                  tiled.begin() + end));
            }
        };
        for (size_t k = 2; k <= pow2Floor(cfg_.maxCoalesce); k *= 2) {
            std::vector<u128> entry, pw;
            for (size_t i = 0; i < k; ++i)
                entry.insert(entry.end(), primes.begin(), primes.end());
            for (size_t i = 0; i < 2 * k; ++i)
                pw.insert(pw.end(), primes.begin(), primes.end());
            warmTiled(KernelKind::BatchedForwardNtt, entry);
            warmTiled(KernelKind::PointwiseMulBatched, pw);
            warmTiled(KernelKind::BatchedInverseNtt,
                      std::vector<u128>(2 * k, q_l));
        }
    }
}

void
HeServer::shutdown()
{
    // A paused server still drains: whatever was admitted before the
    // close gets dispatched and every accepted future resolves.
    start();
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_)
        return;
    queue_.close();
    for (std::thread &t : dispatchers_) {
        if (t.joinable())
            t.join();
    }
    shut_down_ = true;
}

ServerStats
HeServer::stats() const
{
    ServerStats s;
    s.accepted = accepted_;
    s.rejectedFull = rejected_full_;
    s.rejectedShutdown = rejected_shutdown_;
    s.completed = completed_;
    s.failed = failed_;
    s.dispatches = dispatches_;
    s.chunks = chunks_;
    s.coalescedChunks = coalesced_chunks_;
    s.coalescedRequests = coalesced_requests_;
    s.splitChunks = split_chunks_;
    s.stolenChunks = stolen_chunks_;
    return s;
}

void
HeServer::dispatchLoop()
{
    const bool stealing = scheduler_ != nullptr && cfg_.policy.steal;
    for (;;) {
        if (!stealing) {
            std::vector<ServeRequest> batch =
                queue_.popBatch(cfg_.maxBatch, cfg_.maxPerTenant);
            if (batch.empty())
                return; // closed and drained
            dispatchBatch(std::move(batch));
            continue;
        }

        // Steal policy: the dispatcher polls two work sources — the
        // admission queue and the per-device pending lists. The
        // bounded pop keeps the thief responsive (a chunk never waits
        // longer than the poll period for an idle dispatcher) without
        // busy-spinning an idle server.
        bool closed = false;
        std::vector<ServeRequest> batch = queue_.popBatchFor(
            cfg_.maxBatch, cfg_.maxPerTenant,
            std::chrono::milliseconds(1), closed);
        if (!batch.empty()) {
            dispatchBatch(std::move(batch));
            continue;
        }
        if (stealOne())
            continue;
        if (closed)
            return; // drained: queue closed and nothing left to steal
    }
}

void
HeServer::dispatchBatch(std::vector<ServeRequest> batch)
{
    const uint64_t dispatch_index = dispatches_.fetch_add(1);
    const auto popped = std::chrono::steady_clock::now();

    // Group the batch by (op, kernel class), preserving pop
    // order within each group — the fairness the queue
    // established survives grouping because groups execute in
    // first-appearance order.
    struct Group
    {
        RequestOp op;
        const std::string *cls;
        std::vector<ServeRequest> reqs;
    };
    std::vector<Group> groups;
    for (ServeRequest &req : batch) {
        Session *sess = tenant(req.tenant);
        const std::string &cls = sess->kernelClass();
        Group *g = nullptr;
        for (Group &cand : groups) {
            if (cand.op == req.op && *cand.cls == cls) {
                g = &cand;
                break;
            }
        }
        if (!g) {
            groups.push_back(Group{req.op, &cls, {}});
            g = &groups.back();
        }
        g->reqs.push_back(std::move(req));
    }

    // Cut each group into chunks. Only MulPlainRescale coalesces
    // (the ct x ct relinearisation pipeline stays per-request);
    // chunk sizes are powers of two so the kernel cache stays
    // bounded (see prewarm).
    std::vector<PendingChunk> cut;
    for (Group &g : groups) {
        const bool coalescable = cfg_.coalesce && device_ != nullptr &&
                                 g.op == RequestOp::MulPlainRescale;
        const size_t cap =
            coalescable ? pow2Floor(cfg_.maxCoalesce) : 1;
        size_t idx = 0;
        while (idx < g.reqs.size()) {
            size_t take = cap;
            while (take > g.reqs.size() - idx)
                take /= 2;
            PendingChunk pc;
            pc.chunk.reserve(take);
            for (size_t j = 0; j < take; ++j)
                pc.chunk.push_back(std::move(g.reqs[idx + j]));
            idx += take;
            pc.dispatchIndex = dispatch_index;
            pc.popped = popped;
            cut.push_back(std::move(pc));
        }
    }

    // Lookahead (and the steal policy, which needs placements before
    // chunks can sit on a pending list) books the whole batch's
    // chunks jointly up front. The plain greedy tier keeps the
    // original place-at-execute-time flow — completions landing
    // between placements and all — so it stays the exact regression
    // baseline.
    if (scheduler_ && (cfg_.policy.lookahead || cfg_.policy.steal)) {
        std::vector<MakespanScheduler::ChunkDesc> descs;
        descs.reserve(cut.size());
        for (const PendingChunk &pc : cut) {
            descs.push_back(
                {pc.chunk[0].op,
                 tenant(pc.chunk[0].tenant)->kernelClass(),
                 pc.chunk.size()});
        }
        std::vector<MakespanScheduler::Placement> placements =
            scheduler_->placeBatch(descs);
        for (size_t i = 0; i < cut.size(); ++i) {
            cut[i].placement = placements[i];
            cut[i].placed = true;
        }
    }

    if (scheduler_ && cfg_.policy.steal) {
        // Park the placed chunks on their devices' pending lists,
        // then drain in global FIFO order. With one dispatcher this
        // executes exactly the sequence the direct path would; with
        // several, idle dispatchers pull from the lists concurrently.
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            for (PendingChunk &pc : cut) {
                pc.ordinal = next_ordinal_++;
                pending_[pc.placement.device].push_back(std::move(pc));
            }
        }
        drainPending();
        return;
    }
    for (PendingChunk &pc : cut)
        executeChunk(std::move(pc));
}

void
HeServer::drainPending()
{
    for (;;) {
        PendingChunk pc;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            std::deque<PendingChunk> *oldest = nullptr;
            for (std::deque<PendingChunk> &dq : pending_) {
                if (dq.empty())
                    continue;
                if (!oldest ||
                    dq.front().ordinal < oldest->front().ordinal)
                    oldest = &dq;
            }
            if (!oldest)
                return;
            pc = std::move(oldest->front());
            oldest->pop_front();
        }
        executeChunk(std::move(pc));
    }
}

bool
HeServer::stealOne()
{
    PendingChunk pc;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        // Victim: the most-loaded device that still has unstarted
        // chunks parked — relieving it is the biggest makespan win.
        size_t victim = pending_.size();
        uint64_t worst = 0;
        for (size_t d = 0; d < pending_.size(); ++d) {
            if (pending_[d].empty())
                continue;
            const uint64_t l = scheduler_->load(d);
            if (victim == pending_.size() || l > worst) {
                victim = d;
                worst = l;
            }
        }
        if (victim == pending_.size())
            return false;
        pc = std::move(pending_[victim].front());
        pending_[victim].pop_front();
    }
    const std::string &cls = tenant(pc.chunk[0].tenant)->kernelClass();
    if (scheduler_->rehome(pc.placement, pc.chunk[0].op, cls,
                           pc.chunk.size()))
        ++stolen_chunks_;
    executeChunk(std::move(pc));
    return true;
}

void
HeServer::executeChunk(PendingChunk pc)
{
    std::vector<ServeRequest> &chunk = pc.chunk;
    const uint64_t dispatchIndex = pc.dispatchIndex;
    const auto popped = pc.popped;
    const size_t k = chunk.size();
    ++chunks_;
    if (k > 1) {
        ++coalesced_chunks_;
        coalesced_requests_ += k;
    }

    std::vector<Session *> sessions(k);
    std::vector<ServeResponse> responses(k);
    for (size_t i = 0; i < k; ++i) {
        sessions[i] = tenant(chunk[i].tenant);
        responses[i].tenant = chunk[i].tenant;
        responses[i].seq = chunk[i].seq;
        responses[i].dispatchIndex = dispatchIndex;
        responses[i].chunkRequests = k;
    }

    // Place the chunk before touching the device: the scheduler books
    // its estimated cost onto the chosen device's load ledger, and
    // the booking is corrected to the measured window on completion.
    // Batch-placed (lookahead/steal) chunks arrive already booked.
    // On a 1-device topology this is always device 0 with a uniform
    // plan — the PR 8 path, bit-identical launches and all.
    MakespanScheduler::Placement placement = std::move(pc.placement);
    const std::string &cls = sessions[0]->kernelClass();
    if (scheduler_ && !pc.placed)
        placement = scheduler_->place(chunk[0].op, cls, k);

    const RpuTopology::Snapshot before =
        topology_ ? topology_->snapshot() : RpuTopology::Snapshot{};
    try {
        if (k == 1) {
            if (placement.device == 0) {
                // The per-tenant serial reference path, verbatim: the
                // bit-identity statement "coalesced equals serial" is
                // about the branch below, not two copies of this one.
                responses[0].values = sessions[0]->runSerial(
                    chunk[0].op, chunk[0].a, chunk[0].b, chunk[0].seq);
            } else {
                // Same pipeline, same keys, same request randomness —
                // only the attached device differs.
                responses[0].values = sessions[0]->runSerialWith(
                    execContext(*sessions[0], placement.device),
                    chunk[0].op, chunk[0].a, chunk[0].b, chunk[0].seq);
            }
        } else {
            coalescedMulPlain(placement, chunk, sessions, responses);
        }
    } catch (...) {
        const std::exception_ptr err = std::current_exception();
        if (scheduler_) {
            // Release the bookings and in-flight slot; whatever device
            // work the failed attempt did pay is the measured cost,
            // but a partial window must not feed the EWMA estimate
            // (failed = true), or one failure would poison every
            // later placement of the class.
            const RpuTopology::Snapshot window =
                topology_->since(before);
            std::vector<uint64_t> busy(window.size(), 0);
            for (size_t d = 0; d < window.size(); ++d)
                busy[d] = window[d].busyCycleTotal();
            scheduler_->complete(
                placement, chunk[0].op, cls, k, busy,
                RpuTopology::aggregate(window).stagingCycleTotal(),
                /*failed=*/true);
        }
        for (size_t i = 0; i < k; ++i) {
            sessions[i]->noteFailed();
            ++failed_;
            chunk[i].done.set_exception(err);
        }
        return;
    }
    const RpuTopology::Snapshot window =
        topology_ ? topology_->since(before) : RpuTopology::Snapshot{};
    const DeviceStats delta = RpuTopology::aggregate(window);
    if (scheduler_) {
        // Credit each device the cycles it actually spent — under the
        // split policy a chunk's stages land on several devices, and
        // crediting the placement device alone would skew the ledger.
        std::vector<uint64_t> busy(window.size(), 0);
        for (size_t d = 0; d < window.size(); ++d)
            busy[d] = window[d].busyCycleTotal();
        scheduler_->complete(placement, chunk[0].op, cls, k, busy,
                             delta.stagingCycleTotal(), /*failed=*/false);
    }

    const auto end = std::chrono::steady_clock::now();
    for (size_t i = 0; i < k; ++i) {
        responses[i].queueMicros = micros(popped - chunk[i].submitted);
        responses[i].serviceMicros = micros(end - popped);
        responses[i].totalMicros = micros(end - chunk[i].submitted);
        sessions[i]->noteCompleted(k, delta);
        ++completed_;
        chunk[i].done.set_value(std::move(responses[i]));
    }
}

void
HeServer::coalescedMulPlain(MakespanScheduler::Placement &placement,
                            std::vector<ServeRequest> &chunk,
                            std::vector<Session *> &sessions,
                            std::vector<ServeResponse> &responses)
{
    // The cross-tenant batched MulPlainRescale pipeline: the same
    // math as Session::runSerial, with every device dispatch merged
    // across the chunk — three launches total where the serial path
    // pays five per request on a serial device (encode entry, two
    // component pointwise launches, two dropped-tower inverses).
    // Bit-identity with the serial path rests on the batched kernel
    // kinds computing each region's ring independently — the same
    // per-region math whether a tower rides its own launch or a
    // tiled one (test_serve pins this end to end). Each stage's tile
    // groups spread across the topology per the scheduler's stage
    // plan; on a 1-device topology every plan is uniform and the
    // stages are the device's own coalesced hooks, unchanged.
    const size_t k = chunk.size();
    const uint64_t n = sessions[0]->config().params.n;

    // Host half, per request: encrypt and encode (Coeff — the
    // evaluation-domain entry is what gets coalesced).
    std::vector<CkksCiphertext> cts(k);
    std::vector<CkksPlaintext> pts(k);
    std::vector<std::vector<u128>> moduli(k);
    for (size_t i = 0; i < k; ++i) {
        const CkksContext &ctx = sessions[i]->ctx();
        Rng rng = sessions[i]->requestRng(chunk[i].seq);
        cts[i] = ctx.encrypt(sessions[i]->secretKey(), chunk[i].a, rng);
        pts[i] =
            ctx.encodePlainCoeff(chunk[i].b, cts[i].towers());
        moduli[i] = ctx.basis().primes();
    }

    size_t entry_towers = 0;
    for (size_t i = 0; i < k; ++i)
        entry_towers += moduli[i].size();

    // Per-stage device plans, fixed before the first launch. Under
    // the split policy the scheduler assigns all three stages' tile
    // groups jointly to the least-loaded devices (re-shaping the
    // chunk's booking to match); otherwise each stage round-robins
    // its groups from the placement device via the legacy stagePlan.
    // Loads can't move between the three launches of one chunk in the
    // deterministic single-dispatcher configuration, so planning up
    // front is behaviour-identical to planning per stage.
    std::vector<std::vector<size_t>> plans;
    if (scheduler_->policy().split) {
        plans = scheduler_->splitPlans(
            placement, chunk[0].op, sessions[0]->kernelClass(), k,
            {RpuTopology::groupWeights(
                 entry_towers, MakespanScheduler::kForwardTowerWeight),
             RpuTopology::groupWeights(
                 2 * entry_towers,
                 MakespanScheduler::kPointwiseTowerWeight),
             RpuTopology::groupWeights(
                 2 * k, MakespanScheduler::kInverseTowerWeight)});
    } else {
        plans = {
            scheduler_->stagePlan(placement,
                                  RpuTopology::tileGroups(entry_towers)),
            scheduler_->stagePlan(
                placement, RpuTopology::tileGroups(2 * entry_towers)),
            scheduler_->stagePlan(placement,
                                  RpuTopology::tileGroups(2 * k))};
    }
    if (scheduler_->policy().split) {
        bool spread = false;
        for (const auto &plan : plans)
            for (size_t d : plan)
                spread = spread || d != placement.device;
        if (spread)
            ++split_chunks_;
    }

    // Launch 1: every tenant's plaintext enters Eval together.
    std::vector<std::vector<std::vector<u128>>> pt_in(k);
    for (size_t i = 0; i < k; ++i)
        pt_in[i] = std::move(pts[i].rp.towers);
    auto pt_eval = topology_->transformSharded(
        plans[0], n, moduli, std::move(pt_in), false);

    // Launch 2: both components of every ciphertext against its
    // plaintext — 2k items. The ciphertexts are read in place just
    // like the serial path's mulPlainPair, and the same elisions are
    // reported so the issued-vs-elided ledger stays comparable.
    std::vector<std::vector<u128>> pw_moduli(2 * k);
    std::vector<std::vector<std::vector<u128>>> lhs(2 * k),
        rhs(2 * k);
    for (size_t i = 0; i < k; ++i) {
        pw_moduli[2 * i] = moduli[i];
        pw_moduli[2 * i + 1] = moduli[i];
        lhs[2 * i] = std::move(cts[i].c0.towers);
        lhs[2 * i + 1] = std::move(cts[i].c1.towers);
        rhs[2 * i] = pt_eval[i];
        rhs[2 * i + 1] = std::move(pt_eval[i]);
        sessions[i]->ctx().residueOps().noteElidedConversions(
            2 * moduli[i].size());
    }
    auto prods = topology_->pointwiseSharded(
        plans[1], n, pw_moduli, std::move(lhs), std::move(rhs));

    std::vector<CkksCiphertext> prod(k);
    for (size_t i = 0; i < k; ++i) {
        prod[i].scale = cts[i].scale * pts[i].scale;
        prod[i].c0 = ResiduePoly(ResidueDomain::Eval,
                                 std::move(prods[2 * i]));
        prod[i].c1 = ResiduePoly(ResidueDomain::Eval,
                                 std::move(prods[2 * i + 1]));
    }

    // Launch 3: every component's dropped tower leaves Eval together
    // — 2k single-tower items.
    std::vector<std::vector<u128>> inv_moduli(2 * k);
    std::vector<std::vector<std::vector<u128>>> inv_in(2 * k);
    for (size_t i = 0; i < k; ++i) {
        inv_moduli[2 * i] = {moduli[i].back()};
        inv_moduli[2 * i + 1] = {moduli[i].back()};
        inv_in[2 * i] = {prod[i].c0.towers.back()};
        inv_in[2 * i + 1] = {prod[i].c1.towers.back()};
    }
    auto dropped = topology_->transformSharded(
        plans[2], n, inv_moduli, std::move(inv_in), true);

    // Host half, per request: finish the rescale and decrypt.
    for (size_t i = 0; i < k; ++i) {
        const CkksContext &ctx = sessions[i]->ctx();
        std::vector<std::vector<u128>> dr;
        dr.push_back(std::move(dropped[2 * i][0]));
        dr.push_back(std::move(dropped[2 * i + 1][0]));
        responses[i].values = ctx.decrypt(
            sessions[i]->secretKey(),
            ctx.rescaleFromDropped(prod[i], dr));
    }
}

} // namespace serve
} // namespace rpu
