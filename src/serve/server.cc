#include "serve/server.hh"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "rpu/device.hh"
#include "rpu/topology.hh"

namespace rpu {
namespace serve {

namespace {

double
micros(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

/** Largest power of two <= @p v (v >= 1). */
size_t
pow2Floor(size_t v)
{
    size_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

HeServer::HeServer(const ServeConfig &cfg,
                   std::shared_ptr<RpuDevice> device)
    : HeServer(cfg, device ? RpuTopology::adopt({std::move(device)})
                           : std::shared_ptr<RpuTopology>())
{
}

HeServer::HeServer(const ServeConfig &cfg,
                   std::shared_ptr<RpuTopology> topology)
    : cfg_(cfg), topology_(std::move(topology)),
      queue_(cfg.queueCapacity)
{
    rpu_assert(cfg_.maxBatch >= 1 && cfg_.maxPerTenant >= 1 &&
                   cfg_.maxCoalesce >= 1,
               "batch bounds must be positive");
    rpu_assert(cfg_.dispatchers >= 1, "need at least one dispatcher");
    if (topology_) {
        scheduler_ = std::make_unique<MakespanScheduler>(topology_);
        device_ = topology_->device(0);
    }
    if (!cfg_.startPaused)
        start();
}

void
HeServer::start()
{
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (started_ || shut_down_)
        return;
    started_ = true;
    dispatchers_.reserve(cfg_.dispatchers);
    for (unsigned i = 0; i < cfg_.dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

HeServer::~HeServer()
{
    shutdown();
}

Session &
HeServer::addTenant(const TenantConfig &cfg)
{
    // Key generation is heavy; build the session outside the lock and
    // only the registration itself races with dispatcher lookups.
    auto session = std::make_unique<Session>(cfg, device_);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto &s : sessions_) {
        rpu_assert(s->id() != cfg.id, "tenant %llu already exists",
                   (unsigned long long)cfg.id);
    }
    sessions_.push_back(std::move(session));
    return *sessions_.back();
}

const CkksContext &
HeServer::execContext(const Session &sess, size_t device)
{
    rpu_assert(topology_ != nullptr && device < topology_->size(),
               "no topology device %zu", device);
    if (device == 0)
        return sess.ctx(); // sessions attach device 0 themselves

    // One replica per (kernel class, device): contexts are
    // deterministic per parameter set, so any same-class session's
    // keys and request randomness work against it unchanged (the
    // replica's own seed never feeds a request — see runSerialWith).
    // Like the sessions, a replica is exercised by one dispatcher at
    // a time in the deterministic single-dispatcher configuration.
    const std::string key =
        sess.kernelClass() + "|d" + std::to_string(device);
    std::lock_guard<std::mutex> lock(exec_ctx_mutex_);
    auto it = exec_ctx_.find(key);
    if (it == exec_ctx_.end()) {
        auto ctx = std::make_unique<CkksContext>(sess.config().params);
        ctx->attachDevice(topology_->device(device));
        it = exec_ctx_.emplace(key, std::move(ctx)).first;
    }
    return *it->second;
}

Session *
HeServer::tenant(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto &s : sessions_) {
        if (s->id() == id)
            return s.get();
    }
    return nullptr;
}

Submission
HeServer::submit(uint64_t tenant_id, RequestOp op,
                 std::vector<std::complex<double>> a,
                 std::vector<std::complex<double>> b)
{
    Session *sess = tenant(tenant_id);
    rpu_assert(sess != nullptr, "unknown tenant %llu",
               (unsigned long long)tenant_id);

    ServeRequest req;
    req.tenant = tenant_id;
    // Assigned whether or not admission succeeds: the sequence
    // number (and with it the request's derived RNG stream) must
    // never depend on queue occupancy, or rejected submissions would
    // shift every later request's randomness and break reproducible
    // replay. Bit-identity harnesses run with no rejections.
    req.seq = sess->nextSeq();
    req.op = op;
    req.a = std::move(a);
    req.b = std::move(b);
    req.submitted = std::chrono::steady_clock::now();

    Submission sub;
    // The future must exist before push: a dispatcher may pop and
    // fulfil the request before push even returns.
    sub.response = req.done.get_future();
    sub.status = queue_.push(req);
    sess->noteSubmission(sub.status);
    switch (sub.status) {
      case SubmitStatus::Accepted:
        ++accepted_;
        break;
      case SubmitStatus::RejectedFull:
        ++rejected_full_;
        break;
      case SubmitStatus::RejectedShutdown:
        ++rejected_shutdown_;
        break;
    }
    return sub;
}

void
HeServer::prewarm()
{
    if (!device_)
        return;

    // One representative session per kernel class.
    std::vector<Session *> reps;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        for (const auto &s : sessions_) {
            bool seen = false;
            for (Session *r : reps)
                seen = seen || r->kernelClass() == s->kernelClass();
            if (!seen)
                reps.push_back(s.get());
        }
    }

    for (Session *s : reps) {
        const uint64_t n = s->config().params.n;
        const std::vector<u128> primes = s->ctx().basis().primes();
        const u128 q_l = primes.back();

        // Build the cross-device execution contexts up front so a
        // routed first request doesn't pay context construction.
        // Kernels themselves only need warming once: the topology's
        // devices share one cache bundle ("generate once, launch
        // anywhere").
        if (topology_) {
            for (size_t d = 1; d < topology_->size(); ++d)
                execContext(*s, d);
        }

        // Uncoalesced path on a serial device: plaintext entry, the
        // per-pair pointwise dispatch, the dropped-tower inverses.
        device_->kernel(KernelKind::BatchedForwardNtt, n, primes);
        device_->kernel(KernelKind::PointwiseMulBatched, n, primes);
        device_->kernel(KernelKind::InverseNtt, n, {q_l});
        // A pooled device fans the same work per tower.
        if (device_->parallelism() > 1) {
            for (u128 q : primes) {
                device_->kernel(KernelKind::ForwardNtt, n, {q});
                device_->kernel(KernelKind::PointwiseMul, n, {q});
            }
        }
        if (!cfg_.coalesce)
            continue;

        // Coalesced chunk shapes: chunks come in power-of-two sizes
        // and the coalesced hooks split tiled chains at the batched
        // register budget, so warm exactly the per-group shapes those
        // splits produce — the cache stays logarithmic in maxCoalesce
        // per class and stage, not one entry per observed batch size.
        const auto warmTiled = [&](KernelKind kind,
                                   const std::vector<u128> &tiled) {
            const size_t step = RpuDevice::kMaxBatchedTowers;
            for (size_t g = 0; g < tiled.size(); g += step) {
                const size_t end = std::min(tiled.size(), g + step);
                device_->kernel(kind, n,
                                std::vector<u128>(tiled.begin() + g,
                                                  tiled.begin() + end));
            }
        };
        for (size_t k = 2; k <= pow2Floor(cfg_.maxCoalesce); k *= 2) {
            std::vector<u128> entry, pw;
            for (size_t i = 0; i < k; ++i)
                entry.insert(entry.end(), primes.begin(), primes.end());
            for (size_t i = 0; i < 2 * k; ++i)
                pw.insert(pw.end(), primes.begin(), primes.end());
            warmTiled(KernelKind::BatchedForwardNtt, entry);
            warmTiled(KernelKind::PointwiseMulBatched, pw);
            warmTiled(KernelKind::BatchedInverseNtt,
                      std::vector<u128>(2 * k, q_l));
        }
    }
}

void
HeServer::shutdown()
{
    // A paused server still drains: whatever was admitted before the
    // close gets dispatched and every accepted future resolves.
    start();
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_)
        return;
    queue_.close();
    for (std::thread &t : dispatchers_) {
        if (t.joinable())
            t.join();
    }
    shut_down_ = true;
}

ServerStats
HeServer::stats() const
{
    ServerStats s;
    s.accepted = accepted_;
    s.rejectedFull = rejected_full_;
    s.rejectedShutdown = rejected_shutdown_;
    s.completed = completed_;
    s.failed = failed_;
    s.dispatches = dispatches_;
    s.chunks = chunks_;
    s.coalescedChunks = coalesced_chunks_;
    s.coalescedRequests = coalesced_requests_;
    return s;
}

void
HeServer::dispatchLoop()
{
    for (;;) {
        std::vector<ServeRequest> batch =
            queue_.popBatch(cfg_.maxBatch, cfg_.maxPerTenant);
        if (batch.empty())
            return; // closed and drained

        const uint64_t dispatch_index = dispatches_.fetch_add(1);
        const auto popped = std::chrono::steady_clock::now();

        // Group the batch by (op, kernel class), preserving pop
        // order within each group — the fairness the queue
        // established survives grouping because groups execute in
        // first-appearance order.
        struct Group
        {
            RequestOp op;
            const std::string *cls;
            std::vector<ServeRequest> reqs;
        };
        std::vector<Group> groups;
        for (ServeRequest &req : batch) {
            Session *sess = tenant(req.tenant);
            const std::string &cls = sess->kernelClass();
            Group *g = nullptr;
            for (Group &cand : groups) {
                if (cand.op == req.op && *cand.cls == cls) {
                    g = &cand;
                    break;
                }
            }
            if (!g) {
                groups.push_back(Group{req.op, &cls, {}});
                g = &groups.back();
            }
            g->reqs.push_back(std::move(req));
        }

        // Cut each group into chunks. Only MulPlainRescale coalesces
        // (the ct x ct relinearisation pipeline stays per-request);
        // chunk sizes are powers of two so the kernel cache stays
        // bounded (see prewarm).
        for (Group &g : groups) {
            const bool coalescable =
                cfg_.coalesce && device_ != nullptr &&
                g.op == RequestOp::MulPlainRescale;
            const size_t cap =
                coalescable ? pow2Floor(cfg_.maxCoalesce) : 1;
            size_t idx = 0;
            while (idx < g.reqs.size()) {
                size_t take = cap;
                while (take > g.reqs.size() - idx)
                    take /= 2;
                std::vector<ServeRequest> chunk;
                chunk.reserve(take);
                for (size_t j = 0; j < take; ++j)
                    chunk.push_back(std::move(g.reqs[idx + j]));
                idx += take;
                executeChunk(std::move(chunk), dispatch_index, popped);
            }
        }
    }
}

void
HeServer::executeChunk(std::vector<ServeRequest> chunk,
                       uint64_t dispatchIndex,
                       std::chrono::steady_clock::time_point popped)
{
    const size_t k = chunk.size();
    ++chunks_;
    if (k > 1) {
        ++coalesced_chunks_;
        coalesced_requests_ += k;
    }

    std::vector<Session *> sessions(k);
    std::vector<ServeResponse> responses(k);
    for (size_t i = 0; i < k; ++i) {
        sessions[i] = tenant(chunk[i].tenant);
        responses[i].tenant = chunk[i].tenant;
        responses[i].seq = chunk[i].seq;
        responses[i].dispatchIndex = dispatchIndex;
        responses[i].chunkRequests = k;
    }

    // Place the chunk before touching the device: the scheduler books
    // its estimated cost onto the chosen device's load ledger, and
    // the booking is corrected to the measured window on completion.
    // On a 1-device topology this is always device 0 with a uniform
    // plan — the PR 8 path, bit-identical launches and all.
    MakespanScheduler::Placement placement;
    const std::string &cls = sessions[0]->kernelClass();
    if (scheduler_)
        placement = scheduler_->place(chunk[0].op, cls, k);

    const RpuTopology::Snapshot before =
        topology_ ? topology_->snapshot() : RpuTopology::Snapshot{};
    try {
        if (k == 1) {
            if (placement.device == 0) {
                // The per-tenant serial reference path, verbatim: the
                // bit-identity statement "coalesced equals serial" is
                // about the branch below, not two copies of this one.
                responses[0].values = sessions[0]->runSerial(
                    chunk[0].op, chunk[0].a, chunk[0].b, chunk[0].seq);
            } else {
                // Same pipeline, same keys, same request randomness —
                // only the attached device differs.
                responses[0].values = sessions[0]->runSerialWith(
                    execContext(*sessions[0], placement.device),
                    chunk[0].op, chunk[0].a, chunk[0].b, chunk[0].seq);
            }
        } else {
            coalescedMulPlain(placement, chunk, sessions, responses);
        }
    } catch (...) {
        const std::exception_ptr err = std::current_exception();
        if (scheduler_) {
            // Release the booking and in-flight slot; whatever device
            // work the failed attempt did pay is the measured cost.
            const DeviceStats partial =
                RpuTopology::aggregate(topology_->since(before));
            scheduler_->complete(placement, chunk[0].op, cls, k,
                                 partial.busyCycleTotal(),
                                 partial.stagingCycleTotal());
        }
        for (size_t i = 0; i < k; ++i) {
            sessions[i]->noteFailed();
            ++failed_;
            chunk[i].done.set_exception(err);
        }
        return;
    }
    const DeviceStats delta =
        topology_ ? RpuTopology::aggregate(topology_->since(before))
                  : DeviceStats{};
    if (scheduler_) {
        scheduler_->complete(placement, chunk[0].op, cls, k,
                             delta.busyCycleTotal(),
                             delta.stagingCycleTotal());
    }

    const auto end = std::chrono::steady_clock::now();
    for (size_t i = 0; i < k; ++i) {
        responses[i].queueMicros = micros(popped - chunk[i].submitted);
        responses[i].serviceMicros = micros(end - popped);
        responses[i].totalMicros = micros(end - chunk[i].submitted);
        sessions[i]->noteCompleted(k, delta);
        ++completed_;
        chunk[i].done.set_value(std::move(responses[i]));
    }
}

void
HeServer::coalescedMulPlain(const MakespanScheduler::Placement &placement,
                            std::vector<ServeRequest> &chunk,
                            std::vector<Session *> &sessions,
                            std::vector<ServeResponse> &responses)
{
    // The cross-tenant batched MulPlainRescale pipeline: the same
    // math as Session::runSerial, with every device dispatch merged
    // across the chunk — three launches total where the serial path
    // pays five per request on a serial device (encode entry, two
    // component pointwise launches, two dropped-tower inverses).
    // Bit-identity with the serial path rests on the batched kernel
    // kinds computing each region's ring independently — the same
    // per-region math whether a tower rides its own launch or a
    // tiled one (test_serve pins this end to end). Each stage's tile
    // groups spread across the topology per the scheduler's stage
    // plan; on a 1-device topology every plan is uniform and the
    // stages are the device's own coalesced hooks, unchanged.
    const size_t k = chunk.size();
    const uint64_t n = sessions[0]->config().params.n;
    const auto stagePlan = [&](size_t towers) {
        return scheduler_->stagePlan(placement,
                                     RpuTopology::tileGroups(towers));
    };

    // Host half, per request: encrypt and encode (Coeff — the
    // evaluation-domain entry is what gets coalesced).
    std::vector<CkksCiphertext> cts(k);
    std::vector<CkksPlaintext> pts(k);
    std::vector<std::vector<u128>> moduli(k);
    for (size_t i = 0; i < k; ++i) {
        const CkksContext &ctx = sessions[i]->ctx();
        Rng rng = sessions[i]->requestRng(chunk[i].seq);
        cts[i] = ctx.encrypt(sessions[i]->secretKey(), chunk[i].a, rng);
        pts[i] =
            ctx.encodePlainCoeff(chunk[i].b, cts[i].towers());
        moduli[i] = ctx.basis().primes();
    }

    size_t entry_towers = 0;
    for (size_t i = 0; i < k; ++i)
        entry_towers += moduli[i].size();

    // Launch 1: every tenant's plaintext enters Eval together.
    std::vector<std::vector<std::vector<u128>>> pt_in(k);
    for (size_t i = 0; i < k; ++i)
        pt_in[i] = std::move(pts[i].rp.towers);
    auto pt_eval = topology_->transformSharded(
        stagePlan(entry_towers), n, moduli, std::move(pt_in), false);

    // Launch 2: both components of every ciphertext against its
    // plaintext — 2k items. The ciphertexts are read in place just
    // like the serial path's mulPlainPair, and the same elisions are
    // reported so the issued-vs-elided ledger stays comparable.
    std::vector<std::vector<u128>> pw_moduli(2 * k);
    std::vector<std::vector<std::vector<u128>>> lhs(2 * k),
        rhs(2 * k);
    for (size_t i = 0; i < k; ++i) {
        pw_moduli[2 * i] = moduli[i];
        pw_moduli[2 * i + 1] = moduli[i];
        lhs[2 * i] = std::move(cts[i].c0.towers);
        lhs[2 * i + 1] = std::move(cts[i].c1.towers);
        rhs[2 * i] = pt_eval[i];
        rhs[2 * i + 1] = std::move(pt_eval[i]);
        sessions[i]->ctx().residueOps().noteElidedConversions(
            2 * moduli[i].size());
    }
    auto prods = topology_->pointwiseSharded(
        stagePlan(2 * entry_towers), n, pw_moduli, std::move(lhs),
        std::move(rhs));

    std::vector<CkksCiphertext> prod(k);
    for (size_t i = 0; i < k; ++i) {
        prod[i].scale = cts[i].scale * pts[i].scale;
        prod[i].c0 = ResiduePoly(ResidueDomain::Eval,
                                 std::move(prods[2 * i]));
        prod[i].c1 = ResiduePoly(ResidueDomain::Eval,
                                 std::move(prods[2 * i + 1]));
    }

    // Launch 3: every component's dropped tower leaves Eval together
    // — 2k single-tower items.
    std::vector<std::vector<u128>> inv_moduli(2 * k);
    std::vector<std::vector<std::vector<u128>>> inv_in(2 * k);
    for (size_t i = 0; i < k; ++i) {
        inv_moduli[2 * i] = {moduli[i].back()};
        inv_moduli[2 * i + 1] = {moduli[i].back()};
        inv_in[2 * i] = {prod[i].c0.towers.back()};
        inv_in[2 * i + 1] = {prod[i].c1.towers.back()};
    }
    auto dropped = topology_->transformSharded(
        stagePlan(2 * k), n, inv_moduli, std::move(inv_in), true);

    // Host half, per request: finish the rescale and decrypt.
    for (size_t i = 0; i < k; ++i) {
        const CkksContext &ctx = sessions[i]->ctx();
        std::vector<std::vector<u128>> dr;
        dr.push_back(std::move(dropped[2 * i][0]));
        dr.push_back(std::move(dropped[2 * i + 1][0]));
        responses[i].values = ctx.decrypt(
            sessions[i]->secretKey(),
            ctx.rescaleFromDropped(prod[i], dr));
    }
}

} // namespace serve
} // namespace rpu
