/**
 * @file
 * MakespanScheduler: contention-aware placement of serving work
 * across an RpuTopology, with three stacked policies on top of the
 * greedy baseline.
 *
 * The placement unit is exactly what the dispatcher produces: a
 * same-(op, kernel-class) chunk whose device cost is a handful of
 * coalesced launches. The scheduler keeps one modelled-cycle load
 * ledger per device and routes work to minimise the projected
 * topology makespan on the cycle model:
 *
 *   score(d) = load(d) + requests * (busyEst + inflight(d) * stagingEst)
 *
 * where busyEst/stagingEst are per-request EWMAs learned from the
 * measured DeviceStats windows of completed chunks of the same
 * (op, class). The inflight term is the HBM-contention model's
 * marginal cost: a chunk landing on a device that already has
 * in-flight chunks re-exposes its staging traffic once per competing
 * occupant (see HbmContentionModel). Bookings are corrected to
 * measured per-device cycles on completion, so the ledger tracks the
 * real (deterministic) cycle model rather than estimates of it.
 * Failed chunks release their booking and surface their measured
 * cycles, but are *excluded* from the EWMA: a partial window is not
 * a cost sample, and folding it in would poison every later
 * placement of the class.
 *
 * The SchedulerPolicy flags stack three refinements over the greedy
 * chunk-at-a-time baseline (all on by default; the shard bench's
 * ablation table prices each):
 *
 *  - lookahead: placeBatch() books a popped batch's chunks jointly,
 *    longest-estimated-first (LPT) instead of pop order, so a large
 *    chunk never lands on a device a small one just took merely
 *    because it was popped later. Placements come back in input
 *    order — execution order (fairness) is unchanged.
 *
 *  - split: splitPlans() replaces a placed chunk's whole-device
 *    booking with per-tile-group bookings, assigning every stage's
 *    launch groups jointly (LPT by estimated group cost) to the
 *    least-loaded unpaused devices. A lone large chunk then spreads
 *    its three stage dispatches across an idle device set instead of
 *    serialising on one device — the difference between 6.0x and
 *    >7x modelled scaling at 8 devices on the replay workload.
 *
 *  - steal: rehome() re-places a booked-but-unstarted chunk that an
 *    idle dispatcher re-claimed from the most-loaded device's
 *    pending list. The booking moves atomically (release + rebook
 *    under one lock), so the makespan ledger stays conserved, and a
 *    paused device is never a destination.
 *
 * Paused (drained-for-maintenance) devices are never selected by any
 * placement path; a 1-device topology degenerates to "always device
 * 0" with uniform plans, which keeps the single-device serving path
 * bit-identical and ledger-identical whatever the policy flags say.
 */

#ifndef RPU_SERVE_SCHEDULER_HH
#define RPU_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/contention.hh"
#include "serve/queue.hh"

namespace rpu {

class RpuTopology;

namespace serve {

/** Which refinements stack on the greedy placement baseline. The
 *  default is everything on (the production configuration); the
 *  named constructors are the bench's ablation tiers. */
struct SchedulerPolicy
{
    bool lookahead = true; ///< joint LPT booking of a popped batch
    bool split = true;     ///< per-stage group spreading of a chunk
    bool steal = true;     ///< idle dispatchers re-claim booked chunks

    /** The PR 9 baseline: chunk-at-a-time, chunk-grained, no steal. */
    static SchedulerPolicy greedy() { return {false, false, false}; }
    static SchedulerPolicy all() { return {true, true, true}; }

    const char *name() const
    {
        if (steal)
            return "+steal";
        if (split)
            return "+split";
        if (lookahead)
            return "+lookahead";
        return "greedy";
    }
};

/** See the file comment. */
class MakespanScheduler
{
  public:
    explicit MakespanScheduler(std::shared_ptr<RpuTopology> topology,
                               SchedulerPolicy policy = {});

    const SchedulerPolicy &policy() const { return policy_; }

    /** One booked chunk placement; pass back to complete(). */
    struct Placement
    {
        size_t device = 0;
        uint64_t booked = 0; ///< modelled cycles booked onto device
        /** Per-device provisional bookings left by splitPlans();
         *  empty until a chunk is split. complete() releases them. */
        std::vector<uint64_t> stageBooked;
    };

    /** One chunk of a popped batch, as placeBatch sees it. */
    struct ChunkDesc
    {
        RequestOp op = RequestOp::MulPlainRescale;
        std::string cls;
        size_t requests = 0;
    };

    /**
     * Route a @p requests-request chunk of (@p op, @p cls) to the
     * device minimising projected makespan, booking its estimated
     * cost there. Fatal when every device is paused.
     */
    Placement place(RequestOp op, const std::string &cls,
                    size_t requests);

    /**
     * Place a whole popped batch's chunks under one lock. With the
     * lookahead policy the chunks are *booked* in descending
     * estimated-cost order (LPT — the classic makespan heuristic);
     * without it, in input order (exactly repeated place() calls).
     * The returned placements are always in input order, so
     * execution order — and with it queue fairness — is unchanged.
     */
    std::vector<Placement>
    placeBatch(const std::vector<ChunkDesc> &chunks);

    /**
     * Relative per-tower cost weights of the three coalesced stage
     * kinds, calibrated against the cycle model (a pointwise tower
     * costs ~1/7 of a forward-NTT tower; an inverse pass slightly
     * undercuts a forward one). Only placement balance depends on
     * them — measured completions correct any drift — so "close" is
     * all they need to be.
     */
    static constexpr double kForwardTowerWeight = 1.0;
    static constexpr double kInverseTowerWeight = 0.9;
    static constexpr double kPointwiseTowerWeight = 0.145;

    /**
     * Split policy: convert @p p's whole-chunk booking into
     * per-tile-group bookings and return one device plan per stage
     * (plans[s][g] = device executing group g of stage s, feedable
     * straight into RpuTopology::transformSharded/pointwiseSharded).
     * @p stageWeights holds one relative cost weight per group per
     * stage (tower count x the kind weight above); groups are
     * assigned jointly, largest first, to the least-loaded unpaused
     * device, each assignment booking its share of the chunk's
     * estimated cycles (recorded in p.stageBooked for complete() to
     * release). With one unpaused device — or the split policy off —
     * every plan is uniform on the placement device and no booking
     * moves, so the degenerate path is byte-identical to stagePlan.
     */
    std::vector<std::vector<size_t>>
    splitPlans(Placement &p, RequestOp op, const std::string &cls,
               size_t requests,
               const std::vector<std::vector<double>> &stageWeights);

    /**
     * Steal policy: re-place a booked-but-unstarted chunk that an
     * idle dispatcher claimed. The booking is released from
     * p.device and re-booked on the currently best-scoring unpaused
     * device under one lock — load is conserved, and a paused device
     * is never a destination. Returns true when the chunk moved.
     */
    bool rehome(Placement &p, RequestOp op, const std::string &cls,
                size_t requests);

    /**
     * Replace the placement's bookings with the measured per-device
     * cost and fold the per-request busy/staging cycles into the
     * (op, class) estimate. @p busyPerDevice is the topology window
     * the chunk executed under (index = device; shorter vectors are
     * zero-extended). A @p failed chunk still releases its bookings
     * and credits the cycles the attempt actually paid, but is
     * excluded from the EWMA — a partial window is not a cost
     * sample.
     */
    void complete(const Placement &p, RequestOp op,
                  const std::string &cls, size_t requests,
                  const std::vector<uint64_t> &busyPerDevice,
                  uint64_t stagingCycles, bool failed = false);

    /** Single-device convenience: the whole measured cost landed on
     *  the placement device (how tests drive the ledger directly). */
    void complete(const Placement &p, RequestOp op,
                  const std::string &cls, size_t requests,
                  uint64_t busyCycles, uint64_t stagingCycles);

    /**
     * Per-tile-group device plan for one sharded stage of a chunk
     * placed at @p p — the pre-split round-robin fallback: one group
     * (or a 1-device topology) stays entirely on the placement
     * device; more groups round-robin across the unpaused devices in
     * ascending-load order, the placement device first.
     */
    std::vector<size_t> stagePlan(const Placement &p, size_t groups)
        const;

    /**
     * Drain a device out of (or back into) the placement set. Work
     * already booked keeps running; new placements skip it. Pausing
     * every device is fatal at the next place().
     */
    void pause(size_t device);
    void resume(size_t device);
    bool paused(size_t device) const;

    /** Modelled cycle load currently booked/completed on a device. */
    uint64_t load(size_t device) const;

    /** Max load over devices: the scheduler's makespan projection. */
    uint64_t modelledMakespan() const;

  private:
    struct DeviceState
    {
        uint64_t load = 0;     ///< completed + booked modelled cycles
        uint64_t inflight = 0; ///< chunks placed, not yet completed
        bool paused = false;
    };

    /** Per-request cost estimate for one (op, class). */
    struct Estimate
    {
        double busy = 0;
        double staging = 0;
        uint64_t samples = 0;
    };

    static std::string key(RequestOp op, const std::string &cls);

    /** The greedy booking step, under mutex_: best-scoring unpaused
     *  device for a @p requests chunk with @p est, booking applied. */
    Placement bookLocked(size_t requests, const Estimate &est);

    Estimate estimateLocked(RequestOp op, const std::string &cls) const;

    std::shared_ptr<RpuTopology> topology_;
    SchedulerPolicy policy_;

    mutable std::mutex mutex_;
    std::vector<DeviceState> devices_;
    std::map<std::string, Estimate> estimates_;
};

} // namespace serve
} // namespace rpu

#endif // RPU_SERVE_SCHEDULER_HH
