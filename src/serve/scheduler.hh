/**
 * @file
 * MakespanScheduler: contention-aware placement of serving work
 * across an RpuTopology.
 *
 * The placement unit is exactly what PR 8's dispatcher produces: a
 * same-(op, kernel-class) chunk whose device cost is a handful of
 * coalesced launches. The scheduler keeps one modelled-cycle load
 * ledger per device and routes every chunk to the device that
 * minimises the projected topology makespan — greedy online list
 * scheduling (LPT-style) on the cycle model:
 *
 *   score(d) = load(d) + requests * (busyEst + inflight(d) * stagingEst)
 *
 * where busyEst/stagingEst are per-request EWMAs learned from the
 * measured DeviceStats windows of completed chunks of the same
 * (op, class). The inflight term is the HBM-contention model's
 * marginal cost: a chunk landing on a device that already has
 * in-flight chunks re-exposes its staging traffic once per competing
 * occupant (see HbmContentionModel), so a busy device looks more
 * expensive than its booked load alone — with one dispatcher it
 * vanishes, with several it steers chunks apart. Bookings are
 * corrected to measured cycles on completion, so the ledger tracks
 * the real (deterministic) cycle model rather than estimates of it.
 *
 * For a chunk whose tiled stages split into more than one
 * <= kMaxBatchedTowers launch group — a coalesced cross-tenant chunk
 * or one single large request with a long tower chain — stagePlan()
 * spreads the groups across the least-loaded devices, which is how
 * independent tower-chain work of a single request shards.
 *
 * Paused (drained-for-maintenance) devices are never selected by
 * place() or stagePlan(); a 1-device topology degenerates to "always
 * device 0", which keeps the PR 8 single-device path bit-identical.
 */

#ifndef RPU_SERVE_SCHEDULER_HH
#define RPU_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/contention.hh"
#include "serve/queue.hh"

namespace rpu {

class RpuTopology;

namespace serve {

/** See the file comment. */
class MakespanScheduler
{
  public:
    explicit MakespanScheduler(std::shared_ptr<RpuTopology> topology);

    /** One booked chunk placement; pass back to complete(). */
    struct Placement
    {
        size_t device = 0;
        uint64_t booked = 0; ///< modelled cycles booked onto device
    };

    /**
     * Route a @p requests-request chunk of (@p op, @p cls) to the
     * device minimising projected makespan, booking its estimated
     * cost there. Fatal when every device is paused.
     */
    Placement place(RequestOp op, const std::string &cls,
                    size_t requests);

    /**
     * Replace the placement's booking with the measured cost and
     * fold the per-request busy/staging cycles into the (op, class)
     * estimate.
     */
    void complete(const Placement &p, RequestOp op,
                  const std::string &cls, size_t requests,
                  uint64_t busyCycles, uint64_t stagingCycles);

    /**
     * Per-tile-group device plan for one sharded stage of a chunk
     * placed at @p p: @p groups entries. One group (or a 1-device
     * topology) stays entirely on the placement device; more groups
     * round-robin across the unpaused devices in ascending-load
     * order, the placement device first. Load is read at planning
     * time, so consecutive stages of one chunk keep the same shape
     * while idle devices get pulled in deterministically.
     */
    std::vector<size_t> stagePlan(const Placement &p, size_t groups)
        const;

    /**
     * Drain a device out of (or back into) the placement set. Work
     * already booked keeps running; new placements skip it. Pausing
     * every device is fatal at the next place().
     */
    void pause(size_t device);
    void resume(size_t device);
    bool paused(size_t device) const;

    /** Modelled cycle load currently booked/completed on a device. */
    uint64_t load(size_t device) const;

    /** Max load over devices: the scheduler's makespan projection. */
    uint64_t modelledMakespan() const;

  private:
    struct DeviceState
    {
        uint64_t load = 0;     ///< completed + booked modelled cycles
        uint64_t inflight = 0; ///< chunks placed, not yet completed
        bool paused = false;
    };

    /** Per-request cost estimate for one (op, class). */
    struct Estimate
    {
        double busy = 0;
        double staging = 0;
        uint64_t samples = 0;
    };

    static std::string key(RequestOp op, const std::string &cls);

    std::shared_ptr<RpuTopology> topology_;

    mutable std::mutex mutex_;
    std::vector<DeviceState> devices_;
    std::map<std::string, Estimate> estimates_;
};

} // namespace serve
} // namespace rpu

#endif // RPU_SERVE_SCHEDULER_HH
