#include "serve/session.hh"

#include "common/logging.hh"
#include "rpu/device.hh"

namespace rpu {
namespace serve {

namespace {

/** splitmix64 finaliser (Steele et al.) — the standard one-shot
 *  mixer for deriving unrelated streams from structured inputs. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
Session::deriveSeed(uint64_t id)
{
    // Domain-separated from plain mix64(id) so a tenant id that
    // happens to equal some other subsystem's seed input still gets
    // an unrelated stream.
    return mix64(id ^ 0x52505553455256ull); // "RPUSERV"
}

Session::Session(const TenantConfig &cfg,
                 std::shared_ptr<RpuDevice> device)
    : cfg_(cfg), seed_(deriveSeed(cfg.id)),
      ctx_(std::make_unique<CkksContext>(cfg.params, seed_))
{
    if (device)
        ctx_->attachDevice(std::move(device));

    // Key material comes off the context's own seed-derived stream,
    // in a fixed order, before any request runs: two sessions with
    // the same (id, params) are bit-identical worlds.
    sk_ = ctx_->keygen();
    rk_ = ctx_->makeRelinKey(sk_, cfg.relinDigitBits);

    // nttPrimes is deterministic per (towerBits, n, towers), so the
    // class string doubles as a parameter-set fingerprint: equal
    // CkksParams imply an equal class.
    kernel_class_ = "n" + std::to_string(cfg.params.n) + ":q";
    for (u128 q : ctx_->basis().primes()) {
        kernel_class_ += std::to_string(uint64_t(q >> 64)) + "_" +
                         std::to_string(uint64_t(q)) + ",";
    }
}

Rng
Session::requestRng(uint64_t seq) const
{
    return Rng(mix64(seed_ ^ mix64(seq + 1)));
}

std::vector<std::complex<double>>
Session::runSerial(RequestOp op,
                   const std::vector<std::complex<double>> &a,
                   const std::vector<std::complex<double>> &b,
                   uint64_t seq) const
{
    return runSerialWith(*ctx_, op, a, b, seq);
}

std::vector<std::complex<double>>
Session::runSerialWith(const CkksContext &ctx, RequestOp op,
                       const std::vector<std::complex<double>> &a,
                       const std::vector<std::complex<double>> &b,
                       uint64_t seq) const
{
    Rng rng = requestRng(seq);

    CkksCiphertext ct = ctx.encrypt(sk_, a, rng);
    CkksCiphertext prod;
    if (op == RequestOp::MulPlainRescale) {
        prod = ctx.mulPlain(ct, ctx.encodePlain(b, ct.towers()));
    } else {
        // Both operand ciphertexts draw from the same request
        // stream, in submission order — deterministic either way.
        const CkksCiphertext ct_b = ctx.encrypt(sk_, b, rng);
        prod = ctx.mulCt(ct, ct_b, rk_);
    }
    return ctx.decrypt(sk_, ctx.rescale(prod));
}

void
Session::noteSubmission(SubmitStatus s)
{
    std::lock_guard<std::mutex> lock(acct_mutex_);
    switch (s) {
      case SubmitStatus::Accepted:
        ++acct_.accepted;
        break;
      case SubmitStatus::RejectedFull:
        ++acct_.rejectedFull;
        break;
      case SubmitStatus::RejectedShutdown:
        ++acct_.rejectedShutdown;
        break;
    }
}

void
Session::noteFailed()
{
    std::lock_guard<std::mutex> lock(acct_mutex_);
    ++acct_.failed;
}

void
Session::noteCompleted(size_t chunkRequests,
                       const DeviceStats &chunkDelta)
{
    rpu_assert(chunkRequests >= 1, "empty chunk");
    std::lock_guard<std::mutex> lock(acct_mutex_);
    ++acct_.completed;
    if (chunkRequests > 1)
        ++acct_.coalesced;
    const double share = 1.0 / double(chunkRequests);
    acct_.launchShare += double(chunkDelta.launches) * share;
    acct_.cycleShare += double(chunkDelta.cycleTotal()) * share;
    // The semantic tower-granular counters divide exactly: a chunk
    // holds same-op, same-class requests, so every request performed
    // the same transform/pointwise work.
    acct_.pointwiseMuls += chunkDelta.pointwiseMuls / chunkRequests;
    acct_.forwardTransforms +=
        chunkDelta.forwardTransforms / chunkRequests;
    acct_.inverseTransforms +=
        chunkDelta.inverseTransforms / chunkRequests;
}

TenantAccounting
Session::accounting() const
{
    std::lock_guard<std::mutex> lock(acct_mutex_);
    return acct_;
}

} // namespace serve
} // namespace rpu
