/**
 * @file
 * HeServer: the multi-tenant HE serving front-end.
 *
 * The paper's thesis is that the ring processor pays off when it is
 * kept saturated with polynomial work; the serving layer is where
 * that saturation comes from in a "millions of users" deployment.
 * This front-end stacks three pieces over RpuDevice/RlweEvaluator:
 *
 *  - Admission: a BoundedRequestQueue with per-tenant lanes —
 *    non-blocking submit that rejects with a status under
 *    backpressure or shutdown, round-robin draining with a
 *    per-batch per-tenant cap (the fairness bound).
 *
 *  - Scheduling: dispatcher threads pop batches, group them by
 *    (op, kernel class) and cut each group into chunks of
 *    power-of-two sizes up to maxCoalesce. Every chunk is then
 *    *placed*: a MakespanScheduler routes it to the device of the
 *    RpuTopology minimising the projected contention-aware makespan.
 *    The ServeConfig's SchedulerPolicy stacks three refinements on
 *    that greedy baseline (see scheduler.hh): lookahead books the
 *    whole popped batch's chunks jointly longest-first; split spreads
 *    one chunk's coalesced stage groups across idle devices via
 *    per-stage plans; steal parks placed chunks on per-device pending
 *    lists so an idle dispatcher can re-claim work from the
 *    most-loaded device (bookings moved atomically). Without split, a
 *    chunk whose tiled stages cut into several launch groups still
 *    round-robins them across the least-loaded devices (stagePlan).
 *    A 1-device topology degenerates to the PR 8 single-device path
 *    exactly under every policy (always device 0, uniform plans,
 *    identical launches and ledger). A chunk of compatible
 *    MulPlainRescale requests — typically from *different tenants*,
 *    since each tenant's lane is capped per batch — executes as
 *    three coalesced device dispatches (plaintext Eval entry,
 *    both-component pointwise multiply, dropped-tower inverse), each
 *    split only where the batched-kernel tower budget forces it,
 *    where the uncoalesced path pays five launches per request on a
 *    serial device. Launch-count
 *    reduction is the whole point and is ledger-verified by bench
 *    and tests; results are bit-identical to per-tenant serial
 *    execution because the batched kernels compute each region's
 *    ring independently and all randomness is (tenant, seq)-derived.
 *    Chunks of one, MulCtRescale requests, and coalesce=false all
 *    run the per-request serial reference path (Session::runSerial).
 *
 *  - Accounting: the dispatcher snapshots the topology around every
 *    chunk, aggregates the per-device windows (see
 *    RpuTopology::since/aggregate) and splits the delta across the
 *    chunk's requests into each tenant's ledger (exact with one
 *    dispatcher; documented approximate with several, since windows
 *    then interleave). The same window's busy/staging totals feed
 *    back into the scheduler's cost estimates.
 *
 * Shutdown is a graceful drain: the queue closes (new submits get
 * RejectedShutdown), dispatchers finish everything already admitted
 * — every accepted future resolves — then exit.
 */

#ifndef RPU_SERVE_SERVER_HH
#define RPU_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hh"
#include "serve/scheduler.hh"
#include "serve/session.hh"

namespace rpu {

class RpuDevice;
class RpuTopology;

namespace serve {

/** Serving knobs; the defaults suit the bench's request sizes. */
struct ServeConfig
{
    size_t queueCapacity = 256; ///< admission bound (backpressure)
    size_t maxBatch = 16;       ///< requests popped per dispatch
    size_t maxPerTenant = 4;    ///< per-tenant cap per dispatch (fairness)
    size_t maxCoalesce = 8;     ///< requests per coalesced device chunk
    unsigned dispatchers = 1;   ///< dispatcher threads
    bool coalesce = true;       ///< cross-tenant launch coalescing

    /** Which placement policies stack on the greedy baseline (all on
     *  by default; SchedulerPolicy::greedy() is the PR 9 behaviour).
     *  Irrelevant to host-only servers. See scheduler.hh. */
    SchedulerPolicy policy;

    /** Don't start dispatchers in the constructor; the first start()
     *  (or shutdown(), which drains) does. Lets tests and ledger
     *  harnesses queue a known request set before any dispatch, so
     *  batch composition is deterministic. */
    bool startPaused = false;
};

/** Server-wide counters (per-tenant ones live in each Session). */
struct ServerStats
{
    uint64_t accepted = 0;
    uint64_t rejectedFull = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t dispatches = 0;        ///< batches popped
    uint64_t chunks = 0;            ///< device chunks executed
    uint64_t coalescedChunks = 0;   ///< chunks with > 1 request
    uint64_t coalescedRequests = 0; ///< requests inside those
    uint64_t splitChunks = 0;       ///< chunks whose stages spread devices
    uint64_t stolenChunks = 0;      ///< chunks re-claimed by idle dispatchers
};

/** What submit() hands back. */
struct Submission
{
    SubmitStatus status = SubmitStatus::RejectedShutdown;
    /** Valid only when status == Accepted (a rejected request's
     *  promise is destroyed with it; don't wait on this then). */
    std::future<ServeResponse> response;
};

/** See the file comment. */
class HeServer
{
  public:
    /** Single-device server: wraps @p device (may be null for
     *  host-only execution) into a degenerate 1-device topology. */
    HeServer(const ServeConfig &cfg, std::shared_ptr<RpuDevice> device);

    /** Device-set server: chunks place across @p topology's devices
     *  via the makespan scheduler. Tenants' sessions attach device 0;
     *  other devices execute through shared per-(kernel class,
     *  device) execution contexts. */
    HeServer(const ServeConfig &cfg,
             std::shared_ptr<RpuTopology> topology);

    ~HeServer(); ///< graceful shutdown() if still running

    const ServeConfig &config() const { return cfg_; }

    /** Device 0 of the topology (null for host-only servers). */
    std::shared_ptr<RpuDevice> device() const { return device_; }

    /** The device set (null for host-only servers). */
    const std::shared_ptr<RpuTopology> &topology() const
    {
        return topology_;
    }

    /** The placement scheduler (null for host-only servers). Exposed
     *  for drain control (pause/resume) and load inspection. */
    MakespanScheduler *scheduler() const { return scheduler_.get(); }

    /** Open a tenant session (id must be unused). Thread-safe. */
    Session &addTenant(const TenantConfig &cfg);

    /** The tenant's session, or null. */
    Session *tenant(uint64_t id) const;

    /**
     * Submit one request: assigns the tenant's next seq, stamps the
     * arrival time, and offers it to the queue. Non-blocking — a
     * full queue rejects immediately (open-loop generators depend on
     * this). Thread-safe from any number of producers.
     */
    Submission submit(uint64_t tenant, RequestOp op,
                      std::vector<std::complex<double>> a,
                      std::vector<std::complex<double>> b);

    /**
     * Pre-generate the kernels every serving path launches (single
     * and coalesced shapes for each tenant kernel class), so first
     * requests don't pay codegen+scheduling latency. Optional —
     * kernels generate on demand otherwise — but benches call it to
     * keep tail latencies about serving, not warmup.
     */
    void prewarm();

    /** Start the dispatchers (no-op when already running). Only
     *  needed after constructing with startPaused. */
    void start();

    /**
     * Graceful drain: close the queue (new submits rejected), let
     * dispatchers finish every admitted request — all accepted
     * futures resolve — then join them (a paused server is started
     * first, so queued work still drains). Idempotent; also run by
     * the destructor.
     */
    void shutdown();

    ServerStats stats() const;

  private:
    /** One cut chunk on its way to a device: what the dispatcher
     *  executes directly, or — under the steal policy — what sits on
     *  a device's pending list until its placement device's
     *  dispatcher (or an idle thief) claims it. */
    struct PendingChunk
    {
        std::vector<ServeRequest> chunk;
        MakespanScheduler::Placement placement;
        bool placed = false; ///< placement pre-booked by the batch placer
        uint64_t dispatchIndex = 0;
        std::chrono::steady_clock::time_point popped;
        uint64_t ordinal = 0; ///< global FIFO order across devices
    };

    void dispatchLoop();

    /** Group, cut, place, and execute (or enqueue) one popped batch. */
    void dispatchBatch(std::vector<ServeRequest> batch);

    /** Execute queued pending chunks in global FIFO order until the
     *  pending lists are empty. */
    void drainPending();

    /** Steal policy: claim the oldest booked-but-unstarted chunk from
     *  the most-loaded device's pending list, re-place it on the best
     *  device, and execute it. Returns false when nothing is pending. */
    bool stealOne();

    /** Execute one same-(op, class) chunk and fulfil its promises. */
    void executeChunk(PendingChunk pc);

    /** The three-launch coalesced MulPlainRescale pipeline, each
     *  stage sharded across the topology per @p placement (whose
     *  bookings splitPlans may re-shape under the split policy). */
    void coalescedMulPlain(MakespanScheduler::Placement &placement,
                           std::vector<ServeRequest> &chunk,
                           std::vector<Session *> &sessions,
                           std::vector<ServeResponse> &responses);

    /**
     * Execution context for running @p sess's requests on topology
     * device @p device: the session's own context for device 0, a
     * lazily-built same-parameter-set replica (shared per kernel
     * class — keys stay the session's) attached to the device
     * otherwise. See Session::runSerialWith.
     */
    const CkksContext &execContext(const Session &sess, size_t device);

    ServeConfig cfg_;
    std::shared_ptr<RpuTopology> topology_;
    std::unique_ptr<MakespanScheduler> scheduler_;
    std::shared_ptr<RpuDevice> device_; ///< topology device 0
    BoundedRequestQueue queue_;

    std::mutex exec_ctx_mutex_;
    /** (kernel class, device index) -> execution context. */
    std::map<std::string, std::unique_ptr<CkksContext>> exec_ctx_;

    mutable std::mutex sessions_mutex_;
    std::vector<std::unique_ptr<Session>> sessions_;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_full_{0};
    std::atomic<uint64_t> rejected_shutdown_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> dispatches_{0};
    std::atomic<uint64_t> chunks_{0};
    std::atomic<uint64_t> coalesced_chunks_{0};
    std::atomic<uint64_t> coalesced_requests_{0};
    std::atomic<uint64_t> split_chunks_{0};
    std::atomic<uint64_t> stolen_chunks_{0};

    /** Steal-policy state: per-device lists of placed-but-unstarted
     *  chunks, claimed under pending_mutex_ (by the placing
     *  dispatcher in ordinal order, or by an idle thief from the
     *  most-loaded device). Untouched when the steal policy is off. */
    std::mutex pending_mutex_;
    std::vector<std::deque<PendingChunk>> pending_;
    uint64_t next_ordinal_ = 0;

    std::mutex shutdown_mutex_; ///< guards started_/shut_down_/threads
    bool started_ = false;
    bool shut_down_ = false;

    std::vector<std::thread> dispatchers_;
};

} // namespace serve
} // namespace rpu

#endif // RPU_SERVE_SERVER_HH
