/**
 * @file
 * Greedy hardware-aware list scheduler (paper section V: "we used a
 * greedy instruction scheduler to detect any easily-achieved low-level
 * optimization, further reducing the overall cycle count").
 *
 * Builds the full dependence graph (register RAW/WAR/WAW across all
 * four register files, plus VDM memory dependences) and re-orders the
 * program by critical-path priority, interleaving independent work so
 * the in-order front-end and busyboard rarely stall.
 *
 * Memory-dependence contract: vector loads/stores are compared by
 * (ARF base register, word-offset interval). Accesses through
 * *different* ARF base registers are assumed disjoint — the kernel
 * builder guarantees this by construction (data and twiddle-plan
 * regions do not overlap). ALOAD redefinitions are ordered through
 * ordinary register dependences.
 */

#ifndef RPU_CODEGEN_SCHEDULER_HH
#define RPU_CODEGEN_SCHEDULER_HH

#include "isa/program.hh"
#include "sim/arch_config.hh"

namespace rpu {

/**
 * Return a semantics-preserving reordering of @p prog optimised for
 * design point @p cfg.
 */
Program scheduleProgram(const Program &prog, const RpuConfig &cfg);

} // namespace rpu

#endif // RPU_CODEGEN_SCHEDULER_HH
