/**
 * @file
 * The common launch state shared by every generated B512 kernel.
 *
 * A KernelImage is everything the host needs to launch a program on
 * an execution backend: the program itself, the SDM constant image,
 * the precomputed twiddle-plan vectors, the named data regions the
 * launch code stages host polynomials into (the paper's section V
 * "launch code" that converts host data structures into
 * scratchpad-based data structures), and the VDM capacity floor.
 *
 * The image also carries a semantic descriptor (kind + per-tower
 * moduli) so backends that do not execute B512 programs — e.g. the
 * CPU reference baseline — can compute the same function and be
 * checked bit-for-bit against the functional simulator.
 */

#ifndef RPU_CODEGEN_KERNEL_IMAGE_HH
#define RPU_CODEGEN_KERNEL_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh" // u128
#include "isa/program.hh"

namespace rpu {

/** What a generated kernel computes (per staged region). */
enum class KernelKind
{
    ForwardNtt,         ///< data <- NTT(data)
    InverseNtt,         ///< data <- INTT(data)
    PolyMul,            ///< a <- INTT(NTT(a) .* NTT(b))
    BatchedForwardNtt,  ///< t.data <- NTT_t(t.data) for every tower
    BatchedPolyMul,     ///< t.a <- INTT_t(NTT_t(t.a) .* NTT_t(t.b))
    BatchedInverseNtt,  ///< t.data <- INTT_t(t.data) for every tower
    PointwiseMul,       ///< a <- a .* b (evaluation-domain operands)
    PointwiseMulBatched, ///< t.a <- t.a .* t.b for every tower
    kCount, ///< sentinel: number of kinds (keep last)
};

/** A named VDM window the launch code stages host data through. */
struct DataRegion
{
    std::string name;    ///< e.g. "data", "a", "b", "t2.a"
    uint64_t base = 0;   ///< VDM word address
    uint64_t words = 0;  ///< region length in words
    bool input = false;  ///< staged from the host before the launch
    bool output = false; ///< dumped back to the host afterwards
};

/** A generated kernel plus everything needed to launch it. */
struct KernelImage
{
    Program program;
    KernelKind kind = KernelKind::ForwardNtt;
    uint64_t n = 0;            ///< ring dimension (shared by all towers)
    std::vector<u128> moduli;  ///< one working modulus per tower

    /** Host-visible data windows, in staging order. */
    std::vector<DataRegion> regions;

    /** Twiddle-plan vectors occupy [twPlanBase, ...). */
    uint64_t twPlanBase = 0;
    std::vector<u128> twPlanImage;

    /** SDM constants (dense from word 0). */
    std::vector<u128> sdmImage;

    /** Minimum VDM capacity the kernel needs, in bytes. */
    size_t vdmBytesRequired = 0;

    /**
     * Modelled cycles of one launch at the design point the program
     * was generated for. Zero until a launch layer that accounts for
     * device-time (RpuDevice) cycle-simulates the program; the
     * generators themselves never run the cycle model.
     */
    uint64_t modelCycles = 0;

    std::vector<const DataRegion *>
    inputRegions() const
    {
        std::vector<const DataRegion *> v;
        for (const auto &r : regions) {
            if (r.input)
                v.push_back(&r);
        }
        return v;
    }

    std::vector<const DataRegion *>
    outputRegions() const
    {
        std::vector<const DataRegion *> v;
        for (const auto &r : regions) {
            if (r.output)
                v.push_back(&r);
        }
        return v;
    }
};

} // namespace rpu

#endif // RPU_CODEGEN_KERNEL_IMAGE_HH
