#include "codegen/ntt_codegen.hh"

#include <algorithm>

#include "codegen/builder.hh"
#include "codegen/scheduler.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

namespace {

constexpr unsigned VL = arch::kVectorLength;

/** One rectangle pass over vertical (whole-register) stages. */
struct VerticalPassPlan
{
    unsigned startStage;
    unsigned depth;
};

struct KernelPlan
{
    std::vector<VerticalPassPlan> verticalPasses;
    unsigned finalVerticalStages; ///< vertical stages folded into the
                                  ///< final (intra) pass
};

/** Rectangle decomposition of the log2(V) vertical stages. */
KernelPlan
planPasses(uint64_t vregs)
{
    const unsigned log_v = log2Floor(vregs);
    KernelPlan plan;
    plan.finalVerticalStages = std::min(3u, log_v);
    unsigned remaining = log_v - plan.finalVerticalStages;
    unsigned stage = 0;
    while (remaining > 0) {
        // Depth 4 keeps each group at 16 registers; the group step
        // must stay >= 1 (depth <= log2(first stage's register gap)+1).
        const unsigned gv0 = unsigned(vregs) >> (stage + 1);
        const unsigned max_depth = log2Floor(gv0) + 1;
        const unsigned d = std::min({4u, remaining, max_depth});
        plan.verticalPasses.push_back({stage, d});
        stage += d;
        remaining -= d;
    }
    return plan;
}

/** Generator state shared by the pass emitters. */
class NttGenerator
{
  public:
    NttGenerator(const TwiddleTable &tw, KernelBuilder &builder,
                 bool inverse)
        : tw_(tw), b_(builder), inverse_(inverse),
          vregs_(tw.n() / VL), log_v_(log2Floor(tw.n() / VL))
    {
    }

    void
    emitForward(const KernelPlan &plan)
    {
        for (const auto &pass : plan.verticalPasses)
            verticalPass(pass.startStage, pass.depth, false);
        finalPass(plan.finalVerticalStages, false);
    }

    void
    emitInverse(const KernelPlan &plan)
    {
        // Exact mirror: the final (intra) pass runs first, then the
        // vertical rectangles in reverse. The n^-1 scaling folds into
        // whichever pass touches the data last.
        const bool only_pass = plan.verticalPasses.empty();
        finalPass(plan.finalVerticalStages, only_pass);
        for (size_t p = plan.verticalPasses.size(); p-- > 0;) {
            const auto &pass = plan.verticalPasses[p];
            verticalPass(pass.startStage, pass.depth, p == 0);
        }
    }

  private:
    /** Twiddle pattern for one butterfly, validated by the oracle. */
    std::vector<u128>
    twiddlePattern(unsigned stage, unsigned va, unsigned vb) const
    {
        return inverse_
                   ? b_.oracle().inverseButterflyTwiddles(tw_, stage, va, vb)
                   : b_.oracle().butterflyTwiddles(tw_, stage, va, vb);
    }

    /** Butterfly (direction-appropriate) with oracle-derived twiddles. */
    void
    emitStageButterfly(unsigned stage, unsigned sum_out, unsigned diff_out,
                       unsigned va, unsigned vb)
    {
        const auto pattern = twiddlePattern(stage, va, vb);
        const TwiddleRef tw = b_.twiddleReg(pattern);
        if (inverse_)
            b_.emitInverseButterfly(sum_out, diff_out, va, vb, tw.reg);
        else
            b_.emitButterfly(sum_out, diff_out, va, vb, tw.reg);
        b_.releaseTwiddle(tw);
    }

    /**
     * One rectangle pass: load a closed register group, run @p depth
     * whole-register stages in place, store. @p scale_at_end applies
     * the inverse transform's n^-1 before the stores.
     */
    void
    verticalPass(unsigned start_stage, unsigned depth, bool scale_at_end)
    {
        const unsigned gv0 = unsigned(vregs_) >> (start_stage + 1);
        const unsigned gstep = gv0 >> (depth - 1);
        rpu_assert(gstep >= 1, "rectangle depth exceeds stage gap");
        const unsigned group = 1u << depth;
        const unsigned window = 2 * gv0;

        for (unsigned base = 0; base < vregs_; base += window) {
            for (unsigned j0 = 0; j0 < gstep; ++j0) {
                std::vector<unsigned> regs(group);
                for (unsigned k = 0; k < group; ++k) {
                    regs[k] = b_.allocReg();
                    b_.emitDataLoad(regs[k],
                                    base + j0 + k * gstep);
                }
                if (!inverse_) {
                    for (unsigned e = 0; e < depth; ++e)
                        groupStage(regs, start_stage, depth, e);
                } else {
                    for (unsigned e = depth; e-- > 0;)
                        groupStage(regs, start_stage, depth, e);
                }
                for (unsigned k = 0; k < group; ++k) {
                    if (scale_at_end)
                        b_.emitScaleByNinv(regs[k]);
                    b_.emitDataStore(regs[k]);
                    b_.freeReg(regs[k]);
                }
            }
        }
    }

    /** All butterflies of stage (start_stage + e) inside one group. */
    void
    groupStage(std::vector<unsigned> &regs, unsigned start_stage,
               unsigned depth, unsigned e)
    {
        const unsigned stage = start_stage + e;
        const unsigned delta = 1u << (depth - 1 - e);
        for (unsigned k = 0; k < regs.size(); ++k) {
            if ((k / delta) % 2 != 0)
                continue;
            // In place: sum overwrites the low partner, difference the
            // high partner, exactly like the scalar in-place NTT.
            emitStageButterfly(stage, regs[k], regs[k + delta], regs[k],
                               regs[k + delta]);
        }
    }

    /**
     * The final pass: groups of 2^F consecutive registers run the last
     * F vertical stages plus all nine intra-register stages per pair.
     */
    void
    finalPass(unsigned f_stages, bool scale_at_end)
    {
        const unsigned group = 1u << f_stages;
        const unsigned s0 = log_v_ - f_stages;

        for (unsigned base = 0; base < vregs_; base += group) {
            std::vector<unsigned> regs(group);
            for (unsigned k = 0; k < group; ++k) {
                regs[k] = b_.allocReg();
                b_.emitDataLoad(regs[k], base + k);
            }

            if (!inverse_) {
                for (unsigned e = 0; e < f_stages; ++e)
                    groupStage(regs, s0, f_stages, e);
                for (unsigned u = 0; u < group; u += 2)
                    intraForwardPair(regs[u], regs[u + 1]);
                // intraForwardPair stores and frees its registers.
            } else {
                for (unsigned u = 0; u < group; u += 2)
                    intraInversePair(regs[u], regs[u + 1]);
                for (unsigned e = f_stages; e-- > 0;)
                    groupStage(regs, s0, f_stages, e);
                for (unsigned k = 0; k < group; ++k) {
                    if (scale_at_end)
                        b_.emitScaleByNinv(regs[k]);
                    b_.emitDataStore(regs[k]);
                    b_.freeReg(regs[k]);
                }
            }
        }
    }

    /**
     * Nine constant-geometry stages on one 1024-element block held in
     * registers (A, B), ending with the layout-restoring unpack and
     * contiguous stores.
     */
    void
    intraForwardPair(unsigned a, unsigned b)
    {
        for (unsigned d = 0; d < 9; ++d) {
            const unsigned stage = log_v_ + d;
            const unsigned x = b_.allocReg();
            b_.emitShuffle(Opcode::UNPKLO, x, a, b);
            const unsigned y = b_.allocReg();
            b_.emitShuffle(Opcode::UNPKHI, y, a, b);
            b_.freeReg(a);
            b_.freeReg(b);
            const unsigned p = b_.allocReg();
            const unsigned q = b_.allocReg();
            emitStageButterfly(stage, p, q, x, y);
            b_.freeReg(x);
            b_.freeReg(y);
            a = p;
            b = q;
        }
        const unsigned x = b_.allocReg();
        b_.emitShuffle(Opcode::UNPKLO, x, a, b);
        const unsigned y = b_.allocReg();
        b_.emitShuffle(Opcode::UNPKHI, y, a, b);
        b_.freeReg(a);
        b_.freeReg(b);
        b_.emitDataStore(x);
        b_.freeReg(x);
        b_.emitDataStore(y);
        b_.freeReg(y);
    }

    /**
     * Mirror of intraForwardPair. On return the pair registers are
     * replaced in place (caller's reg array stays valid) holding the
     * natural pre-intra layout.
     */
    void
    intraInversePair(unsigned &a_ref, unsigned &b_ref)
    {
        unsigned a = a_ref, b = b_ref;
        // Undo the forward pass's final unpack.
        unsigned x = b_.allocReg();
        b_.emitShuffle(Opcode::PKLO, x, a, b);
        unsigned y = b_.allocReg();
        b_.emitShuffle(Opcode::PKHI, y, a, b);
        b_.freeReg(a);
        b_.freeReg(b);

        for (unsigned d = 9; d-- > 0;) {
            const unsigned stage = log_v_ + d;
            const unsigned p = b_.allocReg();
            const unsigned q = b_.allocReg();
            emitStageButterfly(stage, p, q, x, y);
            b_.freeReg(x);
            b_.freeReg(y);
            // Undo this stage's forward unpack.
            x = b_.allocReg();
            b_.emitShuffle(Opcode::PKLO, x, p, q);
            y = b_.allocReg();
            b_.emitShuffle(Opcode::PKHI, y, p, q);
            b_.freeReg(p);
            b_.freeReg(q);
        }
        a_ref = x;
        b_ref = y;
    }

    const TwiddleTable &tw_;
    KernelBuilder &b_;
    bool inverse_;
    uint64_t vregs_;
    unsigned log_v_;
};

} // namespace

namespace {

/** Shared size validation. */
void
checkRingSize(uint64_t n)
{
    if (n < 2 * VL || !isPow2(n))
        rpu_fatal("NTT codegen requires a power-of-two n >= %u, got %llu",
                  2 * VL, (unsigned long long)n);
}

/**
 * Shared epilogue: collect the builder's memory images, size the VDM,
 * schedule (optimized) and name the program.
 */
void
finalizeImage(KernelImage &image, KernelBuilder &builder,
              const NttCodegenOptions &opts, const std::string &name)
{
    image.twPlanBase = builder.twPlanBase();
    image.twPlanImage = builder.twPlanImage();
    image.sdmImage = builder.sdmImage();

    const size_t words = image.twPlanBase + image.twPlanImage.size();
    image.vdmBytesRequired =
        std::max<size_t>(words * arch::kWordBytes, arch::kVdmDefaultBytes);
    if (image.vdmBytesRequired > arch::kVdmMaxBytes)
        rpu_fatal("kernel '%s' needs %zu bytes of VDM, above the 32 MiB "
                  "limit",
                  name.c_str(), image.vdmBytesRequired);

    if (opts.optimized) {
        image.program =
            scheduleProgram(builder.program(), opts.scheduleConfig);
    } else {
        image.program = std::move(builder.program());
    }
    image.program.setName(name);
}

} // namespace

NttKernel
generateNttKernel(const TwiddleTable &tw, const NttCodegenOptions &opts)
{
    const uint64_t n = tw.n();
    checkRingSize(n);

    KernelBuilder builder(tw, opts.optimized, 0, opts.twiddleCompose);
    builder.emitPrologue(opts.inverse);

    const KernelPlan plan = planPasses(n / VL);
    NttGenerator gen(tw, builder, opts.inverse);
    if (opts.inverse)
        gen.emitInverse(plan);
    else
        gen.emitForward(plan);

    NttKernel kernel;
    kernel.kind =
        opts.inverse ? KernelKind::InverseNtt : KernelKind::ForwardNtt;
    kernel.n = n;
    kernel.modulus = tw.modulus().value();
    kernel.moduli = {kernel.modulus};
    kernel.inverse = opts.inverse;
    kernel.optimized = opts.optimized;
    kernel.dataBase = builder.dataBase();
    kernel.regions = {{"data", kernel.dataBase, n, true, true}};

    const std::string name = (opts.inverse ? "intt" : "ntt") +
                             std::to_string(n) +
                             (opts.optimized ? "_opt" : "_naive");
    finalizeImage(kernel, builder, opts, name);
    return kernel;
}

PolyMulKernel
generatePolyMulKernel(const TwiddleTable &tw,
                      const NttCodegenOptions &opts)
{
    const uint64_t n = tw.n();
    checkRingSize(n);
    if (opts.inverse)
        rpu_fatal("a polymul kernel has no inverse variant");

    // Regions: a at [0, n), b at [n, 2n), twiddle plan after both.
    constexpr unsigned kBAreg = 4;
    PolyMulKernel kernel;
    kernel.kind = KernelKind::PolyMul;
    kernel.n = n;
    kernel.modulus = tw.modulus().value();
    kernel.moduli = {kernel.modulus};
    kernel.optimized = opts.optimized;
    kernel.aBase = 0;
    kernel.bBase = n;
    kernel.regions = {{"a", kernel.aBase, n, true, true},
                      {"b", kernel.bBase, n, true, false}};

    KernelBuilder builder(tw, opts.optimized, 2 * n,
                          opts.twiddleCompose);
    builder.emitPrologue(true); // the inverse phase scales by n^-1
    const KernelPlan plan = planPasses(n / VL);

    // Forward transform of region a (through a0).
    {
        NttGenerator gen(tw, builder, false);
        gen.emitForward(plan);
    }
    // Forward transform of region b (through its own ARF base so the
    // scheduler can interleave both transforms).
    builder.beginDataRegion(kBAreg, n);
    {
        NttGenerator gen(tw, builder, false);
        gen.emitForward(plan);
    }

    // Dyadic product into region a.
    for (uint32_t j = 0; j < n / VL; ++j) {
        const unsigned xa = builder.allocReg();
        builder.emitRegionLoad(xa, KernelBuilder::kDataAreg, j);
        const unsigned xb = builder.allocReg();
        builder.emitRegionLoad(xb, kBAreg, j);
        builder.emitPointwiseMul(xa, xa, xb);
        builder.freeReg(xb);
        builder.emitRegionStore(xa, KernelBuilder::kDataAreg);
        builder.freeReg(xa);
    }

    // Inverse transform of the product (back through a0's region).
    builder.beginDataRegion(KernelBuilder::kDataAreg, 0);
    {
        NttGenerator gen(tw, builder, true);
        gen.emitInverse(plan);
    }

    finalizeImage(kernel, builder, opts,
                  "polymul" + std::to_string(n) +
                      (opts.optimized ? "_opt" : "_naive"));
    return kernel;
}

BatchedNttKernel
generateBatchedNtt(const std::vector<const TwiddleTable *> &towers,
                   const NttCodegenOptions &opts)
{
    rpu_assert(!towers.empty(), "no towers");
    const uint64_t n = towers[0]->n();
    checkRingSize(n);
    for (const auto *t : towers) {
        if (t->n() != n)
            rpu_fatal("all towers must share the ring dimension");
    }
    // Register budget: modulus registers m1.., n^-1 scalars s2..
    // (inverse only), and data ARFs a0,a4,a5..
    if (towers.size() > 16)
        rpu_fatal("batched kernel supports at most 16 towers");

    BatchedNttKernel kernel;
    kernel.kind = opts.inverse ? KernelKind::BatchedInverseNtt
                               : KernelKind::BatchedForwardNtt;
    kernel.n = n;

    KernelBuilder builder(*towers[0], opts.optimized,
                          towers.size() * n, opts.twiddleCompose);
    builder.emitPrologue(opts.inverse);
    const KernelPlan plan = planPasses(n / VL);

    for (size_t t = 0; t < towers.size(); ++t) {
        kernel.moduli.push_back(towers[t]->modulus().value());
        kernel.dataBases.push_back(t * n);
        kernel.regions.push_back(
            {"t" + std::to_string(t), t * n, n, true, true});
        if (t > 0) {
            // Per-tower modulus register and data region: towers are
            // fully independent, so the scheduler interleaves them.
            builder.beginTower(towers[t]->modulus().value(),
                               unsigned(1 + t));
            if (opts.inverse)
                builder.beginTowerNinv(towers[t]->nInv(),
                                       unsigned(2 + t));
            builder.beginDataRegion(unsigned(4 + (t - 1)), t * n);
        }
        NttGenerator gen(*towers[t], builder, opts.inverse);
        if (opts.inverse)
            gen.emitInverse(plan);
        else
            gen.emitForward(plan);
    }

    finalizeImage(kernel, builder, opts,
                  std::string("batched_") +
                      (opts.inverse ? "intt" : "ntt") +
                      std::to_string(n) + "x" +
                      std::to_string(towers.size()));
    return kernel;
}

BatchedNttKernel
generateBatchedForwardNtt(const std::vector<const TwiddleTable *> &towers,
                          const NttCodegenOptions &opts)
{
    if (opts.inverse)
        rpu_fatal("use generateBatchedNtt for the inverse direction");
    return generateBatchedNtt(towers, opts);
}

KernelImage
generateBatchedPolyMul(const std::vector<const TwiddleTable *> &towers,
                       const NttCodegenOptions &opts)
{
    rpu_assert(!towers.empty(), "no towers");
    const uint64_t n = towers[0]->n();
    checkRingSize(n);
    for (const auto *t : towers) {
        if (t->n() != n)
            rpu_fatal("all towers must share the ring dimension");
    }
    // Register budget: modulus registers m1.., n^-1 scalars s2.., and
    // two data ARFs per tower starting at a0/a4.
    if (towers.size() > 16)
        rpu_fatal("batched polymul supports at most 16 towers");
    if (opts.inverse)
        rpu_fatal("a polymul kernel has no inverse variant");

    KernelImage kernel;
    kernel.kind = KernelKind::BatchedPolyMul;
    kernel.n = n;

    // Tower t's operands: a at [2tn, 2tn + n), b right behind it.
    // ARF conventions mirror the single-ring polymul (a0/a4 for tower
    // 0) and extend pairwise for the rest.
    const auto a_areg = [](size_t t) {
        return t == 0 ? unsigned(KernelBuilder::kDataAreg)
                      : unsigned(3 + 2 * t);
    };
    const auto b_areg = [](size_t t) { return unsigned(4 + 2 * t); };

    KernelBuilder builder(*towers[0], opts.optimized,
                          2 * towers.size() * n, opts.twiddleCompose);
    builder.emitPrologue(true); // tower 0's inverse phase scales by n^-1
    const KernelPlan plan = planPasses(n / VL);

    for (size_t t = 0; t < towers.size(); ++t) {
        const uint64_t a_base = 2 * t * n;
        const uint64_t b_base = a_base + n;
        kernel.moduli.push_back(towers[t]->modulus().value());
        kernel.regions.push_back(
            {"t" + std::to_string(t) + ".a", a_base, n, true, true});
        kernel.regions.push_back(
            {"t" + std::to_string(t) + ".b", b_base, n, true, false});

        if (t > 0) {
            builder.beginTower(towers[t]->modulus().value(),
                               unsigned(1 + t));
            builder.beginTowerNinv(towers[t]->nInv(), unsigned(2 + t));
        }

        // Forward transform of both operands, each through its own
        // ARF base so the scheduler can interleave them.
        builder.beginDataRegion(a_areg(t), a_base);
        {
            NttGenerator gen(*towers[t], builder, false);
            gen.emitForward(plan);
        }
        builder.beginDataRegion(b_areg(t), b_base);
        {
            NttGenerator gen(*towers[t], builder, false);
            gen.emitForward(plan);
        }

        // Dyadic product into region a.
        for (uint32_t j = 0; j < n / VL; ++j) {
            const unsigned xa = builder.allocReg();
            builder.emitRegionLoad(xa, a_areg(t), j);
            const unsigned xb = builder.allocReg();
            builder.emitRegionLoad(xb, b_areg(t), j);
            builder.emitPointwiseMul(xa, xa, xb);
            builder.freeReg(xb);
            builder.emitRegionStore(xa, a_areg(t));
            builder.freeReg(xa);
        }

        // Inverse transform of the product, back in region a.
        builder.beginDataRegion(a_areg(t), a_base);
        {
            NttGenerator gen(*towers[t], builder, true);
            gen.emitInverse(plan);
        }
    }

    finalizeImage(kernel, builder, opts,
                  "batched_polymul" + std::to_string(n) + "x" +
                      std::to_string(towers.size()));
    return kernel;
}

namespace {

/**
 * Shared emission for the pointwise kernels: one load/load/VMULMOD/
 * store quartet per vector register of the ring, reading regions
 * through @p a_areg / @p b_areg. The builder's current tower modulus
 * register supplies the Montgomery reduction; there are no butterfly
 * stages, twiddles, or n^-1 scalars anywhere in the program.
 */
void
emitPointwiseRegion(KernelBuilder &builder, uint64_t n, unsigned a_areg,
                    unsigned b_areg)
{
    for (uint32_t j = 0; j < n / VL; ++j) {
        const unsigned xa = builder.allocReg();
        builder.emitRegionLoad(xa, a_areg, j);
        const unsigned xb = builder.allocReg();
        builder.emitRegionLoad(xb, b_areg, j);
        builder.emitPointwiseMul(xa, xa, xb);
        builder.freeReg(xb);
        builder.emitRegionStore(xa, a_areg);
        builder.freeReg(xa);
    }
}

} // namespace

PointwiseMulKernel
generatePointwiseMulKernel(const TwiddleTable &tw,
                           const NttCodegenOptions &opts)
{
    const uint64_t n = tw.n();
    checkRingSize(n);
    if (opts.inverse)
        rpu_fatal("a pointwise kernel has no inverse variant");

    // Regions mirror the fused polymul: a at [0, n), b at [n, 2n).
    constexpr unsigned kBAreg = 4;
    PointwiseMulKernel kernel;
    kernel.kind = KernelKind::PointwiseMul;
    kernel.n = n;
    kernel.modulus = tw.modulus().value();
    kernel.moduli = {kernel.modulus};
    kernel.optimized = opts.optimized;
    kernel.aBase = 0;
    kernel.bBase = n;
    kernel.regions = {{"a", kernel.aBase, n, true, true},
                      {"b", kernel.bBase, n, true, false}};

    KernelBuilder builder(tw, opts.optimized, 2 * n,
                          opts.twiddleCompose);
    builder.emitPrologue(false);
    builder.beginDataRegion(kBAreg, kernel.bBase);
    emitPointwiseRegion(builder, n, KernelBuilder::kDataAreg, kBAreg);

    finalizeImage(kernel, builder, opts,
                  "pointwise" + std::to_string(n) +
                      (opts.optimized ? "_opt" : "_naive"));
    return kernel;
}

KernelImage
generateBatchedPointwiseMul(const std::vector<const TwiddleTable *> &towers,
                            const NttCodegenOptions &opts)
{
    rpu_assert(!towers.empty(), "no towers");
    const uint64_t n = towers[0]->n();
    checkRingSize(n);
    for (const auto *t : towers) {
        if (t->n() != n)
            rpu_fatal("all towers must share the ring dimension");
    }
    if (towers.size() > 16)
        rpu_fatal("batched pointwise supports at most 16 towers");
    if (opts.inverse)
        rpu_fatal("a pointwise kernel has no inverse variant");

    KernelImage kernel;
    kernel.kind = KernelKind::PointwiseMulBatched;
    kernel.n = n;

    // Same layout and ARF conventions as the batched polymul: tower
    // t's operands at [2tn, 2tn + n) and [2tn + n, 2tn + 2n).
    const auto a_areg = [](size_t t) {
        return t == 0 ? unsigned(KernelBuilder::kDataAreg)
                      : unsigned(3 + 2 * t);
    };
    const auto b_areg = [](size_t t) { return unsigned(4 + 2 * t); };

    KernelBuilder builder(*towers[0], opts.optimized,
                          2 * towers.size() * n, opts.twiddleCompose);
    builder.emitPrologue(false);

    for (size_t t = 0; t < towers.size(); ++t) {
        const uint64_t a_base = 2 * t * n;
        const uint64_t b_base = a_base + n;
        kernel.moduli.push_back(towers[t]->modulus().value());
        kernel.regions.push_back(
            {"t" + std::to_string(t) + ".a", a_base, n, true, true});
        kernel.regions.push_back(
            {"t" + std::to_string(t) + ".b", b_base, n, true, false});

        if (t > 0)
            builder.beginTower(towers[t]->modulus().value(),
                               unsigned(1 + t));
        builder.beginDataRegion(a_areg(t), a_base);
        builder.beginDataRegion(b_areg(t), b_base);
        emitPointwiseRegion(builder, n, a_areg(t), b_areg(t));
    }

    finalizeImage(kernel, builder, opts,
                  "batched_pointwise" + std::to_string(n) + "x" +
                      std::to_string(towers.size()));
    return kernel;
}

} // namespace rpu
