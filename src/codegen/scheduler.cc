#include "codegen/scheduler.hh"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "sim/cycle/busyboard.hh"
#include "sim/cycle/pipelines.hh"
#include "sim/functional/executor.hh"

namespace rpu {

namespace {

/** Word-offset interval a vector memory access touches. */
struct MemRange
{
    uint8_t areg;
    uint64_t lo;
    uint64_t hi; ///< inclusive

    bool
    overlaps(const MemRange &o) const
    {
        return areg == o.areg && lo <= o.hi && o.lo <= hi;
    }
};

MemRange
rangeOf(const Instruction &instr)
{
    uint64_t max_off = 0;
    for (unsigned lane = 0; lane < arch::kVectorLength; ++lane) {
        max_off = std::max(max_off,
                           FunctionalSimulator::laneOffset(
                               instr.mode, instr.modeValue, lane));
    }
    return {instr.rm, instr.address, instr.address + max_off};
}

} // namespace

Program
scheduleProgram(const Program &prog, const RpuConfig &cfg)
{
    const size_t n = prog.size();
    std::vector<std::vector<uint32_t>> succs(n);
    std::vector<uint32_t> indegree(n, 0);

    const auto add_edge = [&](uint32_t from, uint32_t to) {
        // Self-dependences (e.g. a butterfly writing one register
        // twice) are intra-instruction and never constrain ordering.
        if (from == to)
            return;
        succs[from].push_back(to);
        ++indegree[to];
    };

    // Register dependences across all four register files.
    constexpr unsigned kClasses = 4;
    constexpr unsigned kRegs = 64;
    std::vector<int64_t> last_write(kClasses * kRegs, -1);
    std::vector<std::vector<uint32_t>> readers_since(kClasses * kRegs);

    // Memory dependences (VDM only; SDM is read-only in kernels).
    std::vector<std::pair<MemRange, uint32_t>> stores, loads;

    for (uint32_t i = 0; i < n; ++i) {
        const Instruction &instr = prog[i];
        const RegUse use = regUses(instr);

        for (unsigned r = 0; r < use.numReads; ++r) {
            const unsigned slot =
                unsigned(use.reads[r].cls) * kRegs + use.reads[r].idx;
            if (last_write[slot] >= 0)
                add_edge(uint32_t(last_write[slot]), i); // RAW
            readers_since[slot].push_back(i);
        }
        for (unsigned w = 0; w < use.numWrites; ++w) {
            const unsigned slot =
                unsigned(use.writes[w].cls) * kRegs + use.writes[w].idx;
            if (last_write[slot] >= 0)
                add_edge(uint32_t(last_write[slot]), i); // WAW
            for (uint32_t reader : readers_since[slot]) {
                if (reader != i)
                    add_edge(reader, i); // WAR
            }
            last_write[slot] = i;
            readers_since[slot].clear();
        }

        if (instr.op == Opcode::VLOAD) {
            const MemRange r = rangeOf(instr);
            for (const auto &[sr, si] : stores) {
                if (r.overlaps(sr))
                    add_edge(si, i);
            }
            loads.emplace_back(r, i);
        } else if (instr.op == Opcode::VSTORE) {
            const MemRange r = rangeOf(instr);
            for (const auto &[sr, si] : stores) {
                if (r.overlaps(sr))
                    add_edge(si, i);
            }
            for (const auto &[lr, li] : loads) {
                if (r.overlaps(lr))
                    add_edge(li, i);
            }
            stores.emplace_back(r, i);
        }
    }

    // Critical-path priorities, weighted by each instruction's
    // occupancy + latency at the target design point. Program order is
    // topological (edges only point forward), so one reverse sweep
    // suffices.
    std::vector<uint64_t> prio(n, 0);
    std::vector<uint64_t> beats(n), latency(n);
    for (size_t i = n; i-- > 0;) {
        beats[i] = instrBeats(prog[i], cfg);
        latency[i] = instrLatency(prog[i], cfg);
        uint64_t best = 0;
        for (uint32_t s : succs[i])
            best = std::max(best, prio[s]);
        prio[i] = best + beats[i] + latency[i];
    }

    // Timing-aware greedy list scheduling. Because the RPU front-end
    // is in-order and stalls whole on a busyboard hit, the emitted
    // ORDER determines performance: an instruction placed before its
    // producer completes stalls everything behind it. We therefore
    // simulate dispatch as we pick: among ready instructions, choose
    // the one whose dependences resolve earliest (ties broken by the
    // longer critical path), and advance a small timing model of the
    // front-end and the three pipelines.
    std::vector<uint64_t> completion(n, 0);
    std::vector<uint32_t> pred_count(indegree); // copy before mutation
    std::vector<uint64_t> dep_ready(n, 0);

    // Ready pool keyed by (dep_ready, -prio, index): cheapest
    // dependence-resolution first. Entries are re-keyed lazily: a
    // stale key only ever *underestimates* dep_ready, so we re-check
    // on pop.
    struct Key
    {
        uint64_t ready;
        uint64_t prio;
        uint32_t idx;

        bool
        operator>(const Key &o) const
        {
            if (ready != o.ready)
                return ready > o.ready;
            if (prio != o.prio)
                return prio < o.prio;
            return idx > o.idx;
        }
    };
    std::priority_queue<Key, std::vector<Key>, std::greater<>> ready;
    for (uint32_t i = 0; i < n; ++i) {
        if (pred_count[i] == 0)
            ready.push({0, prio[i], i});
    }

    uint64_t front_cycle = 0;
    uint64_t pipe_free[3] = {0, 0, 0};

    Program out(prog.name());
    size_t emitted = 0;
    while (!ready.empty()) {
        Key top = ready.top();
        ready.pop();
        if (top.ready < dep_ready[top.idx]) {
            top.ready = dep_ready[top.idx];
            ready.push(top);
            continue;
        }
        const uint32_t i = top.idx;
        out.append(prog[i]);
        ++emitted;

        // Advance the timing model: dispatch stalls until the
        // dependences complete, then the instruction issues when its
        // pipeline frees up.
        const unsigned pipe = unsigned(prog[i].pipeClass());
        const uint64_t dispatch =
            std::max(front_cycle + 1, dep_ready[i]);
        const uint64_t issue = std::max(dispatch, pipe_free[pipe]);
        completion[i] = issue + beats[i] + latency[i];
        pipe_free[pipe] = issue + beats[i];
        front_cycle = dispatch;

        for (uint32_t s : succs[i]) {
            dep_ready[s] = std::max(dep_ready[s], completion[i]);
            if (--pred_count[s] == 0)
                ready.push({dep_ready[s], prio[s], s});
        }
    }
    rpu_assert(emitted == n, "scheduler dropped instructions (%zu of %zu)",
               emitted, n);
    return out;
}

} // namespace rpu
