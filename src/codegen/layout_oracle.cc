#include "codegen/layout_oracle.hh"

#include "common/logging.hh"
#include "sim/functional/executor.hh"

namespace rpu {

namespace {
constexpr unsigned VL = arch::kVectorLength;
} // namespace

void
LayoutOracle::setContiguous(unsigned reg, uint32_t first)
{
    Tags t(VL);
    for (unsigned i = 0; i < VL; ++i)
        t[i] = first + i;
    setTags(reg, std::move(t));
}

void
LayoutOracle::setTags(unsigned reg, Tags tags)
{
    rpu_assert(reg < arch::kNumVregs, "bad register %u", reg);
    rpu_assert(tags.size() == VL, "tag vector must have %u entries", VL);
    for (uint32_t t : tags)
        rpu_assert(t < n_, "position tag %u out of range", t);
    tags_[reg] = std::move(tags);
}

void
LayoutOracle::clear(unsigned reg)
{
    rpu_assert(reg < arch::kNumVregs, "bad register %u", reg);
    tags_[reg].clear();
}

const LayoutOracle::Tags &
LayoutOracle::tags(unsigned reg) const
{
    rpu_assert(reg < arch::kNumVregs, "bad register %u", reg);
    rpu_assert(!tags_[reg].empty(), "register v%u is not layout-tracked",
               reg);
    return tags_[reg];
}

void
LayoutOracle::applyShuffle(Opcode op, unsigned vd, unsigned vs,
                           unsigned vt)
{
    const Tags &s = tags(vs);
    const Tags &t = tags(vt);
    Tags out(VL);
    constexpr unsigned H = VL / 2;
    switch (op) {
      case Opcode::UNPKLO:
        for (unsigned i = 0; i < H; ++i) {
            out[2 * i] = s[i];
            out[2 * i + 1] = t[i];
        }
        break;
      case Opcode::UNPKHI:
        for (unsigned i = 0; i < H; ++i) {
            out[2 * i] = s[H + i];
            out[2 * i + 1] = t[H + i];
        }
        break;
      case Opcode::PKLO:
        for (unsigned i = 0; i < H; ++i) {
            out[i] = s[2 * i];
            out[H + i] = t[2 * i];
        }
        break;
      case Opcode::PKHI:
        for (unsigned i = 0; i < H; ++i) {
            out[i] = s[2 * i + 1];
            out[H + i] = t[2 * i + 1];
        }
        break;
      default:
        rpu_panic("applyShuffle on non-shuffle opcode");
    }
    setTags(vd, std::move(out));
}

void
LayoutOracle::validatePair(unsigned stage, unsigned va, unsigned vb) const
{
    const uint64_t gap = n_ >> (stage + 1);
    rpu_assert(gap >= 1, "stage %u out of range for n=%llu", stage,
               (unsigned long long)n_);
    const Tags &a = tags(va);
    const Tags &b = tags(vb);
    for (unsigned lane = 0; lane < VL; ++lane) {
        const uint64_t pa = a[lane];
        const uint64_t pb = b[lane];
        if (pb != pa + gap || (pa % (2 * gap)) >= gap) {
            rpu_panic("stage %u butterfly pairing broken at lane %u: "
                      "positions %llu / %llu (gap %llu)",
                      stage, lane, (unsigned long long)pa,
                      (unsigned long long)pb, (unsigned long long)gap);
        }
    }
}

std::vector<u128>
LayoutOracle::butterflyTwiddles(const TwiddleTable &tw, unsigned stage,
                                unsigned va, unsigned vb) const
{
    validatePair(stage, va, vb);
    const uint64_t gap = n_ >> (stage + 1);
    const uint64_t m = uint64_t(1) << stage;
    const Tags &a = tags(va);
    std::vector<u128> pattern(VL);
    for (unsigned lane = 0; lane < VL; ++lane) {
        const uint64_t block = a[lane] / (2 * gap);
        pattern[lane] = tw.rootPower(m + block);
    }
    return pattern;
}

std::vector<u128>
LayoutOracle::inverseButterflyTwiddles(const TwiddleTable &tw,
                                       unsigned stage, unsigned va,
                                       unsigned vb) const
{
    validatePair(stage, va, vb);
    const uint64_t gap = n_ >> (stage + 1);
    const uint64_t m = uint64_t(1) << stage;
    const Tags &a = tags(va);
    std::vector<u128> pattern(VL);
    for (unsigned lane = 0; lane < VL; ++lane) {
        const uint64_t block = a[lane] / (2 * gap);
        pattern[lane] = tw.invRootPower(m + block);
    }
    return pattern;
}

void
LayoutOracle::checkStore(unsigned reg, uint64_t word_offset_from_data,
                         AddrMode mode, unsigned mode_value) const
{
    const Tags &t = tags(reg);
    for (unsigned lane = 0; lane < VL; ++lane) {
        const uint64_t addr =
            word_offset_from_data +
            FunctionalSimulator::laneOffset(mode, mode_value, lane);
        if (addr != t[lane]) {
            rpu_panic("store misplacement: lane %u holds position %u but "
                      "writes word %llu",
                      lane, t[lane], (unsigned long long)addr);
        }
    }
}

} // namespace rpu
