/**
 * @file
 * The NTT code generator: our from-scratch substitute for the paper's
 * SPIRAL backend (section V).
 *
 * Algorithm family: the Pease / Korn-Lambiotte constant-geometry
 * vector NTT the paper cites, specialised to B512:
 *
 *  - Stages whose butterfly gap is >= 512 pair whole vector registers
 *    and run in place with broadcast scalar twiddles. They are blocked
 *    into "rectangles": closed register groups that run several stages
 *    per VDM round trip (the paper's rectangle decomposition).
 *  - The last nine stages (gap <= 256) run on register pairs in
 *    constant-geometry form: each stage is two UNPK shuffles plus one
 *    fused butterfly with a per-lane twiddle vector; the final
 *    interleave restores natural in-place layout for contiguous
 *    stores.
 *
 * Every butterfly is validated and its twiddle pattern derived by the
 * LayoutOracle, so the generator cannot silently produce wrong code.
 *
 * The forward transform consumes natural order and produces the
 * bit-reversed order of the reference NttContext; the inverse (a
 * Gentleman-Sande mirror with composed inverse butterflies and a
 * final n^-1 scaling) consumes bit-reversed and produces natural.
 */

#ifndef RPU_CODEGEN_NTT_CODEGEN_HH
#define RPU_CODEGEN_NTT_CODEGEN_HH

#include <cstdint>
#include <vector>

#include "codegen/kernel_image.hh"
#include "poly/twiddle.hh"
#include "sim/arch_config.hh"

namespace rpu {

/** Code-generation options (the Fig. 6 axis is `optimized`). */
struct NttCodegenOptions
{
    bool inverse = false;

    /**
     * Optimized: FIFO register rotation, broadcast caching, and
     * hardware-aware list scheduling. Unoptimized: LIFO register
     * recycling, no caching, program order as emitted.
     */
    bool optimized = true;

    /**
     * Materialise patterned twiddle vectors from broadcast/unpack
     * trees when cheap (default); false forces twiddle-plan loads for
     * every non-constant pattern (ablation: trades SBAR pressure for
     * VDM traffic and scratchpad footprint).
     */
    bool twiddleCompose = true;

    /**
     * Design point used to weight the list scheduler (the paper's
     * optimized programs are scheduled for the target
     * microarchitecture). Only consulted when optimized.
     */
    RpuConfig scheduleConfig{};
};

/**
 * A single-ring transform kernel. The launch state (program, memory
 * images, regions) lives in the KernelImage base shared by every
 * kernel flavour; the region named "data" holds the ring.
 */
struct NttKernel : KernelImage
{
    u128 modulus = 0;
    bool inverse = false;
    bool optimized = false;

    /** Ring data occupies VDM words [dataBase, dataBase + n). */
    uint64_t dataBase = 0;
};

/**
 * Generate a forward or inverse NTT kernel for the ring dimension and
 * modulus bound to @p tw. Requires n >= 1024 (two vector registers),
 * matching the HE standard's minimum ring size cited by the paper.
 */
NttKernel generateNttKernel(const TwiddleTable &tw,
                            const NttCodegenOptions &opts = {});

/**
 * A fused negacyclic-product kernel — the complete RLWE polynomial
 * multiplication (NTT(a), NTT(b), dyadic product, inverse NTT) in one
 * B512 program. The two forward transforms address disjoint regions
 * through different ARF bases, so the scheduler overlaps them across
 * the decoupled pipelines; the product lands in region A.
 */
struct PolyMulKernel : KernelImage
{
    u128 modulus = 0;
    bool optimized = false;

    uint64_t aBase = 0; ///< input a; the product overwrites it
    uint64_t bBase = 0; ///< input b
};

PolyMulKernel generatePolyMulKernel(const TwiddleTable &tw,
                                    const NttCodegenOptions &opts = {});

/**
 * A batched NTT across several RNS towers in a single program,
 * exercising the MRF's instruction-granularity modulus switching
 * (paper section IV-B5: "enabling the potential to process different
 * towers simultaneously"). Tower t's ring lives at dataBases[t];
 * towers are register- and memory-independent, so the scheduler
 * interleaves them freely. `opts.inverse` selects the direction (the
 * inverse form loads one n^-1 scalar per tower); these are the
 * kernels domain-resident residue polynomials launch at Coeff<->Eval
 * boundaries.
 */
struct BatchedNttKernel : KernelImage
{
    std::vector<uint64_t> dataBases;
};

BatchedNttKernel
generateBatchedNtt(const std::vector<const TwiddleTable *> &towers,
                   const NttCodegenOptions &opts = {});

/** Forward-only convenience wrapper around generateBatchedNtt. */
BatchedNttKernel
generateBatchedForwardNtt(const std::vector<const TwiddleTable *> &towers,
                          const NttCodegenOptions &opts = {});

/**
 * A batched negacyclic-product kernel: the fused PolyMul flow
 * replicated across several RNS towers in a single program, each
 * tower on its own modulus register, n^-1 scalar, and pair of data
 * regions ("t<i>.a" / "t<i>.b"; the product overwrites t<i>.a).
 * This is the kernel behind the RLWE layer's RNS-tower multiply: one
 * launch computes a whole wide-modulus polynomial product.
 */
KernelImage
generateBatchedPolyMul(const std::vector<const TwiddleTable *> &towers,
                       const NttCodegenOptions &opts = {});

/**
 * A pointwise-product kernel: a <- a .* b, lane-wise Montgomery
 * products with no butterfly stages at all. This is the entire
 * homomorphic multiply once both operands are evaluation-domain
 * resident — the kernel an NTT-amortising ciphertext representation
 * launches instead of the fused negacyclic product. The program is
 * ~n/512 load/mul/store triplets, so its runtime is the floor any
 * transform-elision strategy is chasing.
 */
struct PointwiseMulKernel : KernelImage
{
    u128 modulus = 0;
    bool optimized = false;

    uint64_t aBase = 0; ///< input a; the product overwrites it
    uint64_t bBase = 0; ///< input b
};

PointwiseMulKernel
generatePointwiseMulKernel(const TwiddleTable &tw,
                           const NttCodegenOptions &opts = {});

/**
 * The pointwise product replicated across several RNS towers in one
 * program, each tower on its own modulus register and pair of data
 * regions ("t<i>.a" / "t<i>.b"; the product overwrites t<i>.a) —
 * one launch multiplies a whole evaluation-domain-resident residue
 * polynomial by another.
 */
KernelImage
generateBatchedPointwiseMul(const std::vector<const TwiddleTable *> &towers,
                            const NttCodegenOptions &opts = {});

} // namespace rpu

#endif // RPU_CODEGEN_NTT_CODEGEN_HH
