/**
 * @file
 * Symbolic data-layout tracking for the NTT code generator.
 *
 * Vectorising an NTT over 512-lane registers moves data through
 * unpack/pack shuffles whose net permutation is easy to get wrong.
 * The oracle tracks, for every lane of every vector register, which
 * in-place-NTT *position* its value corresponds to. Butterflies keep
 * positions fixed (the classic in-place formulation); loads, stores
 * and shuffles move them. With this bookkeeping the generator can:
 *
 *  1. prove each butterfly combines positions (a, a + gap) with the
 *     correct block alignment for its stage,
 *  2. derive the exact per-lane twiddle factor pattern a butterfly
 *     needs, and
 *  3. prove the final stores place every position at its correct
 *     address.
 *
 * Any layout bug becomes a generation-time panic instead of a wrong
 * numerical result.
 */

#ifndef RPU_CODEGEN_LAYOUT_ORACLE_HH
#define RPU_CODEGEN_LAYOUT_ORACLE_HH

#include <cstdint>
#include <vector>

#include "isa/opcodes.hh"
#include "poly/twiddle.hh"
#include "sim/arch_config.hh"

namespace rpu {

/** Per-lane position tags for the 64 vector registers. */
class LayoutOracle
{
  public:
    /** Tag vector: position in [0, n) per lane. Empty = untracked. */
    using Tags = std::vector<uint32_t>;

    explicit LayoutOracle(uint64_t n) : n_(n) {}

    /** Register now holds data positions [first, first + 512). */
    void setContiguous(unsigned reg, uint32_t first);

    /** Register now holds explicit tags (512 entries). */
    void setTags(unsigned reg, Tags tags);

    /** Register holds non-data content (twiddles, scratch). */
    void clear(unsigned reg);

    bool tracked(unsigned reg) const { return !tags_[reg].empty(); }
    const Tags &tags(unsigned reg) const;

    /** Apply an UNPK/PK shuffle's permutation to the tags. */
    void applyShuffle(Opcode op, unsigned vd, unsigned vs, unsigned vt);

    /**
     * Validate a Cooley-Tukey butterfly at stage @p stage (0-based,
     * m = 2^stage, gap = n / 2^(stage+1)) combining registers
     * @p va (sum inputs) and @p vb (difference inputs) lane-wise,
     * and return the required per-lane forward twiddle values
     * rootPower(m + block(lane)).
     *
     * Panics if any lane pair is not (a, a + gap) with a correctly
     * block-aligned: that is a generator bug.
     */
    std::vector<u128> butterflyTwiddles(const TwiddleTable &tw,
                                        unsigned stage, unsigned va,
                                        unsigned vb) const;

    /**
     * Same validation for the inverse (Gentleman-Sande) butterfly;
     * returns invRootPower(m + block(lane)) per lane.
     */
    std::vector<u128> inverseButterflyTwiddles(const TwiddleTable &tw,
                                               unsigned stage, unsigned va,
                                               unsigned vb) const;

    /** After a butterfly, both outputs keep the input positions. */
    void
    commitButterfly(unsigned va, unsigned vb, unsigned sum_reg,
                    unsigned diff_reg)
    {
        Tags a = tags(va);
        Tags b = tags(vb);
        setTags(sum_reg, std::move(a));
        setTags(diff_reg, std::move(b));
    }

    /**
     * Verify that storing @p reg with the given addressing pattern
     * writes every lane's position to data_base + position.
     */
    void checkStore(unsigned reg, uint64_t word_offset_from_data,
                    AddrMode mode, unsigned mode_value) const;

  private:
    void validatePair(unsigned stage, unsigned va, unsigned vb) const;

    uint64_t n_;
    Tags tags_[arch::kNumVregs];
};

} // namespace rpu

#endif // RPU_CODEGEN_LAYOUT_ORACLE_HH
