#include "codegen/builder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rpu {

namespace {
constexpr unsigned VL = arch::kVectorLength;
} // namespace

KernelBuilder::KernelBuilder(const TwiddleTable &tw, bool optimized,
                             uint64_t twplan_base, bool compose)
    : tw_(tw), optimized_(optimized), compose_(compose),
      twplan_base_(twplan_base == 0 ? tw.n() : twplan_base),
      oracle_(tw.n())
{
    // v0 is reserved as an always-zero scratch convention; the pool
    // hands out v1..v63.
    for (unsigned r = 1; r < arch::kNumVregs; ++r)
        pool_.push_back(r);
}

unsigned
KernelBuilder::allocReg()
{
    rpu_assert(!pool_.empty(), "vector register pool exhausted");
    unsigned r;
    if (optimized_) {
        // FIFO: maximise the distance before a register is reused.
        r = pool_.front();
        pool_.pop_front();
    } else {
        // LIFO: a naive generator recycles the hottest register.
        r = pool_.back();
        pool_.pop_back();
    }
    return r;
}

void
KernelBuilder::freeReg(unsigned reg)
{
    rpu_assert(reg >= 1 && reg < arch::kNumVregs, "bad register %u", reg);
    rpu_assert(std::find(pool_.begin(), pool_.end(), reg) == pool_.end(),
               "double free of v%u", reg);
    oracle_.clear(reg);
    pool_.push_back(reg);
}

uint64_t
KernelBuilder::sdmScalar(u128 value)
{
    auto it = sdm_slots_.find(value);
    if (it != sdm_slots_.end())
        return it->second;
    const uint64_t addr = sdm_image_.size();
    if (addr >= arch::kSdmWords)
        rpu_fatal("SDM scalar capacity exceeded (%zu words)",
                  arch::kSdmWords);
    sdm_image_.push_back(value);
    sdm_slots_.emplace(value, addr);
    return addr;
}

uint64_t
KernelBuilder::twPlanVector(const std::vector<u128> &pattern)
{
    rpu_assert(pattern.size() == VL, "twiddle plan vectors are 512 words");
    auto it = twplan_slots_.find(pattern);
    if (it != twplan_slots_.end())
        return it->second;
    const uint64_t offset = twplan_image_.size();
    twplan_image_.insert(twplan_image_.end(), pattern.begin(),
                         pattern.end());
    twplan_slots_.emplace(pattern, offset);
    return offset;
}

void
KernelBuilder::emitPrologue(bool needs_ninv)
{
    // SDM layout: the deduplicating allocator assigns slots in
    // first-use order; the prologue claims its constants first.
    const uint64_t q_addr = sdmScalar(tw_.modulus().value());
    const uint64_t data_addr = sdmScalar(u128(data_base_));
    const uint64_t plan_addr = sdmScalar(u128(twPlanBase()));
    const uint64_t zero_addr = sdmScalar(u128(0));

    prog_.append(Instruction::mload(kModReg, uint32_t(q_addr)));
    prog_.append(Instruction::aload(kDataAreg, uint32_t(data_addr)));
    prog_.append(Instruction::aload(kTwPlanAreg, uint32_t(plan_addr)));
    prog_.append(Instruction::aload(kSdmAreg, uint32_t(zero_addr)));
    if (needs_ninv) {
        const uint64_t ninv_addr = sdmScalar(tw_.nInv());
        prog_.append(Instruction::sload(kNinvSreg, uint32_t(ninv_addr)));
    }
}

void
KernelBuilder::beginDataRegion(unsigned areg, uint64_t base_words)
{
    rpu_assert(areg < arch::kNumAregs, "bad address register %u", areg);
    rpu_assert(areg != kTwPlanAreg && areg != kSdmAreg,
               "ARF a%u is reserved", areg);
    const uint64_t addr = sdmScalar(u128(base_words));
    prog_.append(Instruction::aload(uint8_t(areg), uint32_t(addr)));
    data_areg_ = areg;
    data_base_ = base_words;
}

void
KernelBuilder::beginTower(u128 modulus, unsigned modreg)
{
    rpu_assert(modreg < arch::kNumMregs, "bad modulus register %u",
               modreg);
    const uint64_t addr = sdmScalar(modulus);
    prog_.append(Instruction::mload(uint8_t(modreg), uint32_t(addr)));
    mod_reg_ = modreg;
}

void
KernelBuilder::beginTowerNinv(u128 ninv, unsigned sreg)
{
    rpu_assert(sreg < arch::kNumSregs, "bad scalar register %u", sreg);
    const uint64_t addr = sdmScalar(ninv);
    prog_.append(Instruction::sload(uint8_t(sreg), uint32_t(addr)));
    ninv_sreg_ = sreg;
}

void
KernelBuilder::emitDataLoad(unsigned reg, uint32_t vreg_index)
{
    const uint64_t offset = uint64_t(vreg_index) * VL;
    rpu_assert(offset + VL <= tw_.n(), "data load beyond ring");
    prog_.append(Instruction::vload(uint8_t(reg), uint8_t(data_areg_),
                                    uint32_t(offset)));
    oracle_.setContiguous(reg, uint32_t(offset));
}

void
KernelBuilder::emitDataStore(unsigned reg)
{
    emitRegionStore(reg, data_areg_);
}

void
KernelBuilder::emitRegionLoad(unsigned reg, unsigned areg,
                              uint32_t vreg_index)
{
    const uint64_t offset = uint64_t(vreg_index) * VL;
    rpu_assert(offset + VL <= tw_.n(), "data load beyond ring");
    prog_.append(Instruction::vload(uint8_t(reg), uint8_t(areg),
                                    uint32_t(offset)));
    oracle_.setContiguous(reg, uint32_t(offset));
}

void
KernelBuilder::emitRegionStore(unsigned reg, unsigned areg)
{
    const auto &t = oracle_.tags(reg);
    const uint64_t offset = t[0];
    oracle_.checkStore(reg, offset, AddrMode::CONTIGUOUS, 0);
    prog_.append(Instruction::vstore(uint8_t(reg), uint8_t(areg),
                                     uint32_t(offset)));
}

TwiddleRef
KernelBuilder::emitBroadcast(u128 value)
{
    if (optimized_) {
        auto it = bcast_map_.find(value);
        if (it != bcast_map_.end()) {
            // LRU refresh; the cached register is reused directly.
            bcast_lru_.splice(bcast_lru_.begin(), bcast_lru_, it->second);
            return {it->second->second, false};
        }
    }
    const uint64_t sdm_addr = sdmScalar(value);
    const unsigned reg = allocReg();
    prog_.append(
        Instruction::vbcast(uint8_t(reg), kSdmAreg, uint32_t(sdm_addr)));
    oracle_.clear(reg);

    if (!optimized_)
        return {reg, true};

    if (bcast_lru_.size() >= kBroadcastCacheCap) {
        auto &victim = bcast_lru_.back();
        bcast_map_.erase(victim.first);
        freeReg(victim.second);
        bcast_lru_.pop_back();
    }
    bcast_lru_.emplace_front(value, reg);
    bcast_map_[value] = bcast_lru_.begin();
    return {reg, false};
}

bool
KernelBuilder::canCompose(const u128 *pattern, unsigned prefix_len,
                          unsigned &leaves) const
{
    const bool constant =
        std::all_of(pattern, pattern + prefix_len,
                    [&](u128 v) { return v == pattern[0]; });
    if (constant) {
        leaves += 1;
        return leaves <= kMaxComposeLeaves;
    }
    if (prefix_len == 1)
        return false; // unreachable: single element is constant
    // Split into even and odd lanes and recurse.
    std::vector<u128> evens(prefix_len / 2), odds(prefix_len / 2);
    for (unsigned i = 0; i < prefix_len / 2; ++i) {
        evens[i] = pattern[2 * i];
        odds[i] = pattern[2 * i + 1];
    }
    return canCompose(evens.data(), prefix_len / 2, leaves) &&
           canCompose(odds.data(), prefix_len / 2, leaves);
}

TwiddleRef
KernelBuilder::materializePrefix(const u128 *pattern, unsigned prefix_len)
{
    const bool constant =
        std::all_of(pattern, pattern + prefix_len,
                    [&](u128 v) { return v == pattern[0]; });
    if (constant)
        return emitBroadcast(pattern[0]);

    std::vector<u128> evens(prefix_len / 2), odds(prefix_len / 2);
    for (unsigned i = 0; i < prefix_len / 2; ++i) {
        evens[i] = pattern[2 * i];
        odds[i] = pattern[2 * i + 1];
    }
    // UNPKLO(A, B) builds lanes [A0,B0,A1,B1,...] from the first
    // halves of A and B, so A's prefix must hold the even sub-pattern
    // and B's the odd one.
    const TwiddleRef a = materializePrefix(evens.data(), prefix_len / 2);
    const TwiddleRef b = materializePrefix(odds.data(), prefix_len / 2);
    const unsigned out = allocReg();
    prog_.append(Instruction::shuffle(Opcode::UNPKLO, uint8_t(out),
                                      uint8_t(a.reg), uint8_t(b.reg)));
    oracle_.clear(out);
    releaseTwiddle(a);
    releaseTwiddle(b);
    return {out, true};
}

TwiddleRef
KernelBuilder::twiddleReg(const std::vector<u128> &pattern)
{
    rpu_assert(pattern.size() == VL, "twiddle pattern must have %u lanes",
               VL);
    const bool constant =
        std::all_of(pattern.begin(), pattern.end(),
                    [&](u128 v) { return v == pattern[0]; });
    unsigned leaves = 0;
    if (constant)
        return emitBroadcast(pattern[0]);
    if (compose_ && canCompose(pattern.data(), VL, leaves))
        return materializePrefix(pattern.data(), VL);

    // Fall back to a precomputed vector in the twiddle-plan region.
    const uint64_t offset = twPlanVector(pattern);
    const unsigned reg = allocReg();
    prog_.append(Instruction::vload(uint8_t(reg), kTwPlanAreg,
                                    uint32_t(offset)));
    oracle_.clear(reg);
    return {reg, true};
}

void
KernelBuilder::releaseTwiddle(const TwiddleRef &ref)
{
    if (ref.transient)
        freeReg(ref.reg);
}

void
KernelBuilder::emitButterfly(unsigned sum_out, unsigned diff_out,
                             unsigned va, unsigned vb, unsigned tw_reg)
{
    prog_.append(Instruction::butterfly(uint8_t(sum_out), uint8_t(diff_out),
                                        uint8_t(va), uint8_t(vb),
                                        uint8_t(tw_reg),
                                        uint8_t(mod_reg_)));
    oracle_.commitButterfly(va, vb, sum_out, diff_out);
}

void
KernelBuilder::emitInverseButterfly(unsigned sum_out, unsigned diff_out,
                                    unsigned va, unsigned vb,
                                    unsigned tw_reg)
{
    // sum = a + b; diff = (a - b) * w. A temporary holds the
    // difference so the composition never clobbers a source early.
    const unsigned tmp = allocReg();
    prog_.append(Instruction::vv(Opcode::VSUBMOD, uint8_t(tmp), uint8_t(va),
                                 uint8_t(vb), uint8_t(mod_reg_)));
    prog_.append(Instruction::vv(Opcode::VADDMOD, uint8_t(sum_out),
                                 uint8_t(va), uint8_t(vb),
                                 uint8_t(mod_reg_)));
    prog_.append(Instruction::vv(Opcode::VMULMOD, uint8_t(diff_out),
                                 uint8_t(tmp), uint8_t(tw_reg),
                                 uint8_t(mod_reg_)));
    oracle_.commitButterfly(va, vb, sum_out, diff_out);
    freeReg(tmp);
}

void
KernelBuilder::emitPointwiseMul(unsigned vd, unsigned vs, unsigned vt)
{
    prog_.append(Instruction::vv(Opcode::VMULMOD, uint8_t(vd),
                                 uint8_t(vs), uint8_t(vt),
                                 uint8_t(mod_reg_)));
    LayoutOracle::Tags tags = oracle_.tags(vs);
    oracle_.setTags(vd, std::move(tags));
}

void
KernelBuilder::emitShuffle(Opcode op, unsigned vd, unsigned vs, unsigned vt)
{
    prog_.append(
        Instruction::shuffle(op, uint8_t(vd), uint8_t(vs), uint8_t(vt)));
    if (oracle_.tracked(vs) && oracle_.tracked(vt))
        oracle_.applyShuffle(op, vd, vs, vt);
    else
        oracle_.clear(vd);
}

void
KernelBuilder::emitScaleByNinv(unsigned reg)
{
    prog_.append(Instruction::vs_(Opcode::VSMULMOD, uint8_t(reg),
                                  uint8_t(reg), uint8_t(ninv_sreg_),
                                  uint8_t(mod_reg_)));
    // Positions are unchanged by scaling; oracle state stays valid.
}

} // namespace rpu
