/**
 * @file
 * B512 kernel builder: instruction emission, register allocation,
 * scratchpad memory planning, and twiddle materialisation.
 *
 * This implements the mechanical parts of the paper's SPIRAL backend
 * (section V): register allocation over the 64-entry VRF, scalar /
 * twiddle data layout in SDM and VDM, and the choice between
 * broadcasting a scalar twiddle, composing a patterned twiddle vector
 * from broadcasts and unpacks, or loading a precomputed twiddle
 * vector from the VDM "twiddle plan" region.
 *
 * Two allocation policies realise the paper's Fig. 6 comparison:
 *  - optimized: FIFO (least-recently-freed) register rotation, which
 *    maximises reuse distance so the in-order front-end rarely stalls
 *    on WAR/WAW hazards, plus a broadcast cache that hoists repeated
 *    twiddles;
 *  - unoptimized: LIFO reuse (immediately recycle the last register)
 *    and no broadcast cache, yielding the dependence-chained code a
 *    microarchitecture-oblivious generator would produce.
 */

#ifndef RPU_CODEGEN_BUILDER_HH
#define RPU_CODEGEN_BUILDER_HH

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <vector>

#include "codegen/layout_oracle.hh"
#include "isa/program.hh"
#include "poly/twiddle.hh"

namespace rpu {

/** A twiddle vector register handle; transient ones return to the pool. */
struct TwiddleRef
{
    unsigned reg = 0;
    bool transient = false;
};

/** Builder for one NTT kernel. */
class KernelBuilder
{
  public:
    /** Fixed register conventions for generated kernels. */
    static constexpr unsigned kModReg = 1;    ///< m1 = working modulus
    static constexpr unsigned kDataAreg = 0;  ///< a0 = data base
    static constexpr unsigned kTwPlanAreg = 1; ///< a1 = twiddle-plan base
    static constexpr unsigned kSdmAreg = 3;   ///< a3 = SDM base (0)
    static constexpr unsigned kNinvSreg = 2;  ///< s2 = n^-1 (inverse NTT)

    /**
     * @param tw            primary ring (sets the oracle dimension)
     * @param optimized     allocation/caching policy (see above)
     * @param twplan_base   VDM word where twiddle-plan vectors start;
     *                      defaults to just past one ring of data
     * @param compose       materialise patterned twiddles from
     *                      broadcast/unpack trees when cheap (false
     *                      forces plan-vector loads; ablation knob)
     */
    KernelBuilder(const TwiddleTable &tw, bool optimized,
                  uint64_t twplan_base = 0, bool compose = true);

    Program &program() { return prog_; }
    LayoutOracle &oracle() { return oracle_; }
    bool optimized() const { return optimized_; }

    // -- Register pool -------------------------------------------------

    unsigned allocReg();
    void freeReg(unsigned reg);
    size_t freeRegs() const { return pool_.size(); }

    // -- Memory planning -----------------------------------------------

    /** Deduplicated SDM scalar slot; returns the word address. */
    uint64_t sdmScalar(u128 value);

    /** Deduplicated twiddle-plan vector; returns offset from plan base. */
    uint64_t twPlanVector(const std::vector<u128> &pattern);

    const std::vector<u128> &sdmImage() const { return sdm_image_; }
    const std::vector<u128> &twPlanImage() const { return twplan_image_; }

    /** Current data region base (words). */
    uint64_t dataBase() const { return data_base_; }
    uint64_t twPlanBase() const { return twplan_base_; }

    // -- Emission helpers (all keep the layout oracle in sync) ----------

    /** mload/aload setup reading constants placed in SDM. */
    void emitPrologue(bool needs_ninv);

    /**
     * Switch subsequent data loads/stores to the region starting at
     * @p base_words, addressed through ARF register @p areg (distinct
     * regions must use distinct ARF registers so the scheduler can
     * prove them independent — see codegen/scheduler.hh).
     */
    void beginDataRegion(unsigned areg, uint64_t base_words);

    /**
     * Load a tower's modulus into @p modreg and make it current for
     * subsequent compute emission (the MRF's instruction-granularity
     * modulus switching, paper section IV-B5).
     */
    void beginTower(u128 modulus, unsigned modreg);

    /**
     * Load a tower's n^-1 into SRF @p sreg and use it for subsequent
     * emitScaleByNinv calls (batched kernels whose inverse phases run
     * under different moduli need one scalar per tower).
     */
    void beginTowerNinv(u128 ninv, unsigned sreg);

    unsigned modReg() const { return mod_reg_; }
    unsigned ninvSreg() const { return ninv_sreg_; }

    /** Load data vector-register index @p vreg_index (contiguous). */
    void emitDataLoad(unsigned reg, uint32_t vreg_index);

    /**
     * Cross-region load/store through an already-initialised ARF
     * register, without changing the current region (used by fused
     * kernels that read two regions at once).
     */
    void emitRegionLoad(unsigned reg, unsigned areg,
                        uint32_t vreg_index);
    void emitRegionStore(unsigned reg, unsigned areg);

    /**
     * Store @p reg back to the data region; the oracle must show it
     * holding a contiguous run of positions, which determines the
     * target address.
     */
    void emitDataStore(unsigned reg);

    /** Broadcast a scalar from SDM; cached under the optimized policy. */
    TwiddleRef emitBroadcast(u128 value);

    /**
     * Materialise an arbitrary 512-lane twiddle pattern: broadcast if
     * constant, a broadcast/unpack tree if it is recursively
     * interleave-constant with at most @p kMaxComposeLeaves leaves,
     * otherwise a contiguous load from the twiddle-plan region.
     */
    TwiddleRef twiddleReg(const std::vector<u128> &pattern);

    void releaseTwiddle(const TwiddleRef &ref);

    /** Forward CT butterfly (fused instruction). */
    void emitButterfly(unsigned sum_out, unsigned diff_out, unsigned va,
                       unsigned vb, unsigned tw_reg);

    /**
     * Inverse GS butterfly composed from add/sub/mul (the ISA has no
     * fused inverse form): sum_out = va + vb; diff_out = (va-vb)*tw.
     */
    void emitInverseButterfly(unsigned sum_out, unsigned diff_out,
                              unsigned va, unsigned vb, unsigned tw_reg);

    /** Shuffle; tracks the oracle when both sources are data-tracked. */
    void emitShuffle(Opcode op, unsigned vd, unsigned vs, unsigned vt);

    /**
     * Lane-wise modular product vd = vs .* vt (the NTT-domain dyadic
     * step); vd inherits vs's position tags.
     */
    void emitPointwiseMul(unsigned vd, unsigned vs, unsigned vt);

    /** Scale a data register by the SRF scalar in kNinvSreg. */
    void emitScaleByNinv(unsigned reg);

    static constexpr unsigned kMaxComposeLeaves = 8;
    static constexpr unsigned kBroadcastCacheCap = 18;

  private:
    TwiddleRef materializePrefix(const u128 *pattern, unsigned prefix_len);
    bool canCompose(const u128 *pattern, unsigned prefix_len,
                    unsigned &leaves) const;

    const TwiddleTable &tw_;
    bool optimized_;
    bool compose_;
    uint64_t twplan_base_;
    unsigned data_areg_ = kDataAreg;
    uint64_t data_base_ = 0;
    unsigned mod_reg_ = kModReg;
    unsigned ninv_sreg_ = kNinvSreg;
    Program prog_;
    LayoutOracle oracle_;

    std::deque<unsigned> pool_;

    std::map<u128, uint64_t> sdm_slots_;
    std::vector<u128> sdm_image_;
    std::map<std::vector<u128>, uint64_t> twplan_slots_;
    std::vector<u128> twplan_image_;

    /** Broadcast cache (optimized policy): value -> register, LRU. */
    std::map<u128, std::list<std::pair<u128, unsigned>>::iterator>
        bcast_map_;
    std::list<std::pair<u128, unsigned>> bcast_lru_;
};

} // namespace rpu

#endif // RPU_CODEGEN_BUILDER_HH
