/**
 * @file
 * Precomputed twiddle-factor tables for the negacyclic NTT.
 *
 * Convention (SEAL/Harvey style): rootPowers[j] = psi^bitrev(j, log2 n)
 * for j in [1, n), where psi is a primitive 2n-th root of unity.
 * The forward transform is Cooley-Tukey (natural order in, bit-reversed
 * order out); the inverse is the exact Gentleman-Sande mirror. These
 * same tables are the source of truth for the RPU code generator, so
 * generated B512 programs produce bit-identical outputs.
 */

#ifndef RPU_POLY_TWIDDLE_HH
#define RPU_POLY_TWIDDLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "modmath/modulus.hh"

namespace rpu {

/** Twiddle tables for one (modulus, ring dimension) pair. */
class TwiddleTable
{
  public:
    /**
     * Build tables for dimension @p n (power of two, >= 4) over prime
     * @p q with q == 1 (mod 2n). The primitive root is found
     * deterministically.
     */
    TwiddleTable(const Modulus &mod, uint64_t n);

    uint64_t n() const { return n_; }
    unsigned logN() const { return log_n_; }
    const Modulus &modulus() const { return mod_; }

    u128 psi() const { return psi_; }
    u128 psiInv() const { return psi_inv_; }
    u128 nInv() const { return n_inv_; }

    /** psi^bitrev(j) — plain representative (what the HPLE multiplies). */
    u128 rootPower(size_t j) const { return root_powers_[j]; }

    /** Inverse of rootPower(j), plain representative. */
    u128 invRootPower(size_t j) const { return inv_root_powers_[j]; }

    /** Montgomery-form tables for the fast reference NTT path. */
    u128 rootPowerMont(size_t j) const { return root_powers_mont_[j]; }
    u128 invRootPowerMont(size_t j) const { return inv_root_powers_mont_[j]; }
    u128 nInvMont() const { return n_inv_mont_; }

    const std::vector<u128> &rootPowers() const { return root_powers_; }
    const std::vector<u128> &invRootPowers() const
    {
        return inv_root_powers_;
    }

    /**
     * Narrow (u64 + Shoup) tables for the vectorised host NTT. Built
     * at construction whenever q fits the narrow-kernel domain
     * (odd, < 2^62); the SIMD transforms in NttContext require
     * hasNarrow().
     */
    bool hasNarrow() const { return !root64_.empty(); }
    const uint64_t *root64() const { return root64_.data(); }
    const uint64_t *root64Shoup() const { return root64_shoup_.data(); }
    const uint64_t *invRoot64() const { return inv_root64_.data(); }
    const uint64_t *invRoot64Shoup() const
    {
        return inv_root64_shoup_.data();
    }
    uint64_t nInv64() const { return n_inv64_; }
    uint64_t nInv64Shoup() const { return n_inv64_shoup_; }

  private:
    const Modulus &mod_;
    uint64_t n_;
    unsigned log_n_;
    u128 psi_;
    u128 psi_inv_;
    u128 n_inv_;
    u128 n_inv_mont_;
    std::vector<u128> root_powers_;
    std::vector<u128> inv_root_powers_;
    std::vector<u128> root_powers_mont_;
    std::vector<u128> inv_root_powers_mont_;

    // Narrow tables (empty unless q is odd and < 2^62).
    std::vector<uint64_t> root64_;
    std::vector<uint64_t> root64_shoup_;
    std::vector<uint64_t> inv_root64_;
    std::vector<uint64_t> inv_root64_shoup_;
    uint64_t n_inv64_ = 0;
    uint64_t n_inv64_shoup_ = 0;
};

} // namespace rpu

#endif // RPU_POLY_TWIDDLE_HH
