#include "poly/ntt.hh"

#include "common/logging.hh"

namespace rpu {

void
NttContext::forward(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch: %zu vs n=%llu", x.size(),
               (unsigned long long)n);
    const Modulus &mod = tw_.modulus();

    // m: butterflies-per-group doubles each stage; t: half-gap.
    uint64_t t = n;
    for (uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w = tw_.rootPowerMont(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 u = x[j];
                const u128 v = mod.mulMontNormal(w, x[j + t]);
                x[j] = mod.add(u, v);
                x[j + t] = mod.sub(u, v);
            }
        }
    }
}

void
NttContext::inverse(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    // Exact mirror of forward(): stages run backwards, each butterfly
    // inverted; the per-stage 1/2 factors are folded into n^-1.
    uint64_t t = 1;
    for (uint64_t m = n >> 1; m >= 1; m >>= 1) {
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w_inv = tw_.invRootPowerMont(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 a = x[j];
                const u128 b = x[j + t];
                x[j] = mod.add(a, b);
                x[j + t] = mod.mulMontNormal(w_inv, mod.sub(a, b));
            }
        }
        t <<= 1;
    }
    const u128 scale = tw_.nInvMont();
    for (auto &v : x)
        v = mod.mulMontNormal(scale, v);
}

void
NttContext::forwardPlain(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    uint64_t t = n;
    for (uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w = tw_.rootPower(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 u = x[j];
                const u128 v = mod.mul(w, x[j + t]);
                x[j] = mod.add(u, v);
                x[j + t] = mod.sub(u, v);
            }
        }
    }
}

void
NttContext::inversePlain(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    uint64_t t = 1;
    for (uint64_t m = n >> 1; m >= 1; m >>= 1) {
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w_inv = tw_.invRootPower(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 a = x[j];
                const u128 b = x[j + t];
                x[j] = mod.add(a, b);
                x[j + t] = mod.mul(w_inv, mod.sub(a, b));
            }
        }
        t <<= 1;
    }
    for (auto &v : x)
        v = mod.mul(tw_.nInv(), v);
}

} // namespace rpu
