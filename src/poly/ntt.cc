#include "poly/ntt.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rpu {

namespace {

/** Thread-local u64 staging buffer shared by the narrow transforms. */
std::vector<uint64_t> &
narrowScratch(uint64_t n)
{
    thread_local std::vector<uint64_t> buf;
    if (buf.size() < n)
        buf.resize(n);
    return buf;
}

} // namespace

void
NttContext::forward(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch: %zu vs n=%llu", x.size(),
               (unsigned long long)n);
    if (narrowPathActive()) {
        forwardNarrow(x);
        return;
    }
    const Modulus &mod = tw_.modulus();

    // m: butterflies-per-group doubles each stage; t: half-gap.
    uint64_t t = n;
    for (uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w = tw_.rootPowerMont(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 u = x[j];
                const u128 v = mod.mulMontNormal(w, x[j + t]);
                x[j] = mod.add(u, v);
                x[j + t] = mod.sub(u, v);
            }
        }
    }
}

void
NttContext::inverse(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    if (narrowPathActive()) {
        inverseNarrow(x);
        return;
    }
    const Modulus &mod = tw_.modulus();

    // Exact mirror of forward(): stages run backwards, each butterfly
    // inverted; the per-stage 1/2 factors are folded into n^-1.
    uint64_t t = 1;
    for (uint64_t m = n >> 1; m >= 1; m >>= 1) {
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w_inv = tw_.invRootPowerMont(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 a = x[j];
                const u128 b = x[j + t];
                x[j] = mod.add(a, b);
                x[j + t] = mod.mulMontNormal(w_inv, mod.sub(a, b));
            }
        }
        t <<= 1;
    }
    const u128 scale = tw_.nInvMont();
    for (auto &v : x)
        v = mod.mulMontNormal(scale, v);
}

void
NttContext::forwardPlain(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    uint64_t t = n;
    for (uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w = tw_.rootPower(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 u = x[j];
                const u128 v = mod.mul(w, x[j + t]);
                x[j] = mod.add(u, v);
                x[j + t] = mod.sub(u, v);
            }
        }
    }
}

void
NttContext::inversePlain(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    uint64_t t = 1;
    for (uint64_t m = n >> 1; m >= 1; m >>= 1) {
        for (uint64_t i = 0; i < m; ++i) {
            const u128 w_inv = tw_.invRootPower(m + i);
            const uint64_t j1 = 2 * i * t;
            for (uint64_t j = j1; j < j1 + t; ++j) {
                const u128 a = x[j];
                const u128 b = x[j + t];
                x[j] = mod.add(a, b);
                x[j + t] = mod.mul(w_inv, mod.sub(a, b));
            }
        }
        t <<= 1;
    }
    for (auto &v : x)
        v = mod.mul(tw_.nInv(), v);
}

void
NttContext::forwardNarrow(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    const uint64_t q = uint64_t(tw_.modulus().value());
    const uint64_t *roots = tw_.root64();
    const uint64_t *shoups = tw_.root64Shoup();

    std::vector<uint64_t> &scratch = narrowScratch(n);
    uint64_t *d = scratch.data();
    for (uint64_t i = 0; i < n; ++i)
        d[i] = uint64_t(x[i]); // canonical (< q < 2^62), cast exact

    // Streaming stages: while a butterfly group spans more than one
    // tile, run the stage over the whole polynomial. Values stay in
    // the lazy [0, 4q) domain between stages.
    uint64_t t = n;
    uint64_t m = 1;
    for (; m < n; m <<= 1) {
        t >>= 1;
        if (2 * t <= kNttTileElems)
            break; // remaining stages are tile-local
        for (uint64_t i = 0; i < m; ++i)
            simd::forwardButterflyLazySpan(d + 2 * i * t,
                                           d + 2 * i * t + t, t,
                                           roots[m + i], shoups[m + i],
                                           q);
    }

    // Tile-local stages: each 2t-sized block now holds complete
    // butterfly groups for every remaining stage, so run them all
    // while the block is cache-resident.
    if (m < n) {
        const uint64_t blockSize = 2 * t;
        for (uint64_t b = 0; b * blockSize < n; ++b) {
            uint64_t *base = d + b * blockSize;
            uint64_t tt = t;
            for (uint64_t mm = m; mm < n; mm <<= 1) {
                const uint64_t groups = blockSize / (2 * tt);
                const uint64_t i0 = b * groups;
                for (uint64_t g = 0; g < groups; ++g)
                    simd::forwardButterflyLazySpan(
                        base + 2 * g * tt, base + 2 * g * tt + tt, tt,
                        roots[mm + i0 + g], shoups[mm + i0 + g], q);
                tt >>= 1;
            }
        }
    }

    simd::canonicalizeSpan(d, n, q);
    for (uint64_t i = 0; i < n; ++i)
        x[i] = d[i];
}

void
NttContext::inverseNarrow(std::vector<u128> &x) const
{
    const uint64_t n = tw_.n();
    const uint64_t q = uint64_t(tw_.modulus().value());
    const uint64_t *roots = tw_.invRoot64();
    const uint64_t *shoups = tw_.invRoot64Shoup();

    std::vector<uint64_t> &scratch = narrowScratch(n);
    uint64_t *d = scratch.data();
    for (uint64_t i = 0; i < n; ++i)
        d[i] = uint64_t(x[i]);

    // Mirror of forwardNarrow's blocking: the early GS stages have
    // small gaps, so run every stage with 2t <= tile block-by-block
    // first, then stream the remaining large-gap stages. Values stay
    // in [0, 2q) between stages.
    const uint64_t blockSize = std::min<uint64_t>(kNttTileElems, n);
    for (uint64_t b = 0; b * blockSize < n; ++b) {
        uint64_t *base = d + b * blockSize;
        uint64_t mm = n >> 1;
        for (uint64_t tt = 1; 2 * tt <= blockSize; tt <<= 1) {
            const uint64_t groups = blockSize / (2 * tt);
            const uint64_t i0 = b * groups;
            for (uint64_t g = 0; g < groups; ++g)
                simd::inverseButterflyLazySpan(
                    base + 2 * g * tt, base + 2 * g * tt + tt, tt,
                    roots[mm + i0 + g], shoups[mm + i0 + g], q);
            mm >>= 1;
        }
    }
    {
        uint64_t t = blockSize;
        for (uint64_t m = n / (2 * blockSize); m >= 1; m >>= 1) {
            for (uint64_t i = 0; i < m; ++i)
                simd::inverseButterflyLazySpan(d + 2 * i * t,
                                               d + 2 * i * t + t, t,
                                               roots[m + i],
                                               shoups[m + i], q);
            t <<= 1;
        }
    }

    // Fold in n^-1; mulShoupSpan canonicalises, so no separate pass.
    simd::mulShoupSpan(d, d, n, tw_.nInv64(), tw_.nInv64Shoup(), q);
    for (uint64_t i = 0; i < n; ++i)
        x[i] = d[i];
}

} // namespace rpu
