#include "poly/twiddle.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "modmath/primegen.hh"

namespace rpu {

TwiddleTable::TwiddleTable(const Modulus &mod, uint64_t n)
    : mod_(mod), n_(n)
{
    rpu_assert(isPow2(n) && n >= 4, "invalid ring dimension %llu",
               (unsigned long long)n);
    log_n_ = log2Floor(n);

    psi_ = primitiveRoot2n(mod.value(), n);
    psi_inv_ = mod.inv(psi_);
    n_inv_ = mod.inv(u128(n) % mod.value());
    n_inv_mont_ = mod.toMont(n_inv_);

    root_powers_.resize(n);
    inv_root_powers_.resize(n);
    root_powers_mont_.resize(n);
    inv_root_powers_mont_.resize(n);

    // Consecutive powers first, then scatter into bit-reversed slots.
    std::vector<u128> pow_fwd(n), pow_inv(n);
    pow_fwd[0] = 1;
    pow_inv[0] = 1;
    for (uint64_t i = 1; i < n; ++i) {
        pow_fwd[i] = mod.mul(pow_fwd[i - 1], psi_);
        pow_inv[i] = mod.mul(pow_inv[i - 1], psi_inv_);
    }
    for (uint64_t j = 0; j < n; ++j) {
        const uint64_t r = bitReverse(j, log_n_);
        root_powers_[j] = pow_fwd[r];
        inv_root_powers_[j] = pow_inv[r];
        root_powers_mont_[j] = mod.toMont(root_powers_[j]);
        inv_root_powers_mont_[j] = mod.toMont(inv_root_powers_[j]);
    }

    // Narrow (u64 + Shoup) mirrors of the same tables for the
    // vectorised host transforms. Every entry is canonical (< q), so
    // the casts are exact.
    if (simd::narrowModulusOk(mod.value())) {
        const uint64_t q = uint64_t(mod.value());
        root64_.resize(n);
        root64_shoup_.resize(n);
        inv_root64_.resize(n);
        inv_root64_shoup_.resize(n);
        for (uint64_t j = 0; j < n; ++j) {
            root64_[j] = uint64_t(root_powers_[j]);
            root64_shoup_[j] = simd::shoupPrecompute64(root64_[j], q);
            inv_root64_[j] = uint64_t(inv_root_powers_[j]);
            inv_root64_shoup_[j] =
                simd::shoupPrecompute64(inv_root64_[j], q);
        }
        n_inv64_ = uint64_t(n_inv_);
        n_inv64_shoup_ = simd::shoupPrecompute64(n_inv64_, q);
    }
}

} // namespace rpu
