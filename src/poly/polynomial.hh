/**
 * @file
 * Ring-polynomial helpers over Z_q[x]/(x^n + 1).
 *
 * Rings are "large arrays of elements in a field" (paper section I);
 * this module provides the coefficient-domain operations plus the
 * NTT-accelerated negacyclic product used throughout the RLWE layer
 * and in tests (the naive quadratic product is the ultimate oracle).
 */

#ifndef RPU_POLY_POLYNOMIAL_HH
#define RPU_POLY_POLYNOMIAL_HH

#include <vector>

#include "poly/ntt.hh"

namespace rpu {

/** Coefficient-wise (a + b) mod q. */
std::vector<u128> polyAdd(const Modulus &mod, const std::vector<u128> &a,
                          const std::vector<u128> &b);

/** Coefficient-wise (a - b) mod q. */
std::vector<u128> polySub(const Modulus &mod, const std::vector<u128> &a,
                          const std::vector<u128> &b);

/** Pointwise (a .* b) mod q. */
std::vector<u128> polyPointwise(const Modulus &mod,
                                const std::vector<u128> &a,
                                const std::vector<u128> &b);

/** Coefficient-wise scalar product (s * a) mod q. */
std::vector<u128> polyScale(const Modulus &mod, u128 s,
                            const std::vector<u128> &a);

/**
 * Naive O(n^2) negacyclic product in Z_q[x]/(x^n + 1) — the
 * independent oracle for every NTT implementation in this repo.
 */
std::vector<u128> negacyclicMulNaive(const Modulus &mod,
                                     const std::vector<u128> &a,
                                     const std::vector<u128> &b);

/** NTT-accelerated negacyclic product (forward, dyadic, inverse). */
std::vector<u128> negacyclicMulNtt(const NttContext &ctx,
                                   const std::vector<u128> &a,
                                   const std::vector<u128> &b);

/** Uniformly random polynomial with coefficients in [0, q). */
std::vector<u128> randomPoly(const Modulus &mod, size_t n, Rng &rng);

} // namespace rpu

#endif // RPU_POLY_POLYNOMIAL_HH
