#include "poly/polynomial.hh"

#include "common/logging.hh"

namespace rpu {

std::vector<u128>
polyAdd(const Modulus &mod, const std::vector<u128> &a,
        const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    std::vector<u128> r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.add(a[i], b[i]);
    return r;
}

std::vector<u128>
polySub(const Modulus &mod, const std::vector<u128> &a,
        const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    std::vector<u128> r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.sub(a[i], b[i]);
    return r;
}

std::vector<u128>
polyPointwise(const Modulus &mod, const std::vector<u128> &a,
              const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    std::vector<u128> r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.mul(a[i], b[i]);
    return r;
}

std::vector<u128>
polyScale(const Modulus &mod, u128 s, const std::vector<u128> &a)
{
    std::vector<u128> r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.mul(s, a[i]);
    return r;
}

std::vector<u128>
negacyclicMulNaive(const Modulus &mod, const std::vector<u128> &a,
                   const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    const size_t n = a.size();
    std::vector<u128> r(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            const u128 p = mod.mul(a[i], b[j]);
            const size_t k = i + j;
            if (k < n)
                r[k] = mod.add(r[k], p);
            else
                r[k - n] = mod.sub(r[k - n], p); // x^n == -1
        }
    }
    return r;
}

std::vector<u128>
negacyclicMulNtt(const NttContext &ctx, const std::vector<u128> &a,
                 const std::vector<u128> &b)
{
    std::vector<u128> fa = a, fb = b;
    ctx.forward(fa);
    ctx.forward(fb);
    std::vector<u128> prod = polyPointwise(ctx.table().modulus(), fa, fb);
    ctx.inverse(prod);
    return prod;
}

std::vector<u128>
randomPoly(const Modulus &mod, size_t n, Rng &rng)
{
    std::vector<u128> r(n);
    for (auto &v : r)
        v = rng.below128(mod.value());
    return r;
}

} // namespace rpu
