#include "poly/polynomial.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rpu {

namespace {

/**
 * Tile size for the narrowed pointwise kernels: both operand tiles
 * plus the output tile stay L1-resident (3 * 1024 * 8 B = 24 KiB).
 */
constexpr size_t kPointwiseTileElems = 1024;

bool
narrowPointwiseActive(const Modulus &mod)
{
    return simd::narrowLanesActive() && mod.narrow() != nullptr;
}

} // namespace

std::vector<u128>
polyAdd(const Modulus &mod, const std::vector<u128> &a,
        const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    std::vector<u128> r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.add(a[i], b[i]);
    return r;
}

std::vector<u128>
polySub(const Modulus &mod, const std::vector<u128> &a,
        const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    std::vector<u128> r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.sub(a[i], b[i]);
    return r;
}

std::vector<u128>
polyPointwise(const Modulus &mod, const std::vector<u128> &a,
              const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    std::vector<u128> r(a.size());
    if (narrowPointwiseActive(mod)) {
        // Montgomery pointwise on u64 lanes, tiled so the staging
        // buffers stay in L1. Inputs are canonical, so the narrowing
        // casts are exact and results are bit-identical to mod.mul.
        const simd::NarrowModulus &nm = *mod.narrow();
        uint64_t ta[kPointwiseTileElems], tb[kPointwiseTileElems];
        uint64_t to[kPointwiseTileElems];
        for (size_t base = 0; base < a.size();
             base += kPointwiseTileElems) {
            const size_t len =
                std::min(kPointwiseTileElems, a.size() - base);
            for (size_t i = 0; i < len; ++i) {
                ta[i] = uint64_t(a[base + i]);
                tb[i] = uint64_t(b[base + i]);
            }
            simd::mulModSpan(ta, tb, to, len, nm);
            for (size_t i = 0; i < len; ++i)
                r[base + i] = to[i];
        }
        return r;
    }
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.mul(a[i], b[i]);
    return r;
}

std::vector<u128>
polyScale(const Modulus &mod, u128 s, const std::vector<u128> &a)
{
    std::vector<u128> r(a.size());
    if (narrowPointwiseActive(mod)) {
        // Constant multiplier: precompute its Shoup companion once
        // and run the lazy Shoup span kernel tile by tile.
        const uint64_t q = uint64_t(mod.value());
        const uint64_t w = uint64_t(mod.reduce(s));
        const uint64_t wShoup = simd::shoupPrecompute64(w, q);
        uint64_t ta[kPointwiseTileElems], to[kPointwiseTileElems];
        for (size_t base = 0; base < a.size();
             base += kPointwiseTileElems) {
            const size_t len =
                std::min(kPointwiseTileElems, a.size() - base);
            for (size_t i = 0; i < len; ++i)
                ta[i] = uint64_t(a[base + i]);
            simd::mulShoupSpan(ta, to, len, w, wShoup, q);
            for (size_t i = 0; i < len; ++i)
                r[base + i] = to[i];
        }
        return r;
    }
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = mod.mul(s, a[i]);
    return r;
}

std::vector<u128>
negacyclicMulNaive(const Modulus &mod, const std::vector<u128> &a,
                   const std::vector<u128> &b)
{
    rpu_assert(a.size() == b.size(), "polynomial size mismatch");
    const size_t n = a.size();
    std::vector<u128> r(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            const u128 p = mod.mul(a[i], b[j]);
            const size_t k = i + j;
            if (k < n)
                r[k] = mod.add(r[k], p);
            else
                r[k - n] = mod.sub(r[k - n], p); // x^n == -1
        }
    }
    return r;
}

std::vector<u128>
negacyclicMulNtt(const NttContext &ctx, const std::vector<u128> &a,
                 const std::vector<u128> &b)
{
    std::vector<u128> fa = a, fb = b;
    ctx.forward(fa);
    ctx.forward(fb);
    std::vector<u128> prod = polyPointwise(ctx.table().modulus(), fa, fb);
    ctx.inverse(prod);
    return prod;
}

std::vector<u128>
randomPoly(const Modulus &mod, size_t n, Rng &rng)
{
    std::vector<u128> r(n);
    for (auto &v : r)
        v = rng.below128(mod.value());
    return r;
}

} // namespace rpu
