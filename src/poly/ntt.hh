/**
 * @file
 * Reference negacyclic NTT over Z_q[x]/(x^n + 1), 128-bit moduli.
 *
 * This is the repository's golden model: the paper validates its
 * generated B512 code against OpenFHE; we validate generated code (and
 * the CPU baselines) against this implementation, which is itself
 * validated against a naive O(n^2) negacyclic convolution.
 *
 * Forward: Cooley-Tukey DIT, natural input -> bit-reversed output.
 * Inverse: Gentleman-Sande, bit-reversed input -> natural output,
 * with the n^-1 scaling folded in. Pointwise products in the
 * transformed domain realise negacyclic convolution.
 */

#ifndef RPU_POLY_NTT_HH
#define RPU_POLY_NTT_HH

#include <vector>

#include "poly/twiddle.hh"

namespace rpu {

/** Forward/inverse transforms bound to one twiddle table. */
class NttContext
{
  public:
    explicit NttContext(const TwiddleTable &table) : tw_(table) {}

    const TwiddleTable &table() const { return tw_; }

    /**
     * In-place forward NTT (fast path: Montgomery-form twiddles, one
     * reduction per butterfly product).
     */
    void forward(std::vector<u128> &x) const;

    /** In-place inverse NTT. */
    void inverse(std::vector<u128> &x) const;

    /**
     * Textbook variant using only plain modular multiplication —
     * an independent cross-check of the Montgomery fast path.
     */
    void forwardPlain(std::vector<u128> &x) const;
    void inversePlain(std::vector<u128> &x) const;

  private:
    const TwiddleTable &tw_;
};

} // namespace rpu

#endif // RPU_POLY_NTT_HH
