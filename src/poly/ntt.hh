/**
 * @file
 * Reference negacyclic NTT over Z_q[x]/(x^n + 1), 128-bit moduli.
 *
 * This is the repository's golden model: the paper validates its
 * generated B512 code against OpenFHE; we validate generated code (and
 * the CPU baselines) against this implementation, which is itself
 * validated against a naive O(n^2) negacyclic convolution.
 *
 * Forward: Cooley-Tukey DIT, natural input -> bit-reversed output.
 * Inverse: Gentleman-Sande, bit-reversed input -> natural output,
 * with the n^-1 scaling folded in. Pointwise products in the
 * transformed domain realise negacyclic convolution.
 */

#ifndef RPU_POLY_NTT_HH
#define RPU_POLY_NTT_HH

#include <vector>

#include "poly/twiddle.hh"

namespace rpu {

/**
 * Coefficient tile (in u64 elements) for the cache-blocked narrow
 * transforms: once a stage's butterfly groups fit inside one tile,
 * all remaining stages of that tile run to completion while it is
 * L1-resident instead of streaming the whole polynomial through the
 * cache once per stage. 2048 elements = 16 KiB, half a typical
 * 32 KiB L1D, leaving room for the twiddle lines.
 */
constexpr uint64_t kNttTileElems = 2048;

/** Forward/inverse transforms bound to one twiddle table. */
class NttContext
{
  public:
    explicit NttContext(const TwiddleTable &table) : tw_(table) {}

    const TwiddleTable &table() const { return tw_; }

    /**
     * In-place forward NTT. Under RPU_HOST_SIMD=native (the default)
     * and a narrow modulus (odd, < 2^62) this runs the vectorised
     * cache-blocked lazy-reduction path; otherwise the verbatim
     * scalar reference (Montgomery-form twiddles, one reduction per
     * butterfly product). Both produce bit-identical results.
     */
    void forward(std::vector<u128> &x) const;

    /** In-place inverse NTT (same dual-path contract as forward). */
    void inverse(std::vector<u128> &x) const;

    /**
     * Textbook variant using only plain modular multiplication —
     * an independent cross-check of the Montgomery fast path. Always
     * scalar, regardless of the host-SIMD mode.
     */
    void forwardPlain(std::vector<u128> &x) const;
    void inversePlain(std::vector<u128> &x) const;

    /** True when forward/inverse take the narrow vectorised path. */
    bool
    narrowPathActive() const
    {
        return simd::narrowLanesActive() && tw_.hasNarrow();
    }

  private:
    /** Vectorised lazy-reduction transforms on a u64 mirror of x. */
    void forwardNarrow(std::vector<u128> &x) const;
    void inverseNarrow(std::vector<u128> &x) const;

    const TwiddleTable &tw_;
};

} // namespace rpu

#endif // RPU_POLY_NTT_HH
