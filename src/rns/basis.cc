#include "rns/basis.hh"

#include "common/logging.hh"
#include "modmath/primegen.hh"

namespace rpu {

RnsBasis::RnsBasis(const std::vector<u128> &moduli) : q_(1)
{
    rpu_assert(!moduli.empty(), "empty RNS basis");
    for (u128 m : moduli) {
        mods_.push_back(std::make_unique<Modulus>(m));
        q_ = q_ * BigUInt::fromU128(m);
    }
    // Pairwise co-primality check (cheap: gcd via BigUInt modulo).
    for (size_t i = 0; i < moduli.size(); ++i) {
        for (size_t j = i + 1; j < moduli.size(); ++j) {
            u128 a = moduli[i], b = moduli[j];
            while (b != 0) {
                const u128 t = a % b;
                a = b;
                b = t;
            }
            if (a != 1)
                rpu_fatal("RNS moduli %zu and %zu are not co-prime", i, j);
        }
    }
}

RnsBasis
RnsBasis::nttBasis(unsigned bits, uint64_t n, size_t count)
{
    return RnsBasis(nttPrimes(bits, n, count));
}

} // namespace rpu
