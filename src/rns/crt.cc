#include "rns/crt.hh"

#include "common/logging.hh"

namespace rpu {

CrtContext::CrtContext(const RnsBasis &basis) : basis_(basis)
{
    const size_t L = basis.towers();
    q_over_qi_.reserve(L);
    q_over_qi_inv_.reserve(L);
    for (size_t i = 0; i < L; ++i) {
        const BigUInt qi = BigUInt::fromU128(basis.prime(i));
        const BigUInt q_over = basis.q() / qi;
        // (Q/q_i) mod q_i, then a Fermat inverse in the tower field.
        const u128 rem = (q_over % qi).low128();
        q_over_qi_.push_back(q_over);
        q_over_qi_inv_.push_back(basis.modulus(i).inv(rem));
    }
}

std::vector<u128>
CrtContext::decompose(const BigUInt &value) const
{
    const BigUInt reduced = value % basis_.q();
    std::vector<u128> residues(basis_.towers());
    for (size_t i = 0; i < basis_.towers(); ++i)
        residues[i] =
            (reduced % BigUInt::fromU128(basis_.prime(i))).low128();
    return residues;
}

BigUInt
CrtContext::reconstruct(const std::vector<u128> &residues) const
{
    rpu_assert(residues.size() == basis_.towers(),
               "residue count mismatch");
    BigUInt acc;
    for (size_t i = 0; i < basis_.towers(); ++i) {
        // term_i = r_i * (Q/q_i)^-1 mod q_i, then * (Q/q_i).
        const u128 scaled =
            basis_.modulus(i).mul(residues[i], q_over_qi_inv_[i]);
        acc = acc + q_over_qi_[i] * BigUInt::fromU128(scaled);
    }
    return acc % basis_.q();
}

CrtContext::TowerPoly
CrtContext::decomposePoly(const std::vector<BigUInt> &coeffs) const
{
    TowerPoly towers(basis_.towers(),
                     std::vector<u128>(coeffs.size(), 0));
    for (size_t c = 0; c < coeffs.size(); ++c) {
        const auto residues = decompose(coeffs[c]);
        for (size_t t = 0; t < basis_.towers(); ++t)
            towers[t][c] = residues[t];
    }
    return towers;
}

std::vector<BigUInt>
CrtContext::reconstructPoly(const TowerPoly &towers) const
{
    rpu_assert(!towers.empty(), "empty tower polynomial");
    const size_t n = towers[0].size();
    std::vector<BigUInt> coeffs(n);
    std::vector<u128> residues(basis_.towers());
    for (size_t c = 0; c < n; ++c) {
        for (size_t t = 0; t < basis_.towers(); ++t)
            residues[t] = towers[t][c];
        coeffs[c] = reconstruct(residues);
    }
    return coeffs;
}

} // namespace rpu
