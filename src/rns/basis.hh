/**
 * @file
 * Residue Number System basis (paper section II-B).
 *
 * A large ciphertext modulus Q = q0 * q1 * ... * q(L-1) is represented
 * by residues modulo pairwise co-prime 128-bit NTT primes ("towers").
 * Each tower operates independently — which is what lets the RPU's
 * 128-bit datapath serve arbitrarily wide HE moduli (the paper's
 * example: a 1600-bit modulus as 13 towers of 128-bit elements).
 */

#ifndef RPU_RNS_BASIS_HH
#define RPU_RNS_BASIS_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "modmath/modulus.hh"
#include "wide/biguint.hh"

namespace rpu {

/** A fixed RNS basis of pairwise co-prime moduli. */
class RnsBasis
{
  public:
    /** Build from explicit moduli (must be pairwise co-prime). */
    explicit RnsBasis(const std::vector<u128> &moduli);

    /**
     * Convenience: @p count NTT-friendly primes of @p bits bits for
     * ring dimension @p n.
     */
    static RnsBasis nttBasis(unsigned bits, uint64_t n, size_t count);

    size_t towers() const { return mods_.size(); }
    const Modulus &modulus(size_t i) const { return *mods_.at(i); }
    u128 prime(size_t i) const { return mods_.at(i)->value(); }

    /** All tower primes, in basis order. */
    std::vector<u128>
    primes() const
    {
        std::vector<u128> v(mods_.size());
        for (size_t i = 0; i < mods_.size(); ++i)
            v[i] = mods_[i]->value();
        return v;
    }

    /** The composite modulus Q. */
    const BigUInt &q() const { return q_; }

    /** Number of bits in Q. */
    size_t qBits() const { return q_.bitLength(); }

  private:
    std::vector<std::unique_ptr<Modulus>> mods_;
    BigUInt q_;
};

} // namespace rpu

#endif // RPU_RNS_BASIS_HH
