/**
 * @file
 * Chinese Remainder Theorem conversions between a big integer modulo
 * Q and its RNS residue vector, plus tower-wise ring arithmetic.
 */

#ifndef RPU_RNS_CRT_HH
#define RPU_RNS_CRT_HH

#include <vector>

#include "rns/basis.hh"

namespace rpu {

/** Precomputed CRT reconstruction constants for one basis. */
class CrtContext
{
  public:
    explicit CrtContext(const RnsBasis &basis);

    const RnsBasis &basis() const { return basis_; }

    /** Residues of @p value (reduced mod Q first). */
    std::vector<u128> decompose(const BigUInt &value) const;

    /** The unique x in [0, Q) with x == residues[i] (mod q_i). */
    BigUInt reconstruct(const std::vector<u128> &residues) const;

    /**
     * Tower-wise operations on residue vectors of polynomials:
     * element [t][i] is coefficient i in tower t.
     */
    using TowerPoly = std::vector<std::vector<u128>>;

    /** Split a vector of big coefficients into towers. */
    TowerPoly decomposePoly(const std::vector<BigUInt> &coeffs) const;

    /** Reassemble big coefficients from towers. */
    std::vector<BigUInt> reconstructPoly(const TowerPoly &towers) const;

  private:
    const RnsBasis &basis_;
    std::vector<BigUInt> q_over_qi_;   ///< Q / q_i
    std::vector<u128> q_over_qi_inv_;  ///< (Q/q_i)^-1 mod q_i
};

} // namespace rpu

#endif // RPU_RNS_CRT_HH
