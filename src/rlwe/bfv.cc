#include "rlwe/bfv.hh"

#include <cmath>

#include "common/logging.hh"
#include "modmath/primegen.hh"

namespace rpu {

namespace {

/** One-time modulus construction helper (member init order). */
u128
makePrime(const RlweParams &p)
{
    p.validate();
    return nttPrime(p.qBits, p.n);
}

} // namespace

BfvContext::BfvContext(const RlweParams &params, uint64_t seed)
    : params_(params), mod_(makePrime(params)), tw_(mod_, params.n),
      ntt_(tw_), rng_(seed)
{
    delta_ = mod_.value() / params_.plaintextModulus;
}

std::vector<u128>
BfvContext::samplePolyUniform()
{
    return randomPoly(mod_, params_.n, rng_);
}

std::vector<u128>
BfvContext::samplePolySmall()
{
    std::vector<u128> p(params_.n);
    const uint64_t span = 2 * params_.noiseBound + 1;
    for (auto &v : p) {
        const int64_t e = int64_t(rng_.below64(span)) -
                          int64_t(params_.noiseBound);
        v = e >= 0 ? u128(e) : mod_.value() - u128(-e);
    }
    return p;
}

std::vector<u128>
BfvContext::samplePolyTernary()
{
    std::vector<u128> p(params_.n);
    for (auto &v : p) {
        const uint64_t r = rng_.below64(3);
        v = r == 0 ? u128(0) : r == 1 ? u128(1) : mod_.value() - 1;
    }
    return p;
}

SecretKey
BfvContext::keygen()
{
    return SecretKey{samplePolyTernary()};
}

std::vector<u128>
BfvContext::liftPlain(const std::vector<uint64_t> &plain) const
{
    rpu_assert(plain.size() == params_.n, "plaintext size mismatch");
    std::vector<u128> m(params_.n);
    for (size_t i = 0; i < plain.size(); ++i)
        m[i] = u128(plain[i] % params_.plaintextModulus);
    return m;
}

Ciphertext
BfvContext::encrypt(const SecretKey &sk,
                    const std::vector<uint64_t> &message)
{
    const std::vector<u128> m = liftPlain(message);
    const std::vector<u128> a = samplePolyUniform();
    const std::vector<u128> e = samplePolySmall();

    // c0 = a*s + e + Delta*m; c1 = -a.
    std::vector<u128> as = negacyclicMulNtt(ntt_, a, sk.s);
    std::vector<u128> c0 = polyAdd(mod_, as, e);
    c0 = polyAdd(mod_, c0, polyScale(mod_, delta_, m));

    std::vector<u128> c1(params_.n);
    for (size_t i = 0; i < a.size(); ++i)
        c1[i] = mod_.neg(a[i]);
    return Ciphertext{std::move(c0), std::move(c1)};
}

std::vector<uint64_t>
BfvContext::decrypt(const SecretKey &sk, const Ciphertext &ct) const
{
    // v = c0 + c1*s = e + Delta*m; round(t*v/q) recovers m.
    const std::vector<u128> c1s = negacyclicMulNtt(ntt_, ct.c1, sk.s);
    const std::vector<u128> v = polyAdd(mod_, ct.c0, c1s);

    const u128 q = mod_.value();
    const uint64_t t = params_.plaintextModulus;
    std::vector<uint64_t> out(params_.n);
    for (size_t i = 0; i < v.size(); ++i) {
        // m_i = floor((t*v_i + q/2) / q) mod t
        U256 num = mulWide(v[i], u128(t));
        const U256 half = U256::fromU128(q >> 1);
        U256 sum = num;
        addWithCarry(sum, half);
        u128 rem;
        const U256 quot = divmod256by128(sum, q, rem);
        out[i] = uint64_t(quot.lo % t);
    }
    return out;
}

Ciphertext
BfvContext::add(const Ciphertext &a, const Ciphertext &b) const
{
    return Ciphertext{polyAdd(mod_, a.c0, b.c0),
                      polyAdd(mod_, a.c1, b.c1)};
}

Ciphertext
BfvContext::mulPlain(const Ciphertext &ct,
                     const std::vector<uint64_t> &plain,
                     const PolyMul &mul) const
{
    const std::vector<u128> p = liftPlain(plain);
    return Ciphertext{mul(ct.c0, p), mul(ct.c1, p)};
}

Ciphertext
BfvContext::mulPlain(const Ciphertext &ct,
                     const std::vector<uint64_t> &plain) const
{
    return mulPlain(ct, plain, [this](const std::vector<u128> &a,
                                      const std::vector<u128> &b) {
        return negacyclicMulNtt(ntt_, a, b);
    });
}

double
BfvContext::noiseBudgetBits(const SecretKey &sk, const Ciphertext &ct,
                            const std::vector<uint64_t> &expected) const
{
    // Noise = v - Delta*m, measured as a signed magnitude; budget is
    // how many more bits it can grow before rounding fails.
    const std::vector<u128> c1s = negacyclicMulNtt(ntt_, ct.c1, sk.s);
    const std::vector<u128> v = polyAdd(mod_, ct.c0, c1s);
    const u128 q = mod_.value();

    u128 worst = 0;
    for (size_t i = 0; i < v.size(); ++i) {
        const u128 dm = mod_.mul(delta_, u128(expected[i] %
                                              params_.plaintextModulus));
        u128 noise = mod_.sub(v[i], dm);
        if (noise > q / 2)
            noise = q - noise; // centred magnitude
        worst = std::max(worst, noise);
    }
    const double limit = std::log2(double(q)) -
                         std::log2(2.0 * params_.plaintextModulus);
    const double used =
        worst == 0 ? 0.0 : std::log2(double(worst) + 1.0);
    return std::max(0.0, limit - used);
}

} // namespace rpu
