#include "rlwe/bfv.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "modmath/primegen.hh"
#include "poly/polynomial.hh"

namespace rpu {

BfvContext::BfvContext(const RlweParams &params, uint64_t seed)
    : params_(params), rng_(seed)
{
    params_.validate();
    // One prime-generation pass for the whole tensor chain; the
    // ciphertext basis is its L-tower prefix (so q — and every
    // ciphertext-path launch count — is exactly what an L-tower
    // context had), and the L+1 same-width auxiliary towers give
    // mulCt's tensor product integer room: |coeff| <= n*q^2/4 needs
    // Q_aux >= n*q/2, and one extra tower covers the factor n for
    // every supported ring dimension.
    rpu_assert((u128(1) << params_.towerBits) >= 2 * params_.n,
               "tower width %u too narrow for the tensor chain at "
               "n=%llu",
               params_.towerBits, (unsigned long long)params_.n);
    const std::vector<u128> primes = nttPrimes(
        params_.towerBits, params_.n, 2 * params_.towers + 1);
    basis_ = std::make_unique<RnsBasis>(std::vector<u128>(
        primes.begin(), primes.begin() + ptrdiff_t(params_.towers)));
    basisExt_ = std::make_unique<RnsBasis>(primes);
    crt_ = std::make_unique<CrtContext>(*basis_);
    crtExt_ = std::make_unique<CrtContext>(*basisExt_);
    evaluator_ = RlweEvaluator(params_.n, basisExt_.get());

    delta_ = basis_->q() / BigUInt(params_.plaintextModulus);
    delta_res_.resize(params_.towers);
    for (size_t t = 0; t < params_.towers; ++t)
        delta_res_[t] = (delta_ % BigUInt::fromU128(
                                      basis_->prime(t))).low128();
}

SecretKey
BfvContext::keygen()
{
    SecretKey sk;
    sk.s.resize(params_.n);
    for (auto &v : sk.s) {
        const uint64_t r = rng_.below64(3);
        v = r == 0 ? 0 : r == 1 ? 1 : -1;
    }
    return sk;
}

RlweEvaluator::TowerPoly
BfvContext::secretResidues(const SecretKey &sk) const
{
    rpu_assert(sk.s.size() == params_.n, "secret key size mismatch");
    RlweEvaluator::TowerPoly st(params_.towers,
                                std::vector<u128>(params_.n));
    for (size_t t = 0; t < params_.towers; ++t) {
        const Modulus &mod = basis_->modulus(t);
        for (size_t i = 0; i < params_.n; ++i) {
            const int8_t c = sk.s[i];
            st[t][i] = c == 0 ? u128(0)
                              : c > 0 ? u128(1) : mod.value() - 1;
        }
    }
    return st;
}

std::vector<uint64_t>
BfvContext::liftPlain(const std::vector<uint64_t> &plain) const
{
    rpu_assert(plain.size() == params_.n, "plaintext size mismatch");
    std::vector<uint64_t> m(params_.n);
    for (size_t i = 0; i < plain.size(); ++i)
        m[i] = plain[i] % params_.plaintextModulus;
    return m;
}

BfvPlaintext
BfvContext::encodePlain(const std::vector<uint64_t> &plain) const
{
    const std::vector<uint64_t> m = liftPlain(plain);
    RlweEvaluator::TowerPoly res(params_.towers,
                                 std::vector<u128>(params_.n));
    for (size_t t = 0; t < params_.towers; ++t) {
        const Modulus &mod = basis_->modulus(t);
        for (size_t i = 0; i < params_.n; ++i)
            res[t][i] = mod.reduce(u128(m[i]));
    }
    // The one forward transform the plaintext ever pays: a batched
    // device dispatch when attached, host transforms otherwise.
    return BfvPlaintext{evaluator_.enterEval(std::move(res))};
}

Ciphertext
BfvContext::encrypt(const SecretKey &sk,
                    const std::vector<uint64_t> &message)
{
    const std::vector<uint64_t> m = liftPlain(message);

    // One small error polynomial, shared by every tower's residues.
    std::vector<int64_t> e(params_.n);
    const uint64_t span = 2 * params_.noiseBound + 1;
    for (auto &v : e)
        v = int64_t(rng_.below64(span)) - int64_t(params_.noiseBound);

    // Residues of Delta*m + e per tower: Delta*m_i's residue mod q_t
    // is (Delta mod q_t) * m_i, because Delta*m_i < q.
    RlweEvaluator::TowerPoly em(params_.towers,
                                std::vector<u128>(params_.n));
    for (size_t t = 0; t < params_.towers; ++t) {
        const Modulus &mod = basis_->modulus(t);
        for (size_t i = 0; i < params_.n; ++i) {
            const u128 dm = mod.mul(delta_res_[t], u128(m[i]));
            const int64_t ei = e[i];
            const u128 er = ei >= 0
                                ? mod.reduce(u128(uint64_t(ei)))
                                : mod.neg(mod.reduce(
                                      u128(uint64_t(-ei))));
            em[t][i] = mod.add(dm, er);
        }
    }

    auto pair = evaluator_.encryptPair(secretResidues(sk), em, rng_);
    return Ciphertext{std::move(pair[0]), std::move(pair[1])};
}

std::vector<uint64_t>
BfvContext::roundToPlain(const std::vector<BigUInt> &wide) const
{
    // m_i = floor((t*v_i + q/2) / q) mod t — the scheme's one
    // centred rounding, on the reconstructed wide coefficients.
    const BigUInt &big_q = basis_->q();
    const BigUInt half_q = big_q >> 1;
    const BigUInt big_t(params_.plaintextModulus);
    std::vector<uint64_t> out(params_.n);
    for (size_t i = 0; i < params_.n; ++i) {
        const BigUInt quot = (wide[i] * big_t + half_q) / big_q;
        out[i] = (quot % big_t).low64();
    }
    return out;
}

std::vector<uint64_t>
BfvContext::decrypt(const SecretKey &sk, const Ciphertext &ct) const
{
    rpu_assert(ct.towers() == params_.towers,
               "ciphertext spans %zu towers, scheme has %zu",
               ct.towers(), params_.towers);
    // v = c0 + c1*s = e + Delta*m per tower; out of RNS exactly once.
    const RlweEvaluator::TowerPoly v =
        evaluator_.innerProduct(ct.c0, ct.c1, secretResidues(sk));
    return roundToPlain(crt_->reconstructPoly(v));
}

std::vector<uint64_t>
BfvContext::decryptWideReference(const SecretKey &sk,
                                 const Ciphertext &ct) const
{
    rpu_assert(ct.towers() == params_.towers,
               "ciphertext spans %zu towers, scheme has %zu",
               ct.towers(), params_.towers);
    rpu_assert(sk.s.size() == params_.n, "secret key size mismatch");
    rpu_assert(ct.c0.domain == ct.c1.domain,
               "ciphertext components in different domains");
    const uint64_t n = params_.n;

    // Leave residency through the host reference transforms only, so
    // this path shares nothing with the device dispatch it checks.
    const auto coeff_towers = [&](const ResiduePoly &p) {
        CrtContext::TowerPoly tp = p.towers;
        if (p.inEval()) {
            for (size_t t = 0; t < tp.size(); ++t)
                evaluator_.hostNtt(t).inverse(tp[t]);
        }
        return tp;
    };
    const std::vector<BigUInt> c0w =
        crt_->reconstructPoly(coeff_towers(ct.c0));
    const std::vector<BigUInt> c1w =
        crt_->reconstructPoly(coeff_towers(ct.c1));

    // c1*s as a schoolbook negacyclic product over the wide
    // coefficients, exploiting the ternary secret: each nonzero s_j
    // adds +-c1 shifted by j. Addends stay below q, so the
    // accumulator never exceeds (n+1)*q; one reduction at the end.
    const BigUInt &big_q = basis_->q();
    std::vector<BigUInt> v = c0w;
    for (size_t j = 0; j < n; ++j) {
        const int8_t sj = sk.s[j];
        if (sj == 0)
            continue;
        for (size_t i = 0; i < n; ++i) {
            size_t k = i + j;
            bool negate = sj < 0;
            if (k >= n) {
                k -= n; // x^n = -1
                negate = !negate;
            }
            v[k] = v[k] + (negate ? big_q - c1w[i] : c1w[i]);
        }
    }
    for (auto &c : v)
        c = c % big_q;
    return roundToPlain(v);
}

Ciphertext
BfvContext::add(const Ciphertext &a, const Ciphertext &b) const
{
    auto pair = evaluator_.addPair(a.c0, a.c1, b.c0, b.c1);
    return Ciphertext{std::move(pair[0]), std::move(pair[1])};
}

Ciphertext
BfvContext::sub(const Ciphertext &a, const Ciphertext &b) const
{
    auto pair = evaluator_.subPair(a.c0, a.c1, b.c0, b.c1);
    return Ciphertext{std::move(pair[0]), std::move(pair[1])};
}

Ciphertext
BfvContext::mulPlain(const Ciphertext &ct, const BfvPlaintext &pt) const
{
    auto pair =
        evaluator_.mulPlainPair(ct.c0, ct.c1, pt.rp, ct.towers());
    return Ciphertext{std::move(pair[0]), std::move(pair[1])};
}

Ciphertext
BfvContext::mulPlain(const Ciphertext &ct,
                     const std::vector<uint64_t> &plain) const
{
    return mulPlain(ct, encodePlain(plain));
}

RelinKey
BfvContext::makeRelinKey(const SecretKey &sk, unsigned digitBits)
{
    return evaluator_.makeRelinKey(secretResidues(sk),
                                   params_.noiseBound, rng_, digitBits);
}

std::vector<ResiduePoly>
BfvContext::extendComponents(
    const std::vector<const ResiduePoly *> &comps) const
{
    const size_t L = params_.towers;
    const size_t E = basisExt_->towers();
    const BigUInt &big_q = basis_->q();
    const BigUInt half_q = big_q >> 1;

    // Coefficient residues of every component (on copies; one
    // batched inverse dispatch covers all of them).
    std::vector<ResiduePoly> coeff(comps.size());
    std::vector<ResiduePoly *> movers;
    movers.reserve(comps.size());
    for (size_t i = 0; i < comps.size(); ++i) {
        rpu_assert(comps[i] != nullptr && comps[i]->towerCount() == L,
                   "component %zu does not span the ciphertext chain",
                   i);
        coeff[i] = *comps[i];
        movers.push_back(&coeff[i]);
    }
    evaluator_.ops().convert(movers, ResidueDomain::Coeff);

    // The auxiliary residues of each component's centred integer
    // coefficients: out of RNS once per component, then reduced mod
    // every auxiliary prime. Independent per component, so the
    // BigUInt work fans across the device's worker pool.
    std::vector<BigUInt> aux_primes_big(E - L);
    for (size_t k = L; k < E; ++k)
        aux_primes_big[k - L] = BigUInt::fromU128(basisExt_->prime(k));
    std::vector<RlweEvaluator::TowerPoly> aux(comps.size());
    evaluator_.forEachUnit(comps.size(), [&](size_t i) {
        const std::vector<BigUInt> wide =
            crt_->reconstructPoly(coeff[i].towers);
        aux[i].assign(E - L, std::vector<u128>(params_.n));
        for (size_t k = L; k < E; ++k) {
            const Modulus &mod = basisExt_->modulus(k);
            const BigUInt &p_big = aux_primes_big[k - L];
            for (size_t c = 0; c < params_.n; ++c) {
                if (wide[c] <= half_q) {
                    aux[i][k - L][c] = (wide[c] % p_big).low128();
                } else {
                    aux[i][k - L][c] = mod.neg(
                        ((big_q - wide[c]) % p_big).low128());
                }
            }
        }
    });

    // Assemble the extended polynomials. Eval-resident components
    // reuse their resident towers for the prefix — the L forward
    // transforms a residency-oblivious extension would redo land in
    // the elision ledger — and only the auxiliary towers enter the
    // evaluation domain, in one batched dispatch for all of them.
    // Coeff-resident components just grow their coefficient towers
    // and convert whole.
    std::vector<ResiduePoly> out(comps.size());
    std::vector<RlweEvaluator::TowerPoly> aux_pending;
    std::vector<size_t> aux_owner;
    std::vector<ResiduePoly *> full_movers;
    for (size_t i = 0; i < comps.size(); ++i) {
        if (comps[i]->inEval()) {
            aux_pending.push_back(std::move(aux[i]));
            aux_owner.push_back(i);
        } else {
            out[i].domain = ResidueDomain::Coeff;
            out[i].towers = std::move(coeff[i].towers);
            for (std::vector<u128> &tw : aux[i])
                out[i].towers.push_back(std::move(tw));
            full_movers.push_back(&out[i]);
        }
    }
    if (!aux_pending.empty()) {
        auto aux_eval =
            evaluator_.forwardTowersAt(std::move(aux_pending), L);
        for (size_t m = 0; m < aux_eval.size(); ++m) {
            const size_t i = aux_owner[m];
            out[i].domain = ResidueDomain::Eval;
            out[i].towers = comps[i]->towers;
            for (std::vector<u128> &tw : aux_eval[m])
                out[i].towers.push_back(std::move(tw));
        }
        evaluator_.ops().noteElidedConversions(aux_eval.size() * L);
    }
    if (!full_movers.empty())
        evaluator_.ops().convert(full_movers, ResidueDomain::Eval);
    return out;
}

std::array<ResiduePoly, 3>
BfvContext::scaleRoundHook(std::array<ResiduePoly, 3> d) const
{
    const size_t L = params_.towers;
    const BigUInt &big_Q = basisExt_->q();
    const BigUInt half_Q = big_Q >> 1;
    const BigUInt &big_q = basis_->q();
    const BigUInt half_q = big_q >> 1;
    const BigUInt big_t(params_.plaintextModulus);

    // All three tensor components leave the extended evaluation
    // domain together (one batched inverse dispatch).
    evaluator_.ops().convert({&d[0], &d[1], &d[2]},
                             ResidueDomain::Coeff);

    std::vector<BigUInt> primes_big(L);
    for (size_t t = 0; t < L; ++t)
        primes_big[t] = BigUInt::fromU128(basis_->prime(t));

    // Per component: reconstruct the exact centred tensor integer V
    // mod the full tensor modulus, scale-and-round R = round(t*V/q)
    // (half-away-from-zero on the centred magnitude), reduce mod q,
    // and take the ciphertext chain's residues. Independent per
    // component — the BigUInt work fans across the worker pool.
    std::array<ResiduePoly, 3> out;
    evaluator_.forEachUnit(3, [&](size_t c) {
        const std::vector<BigUInt> wide =
            crtExt_->reconstructPoly(d[c].towers);
        out[c].domain = ResidueDomain::Coeff;
        out[c].towers.assign(L, std::vector<u128>(params_.n));
        for (size_t i = 0; i < params_.n; ++i) {
            const bool neg = wide[i] > half_Q;
            const BigUInt mag =
                neg ? big_Q - wide[i] : BigUInt(wide[i]);
            BigUInt r = ((mag * big_t + half_q) / big_q) % big_q;
            if (neg && !r.isZero())
                r = big_q - r;
            for (size_t t = 0; t < L; ++t)
                out[c].towers[t][i] = (r % primes_big[t]).low128();
        }
    });

    // c0 and c1 re-enter the evaluation domain (one batched forward
    // dispatch); c2 stays in Coeff — the relinearisation's digit
    // split starts there anyway, so its inverse pass is elided.
    evaluator_.ops().convert({&out[0], &out[1]}, ResidueDomain::Eval);
    return out;
}

Ciphertext
BfvContext::mulCt(const Ciphertext &a, const Ciphertext &b,
                  const RelinKey &rk) const
{
    rpu_assert(a.towers() == params_.towers &&
                   b.towers() == params_.towers,
               "mulCt operands must span the ciphertext chain");

    // Base-extend all four components onto the tensor chain, then
    // the evaluator's shared pipeline: tensor product, this scheme's
    // scale-and-round as the degree-2 hook, gadget key-switch.
    const std::vector<ResiduePoly> ext =
        extendComponents({&a.c0, &a.c1, &b.c0, &b.c1});
    auto pair = evaluator_.mulPair(
        ext[0], ext[1], ext[2], ext[3], rk,
        [this](std::array<ResiduePoly, 3> d) {
            return scaleRoundHook(std::move(d));
        });
    return Ciphertext{std::move(pair[0]), std::move(pair[1])};
}

void
BfvContext::toCoeff(Ciphertext &ct) const
{
    evaluator_.convertPair(ct.c0, ct.c1, ResidueDomain::Coeff);
}

void
BfvContext::toEval(Ciphertext &ct) const
{
    evaluator_.convertPair(ct.c0, ct.c1, ResidueDomain::Eval);
}

double
BfvContext::noiseBudgetBits(const SecretKey &sk, const Ciphertext &ct,
                            const std::vector<uint64_t> &expected) const
{
    // Noise = v - Delta*m, measured as a signed magnitude; budget is
    // how many more bits it can grow before rounding fails.
    const RlweEvaluator::TowerPoly vt =
        evaluator_.innerProduct(ct.c0, ct.c1, secretResidues(sk));
    const std::vector<BigUInt> v = crt_->reconstructPoly(vt);

    const BigUInt &big_q = basis_->q();
    const BigUInt half_q = big_q >> 1;
    BigUInt worst;
    for (size_t i = 0; i < v.size(); ++i) {
        const uint64_t m = expected[i] % params_.plaintextModulus;
        const BigUInt dm = delta_ * BigUInt(m); // Delta*m < q
        BigUInt noise =
            v[i] >= dm ? v[i] - dm : (v[i] + big_q) - dm;
        if (noise > half_q)
            noise = big_q - noise; // centred magnitude
        if (noise > worst)
            worst = noise;
    }
    const double limit =
        std::log2(big_q.toDouble()) -
        std::log2(2.0 * double(params_.plaintextModulus));
    const double used =
        worst.isZero() ? 0.0 : std::log2(worst.toDouble() + 1.0);
    return std::max(0.0, limit - used);
}

void
BfvContext::attachDevice(std::shared_ptr<RpuDevice> device)
{
    rpu_assert(device != nullptr, "no device");
    evaluator_.attachDevice(std::move(device));
}

} // namespace rpu
