#include "rlwe/bfv.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "modmath/primegen.hh"
#include "rpu/device.hh"

namespace rpu {

namespace {

/** One-time modulus construction helper (member init order). */
u128
makePrime(const RlweParams &p)
{
    p.validate();
    return nttPrime(p.qBits, p.n);
}

} // namespace

BfvContext::BfvContext(const RlweParams &params, uint64_t seed)
    : params_(params), mod_(makePrime(params)), tw_(mod_, params.n),
      ntt_(tw_), rng_(seed)
{
    delta_ = mod_.value() / params_.plaintextModulus;
}

std::vector<u128>
BfvContext::samplePolyUniform()
{
    return randomPoly(mod_, params_.n, rng_);
}

std::vector<u128>
BfvContext::samplePolySmall()
{
    std::vector<u128> p(params_.n);
    const uint64_t span = 2 * params_.noiseBound + 1;
    for (auto &v : p) {
        const int64_t e = int64_t(rng_.below64(span)) -
                          int64_t(params_.noiseBound);
        v = e >= 0 ? u128(e) : mod_.value() - u128(-e);
    }
    return p;
}

std::vector<u128>
BfvContext::samplePolyTernary()
{
    std::vector<u128> p(params_.n);
    for (auto &v : p) {
        const uint64_t r = rng_.below64(3);
        v = r == 0 ? u128(0) : r == 1 ? u128(1) : mod_.value() - 1;
    }
    return p;
}

SecretKey
BfvContext::keygen()
{
    return SecretKey{samplePolyTernary()};
}

std::vector<u128>
BfvContext::liftPlain(const std::vector<uint64_t> &plain) const
{
    rpu_assert(plain.size() == params_.n, "plaintext size mismatch");
    std::vector<u128> m(params_.n);
    for (size_t i = 0; i < plain.size(); ++i)
        m[i] = u128(plain[i] % params_.plaintextModulus);
    return m;
}

Ciphertext
BfvContext::encrypt(const SecretKey &sk,
                    const std::vector<uint64_t> &message)
{
    const std::vector<u128> m = liftPlain(message);
    const std::vector<u128> a = samplePolyUniform();
    const std::vector<u128> e = samplePolySmall();

    // c0 = a*s + e + Delta*m; c1 = -a.
    std::vector<u128> as = negacyclicMulNtt(ntt_, a, sk.s);
    std::vector<u128> c0 = polyAdd(mod_, as, e);
    c0 = polyAdd(mod_, c0, polyScale(mod_, delta_, m));

    std::vector<u128> c1(params_.n);
    for (size_t i = 0; i < a.size(); ++i)
        c1[i] = mod_.neg(a[i]);
    return Ciphertext{std::move(c0), std::move(c1)};
}

std::vector<uint64_t>
BfvContext::decrypt(const SecretKey &sk, const Ciphertext &ct) const
{
    // v = c0 + c1*s = e + Delta*m; round(t*v/q) recovers m.
    const std::vector<u128> c1s = negacyclicMulNtt(ntt_, ct.c1, sk.s);
    const std::vector<u128> v = polyAdd(mod_, ct.c0, c1s);

    const u128 q = mod_.value();
    const uint64_t t = params_.plaintextModulus;
    std::vector<uint64_t> out(params_.n);
    for (size_t i = 0; i < v.size(); ++i) {
        // m_i = floor((t*v_i + q/2) / q) mod t
        U256 num = mulWide(v[i], u128(t));
        const U256 half = U256::fromU128(q >> 1);
        U256 sum = num;
        addWithCarry(sum, half);
        u128 rem;
        const U256 quot = divmod256by128(sum, q, rem);
        out[i] = uint64_t(quot.lo % t);
    }
    return out;
}

Ciphertext
BfvContext::add(const Ciphertext &a, const Ciphertext &b) const
{
    return Ciphertext{polyAdd(mod_, a.c0, b.c0),
                      polyAdd(mod_, a.c1, b.c1)};
}

Ciphertext
BfvContext::mulPlain(const Ciphertext &ct,
                     const std::vector<uint64_t> &plain,
                     const PolyMul &mul) const
{
    const std::vector<u128> p = liftPlain(plain);
    return Ciphertext{mul(ct.c0, p), mul(ct.c1, p)};
}

Ciphertext
BfvContext::mulPlain(const Ciphertext &ct,
                     const std::vector<uint64_t> &plain) const
{
    if (device_)
        return mulPlainRns(ct, plain);
    return mulPlain(ct, plain, [this](const std::vector<u128> &a,
                                      const std::vector<u128> &b) {
        return negacyclicMulNtt(ntt_, a, b);
    });
}

void
BfvContext::attachDevice(std::shared_ptr<RpuDevice> device,
                         unsigned tower_bits)
{
    rpu_assert(device != nullptr, "no device");
    rpu_assert(tower_bits >= 30 && tower_bits <= 128,
               "tower width %u out of range", tower_bits);
    rpu_assert(params_.n >= 1024,
               "RPU kernels need n >= 1024, scheme has n=%llu",
               (unsigned long long)params_.n);

    // The integer negacyclic product of two polynomials with
    // coefficients in [0, q) has coefficients of magnitude below
    // n * q^2. The basis modulus Q must exceed twice that so the
    // centred representative is unambiguous. Primes from nttBasis
    // have tower_bits bits, i.e. each contributes > tower_bits - 1
    // bits to Q.
    const size_t product_bits =
        2 * mod_.bits() + log2Ceil(params_.n) + 2;
    const size_t towers =
        (product_bits + tower_bits - 2) / (tower_bits - 1);

    device_ = std::move(device);
    rns_basis_ = std::make_unique<RnsBasis>(
        RnsBasis::nttBasis(tower_bits, params_.n, towers));
    rns_crt_ = std::make_unique<CrtContext>(*rns_basis_);
    rns_ops_ = ResidueOps(params_.n, rns_basis_.get());
    rns_ops_.setDevice(device_);
}

CrtContext::TowerPoly
BfvContext::rnsTowers(const std::vector<u128> &poly) const
{
    std::vector<BigUInt> wide(params_.n);
    for (size_t i = 0; i < params_.n; ++i)
        wide[i] = BigUInt::fromU128(poly[i]);
    return rns_crt_->decomposePoly(wide);
}

std::vector<u128>
BfvContext::rnsReduceCentred(const CrtContext::TowerPoly &towers) const
{
    rpu_assert(rns_crt_ != nullptr, "no device attached");
    // Reconstruct the exact integer product (centred mod Q), then
    // reduce mod q.
    const std::vector<BigUInt> wide = rns_crt_->reconstructPoly(towers);
    const BigUInt &big_q = rns_basis_->q();
    const BigUInt half_q = big_q >> 1;
    const BigUInt scheme_q = BigUInt::fromU128(mod_.value());

    std::vector<u128> out(params_.n);
    for (size_t i = 0; i < params_.n; ++i) {
        if (wide[i] > half_q) {
            // Negative coefficient: v - Q in [-nq^2, 0).
            const u128 mag = ((big_q - wide[i]) % scheme_q).low128();
            out[i] = mag == 0 ? 0 : mod_.value() - mag;
        } else {
            out[i] = (wide[i] % scheme_q).low128();
        }
    }
    return out;
}

std::vector<u128>
BfvContext::negacyclicMulRns(const std::vector<u128> &a,
                             const std::vector<u128> &b) const
{
    rpu_assert(device_ != nullptr, "no device attached");
    rpu_assert(a.size() == params_.n && b.size() == params_.n,
               "operand size mismatch");

    // All towers' fused negacyclic products in one kernel launch.
    const CrtContext::TowerPoly tr =
        device_->mulTowers(params_.n, rns_basis_->primes(),
                           rnsTowers(a), rnsTowers(b));
    return rnsReduceCentred(tr);
}

Ciphertext
BfvContext::mulPlainRns(const Ciphertext &ct,
                        const std::vector<uint64_t> &plain) const
{
    // Domain-tagged residue polynomials: CRT-decompose the plaintext
    // and both ciphertext components, enter the evaluation domain in
    // one batched-transform dispatch (three forward passes over the
    // basis — the fused per-component kernels transformed the shared
    // plaintext twice), take both tower products as pure pointwise
    // launches, and leave the evaluation domain once for CRT
    // reconstruction. The device still decides the dispatch shape:
    // batched all-towers kernels when serial, per-tower launches
    // fanned across the worker pool when parallel — bit-identical
    // results either way.
    ResiduePoly pt(ResidueDomain::Coeff, rnsTowers(liftPlain(plain)));
    std::vector<ResiduePoly> comps(2);
    comps[0] = ResiduePoly(ResidueDomain::Coeff, rnsTowers(ct.c0));
    comps[1] = ResiduePoly(ResidueDomain::Coeff, rnsTowers(ct.c1));
    rns_ops_.convert({&comps[0], &comps[1], &pt}, ResidueDomain::Eval);

    std::vector<ResiduePoly> prods =
        rns_ops_.mulEvalShared(std::move(comps), std::move(pt));

    // Leave the evaluation domain through the async dispatch so
    // component 0's host-side BigUInt reconstruction overlaps
    // component 1's inverse launches still running on the worker
    // pool (the same join-order overlap the fused path had).
    std::vector<std::vector<std::vector<u128>>> sets;
    sets.reserve(2);
    sets.push_back(std::move(prods[0].towers));
    sets.push_back(std::move(prods[1].towers));
    auto pending = device_->transformTowersBatchAsync(
        params_.n, rns_basis_->primes(), std::move(sets), true);
    std::vector<u128> c0 = rnsReduceCentred(
        RpuDevice::collectTowers(std::move(pending[0])));
    std::vector<u128> c1 = rnsReduceCentred(
        RpuDevice::collectTowers(std::move(pending[1])));
    return Ciphertext{std::move(c0), std::move(c1)};
}

double
BfvContext::noiseBudgetBits(const SecretKey &sk, const Ciphertext &ct,
                            const std::vector<uint64_t> &expected) const
{
    // Noise = v - Delta*m, measured as a signed magnitude; budget is
    // how many more bits it can grow before rounding fails.
    const std::vector<u128> c1s = negacyclicMulNtt(ntt_, ct.c1, sk.s);
    const std::vector<u128> v = polyAdd(mod_, ct.c0, c1s);
    const u128 q = mod_.value();

    u128 worst = 0;
    for (size_t i = 0; i < v.size(); ++i) {
        const u128 dm = mod_.mul(delta_, u128(expected[i] %
                                              params_.plaintextModulus));
        u128 noise = mod_.sub(v[i], dm);
        if (noise > q / 2)
            noise = q - noise; // centred magnitude
        worst = std::max(worst, noise);
    }
    const double limit = std::log2(double(q)) -
                         std::log2(2.0 * params_.plaintextModulus);
    const double used =
        worst == 0 ? 0.0 : std::log2(double(worst) + 1.0);
    return std::max(0.0, limit - used);
}

} // namespace rpu
