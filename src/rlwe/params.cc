#include "rlwe/params.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

void
RlweParams::validate() const
{
    if (!isPow2(n) || n < 1024)
        rpu_fatal("ring dimension must be a power of two >= 1024");
    if (qBits < 40 || qBits > 128)
        rpu_fatal("qBits must be in [40, 128]");
    if (plaintextModulus < 2)
        rpu_fatal("plaintext modulus must be >= 2");
    if (noiseBound == 0)
        rpu_fatal("noise bound must be positive");
}

} // namespace rpu
