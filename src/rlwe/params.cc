#include "rlwe/params.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

void
RlweParams::validate() const
{
    if (!isPow2(n) || n < 1024)
        rpu_fatal("ring dimension must be a power of two >= 1024");
    if (towers < 1)
        rpu_fatal("modulus chain needs at least one tower");
    if (towerBits < 30 || towerBits > 120)
        rpu_fatal("towerBits must be in [30, 120]");
    if (plaintextModulus < 2)
        rpu_fatal("plaintext modulus must be >= 2");
    if (noiseBound == 0)
        rpu_fatal("noise bound must be positive");
}

} // namespace rpu
