#include "rlwe/ckks.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "modmath/primegen.hh"

namespace rpu {

namespace {

/** Nearest double to a u128 (tower primes, for scale tracking). */
double
u128ToDouble(u128 v)
{
    return double(uint64_t(v >> 64)) * 18446744073709551616.0 +
           double(uint64_t(v));
}

} // namespace

void
CkksParams::validate() const
{
    if (n < 8 || (n & (n - 1)) != 0)
        rpu_fatal("CKKS ring dimension must be a power of two >= 8, "
                  "got %llu",
                  (unsigned long long)n);
    if (towers < 1)
        rpu_fatal("CKKS modulus chain needs at least one tower");
    if (towerBits < 30 || towerBits > 120)
        rpu_fatal("tower width %u out of range [30, 120]", towerBits);
    if (!(scale > 1.0))
        rpu_fatal("encoding scale must exceed 1");
}

CkksContext::CkksContext(const CkksParams &params, uint64_t seed)
    : params_(params), encoder_(params.n), rng_(seed)
{
    params_.validate();

    // One prime generation pass; every chain prefix shares it, so a
    // rescaled ciphertext's towers are exactly the leading towers of
    // the full chain.
    const std::vector<u128> primes =
        nttPrimes(params_.towerBits, params_.n, params_.towers);
    prefixes_.reserve(params_.towers);
    crts_.reserve(params_.towers);
    for (size_t k = 1; k <= params_.towers; ++k) {
        prefixes_.push_back(std::make_unique<RnsBasis>(std::vector<u128>(
            primes.begin(), primes.begin() + ptrdiff_t(k))));
        crts_.push_back(std::make_unique<CrtContext>(*prefixes_.back()));
    }

    // The shared op pipeline over the full chain: host transforms by
    // default, rerouted through the device by attachDevice.
    evaluator_ = RlweEvaluator(params_.n, prefixes_.back().get());
}

const RnsBasis &
CkksContext::prefixBasis(size_t towers) const
{
    rpu_assert(towers >= 1 && towers <= params_.towers,
               "chain prefix %zu out of range [1, %zu]", towers,
               params_.towers);
    return *prefixes_[towers - 1];
}

const CrtContext &
CkksContext::crt(size_t towers) const
{
    rpu_assert(towers >= 1 && towers <= params_.towers,
               "chain prefix %zu out of range [1, %zu]", towers,
               params_.towers);
    return *crts_[towers - 1];
}

CrtContext::TowerPoly
CkksContext::residuesOfSigned(const std::vector<int64_t> &coeffs,
                              size_t towers) const
{
    rpu_assert(coeffs.size() == params_.n, "coefficient count mismatch");
    CrtContext::TowerPoly tp(towers, std::vector<u128>(params_.n));
    for (size_t t = 0; t < towers; ++t) {
        const Modulus &mod = basis().modulus(t);
        for (size_t i = 0; i < params_.n; ++i) {
            const int64_t c = coeffs[i];
            tp[t][i] = c >= 0 ? mod.reduce(u128(uint64_t(c)))
                              : mod.neg(mod.reduce(u128(uint64_t(-c))));
        }
    }
    return tp;
}

u128
CkksContext::liftCentred(u128 r, const Modulus &mod_l,
                         const Modulus &mod_t) const
{
    // r is a residue mod the odd prime q_l; its centred representative
    // is r itself up to (q_l - 1)/2 and r - q_l above.
    if (r <= (mod_l.value() >> 1))
        return mod_t.reduce(r);
    return mod_t.neg(mod_t.reduce(mod_l.value() - r));
}

CkksSecretKey
CkksContext::keygen()
{
    CkksSecretKey sk;
    sk.s.resize(params_.n);
    for (auto &v : sk.s) {
        const uint64_t r = rng_.below64(3);
        v = r == 0 ? 0 : r == 1 ? 1 : -1;
    }
    return sk;
}

CkksPlaintext
CkksContext::encodePlain(
    const std::vector<std::complex<double>> &values,
    size_t towers) const
{
    if (towers == 0)
        towers = params_.towers;
    rpu_assert(towers <= params_.towers,
               "encode over %zu towers, chain has %zu", towers,
               params_.towers);
    CkksPlaintext pt;
    pt.scale = params_.scale;
    // The one forward transform the plaintext ever pays: a batched
    // device dispatch when attached, host transforms otherwise.
    pt.rp = evaluator_.enterEval(residuesOfSigned(
        encoder_.encode(values, params_.scale), towers));
    return pt;
}

CkksPlaintext
CkksContext::encodePlainCoeff(
    const std::vector<std::complex<double>> &values,
    size_t towers) const
{
    if (towers == 0)
        towers = params_.towers;
    rpu_assert(towers <= params_.towers,
               "encode over %zu towers, chain has %zu", towers,
               params_.towers);
    CkksPlaintext pt;
    pt.scale = params_.scale;
    pt.rp = ResiduePoly(
        ResidueDomain::Coeff,
        residuesOfSigned(encoder_.encode(values, params_.scale),
                         towers));
    return pt;
}

CkksCiphertext
CkksContext::encrypt(const CkksSecretKey &sk,
                     const std::vector<std::complex<double>> &values)
{
    return encrypt(sk, values, rng_);
}

CkksCiphertext
CkksContext::encrypt(const CkksSecretKey &sk,
                     const std::vector<std::complex<double>> &values,
                     Rng &rng) const
{
    rpu_assert(sk.s.size() == params_.n, "secret key size mismatch");
    const size_t L = params_.towers;

    // The message+error and secret are single integer polynomials;
    // each tower sees their residues. The born-Eval assembly itself
    // (mask sampled directly in evaluation form, one host forward
    // transform per tower for the residues) is the evaluator's.
    const std::vector<int64_t> m =
        encoder_.encode(values, params_.scale);
    std::vector<int64_t> em(params_.n), s(params_.n);
    const uint64_t span = 2 * params_.noiseBound + 1;
    for (size_t i = 0; i < params_.n; ++i) {
        const int64_t e = int64_t(rng.below64(span)) -
                          int64_t(params_.noiseBound);
        em[i] = m[i] + e;
        s[i] = sk.s[i];
    }

    auto pair = evaluator_.encryptPair(residuesOfSigned(s, L),
                                       residuesOfSigned(em, L), rng);
    CkksCiphertext ct;
    ct.scale = params_.scale;
    ct.c0 = std::move(pair[0]);
    ct.c1 = std::move(pair[1]);
    return ct;
}

std::vector<std::complex<double>>
CkksContext::decrypt(const CkksSecretKey &sk,
                     const CkksCiphertext &ct) const
{
    rpu_assert(ct.towers() >= 1, "empty ciphertext");
    rpu_assert(ct.c0.domain == ct.c1.domain,
               "ciphertext components in different domains");
    const size_t L = ct.towers();

    std::vector<int64_t> s(params_.n);
    for (size_t i = 0; i < params_.n; ++i)
        s[i] = sk.s[i];

    // v = c0 + c1*s per tower = m + e in RNS; this is the scheme's
    // forced return to coefficients (Eval-resident ciphertexts pay
    // one inverse transform per tower, never a forward one).
    const CrtContext::TowerPoly v = evaluator_.innerProduct(
        ct.c0, ct.c1, residuesOfSigned(s, L));

    // Out of RNS exactly once: reconstruct mod the active Q, centre,
    // and decode at the ciphertext's scale.
    const std::vector<BigUInt> wide = crt(L).reconstructPoly(v);
    const BigUInt &big_q = prefixBasis(L).q();
    const BigUInt half_q = big_q >> 1;
    std::vector<double> coeffs(params_.n);
    for (size_t i = 0; i < params_.n; ++i) {
        coeffs[i] = wide[i] > half_q ? -(big_q - wide[i]).toDouble()
                                     : wide[i].toDouble();
    }
    return encoder_.decode(coeffs, ct.scale);
}

CkksCiphertext
CkksContext::add(const CkksCiphertext &a, const CkksCiphertext &b) const
{
    rpu_assert(a.towers() == b.towers() && a.towers() >= 1,
               "level mismatch: %zu vs %zu towers", a.towers(),
               b.towers());
    rpu_assert(std::abs(a.scale - b.scale) <= 1e-6 * a.scale,
               "scale mismatch: %g vs %g", a.scale, b.scale);
    rpu_assert(a.domain() == b.domain(),
               "residency mismatch: convert one operand first");

    auto pair = evaluator_.addPair(a.c0, a.c1, b.c0, b.c1);
    CkksCiphertext out;
    out.scale = a.scale;
    out.c0 = std::move(pair[0]);
    out.c1 = std::move(pair[1]);
    return out;
}

CkksCiphertext
CkksContext::mulPlain(const CkksCiphertext &ct,
                      const CkksPlaintext &pt) const
{
    rpu_assert(ct.towers() >= 1, "empty ciphertext");

    // Domain alignment, elision accounting, and the pointwise
    // dispatch are the evaluator's; the scheme only tracks scale.
    auto prods = evaluator_.mulPlainPair(ct.c0, ct.c1, pt.rp,
                                         ct.towers());
    CkksCiphertext out;
    out.scale = ct.scale * pt.scale;
    out.c0 = std::move(prods[0]);
    out.c1 = std::move(prods[1]);
    return out;
}

CkksCiphertext
CkksContext::mulPlain(const CkksCiphertext &ct,
                      const std::vector<std::complex<double>> &values)
    const
{
    // Single-use plaintext: encode only the towers this ciphertext's
    // level actually multiplies.
    return mulPlain(ct, encodePlain(values, ct.towers()));
}

RelinKey
CkksContext::makeRelinKey(const CkksSecretKey &sk, unsigned digitBits)
{
    rpu_assert(sk.s.size() == params_.n, "secret key size mismatch");
    std::vector<int64_t> s(params_.n);
    for (size_t i = 0; i < params_.n; ++i)
        s[i] = sk.s[i];
    return evaluator_.makeRelinKey(residuesOfSigned(s, params_.towers),
                                   params_.noiseBound, rng_, digitBits);
}

CkksCiphertext
CkksContext::mulCt(const CkksCiphertext &a, const CkksCiphertext &b,
                   const RelinKey &rk) const
{
    rpu_assert(a.towers() == b.towers() && a.towers() >= 1,
               "level mismatch: %zu vs %zu towers", a.towers(),
               b.towers());

    // Tensor, hook (none for CKKS), and key-switch are the
    // evaluator's; the scheme only tracks the scale product.
    auto pair = evaluator_.mulPair(a.c0, a.c1, b.c0, b.c1, rk);
    CkksCiphertext out;
    out.scale = a.scale * b.scale;
    out.c0 = std::move(pair[0]);
    out.c1 = std::move(pair[1]);
    return out;
}

CkksCiphertext
CkksContext::rescaleFromDropped(
    const CkksCiphertext &ct,
    const std::vector<std::vector<u128>> &dropped) const
{
    rpu_assert(ct.towers() >= 2,
               "rescale needs at least two active towers, have %zu",
               ct.towers());
    rpu_assert(ct.c0.inEval() && ct.c1.inEval(),
               "rescaleFromDropped takes Eval-resident components");
    rpu_assert(dropped.size() == 2 &&
                   dropped[0].size() == params_.n &&
                   dropped[1].size() == params_.n,
               "dropped-tower residues must cover both components");
    const size_t l = ct.towers() - 1; // tower being dropped
    const Modulus &mod_l = basis().modulus(l);
    const u128 q_l = mod_l.value();

    std::vector<u128> inv_ql(l);
    for (size_t t = 0; t < l; ++t)
        inv_ql[t] = basis().modulus(t).inv(
            basis().modulus(t).reduce(q_l));

    CkksCiphertext out;
    out.scale = ct.scale / u128ToDouble(q_l);
    const ResiduePoly *comps[2] = {&ct.c0, &ct.c1};
    ResiduePoly *out_comps[2] = {&out.c0, &out.c1};

    // Re-enter the lift into each remaining tower's evaluation
    // domain via the host transform — the same plaintext-sized
    // side engine encrypt and decrypt use — then subtract and
    // scale pointwise. The ciphertext towers themselves never
    // see a forward transform, so the device's forward-NTT
    // counter stays at zero across a whole rescale chain. The
    // 2*(L-1) independent (component, tower) units fan across
    // the device's worker pool when it has one.
    for (size_t c = 0; c < 2; ++c) {
        out_comps[c]->domain = ResidueDomain::Eval;
        out_comps[c]->towers.resize(l);
    }
    evaluator_.forEachUnit(2 * l, [&](size_t u) {
        const size_t c = u / l;
        const size_t t = u % l;
        const Modulus &mod_t = basis().modulus(t);
        std::vector<u128> d(params_.n);
        for (size_t i = 0; i < params_.n; ++i)
            d[i] = liftCentred(dropped[c][i], mod_l, mod_t);
        hostNtt(t).forward(d);
        out_comps[c]->towers[t] = polyScale(
            mod_t, inv_ql[t],
            polySub(mod_t, comps[c]->towers[t], d));
    });
    return out;
}

CkksCiphertext
CkksContext::rescale(const CkksCiphertext &ct) const
{
    rpu_assert(ct.towers() >= 2,
               "rescale needs at least two active towers, have %zu",
               ct.towers());
    rpu_assert(ct.c0.domain == ct.c1.domain,
               "ciphertext components in different domains");
    const size_t l = ct.towers() - 1; // tower being dropped
    const Modulus &mod_l = basis().modulus(l);
    const u128 q_l = mod_l.value();

    // Exact RNS rescale: with r the centred lift of [c]_l, every
    // remaining tower computes c'_t = (c_t - r) * q_l^-1 mod q_t —
    // the residues of the integer (V - centred(V mod q_l)) / q_l.

    if (ct.c0.inEval()) {
        // The scheme's one forced Coeff boundary: only the *dropped*
        // tower leaves the evaluation domain, as an inverse-NTT
        // launch on the attached device (host transform otherwise);
        // the host half is the shared rescaleFromDropped body, so
        // the serving layer can coalesce many ciphertexts' dropped
        // towers into one launch and still match this bit-for-bit.
        return rescaleFromDropped(
            ct, evaluator_.inverseTower({&ct.c0, &ct.c1}, l));
    }

    std::vector<u128> inv_ql(l);
    for (size_t t = 0; t < l; ++t)
        inv_ql[t] = basis().modulus(t).inv(
            basis().modulus(t).reduce(q_l));

    CkksCiphertext out;
    out.scale = ct.scale / u128ToDouble(q_l);
    const ResiduePoly *comps[2] = {&ct.c0, &ct.c1};
    ResiduePoly *out_comps[2] = {&out.c0, &out.c1};

    // Coefficient-resident input: the same map is plain coefficient
    // arithmetic — no transform at all (the forward/pointwise/inverse
    // sandwich an earlier revision launched here was pure dispatch
    // shape; the transforms cancelled exactly). Bit-identical to
    // toCoeff(rescale(toEval(ct))) on every tower.
    for (size_t c = 0; c < 2; ++c) {
        out_comps[c]->domain = ResidueDomain::Coeff;
        out_comps[c]->towers.resize(l);
        const std::vector<u128> &last = comps[c]->towers[l];
        for (size_t t = 0; t < l; ++t) {
            const Modulus &mod_t = basis().modulus(t);
            std::vector<u128> d(params_.n);
            for (size_t i = 0; i < params_.n; ++i)
                d[i] = mod_t.sub(comps[c]->towers[t][i],
                                 liftCentred(last[i], mod_l, mod_t));
            out_comps[c]->towers[t] =
                polyScale(mod_t, inv_ql[t], d);
        }
    }
    return out;
}

void
CkksContext::toCoeff(CkksCiphertext &ct) const
{
    evaluator_.convertPair(ct.c0, ct.c1, ResidueDomain::Coeff);
}

void
CkksContext::toEval(CkksCiphertext &ct) const
{
    evaluator_.convertPair(ct.c0, ct.c1, ResidueDomain::Eval);
}

void
CkksContext::attachDevice(std::shared_ptr<RpuDevice> device)
{
    rpu_assert(device != nullptr, "no device");
    rpu_assert(params_.n >= 1024,
               "RPU kernels need n >= 1024, scheme has n=%llu",
               (unsigned long long)params_.n);
    evaluator_.attachDevice(std::move(device));
}

} // namespace rpu
