#include "rlwe/ckks.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "modmath/primegen.hh"
#include "rpu/device.hh"

namespace rpu {

namespace {

/** Nearest double to a u128 (tower primes, for scale tracking). */
double
u128ToDouble(u128 v)
{
    return double(uint64_t(v >> 64)) * 18446744073709551616.0 +
           double(uint64_t(v));
}

/** Nearest double to a BigUInt (centred decrypt coefficients). */
double
bigToDouble(const BigUInt &v)
{
    double r = 0.0;
    const auto &limbs = v.limbs();
    for (size_t i = limbs.size(); i-- > 0;)
        r = r * 18446744073709551616.0 + double(limbs[i]);
    return r;
}

} // namespace

void
CkksParams::validate() const
{
    if (n < 8 || (n & (n - 1)) != 0)
        rpu_fatal("CKKS ring dimension must be a power of two >= 8, "
                  "got %llu",
                  (unsigned long long)n);
    if (towers < 1)
        rpu_fatal("CKKS modulus chain needs at least one tower");
    if (towerBits < 30 || towerBits > 120)
        rpu_fatal("tower width %u out of range [30, 120]", towerBits);
    if (!(scale > 1.0))
        rpu_fatal("encoding scale must exceed 1");
}

CkksContext::CkksContext(const CkksParams &params, uint64_t seed)
    : params_(params), encoder_(params.n), rng_(seed)
{
    params_.validate();

    // One prime generation pass; every chain prefix shares it, so a
    // rescaled ciphertext's towers are exactly the leading towers of
    // the full chain.
    const std::vector<u128> primes =
        nttPrimes(params_.towerBits, params_.n, params_.towers);
    prefixes_.reserve(params_.towers);
    crts_.reserve(params_.towers);
    for (size_t k = 1; k <= params_.towers; ++k) {
        prefixes_.push_back(std::make_unique<RnsBasis>(std::vector<u128>(
            primes.begin(), primes.begin() + ptrdiff_t(k))));
        crts_.push_back(std::make_unique<CrtContext>(*prefixes_.back()));
    }

    twiddles_.reserve(params_.towers);
    ntts_.reserve(params_.towers);
    for (size_t t = 0; t < params_.towers; ++t) {
        twiddles_.push_back(std::make_unique<TwiddleTable>(
            basis().modulus(t), params_.n));
        ntts_.push_back(std::make_unique<NttContext>(*twiddles_[t]));
    }
}

const RnsBasis &
CkksContext::prefixBasis(size_t towers) const
{
    rpu_assert(towers >= 1 && towers <= params_.towers,
               "chain prefix %zu out of range [1, %zu]", towers,
               params_.towers);
    return *prefixes_[towers - 1];
}

const CrtContext &
CkksContext::crt(size_t towers) const
{
    rpu_assert(towers >= 1 && towers <= params_.towers,
               "chain prefix %zu out of range [1, %zu]", towers,
               params_.towers);
    return *crts_[towers - 1];
}

const NttContext &
CkksContext::hostNtt(size_t t) const
{
    rpu_assert(t < ntts_.size(), "tower %zu out of range", t);
    return *ntts_[t];
}

std::vector<u128>
CkksContext::activePrimes(size_t towers) const
{
    return prefixBasis(towers).primes();
}

CrtContext::TowerPoly
CkksContext::residuesOfSigned(const std::vector<int64_t> &coeffs,
                              size_t towers) const
{
    rpu_assert(coeffs.size() == params_.n, "coefficient count mismatch");
    CrtContext::TowerPoly tp(towers, std::vector<u128>(params_.n));
    for (size_t t = 0; t < towers; ++t) {
        const Modulus &mod = basis().modulus(t);
        for (size_t i = 0; i < params_.n; ++i) {
            const int64_t c = coeffs[i];
            tp[t][i] = c >= 0 ? mod.reduce(u128(uint64_t(c)))
                              : mod.neg(mod.reduce(u128(uint64_t(-c))));
        }
    }
    return tp;
}

u128
CkksContext::liftCentred(u128 r, const Modulus &mod_l,
                         const Modulus &mod_t) const
{
    // r is a residue mod the odd prime q_l; its centred representative
    // is r itself up to (q_l - 1)/2 and r - q_l above.
    if (r <= (mod_l.value() >> 1))
        return mod_t.reduce(r);
    return mod_t.neg(mod_t.reduce(mod_l.value() - r));
}

CkksSecretKey
CkksContext::keygen()
{
    CkksSecretKey sk;
    sk.s.resize(params_.n);
    for (auto &v : sk.s) {
        const uint64_t r = rng_.below64(3);
        v = r == 0 ? 0 : r == 1 ? 1 : -1;
    }
    return sk;
}

CkksCiphertext
CkksContext::encrypt(const CkksSecretKey &sk,
                     const std::vector<std::complex<double>> &values)
{
    rpu_assert(sk.s.size() == params_.n, "secret key size mismatch");
    const size_t L = params_.towers;

    // The message, error, and secret are single integer polynomials;
    // each tower sees their residues. The mask a is one uniform ring
    // element mod Q — independently uniform residues per tower, by CRT.
    const std::vector<int64_t> m =
        encoder_.encode(values, params_.scale);
    std::vector<int64_t> e(params_.n), s(params_.n);
    const uint64_t span = 2 * params_.noiseBound + 1;
    for (auto &v : e)
        v = int64_t(rng_.below64(span)) - int64_t(params_.noiseBound);
    for (size_t i = 0; i < params_.n; ++i)
        s[i] = sk.s[i];

    const CrtContext::TowerPoly mt = residuesOfSigned(m, L);
    const CrtContext::TowerPoly et = residuesOfSigned(e, L);
    const CrtContext::TowerPoly st = residuesOfSigned(s, L);

    CkksCiphertext ct;
    ct.scale = params_.scale;
    ct.c0.reserve(L);
    ct.c1.reserve(L);
    for (size_t t = 0; t < L; ++t) {
        const Modulus &mod = basis().modulus(t);
        const std::vector<u128> a = randomPoly(mod, params_.n, rng_);
        // c0 = a*s + e + m; c1 = -a.
        std::vector<u128> c0 =
            negacyclicMulNtt(hostNtt(t), a, st[t]);
        c0 = polyAdd(mod, c0, et[t]);
        c0 = polyAdd(mod, c0, mt[t]);
        std::vector<u128> c1(params_.n);
        for (size_t i = 0; i < params_.n; ++i)
            c1[i] = mod.neg(a[i]);
        ct.c0.push_back(std::move(c0));
        ct.c1.push_back(std::move(c1));
    }
    return ct;
}

std::vector<std::complex<double>>
CkksContext::decrypt(const CkksSecretKey &sk,
                     const CkksCiphertext &ct) const
{
    rpu_assert(ct.towers() >= 1, "empty ciphertext");
    const size_t L = ct.towers();

    std::vector<int64_t> s(params_.n);
    for (size_t i = 0; i < params_.n; ++i)
        s[i] = sk.s[i];
    const CrtContext::TowerPoly st = residuesOfSigned(s, L);

    // v = c0 + c1*s per tower = m + e in RNS.
    CrtContext::TowerPoly v(L);
    for (size_t t = 0; t < L; ++t) {
        const Modulus &mod = basis().modulus(t);
        const std::vector<u128> c1s =
            negacyclicMulNtt(hostNtt(t), ct.c1[t], st[t]);
        v[t] = polyAdd(mod, ct.c0[t], c1s);
    }

    // Out of RNS exactly once: reconstruct mod the active Q, centre,
    // and decode at the ciphertext's scale.
    const std::vector<BigUInt> wide = crt(L).reconstructPoly(v);
    const BigUInt &big_q = prefixBasis(L).q();
    const BigUInt half_q = big_q >> 1;
    std::vector<double> coeffs(params_.n);
    for (size_t i = 0; i < params_.n; ++i) {
        coeffs[i] = wide[i] > half_q ? -bigToDouble(big_q - wide[i])
                                     : bigToDouble(wide[i]);
    }
    return encoder_.decode(coeffs, ct.scale);
}

CkksCiphertext
CkksContext::add(const CkksCiphertext &a, const CkksCiphertext &b) const
{
    rpu_assert(a.towers() == b.towers() && a.towers() >= 1,
               "level mismatch: %zu vs %zu towers", a.towers(),
               b.towers());
    rpu_assert(std::abs(a.scale - b.scale) <= 1e-6 * a.scale,
               "scale mismatch: %g vs %g", a.scale, b.scale);

    CkksCiphertext out;
    out.scale = a.scale;
    out.c0.reserve(a.towers());
    out.c1.reserve(a.towers());
    for (size_t t = 0; t < a.towers(); ++t) {
        const Modulus &mod = basis().modulus(t);
        out.c0.push_back(polyAdd(mod, a.c0[t], b.c0[t]));
        out.c1.push_back(polyAdd(mod, a.c1[t], b.c1[t]));
    }
    return out;
}

CkksCiphertext
CkksContext::mulPlain(const CkksCiphertext &ct,
                      const std::vector<std::complex<double>> &values)
    const
{
    rpu_assert(ct.towers() >= 1, "empty ciphertext");
    const size_t L = ct.towers();
    CrtContext::TowerPoly pt = residuesOfSigned(
        encoder_.encode(values, params_.scale), L);

    CkksCiphertext out;
    out.scale = ct.scale * params_.scale;
    if (device_) {
        // Both components through one device dispatch: all 2 x L
        // fused tower products overlap on the worker pool (or run as
        // one batched all-towers kernel per component when serial),
        // and component 0's residue assembly overlaps component 1's
        // still-running launches.
        std::vector<CrtContext::TowerPoly> as;
        as.reserve(2);
        as.push_back(ct.c0);
        as.push_back(ct.c1);
        std::vector<CrtContext::TowerPoly> bs;
        bs.reserve(2);
        bs.push_back(pt); // the shared plaintext: one copy, one move
        bs.push_back(std::move(pt));
        auto pending = device_->mulTowersBatchAsync(
            params_.n, activePrimes(L), std::move(as), std::move(bs));
        out.c0 = RpuDevice::collectTowers(std::move(pending[0]));
        out.c1 = RpuDevice::collectTowers(std::move(pending[1]));
        return out;
    }

    out.c0.reserve(L);
    out.c1.reserve(L);
    for (size_t t = 0; t < L; ++t) {
        out.c0.push_back(negacyclicMulNtt(hostNtt(t), ct.c0[t], pt[t]));
        out.c1.push_back(negacyclicMulNtt(hostNtt(t), ct.c1[t], pt[t]));
    }
    return out;
}

CkksCiphertext
CkksContext::rescale(const CkksCiphertext &ct) const
{
    rpu_assert(ct.towers() >= 2,
               "rescale needs at least two active towers, have %zu",
               ct.towers());
    const size_t l = ct.towers() - 1; // tower being dropped
    const Modulus &mod_l = basis().modulus(l);
    const u128 q_l = mod_l.value();

    // Exact RNS rescale: with r the centred lift of [c]_l, every
    // remaining tower computes c'_t = (c_t - r) * q_l^-1 mod q_t —
    // the residues of the integer (V - centred(V mod q_l)) / q_l.
    // The scaling runs in the evaluation domain: forward per-tower
    // NTT, pointwise multiply by q_l^-1, inverse NTT. The transforms
    // are exact inverses, so this is bit-identical to coefficient-
    // domain scaling; what they buy is the dispatch shape — one
    // independent per-tower NTT launch stream the device overlaps
    // across its worker pool, the same pattern an evaluation-domain-
    // resident ciphertext implementation schedules on real RPUs.
    const std::vector<std::vector<u128>> *comps[2] = {&ct.c0, &ct.c1};
    std::vector<std::vector<std::vector<u128>>> diffs(2);
    std::vector<u128> inv_ql(l);
    for (size_t t = 0; t < l; ++t)
        inv_ql[t] = basis().modulus(t).inv(
            basis().modulus(t).reduce(q_l));
    for (size_t c = 0; c < 2; ++c) {
        diffs[c].resize(l);
        const std::vector<u128> &last = (*comps[c])[l];
        for (size_t t = 0; t < l; ++t) {
            const Modulus &mod_t = basis().modulus(t);
            std::vector<u128> d(params_.n);
            for (size_t i = 0; i < params_.n; ++i)
                d[i] = mod_t.sub((*comps[c])[t][i],
                                 liftCentred(last[i], mod_l, mod_t));
            diffs[c][t] = std::move(d);
        }
    }

    CkksCiphertext out;
    out.scale = ct.scale / u128ToDouble(q_l);
    out.c0.resize(l);
    out.c1.resize(l);
    std::vector<std::vector<u128>> *out_comps[2] = {&out.c0, &out.c1};

    if (device_) {
        // Forward transforms: one launch per (component, tower), all
        // in flight together.
        std::vector<LaunchFuture> fwd;
        fwd.reserve(2 * l);
        for (size_t c = 0; c < 2; ++c) {
            for (size_t t = 0; t < l; ++t) {
                const KernelImage &k = device_->kernel(
                    KernelKind::ForwardNtt, params_.n,
                    {basis().prime(t)});
                fwd.push_back(device_->launchAsync(
                    k, {std::move(diffs[c][t])}));
            }
        }
        auto evals = RpuDevice::whenAll(std::move(fwd));

        // Pointwise scaling in the evaluation domain, then the
        // inverse transforms, again all overlapping.
        std::vector<LaunchFuture> inv;
        inv.reserve(2 * l);
        for (size_t c = 0; c < 2; ++c) {
            for (size_t t = 0; t < l; ++t) {
                const Modulus &mod_t = basis().modulus(t);
                std::vector<u128> scaled = polyScale(
                    mod_t, inv_ql[t],
                    evals[c * l + t][0]);
                const KernelImage &k = device_->kernel(
                    KernelKind::InverseNtt, params_.n,
                    {basis().prime(t)});
                inv.push_back(
                    device_->launchAsync(k, {std::move(scaled)}));
            }
        }
        auto results = RpuDevice::whenAll(std::move(inv));
        for (size_t c = 0; c < 2; ++c) {
            for (size_t t = 0; t < l; ++t)
                (*out_comps[c])[t] =
                    std::move(results[c * l + t][0]);
        }
        return out;
    }

    for (size_t c = 0; c < 2; ++c) {
        for (size_t t = 0; t < l; ++t) {
            const Modulus &mod_t = basis().modulus(t);
            std::vector<u128> x = std::move(diffs[c][t]);
            hostNtt(t).forward(x);
            x = polyScale(mod_t, inv_ql[t], x);
            hostNtt(t).inverse(x);
            (*out_comps[c])[t] = std::move(x);
        }
    }
    return out;
}

void
CkksContext::attachDevice(std::shared_ptr<RpuDevice> device)
{
    rpu_assert(device != nullptr, "no device");
    rpu_assert(params_.n >= 1024,
               "RPU kernels need n >= 1024, scheme has n=%llu",
               (unsigned long long)params_.n);
    device_ = std::move(device);
}

} // namespace rpu
