/**
 * @file
 * CKKS canonical-embedding encoder/decoder.
 *
 * CKKS packs n/2 complex "slots" into one real polynomial of
 * R = Z[x]/(x^n + 1) via the canonical embedding: a polynomial m is
 * identified with its evaluations at the primitive 2n-th roots of
 * unity zeta^(5^j) (one representative per conjugate pair, indexed by
 * the powers of 5 that generate half of (Z/2n)*). Encoding inverts
 * that embedding, scales by a fixed-point factor, and rounds to
 * integer coefficients; decoding evaluates and divides the scale
 * back out.
 *
 * Both directions run in O(n log n): evaluating m at every odd power
 * zeta^(2t+1) is a twist by zeta^k followed by a standard size-n
 * complex FFT (m(zeta^(2t+1)) = sum_k (m_k zeta^k) omega^(tk) with
 * omega = zeta^2), so the embedding is one twisted FFT and its
 * inverse one inverse FFT plus an untwist — the inverse-FFT-over-
 * primitive-roots structure that makes CKKS encoding itself a ring
 * transform the RPU's NTT datapath mirrors in the modular domain.
 */

#ifndef RPU_RLWE_CKKS_ENCODER_HH
#define RPU_RLWE_CKKS_ENCODER_HH

#include <complex>
#include <cstdint>
#include <vector>

namespace rpu {

/** Encoder/decoder for one ring dimension n (power of two >= 8). */
class CkksEncoder
{
  public:
    explicit CkksEncoder(uint64_t n);

    uint64_t n() const { return n_; }

    /** Complex values packed per ciphertext: n/2. */
    size_t slots() const { return n_ / 2; }

    /**
     * Encode @p values (at most slots() entries; missing slots are
     * zero) at fixed-point @p scale into signed integer ring
     * coefficients: round(scale * sigma^-1(values)).
     */
    std::vector<int64_t>
    encode(const std::vector<std::complex<double>> &values,
           double scale) const;

    /**
     * Decode signed coefficients back into slot values at @p scale:
     * values[j] = m(zeta^(5^j)) / scale.
     */
    std::vector<std::complex<double>> decode(
        const std::vector<double> &coeffs, double scale) const;

    /** Convenience overload for exact integer coefficients. */
    std::vector<std::complex<double>> decode(
        const std::vector<int64_t> &coeffs, double scale) const;

  private:
    /**
     * In-place size-n radix-2 FFT. Forward uses e^(+2*pi*i*t*k/n)
     * (the evaluation direction of the embedding); inverse negates
     * the exponent and folds in the 1/n.
     */
    void fft(std::vector<std::complex<double>> &x, bool inverse) const;

    uint64_t n_;
    unsigned log_n_;
    std::vector<std::complex<double>> zeta_; ///< zeta^k = e^(i*pi*k/n)
    std::vector<size_t> slot_index_;         ///< (5^j - 1)/2 per slot j
    std::vector<size_t> bitrev_;             ///< size-n bit reversal
};

} // namespace rpu

#endif // RPU_RLWE_CKKS_ENCODER_HH
