/**
 * @file
 * Parameters for the toy RLWE scheme used by the HE example.
 *
 * The paper motivates the RPU with homomorphic encryption (Fig. 1:
 * plaintext -> vectorised encoding -> two ciphertext polynomials).
 * This module provides a minimal BFV-style symmetric scheme — just
 * enough structure to run the Fig. 1 pipeline end to end on RPU
 * kernels. The ciphertext modulus is an RNS chain q = q_0 ... q_L-1
 * of NTT primes, so ciphertexts live tower-wise in exactly the
 * representation the RPU computes on (full-RNS BFV); CRT only runs
 * at decryption. It is a demonstration workload, not a hardened
 * cryptosystem (no CCA protections, simplistic noise sampling).
 */

#ifndef RPU_RLWE_PARAMS_HH
#define RPU_RLWE_PARAMS_HH

#include <cstddef>
#include <cstdint>

#include "common/random.hh"

namespace rpu {

/** Scheme parameters. */
struct RlweParams
{
    uint64_t n = 4096;       ///< ring dimension (power of two)
    size_t towers = 3;       ///< RNS modulus-chain length
    unsigned towerBits = 45; ///< bits per chain prime
    uint64_t plaintextModulus = 65537;
    uint64_t noiseBound = 8; ///< uniform error in [-B, B]

    /** Fatal on invalid combinations. */
    void validate() const;
};

} // namespace rpu

#endif // RPU_RLWE_PARAMS_HH
