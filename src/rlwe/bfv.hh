/**
 * @file
 * Minimal symmetric BFV-style RLWE scheme over Z_q[x]/(x^n + 1).
 *
 *   sk: ternary polynomial s
 *   Enc(m): a <- uniform, e <- small;  ct = (c0, c1) with
 *           c0 = a*s + e + Delta*m,  c1 = -a,  Delta = floor(q/t)
 *   Dec(ct): m = round(t * (c0 + c1*s) / q) mod t
 *
 * Supports homomorphic addition and plaintext multiplication —
 * exactly the operations whose polynomial products the RPU
 * accelerates. With an RpuDevice attached, every homomorphic
 * polynomial product is decomposed into RNS towers (the paper's
 * section II-B wide-arithmetic strategy), executed on the device as
 * one batched per-tower kernel launch, and CRT-reconstructed — the
 * simulated RPU is then the actual execution engine of the pipeline.
 * Without a device, products run on the host reference NTT.
 */

#ifndef RPU_RLWE_BFV_HH
#define RPU_RLWE_BFV_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "poly/polynomial.hh"
#include "rlwe/params.hh"
#include "rlwe/residue_poly.hh"
#include "rns/crt.hh"

namespace rpu {

class RpuDevice;

/** A ciphertext: two ring polynomials (the paper's Fig. 1 pair). */
struct Ciphertext
{
    std::vector<u128> c0;
    std::vector<u128> c1;
};

/** Secret key. */
struct SecretKey
{
    std::vector<u128> s;
};

/** Scheme context bound to concrete parameters. */
class BfvContext
{
  public:
    /** Generates the NTT-friendly modulus and twiddle tables. */
    explicit BfvContext(const RlweParams &params, uint64_t seed = 1);

    const RlweParams &params() const { return params_; }
    const Modulus &modulus() const { return mod_; }
    const NttContext &ntt() const { return ntt_; }
    u128 q() const { return mod_.value(); }
    u128 delta() const { return delta_; }

    SecretKey keygen();

    /** Encrypt a plaintext vector (coefficients mod t). */
    Ciphertext encrypt(const SecretKey &sk,
                       const std::vector<uint64_t> &message);

    /** Decrypt back to coefficients mod t. */
    std::vector<uint64_t> decrypt(const SecretKey &sk,
                                  const Ciphertext &ct) const;

    /** Homomorphic ciphertext addition. */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /**
     * Multiply a ciphertext by a plaintext polynomial (entries mod t),
     * using the supplied negacyclic multiplier so callers can route
     * the products through RPU-generated kernels.
     */
    using PolyMul = std::function<std::vector<u128>(
        const std::vector<u128> &, const std::vector<u128> &)>;

    Ciphertext mulPlain(const Ciphertext &ct,
                        const std::vector<uint64_t> &plain,
                        const PolyMul &mul) const;

    /**
     * Default multiplier: the attached device's RNS-tower path when
     * one is attached (see attachDevice), else the reference NTT.
     */
    Ciphertext mulPlain(const Ciphertext &ct,
                        const std::vector<uint64_t> &plain) const;

    // -- RPU execution ---------------------------------------------------

    /**
     * Route homomorphic polynomial products through @p device. The
     * scheme modulus q is wider than any single tower, so products
     * are computed exactly over an RNS basis of @p tower_bits-bit
     * NTT primes sized so the integer negacyclic product cannot wrap
     * (|coeff| < n*q^2 << Q), one batched kernel launch per product.
     */
    void attachDevice(std::shared_ptr<RpuDevice> device,
                      unsigned tower_bits = 120);

    bool deviceAttached() const { return device_ != nullptr; }
    std::shared_ptr<RpuDevice> device() const { return device_; }

    /** The RNS basis products run over (device attached only). */
    const RnsBasis &
    rnsBasis() const
    {
        rpu_assert(rns_basis_ != nullptr, "no device attached");
        return *rns_basis_;
    }

    /**
     * Exact negacyclic product of two ring polynomials mod q,
     * computed on the attached device: CRT-decompose both operands
     * into towers, run all towers' fused negacyclic products in one
     * batched kernel launch, reconstruct, centre, and reduce mod q.
     */
    std::vector<u128> negacyclicMulRns(const std::vector<u128> &a,
                                       const std::vector<u128> &b) const;

    /**
     * Remaining noise budget in bits (log2(q/(2t)) minus the current
     * noise magnitude); decryption fails when it reaches zero.
     */
    double noiseBudgetBits(const SecretKey &sk, const Ciphertext &ct,
                           const std::vector<uint64_t> &expected) const;

    /** Lift a plaintext vector into the ring (mod q). */
    std::vector<u128> liftPlain(const std::vector<uint64_t> &plain) const;

    /**
     * Reconstruct a tower product, centre it, and reduce mod q.
     * A reconstructed value w maps to the centred representative
     * w - Q when w > Q/2 and to w itself otherwise; for the odd
     * basis product Q, w == (Q-1)/2 is exactly the largest positive
     * representative (device attached only).
     */
    std::vector<u128>
    rnsReduceCentred(const CrtContext::TowerPoly &towers) const;

  private:
    std::vector<u128> samplePolyUniform();
    std::vector<u128> samplePolySmall();
    std::vector<u128> samplePolyTernary();

    /** CRT-split a ring polynomial (mod q) into RNS towers. */
    CrtContext::TowerPoly rnsTowers(const std::vector<u128> &poly) const;

    /**
     * Device path of mulPlain, on domain-tagged residue polynomials:
     * decompose the plaintext and both ciphertext components once,
     * enter the evaluation domain in one batched-NTT dispatch (the
     * plaintext is transformed a single time and shared — the fused
     * per-component kernels used to transform it twice), take the
     * tower products as pure pointwise launches, and return to
     * coefficients for CRT reconstruction. BFV's wide-modulus
     * ciphertexts live outside the tower basis, so Coeff->Eval->Coeff
     * per multiply is this scheme's floor; the elision win belongs to
     * the RNS-native CKKS sibling.
     */
    Ciphertext mulPlainRns(const Ciphertext &ct,
                           const std::vector<uint64_t> &plain) const;

    RlweParams params_;
    Modulus mod_;
    TwiddleTable tw_;
    NttContext ntt_;
    u128 delta_;
    Rng rng_;

    // RNS-tower execution state (set by attachDevice).
    std::shared_ptr<RpuDevice> device_;
    std::unique_ptr<RnsBasis> rns_basis_;
    std::unique_ptr<CrtContext> rns_crt_;
    ResidueOps rns_ops_;
};

} // namespace rpu

#endif // RPU_RLWE_BFV_HH
