/**
 * @file
 * Minimal symmetric BFV-style RLWE scheme over Z_q[x]/(x^n + 1).
 *
 *   sk: ternary polynomial s
 *   Enc(m): a <- uniform, e <- small;  ct = (c0, c1) with
 *           c0 = a*s + e + Delta*m,  c1 = -a,  Delta = floor(q/t)
 *   Dec(ct): m = round(t * (c0 + c1*s) / q) mod t
 *
 * Supports homomorphic addition and plaintext multiplication —
 * exactly the operations whose polynomial products the RPU
 * accelerates. Polynomial products can be routed through either the
 * reference NTT or generated B512 kernels (see the he_pipeline
 * example).
 */

#ifndef RPU_RLWE_BFV_HH
#define RPU_RLWE_BFV_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "poly/polynomial.hh"
#include "rlwe/params.hh"

namespace rpu {

/** A ciphertext: two ring polynomials (the paper's Fig. 1 pair). */
struct Ciphertext
{
    std::vector<u128> c0;
    std::vector<u128> c1;
};

/** Secret key. */
struct SecretKey
{
    std::vector<u128> s;
};

/** Scheme context bound to concrete parameters. */
class BfvContext
{
  public:
    /** Generates the NTT-friendly modulus and twiddle tables. */
    explicit BfvContext(const RlweParams &params, uint64_t seed = 1);

    const RlweParams &params() const { return params_; }
    const Modulus &modulus() const { return mod_; }
    const NttContext &ntt() const { return ntt_; }
    u128 q() const { return mod_.value(); }
    u128 delta() const { return delta_; }

    SecretKey keygen();

    /** Encrypt a plaintext vector (coefficients mod t). */
    Ciphertext encrypt(const SecretKey &sk,
                       const std::vector<uint64_t> &message);

    /** Decrypt back to coefficients mod t. */
    std::vector<uint64_t> decrypt(const SecretKey &sk,
                                  const Ciphertext &ct) const;

    /** Homomorphic ciphertext addition. */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /**
     * Multiply a ciphertext by a plaintext polynomial (entries mod t),
     * using the supplied negacyclic multiplier so callers can route
     * the products through RPU-generated kernels.
     */
    using PolyMul = std::function<std::vector<u128>(
        const std::vector<u128> &, const std::vector<u128> &)>;

    Ciphertext mulPlain(const Ciphertext &ct,
                        const std::vector<uint64_t> &plain,
                        const PolyMul &mul) const;

    /** Default multiplier: reference NTT. */
    Ciphertext mulPlain(const Ciphertext &ct,
                        const std::vector<uint64_t> &plain) const;

    /**
     * Remaining noise budget in bits (log2(q/(2t)) minus the current
     * noise magnitude); decryption fails when it reaches zero.
     */
    double noiseBudgetBits(const SecretKey &sk, const Ciphertext &ct,
                           const std::vector<uint64_t> &expected) const;

    /** Lift a plaintext vector into the ring (mod q). */
    std::vector<u128> liftPlain(const std::vector<uint64_t> &plain) const;

  private:
    std::vector<u128> samplePolyUniform();
    std::vector<u128> samplePolySmall();
    std::vector<u128> samplePolyTernary();

    RlweParams params_;
    Modulus mod_;
    TwiddleTable tw_;
    NttContext ntt_;
    u128 delta_;
    Rng rng_;
};

} // namespace rpu

#endif // RPU_RLWE_BFV_HH
