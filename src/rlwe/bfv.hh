/**
 * @file
 * Minimal symmetric BFV-style RLWE scheme, full-RNS and
 * evaluation-domain resident on the RPU device layer.
 *
 *   sk: ternary polynomial s
 *   Enc(m): a <- uniform, e <- small;  ct = (c0, c1) with
 *           c0 = a*s + e + Delta*m,  c1 = -a,  Delta = floor(q/t)
 *   Dec(ct): m = round(t * (c0 + c1*s) / q) mod t
 *
 * The ciphertext modulus is the product of an RNS chain of NTT
 * primes, q = q_0 * ... * q_{L-1}, so a ciphertext *is* its towers:
 * domain-tagged ResiduePoly pairs, born evaluation-resident at
 * encryption (the uniform mask is sampled directly in NTT form, the
 * message+error residues pay one host forward transform per tower)
 * and kept there by every homomorphic op. add/sub are per-tower
 * coefficient adds; mulPlain against a once-encoded plaintext is a
 * pure pointwise dispatch through the shared RlweEvaluator — zero
 * forward NTTs in steady state, with every skipped conversion
 * reported to the device's elision ledger. CRT reconstruction and
 * the centred rounding by t/q happen exactly once, at decryption.
 *
 * Ciphertext x ciphertext multiply routes through the evaluator's
 * shared mulPair pipeline (tensor product + gadget-decomposed
 * relinearisation, see RlweEvaluator); the scheme contributes only
 * its own math as the degree-2 hook. Because the tensor product's
 * integer coefficients reach n*q^2/4, the context carries an
 * *extended* chain of 2L+1 same-width towers (ciphertexts live on
 * the L-tower prefix): mulCt base-extends the operands onto the
 * auxiliary towers (reusing the resident Eval towers for the
 * prefix — the reuse lands in the elision ledger), tensors there,
 * and the hook scale-and-rounds round(t * V / q) back down to the
 * ciphertext chain before the relinearisation key-switch.
 *
 * (Earlier revisions kept ciphertexts as wide-modulus coefficient
 * vectors over one large prime and CRT-reconstructed after every
 * homomorphic product; decryptWideReference retains that wide-
 * integer decrypt as an independent cross-check of the RNS path.)
 *
 * Like the CKKS sibling this is a demonstration workload, not a
 * hardened cryptosystem.
 */

#ifndef RPU_RLWE_BFV_HH
#define RPU_RLWE_BFV_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "rlwe/evaluator.hh"
#include "rlwe/params.hh"
#include "rlwe/residue_poly.hh"
#include "rns/crt.hh"

namespace rpu {

class RpuDevice;

/**
 * A ciphertext: two domain-tagged RNS ring polynomials over the
 * scheme's full modulus chain (the paper's Fig. 1 pair, resident in
 * the representation the RPU computes on). Freshly encrypted
 * ciphertexts are Eval-resident and every homomorphic op keeps them
 * there; toCoeff/toEval move both components together.
 */
struct Ciphertext
{
    ResiduePoly c0;
    ResiduePoly c1;

    size_t towers() const { return c0.towerCount(); }

    /** The components' shared residency (they always move together). */
    ResidueDomain domain() const { return c0.domain; }
};

/** Secret key: one ternary integer polynomial, shared by all towers. */
struct SecretKey
{
    std::vector<int8_t> s; ///< coefficients in {-1, 0, 1}
};

/**
 * An encoded plaintext: Eval-resident residues of the (mod-t lifted)
 * message over the full chain, forward-transformed once at encode
 * time and reusable across ops and ciphertexts.
 */
struct BfvPlaintext
{
    ResiduePoly rp;

    size_t towers() const { return rp.towerCount(); }
};

/** Scheme context bound to concrete parameters. */
class BfvContext
{
  public:
    /** Generates the NTT-friendly modulus chain and host tables. */
    explicit BfvContext(const RlweParams &params, uint64_t seed = 1);

    const RlweParams &params() const { return params_; }

    /** The RNS basis every ciphertext lives in (q = its product). */
    const RnsBasis &basis() const { return *basis_; }

    /**
     * The extended tensor chain (2L+1 towers; the ciphertext basis
     * is its prefix): enough auxiliary room that the tensor
     * product's integer coefficients never wrap before the
     * scale-and-round.
     */
    const RnsBasis &extendedBasis() const { return *basisExt_; }

    /** CRT context over the chain (decrypt's one reconstruction). */
    const CrtContext &crt() const { return *crt_; }

    /** The composite ciphertext modulus q. */
    const BigUInt &q() const { return basis_->q(); }

    /** Delta = floor(q / t). */
    const BigUInt &delta() const { return delta_; }

    /** The shared op pipeline (dispatch, domains, host fallback). */
    const RlweEvaluator &evaluator() const { return evaluator_; }

    SecretKey keygen();

    /**
     * Encode a plaintext vector (coefficients mod t) into an
     * Eval-resident residue polynomial — one batched forward-NTT
     * dispatch on the attached device (host transforms otherwise),
     * the only transform the plaintext ever pays.
     */
    BfvPlaintext encodePlain(const std::vector<uint64_t> &plain) const;

    /**
     * Encrypt a plaintext vector (coefficients mod t). The
     * ciphertext is born Eval-resident: the uniform mask is sampled
     * directly in evaluation form and Delta*m + e enters through one
     * host forward transform per tower (see RlweEvaluator); the
     * device issues no launch.
     */
    Ciphertext encrypt(const SecretKey &sk,
                       const std::vector<uint64_t> &message);

    /**
     * Decrypt back to coefficients mod t: per-tower c0 + c1*s
     * (pointwise in Eval, negacyclic in Coeff), then the scheme's
     * one CRT reconstruction and the centred rounding by t/q.
     */
    std::vector<uint64_t> decrypt(const SecretKey &sk,
                                  const Ciphertext &ct) const;

    /**
     * Independent wide-modulus reference decrypt: reconstruct both
     * components to wide integers mod q first, compute c0 + c1*s as
     * a schoolbook negacyclic product over BigUInt coefficients
     * (exploiting the ternary secret), and round. Exercises none of
     * the per-tower NTT path, so agreement with decrypt() is a real
     * cross-check of RNS residency — the tier-1 bit-identity tests
     * pin the two against each other on every backend.
     */
    std::vector<uint64_t>
    decryptWideReference(const SecretKey &sk,
                         const Ciphertext &ct) const;

    /** Homomorphic ciphertext addition (pure per-tower RNS adds). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /** Homomorphic ciphertext subtraction (per-tower RNS subs). */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;

    /**
     * Multiply a ciphertext by an encoded plaintext: both components
     * against the shared plaintext through one pointwise dispatch —
     * no transform at all when the ciphertext is Eval-resident (the
     * elision lands in DeviceStats).
     */
    Ciphertext mulPlain(const Ciphertext &ct,
                        const BfvPlaintext &pt) const;

    /** Convenience: encodePlain + mulPlain in one call. */
    Ciphertext mulPlain(const Ciphertext &ct,
                        const std::vector<uint64_t> &plain) const;

    /**
     * Gadget-decomposed relinearisation key over the ciphertext
     * chain (see RlweEvaluator::makeRelinKey). Smaller digit bases
     * cost more re-entry transforms and inner-product launches per
     * multiply but add less key-switch noise.
     */
    RelinKey makeRelinKey(const SecretKey &sk,
                          unsigned digitBits = 16);

    /**
     * Homomorphic ciphertext x ciphertext multiply, relinearised
     * back to degree 1: base-extend both operands to the tensor
     * chain, then the evaluator's shared mulPair — tensor product
     * in the evaluation domain, this scheme's scale-and-round
     * (round(t * V / q), centred, exact over the extended chain) as
     * the degree-2 hook, and the gadget key-switch with @p rk.
     * Decrypting the result yields the coefficient-wise negacyclic
     * product of the plaintexts mod t.
     */
    Ciphertext mulCt(const Ciphertext &a, const Ciphertext &b,
                     const RelinKey &rk) const;

    /** Move both components to the target residency (see ResidueOps). */
    void toCoeff(Ciphertext &ct) const;
    void toEval(Ciphertext &ct) const;

    /**
     * Remaining noise budget in bits (log2(q/(2t)) minus the current
     * noise magnitude); decryption fails when it reaches zero.
     */
    double noiseBudgetBits(const SecretKey &sk, const Ciphertext &ct,
                           const std::vector<uint64_t> &expected) const;

    // -- RPU execution ---------------------------------------------------

    /** Route tower products and domain transforms through @p device. */
    void attachDevice(std::shared_ptr<RpuDevice> device);

    bool deviceAttached() const { return evaluator_.deviceAttached(); }
    std::shared_ptr<RpuDevice> device() const
    {
        return evaluator_.device();
    }

  private:
    /** Residues of the secret over every tower. */
    RlweEvaluator::TowerPoly secretResidues(const SecretKey &sk) const;

    /** Coefficients reduced mod t (size-checked). */
    std::vector<uint64_t>
    liftPlain(const std::vector<uint64_t> &plain) const;

    /** round(t * v / q) mod t for reconstructed coefficients. */
    std::vector<uint64_t>
    roundToPlain(const std::vector<BigUInt> &wide) const;

    /**
     * Base-extend ciphertext components onto the full tensor chain:
     * reconstruct the centred integer coefficients out of the
     * ciphertext chain and reduce them mod the auxiliary primes.
     * Eval-resident components reuse their resident towers for the
     * prefix (the reuse lands in the elision ledger) and enter only
     * the auxiliary towers through one batched forward dispatch.
     */
    std::vector<ResiduePoly>
    extendComponents(const std::vector<const ResiduePoly *> &comps) const;

    /**
     * mulCt's degree-2 hook: take the tensor product out of the
     * extended evaluation domain (one batched inverse dispatch),
     * reconstruct the centred integer coefficients mod the full
     * tensor modulus, scale-and-round by t/q, and re-enter the
     * ciphertext chain — c0 and c1 forward into Eval, c2 left in
     * Coeff so the relinearisation's digit split elides its inverse.
     */
    std::array<ResiduePoly, 3>
    scaleRoundHook(std::array<ResiduePoly, 3> d) const;

    RlweParams params_;
    Rng rng_;

    std::unique_ptr<RnsBasis> basis_;    ///< ciphertext chain (L towers)
    std::unique_ptr<RnsBasis> basisExt_; ///< tensor chain (2L+1 towers)
    std::unique_ptr<CrtContext> crt_;
    std::unique_ptr<CrtContext> crtExt_;
    RlweEvaluator evaluator_;

    BigUInt delta_;                ///< floor(q / t)
    std::vector<u128> delta_res_;  ///< Delta mod q_t, per tower
};

} // namespace rpu

#endif // RPU_RLWE_BFV_HH
