#include "rlwe/ckks_encoder.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

/** Largest coefficient magnitude encode will round to. */
constexpr double kCoeffLimit = 4.611686018427387904e18; // 2^62

} // namespace

CkksEncoder::CkksEncoder(uint64_t n) : n_(n)
{
    rpu_assert(n >= 8 && (n & (n - 1)) == 0,
               "CKKS ring dimension must be a power of two >= 8, got "
               "%llu",
               (unsigned long long)n);
    log_n_ = log2Ceil(n);

    // zeta^k = e^(i*pi*k/n) for k in [0, 2n): all 2n-th roots of
    // unity, the primitive ones at odd k.
    zeta_.resize(2 * n_);
    for (uint64_t k = 0; k < 2 * n_; ++k) {
        const double angle = kPi * double(k) / double(n_);
        zeta_[k] = {std::cos(angle), std::sin(angle)};
    }

    // Slot j lives at the root zeta^(5^j): exponent e = 5^j mod 2n is
    // odd, so its index in the odd-exponent evaluation vector is
    // t = (e - 1) / 2. The powers of 5 enumerate one exponent per
    // conjugate pair, which is exactly what makes n/2 independent
    // complex slots.
    slot_index_.resize(slots());
    uint64_t power = 1;
    for (size_t j = 0; j < slots(); ++j) {
        slot_index_[j] = size_t((power - 1) / 2);
        power = (power * 5) % (2 * n_);
    }

    bitrev_.resize(n_);
    for (uint64_t i = 0; i < n_; ++i)
        bitrev_[i] = bitReverse(i, log_n_);
}

void
CkksEncoder::fft(std::vector<std::complex<double>> &x, bool inverse)
    const
{
    // Iterative radix-2 Cooley-Tukey over the precomputed 2n-th
    // roots: the size-n twiddle omega^j is zeta^(2j).
    for (uint64_t i = 0; i < n_; ++i) {
        if (bitrev_[i] > i)
            std::swap(x[i], x[bitrev_[i]]);
    }
    for (uint64_t len = 2; len <= n_; len <<= 1) {
        const uint64_t step = 2 * n_ / len; // zeta exponent stride
        for (uint64_t base = 0; base < n_; base += len) {
            for (uint64_t j = 0; j < len / 2; ++j) {
                std::complex<double> w = zeta_[(j * step) % (2 * n_)];
                if (inverse)
                    w = std::conj(w);
                const std::complex<double> lo = x[base + j];
                const std::complex<double> hi =
                    x[base + j + len / 2] * w;
                x[base + j] = lo + hi;
                x[base + j + len / 2] = lo - hi;
            }
        }
    }
    if (inverse) {
        const double inv_n = 1.0 / double(n_);
        for (auto &v : x)
            v *= inv_n;
    }
}

std::vector<int64_t>
CkksEncoder::encode(const std::vector<std::complex<double>> &values,
                    double scale) const
{
    rpu_assert(values.size() <= slots(),
               "%zu values exceed the %zu available slots",
               values.size(), slots());
    rpu_assert(scale > 1.0, "encoding scale must exceed 1");

    // Evaluation vector over every odd exponent: slot j at index
    // (5^j - 1)/2, its conjugate (exponent 2n - 5^j) at the mirrored
    // index n - 1 - (5^j - 1)/2. Conjugate symmetry makes sigma^-1
    // land on real coefficients.
    std::vector<std::complex<double>> y(n_, {0.0, 0.0});
    for (size_t j = 0; j < values.size(); ++j) {
        y[slot_index_[j]] = values[j];
        y[n_ - 1 - slot_index_[j]] = std::conj(values[j]);
    }

    fft(y, /*inverse=*/true);

    std::vector<int64_t> coeffs(n_);
    for (uint64_t k = 0; k < n_; ++k) {
        // Untwist by zeta^-k; the imaginary part is fp noise.
        const double real =
            (y[k] * std::conj(zeta_[k])).real() * scale;
        rpu_assert(std::abs(real) < kCoeffLimit,
                   "encoded coefficient overflows 62 bits; lower the "
                   "scale or the slot magnitudes");
        coeffs[k] = std::llround(real);
    }
    return coeffs;
}

std::vector<std::complex<double>>
CkksEncoder::decode(const std::vector<double> &coeffs,
                    double scale) const
{
    rpu_assert(coeffs.size() == n_, "coefficient count %zu != n %llu",
               coeffs.size(), (unsigned long long)n_);

    // Twist then FFT: y[t] = m(zeta^(2t+1)).
    std::vector<std::complex<double>> y(n_);
    for (uint64_t k = 0; k < n_; ++k)
        y[k] = coeffs[k] * zeta_[k];
    fft(y, /*inverse=*/false);

    std::vector<std::complex<double>> values(slots());
    for (size_t j = 0; j < slots(); ++j)
        values[j] = y[slot_index_[j]] / scale;
    return values;
}

std::vector<std::complex<double>>
CkksEncoder::decode(const std::vector<int64_t> &coeffs,
                    double scale) const
{
    std::vector<double> wide(coeffs.size());
    for (size_t i = 0; i < coeffs.size(); ++i)
        wide[i] = double(coeffs[i]);
    return decode(wide, scale);
}

} // namespace rpu
