/**
 * @file
 * Domain-tagged RNS residue polynomials, shared by BFV and CKKS.
 *
 * The RPU paper's premise is that NTTs dominate RLWE workloads; the
 * corollary is that a scheme which re-enters coefficient form after
 * every homomorphic op pays the headline cost over and over. A
 * ResiduePoly records which domain its towers currently live in
 * (coefficient or evaluation/NTT form), and ResidueOps issues the
 * forward/inverse transform launches *only at domain boundaries*:
 * once a ciphertext is evaluation-domain resident, a plaintext
 * multiply is a pointwise kernel launch and no transform runs at all.
 * Every conversion a domain-aware caller skips is reported to the
 * device's issued-vs-elided transform ledger (DeviceStats), so the
 * amortisation is observable, not just asserted.
 *
 * Transitions route through an attached RpuDevice when one is set
 * (serial devices launch one batched all-towers kernel per polynomial,
 * pooled devices fan per-tower launches across workers) and through
 * host reference transforms otherwise — bit-identical either way,
 * which the round-trip tests pin down on every backend.
 */

#ifndef RPU_RLWE_RESIDUE_POLY_HH
#define RPU_RLWE_RESIDUE_POLY_HH

#include <memory>
#include <vector>

#include "poly/ntt.hh"
#include "rns/basis.hh"

namespace rpu {

class RpuDevice;

/** Which representation a residue polynomial's towers are in. */
enum class ResidueDomain
{
    Coeff, ///< coefficient form: towers[t][i] is coefficient i mod q_t
    Eval,  ///< evaluation (NTT) form: towers[t] = NTT_t(coefficients)
};

/**
 * One ring polynomial in RNS representation — towers[t][i] over the
 * first towerCount() primes of a basis — tagged with the domain the
 * residues currently live in. The tag is what lets the scheme layers
 * chain homomorphic ops without redundant transforms: ops consume and
 * produce Eval-resident polynomials, and only decrypt / rescale's
 * lift force a return to Coeff.
 */
struct ResiduePoly
{
    ResidueDomain domain = ResidueDomain::Coeff;
    std::vector<std::vector<u128>> towers;

    ResiduePoly() = default;
    ResiduePoly(ResidueDomain d, std::vector<std::vector<u128>> t)
        : domain(d), towers(std::move(t))
    {
    }

    size_t towerCount() const { return towers.size(); }
    bool inEval() const { return domain == ResidueDomain::Eval; }

    bool operator==(const ResiduePoly &o) const
    {
        return domain == o.domain && towers == o.towers;
    }
    bool operator!=(const ResiduePoly &o) const { return !(*this == o); }

    /** The first @p count towers, same domain (count <= towerCount). */
    ResiduePoly prefix(size_t count) const;
};

/**
 * Domain transitions and evaluation-domain algebra for ResiduePoly
 * values over (a prefix of) one RNS basis. Bound to the basis by
 * reference; the device and host transform tables are optional, but
 * at least one must be set before any domain conversion.
 */
class ResidueOps
{
  public:
    ResidueOps() = default;
    ResidueOps(uint64_t n, const RnsBasis *basis) : n_(n), basis_(basis)
    {
    }

    /** Route conversions and pointwise products through @p device. */
    void setDevice(std::shared_ptr<RpuDevice> device)
    {
        device_ = std::move(device);
    }

    /** Host reference transform for tower t (fallback + no-device). */
    void setHostTransforms(std::vector<const NttContext *> ntts)
    {
        host_ntts_ = std::move(ntts);
    }

    bool deviceAttached() const { return device_ != nullptr; }
    uint64_t ringDim() const { return n_; }
    const RnsBasis &basis() const;

    /**
     * Bring every polynomial to @p target in one device dispatch per
     * tower-count group (host loop otherwise). Polynomials already
     * resident in the target domain are skipped, and the skip is
     * recorded in the device's transformsElided ledger — this lazy
     * boundary is the whole point of the domain tag.
     */
    void convert(const std::vector<ResiduePoly *> &polys,
                 ResidueDomain target) const;

    void toEval(ResiduePoly &p) const { convert({&p}, ResidueDomain::Eval); }
    void toCoeff(ResiduePoly &p) const
    {
        convert({&p}, ResidueDomain::Coeff);
    }

    /**
     * Record @p towers conversions a caller skipped after verifying
     * residency itself (forwarded to the device's transformsElided
     * ledger when one is attached). convert() does this bookkeeping
     * automatically; this is for hot paths that branch on the domain
     * tag directly to avoid even the copy a convert would need.
     */
    void noteElidedConversions(uint64_t towers) const;

    /**
     * Pointwise products against one shared right operand:
     * result[i] = as[i] .* b over the first @p towers primes (0 =
     * as[0]'s tower count; b may span more — a full-chain plaintext
     * serves any level). Both ciphertext components against one
     * encoded plaintext go through a single device dispatch
     * (PointwiseMulBatched per pair serially, per-tower PointwiseMul
     * launches on a pooled device). All operands must be Eval; the
     * results are Eval. No transform runs anywhere on this path, and
     * operands are only read — the host path copies nothing.
     */
    std::vector<ResiduePoly>
    mulEvalShared(const std::vector<const ResiduePoly *> &as,
                  const ResiduePoly &b, size_t towers = 0) const;

    /**
     * Owning variant for callers relinquishing their operands (e.g.
     * BFV's function-local decompositions): the towers are moved
     * into the device launches instead of copied.
     */
    std::vector<ResiduePoly> mulEvalShared(std::vector<ResiduePoly> as,
                                           ResiduePoly b,
                                           size_t towers = 0) const;

    /** Single-pair convenience over mulEvalShared. */
    ResiduePoly mulEval(const ResiduePoly &a, const ResiduePoly &b) const;

    /**
     * Independent pointwise pairs through one dispatch:
     * result[i] = as[i] .* bs[i] over the first @p towers primes
     * (0 = as[0]'s tower count). Unlike mulEvalShared there is no
     * shared operand — this is the shape of the relinearisation
     * inner product (every gadget digit against its own key
     * component) and of the tensor product's four cross terms. All
     * operands must be Eval and may span more than @p towers (a
     * full-chain key serves any level); results span exactly
     * @p towers. Operands are only read.
     */
    std::vector<ResiduePoly>
    mulEvalPairs(const std::vector<const ResiduePoly *> &as,
                 const std::vector<const ResiduePoly *> &bs,
                 size_t towers = 0) const;

    /**
     * Gadget decomposition of Coeff-resident @p p: split every tower
     * t's residues into base-2^digitBits digits, least significant
     * first — d_{t,j} with [p]_{q_t} = sum_j d_{t,j} * B^j exactly
     * (the last digit is partial when B does not divide q_t's
     * width). Returned tower-major (all of tower 0's digits, then
     * tower 1's, ...; digitCount() gives the per-tower split).
     *
     * Every digit value is < B < every chain prime, so a digit
     * polynomial's residues are the same small integers in every
     * tower: each returned ResiduePoly spans @p towers replicated
     * towers, ready for the batched re-entry transform and the
     * pointwise inner product against a key that lives over the same
     * prefix. Pure host arithmetic — the transforms it feeds are
     * where the device comes in.
     */
    std::vector<ResiduePoly> digitDecompose(const ResiduePoly &p,
                                            unsigned digitBits,
                                            size_t towers) const;

    /** Digits of tower @p t under base 2^digitBits:
     *  ceil(bitlen(q_t) / digitBits). */
    size_t digitCount(size_t t, unsigned digitBits) const;

    /** Tower-wise a + b (host); domains must match and are kept. */
    ResiduePoly add(const ResiduePoly &a, const ResiduePoly &b) const;

    /** Tower-wise a - b (host); domains must match and are kept. */
    ResiduePoly sub(const ResiduePoly &a, const ResiduePoly &b) const;

  private:
    /** Shared operand validation for the mulEvalShared variants;
     *  resolves towers == 0 to the left operands' count. */
    void checkEvalOperands(const std::vector<const ResiduePoly *> &as,
                           const ResiduePoly &b, size_t &towers) const;

    /** Host pointwise body shared by the mulEvalShared variants. */
    std::vector<ResiduePoly>
    mulEvalHost(const std::vector<const ResiduePoly *> &as,
                const ResiduePoly &b, size_t towers) const;

    /** Join one dispatched pair batch into Eval-resident results. */
    std::vector<ResiduePoly>
    collectEvalProducts(std::vector<std::vector<std::vector<u128>>> lhs,
                        std::vector<std::vector<std::vector<u128>>> rhs,
                        size_t towers) const;

    /** Primes for the first @p towers of the basis. */
    std::vector<u128> prefixPrimes(size_t towers) const;

    /** Host-transform tower @p t of @p p in place toward @p target. */
    void hostTransform(std::vector<u128> &tower, size_t t,
                       ResidueDomain target) const;

    uint64_t n_ = 0;
    const RnsBasis *basis_ = nullptr;
    std::shared_ptr<RpuDevice> device_;
    std::vector<const NttContext *> host_ntts_;
};

} // namespace rpu

#endif // RPU_RLWE_RESIDUE_POLY_HH
