#include "rlwe/residue_poly.hh"

#include <map>

#include "common/logging.hh"
#include "modmath/simd.hh"
#include "poly/polynomial.hh"
#include "rpu/device.hh"

namespace rpu {

ResiduePoly
ResiduePoly::prefix(size_t count) const
{
    rpu_assert(count >= 1 && count <= towers.size(),
               "prefix %zu out of range [1, %zu]", count, towers.size());
    return ResiduePoly(domain,
                       std::vector<std::vector<u128>>(
                           towers.begin(),
                           towers.begin() + ptrdiff_t(count)));
}

const RnsBasis &
ResidueOps::basis() const
{
    rpu_assert(basis_ != nullptr, "ResidueOps has no basis bound");
    return *basis_;
}

std::vector<u128>
ResidueOps::prefixPrimes(size_t towers) const
{
    rpu_assert(towers >= 1 && towers <= basis().towers(),
               "tower count %zu out of range [1, %zu]", towers,
               basis().towers());
    std::vector<u128> primes(towers);
    for (size_t t = 0; t < towers; ++t)
        primes[t] = basis().prime(t);
    return primes;
}

void
ResidueOps::hostTransform(std::vector<u128> &tower, size_t t,
                          ResidueDomain target) const
{
    rpu_assert(t < host_ntts_.size() && host_ntts_[t] != nullptr,
               "no host transform for tower %zu", t);
    if (target == ResidueDomain::Eval)
        host_ntts_[t]->forward(tower);
    else
        host_ntts_[t]->inverse(tower);
}

void
ResidueOps::convert(const std::vector<ResiduePoly *> &polys,
                    ResidueDomain target) const
{
    // Split residents from movers. The residents are the lazy win:
    // each would have been transformed by a domain-oblivious caller,
    // so their towers land in the elision ledger.
    std::map<size_t, std::vector<ResiduePoly *>> groups;
    uint64_t elided = 0;
    for (ResiduePoly *p : polys) {
        rpu_assert(p != nullptr, "null polynomial");
        rpu_assert(p->towerCount() >= 1 &&
                       p->towerCount() <= basis().towers(),
                   "polynomial spans %zu towers, basis has %zu",
                   p->towerCount(), basis().towers());
        if (p->domain == target)
            elided += p->towerCount();
        else
            groups[p->towerCount()].push_back(p);
    }
    if (elided > 0 && device_)
        device_->noteElidedTransforms(elided);
    if (groups.empty())
        return;

    const bool inverse = target == ResidueDomain::Coeff;
    for (auto &[towers, movers] : groups) {
        if (device_) {
            // One dispatch per tower-count group: all movers' towers
            // through transformTowersBatchAsync (batched all-towers
            // kernels serially, per-tower fan-out on a pooled device).
            std::vector<std::vector<std::vector<u128>>> xs;
            xs.reserve(movers.size());
            for (ResiduePoly *p : movers)
                xs.push_back(std::move(p->towers));
            auto pending = device_->transformTowersBatchAsync(
                n_, prefixPrimes(towers), std::move(xs), inverse);
            for (size_t i = 0; i < movers.size(); ++i) {
                movers[i]->towers =
                    RpuDevice::collectTowers(std::move(pending[i]));
            }
        } else {
            for (ResiduePoly *p : movers) {
                for (size_t t = 0; t < towers; ++t)
                    hostTransform(p->towers[t], t, target);
            }
        }
        for (ResiduePoly *p : movers)
            p->domain = target;
    }
}

void
ResidueOps::noteElidedConversions(uint64_t towers) const
{
    if (device_)
        device_->noteElidedTransforms(towers);
}

void
ResidueOps::checkEvalOperands(const std::vector<const ResiduePoly *> &as,
                              const ResiduePoly &b,
                              size_t &towers) const
{
    rpu_assert(!as.empty(), "no left operands");
    if (towers == 0)
        towers = as[0]->towerCount();
    rpu_assert(b.inEval(), "right operand must be evaluation-resident");
    rpu_assert(b.towerCount() >= towers,
               "right operand spans %zu towers, need %zu",
               b.towerCount(), towers);
    for (const ResiduePoly *a : as) {
        rpu_assert(a != nullptr, "null operand");
        rpu_assert(a->inEval(),
                   "left operand must be evaluation-resident");
        rpu_assert(a->towerCount() == towers, "tower count mismatch");
    }
}

std::vector<ResiduePoly>
ResidueOps::mulEvalHost(const std::vector<const ResiduePoly *> &as,
                        const ResiduePoly &b, size_t towers) const
{
    std::vector<ResiduePoly> out(as.size());
    for (size_t i = 0; i < as.size(); ++i) {
        out[i].domain = ResidueDomain::Eval;
        out[i].towers.resize(towers);
    }
    // Tower-major so the shared right operand is narrowed to u64 once
    // per tower and its lanes stay cache-resident while every left
    // component multiplies against it.
    std::vector<uint64_t> nb, na, no;
    for (size_t t = 0; t < towers; ++t) {
        const Modulus &mod = basis().modulus(t);
        const simd::NarrowModulus *nm =
            simd::narrowLanesActive() ? mod.narrow() : nullptr;
        if (!nm) {
            for (size_t i = 0; i < as.size(); ++i)
                out[i].towers[t] = polyPointwise(mod, as[i]->towers[t],
                                                 b.towers[t]);
            continue;
        }
        const std::vector<u128> &bt = b.towers[t];
        nb.resize(bt.size());
        na.resize(bt.size());
        no.resize(bt.size());
        for (size_t j = 0; j < bt.size(); ++j)
            nb[j] = uint64_t(bt[j]);
        for (size_t i = 0; i < as.size(); ++i) {
            const std::vector<u128> &at = as[i]->towers[t];
            for (size_t j = 0; j < at.size(); ++j)
                na[j] = uint64_t(at[j]);
            simd::mulModSpan(na.data(), nb.data(), no.data(),
                             at.size(), *nm);
            std::vector<u128> r(at.size());
            for (size_t j = 0; j < at.size(); ++j)
                r[j] = no[j];
            out[i].towers[t] = std::move(r);
        }
    }
    return out;
}

std::vector<ResiduePoly>
ResidueOps::collectEvalProducts(
    std::vector<std::vector<std::vector<u128>>> lhs,
    std::vector<std::vector<std::vector<u128>>> rhs,
    size_t towers) const
{
    auto pending = device_->pointwiseTowersBatchAsync(
        n_, prefixPrimes(towers), std::move(lhs), std::move(rhs));
    std::vector<ResiduePoly> out(pending.size());
    for (size_t i = 0; i < out.size(); ++i) {
        out[i].domain = ResidueDomain::Eval;
        out[i].towers =
            RpuDevice::collectTowers(std::move(pending[i]));
    }
    return out;
}

std::vector<ResiduePoly>
ResidueOps::mulEvalShared(const std::vector<const ResiduePoly *> &as,
                          const ResiduePoly &b, size_t towers) const
{
    checkEvalOperands(as, b, towers);
    if (!device_)
        return mulEvalHost(as, b, towers);

    // All pairs through one dispatch. The launches consume their
    // inputs, so the operands' towers are copied in — the read-only
    // view keeps the callers' values intact.
    std::vector<std::vector<std::vector<u128>>> lhs, rhs;
    lhs.reserve(as.size());
    rhs.reserve(as.size());
    for (const ResiduePoly *a : as) {
        lhs.emplace_back(a->towers.begin(),
                         a->towers.begin() + ptrdiff_t(towers));
        rhs.emplace_back(b.towers.begin(),
                         b.towers.begin() + ptrdiff_t(towers));
    }
    return collectEvalProducts(std::move(lhs), std::move(rhs), towers);
}

std::vector<ResiduePoly>
ResidueOps::mulEvalShared(std::vector<ResiduePoly> as, ResiduePoly b,
                          size_t towers) const
{
    std::vector<const ResiduePoly *> views;
    views.reserve(as.size());
    for (const ResiduePoly &a : as)
        views.push_back(&a);
    checkEvalOperands(views, b, towers);
    if (!device_)
        return mulEvalHost(views, b, towers);

    // The caller relinquished the operands: move every left tower
    // set into its launch, copy the shared right operand for all
    // pairs but the last, which takes the move.
    std::vector<std::vector<std::vector<u128>>> lhs, rhs;
    lhs.reserve(as.size());
    rhs.reserve(as.size());
    for (ResiduePoly &a : as)
        lhs.push_back(std::move(a.towers));
    for (size_t i = 0; i + 1 < lhs.size(); ++i) {
        rhs.emplace_back(b.towers.begin(),
                         b.towers.begin() + ptrdiff_t(towers));
    }
    b.towers.resize(towers);
    rhs.push_back(std::move(b.towers));
    return collectEvalProducts(std::move(lhs), std::move(rhs), towers);
}

ResiduePoly
ResidueOps::mulEval(const ResiduePoly &a, const ResiduePoly &b) const
{
    auto out = mulEvalShared({&a}, b);
    return std::move(out[0]);
}

std::vector<ResiduePoly>
ResidueOps::mulEvalPairs(const std::vector<const ResiduePoly *> &as,
                         const std::vector<const ResiduePoly *> &bs,
                         size_t towers) const
{
    rpu_assert(!as.empty() && as.size() == bs.size(),
               "pair operand count mismatch: %zu vs %zu", as.size(),
               bs.size());
    if (towers == 0)
        towers = as[0]->towerCount();
    for (size_t i = 0; i < as.size(); ++i) {
        rpu_assert(as[i] != nullptr && bs[i] != nullptr,
                   "null operand in pair %zu", i);
        rpu_assert(as[i]->inEval() && bs[i]->inEval(),
                   "pair %zu operands must be evaluation-resident", i);
        rpu_assert(as[i]->towerCount() >= towers &&
                       bs[i]->towerCount() >= towers,
                   "pair %zu spans too few towers", i);
    }

    if (!device_) {
        std::vector<ResiduePoly> out(as.size());
        std::vector<uint64_t> na, nb, no;
        for (size_t i = 0; i < as.size(); ++i) {
            out[i].domain = ResidueDomain::Eval;
            out[i].towers.resize(towers);
            for (size_t t = 0; t < towers; ++t) {
                const Modulus &mod = basis().modulus(t);
                const simd::NarrowModulus *nm =
                    simd::narrowLanesActive() ? mod.narrow() : nullptr;
                const std::vector<u128> &at = as[i]->towers[t];
                const std::vector<u128> &bt = bs[i]->towers[t];
                if (!nm) {
                    out[i].towers[t] = polyPointwise(mod, at, bt);
                    continue;
                }
                na.resize(at.size());
                nb.resize(at.size());
                no.resize(at.size());
                for (size_t j = 0; j < at.size(); ++j) {
                    na[j] = uint64_t(at[j]);
                    nb[j] = uint64_t(bt[j]);
                }
                simd::mulModSpan(na.data(), nb.data(), no.data(),
                                 at.size(), *nm);
                std::vector<u128> r(at.size());
                for (size_t j = 0; j < at.size(); ++j)
                    r[j] = no[j];
                out[i].towers[t] = std::move(r);
            }
        }
        return out;
    }

    // Every pair through one dispatch (PointwiseMulBatched per pair
    // serially, per-tower fan-out on a pooled device); operands are
    // copied in because the launches consume their inputs.
    std::vector<std::vector<std::vector<u128>>> lhs, rhs;
    lhs.reserve(as.size());
    rhs.reserve(as.size());
    for (size_t i = 0; i < as.size(); ++i) {
        lhs.emplace_back(as[i]->towers.begin(),
                         as[i]->towers.begin() + ptrdiff_t(towers));
        rhs.emplace_back(bs[i]->towers.begin(),
                         bs[i]->towers.begin() + ptrdiff_t(towers));
    }
    return collectEvalProducts(std::move(lhs), std::move(rhs), towers);
}

size_t
ResidueOps::digitCount(size_t t, unsigned digitBits) const
{
    rpu_assert(digitBits >= 1 && digitBits < 62,
               "digit base 2^%u out of range", digitBits);
    const u128 q = basis().prime(t);
    size_t bits = 0;
    for (u128 v = q; v != 0; v >>= 1)
        ++bits;
    return (bits + digitBits - 1) / digitBits;
}

std::vector<ResiduePoly>
ResidueOps::digitDecompose(const ResiduePoly &p, unsigned digitBits,
                           size_t towers) const
{
    rpu_assert(!p.inEval(),
               "gadget decomposition splits coefficient residues");
    rpu_assert(towers >= 1 && p.towerCount() >= towers,
               "polynomial spans %zu towers, need %zu", p.towerCount(),
               towers);
    const u128 base = u128(1) << digitBits;
    for (size_t t = 0; t < towers; ++t) {
        rpu_assert(base < basis().prime(t),
                   "digit base 2^%u not below tower %zu's prime",
                   digitBits, t);
    }

    std::vector<ResiduePoly> digits;
    const u128 mask = base - 1;
    for (size_t t = 0; t < towers; ++t) {
        const size_t dcount = digitCount(t, digitBits);
        const std::vector<u128> &src = p.towers[t];
        for (size_t j = 0; j < dcount; ++j) {
            std::vector<u128> d(src.size());
            for (size_t i = 0; i < src.size(); ++i)
                d[i] = (src[i] >> (j * digitBits)) & mask;
            // The digit values are below every chain prime, so the
            // digit polynomial's residues are identical in every
            // tower it spans.
            ResiduePoly rp;
            rp.domain = ResidueDomain::Coeff;
            rp.towers.reserve(towers);
            for (size_t u = 0; u + 1 < towers; ++u)
                rp.towers.push_back(d);
            rp.towers.push_back(std::move(d));
            digits.push_back(std::move(rp));
        }
    }
    return digits;
}

ResiduePoly
ResidueOps::add(const ResiduePoly &a, const ResiduePoly &b) const
{
    rpu_assert(a.domain == b.domain,
               "domain mismatch: addition needs both operands in the "
               "same representation");
    rpu_assert(a.towerCount() == b.towerCount(), "tower count mismatch");
    ResiduePoly out;
    out.domain = a.domain;
    out.towers.reserve(a.towerCount());
    for (size_t t = 0; t < a.towerCount(); ++t) {
        out.towers.push_back(
            polyAdd(basis().modulus(t), a.towers[t], b.towers[t]));
    }
    return out;
}

ResiduePoly
ResidueOps::sub(const ResiduePoly &a, const ResiduePoly &b) const
{
    rpu_assert(a.domain == b.domain,
               "domain mismatch: subtraction needs both operands in "
               "the same representation");
    rpu_assert(a.towerCount() == b.towerCount(), "tower count mismatch");
    ResiduePoly out;
    out.domain = a.domain;
    out.towers.reserve(a.towerCount());
    for (size_t t = 0; t < a.towerCount(); ++t) {
        out.towers.push_back(
            polySub(basis().modulus(t), a.towers[t], b.towers[t]));
    }
    return out;
}

} // namespace rpu
