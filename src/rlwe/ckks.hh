/**
 * @file
 * CKKS approximate-arithmetic RLWE scheme, RNS-native, on the RPU
 * device layer.
 *
 * The second scheme the simulated RPU executes (the paper positions
 * the RPU as a general ring processor; its OpenFHE-lineage evaluation
 * targets are CKKS workloads). Where BFV computes exactly on
 * coefficients mod t, CKKS computes approximately on n/2 complex
 * slots: messages are fixed-point-scaled evaluations at primitive
 * 2n-th roots (see CkksEncoder), and every multiplication doubles the
 * scale until a rescale divides it back down by dropping the last
 * tower of the RNS modulus chain.
 *
 * Ciphertexts live natively in RNS — one residue polynomial per tower
 * of the modulus chain q_0..q_(L-1) — so homomorphic ops never leave
 * the towers:
 *
 *   add      per-tower coefficient adds (host).
 *   mulPlain both ciphertext components through one
 *            RpuDevice::mulTowersBatchAsync dispatch (all 2 x towers
 *            fused negacyclic products overlap on the worker pool;
 *            serial devices run one batched all-towers kernel per
 *            component), host reference NTT without a device.
 *   rescale  drops tower l: c'_t = (c_t - lift([c]_l)) * q_l^-1,
 *            computed in the evaluation domain — per-tower forward
 *            NTT, pointwise scaling, inverse NTT — as device kernel
 *            launches when attached (the paper's per-tower NTT +
 *            pointwise pattern), host NTT otherwise. Both paths are
 *            bit-identical on every tower.
 *
 * Only decryption reconstructs out of RNS (CRT over the active
 * prefix, centre mod Q, decode). Like the BFV sibling this is a
 * demonstration workload, not a hardened cryptosystem.
 */

#ifndef RPU_RLWE_CKKS_HH
#define RPU_RLWE_CKKS_HH

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "poly/polynomial.hh"
#include "rlwe/ckks_encoder.hh"
#include "rns/crt.hh"

namespace rpu {

class RpuDevice;

/** CKKS parameters: ring, modulus chain, fixed-point scale. */
struct CkksParams
{
    uint64_t n = 4096;       ///< ring dimension (power of two)
    size_t towers = 3;       ///< modulus-chain length L
    unsigned towerBits = 45; ///< bits per chain prime
    double scale = 1099511627776.0; ///< encoding scale (2^40)
    uint64_t noiseBound = 4; ///< uniform error in [-B, B]

    /** Fatal on invalid combinations. */
    void validate() const;
};

/**
 * A CKKS ciphertext: two RNS-resident ring polynomials (element
 * [t][i] is coefficient i in tower t, over the first towers() primes
 * of the chain) plus the fixed-point scale its slots carry.
 */
struct CkksCiphertext
{
    std::vector<std::vector<u128>> c0;
    std::vector<std::vector<u128>> c1;
    double scale = 1.0;

    /** Active chain length; rescale shrinks it by one. */
    size_t towers() const { return c0.size(); }
};

/** Secret key: one ternary integer polynomial, shared by all towers. */
struct CkksSecretKey
{
    std::vector<int8_t> s; ///< coefficients in {-1, 0, 1}
};

/** Scheme context bound to concrete parameters. */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params, uint64_t seed = 1);

    const CkksParams &params() const { return params_; }
    const CkksEncoder &encoder() const { return encoder_; }

    /** Complex values packed per ciphertext: n/2. */
    size_t slots() const { return encoder_.slots(); }

    /** The full modulus chain (prefix of length params().towers). */
    const RnsBasis &basis() const { return prefixBasis(params_.towers); }

    /** The chain prefix of @p towers primes (1 <= towers <= L). */
    const RnsBasis &prefixBasis(size_t towers) const;

    /** CRT context over the chain prefix of @p towers primes. */
    const CrtContext &crt(size_t towers) const;

    /** Host reference transform for tower @p t's ring. */
    const NttContext &hostNtt(size_t t) const;

    CkksSecretKey keygen();

    /**
     * Encode @p values (at most slots() entries) at the context scale
     * and encrypt over the full chain.
     */
    CkksCiphertext encrypt(const CkksSecretKey &sk,
                           const std::vector<std::complex<double>> &values);

    /**
     * Decrypt: per-tower c0 + c1*s, CRT-reconstruct over the active
     * prefix, centre mod Q, decode at the ciphertext's scale.
     */
    std::vector<std::complex<double>>
    decrypt(const CkksSecretKey &sk, const CkksCiphertext &ct) const;

    /** Slot-wise homomorphic addition (same level, same scale). */
    CkksCiphertext add(const CkksCiphertext &a,
                       const CkksCiphertext &b) const;

    /**
     * Slot-wise product with plaintext @p values, encoded at the
     * context scale; the result's scale is ct.scale * params().scale.
     * With a device attached both components run through one
     * mulTowersBatchAsync dispatch; host reference NTT otherwise.
     */
    CkksCiphertext
    mulPlain(const CkksCiphertext &ct,
             const std::vector<std::complex<double>> &values) const;

    /**
     * Drop the last active tower q_l and divide the scale by it:
     * c'_t = (c_t - lift([c]_l)) * q_l^-1 mod q_t, evaluated as
     * per-tower forward NTT + pointwise scaling + inverse NTT on the
     * device (host NTT fallback). Exact in RNS: bit-identical to the
     * wide-integer (V - centred(V mod q_l)) / q_l on every tower.
     */
    CkksCiphertext rescale(const CkksCiphertext &ct) const;

    // -- RPU execution ---------------------------------------------------

    /** Route homomorphic tower products/transforms through @p device. */
    void attachDevice(std::shared_ptr<RpuDevice> device);

    bool deviceAttached() const { return device_ != nullptr; }
    std::shared_ptr<RpuDevice> device() const { return device_; }

  private:
    /** First @p towers chain primes, in order. */
    std::vector<u128> activePrimes(size_t towers) const;

    /** Residues of signed coefficients over the first @p towers. */
    CrtContext::TowerPoly
    residuesOfSigned(const std::vector<int64_t> &coeffs,
                     size_t towers) const;

    /** Residue of tower-l value @p r (centred) in tower @p t. */
    u128 liftCentred(u128 r, const Modulus &mod_l,
                     const Modulus &mod_t) const;

    CkksParams params_;
    CkksEncoder encoder_;
    Rng rng_;

    // Chain prefixes [0] = {q_0} .. [L-1] = full chain, each with its
    // CRT constants; node-stable so references stay valid.
    std::vector<std::unique_ptr<RnsBasis>> prefixes_;
    std::vector<std::unique_ptr<CrtContext>> crts_;

    // Per-tower host twiddles/transforms (reference path + decrypt).
    std::vector<std::unique_ptr<TwiddleTable>> twiddles_;
    std::vector<std::unique_ptr<NttContext>> ntts_;

    std::shared_ptr<RpuDevice> device_;
};

} // namespace rpu

#endif // RPU_RLWE_CKKS_HH
