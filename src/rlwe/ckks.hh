/**
 * @file
 * CKKS approximate-arithmetic RLWE scheme, RNS-native and
 * evaluation-domain resident, on the RPU device layer.
 *
 * The second scheme the simulated RPU executes (the paper positions
 * the RPU as a general ring processor; its OpenFHE-lineage evaluation
 * targets are CKKS workloads). Where BFV computes exactly on
 * coefficients mod t, CKKS computes approximately on n/2 complex
 * slots: messages are fixed-point-scaled evaluations at primitive
 * 2n-th roots (see CkksEncoder), and every multiplication doubles the
 * scale until a rescale divides it back down by dropping the last
 * tower of the RNS modulus chain.
 *
 * Ciphertexts are domain-tagged ResiduePoly pairs and live in the
 * *evaluation* (NTT) domain from encryption onward — the paper's
 * amortise-the-NTT strategy made structural:
 *
 *   encrypt  produces Eval-resident components (the uniform mask is
 *            sampled directly in evaluation form).
 *   encode   (encodePlain) produces an Eval-resident plaintext,
 *            forward-transformed once and reusable across ops and
 *            levels (a rescaled ciphertext uses its tower prefix).
 *   add      per-tower coefficient adds, domain-preserving (host).
 *   mulPlain a pure pointwise dispatch: both components against the
 *            shared plaintext through one
 *            RpuDevice::pointwiseTowersBatchAsync — zero transforms.
 *   rescale  the only forced (partial) return to Coeff: the dropped
 *            tower is inverse-transformed (a device launch when
 *            attached), its centred lift is re-entered into the
 *            remaining towers via the host transform (the same
 *            engine encrypt/decrypt use), and the subtraction and
 *            q_l^-1 scaling happen pointwise in the evaluation
 *            domain. The ciphertext towers themselves are never
 *            forward-transformed again — the device issues zero
 *            forward-NTT launches across a mulPlain->rescale->
 *            mulPlain chain, which DeviceStats proves.
 *
 * Coefficient-resident ciphertexts (after an explicit toCoeff) stay
 * fully supported: every op is domain-aware, and rescaling a Coeff
 * ciphertext is plain host coefficient arithmetic, bit-identical to
 * toCoeff(rescale(Eval)). Only decryption reconstructs out of RNS
 * (CRT over the active prefix, centre mod Q, decode). Like the BFV
 * sibling this is a demonstration workload, not a hardened
 * cryptosystem.
 */

#ifndef RPU_RLWE_CKKS_HH
#define RPU_RLWE_CKKS_HH

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "poly/polynomial.hh"
#include "rlwe/ckks_encoder.hh"
#include "rlwe/evaluator.hh"
#include "rlwe/residue_poly.hh"
#include "rns/crt.hh"

namespace rpu {

class RpuDevice;

/** CKKS parameters: ring, modulus chain, fixed-point scale. */
struct CkksParams
{
    uint64_t n = 4096;       ///< ring dimension (power of two)
    size_t towers = 3;       ///< modulus-chain length L
    unsigned towerBits = 45; ///< bits per chain prime
    double scale = 1099511627776.0; ///< encoding scale (2^40)
    uint64_t noiseBound = 4; ///< uniform error in [-B, B]

    /** Fatal on invalid combinations. */
    void validate() const;
};

/**
 * A CKKS ciphertext: two domain-tagged RNS ring polynomials over the
 * first towers() primes of the chain, plus the fixed-point scale its
 * slots carry. Freshly encrypted ciphertexts are Eval-resident and
 * every homomorphic op keeps them there; toCoeff/toEval move both
 * components together.
 */
struct CkksCiphertext
{
    ResiduePoly c0;
    ResiduePoly c1;
    double scale = 1.0;

    /** Active chain length; rescale shrinks it by one. */
    size_t towers() const { return c0.towerCount(); }

    /** The components' shared residency (they always move together). */
    ResidueDomain domain() const { return c0.domain; }
};

/**
 * An encoded plaintext: Eval-resident residues of the encoder output
 * over the full modulus chain, transformed once at encode time. A
 * ciphertext at any level multiplies against the matching tower
 * prefix, so one encoded plaintext serves a whole rescale chain with
 * no further transforms.
 */
struct CkksPlaintext
{
    ResiduePoly rp;
    double scale = 1.0;

    size_t towers() const { return rp.towerCount(); }
};

/** Secret key: one ternary integer polynomial, shared by all towers. */
struct CkksSecretKey
{
    std::vector<int8_t> s; ///< coefficients in {-1, 0, 1}
};

/** Scheme context bound to concrete parameters. */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params, uint64_t seed = 1);

    const CkksParams &params() const { return params_; }
    const CkksEncoder &encoder() const { return encoder_; }

    /** Complex values packed per ciphertext: n/2. */
    size_t slots() const { return encoder_.slots(); }

    /** The full modulus chain (prefix of length params().towers). */
    const RnsBasis &basis() const { return prefixBasis(params_.towers); }

    /** The chain prefix of @p towers primes (1 <= towers <= L). */
    const RnsBasis &prefixBasis(size_t towers) const;

    /** CRT context over the chain prefix of @p towers primes. */
    const CrtContext &crt(size_t towers) const;

    /** Host reference transform for tower @p t's ring. */
    const NttContext &hostNtt(size_t t) const
    {
        return evaluator_.hostNtt(t);
    }

    /** Domain transitions / pointwise algebra over the full chain. */
    const ResidueOps &residueOps() const { return evaluator_.ops(); }

    /** The shared op pipeline (dispatch, domains, host fallback). */
    const RlweEvaluator &evaluator() const { return evaluator_; }

    CkksSecretKey keygen();

    /**
     * Encode @p values (at most slots() entries) at the context scale
     * over the first @p towers chain primes (0 = the full chain) and
     * enter the evaluation domain — one batched forward-NTT dispatch
     * on the attached device (host transform otherwise). A full-chain
     * encoding is reusable across ops and levels through its tower
     * prefix; pass a ciphertext's level to encode a single-use
     * plaintext without transforming towers it will never touch.
     */
    CkksPlaintext
    encodePlain(const std::vector<std::complex<double>> &values,
                size_t towers = 0) const;

    /**
     * encodePlain without the evaluation-domain entry: the encoded
     * residues stay Coeff-resident and pay no transform at all. For
     * callers that batch the forward entry themselves — the serving
     * layer coalesces many tenants' plaintext entries into one
     * batched device launch (RpuDevice::transformCoalesced) instead
     * of paying one launch per encode.
     */
    CkksPlaintext
    encodePlainCoeff(const std::vector<std::complex<double>> &values,
                     size_t towers = 0) const;

    /**
     * Encode @p values (at most slots() entries) at the context scale
     * and encrypt over the full chain. The ciphertext is Eval-resident:
     * the uniform mask is sampled in evaluation form and the message
     * enters through one host forward transform per tower.
     */
    CkksCiphertext encrypt(const CkksSecretKey &sk,
                           const std::vector<std::complex<double>> &values);

    /**
     * Re-entrant encrypt: identical pipeline, but every random draw
     * (error then mask) comes from @p rng instead of the context's
     * own stream. Concurrent callers — the serving layer's per-tenant
     * sessions with per-request derived streams — get reproducible
     * ciphertexts regardless of interleaving; encrypt(sk, values) is
     * exactly encrypt(sk, values, rng_).
     */
    CkksCiphertext encrypt(const CkksSecretKey &sk,
                           const std::vector<std::complex<double>> &values,
                           Rng &rng) const;

    /**
     * Decrypt: per-tower c0 + c1*s (pointwise in Eval, negacyclic in
     * Coeff), the forced return to coefficients, CRT-reconstruct over
     * the active prefix, centre mod Q, decode at the ciphertext's
     * scale.
     */
    std::vector<std::complex<double>>
    decrypt(const CkksSecretKey &sk, const CkksCiphertext &ct) const;

    /**
     * Slot-wise homomorphic addition (same level, same scale, same
     * residency).
     */
    CkksCiphertext add(const CkksCiphertext &a,
                       const CkksCiphertext &b) const;

    /**
     * Slot-wise product with an encoded plaintext (tower prefix
     * matched to the ciphertext's level); the result's scale is
     * ct.scale * pt.scale. Both components run through one pointwise
     * dispatch — no transform is issued when the ciphertext is
     * already Eval-resident (the elision lands in DeviceStats).
     */
    CkksCiphertext mulPlain(const CkksCiphertext &ct,
                            const CkksPlaintext &pt) const;

    /** Convenience: encodePlain + mulPlain in one call. */
    CkksCiphertext
    mulPlain(const CkksCiphertext &ct,
             const std::vector<std::complex<double>> &values) const;

    /**
     * Gadget-decomposed relinearisation key over the full chain
     * (see RlweEvaluator::makeRelinKey). One key serves every
     * level: a rescaled ciphertext's key-switch reads the key
     * through its tower prefix.
     */
    RelinKey makeRelinKey(const CkksSecretKey &sk,
                          unsigned digitBits = 16);

    /**
     * Slot-wise ciphertext x ciphertext product, relinearised back
     * to degree 1 through the evaluator's shared mulPair pipeline
     * (tensor product as pure pointwise launches, gadget key-switch
     * with @p rk; CKKS needs no degree-2 hook). Operands must sit
     * at the same level; the result's scale is the product of the
     * operands' scales, so the natural follow-up is a rescale —
     * which then drops a tower, exactly as after mulPlain.
     */
    CkksCiphertext mulCt(const CkksCiphertext &a,
                         const CkksCiphertext &b,
                         const RelinKey &rk) const;

    /**
     * Drop the last active tower q_l and divide the scale by it:
     * c'_t = (c_t - lift([c]_l)) * q_l^-1 mod q_t. Exact in RNS:
     * bit-identical to the wide-integer (V - centred(V mod q_l)) / q_l
     * on every tower, in either residency. Eval-resident input keeps
     * the remaining towers in the evaluation domain — only the
     * dropped tower is inverse-transformed (the scheme's one forced
     * Coeff boundary) and no forward-NTT launch is issued.
     */
    CkksCiphertext rescale(const CkksCiphertext &ct) const;

    /**
     * The host half of an Eval-resident rescale, split out so the
     * device half can be batched across ciphertexts: @p dropped must
     * be the Coeff residues of the last active tower of {c0, c1}
     * (exactly what RlweEvaluator::inverseTower({&ct.c0, &ct.c1}, l)
     * returns — or one item of a coalesced
     * RpuDevice::transformCoalesced over many ciphertexts' dropped
     * towers). Bit-identical to rescale(ct), which is now a thin
     * wrapper over this.
     */
    CkksCiphertext
    rescaleFromDropped(const CkksCiphertext &ct,
                       const std::vector<std::vector<u128>> &dropped)
        const;

    /** Move both components to the target residency (see ResidueOps). */
    void toCoeff(CkksCiphertext &ct) const;
    void toEval(CkksCiphertext &ct) const;

    // -- RPU execution ---------------------------------------------------

    /** Route homomorphic tower products/transforms through @p device. */
    void attachDevice(std::shared_ptr<RpuDevice> device);

    bool deviceAttached() const { return evaluator_.deviceAttached(); }
    std::shared_ptr<RpuDevice> device() const
    {
        return evaluator_.device();
    }

  private:
    /** Residues of signed coefficients over the first @p towers. */
    CrtContext::TowerPoly
    residuesOfSigned(const std::vector<int64_t> &coeffs,
                     size_t towers) const;

    /** Residue of tower-l value @p r (centred) in tower @p t. */
    u128 liftCentred(u128 r, const Modulus &mod_l,
                     const Modulus &mod_t) const;

    CkksParams params_;
    CkksEncoder encoder_;
    Rng rng_;

    // Chain prefixes [0] = {q_0} .. [L-1] = full chain, each with its
    // CRT constants; node-stable so references stay valid.
    std::vector<std::unique_ptr<RnsBasis>> prefixes_;
    std::vector<std::unique_ptr<CrtContext>> crts_;

    // The shared op pipeline over the full chain: per-tower host
    // transforms, domain transitions, dispatch, ledger accounting.
    RlweEvaluator evaluator_;
};

} // namespace rpu

#endif // RPU_RLWE_CKKS_HH
