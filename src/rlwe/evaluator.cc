#include "rlwe/evaluator.hh"

#include <exception>
#include <future>
#include <utility>

#include "common/logging.hh"
#include "poly/polynomial.hh"
#include "rpu/device.hh"
#include "rpu/thread_pool.hh"

namespace rpu {

RlweEvaluator::RlweEvaluator(uint64_t n, const RnsBasis *basis)
    : n_(n), basis_(basis), ops_(n, basis)
{
    rpu_assert(basis_ != nullptr, "evaluator needs a basis");
    const size_t towers = basis_->towers();
    twiddles_.reserve(towers);
    ntts_.reserve(towers);
    std::vector<const NttContext *> host(towers);
    for (size_t t = 0; t < towers; ++t) {
        twiddles_.push_back(
            std::make_unique<TwiddleTable>(basis_->modulus(t), n_));
        ntts_.push_back(std::make_unique<NttContext>(*twiddles_[t]));
        host[t] = ntts_[t].get();
    }
    ops_.setHostTransforms(std::move(host));
}

void
RlweEvaluator::attachDevice(std::shared_ptr<RpuDevice> device)
{
    rpu_assert(device != nullptr, "no device");
    device_ = std::move(device);
    ops_.setDevice(device_);
}

const RnsBasis &
RlweEvaluator::basis() const
{
    rpu_assert(basis_ != nullptr, "evaluator has no basis bound");
    return *basis_;
}

const Modulus &
RlweEvaluator::modulus(size_t t) const
{
    return basis().modulus(t);
}

const NttContext &
RlweEvaluator::hostNtt(size_t t) const
{
    rpu_assert(t < ntts_.size(), "tower %zu out of range", t);
    return *ntts_[t];
}

ResiduePoly
RlweEvaluator::enterEval(TowerPoly coeff_towers) const
{
    ResiduePoly p(ResidueDomain::Coeff, std::move(coeff_towers));
    ops_.toEval(p);
    return p;
}

void
RlweEvaluator::convertPair(ResiduePoly &c0, ResiduePoly &c1,
                           ResidueDomain target) const
{
    ops_.convert({&c0, &c1}, target);
}

std::array<ResiduePoly, 2>
RlweEvaluator::addPair(const ResiduePoly &a0, const ResiduePoly &a1,
                       const ResiduePoly &b0,
                       const ResiduePoly &b1) const
{
    return {ops_.add(a0, b0), ops_.add(a1, b1)};
}

std::array<ResiduePoly, 2>
RlweEvaluator::subPair(const ResiduePoly &a0, const ResiduePoly &a1,
                       const ResiduePoly &b0,
                       const ResiduePoly &b1) const
{
    return {ops_.sub(a0, b0), ops_.sub(a1, b1)};
}

std::array<ResiduePoly, 2>
RlweEvaluator::mulPlainPair(const ResiduePoly &c0, const ResiduePoly &c1,
                            const ResiduePoly &pt, size_t towers) const
{
    rpu_assert(towers >= 1, "empty ciphertext");
    rpu_assert(pt.towerCount() >= towers,
               "plaintext spans %zu towers, ciphertext needs %zu",
               pt.towerCount(), towers);
    rpu_assert(pt.inEval(), "plaintext must be encoded (Eval)");
    rpu_assert(c0.domain == c1.domain,
               "ciphertext components in different domains");
    rpu_assert(c0.towerCount() == towers && c1.towerCount() == towers,
               "component tower count mismatch");

    // Steady state (Eval-resident components): read in place — no
    // copy, no transform, just the pointwise dispatch — and the
    // conversions a coefficient-resident system would have paid land
    // in the elision ledger. Coeff-resident components convert on
    // copies so the inputs stay untouched.
    std::vector<ResiduePoly> owned;
    std::vector<const ResiduePoly *> comps;
    if (c0.inEval()) {
        ops_.noteElidedConversions(2 * towers);
        comps = {&c0, &c1};
    } else {
        owned.reserve(2);
        owned.push_back(c0);
        owned.push_back(c1);
        ops_.convert({&owned[0], &owned[1]}, ResidueDomain::Eval);
        comps = {&owned[0], &owned[1]};
    }

    auto prods = ops_.mulEvalShared(comps, pt, towers);
    return {std::move(prods[0]), std::move(prods[1])};
}

std::array<ResiduePoly, 3>
RlweEvaluator::tensorPair(const ResiduePoly &a0, const ResiduePoly &a1,
                          const ResiduePoly &b0,
                          const ResiduePoly &b1) const
{
    const size_t towers = a0.towerCount();
    rpu_assert(a1.towerCount() == towers &&
                   b0.towerCount() == towers &&
                   b1.towerCount() == towers,
               "tensor operands span different tower counts");
    rpu_assert(a0.domain == a1.domain && b0.domain == b1.domain,
               "ciphertext components in different domains");

    // Eval-resident pairs are read in place (the conversions a
    // coefficient-resident system would pay land in the elision
    // ledger); Coeff-resident pairs convert on copies.
    std::vector<ResiduePoly> owned;
    owned.reserve(4);
    const ResiduePoly *pa0 = &a0, *pa1 = &a1;
    const ResiduePoly *pb0 = &b0, *pb1 = &b1;
    if (a0.inEval()) {
        ops_.noteElidedConversions(2 * towers);
    } else {
        owned.push_back(a0);
        owned.push_back(a1);
        ops_.convert({&owned[0], &owned[1]}, ResidueDomain::Eval);
        pa0 = &owned[0];
        pa1 = &owned[1];
    }
    if (b0.inEval()) {
        ops_.noteElidedConversions(2 * towers);
    } else {
        const size_t base = owned.size();
        owned.push_back(b0);
        owned.push_back(b1);
        ops_.convert({&owned[base], &owned[base + 1]},
                     ResidueDomain::Eval);
        pb0 = &owned[base];
        pb1 = &owned[base + 1];
    }

    // The four cross products in one pointwise dispatch, folded into
    // (c0, c1, c2) = (a0b0, a0b1 + a1b0, a1b1) with host tower adds.
    auto prods = ops_.mulEvalPairs({pa0, pa0, pa1, pa1},
                                   {pb0, pb1, pb0, pb1}, towers);
    return {std::move(prods[0]), ops_.add(prods[1], prods[2]),
            std::move(prods[3])};
}

std::array<ResiduePoly, 2>
RlweEvaluator::relinearise(const ResiduePoly &d0, const ResiduePoly &d1,
                           ResiduePoly d2, const RelinKey &rk) const
{
    const size_t towers = d0.towerCount();
    rpu_assert(d1.towerCount() == towers && d2.towerCount() == towers,
               "degree-2 components span different tower counts");
    rpu_assert(d0.inEval() && d1.inEval(),
               "degree-1 components must be evaluation-resident");
    rpu_assert(rk.towerCount() >= towers,
               "relin key covers %zu towers, ciphertext spans %zu",
               rk.towerCount(), towers);
    for (size_t t = 0; t < towers; ++t) {
        rpu_assert(rk.k[t].size() == ops_.digitCount(t, rk.digitBits),
                   "relin key digit layout mismatch at tower %zu", t);
    }

    // c2 leaves the evaluation domain — the key-switch's one batched
    // inverse pass. A scheme hook that already returned it in Coeff
    // (BFV's scale-and-round) makes this a recorded elision instead.
    const bool c2_was_eval = d2.inEval();
    ops_.toCoeff(d2);
    if (c2_was_eval && device_)
        device_->noteKeySwitchTransforms(towers);

    // Digit split (host) and re-entry: every digit polynomial back
    // into the evaluation domain through one batched forward
    // dispatch — the digits * towers transforms the gadget
    // decomposition costs, annotated as key-switch plumbing.
    std::vector<ResiduePoly> digits =
        ops_.digitDecompose(d2, rk.digitBits, towers);
    std::vector<ResiduePoly *> views;
    views.reserve(digits.size());
    for (ResiduePoly &d : digits)
        views.push_back(&d);
    ops_.convert(views, ResidueDomain::Eval);
    if (device_)
        device_->noteKeySwitchTransforms(digits.size() * towers);

    // The inner product against the key: 2 * totalDigits pairs
    // (digit .* k0, digit .* k1) through one pointwise dispatch, the
    // key read through its tower prefix without copying it down.
    std::vector<const ResiduePoly *> as, bs;
    as.reserve(2 * digits.size());
    bs.reserve(2 * digits.size());
    size_t idx = 0;
    for (size_t t = 0; t < towers; ++t) {
        for (size_t j = 0; j < rk.k[t].size(); ++j, ++idx) {
            as.push_back(&digits[idx]);
            bs.push_back(&rk.k[t][j][0]);
            as.push_back(&digits[idx]);
            bs.push_back(&rk.k[t][j][1]);
        }
    }
    rpu_assert(idx == digits.size(), "digit/key layout mismatch");
    auto prods = ops_.mulEvalPairs(as, bs, towers);

    ResiduePoly r0 = d0;
    ResiduePoly r1 = d1;
    for (size_t i = 0; i < digits.size(); ++i) {
        r0 = ops_.add(r0, prods[2 * i]);
        r1 = ops_.add(r1, prods[2 * i + 1]);
    }
    return {std::move(r0), std::move(r1)};
}

std::array<ResiduePoly, 2>
RlweEvaluator::mulPair(const ResiduePoly &a0, const ResiduePoly &a1,
                       const ResiduePoly &b0, const ResiduePoly &b1,
                       const RelinKey &rk, const Degree2Hook &hook) const
{
    std::array<ResiduePoly, 3> d = tensorPair(a0, a1, b0, b1);
    if (hook)
        d = hook(std::move(d));
    return relinearise(d[0], d[1], std::move(d[2]), rk);
}

RelinKey
RlweEvaluator::makeRelinKey(const TowerPoly &s_res, uint64_t noiseBound,
                            Rng &rng, unsigned digitBits) const
{
    const size_t towers = s_res.size();
    rpu_assert(towers >= 1 && towers <= basis().towers(),
               "key spans %zu towers, chain has %zu", towers,
               basis().towers());

    // s and s^2 in evaluation form, once per tower; the squaring is
    // pointwise there.
    std::vector<std::vector<u128>> s_eval(towers), s2_eval(towers);
    for (size_t t = 0; t < towers; ++t) {
        rpu_assert(s_res[t].size() == n_, "secret residue size mismatch");
        s_eval[t] = s_res[t];
        hostNtt(t).forward(s_eval[t]);
        s2_eval[t] = polyPointwise(modulus(t), s_eval[t], s_eval[t]);
    }

    RelinKey rk;
    rk.digitBits = digitBits;
    rk.k.resize(towers);
    const u128 base = u128(1) << digitBits;
    const uint64_t span = 2 * noiseBound + 1;
    std::vector<int64_t> e(n_);
    for (size_t t = 0; t < towers; ++t) {
        const Modulus &mod_t = modulus(t);
        rk.k[t].resize(ops_.digitCount(t, digitBits));
        u128 g = 1; // B^j mod q_t
        for (size_t j = 0; j < rk.k[t].size(); ++j) {
            // One small error polynomial per key entry, shared by
            // every tower's residues (like encryptPair's).
            for (auto &v : e)
                v = int64_t(rng.below64(span)) - int64_t(noiseBound);

            std::array<ResiduePoly, 2> &entry = rk.k[t][j];
            entry[0].domain = ResidueDomain::Eval;
            entry[1].domain = ResidueDomain::Eval;
            entry[0].towers.resize(towers);
            entry[1].towers.resize(towers);
            for (size_t u = 0; u < towers; ++u) {
                const Modulus &mod = modulus(u);
                const std::vector<u128> a = randomPoly(mod, n_, rng);
                std::vector<u128> er(n_);
                for (size_t i = 0; i < n_; ++i) {
                    const int64_t ei = e[i];
                    er[i] = ei >= 0
                                ? mod.reduce(u128(uint64_t(ei)))
                                : mod.neg(mod.reduce(
                                      u128(uint64_t(-ei))));
                }
                hostNtt(u).forward(er);
                // k0 = a*s + e + g_{t,j}*s^2, k1 = -a — the gadget
                // factor is a CRT unit vector, so the s^2 term only
                // exists in tower t and costs a pointwise scale, no
                // transform.
                std::vector<u128> k0 = polyAdd(
                    mod, polyPointwise(mod, a, s_eval[u]), er);
                if (u == t)
                    k0 = polyAdd(mod, k0,
                                 polyScale(mod, g, s2_eval[t]));
                std::vector<u128> k1(n_);
                for (size_t i = 0; i < n_; ++i)
                    k1[i] = mod.neg(a[i]);
                entry[0].towers[u] = std::move(k0);
                entry[1].towers[u] = std::move(k1);
            }
            g = mod_t.mul(g, mod_t.reduce(base));
        }
    }
    return rk;
}

std::array<ResiduePoly, 2>
RlweEvaluator::encryptPair(const TowerPoly &s_res,
                           const TowerPoly &em_res, Rng &rng) const
{
    const size_t L = s_res.size();
    rpu_assert(L >= 1 && L <= basis().towers(),
               "ciphertext spans %zu towers, chain has %zu", L,
               basis().towers());
    rpu_assert(em_res.size() == L, "residue tower count mismatch");

    std::array<ResiduePoly, 2> ct;
    ct[0].domain = ResidueDomain::Eval;
    ct[1].domain = ResidueDomain::Eval;
    ct[0].towers.reserve(L);
    ct[1].towers.reserve(L);
    for (size_t t = 0; t < L; ++t) {
        const Modulus &mod = modulus(t);
        const std::vector<u128> a = randomPoly(mod, n_, rng);
        std::vector<u128> s_eval = s_res[t];
        hostNtt(t).forward(s_eval);
        std::vector<u128> em_eval = em_res[t];
        hostNtt(t).forward(em_eval);
        // c0 = a*s + (e + m); c1 = -a — all pointwise in Eval.
        std::vector<u128> c0 =
            polyAdd(mod, polyPointwise(mod, a, s_eval), em_eval);
        std::vector<u128> c1(n_);
        for (size_t i = 0; i < n_; ++i)
            c1[i] = mod.neg(a[i]);
        ct[0].towers.push_back(std::move(c0));
        ct[1].towers.push_back(std::move(c1));
    }
    return ct;
}

RlweEvaluator::TowerPoly
RlweEvaluator::innerProduct(const ResiduePoly &c0, const ResiduePoly &c1,
                            const TowerPoly &s_res) const
{
    const size_t L = c0.towerCount();
    rpu_assert(L >= 1, "empty ciphertext");
    rpu_assert(c0.domain == c1.domain && c1.towerCount() == L,
               "ciphertext components in different shapes");
    rpu_assert(s_res.size() >= L, "secret residues span too few towers");

    TowerPoly v(L);
    forEachUnit(L, [&](size_t t) {
        const Modulus &mod = modulus(t);
        if (c0.inEval()) {
            std::vector<u128> s_eval = s_res[t];
            hostNtt(t).forward(s_eval);
            std::vector<u128> ve =
                polyAdd(mod, c0.towers[t],
                        polyPointwise(mod, c1.towers[t], s_eval));
            hostNtt(t).inverse(ve);
            v[t] = std::move(ve);
        } else {
            const std::vector<u128> c1s = negacyclicMulNtt(
                hostNtt(t), c1.towers[t], s_res[t]);
            v[t] = polyAdd(mod, c0.towers[t], c1s);
        }
    });
    return v;
}

std::vector<std::vector<u128>>
RlweEvaluator::inverseTower(
    const std::vector<const ResiduePoly *> &polys, size_t t) const
{
    std::vector<std::vector<u128>> out(polys.size());
    for (const ResiduePoly *p : polys) {
        rpu_assert(p != nullptr && p->inEval() && t < p->towerCount(),
                   "inverseTower needs Eval operands with tower %zu",
                   t);
    }
    if (device_) {
        const KernelImage &k = device_->kernel(
            KernelKind::InverseNtt, n_, {basis().prime(t)});
        std::vector<LaunchFuture> futures;
        futures.reserve(polys.size());
        for (const ResiduePoly *p : polys)
            futures.push_back(device_->launchAsync(k, {p->towers[t]}));
        auto results = RpuDevice::whenAll(std::move(futures));
        for (size_t c = 0; c < polys.size(); ++c)
            out[c] = std::move(results[c][0]);
        return out;
    }
    for (size_t c = 0; c < polys.size(); ++c) {
        out[c] = polys[c]->towers[t];
        hostNtt(t).inverse(out[c]);
    }
    return out;
}

std::vector<RlweEvaluator::TowerPoly>
RlweEvaluator::forwardTowersAt(std::vector<TowerPoly> xs,
                               size_t first) const
{
    if (xs.empty())
        return xs;
    const size_t count = xs[0].size();
    rpu_assert(count >= 1 && first + count <= basis().towers(),
               "tower range [%zu, %zu) outside the chain", first,
               first + count);
    for (const TowerPoly &x : xs)
        rpu_assert(x.size() == count, "tower count mismatch");

    if (device_) {
        std::vector<u128> primes(count);
        for (size_t t = 0; t < count; ++t)
            primes[t] = basis().prime(first + t);
        auto pending = device_->transformTowersBatchAsync(
            n_, primes, std::move(xs), false);
        std::vector<TowerPoly> out(pending.size());
        for (size_t i = 0; i < out.size(); ++i)
            out[i] = RpuDevice::collectTowers(std::move(pending[i]));
        return out;
    }
    for (TowerPoly &x : xs) {
        for (size_t t = 0; t < count; ++t)
            hostNtt(first + t).forward(x[t]);
    }
    return xs;
}

void
RlweEvaluator::forEachUnit(size_t count,
                           const std::function<void(size_t)> &fn) const
{
    ThreadPool *pool = device_ ? device_->workerPool() : nullptr;
    if (pool == nullptr || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    // Independent units ride the device's worker pool. Every unit is
    // joined before the first failure is rethrown, so no unit is left
    // running with references into an unwinding caller.
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i)
        futures.push_back(pool->submit([&fn, i] { fn(i); }));
    std::exception_ptr first_error;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace rpu
