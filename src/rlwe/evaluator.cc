#include "rlwe/evaluator.hh"

#include <exception>
#include <future>
#include <utility>

#include "common/logging.hh"
#include "poly/polynomial.hh"
#include "rpu/device.hh"
#include "rpu/thread_pool.hh"

namespace rpu {

RlweEvaluator::RlweEvaluator(uint64_t n, const RnsBasis *basis)
    : n_(n), basis_(basis), ops_(n, basis)
{
    rpu_assert(basis_ != nullptr, "evaluator needs a basis");
    const size_t towers = basis_->towers();
    twiddles_.reserve(towers);
    ntts_.reserve(towers);
    std::vector<const NttContext *> host(towers);
    for (size_t t = 0; t < towers; ++t) {
        twiddles_.push_back(
            std::make_unique<TwiddleTable>(basis_->modulus(t), n_));
        ntts_.push_back(std::make_unique<NttContext>(*twiddles_[t]));
        host[t] = ntts_[t].get();
    }
    ops_.setHostTransforms(std::move(host));
}

void
RlweEvaluator::attachDevice(std::shared_ptr<RpuDevice> device)
{
    rpu_assert(device != nullptr, "no device");
    device_ = std::move(device);
    ops_.setDevice(device_);
}

const RnsBasis &
RlweEvaluator::basis() const
{
    rpu_assert(basis_ != nullptr, "evaluator has no basis bound");
    return *basis_;
}

const Modulus &
RlweEvaluator::modulus(size_t t) const
{
    return basis().modulus(t);
}

const NttContext &
RlweEvaluator::hostNtt(size_t t) const
{
    rpu_assert(t < ntts_.size(), "tower %zu out of range", t);
    return *ntts_[t];
}

ResiduePoly
RlweEvaluator::enterEval(TowerPoly coeff_towers) const
{
    ResiduePoly p(ResidueDomain::Coeff, std::move(coeff_towers));
    ops_.toEval(p);
    return p;
}

void
RlweEvaluator::convertPair(ResiduePoly &c0, ResiduePoly &c1,
                           ResidueDomain target) const
{
    ops_.convert({&c0, &c1}, target);
}

std::array<ResiduePoly, 2>
RlweEvaluator::addPair(const ResiduePoly &a0, const ResiduePoly &a1,
                       const ResiduePoly &b0,
                       const ResiduePoly &b1) const
{
    return {ops_.add(a0, b0), ops_.add(a1, b1)};
}

std::array<ResiduePoly, 2>
RlweEvaluator::subPair(const ResiduePoly &a0, const ResiduePoly &a1,
                       const ResiduePoly &b0,
                       const ResiduePoly &b1) const
{
    return {ops_.sub(a0, b0), ops_.sub(a1, b1)};
}

std::array<ResiduePoly, 2>
RlweEvaluator::mulPlainPair(const ResiduePoly &c0, const ResiduePoly &c1,
                            const ResiduePoly &pt, size_t towers) const
{
    rpu_assert(towers >= 1, "empty ciphertext");
    rpu_assert(pt.towerCount() >= towers,
               "plaintext spans %zu towers, ciphertext needs %zu",
               pt.towerCount(), towers);
    rpu_assert(pt.inEval(), "plaintext must be encoded (Eval)");
    rpu_assert(c0.domain == c1.domain,
               "ciphertext components in different domains");
    rpu_assert(c0.towerCount() == towers && c1.towerCount() == towers,
               "component tower count mismatch");

    // Steady state (Eval-resident components): read in place — no
    // copy, no transform, just the pointwise dispatch — and the
    // conversions a coefficient-resident system would have paid land
    // in the elision ledger. Coeff-resident components convert on
    // copies so the inputs stay untouched.
    std::vector<ResiduePoly> owned;
    std::vector<const ResiduePoly *> comps;
    if (c0.inEval()) {
        ops_.noteElidedConversions(2 * towers);
        comps = {&c0, &c1};
    } else {
        owned.reserve(2);
        owned.push_back(c0);
        owned.push_back(c1);
        ops_.convert({&owned[0], &owned[1]}, ResidueDomain::Eval);
        comps = {&owned[0], &owned[1]};
    }

    auto prods = ops_.mulEvalShared(comps, pt, towers);
    return {std::move(prods[0]), std::move(prods[1])};
}

std::array<ResiduePoly, 2>
RlweEvaluator::encryptPair(const TowerPoly &s_res,
                           const TowerPoly &em_res, Rng &rng) const
{
    const size_t L = s_res.size();
    rpu_assert(L >= 1 && L <= basis().towers(),
               "ciphertext spans %zu towers, chain has %zu", L,
               basis().towers());
    rpu_assert(em_res.size() == L, "residue tower count mismatch");

    std::array<ResiduePoly, 2> ct;
    ct[0].domain = ResidueDomain::Eval;
    ct[1].domain = ResidueDomain::Eval;
    ct[0].towers.reserve(L);
    ct[1].towers.reserve(L);
    for (size_t t = 0; t < L; ++t) {
        const Modulus &mod = modulus(t);
        const std::vector<u128> a = randomPoly(mod, n_, rng);
        std::vector<u128> s_eval = s_res[t];
        hostNtt(t).forward(s_eval);
        std::vector<u128> em_eval = em_res[t];
        hostNtt(t).forward(em_eval);
        // c0 = a*s + (e + m); c1 = -a — all pointwise in Eval.
        std::vector<u128> c0 =
            polyAdd(mod, polyPointwise(mod, a, s_eval), em_eval);
        std::vector<u128> c1(n_);
        for (size_t i = 0; i < n_; ++i)
            c1[i] = mod.neg(a[i]);
        ct[0].towers.push_back(std::move(c0));
        ct[1].towers.push_back(std::move(c1));
    }
    return ct;
}

RlweEvaluator::TowerPoly
RlweEvaluator::innerProduct(const ResiduePoly &c0, const ResiduePoly &c1,
                            const TowerPoly &s_res) const
{
    const size_t L = c0.towerCount();
    rpu_assert(L >= 1, "empty ciphertext");
    rpu_assert(c0.domain == c1.domain && c1.towerCount() == L,
               "ciphertext components in different shapes");
    rpu_assert(s_res.size() >= L, "secret residues span too few towers");

    TowerPoly v(L);
    forEachUnit(L, [&](size_t t) {
        const Modulus &mod = modulus(t);
        if (c0.inEval()) {
            std::vector<u128> s_eval = s_res[t];
            hostNtt(t).forward(s_eval);
            std::vector<u128> ve =
                polyAdd(mod, c0.towers[t],
                        polyPointwise(mod, c1.towers[t], s_eval));
            hostNtt(t).inverse(ve);
            v[t] = std::move(ve);
        } else {
            const std::vector<u128> c1s = negacyclicMulNtt(
                hostNtt(t), c1.towers[t], s_res[t]);
            v[t] = polyAdd(mod, c0.towers[t], c1s);
        }
    });
    return v;
}

std::vector<std::vector<u128>>
RlweEvaluator::inverseTower(
    const std::vector<const ResiduePoly *> &polys, size_t t) const
{
    std::vector<std::vector<u128>> out(polys.size());
    for (const ResiduePoly *p : polys) {
        rpu_assert(p != nullptr && p->inEval() && t < p->towerCount(),
                   "inverseTower needs Eval operands with tower %zu",
                   t);
    }
    if (device_) {
        const KernelImage &k = device_->kernel(
            KernelKind::InverseNtt, n_, {basis().prime(t)});
        std::vector<LaunchFuture> futures;
        futures.reserve(polys.size());
        for (const ResiduePoly *p : polys)
            futures.push_back(device_->launchAsync(k, {p->towers[t]}));
        auto results = RpuDevice::whenAll(std::move(futures));
        for (size_t c = 0; c < polys.size(); ++c)
            out[c] = std::move(results[c][0]);
        return out;
    }
    for (size_t c = 0; c < polys.size(); ++c) {
        out[c] = polys[c]->towers[t];
        hostNtt(t).inverse(out[c]);
    }
    return out;
}

void
RlweEvaluator::forEachUnit(size_t count,
                           const std::function<void(size_t)> &fn) const
{
    ThreadPool *pool = device_ ? device_->workerPool() : nullptr;
    if (pool == nullptr || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    // Independent units ride the device's worker pool. Every unit is
    // joined before the first failure is rethrown, so no unit is left
    // running with references into an unwinding caller.
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i)
        futures.push_back(pool->submit([&fn, i] { fn(i); }));
    std::exception_ptr first_error;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace rpu
